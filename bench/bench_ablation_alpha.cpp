// Ablation (Sec. IV-B2 discussion): the step size alpha trades convergence
// speed against motion smoothness — "smaller alpha leads to slower
// convergence but smoother motion trace" — while the converged quality is
// essentially alpha-independent (Prop. 4 holds for all alpha in (0,1]).
//
// The sweep runs through the campaign engine (the same grid ships as
// campaigns/alpha_ablation.cmp): five seeds per alpha instead of the old
// single hand-rolled run, trials sharded across LAACAD_THREADS workers,
// every column a group aggregate (mean ± CI from the campaign machinery)
// rather than a one-seed point estimate. The travel column is the real
// per-trial sum of max displacements (the campaign's `travel` metric), not
// a history walk.
#include <fstream>

#include "bench_common.hpp"
#include "campaign/scheduler.hpp"

namespace {

using namespace laacad;

// Mirror of campaigns/alpha_ablation.cmp so the binary is self-contained.
constexpr const char* kCampaignSpec = R"(
name      alpha_ablation
trials    5
seed      31
domain    square
side      500
deploy    uniform
nodes     60
k         2
epsilon   0.5
max_rounds 500
grid_resolution 10
sweep alpha 0.2 0.4 0.6 0.8 1.0
)";

struct Row {};  // all columns come from the campaign aggregates

void experiment() {
  std::vector<Row> rows;
  auto result = benchutil::run_campaign_with_probe(
      campaign::parse_campaign_string(kCampaignSpec), rows,
      [](const campaign::TrialPoint&, const scenario::ScenarioRunner&,
         const scenario::ScenarioResult&) {});

  const std::size_t i_rounds = campaign::metric_index("total_rounds");
  const std::size_t i_rstar = campaign::metric_index("max_range");
  const std::size_t i_rmin = campaign::metric_index("min_range");
  const std::size_t i_travel = campaign::metric_index("travel");

  TextTable table({"alpha", "rounds to converge", "R* (m)", "min range (m)",
                   "total travel (m, max-move sum)"});
  for (const campaign::GroupAggregate& g : result.groups) {
    if (g.ok < g.trials) {
      benchutil::TableSink::instance().note(
          "alpha ablation: " + std::to_string(g.trials - g.ok) +
          " trial(s) failed at point " + std::to_string(g.point));
    }
    std::string alpha = "?";
    for (const auto& [axis, value] : g.values)
      if (axis == "alpha") alpha = value;
    table.add_row({alpha, TextTable::num(g.metrics[i_rounds].mean, 1),
                   TextTable::num(g.metrics[i_rstar].mean, 2),
                   TextTable::num(g.metrics[i_rmin].mean, 2),
                   TextTable::num(g.metrics[i_travel].mean, 1)});
  }
  benchutil::TableSink::instance().add(
      "Ablation — step size alpha (60 nodes, k = 2, 500 m square, "
      "mean over 5 seeds)",
      std::move(table));
  benchutil::TableSink::instance().note(
      "Expected: rounds decrease as alpha grows; R* is nearly flat "
      "(convergence guaranteed for all alpha in (0,1]).");

  std::ofstream json("BENCH_campaign_alpha_ablation.json");
  if (json) result.write_json(json);
  benchutil::TableSink::instance().note(
      "campaign aggregates: BENCH_campaign_alpha_ablation.json");
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::register_experiment("ablation/alpha", experiment);
  return benchutil::run_main(argc, argv);
}
