// Ablation (Sec. IV-B2 discussion): the step size alpha trades convergence
// speed against motion smoothness — "smaller alpha leads to slower
// convergence but smoother motion trace" — while the converged quality is
// essentially alpha-independent (Prop. 4 holds for all alpha in (0,1]).
#include "bench_common.hpp"
#include "laacad/engine.hpp"
#include "wsn/deployment.hpp"

namespace {

using namespace laacad;

void experiment() {
  wsn::Domain domain = wsn::Domain::rectangle(500, 500);
  Rng rng(31);
  const auto initial = wsn::deploy_uniform(domain, 60, rng);

  TextTable table({"alpha", "rounds to converge", "R* (m)", "min range (m)",
                   "total travel (m, max over nodes proxy)"});
  for (double alpha : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    wsn::Network net(&domain, initial, 100.0);
    core::LaacadConfig cfg;
    cfg.k = 2;
    cfg.alpha = alpha;
    cfg.epsilon = 0.5;
    cfg.max_rounds = 500;
    cfg.retain_history = true;  // travel summed from the round record
    core::Engine engine(net, cfg);
    const auto result = engine.run();
    double travel = 0.0;
    for (const auto& m : result.history) travel += m.max_move;
    table.add_row({TextTable::num(alpha, 1), std::to_string(result.rounds),
                   TextTable::num(result.final_max_range, 2),
                   TextTable::num(result.final_min_range, 2),
                   TextTable::num(travel, 1)});
  }
  benchutil::TableSink::instance().add(
      "Ablation — step size alpha (60 nodes, k = 2, 500 m square)",
      std::move(table));
  benchutil::TableSink::instance().note(
      "Expected: rounds decrease as alpha grows; R* is nearly flat "
      "(convergence guaranteed for all alpha in (0,1]).");
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::register_experiment("ablation/alpha", experiment);
  return benchutil::run_main(argc, argv);
}
