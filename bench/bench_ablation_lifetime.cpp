// Extension bench: the end-to-end lifetime claim behind k-CSDP. The paper
// argues (Sec. III-B) that minimizing the maximum sensing range "is
// equivalently balancing the energy consumption over the whole WSN and
// hence maximizing the lifetime". We measure it: batteries drain at
// E(r_i) = pi r_i^2 per epoch; lifetime = epochs until the area is no
// longer k-covered. LAACAD's deployment is compared against (a) the static
// initial deployment with per-cell minimal ranges and (b) the centroid
// (Lloyd) target rule, at equal node counts and battery budgets. Also
// reports the Sec. IV-C connectivity by-product.
#include "bench_common.hpp"
#include "baselines/movement.hpp"
#include "coverage/lifetime.hpp"
#include "laacad/engine.hpp"
#include "wsn/connectivity.hpp"
#include "wsn/deployment.hpp"

namespace {

using namespace laacad;

void experiment() {
  wsn::Domain domain = wsn::Domain::rectangle(500, 500);
  const int n = 40;
  const int k = 2;

  TextTable table({"deployment", "R* (m)", "lifetime (epochs)",
                   "stranded energy", "connected @ 1.25 R*", "min degree"});

  cov::LifetimeConfig lcfg;
  lcfg.battery = 1e8;
  lcfg.required_k = k;
  lcfg.grid_resolution = 5.0;

  auto report = [&](const std::string& label, wsn::Network& net,
                    double rstar) {
    const auto life = cov::simulate_lifetime(net, lcfg);
    const auto conn = wsn::analyze_connectivity(net, 1.25 * rstar);
    table.add_row({label, TextTable::num(rstar, 2),
                   std::to_string(life.epochs_until_coverage_loss),
                   TextTable::num(life.energy_unused_fraction, 3),
                   conn.connected() ? "yes" : "NO",
                   std::to_string(conn.min_degree)});
  };

  Rng rng(61);
  const auto init = wsn::deploy_uniform(domain, n, rng);

  {  // static: initial positions, ranges = dominating-region circumradii
    wsn::Network net(&domain, init, 100.0);
    core::LaacadConfig cfg;
    cfg.k = k;
    // No run(): finalize() alone assigns cell circumradii without motion.
    core::Engine engine(net, cfg);
    engine.finalize();
    double rstar = 0.0;
    for (const auto& node : net.nodes())
      rstar = std::max(rstar, node.sensing_range);
    report("static random", net, rstar);
  }
  {  // Lloyd / centroid rule
    wsn::Network net(&domain, init, 100.0);
    base::MovementConfig cfg;
    cfg.k = k;
    cfg.epsilon = 0.5;
    cfg.max_rounds = 300;
    const auto res = run_target_rule(net, base::TargetRule::kCentroid, cfg);
    report("centroid (Lloyd)", net, res.final_max_range);
  }
  {  // LAACAD
    wsn::Network net(&domain, init, 100.0);
    core::LaacadConfig cfg;
    cfg.k = k;
    cfg.epsilon = 0.5;
    cfg.max_rounds = 300;
    core::Engine engine(net, cfg);
    const auto res = engine.run();
    report("LAACAD", net, res.final_max_range);
  }

  benchutil::TableSink::instance().add(
      "Extension — network lifetime under E(r) = pi r^2 drain (40 nodes, "
      "k = 2, equal batteries)",
      std::move(table));
  benchutil::TableSink::instance().note(
      "Expected: LAACAD's min-max deployment survives the longest and "
      "strands the least energy; with the paper's realistic assumption "
      "gamma >= r_i (modest slack) the radio graph is connected "
      "(Sec. IV-C by-product).");
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::register_experiment("ablation/lifetime", experiment);
  return benchutil::run_main(argc, argv);
}
