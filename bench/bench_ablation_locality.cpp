// Ablation: the localized backend (Algorithm 2) versus the exact global
// solver, and the cost of locality — messages per round, hop caps, and
// hop-realistic (TTL-limited) flooding versus the paper's idealized
// N(n_i, rho) gather.
#include "bench_common.hpp"
#include "coverage/critical.hpp"
#include "coverage/grid_checker.hpp"
#include "laacad/engine.hpp"
#include "wsn/deployment.hpp"

namespace {

using namespace laacad;

void experiment() {
  wsn::Domain domain = wsn::Domain::rectangle(600, 600);
  Rng rng(55);
  const auto initial = wsn::deploy_uniform(domain, 80, rng);
  const int k = 2;

  TextTable table({"backend", "rounds", "R* (m)", "verified depth",
                   "gathers/round", "reports/round", "deepest hop"});

  auto run_one = [&](const std::string& label, core::LaacadConfig cfg) {
    wsn::Network net(&domain, initial, 120.0);
    cfg.retain_history = true;  // message accounting summed from the record
    core::Engine engine(net, cfg);
    const auto result = engine.run();
    const auto exact =
        cov::critical_point_coverage(domain, cov::sensing_disks(net));
    double gathers = 0.0, reports = 0.0;
    std::uint64_t deepest = 0;
    for (const auto& m : result.history) {
      gathers += static_cast<double>(m.comm.gather_requests);
      reports += static_cast<double>(m.comm.node_reports);
      deepest = std::max(deepest, m.comm.max_hops_used);
    }
    const double rounds = std::max<std::size_t>(result.history.size(), 1);
    table.add_row({label, std::to_string(result.rounds),
                   TextTable::num(result.final_max_range, 2),
                   std::to_string(exact.min_depth),
                   TextTable::num(gathers / rounds, 1),
                   TextTable::num(reports / rounds, 1),
                   std::to_string(deepest)});
  };

  {
    core::LaacadConfig cfg;
    cfg.k = k;
    cfg.epsilon = 1.0;
    cfg.max_rounds = 300;
    run_one("global (exact)", cfg);
  }
  for (int hops : {3, 6, 10}) {
    core::LaacadConfig cfg;
    cfg.k = k;
    cfg.epsilon = 1.0;
    cfg.max_rounds = 300;
    cfg.localized.max_hops = hops;
    cfg.provider = core::make_localized_provider(cfg.localized, cfg.seed);
    run_one("localized, cap " + std::to_string(hops) + " hops", cfg);
  }
  {
    core::LaacadConfig cfg;
    cfg.k = k;
    cfg.epsilon = 1.0;
    cfg.max_rounds = 300;
    cfg.localized.max_hops = 10;
    cfg.localized.ideal_gather = false;  // TTL-limited flooding
    cfg.provider = core::make_localized_provider(cfg.localized, cfg.seed);
    run_one("localized, realistic flooding", cfg);
  }

  benchutil::TableSink::instance().add(
      "Ablation — locality: global vs Algorithm 2 (80 nodes, k = 2)",
      std::move(table));
  benchutil::TableSink::instance().note(
      "Expected: localized backends reach the same R* and verified depth as "
      "the exact global solver while touching only a few hops of "
      "neighbourhood per gather; tight hop caps slow the expanding phase "
      "but do not change the equilibrium.");
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::register_experiment("ablation/locality", experiment);
  return benchutil::run_main(argc, argv);
}
