// Ablation: the localized backend (Algorithm 2) versus the exact global
// solver, and the cost of locality — messages per round, hop caps, and
// hop-realistic (TTL-limited) flooding versus the paper's idealized
// N(n_i, rho) gather.
//
// The grid runs through the campaign engine (the same spec ships as
// campaigns/locality_ablation.cmp): max_hops x flooding as declarative
// sweep axes (the `flooding` spec key maps to LocalizedConfig::ideal_gather)
// with three seeds per cell, plus an embedded global-reference campaign for
// the comparison row. Quality columns (rounds, R*, verified depth) are
// campaign aggregates; the message-accounting columns come from a probe
// reading each trial's streamed CommStats, averaged per cell here.
#include <algorithm>
#include <cstdint>
#include <fstream>

#include "bench_common.hpp"
#include "campaign/scheduler.hpp"
#include "scenario/runner.hpp"

namespace {

using namespace laacad;

// Mirror of campaigns/locality_ablation.cmp so the binary is
// self-contained.
constexpr const char* kLocalizedSpec = R"(
name      locality_ablation
trials    3
seed      55
domain    square
side      600
deploy    uniform
nodes     80
k         2
epsilon   1.0
max_rounds 300
gamma     120
grid_resolution 10
backend   localized
sweep max_hops 3 6 10
sweep flooding ideal ttl
)";

// The exact-solver reference: the same physics, no locality axes.
constexpr const char* kGlobalSpec = R"(
name      locality_ablation_global
trials    3
seed      55
domain    square
side      600
deploy    uniform
nodes     80
k         2
epsilon   1.0
max_rounds 300
gamma     120
grid_resolution 10
backend   global
)";

/// Per-trial message accounting, filled by the probe from the streamed
/// round series (O(1) memory per trial — no retained history).
struct Row {
  double gathers_per_round = 0.0;
  double reports_per_round = 0.0;
  std::uint64_t deepest_hop = 0;
};

campaign::CampaignResult run_grid(const char* spec_text,
                                  std::vector<Row>& rows) {
  return benchutil::run_campaign_with_probe(
      campaign::parse_campaign_string(spec_text), rows,
      [&rows](const campaign::TrialPoint& pt, const scenario::ScenarioRunner&,
              const scenario::ScenarioResult& result) {
        wsn::CommStats comm;
        int rounds = 0;
        for (const scenario::PhaseRecord& p : result.phases) {
          comm.merge(p.series.comm);
          rounds += p.series.rounds;
        }
        Row& row = rows[static_cast<std::size_t>(pt.trial)];
        const double r = rounds > 0 ? rounds : 1;
        row.gathers_per_round =
            static_cast<double>(comm.gather_requests) / r;
        row.reports_per_round = static_cast<double>(comm.node_reports) / r;
        row.deepest_hop = comm.max_hops_used;
      });
}

void add_rows(TextTable& table, const campaign::CampaignResult& result,
              const std::vector<Row>& rows,
              const std::string& label_prefix) {
  const std::size_t i_rounds = campaign::metric_index("total_rounds");
  const std::size_t i_rstar = campaign::metric_index("max_range");
  const std::size_t i_depth = campaign::metric_index("min_depth");

  for (const campaign::GroupAggregate& g : result.groups) {
    std::string label = label_prefix;
    for (const auto& [axis, value] : g.values) {
      if (axis == "max_hops") label += ", cap " + value + " hops";
      if (axis == "flooding")
        label += value == "ttl" ? ", realistic flooding" : ", ideal gather";
    }
    // Mean the probe rows of this grid point's repetitions (trial index is
    // point * trials + rep).
    double gathers = 0.0, reports = 0.0;
    std::uint64_t deepest = 0;
    for (int rep = 0; rep < g.trials; ++rep) {
      const Row& row =
          rows[static_cast<std::size_t>(g.point * g.trials + rep)];
      gathers += row.gathers_per_round;
      reports += row.reports_per_round;
      deepest = std::max(deepest, row.deepest_hop);
    }
    const double trials = g.trials > 0 ? g.trials : 1;
    table.add_row({label, TextTable::num(g.metrics[i_rounds].mean, 1),
                   TextTable::num(g.metrics[i_rstar].mean, 2),
                   TextTable::num(g.metrics[i_depth].mean, 1),
                   TextTable::num(gathers / trials, 1),
                   TextTable::num(reports / trials, 1),
                   std::to_string(deepest)});
    if (g.ok < g.trials)
      benchutil::TableSink::instance().note(
          "locality ablation: " + std::to_string(g.trials - g.ok) +
          " trial(s) failed in cell '" + label + "'");
  }
}

void experiment() {
  TextTable table({"backend", "rounds", "R* (m)", "verified depth",
                   "gathers/round", "reports/round", "deepest hop"});

  std::vector<Row> global_rows;
  const auto global = run_grid(kGlobalSpec, global_rows);
  add_rows(table, global, global_rows, "global (exact)");

  std::vector<Row> local_rows;
  const auto localized = run_grid(kLocalizedSpec, local_rows);
  add_rows(table, localized, local_rows, "localized");

  benchutil::TableSink::instance().add(
      "Ablation — locality: global vs Algorithm 2 (80 nodes, k = 2, "
      "mean over 3 seeds)",
      std::move(table));
  benchutil::TableSink::instance().note(
      "Expected: localized cells reach the same R* and verified depth as "
      "the exact global solver while touching only a few hops of "
      "neighbourhood per gather; tight hop caps and TTL-limited flooding "
      "slow the expanding phase but do not change the equilibrium.");

  std::ofstream json("BENCH_campaign_locality_ablation.json");
  if (json) localized.write_json(json);
  benchutil::TableSink::instance().note(
      "campaign aggregates: BENCH_campaign_locality_ablation.json");
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::register_experiment("ablation/locality", experiment);
  return benchutil::run_main(argc, argv);
}
