// Ablation (Sec. IV-C discussion): LAACAD's Chebyshev-center target versus
// the centroid (Lloyd/CVT) rule and the VOR heuristic of Wang et al. [9],
// all running on identical region machinery, scored on the k-CSDP objective
// R* = max_i r_i. Proposition 3 says the Chebyshev center is the optimal
// per-region position for that objective.
#include "bench_common.hpp"
#include "baselines/movement.hpp"
#include "wsn/deployment.hpp"

namespace {

using namespace laacad;

void experiment() {
  wsn::Domain domain = wsn::Domain::rectangle(500, 500);

  TextTable table(
      {"k", "seed", "Chebyshev R*", "Centroid R*", "VOR R*", "best"});
  for (int k : {1, 3}) {
    for (int seed : {41, 42, 43}) {
      Rng rng(static_cast<std::uint64_t>(seed));
      const auto initial = wsn::deploy_uniform(domain, 45, rng);
      base::MovementConfig cfg;
      cfg.k = k;
      cfg.epsilon = 0.5;
      cfg.max_rounds = 300;
      cfg.vor_range = 60.0;

      wsn::Network a(&domain, initial, 100.0);
      const auto cheb = run_target_rule(a, base::TargetRule::kChebyshev, cfg);
      wsn::Network b(&domain, initial, 100.0);
      const auto cent = run_target_rule(b, base::TargetRule::kCentroid, cfg);

      std::string vor_cell = "-";
      double vor_r = std::numeric_limits<double>::infinity();
      if (k == 1) {  // VOR is a 1-coverage heuristic
        wsn::Network c(&domain, initial, 100.0);
        const auto vor = run_target_rule(c, base::TargetRule::kVor, cfg);
        vor_r = vor.final_max_range;
        vor_cell = TextTable::num(vor_r, 2);
      }
      const double best =
          std::min({cheb.final_max_range, cent.final_max_range, vor_r});
      std::string winner = best == cheb.final_max_range ? "Chebyshev"
                           : best == cent.final_max_range ? "Centroid"
                                                          : "VOR";
      table.add_row({std::to_string(k), std::to_string(seed),
                     TextTable::num(cheb.final_max_range, 2),
                     TextTable::num(cent.final_max_range, 2), vor_cell,
                     winner});
    }
  }
  benchutil::TableSink::instance().add(
      "Ablation — motion target rule on the min-max objective (45 nodes, "
      "500 m square)",
      std::move(table));
  benchutil::TableSink::instance().note(
      "Expected: the Chebyshev rule wins (or ties within noise) on R* — it "
      "is the per-region optimum for min-max (Prop. 3); Lloyd optimizes "
      "mean-square distance and VOR only pursues coverage at a fixed range.");
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::register_experiment("ablation/target_rule", experiment);
  return benchutil::run_main(argc, argv);
}
