// Shared scaffolding for the reproduction benches.
//
// Each bench binary registers its experiment(s) as one-shot google-benchmark
// cases (so wall-clock cost is measured and reported uniformly) and collects
// the paper-table rows into a TableSink that main() prints after
// RunSpecifiedBenchmarks. Running a binary with no arguments therefore
// reproduces both the numbers and their cost.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "campaign/scheduler.hpp"
#include "campaign/spec.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

namespace laacad::benchutil {

/// Swept value at `key` for a campaign trial — by key, not axis position,
/// so reordering sweep lines in a spec cannot silently swap a figure's
/// columns or wreck SVG names.
inline std::string axis_value(const campaign::TrialPoint& pt,
                              const std::string& key) {
  for (const auto& [axis, value] : pt.values)
    if (axis == key) return value;
  return "?";
}

inline int num_threads();  // defined below; referenced by the template

/// The campaign-bench harness shared by the figure benches: size one `Row`
/// per trial of the expanded grid (worker-thread probes index `rows` by
/// `pt.trial`, so the buffer must never be smaller than the matrix), run
/// the campaign across LAACAD_THREADS workers with `probe` observing each
/// finished trial, and return the aggregated result. The probe runs on
/// worker threads; writing only rows[pt.trial] and per-trial files needs
/// no lock.
template <typename Row, typename Probe>
campaign::CampaignResult run_campaign_with_probe(campaign::CampaignSpec spec,
                                                 std::vector<Row>& rows,
                                                 Probe&& probe) {
  campaign::CampaignOptions opt;
  opt.workers = num_threads();
  opt.probe = std::forward<Probe>(probe);
  campaign::CampaignScheduler scheduler(std::move(spec), std::move(opt));
  rows.assign(scheduler.trials().size(), Row{});
  return scheduler.run();
}

/// Per-experiment seed derivation: a named base stream advanced by the
/// sweep indices through Rng::derive (splitmix64). Replaces ad-hoc
/// `base + n + k` seed arithmetic, whose collisions (100+60+3 == 100+59+4)
/// silently correlated supposedly independent runs.
template <typename... Streams>
inline std::uint64_t derived_seed(std::uint64_t base, Streams... streams) {
  return Rng::derive(base, static_cast<std::uint64_t>(streams)...);
}

/// Thread count for LaacadConfig::num_threads in the benches, settable
/// without recompiling: LAACAD_THREADS=8 ./bench_fig6_convergence.
/// Defaults to 1 (serial — the paper-faithful reference configuration);
/// 0 means hardware concurrency. Unparsable or negative values fall back
/// to the serial default with a warning rather than skewing the run.
inline int num_threads() {
  const char* env = std::getenv("LAACAD_THREADS");
  if (env == nullptr) return 1;
  char* end = nullptr;
  const long value = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || value < 0) {
    std::fprintf(stderr,
                 "LAACAD_THREADS='%s' is not a non-negative integer; "
                 "running serial\n",
                 env);
    return 1;
  }
  return static_cast<int>(value);
}

/// Accumulates titled tables produced inside benchmark bodies.
class TableSink {
 public:
  static TableSink& instance() {
    static TableSink sink;
    return sink;
  }

  void add(std::string title, TextTable table) {
    tables_.emplace_back(std::move(title), std::move(table));
  }

  void note(std::string line) { notes_.push_back(std::move(line)); }

  void print_all() const {
    for (const auto& [title, table] : tables_) {
      std::printf("\n=== %s ===\n%s", title.c_str(),
                  table.to_string().c_str());
    }
    for (const auto& n : notes_) std::printf("%s\n", n.c_str());
    std::fflush(stdout);
  }

 private:
  std::vector<std::pair<std::string, TextTable>> tables_;
  std::vector<std::string> notes_;
};

/// Register `fn` as a one-iteration benchmark named `name`.
inline void register_experiment(const std::string& name,
                                std::function<void()> fn) {
  benchmark::RegisterBenchmark(name.c_str(),
                               [fn = std::move(fn)](benchmark::State& state) {
                                 for (auto _ : state) fn();
                               })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

/// Standard main body: run benchmarks, then print the collected tables.
inline int run_main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  TableSink::instance().print_all();
  return 0;
}

}  // namespace laacad::benchutil
