// Fig. 1 reproduction: k-order Voronoi partitions of 30 nodes for k = 1..4.
// The paper shows pictures; we regenerate those (SVG) and report the
// quantitative skeleton: cell counts (O(k(N-k)), Lee 1982), exact partition
// of the area, and dominating-region sizes.
#include "bench_common.hpp"
#include "viz/render.hpp"
#include "voronoi/orderk.hpp"
#include "voronoi/sites.hpp"
#include "wsn/deployment.hpp"

namespace {

using namespace laacad;

void experiment() {
  wsn::Domain domain = wsn::Domain::rectangle(100, 100);
  Rng rng(42);
  wsn::Network net(&domain, wsn::deploy_uniform(domain, 30, rng), 30.0);
  const auto sites = vor::separate_sites(net.positions());
  const geom::Ring window = geom::box_ring(domain.bbox());

  TextTable table({"k", "cells N^k", "bound 6k(N-k)", "area covered / |A|",
                   "avg cells per dominating region"});
  for (int k = 1; k <= 4; ++k) {
    const auto cells = vor::enumerate_order_k_cells(sites, k, window);
    double total = 0.0;
    for (const auto& c : cells) total += c.area();
    // Cells per node's dominating region: count cells containing each i.
    double per_node = 0.0;
    for (int i = 0; i < 30; ++i) {
      for (const auto& c : cells) {
        if (std::binary_search(c.gens.begin(), c.gens.end(), i)) ++per_node;
      }
    }
    per_node /= 30.0;
    table.add_row({std::to_string(k), std::to_string(cells.size()),
                   std::to_string(6 * k * (30 - k)),
                   TextTable::num(total / domain.area(), 6),
                   TextTable::num(per_node, 2)});
    viz::render_order_k_partition(
        "fig1_order" + std::to_string(k) + ".svg", net, k);
  }
  benchutil::TableSink::instance().add(
      "Fig. 1 — k-order Voronoi partition of 30 nodes (SVGs written)",
      std::move(table));
  benchutil::TableSink::instance().note(
      "Every k partitions the area exactly (column 4 = 1) and the cell count "
      "respects the O(k(N-k)) bound; pictures in fig1_order{1..4}.svg.");
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::register_experiment("fig1/orderk_partitions", experiment);
  return benchutil::run_main(argc, argv);
}
