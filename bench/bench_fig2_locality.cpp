// Fig. 2 reproduction: how far must Algorithm 2's expanding ring reach to
// compute the k-order dominating region of a central node in a regularly
// deployed WSN? The paper reports 1 hop for k = 1, 2 hops for k = 2..4, and
// 3 hops up to k = 12 — locality grows slowly with k.
#include "bench_common.hpp"
#include "laacad/localized.hpp"
#include "wsn/comm.hpp"
#include "wsn/deployment.hpp"

namespace {

using namespace laacad;

void experiment() {
  // Triangular lattice over 1 km^2 with 60 m spacing; transmission range
  // 1.3x spacing so the 6 lattice neighbours are one hop away.
  wsn::Domain domain = wsn::Domain::square_km();
  const double spacing = 60.0;
  auto pts = wsn::triangular_lattice(domain, spacing);
  wsn::Network net(&domain, pts, 1.3 * spacing);
  const wsn::CommModel comm(net);

  // Central node.
  int center = 0;
  double best = 1e18;
  for (int i = 0; i < net.size(); ++i) {
    const double d = geom::dist(net.position(i), {500, 500});
    if (d < best) {
      best = d;
      center = i;
    }
  }

  TextTable table({"k", "ring rho (m)", "hops", "nodes involved",
                   "deepest relay hop"});
  for (int k = 1; k <= 12; ++k) {
    core::LocalizedConfig cfg;
    cfg.max_hops = 12;
    wsn::CommStats stats;
    wsn::BoundaryInfo interior;
    Rng noise(1);
    const auto res =
        core::localized_region(comm, center, k, interior, cfg, &stats, noise);
    table.add_row({std::to_string(k), TextTable::num(res.rho, 0),
                   std::to_string(res.hops),
                   std::to_string(res.cells.empty() ? 0 : stats.node_reports),
                   std::to_string(stats.max_hops_used)});
  }
  benchutil::TableSink::instance().add(
      "Fig. 2 — ring radius / hops needed to compute V^k of a central node "
      "(regular deployment, ~" +
          std::to_string(net.size()) + " nodes)",
      std::move(table));
  benchutil::TableSink::instance().note(
      "Paper's shape: 1 hop suffices for k=1, 2 hops for k=2..4, and 3 hops "
      "carry through k=12 — computation stays localized as k grows.");
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::register_experiment("fig2/locality", experiment);
  return benchutil::run_main(argc, argv);
}
