// Fig. 5 reproduction: 100 nodes start in the bottom-left corner of 1 km^2
// and LAACAD deploys them for k = 1..4 coverage. The paper's qualitative
// claim is an "even clustering" equilibrium: for k >= 2 nodes gather in
// groups of size k spread evenly over the area (pure even spread at k = 1).
// We quantify it: cluster count and size distribution via union-find at a
// co-location radius, plus coverage verification. SVG snapshots accompany.
#include <numeric>

#include "bench_common.hpp"
#include "coverage/critical.hpp"
#include "coverage/grid_checker.hpp"
#include "laacad/engine.hpp"
#include "viz/render.hpp"
#include "wsn/deployment.hpp"

namespace {

using namespace laacad;

// Union-find clustering of node positions at the given merge radius.
std::vector<int> cluster_sizes(const std::vector<geom::Vec2>& pts,
                               double radius) {
  const int n = static_cast<int>(pts.size());
  std::vector<int> parent(static_cast<std::size_t>(n));
  std::iota(parent.begin(), parent.end(), 0);
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  for (int a = 0; a < n; ++a)
    for (int b = a + 1; b < n; ++b)
      if (geom::dist(pts[static_cast<std::size_t>(a)],
                     pts[static_cast<std::size_t>(b)]) <= radius)
        parent[static_cast<std::size_t>(find(a))] = find(b);
  std::vector<int> count(static_cast<std::size_t>(n), 0);
  for (int a = 0; a < n; ++a) ++count[static_cast<std::size_t>(find(a))];
  std::vector<int> sizes;
  for (int c : count)
    if (c > 0) sizes.push_back(c);
  return sizes;
}

void experiment() {
  wsn::Domain domain = wsn::Domain::square_km();
  Rng rng(3);
  const int n = 100;
  const auto initial = wsn::deploy_corner(domain, n, rng);
  {
    wsn::Network net(&domain, initial, 150.0);
    viz::render_deployment("fig5_initial.svg", net);
  }

  TextTable table({"k", "rounds", "R* (m)", "min range (m)", "clusters",
                   "mean cluster size", "verified depth"});
  for (int k = 1; k <= 4; ++k) {
    wsn::Network net(&domain, initial, 150.0);
    core::LaacadConfig cfg;
    cfg.k = k;
    cfg.epsilon = 1.0;
    cfg.max_rounds = 300;
    core::Engine engine(net, cfg);
    const auto result = engine.run();
    const auto exact =
        cov::critical_point_coverage(domain, cov::sensing_disks(net));

    // Co-location radius: 10% of the final sensing range.
    const auto sizes =
        cluster_sizes(net.positions(), 0.10 * result.final_max_range);
    const double mean_size =
        static_cast<double>(n) / static_cast<double>(sizes.size());

    table.add_row({std::to_string(k), std::to_string(result.rounds),
                   TextTable::num(result.final_max_range, 2),
                   TextTable::num(result.final_min_range, 2),
                   std::to_string(sizes.size()), TextTable::num(mean_size, 2),
                   std::to_string(exact.min_depth)});
    viz::render_deployment("fig5_k" + std::to_string(k) + ".svg", net);
  }
  benchutil::TableSink::instance().add(
      "Fig. 5 — corner start, 100 nodes, 1 km^2: final deployments",
      std::move(table));

  // The paper reports an "even clustering" equilibrium (groups of k). Our
  // exact implementation converges from generic starts to an equally good
  // *staggered* equilibrium instead (see EXPERIMENTS.md); here we verify the
  // paper's clustered configuration is indeed a fixed point: start from
  // k-stacked groups and confirm LAACAD keeps them grouped.
  TextTable stacked_table({"k", "rounds", "R* (m)", "clusters (start)",
                           "clusters (end)", "mean cluster size (end)"});
  for (int k = 2; k <= 4; ++k) {
    Rng srng(benchutil::derived_seed(400, k));
    const int groups = n / k;
    auto anchors = wsn::deploy_uniform(domain, groups, srng);
    auto init = wsn::stacked(anchors, k, srng, 1e-3);
    wsn::Network net(&domain, init, 150.0);
    core::LaacadConfig cfg;
    cfg.k = k;
    cfg.epsilon = 1.0;
    cfg.max_rounds = 300;
    core::Engine engine(net, cfg);
    const auto result = engine.run();
    const auto sizes =
        cluster_sizes(net.positions(), 0.10 * result.final_max_range);
    stacked_table.add_row(
        {std::to_string(k), std::to_string(result.rounds),
         TextTable::num(result.final_max_range, 2), std::to_string(groups),
         std::to_string(sizes.size()),
         TextTable::num(static_cast<double>(groups * k) /
                            static_cast<double>(sizes.size()),
                        2)});
  }
  benchutil::TableSink::instance().add(
      "Fig. 5 (clustered equilibrium) — k-stacked start stays clustered",
      std::move(stacked_table));
  benchutil::TableSink::instance().note(
      "Paper's shape: for k >= 2 the 'even clustering' (groups of k) is an "
      "equilibrium — started clustered, LAACAD keeps mean cluster size ~ k. "
      "From generic starts our exact implementation finds a staggered local "
      "optimum of comparable R* (both are local minima per Corollary 1). "
      "Pictures in fig5_initial.svg / fig5_k{1..4}.svg.");
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::register_experiment("fig5/corner_deployment", experiment);
  return benchutil::run_main(argc, argv);
}
