// Fig. 5 reproduction: 100 nodes start in the bottom-left corner of 1 km^2
// and LAACAD deploys them for k = 1..4 coverage. The paper's qualitative
// claim is an "even clustering" equilibrium: for k >= 2 nodes gather in
// groups of size k spread evenly over the area (pure even spread at k = 1).
// We quantify it: cluster count and size distribution via union-find at a
// co-location radius, plus exact coverage verification. SVG snapshots
// accompany.
//
// Both sweeps run through the campaign engine (the corner sweep also ships
// as campaigns/fig5_deployment.cmp): declarative grids whose trials shard
// across LAACAD_THREADS workers, with a probe hook lifting the final
// network state out of each trial for the cluster statistic and the SVGs.
// What used to be two hand-rolled k-loops is now proof that the campaign
// API subsumes this figure too. As with the fig6 port, each k is its own
// grid point with its own derived seed, so runs start from independently
// drawn corner clusters rather than one shared draw.
#include <fstream>
#include <numeric>

#include "bench_common.hpp"
#include "campaign/scheduler.hpp"
#include "coverage/critical.hpp"
#include "coverage/grid_checker.hpp"
#include "scenario/runner.hpp"
#include "viz/render.hpp"

namespace {

using namespace laacad;

// Union-find clustering of node positions at the given merge radius.
std::vector<int> cluster_sizes(const std::vector<geom::Vec2>& pts,
                               double radius) {
  const int n = static_cast<int>(pts.size());
  std::vector<int> parent(static_cast<std::size_t>(n));
  std::iota(parent.begin(), parent.end(), 0);
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  for (int a = 0; a < n; ++a)
    for (int b = a + 1; b < n; ++b)
      if (geom::dist(pts[static_cast<std::size_t>(a)],
                     pts[static_cast<std::size_t>(b)]) <= radius)
        parent[static_cast<std::size_t>(find(a))] = find(b);
  std::vector<int> count(static_cast<std::size_t>(n), 0);
  for (int a = 0; a < n; ++a) ++count[static_cast<std::size_t>(find(a))];
  std::vector<int> sizes;
  for (int c : count)
    if (c > 0) sizes.push_back(c);
  return sizes;
}

// The corner sweep IS the shipped campaign — loaded from the source tree
// so the bench and campaigns/fig5_deployment.cmp can never drift apart.
// The clustered fixed-point check below is bench-only and stays inline.
constexpr const char* kClusteredCampaign = R"(
name      fig5_clustered
trials    1
seed      400
domain    square
side      1000
deploy    stacked
nodes     100
epsilon   1.0
max_rounds 300
gamma     150
grid_resolution 20
sweep k 2 3 4
)";

using benchutil::axis_value;

/// What the probe lifts out of each finished trial (per trial index).
struct ClusterRow {
  bool have = false;
  int nodes = 0;
  std::vector<int> sizes;    ///< union-find cluster sizes at 0.1 R*
  int verified_depth = 0;    ///< exact critical-point min coverage depth
};

/// `svg_prefix` null suppresses snapshots (the clustered-equilibrium sweep
/// renders none, so the corner sweep's fig5_k*.svg set stays intact).
campaign::CampaignResult run_with_probe(campaign::CampaignSpec spec,
                                        std::vector<ClusterRow>& rows,
                                        const char* svg_prefix,
                                        bool render_initial) {
  return benchutil::run_campaign_with_probe(
      std::move(spec), rows,
      [&rows, svg_prefix, render_initial](
          const campaign::TrialPoint& pt,
          const scenario::ScenarioRunner& runner,
          const scenario::ScenarioResult& result) {
        ClusterRow& row = rows[static_cast<std::size_t>(pt.trial)];
        const wsn::Network& net = runner.network();
        row.nodes = net.size();
        // Co-location radius: 10% of the final sensing range.
        row.sizes = cluster_sizes(
            net.positions(), 0.10 * result.phases.back().final_max_range);
        row.verified_depth =
            cov::critical_point_coverage(runner.domain(),
                                         cov::sensing_disks(net))
                .min_depth;
        if (svg_prefix) {
          viz::render_deployment(svg_prefix + axis_value(pt, "k") + ".svg",
                                 net);
        }
        if (render_initial && pt.trial == 0) {
          const wsn::Network start(&runner.domain(),
                                   result.initial_positions,
                                   result.resolved_gamma);
          viz::render_deployment("fig5_initial.svg", start);
        }
        row.have = true;
      });
}

void experiment() {
  std::vector<ClusterRow> rows;
  const campaign::CampaignResult result = run_with_probe(
      campaign::load_campaign_file(std::string(LAACAD_SOURCE_DIR) +
                                   "/campaigns/fig5_deployment.cmp"),
      rows, "fig5_k", /*render_initial=*/true);

  TextTable table({"k", "rounds", "R* (m)", "min range (m)", "clusters",
                   "mean cluster size", "verified depth"});
  const std::size_t rounds_m = campaign::metric_index("total_rounds");
  const std::size_t rmax_m = campaign::metric_index("max_range");
  const std::size_t rmin_m = campaign::metric_index("min_range");
  for (std::size_t i = 0; i < result.trials.size(); ++i) {
    const campaign::TrialResult& trial = result.trials[i];
    const ClusterRow& row = rows[i];
    if (!row.have) {  // trial threw or aborted: the probe never ran
      benchutil::TableSink::instance().note(
          "fig5 campaign trial FAILED — no figure produced: " +
          (trial.error.empty() ? "aborted" : trial.error));
      return;
    }
    const double mean_size = static_cast<double>(row.nodes) /
                             static_cast<double>(row.sizes.size());
    table.add_row({axis_value(result.points[i], "k"),
                   TextTable::num(trial.metrics[rounds_m], 0),
                   TextTable::num(trial.metrics[rmax_m], 2),
                   TextTable::num(trial.metrics[rmin_m], 2),
                   std::to_string(row.sizes.size()),
                   TextTable::num(mean_size, 2),
                   std::to_string(row.verified_depth)});
  }
  benchutil::TableSink::instance().add(
      "Fig. 5 — corner start, 100 nodes, 1 km^2: final deployments",
      std::move(table));

  std::ofstream json("BENCH_campaign_fig5_deployment.json");
  if (json) result.write_json(json);
  benchutil::TableSink::instance().note(
      "campaign aggregates: BENCH_campaign_fig5_deployment.json");
}

// The paper reports an "even clustering" equilibrium (groups of k). Our
// exact implementation converges from generic starts to an equally good
// *staggered* equilibrium instead (see EXPERIMENTS.md); here we verify the
// paper's clustered configuration is indeed a fixed point: start from
// k-stacked groups (deploy stacked) and confirm LAACAD keeps them grouped.
void clustered_experiment() {
  std::vector<ClusterRow> rows;
  const campaign::CampaignResult result = run_with_probe(
      campaign::parse_campaign_string(kClusteredCampaign), rows,
      /*svg_prefix=*/nullptr, /*render_initial=*/false);

  TextTable table({"k", "rounds", "R* (m)", "clusters (start)",
                   "clusters (end)", "mean cluster size (end)"});
  const std::size_t rounds_m = campaign::metric_index("total_rounds");
  const std::size_t rmax_m = campaign::metric_index("max_range");
  for (std::size_t i = 0; i < result.trials.size(); ++i) {
    const campaign::TrialResult& trial = result.trials[i];
    const ClusterRow& row = rows[i];
    if (!row.have) {
      benchutil::TableSink::instance().note(
          "fig5 clustered trial FAILED: " +
          (trial.error.empty() ? "aborted" : trial.error));
      return;
    }
    const int k = std::stoi(axis_value(result.points[i], "k"));
    // deploy stacked placed exactly groups * k nodes, so derive the start
    // count from the deployment itself rather than echoing the spec.
    const int groups = row.nodes / k;
    table.add_row(
        {std::to_string(k), TextTable::num(trial.metrics[rounds_m], 0),
         TextTable::num(trial.metrics[rmax_m], 2), std::to_string(groups),
         std::to_string(row.sizes.size()),
         TextTable::num(static_cast<double>(row.nodes) /
                            static_cast<double>(row.sizes.size()),
                        2)});
  }
  benchutil::TableSink::instance().add(
      "Fig. 5 (clustered equilibrium) — k-stacked start stays clustered",
      std::move(table));
  benchutil::TableSink::instance().note(
      "Paper's shape: the 'even clustering' (groups of k) is an equilibrium "
      "— started clustered, groups persist with mean cluster size ~ k (the "
      "k = 2 basin is shallower: under some draws pairs drift apart toward "
      "the staggered optimum). From generic starts our exact implementation "
      "finds that staggered local optimum of comparable R* (both are local "
      "minima per Corollary 1). Pictures in fig5_initial.svg / "
      "fig5_k{1..4}.svg.");
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::register_experiment("fig5/corner_deployment", experiment);
  benchutil::register_experiment("fig5/clustered_equilibrium",
                                 clustered_experiment);
  return benchutil::run_main(argc, argv);
}
