// Fig. 6 reproduction: max/min circumradius of the dominating regions vs.
// execution round for k = 1..4 (100 nodes, corner start, 1 km^2).
// Paper's shape: the max circumradius decreases monotonically (Prop. 4);
// the min increases; the two meet closely — especially for larger k — and
// the starting max is nearly identical across k (it is set by the searching
// geometry of the corner cluster, not by k).
//
// The k sweep runs through the campaign engine (the same spec ships as
// campaigns/fig6_convergence.cmp): one declarative grid, trials sharded
// across LAACAD_THREADS workers, per-round history retained for the
// figure's probe table. What used to be a hand-rolled loop is now proof
// that the campaign API subsumes the figure benches. One methodology
// change rides along: each k is its own grid point with its own derived
// seed, so the four runs start from four independently drawn corner
// clusters (the old loop reused one deployment), and the comm range is
// the density-aware auto value instead of a fixed 150 m — the paper's
// "initial max is nearly k-independent" claim now holds statistically
// (corner clusters of equal size look alike) rather than by construction.
#include <chrono>
#include <fstream>

#include "bench_common.hpp"
#include "campaign/scheduler.hpp"
#include "laacad/engine.hpp"
#include "wsn/deployment.hpp"

namespace {

using namespace laacad;

constexpr const char* kCampaignSpec = R"(
name      fig6_convergence
trials    1
seed      3
domain    square
side      1000
deploy    corner
nodes     100
epsilon   1.0
max_rounds 300
grid_resolution 20
sweep k 1 2 3 4
)";

void experiment() {
  campaign::CampaignOptions opt;
  opt.workers = benchutil::num_threads();
  opt.keep_history = true;
  campaign::CampaignScheduler scheduler(
      campaign::parse_campaign_string(kCampaignSpec), std::move(opt));
  const campaign::CampaignResult result = scheduler.run();
  for (const auto& trial : result.trials) {
    if (!trial.ok || trial.history.empty()) {
      benchutil::TableSink::instance().note(
          "fig6 campaign trial FAILED — no figure produced: " +
          (trial.error.empty() ? "empty history" : trial.error));
      return;
    }
  }

  // Sample the series at the rounds shown on the paper's x-axis.
  const std::vector<int> probes = {1,  2,  3,  5,  8,  12, 20,  30,
                                   50, 75, 100, 150, 200, 300};

  TextTable table({"round", "k=1 max", "k=1 min", "k=2 max", "k=2 min",
                   "k=3 max", "k=3 min", "k=4 max", "k=4 min"});
  for (int round : probes) {
    std::vector<std::string> row{std::to_string(round)};
    bool any = false;
    for (const auto& trial : result.trials) {
      const auto& history = trial.history;
      if (round <= static_cast<int>(history.size())) {
        const auto& m = history[static_cast<std::size_t>(round) - 1];
        row.push_back(TextTable::num(m.max_circumradius, 1));
        row.push_back(TextTable::num(m.min_circumradius, 1));
        any = true;
      } else {  // converged earlier: hold the final value (flat tail)
        const auto& m = history.back();
        row.push_back(TextTable::num(m.max_circumradius, 1));
        row.push_back(TextTable::num(m.min_circumradius, 1));
      }
    }
    if (any) table.add_row(std::move(row));
  }
  benchutil::TableSink::instance().add(
      "Fig. 6 — circumradius (m) vs round, corner start, 100 nodes",
      std::move(table));

  // Monotonicity check (Prop. 4 corollary) reported explicitly.
  bool monotone = true;
  for (const auto& trial : result.trials) {
    for (std::size_t i = 1; i < trial.history.size(); ++i) {
      if (trial.history[i].max_hat_radius >
          trial.history[i - 1].max_hat_radius + 1e-6)
        monotone = false;
    }
  }
  benchutil::TableSink::instance().note(
      std::string("R-hat monotone non-increasing for alpha = 1 across all "
                  "four runs: ") +
      (monotone ? "yes (matches Proposition 4)" : "NO — check!"));
  benchutil::TableSink::instance().note(
      "Paper's shape: max curves decrease monotonically, min curves rise, "
      "max/min meet tightly (tighter for larger k); initial max is nearly "
      "k-independent.");

  std::ofstream json("BENCH_campaign_fig6_convergence.json");
  if (json) result.write_json(json);
  benchutil::TableSink::instance().note(
      "campaign aggregates: BENCH_campaign_fig6_convergence.json");
}

// Parallel scaling of the round loop: the per-node region computations are
// independent, so the same 400-node, k = 2 scenario must produce
// bit-identical per-round metrics for every thread count while the rounds
// themselves get cheaper wall-clock. Thread counts: 1 (reference), 8, and
// LAACAD_THREADS when set.
void scaling_experiment() {
  wsn::Domain domain = wsn::Domain::square_km();
  Rng rng(7);
  const auto initial = wsn::deploy_uniform(domain, 400, rng);
  const int rounds = 20;

  auto run_with = [&](int threads, double* seconds) {
    wsn::Network net(&domain, initial, 120.0);
    core::LaacadConfig cfg;
    cfg.k = 2;
    cfg.epsilon = 1.0;
    cfg.max_rounds = rounds;
    cfg.num_threads = threads;
    core::Engine engine(net, cfg);
    std::vector<core::RoundMetrics> history;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < rounds; ++r) history.push_back(engine.step());
    const auto t1 = std::chrono::steady_clock::now();
    *seconds = std::chrono::duration<double>(t1 - t0).count();
    return history;
  };

  std::vector<int> thread_counts = {1, 8};
  if (const int env = benchutil::num_threads();
      env != 1 && env != 8) {
    thread_counts.push_back(env);
  }

  TextTable table({"threads", "wall (s)", "speedup vs 1", "identical metrics"});
  std::vector<core::RoundMetrics> reference;
  double t_serial = 0.0;
  for (int threads : thread_counts) {
    double seconds = 0.0;
    const auto history = run_with(threads, &seconds);
    bool identical = true;
    if (threads == thread_counts.front()) {
      reference = history;
      t_serial = seconds;
    } else {
      identical = history.size() == reference.size();
      for (std::size_t r = 0; identical && r < history.size(); ++r) {
        const auto& a = history[r];
        const auto& b = reference[r];
        identical = a.round == b.round &&
                    a.max_circumradius == b.max_circumradius &&
                    a.min_circumradius == b.min_circumradius &&
                    a.max_hat_radius == b.max_hat_radius &&
                    a.max_move == b.max_move && a.moved == b.moved;
      }
    }
    table.add_row({std::to_string(threads), TextTable::num(seconds, 3),
                   TextTable::num(seconds > 0.0 ? t_serial / seconds : 0.0, 2),
                   identical ? "yes" : "NO — check!"});
  }
  benchutil::TableSink::instance().add(
      "Round-loop scaling — 400 nodes, k = 2, 20 rounds (bit-identical "
      "RoundMetrics required)",
      std::move(table));
  benchutil::TableSink::instance().note(
      "Speedup tracks physical cores; on a single-core host all thread "
      "counts cost the same but the metrics must still match exactly.");
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::register_experiment("fig6/convergence", experiment);
  benchutil::register_experiment("fig6/parallel_scaling", scaling_experiment);
  return benchutil::run_main(argc, argv);
}
