// Fig. 6 reproduction: max/min circumradius of the dominating regions vs.
// execution round for k = 1..4 (100 nodes, corner start, 1 km^2).
// Paper's shape: the max circumradius decreases monotonically (Prop. 4);
// the min increases; the two meet closely — especially for larger k — and
// the starting max is nearly identical across k (it is set by the searching
// geometry of the corner cluster, not by k).
#include "bench_common.hpp"
#include "laacad/engine.hpp"
#include "wsn/deployment.hpp"

namespace {

using namespace laacad;

void experiment() {
  wsn::Domain domain = wsn::Domain::square_km();
  Rng rng(3);
  const auto initial = wsn::deploy_corner(domain, 100, rng);

  // Sample the series at the rounds shown on the paper's x-axis.
  const std::vector<int> probes = {1,  2,  3,  5,  8,  12, 20,  30,
                                   50, 75, 100, 150, 200, 300};

  std::vector<core::RunResult> runs;
  for (int k = 1; k <= 4; ++k) {
    wsn::Network net(&domain, initial, 150.0);
    core::LaacadConfig cfg;
    cfg.k = k;
    cfg.epsilon = 1.0;
    cfg.max_rounds = 300;
    core::Engine engine(net, cfg);
    runs.push_back(engine.run());
  }

  TextTable table({"round", "k=1 max", "k=1 min", "k=2 max", "k=2 min",
                   "k=3 max", "k=3 min", "k=4 max", "k=4 min"});
  for (int round : probes) {
    std::vector<std::string> row{std::to_string(round)};
    bool any = false;
    for (const auto& run : runs) {
      if (round <= static_cast<int>(run.history.size())) {
        const auto& m = run.history[static_cast<std::size_t>(round) - 1];
        row.push_back(TextTable::num(m.max_circumradius, 1));
        row.push_back(TextTable::num(m.min_circumradius, 1));
        any = true;
      } else {  // converged earlier: hold the final value (flat tail)
        const auto& m = run.history.back();
        row.push_back(TextTable::num(m.max_circumradius, 1));
        row.push_back(TextTable::num(m.min_circumradius, 1));
      }
    }
    if (any) table.add_row(std::move(row));
  }
  benchutil::TableSink::instance().add(
      "Fig. 6 — circumradius (m) vs round, corner start, 100 nodes",
      std::move(table));

  // Monotonicity check (Prop. 4 corollary) reported explicitly.
  bool monotone = true;
  for (const auto& run : runs) {
    for (std::size_t i = 1; i < run.history.size(); ++i) {
      if (run.history[i].max_hat_radius >
          run.history[i - 1].max_hat_radius + 1e-6)
        monotone = false;
    }
  }
  benchutil::TableSink::instance().note(
      std::string("R-hat monotone non-increasing for alpha = 1 across all "
                  "four runs: ") +
      (monotone ? "yes (matches Proposition 4)" : "NO — check!"));
  benchutil::TableSink::instance().note(
      "Paper's shape: max curves decrease monotonically, min curves rise, "
      "max/min meet tightly (tighter for larger k); initial max is nearly "
      "k-independent.");
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::register_experiment("fig6/convergence", experiment);
  return benchutil::run_main(argc, argv);
}
