// Fig. 7 reproduction: sensing energy consumption (E(r) = pi r^2) of the
// final deployments while scaling the network size from 20 to 180 nodes in
// 1 km^2, for k = 1..4.
//   (a) maximum sensing load: decreases with N, grows ~k; the ratio between
//       the k1 and k2 curves is roughly k1/k2, because LAACAD balances loads
//       to E(r_i) ~ k |A| / N;
//   (b) total sensing load: decreases with N (less overlap waste), grows
//       with k.
//
// The (N x k) grid runs through the campaign engine: a two-axis declarative
// sweep sharded across LAACAD_THREADS workers with per-trial derived seeds,
// instead of the old nested loops with `Rng rng(100 + n + k)` seed
// arithmetic (whose collisions — 100+60+3 == 100+59+4 — silently correlated
// supposedly independent runs).
#include <fstream>

#include "bench_common.hpp"
#include "campaign/scheduler.hpp"

namespace {

using namespace laacad;

constexpr const char* kCampaignSpec = R"(
name      fig7_energy
trials    1
seed      100
domain    square
side      1000
deploy    uniform
epsilon   1.0
max_rounds 250
grid_resolution 25
sweep nodes 20 60 100 140 180
sweep k 1 2 3 4
)";

void experiment() {
  campaign::CampaignOptions opt;
  opt.workers = benchutil::num_threads();
  campaign::CampaignScheduler scheduler(
      campaign::parse_campaign_string(kCampaignSpec), std::move(opt));
  const campaign::CampaignResult result = scheduler.run();

  const std::size_t max_m = campaign::metric_index("max_load");
  const std::size_t tot_m = campaign::metric_index("total_load");
  // Row-major grid: axis 0 (nodes) outermost, one group per k within each
  // size. The tables hard-code four k columns, so refuse a drifted sweep
  // instead of silently misaligning rows.
  if (result.spec.axes.size() != 2 || result.spec.axes[0].key != "nodes" ||
      result.spec.axes[1].values !=
          std::vector<std::string>{"1", "2", "3", "4"}) {
    benchutil::TableSink::instance().note(
        "fig7 sweep no longer matches the k=1..4 table layout — update the "
        "table columns alongside the spec");
    return;
  }
  const std::size_t kPerSize = result.spec.axes[1].values.size();

  TextTable max_table({"N", "k=1 max load", "k=2 max load", "k=3 max load",
                       "k=4 max load", "k2/k1", "k4/k2"});
  TextTable tot_table({"N", "k=1 total", "k=2 total", "k=3 total",
                       "k=4 total"});
  // Loads in units of 10^3 m^2 to keep the table readable.
  auto fmt = [](double v) { return TextTable::num(v / 1e3, 1); };
  for (std::size_t g = 0; g + kPerSize <= result.groups.size();
       g += kPerSize) {
    const std::string& n = result.groups[g].values[0].second;
    std::vector<double> maxload, total;
    for (std::size_t j = 0; j < kPerSize; ++j) {
      maxload.push_back(result.groups[g + j].metrics[max_m].mean);
      total.push_back(result.groups[g + j].metrics[tot_m].mean);
    }
    max_table.add_row({n, fmt(maxload[0]), fmt(maxload[1]), fmt(maxload[2]),
                       fmt(maxload[3]),
                       TextTable::num(maxload[1] / maxload[0], 2),
                       TextTable::num(maxload[3] / maxload[1], 2)});
    tot_table.add_row(
        {n, fmt(total[0]), fmt(total[1]), fmt(total[2]), fmt(total[3])});
  }
  benchutil::TableSink::instance().add(
      "Fig. 7(a) — maximum sensing load (10^3 m^2), 1 km^2",
      std::move(max_table));
  benchutil::TableSink::instance().add(
      "Fig. 7(b) — total sensing load (10^3 m^2), 1 km^2",
      std::move(tot_table));
  benchutil::TableSink::instance().note(
      "Paper's shape: max load falls as 1/N and scales ~k (ratio columns "
      "~2); total load decreases with N and increases with k.");

  std::ofstream json("BENCH_campaign_fig7_energy.json");
  if (json) result.write_json(json);
  benchutil::TableSink::instance().note(
      "campaign aggregates: BENCH_campaign_fig7_energy.json");
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::register_experiment("fig7/energy", experiment);
  return benchutil::run_main(argc, argv);
}
