// Fig. 7 reproduction: sensing energy consumption (E(r) = pi r^2) of the
// final deployments while scaling the network size from 20 to 180 nodes in
// 1 km^2, for k = 1..4.
//   (a) maximum sensing load: decreases with N, grows ~k; the ratio between
//       the k1 and k2 curves is roughly k1/k2, because LAACAD balances loads
//       to E(r_i) ~ k |A| / N;
//   (b) total sensing load: decreases with N (less overlap waste), grows
//       with k.
#include "bench_common.hpp"
#include "laacad/engine.hpp"
#include "wsn/deployment.hpp"
#include "wsn/energy.hpp"

namespace {

using namespace laacad;

void experiment() {
  wsn::Domain domain = wsn::Domain::square_km();
  const std::vector<int> sizes = {20, 60, 100, 140, 180};

  TextTable max_table({"N", "k=1 max load", "k=2 max load", "k=3 max load",
                       "k=4 max load", "k2/k1", "k4/k2"});
  TextTable tot_table({"N", "k=1 total", "k=2 total", "k=3 total",
                       "k=4 total"});
  for (int n : sizes) {
    std::vector<double> maxload, total;
    for (int k = 1; k <= 4; ++k) {
      Rng rng(100 + n + k);
      wsn::Network net(&domain, wsn::deploy_uniform(domain, n, rng), 200.0);
      core::LaacadConfig cfg;
      cfg.k = k;
      cfg.epsilon = 1.0;
      cfg.max_rounds = 250;
      core::Engine engine(net, cfg);
      engine.run();
      const wsn::LoadReport rep = wsn::load_report(net);
      maxload.push_back(rep.max_load);
      total.push_back(rep.total_load);
    }
    // Loads in units of 10^3 m^2 to keep the table readable.
    auto fmt = [](double v) { return TextTable::num(v / 1e3, 1); };
    max_table.add_row({std::to_string(n), fmt(maxload[0]), fmt(maxload[1]),
                       fmt(maxload[2]), fmt(maxload[3]),
                       TextTable::num(maxload[1] / maxload[0], 2),
                       TextTable::num(maxload[3] / maxload[1], 2)});
    tot_table.add_row({std::to_string(n), fmt(total[0]), fmt(total[1]),
                       fmt(total[2]), fmt(total[3])});
  }
  benchutil::TableSink::instance().add(
      "Fig. 7(a) — maximum sensing load (10^3 m^2), 1 km^2", std::move(max_table));
  benchutil::TableSink::instance().add(
      "Fig. 7(b) — total sensing load (10^3 m^2), 1 km^2", std::move(tot_table));
  benchutil::TableSink::instance().note(
      "Paper's shape: max load falls as 1/N and scales ~k (ratio columns "
      "~2); total load decreases with N and increases with k.");
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::register_experiment("fig7/energy", experiment);
  return benchutil::run_main(argc, argv);
}
