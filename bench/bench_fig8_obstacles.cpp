// Fig. 8 reproduction: adaptability to arbitrarily shaped target areas with
// obstacles. Two irregular domains (an L-shape with one obstacle and a
// cross with two), k in {2, 4, 6, 8} as in the paper's panels. For every
// run we verify exact k-coverage, that no node sits on an obstacle, and the
// "even clustering as if the area were regular" claim via the cluster-size
// statistic of Fig. 5.
#include <functional>
#include <numeric>

#include "bench_common.hpp"
#include "coverage/critical.hpp"
#include "coverage/grid_checker.hpp"
#include "laacad/engine.hpp"
#include "viz/render.hpp"
#include "wsn/deployment.hpp"

namespace {

using namespace laacad;

std::size_t cluster_count(const std::vector<geom::Vec2>& pts, double radius) {
  const int n = static_cast<int>(pts.size());
  std::vector<int> parent(static_cast<std::size_t>(n));
  std::iota(parent.begin(), parent.end(), 0);
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x)
      x = parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
    return x;
  };
  for (int a = 0; a < n; ++a)
    for (int b = a + 1; b < n; ++b)
      if (geom::dist(pts[static_cast<std::size_t>(a)],
                     pts[static_cast<std::size_t>(b)]) <= radius)
        parent[static_cast<std::size_t>(find(a))] = find(b);
  std::size_t clusters = 0;
  for (int a = 0; a < n; ++a)
    if (find(a) == a) ++clusters;
  return clusters;
}

void run_domain(const std::string& name, const wsn::Domain& domain,
                TextTable& table) {
  const int n = 120;
  for (int k : {2, 4, 6, 8}) {
    Rng rng(benchutil::derived_seed(900, k));
    wsn::Network net(&domain, wsn::deploy_uniform(domain, n, rng), 200.0);
    core::LaacadConfig cfg;
    cfg.k = k;
    cfg.epsilon = 2.0;
    cfg.max_rounds = 220;
    core::Engine engine(net, cfg);
    const auto result = engine.run();

    bool feasible = true;
    for (const wsn::Node& node : net.nodes())
      feasible = feasible && domain.contains(node.pos);
    const auto exact =
        cov::critical_point_coverage(domain, cov::sensing_disks(net));
    const std::size_t clusters =
        cluster_count(net.positions(), 0.10 * result.final_max_range);
    const double mean_cluster = static_cast<double>(n) / clusters;

    table.add_row({name, std::to_string(k), std::to_string(result.rounds),
                   TextTable::num(result.final_max_range, 1),
                   TextTable::num(mean_cluster, 2), feasible ? "yes" : "NO",
                   std::to_string(exact.min_depth)});
    viz::render_deployment("fig8_" + name + "_k" + std::to_string(k) + ".svg",
                           net);
  }
}

void experiment() {
  TextTable table({"domain", "k", "rounds", "R* (m)", "mean cluster size",
                   "nodes off obstacles", "verified depth"});
  wsn::Domain lshape = wsn::Domain::lshape(1000, 1000)
                           .with_rect_hole({150, 150}, {330, 330});
  run_domain("lshape", lshape, table);
  wsn::Domain cross = wsn::Domain::cross(1000, 1000, 0.4)
                          .with_rect_hole({460, 120}, {560, 240})
                          .with_rect_hole({430, 720}, {560, 820});
  run_domain("cross", cross, table);
  benchutil::TableSink::instance().add(
      "Fig. 8 — irregular areas with obstacles (120 nodes)", std::move(table));
  benchutil::TableSink::instance().note(
      "Paper's shape: LAACAD adapts to both domains for every k, keeps nodes "
      "off obstacles, k-covers the area, and shows the same even clustering "
      "(mean cluster size ~ k) as in regular areas. SVGs: "
      "fig8_{lshape,cross}_k{2,4,6,8}.svg.");
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::register_experiment("fig8/obstacles", experiment);
  return benchutil::run_main(argc, argv);
}
