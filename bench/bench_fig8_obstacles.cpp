// Fig. 8 reproduction: adaptability to arbitrarily shaped target areas with
// obstacles. Two irregular domains (an L-shape with one obstacle and a
// cross with two), k in {2, 4, 6, 8} as in the paper's panels. For every
// run we verify exact k-coverage, that no node sits on an obstacle, and the
// "even clustering as if the area were regular" claim via the cluster-size
// statistic of Fig. 5.
//
// The (domain x k) grid runs through the campaign engine: the domains are
// declarative scenarios (scenarios/fig8_{lshape,cross}.scn, using the
// obstacle spec lines), the sweep is campaigns/fig8_obstacles.cmp loaded
// from the source tree, and a probe lifts the final network out of each
// trial for the feasibility/cluster checks and the SVGs. The bespoke
// domain-construction-and-k loop is gone. One methodology change rides
// along, as in the fig6/fig5 ports: each (domain, k) cell draws its own
// seeded uniform deployment via the campaign's derived seeds instead of
// reusing one RNG stream across k.
#include <fstream>
#include <functional>
#include <numeric>

#include "bench_common.hpp"
#include "campaign/scheduler.hpp"
#include "coverage/critical.hpp"
#include "coverage/grid_checker.hpp"
#include "scenario/runner.hpp"
#include "viz/render.hpp"

namespace {

using namespace laacad;

std::size_t cluster_count(const std::vector<geom::Vec2>& pts, double radius) {
  const int n = static_cast<int>(pts.size());
  std::vector<int> parent(static_cast<std::size_t>(n));
  std::iota(parent.begin(), parent.end(), 0);
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x)
      x = parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
    return x;
  };
  for (int a = 0; a < n; ++a)
    for (int b = a + 1; b < n; ++b)
      if (geom::dist(pts[static_cast<std::size_t>(a)],
                     pts[static_cast<std::size_t>(b)]) <= radius)
        parent[static_cast<std::size_t>(find(a))] = find(b);
  std::size_t clusters = 0;
  for (int a = 0; a < n; ++a)
    if (find(a) == a) ++clusters;
  return clusters;
}

/// What the probe lifts out of each finished trial (per trial index).
struct ObstacleRow {
  bool have = false;
  bool feasible = false;     ///< no node on an obstacle / outside the domain
  std::size_t clusters = 0;  ///< union-find clusters at 0.1 R*
  int nodes = 0;
  int verified_depth = 0;    ///< exact critical-point min coverage depth
};

using benchutil::axis_value;

/// "../scenarios/fig8_lshape.scn" -> "lshape", for table rows + SVG names.
std::string domain_label(const std::string& scenario_path) {
  std::string label = scenario_path;
  if (const auto slash = label.find_last_of("/\\");
      slash != std::string::npos)
    label = label.substr(slash + 1);
  if (const auto prefix = label.find("fig8_"); prefix == 0)
    label = label.substr(5);
  if (const auto dot = label.find_last_of('.'); dot != std::string::npos)
    label.resize(dot);
  return label;
}

void experiment() {
  std::vector<ObstacleRow> rows;
  const campaign::CampaignResult result = benchutil::run_campaign_with_probe(
      campaign::load_campaign_file(std::string(LAACAD_SOURCE_DIR) +
                                   "/campaigns/fig8_obstacles.cmp"),
      rows,
      [&rows](const campaign::TrialPoint& pt,
              const scenario::ScenarioRunner& runner,
              const scenario::ScenarioResult& sres) {
        ObstacleRow& row = rows[static_cast<std::size_t>(pt.trial)];
        const wsn::Network& net = runner.network();
        row.nodes = net.size();
        row.feasible = true;
        for (const wsn::Node& node : net.nodes())
          row.feasible = row.feasible && runner.domain().contains(node.pos);
        row.clusters = cluster_count(
            net.positions(), 0.10 * sres.phases.back().final_max_range);
        row.verified_depth =
            cov::critical_point_coverage(runner.domain(),
                                         cov::sensing_disks(net))
                .min_depth;
        viz::render_deployment(
            "fig8_" + domain_label(axis_value(pt, "scenario")) + "_k" +
                axis_value(pt, "k") + ".svg",
            net);
        row.have = true;
      });

  TextTable table({"domain", "k", "rounds", "R* (m)", "mean cluster size",
                   "nodes off obstacles", "verified depth"});
  const std::size_t rounds_m = campaign::metric_index("total_rounds");
  const std::size_t rmax_m = campaign::metric_index("max_range");
  for (std::size_t i = 0; i < result.trials.size(); ++i) {
    const campaign::TrialResult& trial = result.trials[i];
    const ObstacleRow& row = rows[i];
    if (!row.have) {  // trial threw or aborted: the probe never ran
      benchutil::TableSink::instance().note(
          "fig8 campaign trial FAILED — no figure produced: " +
          (trial.error.empty() ? "aborted" : trial.error));
      return;
    }
    const double mean_cluster = static_cast<double>(row.nodes) /
                                static_cast<double>(row.clusters);
    table.add_row({domain_label(axis_value(result.points[i], "scenario")),
                   axis_value(result.points[i], "k"),
                   TextTable::num(trial.metrics[rounds_m], 0),
                   TextTable::num(trial.metrics[rmax_m], 1),
                   TextTable::num(mean_cluster, 2),
                   row.feasible ? "yes" : "NO",
                   std::to_string(row.verified_depth)});
  }
  benchutil::TableSink::instance().add(
      "Fig. 8 — irregular areas with obstacles (120 nodes)", std::move(table));
  benchutil::TableSink::instance().note(
      "Paper's shape: LAACAD adapts to both domains for every k, keeps nodes "
      "off obstacles, k-covers the area, and shows the same even clustering "
      "(mean cluster size ~ k) as in regular areas. SVGs: "
      "fig8_{lshape,cross}_k{2,4,6,8}.svg.");

  std::ofstream json("BENCH_campaign_fig8_obstacles.json");
  if (json) result.write_json(json);
  benchutil::TableSink::instance().note(
      "campaign aggregates: BENCH_campaign_fig8_obstacles.json");
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::register_experiment("fig8/obstacles", experiment);
  return benchutil::run_main(argc, argv);
}
