// Microbenchmarks of the geometric kernels underneath LAACAD: minimum
// enclosing circle (Welzl), half-plane clipping, order-k cell construction,
// dominating-region BFS, and the adaptive Lemma-1 solver. These are classic
// google-benchmark cases (multiple timed iterations), unlike the one-shot
// experiment benches.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "geometry/welzl.hpp"
#include "voronoi/adaptive.hpp"
#include "voronoi/orderk.hpp"
#include "voronoi/sites.hpp"
#include "wsn/spatial_grid.hpp"

namespace {

using namespace laacad;
using geom::Ring;
using geom::Vec2;

std::vector<Vec2> random_points(int n, std::uint64_t seed, double side) {
  Rng rng(seed);
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0, side), rng.uniform(0, side)});
  return pts;
}

void BM_Welzl(benchmark::State& state) {
  const auto pts = random_points(static_cast<int>(state.range(0)), 1, 100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::min_enclosing_circle(pts));
  }
}
BENCHMARK(BM_Welzl)->Arg(16)->Arg(128)->Arg(1024);

void BM_ClipRing(benchmark::State& state) {
  Ring ring = geom::inscribed_ngon({50, 50}, 40.0,
                                   static_cast<int>(state.range(0)));
  const geom::HalfPlane hp = geom::bisector_halfplane({50, 50}, {90, 70});
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::clip_ring(ring, hp));
  }
}
BENCHMARK(BM_ClipRing)->Arg(8)->Arg(32)->Arg(128);

void BM_OrderKCell(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  auto sites = vor::separate_sites(random_points(40, 2, 100.0));
  const Ring window = geom::box_ring({{0, 0}, {100, 100}});
  const auto gens = vor::k_nearest_brute(sites, sites[0], k);
  std::vector<int> others;
  for (int i = 0; i < 40; ++i)
    if (!std::count(gens.begin(), gens.end(), i)) others.push_back(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vor::order_k_cell(sites, gens, others, window));
  }
}
BENCHMARK(BM_OrderKCell)->Arg(1)->Arg(3)->Arg(6);

void BM_DominatingRegion(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  auto sites = vor::separate_sites(random_points(60, 3, 200.0));
  const Ring window = geom::box_ring({{0, 0}, {200, 200}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        vor::dominating_region_cells(sites, 17, k, window));
  }
}
BENCHMARK(BM_DominatingRegion)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_AdaptiveSolver(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto sites = vor::separate_sites(random_points(n, 4, 1000.0));
  const wsn::SpatialGrid grid(sites, 50.0);
  const geom::BBox bbox{{0, 0}, {1000, 1000}};
  // Interior-most node.
  int center = 0;
  double best = 1e18;
  for (int i = 0; i < n; ++i) {
    const double d = geom::dist(sites[static_cast<std::size_t>(i)], {500, 500});
    if (d < best) {
      best = d;
      center = i;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        vor::compute_dominating_region(sites, grid, center, 2, bbox));
  }
}
BENCHMARK(BM_AdaptiveSolver)->Arg(100)->Arg(400)->Arg(1600);

void BM_EnumerateAllCells(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  auto sites = vor::separate_sites(random_points(30, 5, 100.0));
  const Ring window = geom::box_ring({{0, 0}, {100, 100}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(vor::enumerate_order_k_cells(sites, k, window));
  }
}
BENCHMARK(BM_EnumerateAllCells)->Arg(1)->Arg(2)->Arg(4);

void BM_GridWithin(benchmark::State& state) {
  auto pts = random_points(2000, 6, 1000.0);
  const wsn::SpatialGrid grid(pts, 50.0);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        grid.within({rng.uniform(0, 1000), rng.uniform(0, 1000)}, 80.0));
  }
}
BENCHMARK(BM_GridWithin);

}  // namespace

BENCHMARK_MAIN();
