// Microbenchmarks of the geometric kernels underneath LAACAD: minimum
// enclosing circle (Welzl), half-plane clipping, order-k cell construction,
// dominating-region BFS, and the adaptive Lemma-1 solver. These are classic
// google-benchmark cases (multiple timed iterations), unlike the one-shot
// experiment benches.
#include <benchmark/benchmark.h>

#include "common/perf_counters.hpp"
#include "common/rng.hpp"
#include "geometry/welzl.hpp"
#include "voronoi/adaptive.hpp"
#include "voronoi/orderk.hpp"
#include "voronoi/sites.hpp"
#include "wsn/spatial_grid.hpp"

namespace {

using namespace laacad;
using geom::Ring;
using geom::Vec2;

std::vector<Vec2> random_points(int n, std::uint64_t seed, double side) {
  Rng rng(seed);
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0, side), rng.uniform(0, side)});
  return pts;
}

void BM_Welzl(benchmark::State& state) {
  const auto pts = random_points(static_cast<int>(state.range(0)), 1, 100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::min_enclosing_circle(pts));
  }
}
BENCHMARK(BM_Welzl)->Arg(16)->Arg(128)->Arg(1024);

void BM_ClipRing(benchmark::State& state) {
  Ring ring = geom::inscribed_ngon({50, 50}, 40.0,
                                   static_cast<int>(state.range(0)));
  const geom::HalfPlane hp = geom::bisector_halfplane({50, 50}, {90, 70});
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::clip_ring(ring, hp));
  }
}
BENCHMARK(BM_ClipRing)->Arg(8)->Arg(32)->Arg(128);

void BM_OrderKCell(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  auto sites = vor::separate_sites(random_points(40, 2, 100.0));
  const Ring window = geom::box_ring({{0, 0}, {100, 100}});
  const auto gens = vor::k_nearest_brute(sites, sites[0], k);
  std::vector<int> others;
  for (int i = 0; i < 40; ++i)
    if (!std::count(gens.begin(), gens.end(), i)) others.push_back(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vor::order_k_cell(sites, gens, others, window));
  }
}
BENCHMARK(BM_OrderKCell)->Arg(1)->Arg(3)->Arg(6);

void BM_DominatingRegion(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  auto sites = vor::separate_sites(random_points(60, 3, 200.0));
  const Ring window = geom::box_ring({{0, 0}, {200, 200}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        vor::dominating_region_cells(sites, 17, k, window));
  }
}
BENCHMARK(BM_DominatingRegion)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_AdaptiveSolver(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto sites = vor::separate_sites(random_points(n, 4, 1000.0));
  const wsn::SpatialGrid grid(sites, 50.0);
  const geom::BBox bbox{{0, 0}, {1000, 1000}};
  // Interior-most node.
  int center = 0;
  double best = 1e18;
  for (int i = 0; i < n; ++i) {
    const double d = geom::dist(sites[static_cast<std::size_t>(i)], {500, 500});
    if (d < best) {
      best = d;
      center = i;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        vor::compute_dominating_region(sites, grid, center, 2, bbox));
  }
}
BENCHMARK(BM_AdaptiveSolver)->Arg(100)->Arg(400)->Arg(1600);

void BM_EnumerateAllCells(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  auto sites = vor::separate_sites(random_points(30, 5, 100.0));
  const Ring window = geom::box_ring({{0, 0}, {100, 100}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(vor::enumerate_order_k_cells(sites, k, window));
  }
}
BENCHMARK(BM_EnumerateAllCells)->Arg(1)->Arg(2)->Arg(4);

// ------------------------------------------------- order-k kernel suite ----
//
// Brute vs grid-backed kernel on the fig6-style configuration (400 nodes on
// 1 km^2), with the deterministic cost counters (site-distance evaluations,
// clip passes, ring allocations) attached as benchmark counters so the
// BENCH json artifact tracks the reduction — the acceptance bar is >= 2x
// fewer dist2 evals for the grid kernel, independent of machine speed. Both
// kernels produce bit-identical cells (ctest-enforced); only the cost moves.
// Keep the configuration (seed 7, 400 sites on 1 km^2, interior node, grid
// cell 50) in lockstep with GridKernel.HalvesDistanceEvalsOnFig6Config in
// tests/test_orderk.cpp, which gates the same 2x bar in ctest.

std::vector<Vec2> fig6_sites(int n) {
  Rng rng(7);
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0, 1000.0), rng.uniform(0, 1000.0)});
  return vor::separate_sites(std::move(pts));
}

int interior_node(const std::vector<Vec2>& sites, Vec2 center) {
  int best_i = 0;
  double best = 1e18;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const double d = geom::dist(sites[i], center);
    if (d < best) {
      best = d;
      best_i = static_cast<int>(i);
    }
  }
  return best_i;
}

void report_kernel_counters(benchmark::State& state) {
  const auto& c = perf::counters();
  const auto per_iter = [&](std::uint64_t v) {
    return benchmark::Counter(
        static_cast<double>(v) / static_cast<double>(state.iterations()));
  };
  state.counters["dist2_evals"] = per_iter(c.dist2_evals);
  state.counters["clip_calls"] = per_iter(c.clip_calls);
  state.counters["ring_allocs"] = per_iter(c.ring_allocs);
  state.counters["grid_queries"] = per_iter(c.grid_queries);
  state.counters["cells"] = per_iter(c.cells_built);
  state.counters["fallbacks"] = per_iter(c.kernel_fallbacks);
}

void BM_OrderKRegionBrute(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto sites = fig6_sites(400);
  const Ring window = geom::box_ring({{0, 0}, {1000, 1000}});
  const int i = interior_node(sites, {500, 500});
  perf::counters().reset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        vor::dominating_region_cells_brute(sites, i, k, window));
  }
  report_kernel_counters(state);
}
BENCHMARK(BM_OrderKRegionBrute)->Arg(1)->Arg(2)->Arg(3);

void BM_OrderKRegionGrid(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto sites = fig6_sites(400);
  const Ring window = geom::box_ring({{0, 0}, {1000, 1000}});
  const int i = interior_node(sites, {500, 500});
  const wsn::SpatialGrid grid(sites, 50.0);  // built once, reused per round
  perf::counters().reset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        vor::dominating_region_cells(sites, grid, i, k, window));
  }
  report_kernel_counters(state);
}
BENCHMARK(BM_OrderKRegionGrid)->Arg(1)->Arg(2)->Arg(3);

void BM_OrderKEnumerateBrute(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto sites = fig6_sites(120);
  const Ring window = geom::box_ring({{0, 0}, {1000, 1000}});
  perf::counters().reset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        vor::enumerate_order_k_cells_brute(sites, k, window));
  }
  report_kernel_counters(state);
}
BENCHMARK(BM_OrderKEnumerateBrute)->Arg(1)->Arg(2);

void BM_OrderKEnumerateGrid(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto sites = fig6_sites(120);
  const Ring window = geom::box_ring({{0, 0}, {1000, 1000}});
  const wsn::SpatialGrid grid(sites, 95.0);
  perf::counters().reset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        vor::enumerate_order_k_cells(sites, grid, k, window));
  }
  report_kernel_counters(state);
}
BENCHMARK(BM_OrderKEnumerateGrid)->Arg(1)->Arg(2);

void BM_GridWithin(benchmark::State& state) {
  auto pts = random_points(2000, 6, 1000.0);
  const wsn::SpatialGrid grid(pts, 50.0);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        grid.within({rng.uniform(0, 1000), rng.uniform(0, 1000)}, 80.0));
  }
}
BENCHMARK(BM_GridWithin);

}  // namespace

BENCHMARK_MAIN();
