// Scenario-engine bench: the full cascade timeline (fail → drain → targeted
// fail, redeploying after each) as a one-shot experiment, so the wall-clock
// cost of dynamic-network runs is tracked alongside the static figures.
// LAACAD_THREADS parallelizes the round loop; phase metrics are identical
// for every value.
#include "bench_common.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace {

using namespace laacad;

constexpr const char* kCascadeSpec = R"(
name      bench_cascade
domain    square
side      300
nodes     40
k         2
seed      7
max_rounds 250
battery   2.0e6
event converged fail_nodes count=6 pick=random
event converged drain_battery epochs=40
event converged fail_nodes count=4 pick=max_range
)";

void run_cascade() {
  scenario::ScenarioSpec spec = scenario::parse_scenario_string(kCascadeSpec);
  spec.num_threads = benchutil::num_threads();
  scenario::ScenarioRunner runner(std::move(spec));
  const scenario::ScenarioResult result = runner.run();

  TextTable table({"phase", "cause", "rounds", "nodes", "R* (m)", "fairness",
                   "min depth"});
  for (const auto& p : result.phases) {
    table.add_row({std::to_string(p.phase), p.cause,
                   std::to_string(p.rounds), std::to_string(p.nodes),
                   TextTable::num(p.final_max_range, 2),
                   TextTable::num(p.load.fairness, 4),
                   std::to_string(p.coverage_min_depth)});
  }
  benchutil::TableSink::instance().add("scenario cascade — phase metrics",
                                       std::move(table));
  benchutil::TableSink::instance().note(
      std::string("final 2-coverage: ") +
      (result.final_coverage_ok ? "OK" : "LOST") + ", total rounds " +
      std::to_string(result.total_rounds));
}

}  // namespace

int main(int argc, char** argv) {
  laacad::benchutil::register_experiment("scenario/cascade", run_cascade);
  return laacad::benchutil::run_main(argc, argv);
}
