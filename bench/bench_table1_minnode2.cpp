// Table I reproduction: LAACAD as an approximate min-node 2-coverage
// solver. Deploy N in {1000, 1200, 1400, 1600} nodes over 1 km^2, run
// LAACAD at k = 2, take R* = max sensing range, and compare N against the
// boundary-free optimum of Bai et al. [3]:  N* = 4 |A| / (3 sqrt(3) R*^2).
//
// Paper's shape: N*/N ~ 0.85 — LAACAD uses ~15% more nodes than the
// boundary-free bound, attributed to boundary effects. (The paper's printed
// R* values correspond to a ~100 m x 100 m area; we run a true 1 km^2, so
// our radii are ~10x — the N* column and the ratio are scale-free.)
//
// The N sweep runs through the campaign engine (the same spec ships as
// campaigns/table1_minnode2.cmp): one declarative grid, trials sharded
// across LAACAD_THREADS workers, each trial's final network observed by a
// probe for the median-range column. One methodology change rides along:
// per-trial seeds are campaign-derived (Rng::derive over the grid point)
// instead of the old ad-hoc derived_seed(500, N) stream, so the deployments
// differ from the hand-rolled loop's — the table is a shape reproduction,
// not a digit-for-digit one, and the shape is seed-robust.
#include <cmath>
#include <fstream>

#include "baselines/regular.hpp"
#include "bench_common.hpp"
#include "campaign/scheduler.hpp"
#include "common/stats.hpp"
#include "scenario/runner.hpp"
#include "wsn/network.hpp"

namespace {

using namespace laacad;

constexpr const char* kCampaignSpec = R"(
name      table1_minnode2
trials    1
seed      500
domain    square
side      1000
deploy    uniform
k         2
epsilon   0.2
max_rounds 400
gamma     60
grid_resolution 20
sweep nodes 1000 1200 1400 1600
)";

struct Row {
  double median_range = 0.0;
};

void experiment() {
  std::vector<Row> rows;
  auto result = benchutil::run_campaign_with_probe(
      campaign::parse_campaign_string(kCampaignSpec), rows,
      [&rows](const campaign::TrialPoint& pt,
              const scenario::ScenarioRunner& runner,
              const scenario::ScenarioResult&) {
        rows[static_cast<std::size_t>(pt.trial)].median_range = percentile(
            runner.network().sensing_ranges(), 50.0);
      });

  const double area = 1000.0 * 1000.0;
  TextTable table({"N", "R* (m)", "N* = 4|A|/(3sqrt3 R*^2)", "N*/N",
                   "median r (m)", "N*(median)/N"});
  for (const auto& trial : result.trials) {
    if (!trial.ok) {
      benchutil::TableSink::instance().note(
          "table1 campaign trial FAILED: " +
          (trial.error.empty() ? "coverage not verified" : trial.error));
      continue;
    }
    const campaign::TrialPoint& pt =
        result.points[static_cast<std::size_t>(trial.trial)];
    const double n =
        trial.metrics[campaign::metric_index("final_nodes")];
    const double rstar = trial.metrics[campaign::metric_index("max_range")];
    const double nstar = base::bai_min_nodes_2cov(area, rstar);
    const double rmed =
        rows[static_cast<std::size_t>(trial.trial)].median_range;
    const double nstar_med = base::bai_min_nodes_2cov(area, rmed);
    table.add_row({benchutil::axis_value(pt, "nodes"),
                   TextTable::num(rstar, 3),
                   std::to_string(static_cast<long long>(std::lround(nstar))),
                   TextTable::num(nstar / n, 3), TextTable::num(rmed, 3),
                   TextTable::num(nstar_med / n, 3)});
  }
  benchutil::TableSink::instance().add(
      "Table I — minimum nodes for 2-coverage (vs Bai et al. [3])",
      std::move(table));
  benchutil::TableSink::instance().note(
      "Paper's values: N=1000..1600 -> N* = 836/1047/1210/1386, i.e. N*/N ~ "
      "0.84-0.87, boundary effects blamed for the ~15% overhead. Shape to "
      "match: R* ~ 1/sqrt(N); our max-range ratio lands ~0.75-0.80 (a few "
      "corner nodes keep larger regions), while the median-range ratio "
      "reproduces the paper's ~0.85 directly.");

  std::ofstream json("BENCH_campaign_table1_minnode2.json");
  if (json) result.write_json(json);
  benchutil::TableSink::instance().note(
      "campaign aggregates: BENCH_campaign_table1_minnode2.json");
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::register_experiment("table1/minnode_2coverage", experiment);
  return benchutil::run_main(argc, argv);
}
