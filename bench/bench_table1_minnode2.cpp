// Table I reproduction: LAACAD as an approximate min-node 2-coverage
// solver. Deploy N in {1000, 1200, 1400, 1600} nodes over 1 km^2, run
// LAACAD at k = 2, take R* = max sensing range, and compare N against the
// boundary-free optimum of Bai et al. [3]:  N* = 4 |A| / (3 sqrt(3) R*^2).
//
// Paper's shape: N*/N ~ 0.85 — LAACAD uses ~15% more nodes than the
// boundary-free bound, attributed to boundary effects. (The paper's printed
// R* values correspond to a ~100 m x 100 m area; we run a true 1 km^2, so
// our radii are ~10x — the N* column and the ratio are scale-free.)
#include "bench_common.hpp"
#include "baselines/regular.hpp"
#include "common/stats.hpp"
#include "laacad/engine.hpp"
#include "wsn/deployment.hpp"

namespace {

using namespace laacad;

void experiment() {
  wsn::Domain domain = wsn::Domain::square_km();
  TextTable table({"N", "R* (m)", "N* = 4|A|/(3sqrt3 R*^2)", "N*/N",
                   "median r (m)", "N*(median)/N"});
  for (int n : {1000, 1200, 1400, 1600}) {
    Rng rng(benchutil::derived_seed(500, n));
    wsn::Network net(&domain, wsn::deploy_uniform(domain, n, rng), 60.0);
    core::LaacadConfig cfg;
    cfg.k = 2;
    cfg.epsilon = 0.2;
    cfg.max_rounds = 400;
    core::Engine engine(net, cfg);
    const auto result = engine.run();
    const double rstar = result.final_max_range;
    const double nstar = base::bai_min_nodes_2cov(domain.area(), rstar);
    std::vector<double> ranges;
    for (const auto& node : net.nodes())
      ranges.push_back(node.sensing_range);
    const double rmed = percentile(ranges, 50.0);
    const double nstar_med = base::bai_min_nodes_2cov(domain.area(), rmed);
    table.add_row({std::to_string(n), TextTable::num(rstar, 3),
                   std::to_string(static_cast<long long>(std::lround(nstar))),
                   TextTable::num(nstar / n, 3), TextTable::num(rmed, 3),
                   TextTable::num(nstar_med / n, 3)});
  }
  benchutil::TableSink::instance().add(
      "Table I — minimum nodes for 2-coverage (vs Bai et al. [3])",
      std::move(table));
  benchutil::TableSink::instance().note(
      "Paper's values: N=1000..1600 -> N* = 836/1047/1210/1386, i.e. N*/N ~ "
      "0.84-0.87, boundary effects blamed for the ~15% overhead. Shape to "
      "match: R* ~ 1/sqrt(N); our max-range ratio lands ~0.75-0.80 (a few "
      "corner nodes keep larger regions), while the median-range ratio "
      "reproduces the paper's ~0.85 directly.");
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::register_experiment("table1/minnode_2coverage", experiment);
  return benchutil::run_main(argc, argv);
}
