// Table II reproduction: 180 nodes k-cover 1 km^2 under LAACAD for
// k = 3..8; every node is then given the common range R*_k, and we compute
// how many nodes the Reuleaux-lens scheme of Ammari & Das [15] would need
// for the same coverage at that range:
//
//   N*_k = 6 k |A| / ((4 pi - 3 sqrt 3) R*_k^2).
//
// Paper's shape: R*_k grows ~ sqrt(k), so N*_k is nearly flat (~318-323 in
// the paper) and much larger than the 180 nodes LAACAD uses — LAACAD
// k-covers the same area with ~44% fewer nodes.
//
// The k sweep runs through the campaign engine (the same spec ships as
// campaigns/table2_ammari.cmp). Per-trial seeds are campaign-derived, so
// deployments differ from the old hand-rolled derived_seed(700, k) loop —
// the table is a shape reproduction, robust to the seed stream.
#include <cmath>
#include <fstream>

#include "baselines/ammari.hpp"
#include "bench_common.hpp"
#include "campaign/scheduler.hpp"

namespace {

using namespace laacad;

constexpr const char* kCampaignSpec = R"(
name      table2_ammari
trials    1
seed      700
domain    square
side      1000
deploy    uniform
nodes     180
epsilon   1.0
max_rounds 250
gamma     200
grid_resolution 20
sweep k 3 4 5 6 7 8
)";

void experiment() {
  campaign::CampaignOptions opt;
  opt.workers = benchutil::num_threads();
  campaign::CampaignScheduler scheduler(
      campaign::parse_campaign_string(kCampaignSpec), std::move(opt));
  const campaign::CampaignResult result = scheduler.run();

  const double area = 1000.0 * 1000.0;
  const int n = 180;
  TextTable table({"k", "R*_k (m)", "N*_k (Ammari-Das)", "N*_k / N",
                   "R*_k / sqrt(k)"});
  for (const auto& trial : result.trials) {
    const campaign::TrialPoint& pt =
        result.points[static_cast<std::size_t>(trial.trial)];
    if (!trial.ok) {
      benchutil::TableSink::instance().note(
          "table2 campaign trial k=" + benchutil::axis_value(pt, "k") +
          " FAILED: " +
          (trial.error.empty() ? "coverage not verified" : trial.error));
      continue;
    }
    const double kk = std::stod(benchutil::axis_value(pt, "k"));
    const double rstar = trial.metrics[campaign::metric_index("max_range")];
    const double nstar = base::ammari_min_nodes(area, rstar, static_cast<int>(kk));
    table.add_row({benchutil::axis_value(pt, "k"), TextTable::num(rstar, 2),
                   std::to_string(static_cast<long long>(std::lround(nstar))),
                   TextTable::num(nstar / n, 2),
                   TextTable::num(rstar / std::sqrt(kk), 2)});
  }
  benchutil::TableSink::instance().add(
      "Table II — nodes the Ammari-Das [15] scheme needs at LAACAD's R*_k "
      "(N = 180, 1 km^2)",
      std::move(table));
  benchutil::TableSink::instance().note(
      "Paper's values (at their scale): R*_k = 8.77..14.32, N*_k ~ 313-323, "
      "flat in k. Shape to match: N*_k ~ constant ~1.75x the 180 LAACAD "
      "nodes, and R*_k/sqrt(k) ~ constant.");

  std::ofstream json("BENCH_campaign_table2_ammari.json");
  if (json) result.write_json(json);
  benchutil::TableSink::instance().note(
      "campaign aggregates: BENCH_campaign_table2_ammari.json");
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::register_experiment("table2/ammari_kcoverage", experiment);
  return benchutil::run_main(argc, argv);
}
