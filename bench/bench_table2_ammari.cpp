// Table II reproduction: 180 nodes k-cover 1 km^2 under LAACAD for
// k = 3..8; every node is then given the common range R*_k, and we compute
// how many nodes the Reuleaux-lens scheme of Ammari & Das [15] would need
// for the same coverage at that range:
//
//   N*_k = 6 k |A| / ((4 pi - 3 sqrt 3) R*_k^2).
//
// Paper's shape: R*_k grows ~ sqrt(k), so N*_k is nearly flat (~318-323 in
// the paper) and much larger than the 180 nodes LAACAD uses — LAACAD
// k-covers the same area with ~44% fewer nodes.
#include "bench_common.hpp"
#include "baselines/ammari.hpp"
#include "laacad/engine.hpp"
#include "wsn/deployment.hpp"

namespace {

using namespace laacad;

void experiment() {
  wsn::Domain domain = wsn::Domain::square_km();
  const int n = 180;
  TextTable table({"k", "R*_k (m)", "N*_k (Ammari-Das)", "N*_k / N",
                   "R*_k / sqrt(k)"});
  for (int k = 3; k <= 8; ++k) {
    Rng rng(benchutil::derived_seed(700, k));
    wsn::Network net(&domain, wsn::deploy_uniform(domain, n, rng), 200.0);
    core::LaacadConfig cfg;
    cfg.k = k;
    cfg.epsilon = 1.0;
    cfg.max_rounds = 250;
    core::Engine engine(net, cfg);
    const auto result = engine.run();
    const double rstar = result.final_max_range;
    const double nstar = base::ammari_min_nodes(domain.area(), rstar, k);
    table.add_row({std::to_string(k), TextTable::num(rstar, 2),
                   std::to_string(static_cast<long long>(std::lround(nstar))),
                   TextTable::num(nstar / n, 2),
                   TextTable::num(rstar / std::sqrt(double(k)), 2)});
  }
  benchutil::TableSink::instance().add(
      "Table II — nodes the Ammari-Das [15] scheme needs at LAACAD's R*_k "
      "(N = 180, 1 km^2)",
      std::move(table));
  benchutil::TableSink::instance().note(
      "Paper's values (at their scale): R*_k = 8.77..14.32, N*_k ~ 313-323, "
      "flat in k. Shape to match: N*_k ~ constant ~1.75x the 180 LAACAD "
      "nodes, and R*_k/sqrt(k) ~ constant.");
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::register_experiment("table2/ammari_kcoverage", experiment);
  return benchutil::run_main(argc, argv);
}
