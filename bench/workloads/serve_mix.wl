# Default serving workload: knn-heavy query mix at a fixed offered rate,
# with periodic churn so snapshots keep turning over mid-run. Mirrored in
# examples/serve_bench.cpp as the embedded default.
name        serve_mix
requests    2000
rate        500
connections 2
seed        7
knn_k       3
mix         knn=6 coverage=2 load=1 stats=1
churn       every=250 fail_nodes count=2 pick=random
churn       every=600 add_nodes count=3 deploy=uniform
