# Tiny fixed-count workload for CI and ctest: finishes in well under a
# second, still exercises every verb plus churn. Closed loop (rate 0) so
# the smoke never depends on the runner's clock resolution.
name        serve_smoke
requests    200
rate        0
connections 2
seed        3
knn_k       3
mix         knn=5 coverage=2 load=1 stats=1 health=1
churn       every=50 fail_nodes count=1 pick=random
