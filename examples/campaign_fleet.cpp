// campaign_fleet — run one campaign as a fleet of local shard processes
// and merge their manifests into the single-process outputs.
//
// Usage:
//   campaign_fleet <campaign-file> --shards N [--workers W] [--runner PATH]
//                  [--max-restarts K] [--resume] [--merge-only]
//                  [--manifest-dir DIR] [--json PATH] [--csv PATH]
//                  [--manifest PATH] [--quiet] [--heartbeat] [--trace PATH]
//
// Spawns one `campaign_runner --shard i/N` process per shard (fork/exec of
// the binary next to this one unless --runner overrides), streams each
// worker's output prefixed with its shard, restarts crashed shards with
// --resume, and merges the shard manifests on completion. The merged
// BENCH_campaign_<name>.json / _trials.csv are byte-identical to what a
// single `campaign_runner` run would have produced, for any shard count
// and any per-shard worker count; the merged .manifest is row-sorted, so
// it matches the journal of a *serial* (--workers 1) run — a parallel
// run's journal is the same rows in completion order.
//
// Cross-host campaigns: run `campaign_runner --shard i/N` on each host,
// rsync the BENCH_campaign_<name>.shard-*-of-N.manifest files into one
// directory, and run `campaign_fleet <campaign-file> --shards N
// --merge-only --manifest-dir DIR` there — the merge validates the fleet
// (one fingerprint, one shard scheme, every trial exactly once) before
// emitting anything.
//
// Exit status: 0 all trials ok, 1 merge succeeded but trials failed, 2
// infrastructure failure (bad spec, crashed-out shard, merge validation).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "dist/fleet.hpp"
#include "obs/trace.hpp"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s <campaign-file> --shards N [--workers W] [--runner PATH]\n"
      "          [--max-restarts K] [--resume] [--merge-only]\n"
      "          [--manifest-dir DIR] [--json PATH] [--csv PATH]\n"
      "          [--manifest PATH] [--quiet]\n"
      "  --shards N        shard processes to spawn (and manifests to merge)\n"
      "  --workers W       per-shard trial parallelism (0 = hardware)\n"
      "  --runner PATH     campaign_runner binary (default: next to this one)\n"
      "  --max-restarts K  crash restarts allowed per shard (default 2)\n"
      "  --resume          pass --resume to the first launch of every shard\n"
      "  --merge-only      skip launching; merge existing shard manifests\n"
      "  --manifest-dir DIR  where shard manifests live (default: cwd)\n"
      "  --json/--csv/--manifest PATH  merged output paths\n"
      "  --heartbeat       shards emit JSON heartbeats; the supervisor\n"
      "                    consumes them and emits fleet-level heartbeats\n"
      "                    (stderr) instead of scraping stdout\n"
      "  --trace PATH      write a Chrome trace-event JSON with one span\n"
      "                    per shard lifecycle (spawn to reap)\n",
      argv0);
}

/// The runner lives next to this binary in every supported layout (one
/// build tree, one install prefix, one rsync'd directory).
std::string sibling_runner(const char* argv0) {
  std::string self = argv0;
#ifndef _WIN32
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    self = buf;
  }
#endif
  const auto slash = self.find_last_of("/\\");
  const std::string dir =
      slash == std::string::npos ? std::string() : self.substr(0, slash + 1);
  return dir + "campaign_runner";
}

int parse_nonneg(const char* what, const char* v) {
  char* end = nullptr;
  const long n = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || n < 0) {
    std::fprintf(stderr, "%s expects a non-negative integer\n", what);
    std::exit(2);
  }
  return static_cast<int>(n);
}

}  // namespace

int main(int argc, char** argv) {
  laacad::dist::FleetOptions opt;
  std::string trace_path;
  for (int a = 1; a < argc; ++a) {
    const std::string flag = argv[a];
    auto next_value = [&](const char* what) -> const char* {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "%s expects a value\n", what);
        std::exit(2);
      }
      return argv[++a];
    };
    if (flag == "--help" || flag == "-h") { usage(argv[0]); return 0; }
    else if (flag == "--quiet") opt.quiet = true;
    else if (flag == "--heartbeat") opt.heartbeat = true;
    else if (flag == "--trace") trace_path = next_value("--trace");
    else if (flag == "--resume") opt.resume = true;
    else if (flag == "--merge-only") opt.merge_only = true;
    else if (flag == "--shards")
      opt.shards = parse_nonneg("--shards", next_value("--shards"));
    else if (flag == "--workers")
      opt.workers = parse_nonneg("--workers", next_value("--workers"));
    else if (flag == "--max-restarts")
      opt.max_restarts =
          parse_nonneg("--max-restarts", next_value("--max-restarts"));
    else if (flag == "--runner") opt.runner = next_value("--runner");
    else if (flag == "--manifest-dir")
      opt.manifest_dir = next_value("--manifest-dir");
    else if (flag == "--json") opt.json_path = next_value("--json");
    else if (flag == "--csv") opt.csv_path = next_value("--csv");
    else if (flag == "--manifest")
      opt.merged_manifest_path = next_value("--manifest");
    else if (!flag.empty() && flag[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      usage(argv[0]);
      return 2;
    } else if (opt.campaign_path.empty()) opt.campaign_path = flag;
    else { usage(argv[0]); return 2; }
  }
  if (opt.campaign_path.empty()) { usage(argv[0]); return 2; }
  if (opt.runner.empty()) opt.runner = sibling_runner(argv[0]);
  if (!trace_path.empty()) laacad::obs::start_trace(trace_path);
  const int status = laacad::dist::run_fleet(opt);
  if (!trace_path.empty()) laacad::obs::stop_trace();
  return status;
}
