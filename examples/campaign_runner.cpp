// campaign_runner — expand a declarative parameter-sweep campaign into a
// trial matrix, shard it across workers, and emit aggregate metrics.
//
// Usage:
//   campaign_runner <campaign-file> [--workers N] [--trial-threads N]
//                   [--resume] [--json PATH] [--csv PATH] [--manifest PATH]
//                   [--shard i/N] [--dry-run] [--quiet]
//                   [--trace PATH] [--heartbeat]
//
// The campaign format is documented in src/campaign/spec.hpp and the
// README; shipped examples live in campaigns/. Outputs (defaults derive
// from the campaign name):
//   BENCH_campaign_<name>.json      grouped aggregates + per-trial rows
//   BENCH_campaign_<name>_trials.csv   trial log, one row per trial
//   BENCH_campaign_<name>.manifest  streaming journal; --resume replays it
// All outputs are byte-identical for every --workers value and for any
// interrupt/--resume split. Exit status 0 iff every trial completed with
// verified final k-coverage.
//
// With --shard i/N this process runs only its stride partition of the
// matrix (trial % N == i, see src/dist/partition.hpp), journals into
// BENCH_campaign_<name>.shard-i-of-N.manifest, and emits no aggregates —
// those come from merging all N shard manifests (campaign_fleet, which
// also spawns local shard fleets; cross-host runs rsync the manifests and
// merge with --merge-only). Per-shard --resume works unchanged.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "campaign/scheduler.hpp"
#include "common/sysinfo.hpp"
#include "common/table.hpp"
#include "dist/partition.hpp"
#include "obs/heartbeat.hpp"
#include "obs/trace.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s <campaign-file> [--workers N] [--trial-threads N]\n"
      "          [--resume] [--json PATH] [--csv PATH] [--manifest PATH]\n"
      "          [--shard i/N] [--dry-run] [--quiet]\n"
      "  --workers N   trial-level parallelism (0 = hardware); outputs are\n"
      "                byte-identical for every value\n"
      "  --trial-threads N  engine threads inside each trial (0 = hardware);\n"
      "                requires --workers 1; outputs stay byte-identical\n"
      "  --resume      skip trials already journaled in the manifest\n"
      "  --json PATH   aggregate output (default BENCH_campaign_<name>.json)\n"
      "  --csv PATH    trial log (default BENCH_campaign_<name>_trials.csv)\n"
      "  --manifest PATH  journal path (default BENCH_campaign_<name>.manifest)\n"
      "  --shard i/N   run only this stride partition of the trial matrix,\n"
      "                journal to BENCH_campaign_<name>.shard-i-of-N.manifest,\n"
      "                emit no aggregates (merge shards with campaign_fleet)\n"
      "  --dry-run     print the expanded trial matrix and exit\n"
      "  --trace PATH  write a Chrome trace-event JSON timeline (per-trial\n"
      "                spans, engine round stages); BENCH outputs are\n"
      "                byte-identical with or without it\n"
      "  --heartbeat   emit one-line JSON progress heartbeats on stderr\n",
      argv0);
}

std::string describe_point(
    const std::vector<std::pair<std::string, std::string>>& values) {
  std::string out;
  for (const auto& [key, value] : values) {
    if (!out.empty()) out += ' ';
    out += key + "=" + value;
  }
  return out.empty() ? "-" : out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace laacad;

  std::string path, json_path, csv_path, manifest_path, trace_path;
  campaign::CampaignOptions opt;
  bool dry_run = false, quiet = false, shard_given = false;
  bool heartbeat = false;
  for (int a = 1; a < argc; ++a) {
    const std::string flag = argv[a];
    auto next_value = [&](const char* what) -> const char* {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "%s expects a value\n", what);
        std::exit(2);
      }
      return argv[++a];
    };
    if (flag == "--help" || flag == "-h") { usage(argv[0]); return 0; }
    else if (flag == "--quiet") quiet = true;
    else if (flag == "--dry-run") dry_run = true;
    else if (flag == "--resume") opt.resume = true;
    else if (flag == "--workers") {
      const char* v = next_value("--workers");
      char* end = nullptr;
      opt.workers = static_cast<int>(std::strtol(v, &end, 10));
      if (end == v || *end != '\0' || opt.workers < 0) {
        std::fprintf(stderr, "--workers expects a non-negative integer\n");
        return 2;
      }
    }
    else if (flag == "--trial-threads") {
      const char* v = next_value("--trial-threads");
      char* end = nullptr;
      opt.trial_threads = static_cast<int>(std::strtol(v, &end, 10));
      if (end == v || *end != '\0' || opt.trial_threads < 0) {
        std::fprintf(stderr,
                     "--trial-threads expects a non-negative integer\n");
        return 2;
      }
    }
    else if (flag == "--trace") trace_path = next_value("--trace");
    else if (flag == "--heartbeat") heartbeat = true;
    else if (flag == "--json") json_path = next_value("--json");
    else if (flag == "--csv") csv_path = next_value("--csv");
    else if (flag == "--manifest") manifest_path = next_value("--manifest");
    else if (flag == "--shard") {
      try {
        opt.shard = dist::parse_shard(next_value("--shard"));
        shard_given = true;
      } catch (const std::exception& e) {
        std::fprintf(stderr, "--shard: %s\n", e.what());
        return 2;
      }
    }
    else if (!flag.empty() && flag[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      usage(argv[0]);
      return 2;
    } else if (path.empty()) path = flag;
    else { usage(argv[0]); return 2; }
  }
  if (path.empty()) { usage(argv[0]); return 2; }

  // Any explicit --shard — including the degenerate 0/1 a one-shard fleet
  // passes — selects journal-only mode; aggregates belong to the merge.
  const bool sharded = shard_given;
  if (sharded && (!json_path.empty() || !csv_path.empty())) {
    std::fprintf(stderr,
                 "--shard runs emit no aggregates (--json/--csv): merge "
                 "the shard manifests with campaign_fleet instead\n");
    return 2;
  }

  campaign::CampaignResult result;
  std::string name;
  try {
    campaign::CampaignSpec spec = campaign::load_campaign_file(path);
    name = spec.name;
    if (json_path.empty()) json_path = "BENCH_campaign_" + name + ".json";
    if (csv_path.empty()) csv_path = "BENCH_campaign_" + name + "_trials.csv";
    if (manifest_path.empty())
      manifest_path = sharded
                          ? dist::shard_manifest_path(name, opt.shard)
                          : "BENCH_campaign_" + name + ".manifest";
    opt.manifest_path = manifest_path;
    // Both progress channels ride the same callback (it runs under the
    // scheduler lock, so the shared counters need no extra locking): the
    // human table line on stdout, the machine heartbeat line on stderr.
    std::shared_ptr<obs::HeartbeatEmitter> hb;
    if (heartbeat) {
      int owned = 0;
      for (const auto& pt : campaign::expand_grid(spec))
        if (dist::owns(opt.shard, pt.trial)) ++owned;
      hb = std::make_shared<obs::HeartbeatEmitter>(
          stderr, "campaign", name,
          sharded ? dist::to_string(opt.shard) : std::string(), owned);
    }
    if (!quiet || hb) {
      auto ok_count = std::make_shared<int>(0);
      opt.on_trial = [quiet, hb, ok_count](const campaign::TrialPoint& pt,
                                           const campaign::TrialResult& r,
                                           int done, int total) {
        if (r.ok) ++*ok_count;
        if (!quiet) {
          std::string status = r.ok ? "ok" : "FAILED";
          if (!r.ok && !r.error.empty()) status += " — " + r.error;
          std::printf("[%d/%d] trial %d (%s rep=%d): %s\n", done, total,
                      pt.trial, describe_point(pt.values).c_str(), pt.rep,
                      status.c_str());
          std::fflush(stdout);
        }
        if (hb) hb->tick(done, *ok_count);
      };
    }

    // opt is consumed next; keep the shard coordinates for the printouts.
    const dist::ShardSpec shard = opt.shard;
    campaign::CampaignScheduler scheduler(std::move(spec), std::move(opt));
    if (dry_run) {
      // A sharded dry run lists only the slice this process would run.
      std::size_t owned = 0;
      for (const auto& pt : scheduler.trials())
        if (dist::owns(shard, pt.trial)) ++owned;
      if (sharded)
        std::printf("campaign '%s': shard %s owns %zu of %zu trials\n",
                    name.c_str(), dist::to_string(shard).c_str(), owned,
                    scheduler.trials().size());
      else
        std::printf("campaign '%s': %zu trials\n", name.c_str(), owned);
      TextTable table({"trial", "point", "rep", "seed", "values"});
      for (const auto& pt : scheduler.trials()) {
        if (!dist::owns(shard, pt.trial)) continue;
        table.add_row({std::to_string(pt.trial), std::to_string(pt.point),
                       std::to_string(pt.rep), std::to_string(pt.seed),
                       describe_point(pt.values)});
      }
      table.print(std::cout);
      return 0;
    }
    if (!trace_path.empty()) obs::start_trace(trace_path);
    result = scheduler.run();
    if (!trace_path.empty()) {
      const obs::TraceReport report = obs::stop_trace();
      if (!quiet)
        std::printf("trace: %s (%zu spans across %zu threads)\n",
                    trace_path.c_str(), report.spans, report.threads);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign_runner: %s\n", e.what());
    return 2;
  }

  if (sharded) {
    // A shard holds a partial matrix: aggregates would be meaningless, so
    // only the journal leaves this process. campaign_fleet (or a
    // --merge-only run over rsync'd manifests) produces the real outputs.
    if (!quiet) {
      std::printf(
          "shard %s of campaign '%s': %d trials run, %d resumed — "
          "journal %s\nmerge all %d shard manifests with campaign_fleet "
          "to get aggregates\n",
          dist::to_string(result.shard).c_str(), name.c_str(),
          result.executed, result.recovered, manifest_path.c_str(),
          result.shard.count);
      std::printf("peak RSS: %.1f MiB\n",
                  static_cast<double>(common::peak_rss_bytes()) /
                      (1024.0 * 1024.0));
    }
    return result.all_ok() ? 0 : 1;
  }

  std::ofstream json_out(json_path);
  if (!json_out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 2;
  }
  result.write_json(json_out);
  std::ofstream csv_out(csv_path);
  if (!csv_out) {
    std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
    return 2;
  }
  result.write_csv(csv_out);

  if (!quiet) {
    TextTable table({"point", "values", "n", "ok", "rounds (mean)",
                     "R* (mean)", "fairness (mean)"});
    const std::size_t rounds_m = campaign::metric_index("total_rounds");
    const std::size_t range_m = campaign::metric_index("max_range");
    const std::size_t fair_m = campaign::metric_index("fairness");
    for (const auto& g : result.groups) {
      table.add_row({std::to_string(g.point), describe_point(g.values),
                     std::to_string(g.trials), std::to_string(g.ok),
                     TextTable::num(g.metrics[rounds_m].mean, 1),
                     TextTable::num(g.metrics[range_m].mean, 2),
                     TextTable::num(g.metrics[fair_m].mean, 3)});
    }
    table.print(std::cout);
    std::printf(
        "campaign '%s': %zu trials (%d run, %d resumed), %zu grid points, "
        "%s\n",
        result.spec.name.c_str(), result.trials.size(), result.executed,
        result.recovered, result.groups.size(),
        result.all_ok() ? "all ok" : "FAILURES");
    // Stdout only: RSS is machine- and run-dependent, so it must never
    // enter the byte-identical JSON/CSV/manifest artifacts.
    std::printf("peak RSS: %.1f MiB\n",
                static_cast<double>(common::peak_rss_bytes()) /
                    (1024.0 * 1024.0));
    std::printf("aggregates: %s\ntrial log: %s\n", json_path.c_str(),
                csv_path.c_str());
  }
  return result.all_ok() ? 0 : 1;
}
