// campaign_runner — expand a declarative parameter-sweep campaign into a
// trial matrix, shard it across workers, and emit aggregate metrics.
//
// Usage:
//   campaign_runner <campaign-file> [--workers N] [--resume] [--json PATH]
//                   [--csv PATH] [--manifest PATH] [--dry-run] [--quiet]
//
// The campaign format is documented in src/campaign/spec.hpp and the
// README; shipped examples live in campaigns/. Outputs (defaults derive
// from the campaign name):
//   BENCH_campaign_<name>.json      grouped aggregates + per-trial rows
//   BENCH_campaign_<name>_trials.csv   trial log, one row per trial
//   BENCH_campaign_<name>.manifest  streaming journal; --resume replays it
// All outputs are byte-identical for every --workers value and for any
// interrupt/--resume split. Exit status 0 iff every trial completed with
// verified final k-coverage.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "campaign/scheduler.hpp"
#include "common/table.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s <campaign-file> [--workers N] [--resume] [--json PATH]\n"
      "          [--csv PATH] [--manifest PATH] [--dry-run] [--quiet]\n"
      "  --workers N   trial-level parallelism (0 = hardware); outputs are\n"
      "                byte-identical for every value\n"
      "  --resume      skip trials already journaled in the manifest\n"
      "  --json PATH   aggregate output (default BENCH_campaign_<name>.json)\n"
      "  --csv PATH    trial log (default BENCH_campaign_<name>_trials.csv)\n"
      "  --manifest PATH  journal path (default BENCH_campaign_<name>.manifest)\n"
      "  --dry-run     print the expanded trial matrix and exit\n",
      argv0);
}

std::string describe_point(
    const std::vector<std::pair<std::string, std::string>>& values) {
  std::string out;
  for (const auto& [key, value] : values) {
    if (!out.empty()) out += ' ';
    out += key + "=" + value;
  }
  return out.empty() ? "-" : out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace laacad;

  std::string path, json_path, csv_path, manifest_path;
  campaign::CampaignOptions opt;
  bool dry_run = false, quiet = false;
  for (int a = 1; a < argc; ++a) {
    const std::string flag = argv[a];
    auto next_value = [&](const char* what) -> const char* {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "%s expects a value\n", what);
        std::exit(2);
      }
      return argv[++a];
    };
    if (flag == "--help" || flag == "-h") { usage(argv[0]); return 0; }
    else if (flag == "--quiet") quiet = true;
    else if (flag == "--dry-run") dry_run = true;
    else if (flag == "--resume") opt.resume = true;
    else if (flag == "--workers") {
      const char* v = next_value("--workers");
      char* end = nullptr;
      opt.workers = static_cast<int>(std::strtol(v, &end, 10));
      if (end == v || *end != '\0' || opt.workers < 0) {
        std::fprintf(stderr, "--workers expects a non-negative integer\n");
        return 2;
      }
    }
    else if (flag == "--json") json_path = next_value("--json");
    else if (flag == "--csv") csv_path = next_value("--csv");
    else if (flag == "--manifest") manifest_path = next_value("--manifest");
    else if (!flag.empty() && flag[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      usage(argv[0]);
      return 2;
    } else if (path.empty()) path = flag;
    else { usage(argv[0]); return 2; }
  }
  if (path.empty()) { usage(argv[0]); return 2; }

  campaign::CampaignResult result;
  try {
    campaign::CampaignSpec spec = campaign::load_campaign_file(path);
    const std::string name = spec.name;
    if (json_path.empty()) json_path = "BENCH_campaign_" + name + ".json";
    if (csv_path.empty()) csv_path = "BENCH_campaign_" + name + "_trials.csv";
    if (manifest_path.empty())
      manifest_path = "BENCH_campaign_" + name + ".manifest";
    opt.manifest_path = manifest_path;
    if (!quiet) {
      opt.on_trial = [](const campaign::TrialPoint& pt,
                        const campaign::TrialResult& r, int done, int total) {
        std::string status = r.ok ? "ok" : "FAILED";
        if (!r.ok && !r.error.empty()) status += " — " + r.error;
        std::printf("[%d/%d] trial %d (%s rep=%d): %s\n", done, total,
                    pt.trial, describe_point(pt.values).c_str(), pt.rep,
                    status.c_str());
        std::fflush(stdout);
      };
    }

    campaign::CampaignScheduler scheduler(std::move(spec), std::move(opt));
    if (dry_run) {
      std::printf("campaign '%s': %zu trials\n", name.c_str(),
                  scheduler.trials().size());
      TextTable table({"trial", "point", "rep", "seed", "values"});
      for (const auto& pt : scheduler.trials()) {
        table.add_row({std::to_string(pt.trial), std::to_string(pt.point),
                       std::to_string(pt.rep), std::to_string(pt.seed),
                       describe_point(pt.values)});
      }
      table.print(std::cout);
      return 0;
    }
    result = scheduler.run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign_runner: %s\n", e.what());
    return 2;
  }

  std::ofstream json_out(json_path);
  if (!json_out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 2;
  }
  result.write_json(json_out);
  std::ofstream csv_out(csv_path);
  if (!csv_out) {
    std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
    return 2;
  }
  result.write_csv(csv_out);

  if (!quiet) {
    TextTable table({"point", "values", "n", "ok", "rounds (mean)",
                     "R* (mean)", "fairness (mean)"});
    const std::size_t rounds_m = campaign::metric_index("total_rounds");
    const std::size_t range_m = campaign::metric_index("max_range");
    const std::size_t fair_m = campaign::metric_index("fairness");
    for (const auto& g : result.groups) {
      table.add_row({std::to_string(g.point), describe_point(g.values),
                     std::to_string(g.trials), std::to_string(g.ok),
                     TextTable::num(g.metrics[rounds_m].mean, 1),
                     TextTable::num(g.metrics[range_m].mean, 2),
                     TextTable::num(g.metrics[fair_m].mean, 3)});
    }
    table.print(std::cout);
    std::printf(
        "campaign '%s': %zu trials (%d run, %d resumed), %zu grid points, "
        "%s\n",
        result.spec.name.c_str(), result.trials.size(), result.executed,
        result.recovered, result.groups.size(),
        result.all_ok() ? "all ok" : "FAILURES");
    std::printf("aggregates: %s\ntrial log: %s\n", json_path.c_str(),
                csv_path.c_str());
  }
  return result.all_ok() ? 0 : 1;
}
