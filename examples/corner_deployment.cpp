// The paper's flagship scenario (Figs. 5 and 6): 100 nodes dropped in the
// bottom-left corner of a 1 km^2 field autonomously expand to k-cover it.
// Produces an SVG per coverage degree plus a CSV of the convergence series.
//
//   ./corner_deployment [nodes] [seed]
#include <cstdio>
#include <cstdlib>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "coverage/critical.hpp"
#include "coverage/grid_checker.hpp"
#include "laacad/engine.hpp"
#include "viz/render.hpp"
#include "wsn/deployment.hpp"

int main(int argc, char** argv) {
  using namespace laacad;

  const int n = argc > 1 ? std::atoi(argv[1]) : 100;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;

  wsn::Domain domain = wsn::Domain::square_km();
  Rng rng(seed);
  const auto initial = wsn::deploy_corner(domain, n, rng);

  {
    wsn::Network net(&domain, initial, 150.0);
    viz::render_deployment("corner_initial.svg", net);
  }
  std::printf("initial corner deployment rendered to corner_initial.svg\n");

  CsvWriter csv("corner_convergence.csv",
                {"k", "round", "max_circumradius", "min_circumradius"});

  for (int k = 1; k <= 4; ++k) {
    wsn::Network net(&domain, initial, 150.0);
    core::LaacadConfig cfg;
    cfg.k = k;
    cfg.epsilon = 1.0;
    cfg.max_rounds = 300;
    cfg.retain_history = true;  // per-round table printed below
    core::Engine engine(net, cfg);
    const core::RunResult result = engine.run();
    for (const core::RoundMetrics& m : result.history) {
      csv.add_row({std::to_string(k), std::to_string(m.round),
                   TextTable::num(m.max_circumradius, 3),
                   TextTable::num(m.min_circumradius, 3)});
    }
    const auto exact =
        cov::critical_point_coverage(domain, cov::sensing_disks(net));
    const std::string svg = "corner_k" + std::to_string(k) + ".svg";
    viz::render_deployment(svg, net);
    std::printf(
        "k=%d: %3d rounds, R* = %6.2f m, min range = %6.2f m, "
        "verified depth = %d -> %s   (%s)\n",
        k, result.rounds, result.final_max_range, result.final_min_range,
        exact.min_depth, exact.min_depth >= k ? "OK" : "FAIL", svg.c_str());
  }
  std::printf("convergence series written to corner_convergence.csv\n");
  return 0;
}
