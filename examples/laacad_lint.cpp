// laacad_lint — the in-tree determinism linter. Lexes every .hpp/.cpp
// under ROOT (default: src), resolves the per-directory rule policy, and
// exits nonzero on any finding that is not covered by a justified
// `// lint:allow(<rule>): <reason>` escape. Findings print as
// `file:line rule message`; every suppression that fired is listed in
// the summary so exemptions stay reviewable.
//
//   laacad_lint [--policy FILE] [ROOT]
//
// With no --policy, ROOT/../.lint-policy is used when present (the repo
// layout: policy beside src/), else the built-in base rules.
#include <exception>
#include <filesystem>
#include <iostream>
#include <string>

#include "lint/linter.hpp"
#include "lint/policy.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " [--policy FILE] [ROOT]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string policy_path;
  std::string root = "src";
  bool root_set = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--policy") {
      if (++i >= argc) return usage(argv[0]);
      policy_path = argv[i];
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag '" << arg << "'\n";
      return usage(argv[0]);
    } else if (!root_set) {
      root = arg;
      root_set = true;
    } else {
      return usage(argv[0]);
    }
  }

  try {
    namespace fs = std::filesystem;
    laacad::lint::Policy policy;
    if (!policy_path.empty()) {
      policy = laacad::lint::Policy::load(policy_path);
    } else {
      const fs::path beside = fs::path(root).parent_path() / ".lint-policy";
      if (fs::exists(beside))
        policy = laacad::lint::Policy::load(beside.string());
    }

    laacad::lint::Linter linter(policy);
    linter.add_directory(root);
    const auto result = linter.run();
    laacad::lint::write_report(std::cout, result);
    return result.clean() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "laacad_lint: " << e.what() << "\n";
    return 2;
  }
}
