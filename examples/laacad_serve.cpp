// laacad_serve — the serving daemon: a CoverageService fed by a
// line-oriented JSON protocol over stdio or a loopback TCP socket.
//
// Serve mode (default):
//   laacad_serve [--scn PATH] [--stdio | --port P] [--log PATH]
//                [--state PATH] [--threads N] [--publish-every N]
//                [--trace PATH] [--heartbeat] [--quiet]
//
//   Loads the base spec (default: an embedded mirror of
//   scenarios/serve_base.scn; the spec's timeline must be empty), starts
//   the round loop, and answers newline-delimited JSON requests: knn,
//   coverage, load, stats, health, event, drain, shutdown. On stdio,
//   responses go to stdout and everything human goes to stderr, so a
//   scripted session pipes cleanly. --log appends every accepted event to
//   a replayable scenario file; --state dumps the canonical final state
//   document after shutdown.
//
// Replay mode:
//   laacad_serve --replay LOG --state PATH [--threads N]
//
//   Runs LOG (an event log, or any scenario file) through the batch
//   ScenarioRunner and writes the same canonical state document. For any
//   serve session:  serve --log L --state A; replay L --state B; cmp A B
//   — byte-identical, at any thread count.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>

#include "obs/trace.hpp"
#include "scenario/spec.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace {

using namespace laacad;

// Mirror of scenarios/serve_base.scn so the daemon runs without a checkout.
constexpr const char* kDefaultSpec = R"(
name      serve_base
domain    square
side      300
nodes     40
k         2
seed      11
epsilon   0.5
max_rounds 200
battery   2.0e6
grid_resolution 5
)";

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--scn PATH] [--stdio | --port P] [--log PATH]\n"
      "          [--state PATH] [--threads N] [--publish-every N]\n"
      "          [--trace PATH] [--heartbeat] [--quiet]\n"
      "       %s --replay LOG --state PATH [--threads N]\n"
      "  --scn PATH        base spec (default: embedded serve_base; the\n"
      "                    timeline must be empty — events arrive live)\n"
      "  --stdio           serve requests from stdin to stdout (default)\n"
      "  --port P          serve a loopback TCP listener instead (0 =\n"
      "                    ephemeral; the bound port is printed to stderr)\n"
      "  --log PATH        append accepted events to a replayable log\n"
      "  --state PATH      dump the canonical state document on shutdown\n"
      "  --threads N       engine threads (0 = hardware); bits never change\n"
      "  --publish-every N mid-phase snapshot cadence (0 = phase ends only)\n"
      "  --trace PATH      Chrome trace JSON (request/round/publish spans)\n"
      "  --heartbeat       stream {\"hb\":\"serve\",...} lines to stderr at\n"
      "                    every phase end\n"
      "  --replay LOG      batch-replay an event log and exit\n",
      argv0, argv0);
}

struct Options {
  std::string scn_path;
  std::string replay_path;
  std::string log_path;
  std::string state_path;
  std::string trace_path;
  int port = -1;  // -1 = stdio
  int threads = -1;
  int publish_every = 1;
  bool heartbeat = false;
  bool quiet = false;
};

int serve_main(const Options& opt) {
  scenario::ScenarioSpec spec =
      opt.scn_path.empty() ? scenario::parse_scenario_string(kDefaultSpec)
                           : scenario::load_scenario_file(opt.scn_path);
  if (opt.threads >= 0) spec.num_threads = opt.threads;

  serve::ServeConfig cfg;
  cfg.spec = std::move(spec);
  cfg.log_path = opt.log_path;
  cfg.publish_every = opt.publish_every;
  cfg.heartbeat = opt.heartbeat;

  if (!opt.trace_path.empty()) obs::start_trace(opt.trace_path);
  serve::CoverageService svc(std::move(cfg));
  svc.start();

  int handled = 0;
  if (opt.port >= 0) {
    serve::TcpServer server(svc, opt.port);
    // Machine-greppable either way; with --port 0 this line is the only
    // way a client learns the ephemeral port.
    std::fprintf(stderr, "laacad_serve: listening on 127.0.0.1:%d\n",
                 server.port());
    handled = server.serve();
  } else {
    handled = serve::serve_stdio(svc, std::cin, std::cout);
  }
  // Both transports stop() the service on the way out (drain + final
  // phase), so the state below is final and replayable.

  if (!opt.state_path.empty()) {
    std::ofstream out(opt.state_path, std::ios::binary);
    if (!out)
      throw std::runtime_error("cannot open state file " + opt.state_path);
    svc.write_state(out);
  }
  if (!opt.trace_path.empty()) {
    const obs::TraceReport report = obs::stop_trace();
    if (!opt.quiet)
      std::fprintf(stderr, "trace: %s (%zu spans across %zu threads)\n",
                   opt.trace_path.c_str(), report.spans, report.threads);
  }

  const serve::CoverageService::Stats s = svc.stats();
  if (!opt.quiet)
    std::fprintf(stderr,
                 "laacad_serve: %d requests, %llu events applied "
                 "(%llu rejected), %d rounds over %d phases%s\n",
                 handled,
                 static_cast<unsigned long long>(s.events_applied),
                 static_cast<unsigned long long>(s.events_rejected),
                 s.global_round, s.phases, s.aborted ? ", ABORTED" : "");
  return s.aborted ? 1 : 0;
}

int replay_main(const Options& opt) {
  if (opt.state_path.empty())
    throw std::runtime_error("--replay needs --state PATH");
  std::ofstream out(opt.state_path, std::ios::binary);
  if (!out)
    throw std::runtime_error("cannot open state file " + opt.state_path);
  serve::replay_log_state(opt.replay_path, out, opt.threads);
  if (!opt.quiet)
    std::fprintf(stderr, "laacad_serve: replayed %s -> %s\n",
                 opt.replay_path.c_str(), opt.state_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "laacad_serve: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scn") opt.scn_path = next();
    else if (arg == "--replay") opt.replay_path = next();
    else if (arg == "--log") opt.log_path = next();
    else if (arg == "--state") opt.state_path = next();
    else if (arg == "--trace") opt.trace_path = next();
    else if (arg == "--stdio") opt.port = -1;
    else if (arg == "--port") opt.port = std::atoi(next());
    else if (arg == "--threads") opt.threads = std::atoi(next());
    else if (arg == "--publish-every") opt.publish_every = std::atoi(next());
    else if (arg == "--heartbeat") opt.heartbeat = true;
    else if (arg == "--quiet") opt.quiet = true;
    else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "laacad_serve: unknown argument %s\n",
                   arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  try {
    return opt.replay_path.empty() ? serve_main(opt) : replay_main(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "laacad_serve: %s\n", e.what());
    return 2;
  }
}
