// laacad_sim — command-line front end for the whole library: pick a domain
// shape, coverage degree, backend, and deployment, run LAACAD, verify, and
// optionally dump SVG/CSV artifacts. Intended as the "downstream user"
// entry point.
//
// Usage:
//   laacad_sim [--k N] [--nodes N] [--seed S] [--alpha A] [--epsilon E]
//              [--rounds R] [--gamma G] [--domain square|lshape|cross]
//              [--side METRES] [--hole] [--deploy uniform|corner|gaussian]
//              [--backend global|localized] [--max-hops H] [--noise SIGMA]
//              [--threads T] [--svg PREFIX] [--csv FILE] [--trace FILE]
//              [--heartbeat] [--quiet]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <cmath>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "coverage/critical.hpp"
#include "coverage/grid_checker.hpp"
#include "laacad/engine.hpp"
#include "obs/heartbeat.hpp"
#include "obs/trace.hpp"
#include "viz/render.hpp"
#include "wsn/connectivity.hpp"
#include "wsn/deployment.hpp"

namespace {

struct Options {
  int k = 2;
  int nodes = 60;
  std::uint64_t seed = 1;
  double alpha = 1.0;
  double epsilon = 0.5;
  int rounds = 300;
  double gamma = 0.0;  // 0 -> auto (side / 6)
  std::string domain = "square";
  double side = 500.0;
  bool hole = false;
  std::string deploy = "uniform";
  std::string backend = "global";
  int max_hops = 10;
  double noise = 0.0;
  int threads = 1;  // 0 = hardware concurrency
  std::string svg_prefix;
  std::string csv_path;
  std::string trace_path;
  bool heartbeat = false;
  bool quiet = false;
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s [--k N] [--nodes N] [--seed S] [--alpha A] [--epsilon E]\n"
      "          [--rounds R] [--gamma G] [--domain square|lshape|cross]\n"
      "          [--side M] [--hole] [--deploy uniform|corner|gaussian]\n"
      "          [--backend global|localized] [--max-hops H] [--noise S]\n"
      "          [--threads T] [--svg PREFIX] [--csv FILE] [--trace FILE]\n"
      "          [--heartbeat] [--quiet]\n",
      argv0);
}

bool parse(int argc, char** argv, Options& opt) {
  for (int a = 1; a < argc; ++a) {
    const std::string flag = argv[a];
    auto next = [&]() -> const char* {
      return a + 1 < argc ? argv[++a] : nullptr;
    };
    if (flag == "--help" || flag == "-h") return false;
    else if (flag == "--quiet") opt.quiet = true;
    else if (flag == "--heartbeat") opt.heartbeat = true;
    else if (flag == "--hole") opt.hole = true;
    else if (flag == "--k") { if (auto* v = next()) opt.k = std::atoi(v); }
    else if (flag == "--nodes") { if (auto* v = next()) opt.nodes = std::atoi(v); }
    else if (flag == "--seed") { if (auto* v = next()) opt.seed = std::strtoull(v, nullptr, 10); }
    else if (flag == "--alpha") { if (auto* v = next()) opt.alpha = std::atof(v); }
    else if (flag == "--epsilon") { if (auto* v = next()) opt.epsilon = std::atof(v); }
    else if (flag == "--rounds") { if (auto* v = next()) opt.rounds = std::atoi(v); }
    else if (flag == "--gamma") { if (auto* v = next()) opt.gamma = std::atof(v); }
    else if (flag == "--domain") { if (auto* v = next()) opt.domain = v; }
    else if (flag == "--side") { if (auto* v = next()) opt.side = std::atof(v); }
    else if (flag == "--deploy") { if (auto* v = next()) opt.deploy = v; }
    else if (flag == "--backend") { if (auto* v = next()) opt.backend = v; }
    else if (flag == "--max-hops") { if (auto* v = next()) opt.max_hops = std::atoi(v); }
    else if (flag == "--noise") { if (auto* v = next()) opt.noise = std::atof(v); }
    else if (flag == "--threads") { if (auto* v = next()) opt.threads = std::atoi(v); }
    else if (flag == "--svg") { if (auto* v = next()) opt.svg_prefix = v; }
    else if (flag == "--csv") { if (auto* v = next()) opt.csv_path = v; }
    else if (flag == "--trace") { if (auto* v = next()) opt.trace_path = v; }
    else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace laacad;
  Options opt;
  if (!parse(argc, argv, opt)) {
    usage(argv[0]);
    return 2;
  }
  if (opt.threads < 0) {
    std::fprintf(stderr, "--threads must be >= 0 (0 = hardware)\n");
    return 2;
  }

  // -- Domain and initial deployment (shared with the scenario engine) -----
  wsn::Domain domain;
  std::vector<geom::Vec2> init;
  Rng rng(opt.seed);
  try {
    domain = wsn::make_named_domain(opt.domain, opt.side, opt.hole);
    init = wsn::deploy_named(domain, opt.deploy, opt.nodes, opt.side, rng);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  const double gamma = opt.gamma > 0.0
                           ? opt.gamma
                           : wsn::auto_comm_range(domain, opt.nodes, opt.side);
  wsn::Network net(&domain, init, gamma);
  if (!opt.svg_prefix.empty())
    viz::render_deployment(opt.svg_prefix + "_initial.svg", net);

  // -- Run -----------------------------------------------------------------
  core::LaacadConfig cfg;
  cfg.k = opt.k;
  cfg.alpha = opt.alpha;
  cfg.epsilon = opt.epsilon;
  cfg.max_rounds = opt.rounds;
  cfg.seed = opt.seed;
  cfg.num_threads = opt.threads;
  cfg.retain_history = true;  // the CSV dump below walks every round
  if (opt.backend == "localized") {
    cfg.localized.max_hops = opt.max_hops;
    cfg.localized.frame.range_noise = opt.noise;
    cfg.provider = core::make_localized_provider(cfg.localized, cfg.seed);
  } else if (opt.backend != "global") {
    std::fprintf(stderr, "unknown backend '%s'\n", opt.backend.c_str());
    return 2;
  }
  // --heartbeat streams one {"hb":"engine",...} line per round to stderr:
  // done = rounds executed, total = the round cap, ok = 1 once movement
  // stopped. Same schema campaign_fleet already consumes.
  std::unique_ptr<obs::HeartbeatEmitter> heartbeat;
  if (opt.heartbeat) {
    heartbeat = std::make_unique<obs::HeartbeatEmitter>(
        stderr, "engine", "laacad_sim", /*shard=*/"", opt.rounds);
    cfg.on_round = [&heartbeat](const core::RoundMetrics& m) {
      heartbeat->tick(m.round, m.moved == 0 ? 1 : 0);
    };
  }
  if (!opt.trace_path.empty()) obs::start_trace(opt.trace_path);
  core::Engine engine(net, cfg);
  const core::RunResult result = engine.run();
  if (!opt.trace_path.empty()) {
    const obs::TraceReport report = obs::stop_trace();
    if (!opt.quiet)
      std::printf("trace: %s (%zu spans across %zu threads)\n",
                  opt.trace_path.c_str(), report.spans, report.threads);
  }

  // -- Report --------------------------------------------------------------
  const auto exact =
      cov::critical_point_coverage(domain, cov::sensing_disks(net));
  const auto conn =
      wsn::analyze_connectivity(net, 1.25 * result.final_max_range);
  if (!opt.quiet) {
    TextTable table({"metric", "value"});
    table.add_row({"nodes", std::to_string(opt.nodes)});
    table.add_row({"k", std::to_string(opt.k)});
    table.add_row({"backend", opt.backend});
    table.add_row({"threads", std::to_string(opt.threads)});
    table.add_row({"converged", result.converged ? "yes" : "no"});
    table.add_row({"rounds", std::to_string(result.rounds)});
    table.add_row({"R* max range (m)", TextTable::num(result.final_max_range, 3)});
    table.add_row({"min range (m)", TextTable::num(result.final_min_range, 3)});
    table.add_row({"load fairness (Jain)", TextTable::num(result.load.fairness, 4)});
    table.add_row({"verified coverage depth", std::to_string(exact.min_depth)});
    table.add_row({"connected @ 1.25 R*", conn.connected() ? "yes" : "no"});
    table.print(std::cout);
  }

  if (!opt.csv_path.empty()) {
    CsvWriter csv(opt.csv_path,
                  {"round", "max_circumradius", "min_circumradius",
                   "max_move", "moved"});
    for (const auto& m : result.history) {
      csv.add_row({std::to_string(m.round),
                   TextTable::num(m.max_circumradius, 4),
                   TextTable::num(m.min_circumradius, 4),
                   TextTable::num(m.max_move, 4), std::to_string(m.moved)});
    }
  }
  if (!opt.svg_prefix.empty()) {
    viz::render_deployment(opt.svg_prefix + "_final.svg", net);
    viz::render_order_k_partition(opt.svg_prefix + "_partition.svg", net,
                                  opt.k);
  }
  return exact.min_depth >= opt.k ? 0 : 1;
}
