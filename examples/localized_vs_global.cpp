// Demonstrates Algorithm 2: the localized (multi-hop, boundary-aware)
// dominating-region computation matches the exact global one, and its
// message cost stays local. This is the property that makes LAACAD an
// *autonomous* deployment algorithm.
//
//   ./localized_vs_global [nodes] [gamma]
#include <cstdio>
#include <cstdlib>

#include "common/table.hpp"
#include "laacad/localized.hpp"
#include "laacad/region.hpp"
#include "voronoi/adaptive.hpp"
#include "voronoi/sites.hpp"
#include "wsn/deployment.hpp"

int main(int argc, char** argv) {
  using namespace laacad;

  const int n = argc > 1 ? std::atoi(argv[1]) : 150;
  const double gamma = argc > 2 ? std::atof(argv[2]) : 120.0;

  wsn::Domain domain = wsn::Domain::square_km();
  Rng rng(23);
  wsn::Network net(&domain, wsn::deploy_uniform(domain, n, rng), gamma);
  const wsn::CommModel comm(net);
  std::printf("network: %d nodes, gamma = %.0f m, connected = %s\n", n, gamma,
              comm.connected() ? "yes" : "no");

  auto sites = vor::separate_sites(net.positions());
  const wsn::SpatialGrid grid(sites, gamma);

  // Interior probe node: nearest to the center.
  const int i = grid.k_nearest({500, 500}, 1)[0];
  std::printf("probe node %d at (%.0f, %.0f)\n\n", i, net.position(i).x,
              net.position(i).y);

  TextTable table({"k", "ring rho (m)", "hops", "nodes gathered",
                   "|local - global| area", "local == global"});
  for (int k = 1; k <= 6; ++k) {
    core::LocalizedConfig cfg;
    cfg.max_hops = 12;
    wsn::BoundaryInfo binfo;  // interior node
    wsn::CommStats stats;
    Rng noise(1);
    const auto local = core::localized_region(comm, i, k, binfo, cfg, &stats,
                                              noise);
    const auto global =
        vor::compute_dominating_region(sites, grid, i, k, domain.bbox());
    core::DominatingRegion lr(local.cells, domain), gr(global.cells, domain);
    const double diff = std::abs(lr.area() - gr.area());
    table.add_row({std::to_string(k), TextTable::num(local.rho, 0),
                   std::to_string(local.hops),
                   std::to_string(stats.node_reports),
                   TextTable::num(diff, 6),
                   diff <= 1e-3 * gr.area() ? "yes" : "NO"});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nEach row: Algorithm 2 stopped after `hops` ring expansions "
              "and its region agrees with the exact global computation — "
              "only information from a few hops away is ever needed.\n");
  return 0;
}
