// Sec. IV-C workflow: given a fixed sensing range r_s, find (approximately)
// the fewest nodes that k-cover the area, and compare against the analytic
// baselines of Bai et al. [3] and Ammari & Das [15].
//
//   ./min_node_planner [k] [r_s] [side]
#include <cstdio>
#include <cstdlib>

#include "baselines/ammari.hpp"
#include "baselines/regular.hpp"
#include "common/table.hpp"
#include "coverage/critical.hpp"
#include "laacad/min_node.hpp"

int main(int argc, char** argv) {
  using namespace laacad;

  const int k = argc > 1 ? std::atoi(argv[1]) : 2;
  const double rs = argc > 2 ? std::atof(argv[2]) : 25.0;
  const double side = argc > 3 ? std::atof(argv[3]) : 150.0;

  wsn::Domain domain = wsn::Domain::rectangle(side, side);
  Rng rng(17);

  core::MinNodeConfig cfg;
  cfg.laacad.epsilon = 0.5;
  cfg.laacad.max_rounds = 150;
  std::printf("planning min-node %d-coverage of a %.0f x %.0f m area at "
              "r_s = %.1f m ...\n", k, side, side, rs);
  const core::MinNodeResult res =
      core::plan_min_nodes(domain, k, rs, /*initial_n=*/-1, rng, cfg);

  std::printf("  feasible : %s (after %d LAACAD runs)\n",
              res.feasible ? "yes" : "no", res.laacad_runs);
  std::printf("  nodes    : %d, achieved R* = %.2f m <= r_s\n", res.nodes,
              res.achieved_range);

  // Independent verification at the common range r_s.
  std::vector<geom::Circle> disks;
  for (geom::Vec2 p : res.positions) disks.push_back({p, rs});
  const auto exact = cov::critical_point_coverage(domain, disks);
  std::printf("  verified coverage depth : %d (need >= %d)\n",
              exact.min_depth, k);

  TextTable table({"method", "nodes (analytic, no boundary)"});
  table.add_row({"LAACAD planner (measured)", std::to_string(res.nodes)});
  if (k == 1) {
    table.add_row({"Kershner optimal 1-cover",
                   TextTable::num(base::kershner_min_nodes(domain.area(), rs), 1)});
  }
  if (k == 2) {
    table.add_row({"Bai et al. [3] optimal 2-cover",
                   TextTable::num(base::bai_min_nodes_2cov(domain.area(), rs), 1)});
  }
  table.add_row({"k x Kershner stacked bound",
                 TextTable::num(base::stacked_min_nodes(domain.area(), rs, k), 1)});
  table.add_row({"Ammari-Das [15] lens scheme",
                 TextTable::num(base::ammari_min_nodes(domain.area(), rs, k), 1)});
  std::printf("\n%s", table.to_string().c_str());
  std::printf("\n(analytic rows ignore boundary effects; the measured count "
              "includes them — the paper reports ~15%% overhead for the same "
              "reason)\n");
  return 0;
}
