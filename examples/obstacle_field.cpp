// Fig. 8 scenario: LAACAD adapting to arbitrarily shaped areas with
// obstacles. Two irregular domains are k-covered from a corner start; the
// final deployments are rendered to SVG and coverage is verified.
//
//   ./obstacle_field [nodes] [k]
#include <cstdio>
#include <cstdlib>

#include "coverage/critical.hpp"
#include "coverage/grid_checker.hpp"
#include "laacad/engine.hpp"
#include "viz/render.hpp"
#include "wsn/deployment.hpp"

namespace {

void run_scenario(const char* name, const laacad::wsn::Domain& domain, int n,
                  int k, std::uint64_t seed) {
  using namespace laacad;
  Rng rng(seed);
  wsn::Network net(&domain, wsn::deploy_uniform(domain, n, rng), 120.0);

  core::LaacadConfig cfg;
  cfg.k = k;
  cfg.epsilon = 1.0;
  cfg.max_rounds = 300;
  core::Engine engine(net, cfg);
  const core::RunResult result = engine.run();

  // Obstacles are never occupied.
  bool feasible = true;
  for (const wsn::Node& node : net.nodes())
    feasible = feasible && domain.contains(node.pos);

  const auto exact =
      cov::critical_point_coverage(domain, cov::sensing_disks(net));
  const std::string svg = std::string("obstacles_") + name + ".svg";
  viz::render_deployment(svg, net);
  std::printf(
      "%-10s k=%d: rounds=%3d R*=%7.2f m, nodes feasible=%s, verified "
      "depth=%d -> %s (%s)\n",
      name, k, result.rounds, result.final_max_range, feasible ? "yes" : "NO",
      exact.min_depth, exact.min_depth >= k ? "OK" : "FAIL", svg.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace laacad;
  const int n = argc > 1 ? std::atoi(argv[1]) : 120;
  const int k = argc > 2 ? std::atoi(argv[2]) : 2;

  // Scenario I: L-shaped area with one rectangular obstacle.
  wsn::Domain lshape = wsn::Domain::lshape(1000, 1000)
                           .with_rect_hole({150, 150}, {330, 330});
  run_scenario("lshape", lshape, n, k, 11);

  // Scenario II: cross-shaped area with two obstacles.
  wsn::Domain cross = wsn::Domain::cross(1000, 1000, 0.4)
                          .with_rect_hole({460, 120}, {560, 240})
                          .with_rect_hole({430, 720}, {560, 820});
  run_scenario("cross", cross, n, k, 12);
  return 0;
}
