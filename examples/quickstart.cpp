// Quickstart: deploy 60 mobile sensors at random, run LAACAD for 2-coverage
// of a 500 m x 500 m field, verify the result, and render it to SVG.
//
//   ./quickstart [k] [nodes] [seed]
#include <cstdio>
#include <cstdlib>

#include "coverage/critical.hpp"
#include "coverage/grid_checker.hpp"
#include "laacad/engine.hpp"
#include "viz/render.hpp"
#include "wsn/deployment.hpp"

int main(int argc, char** argv) {
  using namespace laacad;

  const int k = argc > 1 ? std::atoi(argv[1]) : 2;
  const int n = argc > 2 ? std::atoi(argv[2]) : 60;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  // 1. The target area and the initial (random) deployment.
  wsn::Domain domain = wsn::Domain::rectangle(500, 500);
  Rng rng(seed);
  wsn::Network net(&domain, wsn::deploy_uniform(domain, n, rng),
                   /*gamma=*/80.0);

  // 2. Configure and run LAACAD.
  core::LaacadConfig cfg;
  cfg.k = k;
  cfg.alpha = 1.0;       // full step toward the Chebyshev center each round
  cfg.epsilon = 0.5;     // stop when every node is within 0.5 m of its target
  cfg.max_rounds = 300;
  core::Engine engine(net, cfg);
  const core::RunResult result = engine.run();

  std::printf("LAACAD quickstart: %d nodes, k = %d\n", n, k);
  std::printf("  converged       : %s after %d rounds\n",
              result.converged ? "yes" : "no", result.rounds);
  std::printf("  max sensing range R* : %.2f m\n", result.final_max_range);
  std::printf("  min sensing range    : %.2f m\n", result.final_min_range);
  std::printf("  load fairness (Jain) : %.4f\n", result.load.fairness);

  // 3. Verify k-coverage exactly (critical-point checker).
  const auto exact =
      cov::critical_point_coverage(domain, cov::sensing_disks(net));
  std::printf("  verified coverage depth over A : %d (need >= %d) -> %s\n",
              exact.min_depth, k, exact.min_depth >= k ? "OK" : "FAIL");

  // 4. Render the final deployment and the order-k partition.
  viz::render_deployment("quickstart_deployment.svg", net);
  viz::render_order_k_partition("quickstart_partition.svg", net, k);
  std::printf(
      "  wrote quickstart_deployment.svg and quickstart_partition.svg\n");
  return exact.min_depth >= k ? 0 : 1;
}
