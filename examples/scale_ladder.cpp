// scale_ladder — wall-clock / memory ladder for the million-node regime.
//
// Runs the campaigns/scale_ladder.cmp rungs (10^3 -> 10^6 uniform nodes,
// k = 2, backend auto) one at a time in ascending size and measures, per
// rung: wall-clock (total and per round), peak RSS
// (common::peak_rss_bytes), and the deterministic kernel counters
// (dist2 evaluations, grid queries) that machine-independent perf gates
// key on. Results land in BENCH_scale_ladder.json.
//
// Usage:
//   scale_ladder [--campaign PATH] [--max-nodes N] [--budget PATH]
//                [--json PATH] [--trial-threads N] [--trace PATH] [--quiet]
//
// --max-nodes caps which rungs run: ctest climbs to 10^5, the CI bench
// job runs the full ladder. --budget loads campaigns/scale_ladder.budget;
// dist2-evaluation budgets are enforced unconditionally for every
// --trial-threads value (they are deterministic and machine-independent,
// the same contract as the dist^2 regression gates — the thread pool folds
// every worker chunk's counter delta back into the measuring thread, so
// the totals are exact at any thread count), while wall-clock and RSS
// budgets
// apply only when LAACAD_ENFORCE_BUDGET is set in the environment (CI
// runners), so developer laptops never flake on a noisy neighbour.
// --trace writes one Chrome trace-event JSON per rung (path suffixed
// _n<nodes>) and prints that rung's per-stage wall-clock breakdown (grid
// rebuild, region fan-out, movement, ...) in the stdout summary.
// Exit status 0 iff every rung ran ok and every enforced budget held.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/scheduler.hpp"
#include "common/perf_counters.hpp"
#include "common/sysinfo.hpp"
#include "obs/heartbeat.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace laacad;

// Mirror of campaigns/scale_ladder.cmp so the binary is self-contained
// (ctest runs it from the build tree); --campaign swaps in a file.
constexpr const char* kLadderSpec = R"(
name      scale_ladder
trials    1
seed      900
domain    square
side      1000
deploy    uniform
k         2
backend   auto
epsilon   5.0
max_rounds 3
gamma     0
grid_resolution 25
sweep nodes 1000 10000 100000 1000000
)";

struct RungBudget {
  long long nodes = 0;
  double dist2_per_node = 0.0;  ///< dist2_evals / nodes cap; 0 = no cap
  double wall_ms = 0.0;         ///< total wall cap; 0 = no cap
  double rss_mib = 0.0;         ///< peak RSS cap; 0 = no cap
};

struct RungRow {
  long long nodes = 0;
  int rounds = 0;
  bool ok = false;
  std::string error;
  double wall_ms = 0.0;
  double wall_ms_per_round = 0.0;
  std::uint64_t peak_rss = 0;
  /// Exact global event totals for any --trial-threads value: the pool
  /// folds worker-chunk counter deltas back into the measuring thread.
  std::uint64_t dist2_evals = 0;
  std::uint64_t grid_queries = 0;
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s [--campaign PATH] [--max-nodes N] [--budget PATH]\n"
      "          [--json PATH] [--trial-threads N] [--trace PATH]\n"
      "          [--heartbeat] [--quiet]\n"
      "  --campaign PATH   ladder campaign file (default: embedded\n"
      "                    mirror of campaigns/scale_ladder.cmp)\n"
      "  --max-nodes N     skip rungs larger than N nodes\n"
      "  --budget PATH     budget file; dist2 budgets always enforced\n"
      "                    (counters are exact at any thread count),\n"
      "                    wall/RSS only with LAACAD_ENFORCE_BUDGET set\n"
      "  --json PATH       output (default BENCH_scale_ladder.json)\n"
      "  --trial-threads N engine threads inside each rung (0 = hardware);\n"
      "                    output bits never change\n"
      "  --trace PATH      per-rung Chrome trace JSON (suffix _n<nodes>)\n"
      "                    plus a per-stage breakdown in the summary\n"
      "  --heartbeat       stream one {\"hb\":\"ladder\",...} line per\n"
      "                    finished rung to stderr (fleet monitor schema)\n",
      argv0);
}

/// TRACE path for one rung: "_n<nodes>" before the extension, so a ladder
/// run leaves TRACE_ladder_n1000.json, TRACE_ladder_n10000.json, ...
std::string rung_trace_path(const std::string& base, long long n) {
  const std::string suffix = "_n" + std::to_string(n);
  const std::size_t dot = base.rfind('.');
  const std::size_t slash = base.find_last_of("/\\");
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash))
    return base + suffix;
  return base.substr(0, dot) + suffix + base.substr(dot);
}

std::vector<RungBudget> load_budget(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open budget file: " + path);
  std::vector<RungBudget> out;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream row(line);
    RungBudget b;
    if (!(row >> b.nodes)) continue;  // blank / comment-only line
    if (!(row >> b.dist2_per_node >> b.wall_ms >> b.rss_mib))
      throw std::runtime_error(path + ": line " + std::to_string(lineno) +
                               ": expected 'nodes dist2_per_node wall_ms "
                               "rss_mib'");
    out.push_back(b);
  }
  return out;
}

void write_json(const std::string& path, const std::vector<RungRow>& rows,
                int trial_threads, bool enforce_env) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "scale_ladder: cannot write " << path << "\n";
    return;
  }
  out << "{\n  \"name\": \"scale_ladder\",\n  \"trial_threads\": "
      << trial_threads << ",\n  \"wall_budgets_enforced\": "
      << (enforce_env ? "true" : "false") << ",\n  \"rungs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RungRow& r = rows[i];
    out << "    {\"nodes\": " << r.nodes << ", \"ok\": "
        << (r.ok ? "true" : "false") << ", \"rounds\": " << r.rounds
        << ", \"wall_ms\": " << r.wall_ms
        << ", \"wall_ms_per_round\": " << r.wall_ms_per_round
        << ", \"peak_rss_bytes\": " << r.peak_rss
        << ", \"dist2_evals\": " << r.dist2_evals
        << ", \"grid_queries\": " << r.grid_queries
        << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string campaign_path;
  std::string budget_path;
  std::string json_path = "BENCH_scale_ladder.json";
  std::string trace_path;
  long long max_nodes = -1;
  int trial_threads = 1;
  bool heartbeat = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "scale_ladder: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--campaign") campaign_path = next();
    else if (arg == "--max-nodes") max_nodes = std::atoll(next());
    else if (arg == "--budget") budget_path = next();
    else if (arg == "--json") json_path = next();
    else if (arg == "--trial-threads") trial_threads = std::atoi(next());
    else if (arg == "--trace") trace_path = next();
    else if (arg == "--heartbeat") heartbeat = true;
    else if (arg == "--quiet") quiet = true;
    else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::cerr << "scale_ladder: unknown argument " << arg << "\n";
      usage(argv[0]);
      return 2;
    }
  }

  try {
    const campaign::CampaignSpec spec =
        campaign_path.empty()
            ? campaign::parse_campaign_string(kLadderSpec)
            : campaign::load_campaign_file(campaign_path);
    const campaign::Axis* nodes_axis = nullptr;
    for (const campaign::Axis& ax : spec.axes)
      if (ax.key == "nodes") nodes_axis = &ax;
    if (!nodes_axis || spec.axes.size() != 1)
      throw std::runtime_error(
          "scale ladder campaign must sweep exactly one axis: nodes");

    std::vector<RungBudget> budgets;
    if (!budget_path.empty()) budgets = load_budget(budget_path);
    // lint:allow(ambient-env): gates *extra* budget assertions only — rung
    // results and BENCH bytes are identical with or without it
    const bool enforce_env = std::getenv("LAACAD_ENFORCE_BUDGET") != nullptr;

    // --heartbeat emits one fleet-schema line per finished rung (a ladder
    // rung is the natural progress unit — rounds inside a rung belong to
    // the engine's own --trace/--heartbeat story). `total` counts only the
    // rungs that will actually run under --max-nodes.
    std::unique_ptr<obs::HeartbeatEmitter> hb;
    if (heartbeat) {
      int planned = 0;
      for (const std::string& value : nodes_axis->values)
        if (max_nodes < 0 || std::atoll(value.c_str()) <= max_nodes)
          ++planned;
      hb = std::make_unique<obs::HeartbeatEmitter>(
          stderr, "ladder", "scale_ladder", /*shard=*/"", planned);
    }
    int rungs_done = 0;
    int rungs_ok = 0;

    std::vector<RungRow> rows;
    bool all_ok = true;
    for (const std::string& value : nodes_axis->values) {
      const long long n = std::atoll(value.c_str());
      if (max_nodes >= 0 && n > max_nodes) {
        if (!quiet)
          std::printf("rung n=%-8lld skipped (--max-nodes %lld)\n", n,
                      max_nodes);
        continue;
      }
      // One single-rung campaign per ladder step, run serially in
      // ascending size: peak-RSS deltas between rungs stay attributable,
      // and each rung's wall-clock is a plain bracket around run().
      campaign::CampaignSpec rung = spec;
      rung.axes[0].values = {value};
      campaign::CampaignOptions opt;
      opt.workers = 1;
      opt.trial_threads = trial_threads;
      // workers == 1 keeps the trial on this thread, and the engine pool
      // folds its worker chunks' counter deltas back here — so this scope
      // reads exact global totals for any --trial-threads.
      obs::Registry::instance().clear();
      const obs::CounterScope counters;
      if (!trace_path.empty())
        obs::start_trace(rung_trace_path(trace_path, n));
      // lint:allow(wall-clock): per-rung wall bracket feeds the timing
      // fields (wall_ms_per_round), never the deterministic ones
      const auto t0 = std::chrono::steady_clock::now();
      campaign::CampaignScheduler scheduler(std::move(rung), std::move(opt));
      const campaign::CampaignResult result = scheduler.run();
      // lint:allow(wall-clock): closing bracket of the rung wall timer
      const auto t1 = std::chrono::steady_clock::now();
      obs::TraceReport trace_report;
      if (!trace_path.empty()) trace_report = obs::stop_trace();

      RungRow row;
      row.nodes = n;
      row.wall_ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      row.peak_rss = common::peak_rss_bytes();
      const perf::KernelCounters rung_counters = counters.delta();
      row.dist2_evals = rung_counters.dist2_evals;
      row.grid_queries = rung_counters.grid_queries;
      obs::Registry::instance().set_gauge(
          "scale_ladder.peak_rss_mib",
          static_cast<double>(row.peak_rss) / (1024.0 * 1024.0));
      const campaign::TrialResult& trial = result.trials.at(0);
      row.ok = trial.ok;
      row.error = trial.error;
      const double rounds =
          trial.metrics[campaign::metric_index("total_rounds")];
      row.rounds = rounds == rounds ? static_cast<int>(rounds) : 0;
      row.wall_ms_per_round =
          row.rounds > 0 ? row.wall_ms / row.rounds : row.wall_ms;
      if (!row.ok) {
        all_ok = false;
        std::cerr << "scale_ladder: rung n=" << n << " FAILED: "
                  << (row.error.empty() ? "coverage not verified"
                                        : row.error)
                  << "\n";
      } else if (!quiet) {
        std::printf(
            "rung n=%-8lld %2d rounds  %9.1f ms (%8.1f ms/round)  "
            "peak RSS %7.1f MiB  dist2/node %.0f\n",
            n, row.rounds, row.wall_ms, row.wall_ms_per_round,
            static_cast<double>(row.peak_rss) / (1024.0 * 1024.0),
            static_cast<double>(row.dist2_evals) / static_cast<double>(n));
        // Per-stage breakdown from the rung's trace session, heaviest
        // stage first. Wall-clock only — it never enters the BENCH json.
        for (const auto& [stage, total] : trace_report.stages) {
          if (stage == "round" || stage == "trial") continue;  // containers
          std::printf("    stage %-14s %6llu spans %10.1f ms\n",
                      stage.c_str(),
                      static_cast<unsigned long long>(total.count),
                      static_cast<double>(total.total_ns) / 1e6);
        }
      }

      for (const RungBudget& b : budgets) {
        if (b.nodes != n) continue;
        if (b.dist2_per_node > 0.0) {
          const double per_node = static_cast<double>(row.dist2_evals) /
                                  static_cast<double>(n);
          if (per_node > b.dist2_per_node) {
            all_ok = false;
            std::cerr << "scale_ladder: rung n=" << n
                      << " BLEW dist2 budget: " << per_node << " > "
                      << b.dist2_per_node << " evals/node\n";
          }
        }
        if (enforce_env && b.wall_ms > 0.0 && row.wall_ms > b.wall_ms) {
          all_ok = false;
          std::cerr << "scale_ladder: rung n=" << n
                    << " BLEW wall budget: " << row.wall_ms << " > "
                    << b.wall_ms << " ms\n";
        }
        const double rss_mib =
            static_cast<double>(row.peak_rss) / (1024.0 * 1024.0);
        if (enforce_env && b.rss_mib > 0.0 && rss_mib > b.rss_mib) {
          all_ok = false;
          std::cerr << "scale_ladder: rung n=" << n
                    << " BLEW RSS budget: " << rss_mib << " > " << b.rss_mib
                    << " MiB\n";
        }
      }
      if (row.ok) ++rungs_ok;
      rows.push_back(std::move(row));
      ++rungs_done;
      if (hb) hb->tick(rungs_done, rungs_ok);
    }

    write_json(json_path, rows, trial_threads, enforce_env);
    if (!quiet) std::printf("ladder written to %s\n", json_path.c_str());
    return all_ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "scale_ladder: " << e.what() << "\n";
    return 2;
  }
}
