// scenario_runner — execute a declarative dynamic-network scenario and emit
// BENCH_*.json metrics.
//
// Usage:
//   scenario_runner <scenario-file> [--threads T] [--json PATH]
//                   [--trace PATH] [--quiet]
//
// The scenario file format is documented in src/scenario/spec.hpp and the
// README; shipped examples live in scenarios/. By default the metrics land
// in BENCH_scenario_<name>.json in the working directory. Exit status is 0
// when the final redeployment restored full k-coverage.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "common/json_writer.hpp"
#include "common/table.hpp"
#include "obs/trace.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s <scenario-file> [--threads T] [--json PATH] [--trace PATH] "
      "[--dry-run] [--quiet]\n"
      "  --threads T  override the spec's thread count (0 = hardware);\n"
      "               metrics are byte-identical for every value\n"
      "  --json PATH  metrics output (default BENCH_scenario_<name>.json)\n"
      "  --trace PATH write a Chrome trace-event JSON timeline (phase,\n"
      "               event, and engine round-stage spans); the BENCH json\n"
      "               is byte-identical with or without it\n"
      "  --dry-run    parse + validate only; print the event timeline\n",
      argv0);
}

/// Human-readable one-liner for a parsed event (the arguments that matter
/// for its type, in spec terms).
std::string describe(const laacad::scenario::Event& ev) {
  using laacad::scenario::EventType;
  auto num = [](double v) { return laacad::JsonWriter::number_to_string(v); };
  std::string out;
  switch (ev.type) {
    case EventType::kFailNodes:
      out = "count=" + std::to_string(ev.count) + " pick=" + ev.pick;
      if (ev.pick == "region")
        out += " rect=(" + num(ev.lo.x) + "," + num(ev.lo.y) + ")-(" +
               num(ev.hi.x) + "," + num(ev.hi.y) + ")";
      break;
    case EventType::kDrainBattery:
      out = "epochs=" + num(ev.epochs) + " fraction=" + num(ev.fraction);
      break;
    case EventType::kAddNodes:
      out = "count=" + std::to_string(ev.count) + " deploy=" + ev.deploy;
      if (ev.deploy == "gaussian")
        out += " at=(" + num(ev.at.x) + "," + num(ev.at.y) +
               ") sigma=" + num(ev.sigma);
      break;
    case EventType::kResizeBoundary:
      out = "scale=" + num(ev.scale);
      break;
    case EventType::kJamRegion:
      out = "rect=(" + num(ev.lo.x) + "," + num(ev.lo.y) + ")-(" +
            num(ev.hi.x) + "," + num(ev.hi.y) + ")";
      break;
  }
  return out;
}

/// --dry-run: the spec parsed and validated; show what would execute.
void print_timeline(const laacad::scenario::ScenarioSpec& spec) {
  std::printf(
      "scenario '%s': domain=%s side=%g deploy=%s nodes=%d k=%d seed=%llu "
      "backend=%s max_rounds=%d/phase\n",
      spec.name.c_str(), spec.domain.c_str(), spec.side, spec.deploy.c_str(),
      spec.nodes, spec.k, static_cast<unsigned long long>(spec.seed),
      spec.backend.c_str(), spec.max_rounds);
  if (spec.events.empty()) {
    std::printf("timeline: (no events — a single static deployment phase)\n");
    return;
  }
  std::printf("timeline: %d events, %d redeployment phases\n",
              static_cast<int>(spec.events.size()),
              static_cast<int>(spec.events.size()) + 1);
  using laacad::scenario::Trigger;
  for (std::size_t i = 0; i < spec.events.size(); ++i) {
    const auto& ev = spec.events[i];
    const std::string trig = ev.trigger == Trigger::kOnConvergence
                                 ? "converged"
                                 : "round=" + std::to_string(ev.round);
    std::printf("  event %zu (line %d): %-11s %-15s %s\n", i, ev.line,
                trig.c_str(), laacad::scenario::to_string(ev.type),
                describe(ev).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace laacad;

  std::string path, json_path, trace_path;
  int threads = -1;  // -1 = keep the spec's value
  bool quiet = false, dry_run = false;
  for (int a = 1; a < argc; ++a) {
    const std::string flag = argv[a];
    if (flag == "--help" || flag == "-h") { usage(argv[0]); return 0; }
    else if (flag == "--quiet") quiet = true;
    else if (flag == "--dry-run") dry_run = true;
    else if (flag == "--threads") {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "--threads expects a value\n");
        return 2;
      }
      char* end = nullptr;
      threads = static_cast<int>(std::strtol(argv[++a], &end, 10));
      if (end == argv[a] || *end != '\0' || threads < 0) {
        std::fprintf(stderr, "--threads expects a non-negative integer\n");
        return 2;
      }
    }
    else if (flag == "--json") {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "--json expects a value\n");
        return 2;
      }
      json_path = argv[++a];
    }
    else if (flag == "--trace") {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "--trace expects a value\n");
        return 2;
      }
      trace_path = argv[++a];
    }
    else if (!flag.empty() && flag[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      usage(argv[0]);
      return 2;
    } else if (path.empty()) path = flag;
    else { usage(argv[0]); return 2; }
  }
  if (path.empty()) { usage(argv[0]); return 2; }

  scenario::ScenarioResult result;
  try {
    scenario::ScenarioSpec spec = scenario::load_scenario_file(path);
    if (threads >= 0) spec.num_threads = threads;
    if (dry_run) {
      // load_scenario_file already validated; just show the plan.
      print_timeline(spec);
      return 0;
    }
    if (!trace_path.empty()) obs::start_trace(trace_path);
    scenario::ScenarioRunner runner(std::move(spec));
    result = runner.run();
    if (!trace_path.empty()) {
      const obs::TraceReport report = obs::stop_trace();
      if (!quiet)
        std::printf("trace: %s (%zu spans across %zu threads)\n",
                    trace_path.c_str(), report.spans, report.threads);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scenario_runner: %s\n", e.what());
    return 2;
  }

  if (json_path.empty())
    json_path = "BENCH_scenario_" + result.spec.name + ".json";
  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 2;
  }
  result.write_json(out);

  if (!quiet) {
    TextTable table({"phase", "cause", "rounds", "nodes", "converged",
                     "R* (m)", "fairness", "min depth", "k-frac"});
    for (const auto& p : result.phases) {
      table.add_row({std::to_string(p.phase), p.cause,
                     std::to_string(p.rounds), std::to_string(p.nodes),
                     p.converged ? "yes" : "no",
                     TextTable::num(p.final_max_range, 2),
                     TextTable::num(p.load.fairness, 3),
                     std::to_string(p.coverage_min_depth),
                     TextTable::num(p.covered_fraction_k, 3)});
    }
    table.print(std::cout);
    for (const auto& e : result.events) {
      std::printf("event %d @ round %d: %s — %s (%d -> %d nodes)\n", e.index,
                  e.global_round, e.type.c_str(), e.detail.c_str(),
                  e.nodes_before, e.nodes_after);
    }
    if (result.aborted)
      std::printf("ABORTED: %s\n", result.abort_reason.c_str());
    std::printf("scenario '%s': %d phases, %d total rounds, final %d-coverage %s\n",
                result.spec.name.c_str(),
                static_cast<int>(result.phases.size()), result.total_rounds,
                result.spec.k, result.final_coverage_ok ? "OK" : "LOST");
    std::printf("metrics: %s\n", json_path.c_str());
  }
  return result.final_coverage_ok ? 0 : 1;
}
