// serve_bench — open-loop load generator for laacad_serve.
//
//   serve_bench [--wl PATH] [--out PATH] [--scn PATH] [--threads N]
//               [--connect HOST:PORT] [--requests N] [--rate R]
//               [--connections C] [--seed S] [--quiet]
//
// Replays a declarative `.wl` workload (bench/workloads/*.wl; default: an
// embedded mirror of serve_mix.wl) over real loopback TCP and writes
// BENCH_serve_latency.json: per-verb client-side percentiles measured
// coordinated-omission-safely from *scheduled* send times, plus the
// server's own queue/query/serialize breakdown pulled from its final
// `stats` response.
//
// By default the bench owns the server: it starts an in-process
// CoverageService + TcpServer on an ephemeral port and shuts it down when
// done — one command, no orchestration. With --connect it drives an
// externally spawned daemon instead (spawn `laacad_serve --port 0`, read
// the bound port off its stderr); the workload's query coordinates then
// still come from the --scn side length, so point the bench at the same
// spec the daemon loaded.
//
// Exit status: 0 on a clean run, 1 if any protocol or transport errors
// were tallied (CI treats a nonzero error count as failure), 2 on usage
// or setup problems.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "scenario/spec.hpp"
#include "serve/bench.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/workload.hpp"

namespace {

using namespace laacad;

// Mirror of scenarios/serve_base.scn (same as laacad_serve's default).
constexpr const char* kDefaultSpec = R"(
name      serve_base
domain    square
side      300
nodes     40
k         2
seed      11
epsilon   0.5
max_rounds 200
battery   2.0e6
grid_resolution 5
)";

// Mirror of bench/workloads/serve_mix.wl.
constexpr const char* kDefaultWorkload = R"(
name        serve_mix
requests    2000
rate        500
connections 2
seed        7
knn_k       3
mix         knn=6 coverage=2 load=1 stats=1
churn       every=250 fail_nodes count=2 pick=random
churn       every=600 add_nodes count=3 deploy=uniform
)";

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--wl PATH] [--out PATH] [--scn PATH] [--threads N]\n"
      "          [--connect HOST:PORT] [--requests N] [--rate R]\n"
      "          [--connections C] [--seed S] [--quiet]\n"
      "  --wl PATH         workload file (default: embedded serve_mix)\n"
      "  --out PATH        report path (default: BENCH_serve_latency.json)\n"
      "  --scn PATH        base spec for the in-process server, and the\n"
      "                    side length query coordinates draw from\n"
      "  --threads N       engine threads for the in-process server\n"
      "  --connect H:P     drive an already-running daemon instead of\n"
      "                    starting one (no shutdown is sent)\n"
      "  --requests/--rate/--connections/--seed\n"
      "                    override the corresponding workload fields\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string wl_path, out_path = "BENCH_serve_latency.json", scn_path;
  std::string connect;
  int threads = -1;
  long requests = -1, connections = -1, seed = -1;
  double rate = -1.0;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "serve_bench: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--wl") wl_path = next();
    else if (arg == "--out") out_path = next();
    else if (arg == "--scn") scn_path = next();
    else if (arg == "--connect") connect = next();
    else if (arg == "--threads") threads = std::atoi(next());
    else if (arg == "--requests") requests = std::atol(next());
    else if (arg == "--rate") rate = std::atof(next());
    else if (arg == "--connections") connections = std::atol(next());
    else if (arg == "--seed") seed = std::atol(next());
    else if (arg == "--quiet") quiet = true;
    else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "serve_bench: unknown argument %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  try {
    serve::WorkloadSpec wl =
        wl_path.empty() ? serve::parse_workload_string(kDefaultWorkload)
                        : serve::load_workload_file(wl_path);
    if (requests >= 0) wl.requests = static_cast<int>(requests);
    if (rate >= 0.0) wl.rate = rate;
    if (connections >= 0) wl.connections = static_cast<int>(connections);
    if (seed >= 0) wl.seed = static_cast<std::uint64_t>(seed);

    scenario::ScenarioSpec spec =
        scn_path.empty() ? scenario::parse_scenario_string(kDefaultSpec)
                         : scenario::load_scenario_file(scn_path);
    if (threads >= 0) spec.num_threads = threads;

    serve::BenchResult result;
    if (connect.empty()) {
      serve::ServeConfig cfg;
      cfg.spec = spec;
      serve::CoverageService svc(std::move(cfg));
      svc.start();
      serve::TcpServer server(svc, /*port=*/0);
      std::thread server_thread([&] { server.serve(); });
      result = serve::run_bench(wl, spec.side, "127.0.0.1", server.port(),
                                /*shutdown_after=*/true);
      server_thread.join();
    } else {
      const auto colon = connect.rfind(':');
      if (colon == std::string::npos)
        throw std::runtime_error("--connect needs HOST:PORT");
      const std::string host = connect.substr(0, colon);
      const int port = std::atoi(connect.c_str() + colon + 1);
      result = serve::run_bench(wl, spec.side, host, port,
                                /*shutdown_after=*/false);
    }

    std::ofstream out(out_path, std::ios::binary);
    if (!out) throw std::runtime_error("cannot open " + out_path);
    serve::write_bench_report(result, out);

    std::uint64_t errors = result.transport_errors;
    for (const serve::BenchVerbStats& v : result.per_op) errors += v.errors;
    if (!quiet) {
      const serve::BenchVerbStats& knn = result.per_op[0];
      std::fprintf(stderr,
                   "serve_bench: %s -> %s\n"
                   "  %llu/%llu responses, %.0f req/s achieved (%s), "
                   "%llu errors\n"
                   "  knn p50/p99: %.0f/%.0f us\n",
                   wl.name.c_str(), out_path.c_str(),
                   static_cast<unsigned long long>(result.received),
                   static_cast<unsigned long long>(result.sent),
                   result.achieved_rate_per_s,
                   wl.rate > 0.0 ? "open loop" : "closed loop",
                   static_cast<unsigned long long>(errors),
                   static_cast<double>(knn.latency.value_at(0.50)) / 1e3,
                   static_cast<double>(knn.latency.value_at(0.99)) / 1e3);
    }
    return errors == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve_bench: %s\n", e.what());
    return 2;
  }
}
