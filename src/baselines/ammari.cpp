#include "baselines/ammari.hpp"

#include <cmath>

#include "wsn/deployment.hpp"

namespace laacad::base {

double ammari_min_nodes(double area, double r, int k) {
  return 6.0 * static_cast<double>(k) * area /
         ((4.0 * M_PI - 3.0 * std::sqrt(3.0)) * r * r);
}

std::vector<geom::Vec2> ammari_lens_deployment(const wsn::Domain& domain,
                                               double r, int k, Rng& rng,
                                               double spacing_factor) {
  const double spacing = spacing_factor * r;
  const int per_vertex = (k + 2) / 3;  // ceil(k/3): each point sees >= 3 vertices
  std::vector<geom::Vec2> anchors;
  const geom::BBox bb = domain.bbox().inflated(spacing * 0.5);
  const double row_h = spacing * std::sqrt(3.0) / 2.0;
  int row = 0;
  for (double y = bb.lo.y; y <= bb.hi.y; y += row_h, ++row) {
    const double x0 = bb.lo.x + (row % 2 ? spacing / 2.0 : 0.0);
    for (double x = x0; x <= bb.hi.x; x += spacing) {
      const geom::Vec2 p{x, y};
      if (domain.contains(p)) {
        anchors.push_back(p);
      } else if (domain.dist_to_boundary(p) <= spacing) {
        anchors.push_back(domain.project_inside(p));
      }
    }
  }
  return wsn::stacked(anchors, per_vertex, rng, 1e-3);
}

}  // namespace laacad::base
