// Ammari & Das [15] (ICDCN 2010): mission-oriented k-coverage via Reuleaux
// triangle decomposition. Their derivation needs
//
//   N*_k = 6 k |A| / ((4 pi - 3 sqrt 3) r^2)
//
// nodes to k-cover an area |A| at sensing range r (k >= 3) — the quantity
// Table II of the LAACAD paper evaluates. We provide the formula plus a
// constructive lens-style deployment for empirical comparison: a triangular
// grid with side r (the Reuleaux width) carrying k nodes per vertex, which
// k-covers the plane because every point of a side-r triangular lattice is
// within r of at least three lattice vertices.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "wsn/domain.hpp"

namespace laacad::base {

/// Node count required by the Ammari-Das Reuleaux-lens scheme to k-cover
/// `area` at range r (k >= 3 in their derivation; formula evaluated as-is).
double ammari_min_nodes(double area, double r, int k);

/// Constructive lens-style deployment: triangular lattice of side
/// `spacing_factor` * r with ceil(k/3) nodes per vertex (every point of the
/// plane is within r of >= 3 vertices of a side-r triangular lattice, so
/// vertex multiplicity m yields 3m-coverage). Boundary anchors are projected
/// into the domain.
std::vector<geom::Vec2> ammari_lens_deployment(const wsn::Domain& domain,
                                               double r, int k, Rng& rng,
                                               double spacing_factor = 0.95);

}  // namespace laacad::base
