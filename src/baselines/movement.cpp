#include "baselines/movement.hpp"

#include <algorithm>
#include <limits>

#include "voronoi/sites.hpp"
#include "wsn/spatial_grid.hpp"

namespace laacad::base {

using core::DominatingRegion;
using geom::Vec2;

namespace {

std::vector<DominatingRegion> regions_now(wsn::Network& net, int k) {
  auto sites = vor::separate_sites(net.positions());
  const wsn::SpatialGrid grid(sites, std::max(net.gamma(), 1.0));
  const geom::BBox bbox = net.domain().bbox();
  std::vector<DominatingRegion> out;
  out.reserve(static_cast<std::size_t>(net.size()));
  for (int i = 0; i < net.size(); ++i) {
    auto res = vor::compute_dominating_region(sites, grid, i, k, bbox);
    out.emplace_back(res.cells, net.domain());
  }
  return out;
}

}  // namespace

MovementResult run_target_rule(wsn::Network& net, TargetRule rule,
                               const MovementConfig& cfg) {
  MovementResult result;
  const int k = rule == TargetRule::kVor ? 1 : cfg.k;

  for (int round = 0; round < cfg.max_rounds; ++round) {
    auto regions = regions_now(net, k);
    int moved = 0;
    std::vector<Vec2> targets(static_cast<std::size_t>(net.size()));
    std::vector<bool> want(static_cast<std::size_t>(net.size()), false);
    for (int i = 0; i < net.size(); ++i) {
      const DominatingRegion& region = regions[static_cast<std::size_t>(i)];
      if (region.empty()) continue;
      const Vec2 ui = net.position(i);
      Vec2 target = ui;
      switch (rule) {
        case TargetRule::kChebyshev: {
          const geom::Circle c = region.chebyshev();
          if (c.valid()) target = c.center;
          break;
        }
        case TargetRule::kCentroid:
          target = region.centroid();
          break;
        case TargetRule::kVor: {
          // Move toward the farthest cell vertex until it is in range.
          double far_d = 0.0;
          Vec2 far_v = ui;
          for (Vec2 v : region.vertices()) {
            const double d = geom::dist(ui, v);
            if (d > far_d) {
              far_d = d;
              far_v = v;
            }
          }
          if (far_d > cfg.vor_range) {
            const Vec2 dir = (far_v - ui).normalized();
            target = ui + dir * (far_d - cfg.vor_range);
          }
          break;
        }
      }
      targets[static_cast<std::size_t>(i)] = target;
      want[static_cast<std::size_t>(i)] = true;
    }
    for (int i = 0; i < net.size(); ++i) {
      if (!want[static_cast<std::size_t>(i)]) continue;
      const Vec2 ui = net.position(i);
      const Vec2 t = targets[static_cast<std::size_t>(i)];
      if (geom::dist(ui, t) <= cfg.epsilon) continue;
      net.set_position(i, ui + (t - ui) * cfg.alpha);
      if (geom::dist(ui, net.position(i)) > std::max(1e-6, 0.05 * cfg.epsilon))
        ++moved;
    }
    result.rounds = round + 1;
    if (moved == 0) {
      result.converged = true;
      break;
    }
  }

  // Final range assignment: region circumradius about the final position
  // (the k-CSDP objective all rules are scored on).
  auto regions = regions_now(net, k);
  double rmax = 0.0, rmin = std::numeric_limits<double>::infinity();
  for (int i = 0; i < net.size(); ++i) {
    const double r = regions[static_cast<std::size_t>(i)].empty()
                         ? 0.0
                         : regions[static_cast<std::size_t>(i)].max_dist_from(
                               net.position(i));
    net.set_sensing_range(i, r);
    rmax = std::max(rmax, r);
    rmin = std::min(rmin, r);
  }
  result.final_max_range = rmax;
  result.final_min_range =
      rmin == std::numeric_limits<double>::infinity() ? 0.0 : rmin;
  return result;
}

}  // namespace laacad::base
