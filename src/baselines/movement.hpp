// Movement-control baselines:
//
// * Wang, Cao & La Porta [9] VOR heuristic (1-coverage, fixed range):
//   a node whose order-1 Voronoi cell contains a point farther than its
//   sensing range moves toward the farthest cell vertex, stopping at
//   range-distance from it.
// * Lloyd / centroid rule: move to the area centroid of the dominating
//   region instead of its Chebyshev center — the classic CVT iteration,
//   used here as an ablation of LAACAD's target rule (Sec. IV-C argues the
//   Chebyshev center is the optimal choice for the min-max objective).
//
// Both reuse LAACAD's exact region machinery so the comparison isolates the
// *target rule*, not the substrate.
#pragma once

#include "laacad/engine.hpp"

namespace laacad::base {

enum class TargetRule {
  kChebyshev,  ///< LAACAD (Proposition 3)
  kCentroid,   ///< Lloyd / CVT generalization
  kVor,        ///< Wang et al. [9] farthest-vertex pursuit (k = 1 semantics)
};

struct MovementConfig {
  int k = 1;
  double alpha = 1.0;
  double epsilon = 0.5;
  int max_rounds = 300;
  /// Fixed sensing range for the VOR rule (its movement stops once the
  /// farthest cell vertex is within this range); ignored by other rules.
  double vor_range = 0.0;
};

struct MovementResult {
  int rounds = 0;
  bool converged = false;
  double final_max_range = 0.0;  ///< max region circumradius about nodes
  double final_min_range = 0.0;
};

/// Run the given target rule to convergence, mutating `net` (positions and
/// sensing ranges, like Engine::run).
MovementResult run_target_rule(wsn::Network& net, TargetRule rule,
                               const MovementConfig& cfg);

}  // namespace laacad::base
