#include "baselines/regular.hpp"

#include <cmath>

#include "wsn/deployment.hpp"

namespace laacad::base {

namespace {
const double kSqrt3 = std::sqrt(3.0);
}

double kershner_min_nodes(double area, double r) {
  return 2.0 * area / (3.0 * kSqrt3 * r * r);
}

double bai_min_nodes_2cov(double area, double r) {
  return 4.0 * area / (3.0 * kSqrt3 * r * r);
}

double stacked_min_nodes(double area, double r, int k) {
  return static_cast<double>(k) * kershner_min_nodes(area, r);
}

std::vector<geom::Vec2> stacked_triangular_deployment(
    const wsn::Domain& domain, double r, int k, Rng& rng,
    double spacing_factor) {
  const double spacing = spacing_factor * kSqrt3 * r;
  // Lay the lattice over the bbox (not just the domain) and project outside
  // anchors onto the domain so its boundary strip is not left uncovered.
  std::vector<geom::Vec2> anchors;
  const geom::BBox bb = domain.bbox().inflated(spacing * 0.5);
  const double row_h = spacing * kSqrt3 / 2.0;
  int row = 0;
  for (double y = bb.lo.y; y <= bb.hi.y; y += row_h, ++row) {
    const double x0 = bb.lo.x + (row % 2 ? spacing / 2.0 : 0.0);
    for (double x = x0; x <= bb.hi.x; x += spacing) {
      const geom::Vec2 p{x, y};
      if (domain.contains(p)) {
        anchors.push_back(p);
      } else if (domain.dist_to_boundary(p) <= spacing) {
        anchors.push_back(domain.project_inside(p));
      }
    }
  }
  return wsn::stacked(anchors, k, rng, 1e-3);
}

}  // namespace laacad::base
