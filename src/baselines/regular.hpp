// Regular-deployment baselines from the coverage literature the paper
// compares against.
//
// * Kershner (1939): optimal 1-coverage density is 2*pi/(3*sqrt 3), achieved
//   by a triangular lattice with spacing sqrt(3) r.
// * Bai et al. [3] (INFOCOM 2011): the optimal congruent deployment density
//   for 2-coverage is 4*pi/(3*sqrt 3) — exactly twice Kershner, achieved by
//   stacking two triangular lattices. Table I of the LAACAD paper uses the
//   node-count form N* = 4|A| / (3 sqrt(3) R*^2).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "wsn/domain.hpp"

namespace laacad::base {

/// Minimum node count for 1-coverage of `area` at sensing range r
/// (Kershner bound, no boundary effects): 2 |A| / (3 sqrt(3) r^2).
double kershner_min_nodes(double area, double r);

/// Minimum node count for 2-coverage at range r per Bai et al. [3]:
/// 4 |A| / (3 sqrt(3) r^2). This is the N*_{k=2} column of Table I.
double bai_min_nodes_2cov(double area, double r);

/// Generalized stacked bound: k |A| * 2 / (3 sqrt(3) r^2) — k copies of the
/// optimal 1-cover (known optimal for k = 2, an upper-bound construction
/// otherwise).
double stacked_min_nodes(double area, double r, int k);

/// Constructive stacked deployment: a triangular lattice with spacing
/// `spacing_factor` * sqrt(3) * r covering the domain, k co-located nodes
/// per lattice point (jittered by ~1 mm). Points outside the domain are
/// projected onto it so boundary strips stay covered. spacing_factor < 1
/// compensates boundary effects.
std::vector<geom::Vec2> stacked_triangular_deployment(
    const wsn::Domain& domain, double r, int k, Rng& rng,
    double spacing_factor = 0.95);

}  // namespace laacad::base
