#include "campaign/manifest.hpp"

#include <cstdlib>
#include <istream>
#include <limits>
#include <sstream>

#include "common/json_writer.hpp"
#include "common/specparse.hpp"

namespace laacad::campaign {

namespace {

constexpr const char* kMagic = "laacad.campaign.manifest.v1";

/// Parse one journaled double; "null" is NaN (how number_to_string prints
/// it). Returns false on garbage — the caller drops the line.
bool parse_metric(const std::string& tok, double* out) {
  if (tok == "null") {
    *out = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  char* end = nullptr;
  *out = std::strtod(tok.c_str(), &end);
  return end != tok.c_str() && *end == '\0';
}

/// Reversible single-line encoding for error text: the journal is
/// line-oriented, but the error must round-trip *exactly* (the aggregate
/// JSON emits it, so resumed runs reproduce failing campaigns byte for
/// byte even if some future exception message carries a newline).
std::string escape_error(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else if (c == '\r') out += "\\r";
    else out += c;
  }
  return out;
}

std::string unescape_error(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    const char next = s[++i];
    out += next == 'n' ? '\n' : next == 'r' ? '\r' : next;
  }
  return out;
}

/// Parse "key=<rest of token>"; returns the value part or nullopt.
std::optional<std::string> token_value(const std::string& tok,
                                       const std::string& key) {
  if (tok.rfind(key + "=", 0) != 0) return std::nullopt;
  return tok.substr(key.size() + 1);
}

bool parse_exact_long(const std::string& s, int base, long* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtol(s.c_str(), &end, base);
  return end == s.c_str() + s.size();
}

}  // namespace

std::string format_manifest_header(const ManifestHeader& header) {
  std::ostringstream ss;
  ss << kMagic << " fp=" << std::hex << header.fingerprint << std::dec
     << " trials=" << header.trials << " metrics=" << header.metrics;
  if (header.shard.sharded())
    ss << " shard=" << dist::to_string(header.shard);
  return ss.str();
}

std::optional<ManifestHeader> parse_manifest_header(const std::string& line) {
  const auto toks = specparse::tokenize(line);
  if (toks.size() < 4 || toks.size() > 5 || toks[0] != kMagic)
    return std::nullopt;
  ManifestHeader header;
  {
    const auto fp = token_value(toks[1], "fp");
    if (!fp || fp->empty()) return std::nullopt;
    char* end = nullptr;
    header.fingerprint = std::strtoull(fp->c_str(), &end, 16);
    if (end != fp->c_str() + fp->size()) return std::nullopt;
  }
  long trials = 0, metrics = 0;
  const auto t = token_value(toks[2], "trials");
  const auto m = token_value(toks[3], "metrics");
  if (!t || !m || !parse_exact_long(*t, 10, &trials) ||
      !parse_exact_long(*m, 10, &metrics) || trials < 0 || metrics < 0)
    return std::nullopt;
  header.trials = static_cast<int>(trials);
  header.metrics = static_cast<int>(metrics);
  if (toks.size() == 5) {
    const auto s = token_value(toks[4], "shard");
    if (!s) return std::nullopt;
    try {
      header.shard = dist::parse_shard(*s);
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }
  return header;
}

std::string describe_manifest_header(const ManifestHeader& header) {
  std::ostringstream ss;
  ss << "fp=" << std::hex << header.fingerprint << std::dec
     << " trials=" << header.trials << " metrics=" << header.metrics;
  if (header.shard.sharded())
    ss << " shard=" << dist::to_string(header.shard);
  return ss.str();
}

/// One journal row, always closed by the " ;" terminator: a kill mid-write
/// cannot truncate a row into a different *valid* row (a cut final metric
/// like "83.43827" still parses as a plausible double — only the missing
/// terminator gives it away). The error message, if any, trails the fixed
/// metric columns as length-prefixed escaped text ("E<len> <text>").
std::string format_manifest_row(const TrialResult& r) {
  std::ostringstream ss;
  ss << "trial " << r.trial << ' ' << (r.ok ? 1 : 0);
  for (const double m : r.metrics)
    ss << ' ' << JsonWriter::number_to_string(m);
  if (!r.error.empty()) {
    const std::string escaped = escape_error(r.error);
    ss << " E" << escaped.size() << ' ' << escaped;
  }
  ss << " ;";
  return ss.str();
}

std::map<int, TrialResult> replay_manifest_rows(std::istream& in,
                                                int total_trials) {
  std::map<int, TrialResult> rows;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ss(line);
    std::string tag;
    int trial = -1, ok = 0;
    if (!(ss >> tag >> trial >> ok) || tag != "trial" || trial < 0 ||
        trial >= total_trials)
      break;  // truncated/garbled tail: ignore from here on
    TrialResult r;
    r.trial = trial;
    r.ok = ok != 0;
    r.metrics.reserve(metric_names().size());
    std::string tok;
    bool good = true;
    for (std::size_t m = 0; m < metric_names().size(); ++m) {
      double v = 0.0;
      if (!(ss >> tok) || !parse_metric(tok, &v)) {
        good = false;
        break;
      }
      r.metrics.push_back(v);
    }
    if (!good) break;
    // The rest of the row must end with the " ;" terminator, with an
    // optional length-prefixed error before it. Either check failing
    // means the row was cut mid-write: drop it and everything after.
    std::string rest;
    std::getline(ss, rest);
    if (rest.size() < 2 || rest.compare(rest.size() - 2, 2, " ;") != 0)
      break;
    rest.resize(rest.size() - 2);
    if (!rest.empty()) {
      if (rest.size() < 4 || rest[0] != ' ' || rest[1] != 'E') break;
      const std::size_t sp = rest.find(' ', 2);
      if (sp == std::string::npos) break;
      char* end = nullptr;
      const long len = std::strtol(rest.c_str() + 2, &end, 10);
      if (end != rest.c_str() + sp || len <= 0) break;
      const std::string escaped = rest.substr(sp + 1);
      if (static_cast<long>(escaped.size()) != len) break;
      r.error = unescape_error(escaped);
    }
    rows.emplace(trial, std::move(r));
  }
  return rows;
}

}  // namespace laacad::campaign
