// Manifest codec — the line format shared by the ResultStore journal and
// the distribution layer's shard merge.
//
// A manifest is a header line followed by one record per completed trial:
//
//   laacad.campaign.manifest.v1 fp=<hex> trials=<N> metrics=<M> [shard=<i>/<S>]
//   trial <index> <ok:0|1> <m1> ... <mM> [E<len> <error text>] ;
//
// The optional `shard=` token marks a per-shard journal produced by
// `campaign_runner --shard i/S`: it records the shard coordinates so a
// resume cannot silently continue the wrong shard and the merge can verify
// the scheme. Unsharded manifests omit the token, which keeps them (and the
// merged manifest, which is written unsharded) byte-compatible with the
// pre-distribution format.
//
// Doubles use JsonWriter::number_to_string (shortest exact round-trip; NaN
// prints as null); a failed trial's error text is journaled length-prefixed
// so it round-trips exactly; the " ;" terminator marks a row as completely
// written — a kill mid-write cannot truncate a row into a different *valid*
// row, so replay stops at the first malformed line.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>

#include "campaign/trial.hpp"
#include "dist/partition.hpp"

namespace laacad::campaign {

/// Everything the header line encodes. Two manifests with equal headers
/// journal trials of the same campaign identity and the same shard.
struct ManifestHeader {
  std::uint64_t fingerprint = 0;
  int trials = 0;   ///< size of the *full* trial matrix, not the shard's
  int metrics = 0;  ///< metric_names().size() at write time
  dist::ShardSpec shard;  ///< {0, 1} for unsharded manifests

  bool operator==(const ManifestHeader&) const = default;
};

/// Serialize the header line (no trailing newline). The shard token is
/// emitted only for sharded headers.
std::string format_manifest_header(const ManifestHeader& header);

/// Parse a header line; nullopt when the line is not a valid header
/// (wrong magic, malformed fields, or out-of-range shard coordinates).
std::optional<ManifestHeader> parse_manifest_header(const std::string& line);

/// Describe a header for error messages: "fp=<hex> trials=N metrics=M
/// shard=i/S" (shard only when sharded).
std::string describe_manifest_header(const ManifestHeader& header);

/// Serialize one trial record (no trailing newline).
std::string format_manifest_row(const TrialResult& result);

/// Replay trial records from `in` (positioned after the header) until the
/// first malformed or terminator-less line — the signature of a kill
/// mid-write — which is ignored along with everything after it. Rows are
/// keyed by trial index; the first completion of a trial wins (duplicates
/// can only be re-records of the same deterministic row). Rows outside
/// [0, total_trials) stop the replay like any other malformed line.
std::map<int, TrialResult> replay_manifest_rows(std::istream& in,
                                                int total_trials);

}  // namespace laacad::campaign
