#include "campaign/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <mutex>
#include <ostream>
#include <stdexcept>

#include "campaign/store.hpp"
#include "common/csv.hpp"
#include "common/json_writer.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace laacad::campaign {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

MetricAggregate aggregate_metric(const std::vector<double>& finite) {
  MetricAggregate agg;
  const Summary s = summarize(finite);
  agg.n = static_cast<int>(s.count());
  agg.mean = s.mean();  // NaN when empty, by the stats convention
  agg.stddev = agg.n ? s.stddev() : kNaN;
  agg.min = agg.n ? s.min() : kNaN;
  agg.max = agg.n ? s.max() : kNaN;
  agg.p50 = percentile(finite, 50.0);
  agg.p95 = percentile(finite, 95.0);
  agg.ci95 = ci95_half_width(s);
  return agg;
}

std::vector<GroupAggregate> aggregate_groups(
    const CampaignSpec& spec, const std::vector<TrialPoint>& points,
    const std::vector<TrialResult>& trials) {
  std::vector<GroupAggregate> groups;
  const int reps = spec.trials;
  const int n_points = static_cast<int>(points.size()) / std::max(1, reps);
  groups.reserve(static_cast<std::size_t>(n_points));
  for (int p = 0; p < n_points; ++p) {
    GroupAggregate g;
    g.point = p;
    g.values = points[static_cast<std::size_t>(p * reps)].values;
    g.trials = reps;
    g.metrics.reserve(metric_names().size());
    for (std::size_t m = 0; m < metric_names().size(); ++m) {
      std::vector<double> finite;
      finite.reserve(static_cast<std::size_t>(reps));
      for (int r = 0; r < reps; ++r) {
        const double v =
            trials[static_cast<std::size_t>(p * reps + r)].metrics[m];
        if (std::isfinite(v)) finite.push_back(v);
      }
      g.metrics.push_back(aggregate_metric(finite));
    }
    for (int r = 0; r < reps; ++r)
      if (trials[static_cast<std::size_t>(p * reps + r)].ok) ++g.ok;
    groups.push_back(std::move(g));
  }
  return groups;
}

void write_config(JsonWriter& w, const CampaignSpec& spec) {
  const scenario::ScenarioSpec& b = spec.base;
  w.key("config").begin_object();
  w.kv("trials", spec.trials);
  w.kv("seed", spec.seed);
  if (!spec.scenario_file.empty()) w.kv("scenario", spec.scenario_file);
  w.kv("domain", b.domain);
  w.kv("side", b.side);
  w.kv("hole", b.hole);
  w.kv("deploy", b.deploy);
  w.kv("nodes", b.nodes);
  w.kv("k", b.k);
  w.kv("alpha", b.alpha);
  w.kv("epsilon", b.epsilon);
  w.kv("max_rounds", b.max_rounds);
  w.kv("gamma", b.gamma);
  w.kv("backend", b.backend);
  w.kv("max_hops", b.max_hops);
  w.kv("noise", b.noise);
  w.kv("battery", b.battery);
  w.kv("grid_resolution", b.grid_resolution);
  w.end_object();
}

void write_point_values(
    JsonWriter& w,
    const std::vector<std::pair<std::string, std::string>>& values) {
  w.begin_object();
  for (const auto& [key, value] : values) w.kv(key, value);
  w.end_object();
}

}  // namespace

bool CampaignResult::all_ok() const {
  for (std::size_t i = 0; i < trials.size(); ++i) {
    if (!dist::owns(shard, static_cast<int>(i))) continue;
    if (!trials[i].ok) return false;
  }
  return true;
}

namespace {

/// Serializing a sharded result would emit default rows for every trial the
/// shard never ran, silently poisoning the aggregates with fake failures.
void require_full_matrix(const dist::ShardSpec& shard, const char* what) {
  if (shard.sharded())
    throw std::logic_error(
        std::string(what) + " on a shard " + dist::to_string(shard) +
        " result: a sharded run holds a partial trial matrix — merge the "
        "shard manifests (dist::merge_manifests) and serialize that");
}

}  // namespace

void CampaignResult::write_json(std::ostream& out) const {
  require_full_matrix(shard, "write_json");
  JsonWriter w(out);
  w.begin_object();
  w.kv("schema", "laacad.campaign.v1");
  w.kv("campaign", spec.name);
  write_config(w, spec);

  w.key("axes").begin_array();
  for (const Axis& axis : spec.axes) {
    w.begin_object();
    w.kv("key", axis.key);
    w.key("values").begin_array();
    for (const std::string& v : axis.values) w.value(v);
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.key("trials").begin_array();
  for (std::size_t i = 0; i < trials.size(); ++i) {
    const TrialPoint& pt = points[i];
    const TrialResult& r = trials[i];
    w.begin_object();
    w.kv("trial", pt.trial);
    w.kv("point", pt.point);
    w.kv("rep", pt.rep);
    w.kv("seed", pt.seed);
    if (!pt.values.empty()) {
      w.key("values");
      write_point_values(w, pt.values);
    }
    w.kv("ok", r.ok);
    if (!r.error.empty()) w.kv("error", r.error);
    w.key("metrics").begin_object();
    for (std::size_t m = 0; m < metric_names().size(); ++m)
      w.kv(metric_names()[m], r.metrics[m]);
    w.end_object();
    w.end_object();
  }
  w.end_array();

  w.key("groups").begin_array();
  for (const GroupAggregate& g : groups) {
    w.begin_object();
    w.kv("point", g.point);
    if (!g.values.empty()) {
      w.key("values");
      write_point_values(w, g.values);
    }
    w.kv("trials", g.trials);
    w.kv("ok", g.ok);
    w.key("metrics").begin_object();
    for (std::size_t m = 0; m < metric_names().size(); ++m) {
      const MetricAggregate& agg = g.metrics[m];
      w.key(metric_names()[m]).begin_object();
      w.kv("n", agg.n);
      w.kv("mean", agg.mean);
      w.kv("stddev", agg.stddev);
      w.kv("min", agg.min);
      w.kv("max", agg.max);
      w.kv("p50", agg.p50);
      w.kv("p95", agg.p95);
      w.kv("ci95", agg.ci95);
      w.end_object();
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();

  int n_ok = 0, n_aborted = 0;
  for (const TrialResult& t : trials) {
    if (t.ok) ++n_ok;
    const double aborted = t.metrics[metric_index("aborted")];
    if (aborted == 1.0) ++n_aborted;
  }
  w.key("summary").begin_object();
  w.kv("trials", static_cast<std::int64_t>(trials.size()));
  w.kv("points", static_cast<std::int64_t>(groups.size()));
  w.kv("ok", n_ok);
  w.kv("aborted", n_aborted);
  w.kv("all_ok", all_ok());
  w.end_object();

  w.end_object();
  out << '\n';
}

void CampaignResult::write_csv(std::ostream& out) const {
  require_full_matrix(shard, "write_csv");
  const auto cell = [](const std::string& s) { return CsvWriter::escape(s); };
  out << "trial,point,rep,seed";
  for (const Axis& axis : spec.axes) out << ',' << cell(axis.key);
  out << ",ok";
  for (const std::string& name : metric_names()) out << ',' << cell(name);
  out << '\n';
  for (std::size_t i = 0; i < trials.size(); ++i) {
    const TrialPoint& pt = points[i];
    const TrialResult& r = trials[i];
    out << pt.trial << ',' << pt.point << ',' << pt.rep << ',' << pt.seed;
    for (const auto& [key, value] : pt.values) out << ',' << cell(value);
    out << ',' << (r.ok ? 1 : 0);
    for (const double m : r.metrics)
      out << ',' << JsonWriter::number_to_string(m);
    out << '\n';
  }
}

CampaignScheduler::CampaignScheduler(CampaignSpec spec, CampaignOptions opt)
    : spec_(std::move(spec)), opt_(std::move(opt)) {
  validate(spec_);
  if (opt_.workers < 0)
    throw std::runtime_error(
        "campaign: workers must be >= 0 (0 = hardware concurrency)");
  if (opt_.trial_threads < 0)
    throw std::runtime_error(
        "campaign: trial_threads must be >= 0 (0 = hardware concurrency)");
  if (opt_.trial_threads != 1 && opt_.workers != 1)
    throw std::runtime_error(
        "campaign: trial_threads requires workers == 1 — parallelism goes "
        "either across trials (workers) or inside one (trial_threads), "
        "never both");
  dist::validate(opt_.shard);
  points_ = expand_grid(spec_);
}

CampaignResult CampaignScheduler::run() {
  const int total = static_cast<int>(points_.size());
  ManifestHeader header;
  header.fingerprint = fingerprint(spec_);
  header.trials = total;
  header.metrics = static_cast<int>(metric_names().size());
  header.shard = opt_.shard;
  ResultStore store(opt_.manifest_path, header, opt_.resume);

  std::vector<TrialResult> results(points_.size());
  std::vector<bool> have(points_.size(), false);
  for (const auto& [trial, r] : store.recovered()) {
    results[static_cast<std::size_t>(trial)] = r;
    have[static_cast<std::size_t>(trial)] = true;
  }
  const int n_recovered = static_cast<int>(store.recovered().size());

  // The shard's slice of the matrix (the whole matrix when unsharded),
  // minus what the manifest already has.
  const std::vector<int> owned = dist::shard_trials(opt_.shard, total);
  std::vector<int> pending;
  pending.reserve(owned.size());
  for (const int i : owned)
    if (!have[static_cast<std::size_t>(i)]) pending.push_back(i);
  const int shard_total = static_cast<int>(owned.size());

  if (!pending.empty()) {
    // Dynamic trial queue over the deterministic pool: workers pull the
    // next pending index, so stragglers never serialize the matrix. The
    // queue order affects wall-clock only — rows land by trial index and
    // every trial's seed is a pure function of its identity.
    std::atomic<std::size_t> next{0};
    std::mutex lock;
    int done = n_recovered;
    const auto drain = [&](int) {
      while (true) {
        const std::size_t q = next.fetch_add(1);
        if (q >= pending.size()) break;
        const TrialPoint& pt =
            points_[static_cast<std::size_t>(pending[q])];
        TrialResult r;
        {
          obs::ScopedSpan trial_span("trial", pt.trial);
          r = run_trial(spec_, pt, opt_.keep_history, opt_.probe,
                        opt_.trial_threads);
        }
        store.record(r);
        std::lock_guard<std::mutex> g(lock);
        results[static_cast<std::size_t>(pt.trial)] = std::move(r);
        ++done;
        // Gauge, not counter: the last write wins, which is exactly the
        // "how deep is the queue right now" question the value answers.
        if (obs::enabled())
          obs::Registry::instance().set_gauge(
              "campaign.queue_depth",
              static_cast<double>(pending.size() -
                                  std::min(next.load(), pending.size())));
        if (opt_.on_trial)
          opt_.on_trial(pt, results[static_cast<std::size_t>(pt.trial)],
                        done, shard_total);
      }
    };
    if (opt_.trial_threads != 1) {
      // The trial itself parallelizes (engine pool), so it must not run
      // inside a pool chunk — pools refuse to nest. workers == 1 is
      // already enforced for this mode; drain the queue on this thread.
      drain(0);
    } else {
      common::ThreadPool pool(opt_.workers);
      pool.run(pool.size(), drain);
    }
  }

  CampaignResult out;
  out.spec = spec_;
  out.points = points_;
  out.trials = std::move(results);
  out.shard = opt_.shard;
  if (!opt_.shard.sharded())
    out.groups = aggregate_groups(spec_, points_, out.trials);
  out.executed = static_cast<int>(pending.size());
  out.recovered = n_recovered;
  return out;
}

}  // namespace laacad::campaign
