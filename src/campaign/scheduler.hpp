// CampaignScheduler — shards a campaign's trial matrix across a pool of
// workers and aggregates the streamed results.
//
// Scheduling is dynamic (workers pull the next pending trial from a shared
// atomic queue, so a long trial never blocks the rest of the matrix), but
// results are deterministic anyway: every trial's RNG seed derives from its
// identity (grid point, repetition) rather than from which worker ran it,
// each trial runs a serial engine, and rows land in a results array indexed
// by trial. The emitted JSON and CSV are therefore byte-identical for any
// worker count — and, combined with the ResultStore manifest, for any
// interrupt/resume split.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "campaign/spec.hpp"
#include "campaign/trial.hpp"
#include "dist/partition.hpp"

namespace laacad::campaign {

struct CampaignOptions {
  int workers = 1;    ///< trial-level parallelism; 0 = hardware concurrency
  /// Engine threads *inside* each trial (1 = serial, 0 = hardware). For
  /// matrices of few huge trials (the scale ladder), where worker-level
  /// fan-out has nothing to fan out. Requires workers == 1: a trial engine's
  /// pool cannot be created from inside a campaign worker chunk (the
  /// nested-parallelism guard), and the combination would oversubscribe
  /// anyway. Changes no output bits — the engine is thread-count
  /// deterministic.
  int trial_threads = 1;
  bool resume = false;  ///< replay the manifest instead of starting over
  /// Manifest path; empty disables journaling (in-memory embedders).
  std::string manifest_path;
  /// Retain per-trial round history in memory (never serialized).
  bool keep_history = false;
  /// Run only the trials this shard owns (stride partition, see
  /// dist/partition.hpp) and stamp the shard coordinates into the manifest
  /// header. {0, 1} — the default — runs the whole matrix. A sharded run
  /// produces a partial CampaignResult whose aggregates are meaningless;
  /// merge the shard manifests (dist::merge_manifests) for the real ones.
  dist::ShardSpec shard;
  /// Progress hook, called under the scheduler lock as each trial lands:
  /// (point, result, completed count, total trials this shard owns).
  std::function<void(const TrialPoint&, const TrialResult&, int, int)>
      on_trial;
  /// Observation hook for in-memory embedders (figure benches): called on
  /// each *successful* trial, from the worker thread that ran it, with the
  /// still-live runner (final network + domain state) and the full scenario
  /// record. Must be thread-safe; must not retain the references.
  TrialProbe probe;
};

/// Aggregate of one metric over a group's finite samples. NaN (JSON null)
/// throughout when no finite sample exists — aggregates never invent zeros.
struct MetricAggregate {
  int n = 0;  ///< finite samples aggregated
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double ci95 = 0.0;  ///< normal-approx 95% CI half-width on the mean
};

/// All repetitions of one grid point, aggregated per metric.
struct GroupAggregate {
  int point = 0;
  /// Axis values identifying the group, in axis order.
  std::vector<std::pair<std::string, std::string>> values;
  int trials = 0;  ///< repetitions in the group
  int ok = 0;      ///< repetitions with TrialResult::ok
  std::vector<MetricAggregate> metrics;  ///< parallel to metric_names()
};

struct CampaignResult {
  CampaignSpec spec;
  std::vector<TrialPoint> points;   ///< full matrix, by trial index
  std::vector<TrialResult> trials;  ///< by trial index
  std::vector<GroupAggregate> groups;  ///< by grid-point index
  int executed = 0;   ///< trials run now (rest recovered from the manifest)
  int recovered = 0;  ///< trials replayed from the manifest
  /// Which slice of the matrix this result actually ran; trials the shard
  /// does not own are default rows (trial == -1). {0, 1} = the full matrix.
  dist::ShardSpec shard;

  /// Every owned trial completed with verified final k-coverage. A sharded
  /// result judges only its own slice.
  bool all_ok() const;

  /// BENCH_campaign_<name>.json: config echo, axes, per-trial rows, grouped
  /// aggregates, summary. Execution details (worker count, resume split,
  /// manifest path) are never serialized — output is byte-identical across
  /// worker counts and across interrupt/resume. Throws std::logic_error on
  /// a sharded result: a partial matrix must be merged first
  /// (dist::merge_manifests), never half-serialized.
  void write_json(std::ostream& out) const;

  /// Trial log: one CSV row per trial (identity, axis values, ok, metrics),
  /// in trial order. Same determinism and sharding contract as the JSON.
  void write_csv(std::ostream& out) const;
};

class CampaignScheduler {
 public:
  /// Validates the spec and expands the trial matrix; throws
  /// std::runtime_error on a bad spec or a mismatched resume manifest.
  explicit CampaignScheduler(CampaignSpec spec, CampaignOptions opt = {});

  /// The expanded matrix (for --dry-run listings and tests).
  const std::vector<TrialPoint>& trials() const { return points_; }

  /// Run every pending trial and aggregate. Call once.
  CampaignResult run();

 private:
  CampaignSpec spec_;
  CampaignOptions opt_;
  std::vector<TrialPoint> points_;
};

}  // namespace laacad::campaign
