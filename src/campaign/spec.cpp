#include "campaign/spec.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <sstream>
#include <stdexcept>

#include "common/json_writer.hpp"
#include "common/rng.hpp"
#include "common/specparse.hpp"

namespace laacad::campaign {

namespace {

using specparse::fail;
using specparse::parse_int;
using specparse::parse_uint64;
using specparse::tokenize;

/// Probe-apply an axis value so a malformed sweep fails at parse time, not
/// thousands of trials into a run.
void check_axis_value(const std::string& key, const std::string& value,
                      int line) {
  if (key == "scenario") return;  // file existence is checked at trial time
  scenario::ScenarioSpec scratch;
  if (!scenario::set_key(scratch, key, value, line))
    fail(line, "'" + key + "' is not a sweepable scenario key");
}

/// FNV-1a 64 over a canonical serialization.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

CampaignSpec parse_campaign(std::istream& in) {
  CampaignSpec spec;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto toks = tokenize(line);
    if (toks.empty()) continue;
    const std::string& key = toks[0];

    if (key == "sweep") {
      if (toks.size() < 3)
        fail(lineno, "sweep needs a key and at least one value: "
                     "sweep <key> <v1> [v2 ...]");
      Axis axis;
      axis.key = toks[1];
      axis.values.assign(toks.begin() + 2, toks.end());
      axis.line = lineno;
      for (const Axis& existing : spec.axes)
        if (existing.key == axis.key)
          fail(lineno, "axis '" + axis.key + "' swept twice");
      for (const std::string& v : axis.values)
        check_axis_value(axis.key, v, lineno);
      spec.axes.push_back(std::move(axis));
      continue;
    }

    if (toks.size() != 2)
      fail(lineno, "expected 'key value', got " +
                       std::to_string(toks.size()) + " tokens");
    const std::string& val = toks[1];
    if (key == "name") {
      spec.name = val;
    } else if (key == "trials") {
      spec.trials = parse_int(val, lineno, key);
    } else if (key == "seed") {
      spec.seed = parse_uint64(val, lineno, key);
    } else if (key == "scenario") {
      spec.scenario_file = val;
    } else if (scenario::set_key(spec.base, key, val, lineno)) {
      spec.base_overrides.emplace_back(key, val);
    } else {
      // `threads` lands here on purpose: execution shape belongs to the
      // scheduler (--workers), never to the campaign identity.
      fail(lineno, "unknown campaign key '" + key + "'");
    }
  }
  validate(spec);
  return spec;
}

CampaignSpec parse_campaign_string(const std::string& text) {
  std::istringstream ss(text);
  return parse_campaign(ss);
}

CampaignSpec load_campaign_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open campaign file: " + path);
  CampaignSpec spec = parse_campaign(in);
  const auto slash = path.find_last_of("/\\");
  spec.dir = slash == std::string::npos ? "" : path.substr(0, slash);
  if (spec.name == "unnamed") {
    std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    if (auto dot = base.find_last_of('.'); dot != std::string::npos)
      base.resize(dot);
    if (!base.empty()) spec.name = base;
  }
  return spec;
}

void validate(const CampaignSpec& spec) {
  auto bad = [](const std::string& what) {
    throw std::runtime_error("campaign spec: " + what);
  };
  if (spec.name.empty()) bad("name must not be empty");
  if (spec.trials < 1) bad("trials must be >= 1");
  bool scenario_swept = false;
  for (const Axis& axis : spec.axes) {
    if (axis.values.empty()) bad("axis '" + axis.key + "' has no values");
    if (axis.key == "scenario") scenario_swept = true;
  }
  if (scenario_swept && !spec.scenario_file.empty())
    bad("'scenario' is both fixed and swept — pick one");
  // Static campaigns must start from a coherent base; scenario-based
  // campaigns are validated per loaded file at trial time.
  if (spec.scenario_file.empty() && !scenario_swept) {
    try {
      scenario::validate(spec.base);
    } catch (const std::exception& e) {
      bad(std::string("base config invalid: ") + e.what());
    }
  }
}

std::vector<TrialPoint> expand_grid(const CampaignSpec& spec) {
  std::size_t points = 1;
  for (const Axis& axis : spec.axes) points *= axis.values.size();

  std::vector<TrialPoint> out;
  out.reserve(points * static_cast<std::size_t>(spec.trials));
  for (std::size_t p = 0; p < points; ++p) {
    // Row-major decomposition: axis 0 varies slowest.
    std::vector<std::pair<std::string, std::string>> values;
    values.reserve(spec.axes.size());
    std::size_t rem = p;
    for (std::size_t a = spec.axes.size(); a-- > 0;) {
      const Axis& axis = spec.axes[a];
      values.emplace_back(axis.key, axis.values[rem % axis.values.size()]);
      rem /= axis.values.size();
    }
    std::reverse(values.begin(), values.end());

    for (int rep = 0; rep < spec.trials; ++rep) {
      TrialPoint pt;
      pt.point = static_cast<int>(p);
      pt.rep = rep;
      pt.trial = static_cast<int>(p) * spec.trials + rep;
      pt.seed = Rng::derive(spec.seed, p, static_cast<std::uint64_t>(rep));
      pt.values = values;
      out.push_back(std::move(pt));
    }
  }
  return out;
}

std::string resolve_scenario_path(const CampaignSpec& spec,
                                  const std::string& value) {
  const bool absolute =
      !value.empty() && (value[0] == '/' || value[0] == '\\');
  if (absolute || spec.dir.empty()) return value;
  return spec.dir + "/" + value;
}

std::uint64_t fingerprint(const CampaignSpec& spec) {
  // Canonical serialization of everything that determines the trial matrix.
  // num_threads is excluded by construction (it is not part of the spec).
  std::ostringstream ss;
  const auto num = [](double v) { return JsonWriter::number_to_string(v); };
  const scenario::ScenarioSpec& b = spec.base;
  ss << "campaign.v1\n"
     << spec.name << '\n'
     << spec.trials << ' ' << spec.seed << '\n'
     << b.domain << ' ' << num(b.side) << ' ' << b.hole << ' ' << b.deploy
     << ' ' << b.nodes << ' ' << b.k << ' ' << num(b.alpha) << ' '
     << num(b.epsilon) << ' ' << b.max_rounds << ' ' << num(b.gamma) << ' '
     << b.backend << ' ' << b.max_hops << ' ' << num(b.noise) << ' '
     << num(b.battery) << ' ' << num(b.grid_resolution) << '\n'
     << "scenario " << spec.scenario_file << '\n';
  for (const auto& [key, value] : spec.base_overrides)
    ss << "override " << key << ' ' << value << '\n';
  for (const Axis& axis : spec.axes) {
    ss << "sweep " << axis.key;
    for (const std::string& v : axis.values) ss << ' ' << v;
    ss << '\n';
  }
  // Referenced scenario files contribute their *contents*, not just their
  // paths: editing a .scn between an interrupted run and a --resume must
  // flip the fingerprint, or the journal would silently mix two
  // experiments. An unreadable file hashes as missing — the trial will
  // fail the same way on every run, so the identity stays stable.
  std::vector<std::string> scenario_refs;
  if (!spec.scenario_file.empty()) scenario_refs.push_back(spec.scenario_file);
  for (const Axis& axis : spec.axes)
    if (axis.key == "scenario")
      scenario_refs.insert(scenario_refs.end(), axis.values.begin(),
                           axis.values.end());
  for (const std::string& ref : scenario_refs) {
    ss << "scn " << ref << '\n';
    std::ifstream in(resolve_scenario_path(spec, ref));
    if (in) ss << in.rdbuf();
    else ss << "<missing>";
    ss << '\n';
  }
  return fnv1a(ss.str());
}

}  // namespace laacad::campaign
