// Declarative campaign specs: parameter sweeps over seeded trials.
//
// Every figure and table in the LAACAD paper is a *sweep* — coverage degree
// k, load-balance factor alpha, node count, deployment shape varied over
// seeded repetitions. A campaign describes one such sweep declaratively and
// expands it into a reproducible trial matrix that the CampaignScheduler
// shards across workers.
//
// The on-disk format is line-oriented `key value` pairs like scenarios/:
//
//   # alpha ablation, 3 seeds per point
//   name     alpha_ablation
//   trials   3
//   seed     31
//   nodes    60
//   k        2
//   side     500
//   sweep alpha 0.2 0.4 0.6 0.8 1.0
//
// Keys are either campaign-level (`name`, `trials`, `seed`, `scenario`,
// `sweep`) or any *physical* scenario config key (domain, side, deploy,
// nodes, k, alpha, ... — exactly the scenario::set_key set), which fixes
// that parameter for every trial. `sweep <key> <v1> <v2> ...` adds an axis;
// the trial matrix is the cartesian product of all axes times `trials`
// seeded repetitions. `scenario <file.scn>` (or `sweep scenario a.scn
// b.scn`) bases trials on a dynamic-network scenario instead of a static
// run; fixed keys and swept values are applied on top of the loaded file.
//
// Execution keys (threads) and identity keys (seed of an individual trial)
// are deliberately not sweepable: per-trial seeds are derived with
// Rng::derive(seed, point, rep), so the matrix is bit-reproducible
// regardless of worker count or completion order.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "scenario/spec.hpp"

namespace laacad::campaign {

/// One swept parameter: a scenario::set_key key (or "scenario") and the
/// textual values it takes, in spec order.
struct Axis {
  std::string key;
  std::vector<std::string> values;
  int line = 0;  ///< source line, for error messages
};

struct CampaignSpec {
  std::string name = "unnamed";
  int trials = 1;           ///< seeded repetitions per grid point
  std::uint64_t seed = 1;   ///< base seed for per-trial derivation
  /// Fixed physical config for static trials; also records the spec's
  /// explicit overrides (below) so scenario-based trials apply them too.
  scenario::ScenarioSpec base;
  /// Physical keys the campaign file set explicitly, in file order —
  /// re-applied over a loaded scenario file before the swept values.
  std::vector<std::pair<std::string, std::string>> base_overrides;
  std::string scenario_file;  ///< optional .scn every trial starts from
  std::vector<Axis> axes;     ///< sweep order = file order (axis 0 outermost)
  std::string dir;            ///< spec file directory; resolves scenario paths
};

/// One cell of the expanded trial matrix.
struct TrialPoint {
  int trial = 0;   ///< global index: point * trials + rep
  int point = 0;   ///< grid-point index (row-major over axes)
  int rep = 0;     ///< repetition within the point, [0, trials)
  std::uint64_t seed = 0;  ///< Rng::derive(campaign seed, point, rep)
  /// Axis values at this point, parallel to CampaignSpec::axes.
  std::vector<std::pair<std::string, std::string>> values;
};

/// Parse a campaign from a stream. Throws std::runtime_error with a
/// "line N: ..." message on malformed input; unknown keys are errors.
CampaignSpec parse_campaign(std::istream& in);

/// Parse from an in-memory string (tests, embedded benches).
CampaignSpec parse_campaign_string(const std::string& text);

/// Load and parse a campaign file; the file name (sans directory and
/// extension) overrides `name` when the spec does not set one, and the
/// file's directory becomes `dir` for scenario path resolution.
CampaignSpec load_campaign_file(const std::string& path);

/// Sanity checks shared by parser and scheduler: trials >= 1, unique
/// non-empty axes, axis keys sweepable, scenario not both fixed and swept;
/// for purely static campaigns the base config must pass
/// scenario::validate. Throws std::runtime_error naming the offending field.
void validate(const CampaignSpec& spec);

/// Expand the cartesian product of axes times `trials` repetitions, in
/// deterministic row-major order (axis 0 outermost, rep innermost), with
/// derived per-trial seeds. A campaign with no axes yields `trials` points
/// of the base config.
std::vector<TrialPoint> expand_grid(const CampaignSpec& spec);

/// Resolve a scenario reference against the campaign's directory (absolute
/// paths and dir-less specs pass through unchanged).
std::string resolve_scenario_path(const CampaignSpec& spec,
                                  const std::string& value);

/// Stable 64-bit fingerprint of the campaign identity: name, trials, seed,
/// base config, overrides, axes, and the *contents* of every referenced
/// scenario file (so editing a .scn invalidates stale manifests) — the
/// manifest's guard against resuming trials of a different campaign.
std::uint64_t fingerprint(const CampaignSpec& spec);

}  // namespace laacad::campaign
