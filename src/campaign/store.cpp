#include "campaign/store.hpp"

#include <stdexcept>

namespace laacad::campaign {

ResultStore::ResultStore(std::string path, ManifestHeader header, bool resume)
    : path_(std::move(path)) {
  if (path_.empty()) return;  // journaling disabled

  const std::string expected_header = format_manifest_header(header);
  if (resume) {
    std::ifstream in(path_);
    std::string line;
    if (in && std::getline(in, line)) {
      // The exact header this store writes: replay the journal. Anything
      // else is torn, foreign, or garbage — disambiguated below.
      if (line == expected_header) {
        recovered_ = replay_manifest_rows(in, header.trials);
      } else {
        // A kill inside the open-truncate-write window leaves a *strict
        // prefix* of the header this store would itself write — possibly
        // one that still parses (the shard token cut clean off reads as a
        // valid unsharded header) — and, because that write is the
        // journal's very first, nothing after it. Recover nothing and let
        // the rewrite below restore a valid journal, so a crash-restart
        // with --resume (what campaign_fleet does) never aborts on it.
        // Content *after* a prefix line is the decisive signal that this
        // is a complete foreign journal (e.g. pointing a shard at the
        // full unsharded manifest, whose header is a prefix of the
        // sharded one) — refuse rather than destroy its rows.
        const bool strict_prefix =
            line.size() < expected_header.size() &&
            expected_header.compare(0, line.size(), line) == 0;
        std::string rest;
        const bool trailing_content =
            static_cast<bool>(std::getline(in, rest));
        if (!strict_prefix || trailing_content) {
          if (const auto found = parse_manifest_header(line))
            throw std::runtime_error(
                "manifest " + path_ +
                " does not match this campaign spec: expected " +
                describe_manifest_header(header) + ", found " +
                describe_manifest_header(*found) +
                " (different sweep, trial count, metric schema, or shard) "
                "— delete it or drop --resume");
          throw std::runtime_error(
              "manifest " + path_ +
              " is not a campaign manifest — refusing to overwrite it "
              "(check the --manifest path)");
        }
      }
      // The header pinned this journal to one shard; a row the shard does
      // not own cannot be a truncated tail (those stop the replay) — it is
      // corruption or a renamed file, and trusting it would smuggle another
      // shard's trials past the merge's overlap check.
      for (const auto& [trial, r] : recovered_) {
        if (!dist::owns(header.shard, trial))
          throw std::runtime_error(
              "manifest " + path_ + " records trial " +
              std::to_string(trial) + ", which shard " +
              dist::to_string(header.shard) +
              " does not own — file corrupted or mixed up between shards");
      }
    }
  }

  // Rewrite header + recovered rows: this compacts away any garbled tail
  // and leaves the journal append-ready.
  out_.open(path_, std::ios::trunc);
  if (!out_)
    throw std::runtime_error("cannot open campaign manifest: " + path_);
  out_ << expected_header << '\n';
  for (const auto& [trial, r] : recovered_)
    out_ << format_manifest_row(r) << '\n';
  out_.flush();
}

void ResultStore::record(const TrialResult& result) {
  if (path_.empty()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  out_ << format_manifest_row(result) << '\n';
  out_.flush();
}

}  // namespace laacad::campaign
