#include "campaign/store.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "common/json_writer.hpp"

namespace laacad::campaign {

namespace {

constexpr const char* kMagic = "laacad.campaign.manifest.v1";

std::string header_line(std::uint64_t fingerprint, int total_trials,
                        std::size_t metrics) {
  std::ostringstream ss;
  ss << kMagic << " fp=" << std::hex << fingerprint << std::dec
     << " trials=" << total_trials << " metrics=" << metrics;
  return ss.str();
}

/// Parse one journaled double; "null" is NaN (how number_to_string prints
/// it). Returns false on garbage — the caller drops the line.
bool parse_metric(const std::string& tok, double* out) {
  if (tok == "null") {
    *out = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  char* end = nullptr;
  *out = std::strtod(tok.c_str(), &end);
  return end != tok.c_str() && *end == '\0';
}

/// Reversible single-line encoding for error text: the journal is
/// line-oriented, but the error must round-trip *exactly* (the aggregate
/// JSON emits it, so resumed runs reproduce failing campaigns byte for
/// byte even if some future exception message carries a newline).
std::string escape_error(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else if (c == '\r') out += "\\r";
    else out += c;
  }
  return out;
}

std::string unescape_error(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    const char next = s[++i];
    out += next == 'n' ? '\n' : next == 'r' ? '\r' : next;
  }
  return out;
}

/// One journal row, always closed by the " ;" terminator: a kill mid-write
/// cannot truncate a row into a different *valid* row (a cut final metric
/// like "83.43827" still parses as a plausible double — only the missing
/// terminator gives it away). The error message, if any, trails the fixed
/// metric columns as length-prefixed escaped text ("E<len> <text>").
std::string format_row(const TrialResult& r) {
  std::ostringstream ss;
  ss << "trial " << r.trial << ' ' << (r.ok ? 1 : 0);
  for (const double m : r.metrics)
    ss << ' ' << JsonWriter::number_to_string(m);
  if (!r.error.empty()) {
    const std::string escaped = escape_error(r.error);
    ss << " E" << escaped.size() << ' ' << escaped;
  }
  ss << " ;";
  return ss.str();
}

}  // namespace

ResultStore::ResultStore(std::string path, std::uint64_t fingerprint,
                         int total_trials, bool resume)
    : path_(std::move(path)) {
  if (path_.empty()) return;  // journaling disabled
  const std::string header =
      header_line(fingerprint, total_trials, metric_names().size());

  if (resume) {
    std::ifstream in(path_);
    if (in) {
      std::string line;
      if (!std::getline(in, line) || line != header)
        throw std::runtime_error(
            "manifest " + path_ +
            " does not match this campaign spec (different sweep, trial "
            "count, or metric schema) — delete it or drop --resume");
      while (std::getline(in, line)) {
        std::istringstream ss(line);
        std::string tag;
        int trial = -1, ok = 0;
        if (!(ss >> tag >> trial >> ok) || tag != "trial" || trial < 0 ||
            trial >= total_trials)
          break;  // truncated/garbled tail: ignore from here on
        TrialResult r;
        r.trial = trial;
        r.ok = ok != 0;
        r.metrics.reserve(metric_names().size());
        std::string tok;
        bool good = true;
        for (std::size_t m = 0; m < metric_names().size(); ++m) {
          double v = 0.0;
          if (!(ss >> tok) || !parse_metric(tok, &v)) {
            good = false;
            break;
          }
          r.metrics.push_back(v);
        }
        if (!good) break;
        // The rest of the row must end with the " ;" terminator, with an
        // optional length-prefixed error before it. Either check failing
        // means the row was cut mid-write: drop it and everything after.
        std::string rest;
        std::getline(ss, rest);
        if (rest.size() < 2 || rest.compare(rest.size() - 2, 2, " ;") != 0)
          break;
        rest.resize(rest.size() - 2);
        if (!rest.empty()) {
          if (rest.size() < 4 || rest[0] != ' ' || rest[1] != 'E') break;
          const std::size_t sp = rest.find(' ', 2);
          if (sp == std::string::npos) break;
          char* end = nullptr;
          const long len = std::strtol(rest.c_str() + 2, &end, 10);
          if (end != rest.c_str() + sp || len <= 0) break;
          const std::string escaped = rest.substr(sp + 1);
          if (static_cast<long>(escaped.size()) != len) break;
          r.error = unescape_error(escaped);
        }
        // Keep the first completion of a trial; duplicates can only appear
        // if a resumed run re-recorded one, and both rows are identical by
        // determinism anyway.
        recovered_.emplace(trial, std::move(r));
      }
    }
  }

  // Rewrite header + recovered rows: this compacts away any garbled tail
  // and leaves the journal append-ready.
  out_.open(path_, std::ios::trunc);
  if (!out_)
    throw std::runtime_error("cannot open campaign manifest: " + path_);
  out_ << header << '\n';
  for (const auto& [trial, r] : recovered_) out_ << format_row(r) << '\n';
  out_.flush();
}

void ResultStore::record(const TrialResult& result) {
  if (path_.empty()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  out_ << format_row(result) << '\n';
  out_.flush();
}

}  // namespace laacad::campaign
