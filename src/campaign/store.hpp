// ResultStore — the campaign's streaming trial journal and resume manifest.
//
// Completed trials are appended to a line-oriented manifest the moment they
// finish (flushed per line, under a mutex), so killing a campaign mid-run
// loses at most the trials in flight. Re-running with resume replays the
// manifest: rows whose header matches the current spec (fingerprint, trial
// count, metric schema, shard coordinates) are trusted verbatim and their
// trials are never re-executed — and because per-trial seeds derive from
// trial identity, the final aggregates are byte-identical to an
// uninterrupted run. The line format lives in campaign/manifest.hpp; the
// shard partition scheme in dist/partition.hpp.
#pragma once

#include <map>
#include <mutex>
#include <fstream>
#include <string>

#include "campaign/manifest.hpp"
#include "campaign/trial.hpp"

namespace laacad::campaign {

class ResultStore {
 public:
  /// Opens the manifest at `path`. With `resume` an existing file is
  /// replayed into recovered() and then appended to; a parseable header
  /// that differs from `header` throws std::runtime_error reporting both
  /// the expected and the found fingerprint/trial/metric/shard values —
  /// resuming a different campaign (or the wrong shard) would silently mix
  /// experiments. A missing, empty, or torn header (a kill inside the
  /// open-truncate-write window) recovers nothing and is rewritten, like
  /// any truncated tail, so crash-restarts with resume always go through.
  /// A replayed row for a trial the header's shard does not own is
  /// corruption, not truncation, and throws. Without `resume` the file is
  /// truncated. An empty `path` disables journaling entirely (in-memory
  /// embedders like benches).
  ResultStore(std::string path, ManifestHeader header, bool resume);

  /// Trials recovered from an interrupted run, keyed by trial index.
  /// History is never journaled, so recovered rows have none.
  const std::map<int, TrialResult>& recovered() const { return recovered_; }

  /// Journal one completed trial: append + flush, thread-safe.
  void record(const TrialResult& result);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::mutex mutex_;
  std::map<int, TrialResult> recovered_;
};

}  // namespace laacad::campaign
