// ResultStore — the campaign's streaming trial journal and resume manifest.
//
// Completed trials are appended to a line-oriented manifest the moment they
// finish (flushed per line, under a mutex), so killing a campaign mid-run
// loses at most the trials in flight. Re-running with resume replays the
// manifest: rows whose fingerprint header matches the current spec are
// trusted verbatim and their trials are never re-executed — and because
// per-trial seeds derive from trial identity, the final aggregates are
// byte-identical to an uninterrupted run.
//
// Format (text, one record per line):
//   laacad.campaign.manifest.v1 fp=<hex fingerprint> trials=<N> metrics=<M>
//   trial <index> <ok:0|1> <m1> <m2> ... <mM> [E<len> <error text>] ;
// Doubles use JsonWriter::number_to_string (shortest exact round-trip;
// NaN prints as null); a failed trial's error message is journaled
// length-prefixed so it round-trips into the aggregate JSON; the " ;"
// terminator marks a row as completely written. A truncated or malformed
// tail — the signature of a kill mid-write — is ignored from the first
// bad line on.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <fstream>
#include <string>

#include "campaign/trial.hpp"

namespace laacad::campaign {

class ResultStore {
 public:
  /// Opens the manifest at `path`. With `resume` an existing file is
  /// replayed into recovered() and then appended to; its header must match
  /// (fingerprint, trial count, metric count) or this throws
  /// std::runtime_error — resuming a different campaign would silently mix
  /// experiments. Without `resume` the file is truncated. An empty `path`
  /// disables journaling entirely (in-memory embedders like benches).
  ResultStore(std::string path, std::uint64_t fingerprint, int total_trials,
              bool resume);

  /// Trials recovered from an interrupted run, keyed by trial index.
  /// History is never journaled, so recovered rows have none.
  const std::map<int, TrialResult>& recovered() const { return recovered_; }

  /// Journal one completed trial: append + flush, thread-safe.
  void record(const TrialResult& result);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::mutex mutex_;
  std::map<int, TrialResult> recovered_;
};

}  // namespace laacad::campaign
