#include "campaign/trial.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "scenario/runner.hpp"

namespace laacad::campaign {

const std::vector<std::string>& metric_names() {
  static const std::vector<std::string> kNames = {
      "total_rounds", "phases",       "events_fired", "converged",
      "coverage_ok",  "aborted",      "final_nodes",  "max_range",
      "min_range",    "fairness",     "max_load",     "total_load",
      "min_depth",    "mean_depth",   "fraction_k",   "components",
      "battery_min",  "battery_mean", "travel",
  };
  return kNames;
}

std::size_t metric_index(const std::string& name) {
  static const std::unordered_map<std::string, std::size_t> kIndex = [] {
    std::unordered_map<std::string, std::size_t> m;
    for (std::size_t i = 0; i < metric_names().size(); ++i)
      m.emplace(metric_names()[i], i);
    return m;
  }();
  const auto it = kIndex.find(name);
  if (it == kIndex.end())
    throw std::out_of_range("unknown campaign metric '" + name + "'");
  return it->second;
}

scenario::ScenarioSpec resolve_trial_spec(const CampaignSpec& spec,
                                          const TrialPoint& point) {
  // The scenario file may be fixed or swept; swept values win.
  std::string scn = spec.scenario_file;
  for (const auto& [key, value] : point.values)
    if (key == "scenario") scn = value;

  scenario::ScenarioSpec out;
  if (!scn.empty()) {
    out = scenario::load_scenario_file(resolve_scenario_path(spec, scn));
    for (const auto& [key, value] : spec.base_overrides)
      scenario::set_key(out, key, value, 0);
  } else {
    out = spec.base;
  }
  for (const auto& [key, value] : point.values) {
    if (key == "scenario") continue;
    scenario::set_key(out, key, value, 0);
  }
  out.seed = point.seed;
  // Serial by construction: the engine's nested-parallelism guard forbids a
  // pool inside a campaign worker chunk, and trial-level parallelism is
  // what the scheduler provides anyway.
  out.num_threads = 1;
  return out;
}

TrialResult run_trial(const CampaignSpec& spec, const TrialPoint& point,
                      bool keep_history, const TrialProbe& probe,
                      int trial_threads) {
  TrialResult r;
  r.trial = point.trial;
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  r.metrics.assign(metric_names().size(), kNaN);
  auto set = [&r](const char* name, double v) {
    r.metrics[metric_index(name)] = v;
  };

  scenario::ScenarioResult result;
  try {
    scenario::ScenarioSpec resolved = resolve_trial_spec(spec, point);
    // Execution details layered on after resolution: neither is a physical
    // key, and neither changes a single output bit (engine determinism /
    // streaming-vs-retained history).
    resolved.num_threads = trial_threads;
    resolved.history = keep_history;
    scenario::ScenarioRunner runner(std::move(resolved));
    result = runner.run();
    if (probe && !result.aborted) probe(point, runner, result);
  } catch (const std::exception& e) {
    r.error = e.what();
    set("aborted", 1.0);
    set("converged", 0.0);
    set("coverage_ok", 0.0);
    return r;
  }

  set("total_rounds", result.total_rounds);
  set("phases", static_cast<double>(result.phases.size()));
  set("events_fired", static_cast<double>(result.events.size()));
  set("converged", result.all_converged ? 1.0 : 0.0);
  set("coverage_ok", result.final_coverage_ok ? 1.0 : 0.0);
  set("aborted", result.aborted ? 1.0 : 0.0);

  double travel = 0.0;
  for (const scenario::PhaseRecord& p : result.phases) {
    travel += p.series.travel;
    if (keep_history)
      r.history.insert(r.history.end(), p.history.begin(), p.history.end());
  }
  set("travel", travel);

  if (!result.phases.empty()) {
    const scenario::PhaseRecord& last = result.phases.back();
    set("final_nodes", last.nodes);
    set("max_range", last.final_max_range);
    set("min_range", last.final_min_range);
    set("fairness", last.load.fairness);
    set("max_load", last.load.max_load);
    set("total_load", last.load.total_load);
    set("min_depth", last.coverage_min_depth);
    set("mean_depth", last.coverage_mean_depth);
    set("fraction_k", last.covered_fraction_k);
    set("components", last.components);
    set("battery_min", last.battery_min);
    set("battery_mean", last.battery_mean);
  }

  r.ok = !result.aborted && result.final_coverage_ok;
  return r;
}

}  // namespace laacad::campaign
