// One campaign trial: a fully resolved scenario run plus its scalar metric
// row. The metric schema is a fixed, ordered name list shared by the
// manifest journal, the trial CSV, and the aggregate JSON, so every
// serialization of a trial is column-compatible with every other.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "campaign/spec.hpp"
#include "laacad/engine.hpp"

namespace laacad::scenario {
class ScenarioRunner;
struct ScenarioResult;
}  // namespace laacad::scenario

namespace laacad::campaign {

/// Observation hook run_trial invokes on a successful trial with the
/// still-live runner and the full scenario record (see
/// CampaignOptions::probe for the threading contract).
using TrialProbe = std::function<void(
    const TrialPoint&, const scenario::ScenarioRunner&,
    const scenario::ScenarioResult&)>;

/// Ordered scalar metric names (bools encoded 0/1, counts as doubles).
/// Index into TrialResult::metrics.
const std::vector<std::string>& metric_names();

/// Position of `name` in metric_names(); throws std::out_of_range for an
/// unknown name (a typo in an aggregation request is a bug, not a zero).
std::size_t metric_index(const std::string& name);

struct TrialResult {
  int trial = -1;   ///< TrialPoint::trial this row belongs to
  bool ok = false;  ///< completed, not aborted, final k-coverage verified
  /// Scalar row parallel to metric_names(). A trial that threw (bad spec
  /// combination, scenario file error) records NaN everywhere except
  /// `aborted` = 1 — JsonWriter maps NaN to null, so the row degrades
  /// cleanly instead of poisoning aggregates with fake zeros.
  std::vector<double> metrics;
  std::string error;  ///< what() when the trial threw, empty otherwise
  /// Per-round engine metrics concatenated over phases. Populated only when
  /// CampaignOptions::keep_history is set (in-memory consumers like the
  /// fig6 bench); never journaled or serialized.
  std::vector<core::RoundMetrics> history;
};

/// Build the fully resolved scenario spec for one trial: load the scenario
/// file if any (resolved against spec.dir), apply the campaign's fixed
/// overrides, then the point's swept values, then the derived seed.
/// Trials default to a serial engine (num_threads = 1) — campaign
/// parallelism is normally across trials, which is what keeps results
/// independent of worker count. CampaignOptions::trial_threads threads the
/// engine *inside* each trial instead (scale-ladder rungs too big to win
/// from trial-level fan-out); it requires workers == 1 and changes no
/// output bits either way.
scenario::ScenarioSpec resolve_trial_spec(const CampaignSpec& spec,
                                          const TrialPoint& point);

/// Execute one trial. Never throws: a failing trial (invalid resolved spec,
/// unreadable scenario file, runtime abort) returns the NaN row described
/// above with `error` set. A non-null `probe` is invoked on success, while
/// the runner is still alive; a probe that throws fails the trial.
/// `trial_threads` is the engine thread count for this trial (1 = serial,
/// 0 = hardware); see CampaignOptions::trial_threads for when that is safe.
TrialResult run_trial(const CampaignSpec& spec, const TrialPoint& point,
                      bool keep_history = false,
                      const TrialProbe& probe = nullptr,
                      int trial_threads = 1);

}  // namespace laacad::campaign
