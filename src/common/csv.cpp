#include "common/csv.hpp"

namespace laacad {

namespace {
void write_row(std::ofstream& out, const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out << ',';
    out << CsvWriter::escape(cells[i]);
  }
  out << '\n';
}
}  // namespace

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  if (out_) write_row(out_, header);
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  if (!out_) return;
  auto cells = row;
  cells.resize(columns_);
  write_row(out_, cells);
}

}  // namespace laacad
