// Tiny CSV writer for persisting experiment series (convergence traces,
// sweeps) so figures can be re-plotted outside the binaries.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace laacad {

/// Writes rows of values to a CSV file. Values are stringified by the caller
/// (use TextTable::num for doubles) so no locale surprises creep in.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. `ok()` reports
  /// whether the stream is healthy.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void add_row(const std::vector<std::string>& row);
  bool ok() const { return static_cast<bool>(out_); }

  /// RFC-4180 field escaping: fields containing a comma, quote, CR, or LF
  /// are wrapped in quotes with embedded quotes doubled; all other fields
  /// pass through unchanged. Applied to every header/row cell on write.
  static std::string escape(const std::string& field);

 private:
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace laacad
