#include "common/flatjson.hpp"

#include <cmath>
#include <cstdlib>

namespace laacad::flatjson {

std::size_t value_offset(std::string_view line, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  bool in_string = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') {
      if (line.compare(i, needle.size(), needle) == 0) {
        // Skip the ": " an indented JsonWriter document puts after keys,
        // so flattened multi-line documents scan like compact ones.
        std::size_t at = i + needle.size();
        while (at < line.size() && line[at] == ' ') ++at;
        return at;
      }
      in_string = true;
    }
  }
  return std::string_view::npos;
}

bool get_string(std::string_view line, std::string_view key,
                std::string* out) {
  const std::size_t at = value_offset(line, key);
  if (at == std::string_view::npos || at >= line.size() || line[at] != '"')
    return false;
  std::string s;
  for (std::size_t i = at + 1; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '"') {
      *out = std::move(s);
      return true;
    }
    if (c == '\\' && i + 1 < line.size()) {
      const char e = line[++i];
      switch (e) {
        case 'n': s += '\n'; break;
        case 't': s += '\t'; break;
        case 'r': s += '\r'; break;
        default: s += e; break;  // \" \\ \/ and anything exotic: literal
      }
    } else {
      s += c;
    }
  }
  return false;  // unterminated string
}

bool get_number(std::string_view line, std::string_view key, double* out) {
  const std::size_t at = value_offset(line, key);
  if (at == std::string_view::npos || at >= line.size()) return false;
  if (line.compare(at, 4, "null") == 0) {
    *out = std::nan("");
    return true;
  }
  // strtod needs a terminated buffer; numbers are short.
  char buf[64];
  std::size_t n = 0;
  for (std::size_t i = at; i < line.size() && n + 1 < sizeof(buf); ++i) {
    const char c = line[i];
    if ((c < '0' || c > '9') && c != '-' && c != '+' && c != '.' &&
        c != 'e' && c != 'E')
      break;
    buf[n++] = c;
  }
  if (n == 0) return false;
  buf[n] = '\0';
  char* end = nullptr;
  *out = std::strtod(buf, &end);
  return end == buf + n;
}

bool get_raw(std::string_view line, std::string_view key, std::string* out) {
  const std::size_t at = value_offset(line, key);
  if (at == std::string_view::npos || at >= line.size()) return false;
  const char first = line[at];
  if (first == '"') {
    // String: scan to the closing quote, honoring escapes.
    for (std::size_t i = at + 1; i < line.size(); ++i) {
      if (line[i] == '\\') {
        ++i;
      } else if (line[i] == '"') {
        *out = std::string(line.substr(at, i + 1 - at));
        return true;
      }
    }
    return false;  // unterminated
  }
  if (first == '{' || first == '[') {
    // Balanced nesting; quotes suspend brace counting so escaped quotes
    // and structural characters inside string values are inert.
    int depth = 0;
    bool in_string = false;
    for (std::size_t i = at; i < line.size(); ++i) {
      const char c = line[i];
      if (in_string) {
        if (c == '\\') ++i;
        else if (c == '"') in_string = false;
        continue;
      }
      if (c == '"') in_string = true;
      else if (c == '{' || c == '[') ++depth;
      else if (c == '}' || c == ']') {
        --depth;
        if (depth == 0) {
          *out = std::string(line.substr(at, i + 1 - at));
          return true;
        }
      }
    }
    return false;  // unbalanced
  }
  // Scalar (number / true / false / null): up to the enclosing , } or ].
  std::size_t end = at;
  while (end < line.size() && line[end] != ',' && line[end] != '}' &&
         line[end] != ']')
    ++end;
  if (end == at) return false;
  *out = std::string(line.substr(at, end - at));
  return true;
}

bool get_bool(std::string_view line, std::string_view key, bool* out) {
  const std::size_t at = value_offset(line, key);
  if (at == std::string_view::npos) return false;
  if (line.compare(at, 4, "true") == 0) {
    *out = true;
    return true;
  }
  if (line.compare(at, 5, "false") == 0) {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace laacad::flatjson
