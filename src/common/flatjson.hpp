// Minimal field scanner for *flat* single-line JSON objects — the shapes
// this codebase emits itself (obs heartbeats, serve protocol messages):
// one top-level object, string/number/bool values, no nesting relied upon.
// Not a general JSON parser; `get_*` locates `"key":` at top level (escaped
// quotes inside string bodies are skipped, so key matches never land inside
// a value) and parses the value that follows. Shared by obs/heartbeat and
// serve/protocol so both ends of every line format agree on one scanner.
#pragma once

#include <string>
#include <string_view>

namespace laacad::flatjson {

/// Offset of the value of top-level `"key":`, or npos when absent.
std::size_t value_offset(std::string_view line, std::string_view key);

/// Read a string value; handles \n \t \r and pass-through escapes.
bool get_string(std::string_view line, std::string_view key, std::string* out);

/// Read a number value; JSON null parses as NaN (the JsonWriter convention).
bool get_number(std::string_view line, std::string_view key, double* out);

/// Read a bool value (true/false literals).
bool get_bool(std::string_view line, std::string_view key, bool* out);

/// Extract the raw JSON text of a top-level value — scalars as written,
/// strings including their quotes (escapes untouched), and nested
/// objects/arrays as the full balanced {...}/[...] slice (brace matching
/// skips string bodies, so escaped quotes and braces inside values cannot
/// terminate the scan early). This is how a caller lifts a nested subtree
/// (a histogram, a stats breakdown) out of a response line for re-embedding
/// or further scanning. Returns false when the key is absent or the value
/// is unterminated.
bool get_raw(std::string_view line, std::string_view key, std::string* out);

}  // namespace laacad::flatjson
