// Minimal field scanner for *flat* single-line JSON objects — the shapes
// this codebase emits itself (obs heartbeats, serve protocol messages):
// one top-level object, string/number/bool values, no nesting relied upon.
// Not a general JSON parser; `get_*` locates `"key":` at top level (escaped
// quotes inside string bodies are skipped, so key matches never land inside
// a value) and parses the value that follows. Shared by obs/heartbeat and
// serve/protocol so both ends of every line format agree on one scanner.
#pragma once

#include <string>
#include <string_view>

namespace laacad::flatjson {

/// Offset of the value of top-level `"key":`, or npos when absent.
std::size_t value_offset(std::string_view line, std::string_view key);

/// Read a string value; handles \n \t \r and pass-through escapes.
bool get_string(std::string_view line, std::string_view key, std::string* out);

/// Read a number value; JSON null parses as NaN (the JsonWriter convention).
bool get_number(std::string_view line, std::string_view key, double* out);

/// Read a bool value (true/false literals).
bool get_bool(std::string_view line, std::string_view key, bool* out);

}  // namespace laacad::flatjson
