#include "common/json_writer.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace laacad {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonWriter::number_to_string(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  // Integral values print as integers (300, not 3e+02) — exact and readable.
  if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  // Shortest precision that round-trips: deterministic across platforms
  // using the same IEEE doubles, and far more readable than blanket %.17g.
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

JsonWriter::JsonWriter(std::ostream& out, int indent)
    : out_(out), indent_(indent) {}

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  out_ << '\n';
  for (std::size_t i = 0; i < stack_.size() * static_cast<std::size_t>(indent_);
       ++i)
    out_ << ' ';
}

void JsonWriter::before_value() {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (!stack_.empty() && stack_.back() == Scope::kObject && !key_pending_)
    throw std::logic_error("JsonWriter: value inside object requires key()");
  if (key_pending_) {
    key_pending_ = false;
    return;  // key() already wrote the separator and "key":
  }
  if (!stack_.empty()) {
    if (!first_in_scope_) out_ << ',';
    newline_indent();
  }
  first_in_scope_ = false;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (stack_.empty() || stack_.back() != Scope::kObject)
    throw std::logic_error("JsonWriter: key() outside object");
  if (key_pending_) throw std::logic_error("JsonWriter: key already pending");
  if (!first_in_scope_) out_ << ',';
  newline_indent();
  first_in_scope_ = false;
  out_ << '"' << json_escape(k) << "\":";
  if (indent_ > 0) out_ << ' ';
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  stack_.push_back(Scope::kObject);
  first_in_scope_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Scope::kObject || key_pending_)
    throw std::logic_error("JsonWriter: mismatched end_object()");
  const bool was_empty = first_in_scope_;
  stack_.pop_back();
  if (!was_empty) newline_indent();
  out_ << '}';
  first_in_scope_ = false;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  stack_.push_back(Scope::kArray);
  first_in_scope_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Scope::kArray)
    throw std::logic_error("JsonWriter: mismatched end_array()");
  const bool was_empty = first_in_scope_;
  stack_.pop_back();
  if (!was_empty) newline_indent();
  out_ << ']';
  first_in_scope_ = false;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ << '"' << json_escape(v) << '"';
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string_view(v));
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  out_ << number_to_string(v);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ << v;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ << v;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ << (v ? "true" : "false");
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::raw_value(std::string_view json) {
  before_value();
  out_ << json;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ << "null";
  if (stack_.empty()) done_ = true;
  return *this;
}

}  // namespace laacad
