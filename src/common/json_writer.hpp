// Minimal streaming JSON writer — no external dependency, no DOM. The
// scenario engine (and any bench that wants machine-readable output) emits
// BENCH_*.json metric files through this; the output is deterministic:
// numbers are printed with the shortest representation that round-trips
// exactly, so two runs that compute bit-identical doubles serialize to
// byte-identical files.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace laacad {

/// Emits one JSON document to an ostream. Structure is driven by the caller
/// (begin/end object/array, key, value); commas and indentation are managed
/// internally. Misuse (value without key inside an object, unbalanced ends)
/// trips an assertion-style std::logic_error rather than silently emitting
/// invalid JSON.
class JsonWriter {
 public:
  /// `indent` spaces per nesting level; 0 writes compact single-line JSON.
  explicit JsonWriter(std::ostream& out, int indent = 2);

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit an object key; the next begin_*/value call supplies its value.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v);  ///< disambiguates from bool overload
  JsonWriter& value(double v);       ///< NaN/Inf serialize as null
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Splice a pre-serialized JSON value verbatim (e.g. a sub-object lifted
  /// from another document with flatjson::get_raw). The caller vouches that
  /// `json` is one complete valid value; it is emitted as-is, so a compact
  /// fragment stays compact even inside an indented document.
  JsonWriter& raw_value(std::string_view json);

  /// Convenience: key + scalar value in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  /// Shortest decimal representation of `v` that parses back to exactly the
  /// same double ("1.5" rather than "1.5000000000000000"); NaN/Inf yield
  /// "null". Exposed for tests and for callers formatting outside a writer.
  static std::string number_to_string(double v);

 private:
  enum class Scope { kObject, kArray };

  void before_value();  ///< comma/newline/indent bookkeeping, key check
  void newline_indent();

  std::ostream& out_;
  int indent_;
  std::vector<Scope> stack_;
  bool first_in_scope_ = true;
  bool key_pending_ = false;
  bool done_ = false;
};

/// JSON string escaping (quotes not included): ", \, and control characters
/// become their escape sequences; everything else is passed through (UTF-8
/// bytes are valid JSON string bytes).
std::string json_escape(std::string_view s);

}  // namespace laacad
