// Thread-local event counters for the geometric hot path.
//
// The order-k kernel's cost model is "how many site-distance evaluations and
// ring allocations does one region computation spend" — wall-clock alone
// cannot distinguish a tighter candidate bound from a faster allocator, and
// the 2x-style kernel claims in BENCH artifacts need a deterministic metric
// that is identical across machines. Counters are plain thread-local
// integers (one add per event batch, no atomics, no locks), cheap enough to
// stay compiled in for Release builds; bench_micro_kernels resets them
// around timed sections and reports the totals as benchmark counters, and
// tests assert reduction ratios on fixed configurations.
//
// Threading: each thread owns an independent block, so the counts a kernel
// call produces land on the calling thread. Code that fans region
// computations across a pool must aggregate per worker if it wants totals;
// the benches and tests pin their measured kernels to one thread instead.
#pragma once

#include <cstdint>

namespace laacad::perf {

struct KernelCounters {
  std::uint64_t dist2_evals = 0;   ///< point-to-site distance evaluations
  std::uint64_t clip_calls = 0;    ///< half-plane clip passes over a ring
  std::uint64_t ring_allocs = 0;   ///< clips that allocated / grew a ring
  std::uint64_t grid_queries = 0;  ///< SpatialGrid within / k_nearest / collect
  std::uint64_t cells_built = 0;   ///< order-k cells constructed by the BFS
  std::uint64_t kernel_fallbacks = 0;  ///< grid kernel exhausted every site

  void reset() { *this = KernelCounters{}; }
};

/// The calling thread's counter block.
inline KernelCounters& counters() {
  thread_local KernelCounters tls;
  return tls;
}

}  // namespace laacad::perf
