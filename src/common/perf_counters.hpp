// Thread-local event counters for the geometric hot path.
//
// The order-k kernel's cost model is "how many site-distance evaluations and
// ring allocations does one region computation spend" — wall-clock alone
// cannot distinguish a tighter candidate bound from a faster allocator, and
// the 2x-style kernel claims in BENCH artifacts need a deterministic metric
// that is identical across machines. Counters are plain thread-local
// integers (one add per event batch, no atomics, no locks), cheap enough to
// stay compiled in for Release builds; bench_micro_kernels resets them
// around timed sections and reports the totals as benchmark counters, and
// tests assert reduction ratios on fixed configurations.
//
// Threading: each thread owns an independent block, so the counts a kernel
// call produces land on the calling thread. common::ThreadPool::run()
// closes the fan-out gap: it snapshots each worker chunk's block around the
// chunk and folds the deltas into the *calling* thread's block after the
// join (uint64 addition commutes, so the fold is deterministic for any
// chunk schedule). A caller that brackets a parallel_for with snapshots of
// its own block therefore reads exact global totals for any thread count —
// see obs::CounterScope for the snapshot-delta reader.
#pragma once

#include <cstdint>

namespace laacad::perf {

struct KernelCounters {
  std::uint64_t dist2_evals = 0;   ///< point-to-site distance evaluations
  std::uint64_t clip_calls = 0;    ///< half-plane clip passes over a ring
  std::uint64_t ring_allocs = 0;   ///< clips that allocated / grew a ring
  std::uint64_t grid_queries = 0;  ///< SpatialGrid within / k_nearest / collect
  std::uint64_t cells_built = 0;   ///< order-k cells constructed by the BFS
  std::uint64_t kernel_fallbacks = 0;  ///< grid kernel exhausted every site

  void reset() { *this = KernelCounters{}; }

  /// Fold another block (typically a worker chunk's delta) into this one.
  void add(const KernelCounters& o) {
    dist2_evals += o.dist2_evals;
    clip_calls += o.clip_calls;
    ring_allocs += o.ring_allocs;
    grid_queries += o.grid_queries;
    cells_built += o.cells_built;
    kernel_fallbacks += o.kernel_fallbacks;
  }

  /// Field-wise difference against an earlier snapshot of the same block.
  /// Counters are monotonic between resets, so this is the event count in
  /// the bracketed region.
  KernelCounters diff(const KernelCounters& before) const {
    KernelCounters d;
    d.dist2_evals = dist2_evals - before.dist2_evals;
    d.clip_calls = clip_calls - before.clip_calls;
    d.ring_allocs = ring_allocs - before.ring_allocs;
    d.grid_queries = grid_queries - before.grid_queries;
    d.cells_built = cells_built - before.cells_built;
    d.kernel_fallbacks = kernel_fallbacks - before.kernel_fallbacks;
    return d;
  }
};

/// The calling thread's counter block.
inline KernelCounters& counters() {
  thread_local KernelCounters tls;
  return tls;
}

}  // namespace laacad::perf
