#include "common/rng.hpp"

namespace laacad {

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

double Rng::uniform01() { return uniform(0.0, 1.0); }

int Rng::uniform_int(int lo, int hi) {
  std::uniform_int_distribution<int> d(lo, hi);
  return d(engine_);
}

double Rng::gaussian(double mean, double stddev) {
  std::normal_distribution<double> d(mean, stddev);
  return d(engine_);
}

bool Rng::coin(double p) {
  std::bernoulli_distribution d(p);
  return d(engine_);
}

namespace {

/// splitmix64 finalizer: full-avalanche 64-bit mix.
std::uint64_t splitmix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng Rng::fork() {
  // splitmix-style scramble of a fresh 64-bit draw keeps child streams
  // decorrelated from the parent and from each other.
  return Rng(splitmix64(engine_() + 0x9e3779b97f4a7c15ULL));
}

std::uint64_t Rng::derive(std::uint64_t seed, std::uint64_t stream) {
  // Advance the seed along the splitmix64 golden-gamma sequence by
  // (stream + 1) steps' worth of increment, then finalize. stream + 1 keeps
  // derive(s, 0) != s even for s = 0.
  return splitmix64(seed + (stream + 1) * 0x9e3779b97f4a7c15ULL);
}

}  // namespace laacad
