// Deterministic random number generation for reproducible simulations.
//
// Every experiment in this repository threads an explicit `Rng` through its
// call chain; there is no hidden global generator, so a (seed, parameters)
// pair fully determines a run.
#pragma once

#include <cstdint>
#include <random>

namespace laacad {

/// Seeded pseudo-random generator wrapping std::mt19937_64 with the handful
/// of draw shapes the simulations need.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x1234abcdULL) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform integer in [lo, hi] (inclusive).
  int uniform_int(int lo, int hi);

  /// Normal draw with the given mean and standard deviation.
  double gaussian(double mean, double stddev);

  /// Bernoulli draw with success probability p.
  bool coin(double p);

  /// Access to the underlying engine (e.g. for std::shuffle).
  std::mt19937_64& engine() { return engine_; }

  /// Derive an independent child generator; useful to give each node or each
  /// experiment repetition its own stream without correlation.
  Rng fork();

  /// Pure seed derivation (splitmix64): maps (seed, stream) to a new seed
  /// with full avalanche, so nearby streams (0, 1, 2, ...) yield
  /// decorrelated generators. Unlike fork() this consumes no generator
  /// state — the result depends only on the arguments, which is what lets
  /// sweeps hand every trial its own reproducible stream no matter which
  /// worker runs it or in what order.
  static std::uint64_t derive(std::uint64_t seed, std::uint64_t stream);

  /// Multi-level derivation: derive(seed, a, b) == derive(derive(seed, a),
  /// b). Argument order matters (stream a=1,b=2 differs from a=2,b=1).
  template <typename... Rest>
  static std::uint64_t derive(std::uint64_t seed, std::uint64_t stream,
                              std::uint64_t next, Rest... rest) {
    return derive(derive(seed, stream), next, rest...);
  }

 private:
  std::mt19937_64 engine_;
};

}  // namespace laacad
