#include "common/specparse.hpp"

#include <sstream>
#include <stdexcept>

namespace laacad::specparse {

void fail(int line, const std::string& what) {
  throw std::runtime_error("line " + std::to_string(line) + ": " + what);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream ss(line);
  std::string tok;
  while (ss >> tok) {
    if (tok[0] == '#') break;  // trailing comment
    out.push_back(tok);
  }
  return out;
}

double parse_double(const std::string& s, int line, const std::string& key) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    fail(line, "'" + key + "' expects a number, got '" + s + "'");
  }
}

int parse_int(const std::string& s, int line, const std::string& key) {
  try {
    std::size_t used = 0;
    const int v = std::stoi(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    fail(line, "'" + key + "' expects an integer, got '" + s + "'");
  }
}

std::uint64_t parse_uint64(const std::string& s, int line,
                           const std::string& key) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return static_cast<std::uint64_t>(v);
  } catch (const std::exception&) {
    fail(line,
         "'" + key + "' expects an unsigned integer, got '" + s + "'");
  }
}

bool parse_bool(const std::string& s, int line, const std::string& key) {
  if (s == "1" || s == "true" || s == "yes") return true;
  if (s == "0" || s == "false" || s == "no") return false;
  fail(line, "'" + key + "' expects a boolean, got '" + s + "'");
}

}  // namespace laacad::specparse
