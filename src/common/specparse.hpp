// Shared primitives for the line-oriented spec formats (scenarios/*.scn,
// campaigns/*.cmp): whitespace tokenization with '#' comments, and strict
// scalar parsing that reports "line N: ..." errors. Both parsers must stay
// behaviorally identical — one definition keeps them that way.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace laacad::specparse {

/// Throw std::runtime_error("line N: <what>").
[[noreturn]] void fail(int line, const std::string& what);

/// Whitespace-split `line`, dropping everything from the first token that
/// starts with '#' (trailing comment) onward.
std::vector<std::string> tokenize(const std::string& line);

/// Strict scalar parsers: the whole token must consume, or fail() with a
/// message naming `key`.
double parse_double(const std::string& s, int line, const std::string& key);
int parse_int(const std::string& s, int line, const std::string& key);
std::uint64_t parse_uint64(const std::string& s, int line,
                           const std::string& key);
bool parse_bool(const std::string& s, int line, const std::string& key);

}  // namespace laacad::specparse
