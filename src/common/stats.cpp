#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace laacad {

void Summary::add(double x) {
  ++n_;
  sum_ += x;
  // Welford's recurrence: m2_ accumulates sum((x - running mean)^2)
  // directly, so the variance never passes through the catastrophic
  // `E[x^2] - E[x]^2` cancellation — for a metric with mean ~1e9 and
  // stddev ~1 (energy totals), the naive formula loses every significant
  // digit while this one keeps them all.
  const double delta = x - wmean_;
  wmean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - wmean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Summary::variance() const {
  if (n_ < 2) return 0.0;
  const double v = m2_ / static_cast<double>(n_);
  return v > 0.0 ? v : 0.0;
}

double Summary::stddev() const { return std::sqrt(variance()); }

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  for (double x : xs) s.add(x);
  return s;
}

double mean(const std::vector<double>& xs) { return summarize(xs).mean(); }

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(xs.begin(), xs.end());
  if (p <= 0.0) return xs.front();
  if (p >= 100.0) return xs.back();
  const double pos = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

double ci95_half_width(const Summary& s) {
  if (s.count() == 0) return std::numeric_limits<double>::quiet_NaN();
  return 1.96 * s.stddev() / std::sqrt(static_cast<double>(s.count()));
}

double jain_fairness(const std::vector<double>& xs) {
  // Empty-input convention shared with mean()/percentile(): NaN (JSON
  // null), never a fabricated "perfectly fair" 1.0 for a group that has no
  // members at all.
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  double s = 0.0, ss = 0.0;
  for (double x : xs) {
    s += x;
    ss += x * x;
  }
  if (ss <= 0.0) return 1.0;
  return s * s / (static_cast<double>(xs.size()) * ss);
}

}  // namespace laacad
