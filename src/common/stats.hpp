// Small summary-statistics helpers shared by metrics, tests, and benches.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace laacad {

/// Streaming accumulator for min / max / mean / variance of a double series.
/// Empty-input convention (shared with the free functions below): mean of
/// nothing is NaN, never a fabricated 0 — JsonWriter serializes non-finite
/// values as null, so aggregates over empty groups degrade cleanly instead
/// of reporting a plausible-looking zero.
class Summary {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const {
    return n_ ? sum_ / static_cast<double>(n_)
              : std::numeric_limits<double>::quiet_NaN();
  }
  double sum() const { return sum_; }
  /// Population variance (0 for fewer than two samples), accumulated with
  /// Welford's algorithm — numerically stable for large-magnitude metrics
  /// (mean >> stddev), where the sumsq - mean^2 form cancels to noise.
  double variance() const;
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double wmean_ = 0.0;  ///< Welford running mean (variance accumulation only)
  double m2_ = 0.0;     ///< Welford sum of squared deviations
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Summarize a whole vector at once.
Summary summarize(const std::vector<double>& xs);

/// Arithmetic mean; NaN for an empty input (see Summary).
double mean(const std::vector<double>& xs);

/// p-th percentile (p in [0,100], clamped) by linear interpolation on a
/// sorted copy. NaN for an empty input; the sole element for a singleton.
double percentile(std::vector<double> xs, double p);

/// Half-width of the normal-approximation 95% confidence interval on the
/// mean: 1.96 * stddev / sqrt(n). NaN for an empty summary, 0 for n == 1
/// (a single sample has zero sample spread under the population estimator).
double ci95_half_width(const Summary& s);

/// Jain's fairness index: (Σx)² / (n·Σx²). Equals 1 when all entries are
/// equal; approaches 1/n under maximal imbalance. Used to quantify the
/// paper's "load balancing" claim. NaN for an empty input (the shared
/// empty-aggregate convention); 1 for an all-zero input (degenerate but
/// non-empty loads are "evenly" zero).
double jain_fairness(const std::vector<double>& xs);

}  // namespace laacad
