// Small summary-statistics helpers shared by metrics, tests, and benches.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace laacad {

/// Streaming accumulator for min / max / mean / variance of a double series.
class Summary {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double sum() const { return sum_; }
  /// Population variance (0 for fewer than two samples).
  double variance() const;
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double sumsq_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Summarize a whole vector at once.
Summary summarize(const std::vector<double>& xs);

/// p-th percentile (p in [0,100]) by linear interpolation on a sorted copy.
/// Returns 0 for an empty input.
double percentile(std::vector<double> xs, double p);

/// Jain's fairness index: (Σx)² / (n·Σx²). Equals 1 when all entries are
/// equal; approaches 1/n under maximal imbalance. Used to quantify the
/// paper's "load balancing" claim.
double jain_fairness(const std::vector<double>& xs);

}  // namespace laacad
