#include "common/sysinfo.hpp"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace laacad::common {

std::uint64_t peak_rss_bytes() {
#if defined(__linux__)
  // VmHWM ("high water mark") is the kernel's own peak-RSS accounting and
  // survives memory being returned to the allocator, unlike sampling
  // VmRSS. Format: "VmHWM:    123456 kB".
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    std::uint64_t kb = 0;
    bool found = false;
    while (std::fgets(line, sizeof line, f)) {
      if (std::strncmp(line, "VmHWM:", 6) == 0) {
        found = std::sscanf(line + 6, "%llu",
                            reinterpret_cast<unsigned long long*>(&kb)) == 1;
        break;
      }
    }
    std::fclose(f);
    if (found) return kb * 1024;
  }
#endif
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0 && ru.ru_maxrss > 0) {
    // ru_maxrss is kilobytes on Linux/BSD, bytes on macOS.
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(ru.ru_maxrss);
#else
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
#endif
  }
#endif
  return 0;
}

}  // namespace laacad::common
