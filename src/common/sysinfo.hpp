// Process-level resource introspection for benches and the scale ladder.
#pragma once

#include <cstdint>

namespace laacad::common {

/// Peak resident set size of this process, in bytes, or 0 when it cannot be
/// determined. Linux reads VmHWM from /proc/self/status (kB granularity);
/// elsewhere it falls back to getrusage(RUSAGE_SELF).ru_maxrss. The value is
/// a high-water mark over the whole process lifetime — per-rung deltas are
/// meaningful only when rungs run in ascending footprint order (the scale
/// ladder does) or in separate processes.
std::uint64_t peak_rss_bytes();

}  // namespace laacad::common
