#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace laacad {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::integer(long long v) { return std::to_string(v); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::vector<std::string> rule;
  rule.reserve(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    rule.push_back(std::string(width[c], '-'));
  emit(rule);
  for (const auto& row : rows_) emit(row);
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace laacad
