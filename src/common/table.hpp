// Fixed-width text tables: the bench binaries print the paper's tables and
// figure series with this helper so every experiment's output looks uniform.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace laacad {

/// Accumulates rows of strings and prints them as an aligned text table with
/// a header rule, e.g.
///
///   N      R* (m)   N*_{k=2}
///   -----  -------  --------
///   1000   30.41    833
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one row; it may have fewer cells than the header (padded empty).
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with the given precision.
  static std::string num(double v, int precision = 3);
  static std::string integer(long long v);

  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace laacad
