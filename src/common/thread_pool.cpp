#include "common/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/trace.hpp"

namespace laacad::common {

namespace {
// Set while the current thread is executing a chunk; run() refuses to nest.
thread_local bool tls_in_chunk = false;
}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 0)
    throw std::invalid_argument("ThreadPool: negative thread count");
  if (num_threads == 0) {
    num_threads =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  }
  workers_.reserve(static_cast<std::size_t>(num_threads - 1));
  for (int w = 1; w < num_threads; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stopping_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::run_chunk(int chunk) {
  // Chunk c covers [c*n/chunks, (c+1)*n/chunks) — a static partition that
  // depends only on (n, chunks), never on timing.
  const long long n = job_n_, chunks = job_chunks_;
  const int begin = static_cast<int>(chunk * n / chunks);
  const int end = static_cast<int>((chunk + 1) * n / chunks);
  // Bracket the chunk with a counter snapshot so run() can fold worker
  // deltas into the caller's block — the delta is computed even when the
  // chunk throws (events before the throw really happened).
  const perf::KernelCounters before = perf::counters();
  obs::ScopedSpan span("pool_chunk", chunk);
  tls_in_chunk = true;
  try {
    for (int i = begin; i < end; ++i) (*job_fn_)(i);
  } catch (...) {
    std::lock_guard<std::mutex> lk(mutex_);
    errors_[static_cast<std::size_t>(chunk)] = std::current_exception();
  }
  tls_in_chunk = false;
  counter_deltas_[static_cast<std::size_t>(chunk)] =
      perf::counters().diff(before);
}

void ThreadPool::worker_loop(int worker_index) {
  std::uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lk(mutex_);
      cv_start_.wait(lk, [&] { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation_;
    }
    // Worker w owns chunk w (the caller owns chunk 0); with fewer chunks
    // than threads the surplus workers sit this job out but still report in.
    if (worker_index < job_chunks_) run_chunk(worker_index);
    {
      std::lock_guard<std::mutex> lk(mutex_);
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::run(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (tls_in_chunk)
    throw std::logic_error("ThreadPool::run: nested use from inside a chunk");
  std::lock_guard<std::mutex> serial(run_mutex_);

  const int chunks = std::min(size(), n);
  {
    std::lock_guard<std::mutex> lk(mutex_);
    job_n_ = n;
    job_chunks_ = chunks;
    job_fn_ = &fn;
    errors_.assign(static_cast<std::size_t>(chunks), nullptr);
    counter_deltas_.assign(static_cast<std::size_t>(chunks),
                           perf::KernelCounters{});
    pending_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  cv_start_.notify_all();

  run_chunk(0);

  {
    std::unique_lock<std::mutex> lk(mutex_);
    cv_done_.wait(lk, [&] { return pending_ == 0; });
    job_fn_ = nullptr;
  }
  // Fold the worker chunks' counter deltas into this (the calling) thread's
  // block. Chunk 0 ran here and already accrued in place. The fold order is
  // fixed but irrelevant: uint64 sums commute, so totals are bit-equal to a
  // serial run for every thread count.
  for (std::size_t c = 1; c < counter_deltas_.size(); ++c)
    perf::counters().add(counter_deltas_[c]);
  for (std::exception_ptr& e : errors_) {
    if (e) std::rethrow_exception(e);
  }
}

void parallel_for(ThreadPool* pool, int n,
                  const std::function<void(int)>& fn) {
  // The serial path runs even inside another pool's chunk: a plain loop
  // cannot deadlock or reorder anything, and outer-parallel/inner-serial is
  // exactly how trial-level parallelism (campaign workers running serial
  // engines) composes. Only a *pool* inside a chunk is rejected, by
  // ThreadPool::run itself.
  if (pool == nullptr || pool->size() <= 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  pool->run(n, fn);
}

}  // namespace laacad::common
