// Deterministic fixed-size thread pool for the per-round fan-out.
//
// LAACAD's rounds are bulk-synchronous: N independent per-node computations
// followed by a serial reduction. The pool therefore offers exactly one
// primitive — run(n, fn) — which partitions [0, n) into one contiguous chunk
// per thread and blocks until every index has been processed. There is no
// work stealing and no shared queue: the chunk assignment is a pure function
// of (n, thread count), so scheduling can never reorder side effects within
// a chunk, and callers that write results by index get identical memory
// contents for every thread count (including 1).
//
// Observability: run() captures the perf::KernelCounters delta of every
// worker chunk and folds the deltas into the *calling* thread's counter
// block after the join. uint64 addition commutes, so the fold is
// deterministic for any chunk schedule — a caller that snapshots its own
// block around run() reads exact global event totals for any thread count,
// identical to a serial run. Each chunk also emits a "pool_chunk" trace
// span on its executing thread when the obs tracer is enabled.
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/perf_counters.hpp"

namespace laacad::common {

class ThreadPool {
 public:
  /// `num_threads` counts the calling thread: the pool spawns
  /// num_threads - 1 workers and the caller executes the first chunk of
  /// every run() itself. 0 means std::thread::hardware_concurrency().
  /// Negative thread counts are rejected.
  explicit ThreadPool(int num_threads = 0);

  /// Joins all workers. Must not be called while a run() is in flight on
  /// another thread.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads participating in run(), caller included (>= 1).
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Invoke fn(i) for every i in [0, n), partitioned into size() contiguous
  /// chunks. Blocks until all chunks finish. If any invocation throws, the
  /// exception from the lowest-indexed failing chunk is rethrown here after
  /// all chunks have completed (deterministic choice). Calling run() from
  /// inside a chunk — nested parallelism — throws std::logic_error without
  /// executing anything.
  void run(int n, const std::function<void(int)>& fn);

 private:
  void worker_loop(int worker_index);
  void run_chunk(int chunk);

  std::vector<std::thread> workers_;

  // One job at a time; guarded by mutex_/cv_. `generation_` bumps per job so
  // sleeping workers can tell a fresh job from a spurious wake.
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::mutex run_mutex_;  ///< serializes concurrent run() callers
  std::uint64_t generation_ = 0;
  bool stopping_ = false;
  int job_n_ = 0;
  int job_chunks_ = 0;
  int pending_ = 0;
  const std::function<void(int)>* job_fn_ = nullptr;
  std::vector<std::exception_ptr> errors_;
  /// Per-chunk KernelCounters deltas; chunks >= 1 (the worker chunks) are
  /// folded into the caller's thread-local block after the join. Chunk 0
  /// runs on the caller, whose block accrues it directly.
  std::vector<perf::KernelCounters> counter_deltas_;
};

/// Convenience: fn(i) for i in [0, n) on `pool`, or serially on the calling
/// thread when pool is null or single-threaded. This is the call sites'
/// entry point, so "no pool" and "pool of one" behave identically.
void parallel_for(ThreadPool* pool, int n, const std::function<void(int)>& fn);

}  // namespace laacad::common
