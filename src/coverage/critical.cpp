#include "coverage/critical.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "coverage/grid_checker.hpp"
#include "wsn/spatial_grid.hpp"

namespace laacad::cov {

using geom::Circle;
using geom::Ring;
using geom::Vec2;

namespace {

// All boundary segments of the domain (outer ring + holes).
std::vector<std::pair<Vec2, Vec2>> domain_edges(const wsn::Domain& domain) {
  std::vector<std::pair<Vec2, Vec2>> out;
  auto add_ring = [&](const Ring& r) {
    for (std::size_t i = 0; i < r.size(); ++i)
      out.emplace_back(r[i], r[(i + 1) % r.size()]);
  };
  add_ring(domain.outer());
  for (const Ring& h : domain.holes()) add_ring(h);
  return out;
}

}  // namespace

ExactReport critical_point_coverage(const wsn::Domain& domain,
                                    const std::vector<Circle>& disks,
                                    double probe_offset) {
  ExactReport rep;
  const geom::BBox bb = domain.bbox();
  const double scale = std::max(bb.width(), bb.height());
  const double delta = probe_offset > 0.0 ? probe_offset : 1e-7 * (1 + scale);

  // Depth evaluation accelerated by a grid over disk centers.
  double rmax = 0.0;
  std::vector<Vec2> centers;
  centers.reserve(disks.size());
  for (const Circle& c : disks) {
    rmax = std::max(rmax, c.radius);
    centers.push_back(c.center);
  }
  const wsn::SpatialGrid grid(centers, std::max(rmax, 1.0));
  auto depth = [&](Vec2 p) {
    int d = 0;
    for (int idx : grid.within(p, rmax + 1e-9))
      if (disks[static_cast<std::size_t>(idx)].contains(p)) ++d;
    return d;
  };

  rep.min_depth = std::numeric_limits<int>::max();
  auto consider = [&](Vec2 candidate) {
    ++rep.candidates;
    // Probe the faces adjacent to the candidate: slight offsets in eight
    // directions (plus the point itself for interior candidates).
    for (int dir = -1; dir < 8; ++dir) {
      Vec2 p = candidate;
      if (dir >= 0) {
        const double a = dir * M_PI / 4.0;
        p += Vec2{std::cos(a), std::sin(a)} * delta;
      }
      if (!domain.contains(p, 0.0)) continue;
      const int d = depth(p);
      if (d < rep.min_depth) {
        rep.min_depth = d;
        rep.witness = p;
      }
    }
  };

  const auto edges = domain_edges(domain);

  // 1. Domain vertices.
  for (const auto& [a, b] : edges) consider(a);

  // 2. Circle-circle intersections. Only pairs close enough to touch.
  for (std::size_t i = 0; i < disks.size(); ++i) {
    for (int j : grid.within(disks[i].center, disks[i].radius + rmax + 1e-9)) {
      if (static_cast<std::size_t>(j) <= i) continue;
      for (Vec2 p : geom::circle_circle_intersections(
               disks[i], disks[static_cast<std::size_t>(j)]))
        consider(p);
    }
  }

  // 3. Circle-domain-edge intersections, plus a few samples per circle so
  //    isolated circles (no intersections at all) still contribute their
  //    inside/outside faces.
  for (const Circle& c : disks) {
    if (c.radius <= 0.0) continue;
    for (const auto& [a, b] : edges)
      for (Vec2 p : geom::circle_segment_intersections(c, a, b)) consider(p);
    for (int s = 0; s < 8; ++s) {
      const double ang = s * M_PI / 4.0;
      consider(c.center + Vec2{std::cos(ang), std::sin(ang)} * c.radius);
    }
    consider(c.center);
  }

  if (rep.min_depth == std::numeric_limits<int>::max()) {
    // No probe landed inside the domain (e.g. no disks and a domain whose
    // vertices' probes all fell outside — degenerate). Fall back to any
    // domain point.
    rep.min_depth = disks.empty() ? 0 : depth(bb.center());
    rep.witness = bb.center();
  }
  return rep;
}

bool is_k_covered(const wsn::Domain& domain, const std::vector<Circle>& disks,
                  int k) {
  return critical_point_coverage(domain, disks).min_depth >= k;
}

}  // namespace laacad::cov
