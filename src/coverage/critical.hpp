// Exact(-up-to-epsilon) k-coverage verification via critical points.
//
// The coverage-depth function over the target area is piecewise constant on
// the arrangement of sensing circles and domain edges; its minimum is
// attained on a face whose boundary passes through a *critical point*:
// a circle–circle intersection, a circle–domain-edge intersection, a domain
// vertex, or (for circles intersecting nothing) any point of that circle.
// Evaluating the depth at small probes around every critical point therefore
// recovers the exact minimum depth — this is the classic Huang–Tseng
// perimeter argument in point form.
//
// The grid checker (grid_checker.hpp) serves as an independent
// cross-validation; tests assert the two agree.
#pragma once

#include <vector>

#include "geometry/circle.hpp"
#include "wsn/domain.hpp"

namespace laacad::cov {

struct ExactReport {
  int min_depth = 0;
  geom::Vec2 witness;   ///< probe point achieving the minimum
  std::size_t candidates = 0;  ///< critical points examined
};

/// Exact minimum coverage depth of `domain` under closed `disks`.
/// `probe_offset` is the face-probing distance (defaults to a scale-aware
/// value when <= 0).
ExactReport critical_point_coverage(const wsn::Domain& domain,
                                    const std::vector<geom::Circle>& disks,
                                    double probe_offset = -1.0);

/// True iff the domain is k-covered according to the critical-point check.
bool is_k_covered(const wsn::Domain& domain,
                  const std::vector<geom::Circle>& disks, int k);

}  // namespace laacad::cov
