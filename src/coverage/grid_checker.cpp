#include "coverage/grid_checker.hpp"

#include <algorithm>

#include "wsn/spatial_grid.hpp"

namespace laacad::cov {

using geom::Circle;
using geom::Vec2;

double GridReport::fraction_at_least(int k) const {
  if (k <= 0) return 1.0;
  if (static_cast<std::size_t>(k) > covered_fraction.size()) return 0.0;
  return covered_fraction[static_cast<std::size_t>(k) - 1];
}

std::vector<Circle> sensing_disks(const wsn::Network& net) {
  std::vector<Circle> out;
  out.reserve(static_cast<std::size_t>(net.size()));
  for (const wsn::Node& n : net.nodes())
    out.push_back({n.pos, n.sensing_range});
  return out;
}

int depth_at(const std::vector<Circle>& disks, Vec2 p) {
  int d = 0;
  for (const Circle& c : disks)
    if (c.contains(p)) ++d;
  return d;
}

GridReport grid_coverage(const wsn::Domain& domain,
                         const std::vector<Circle>& disks, double resolution,
                         int max_k_tracked) {
  GridReport rep;
  rep.covered_fraction.assign(static_cast<std::size_t>(max_k_tracked), 0.0);
  if (resolution <= 0.0) return rep;

  // Accelerate depth queries with a grid over the disk centers; a point is
  // covered only by disks whose centers are within rmax.
  double rmax = 0.0;
  std::vector<Vec2> centers;
  centers.reserve(disks.size());
  for (const Circle& c : disks) {
    rmax = std::max(rmax, c.radius);
    centers.push_back(c.center);
  }
  const wsn::SpatialGrid grid(centers, std::max(rmax, resolution));

  const geom::BBox bb = domain.bbox();
  rep.min_depth = disks.empty() ? 0 : std::numeric_limits<int>::max();
  double depth_sum = 0.0;
  std::vector<std::size_t> at_least(static_cast<std::size_t>(max_k_tracked),
                                    0);
  for (double y = bb.lo.y + resolution / 2; y <= bb.hi.y; y += resolution) {
    for (double x = bb.lo.x + resolution / 2; x <= bb.hi.x; x += resolution) {
      const Vec2 p{x, y};
      if (!domain.contains(p)) continue;
      int d = 0;
      for (int idx : grid.within(p, rmax + 1e-9)) {
        if (disks[static_cast<std::size_t>(idx)].contains(p)) ++d;
      }
      ++rep.samples;
      depth_sum += d;
      if (d < rep.min_depth) {
        rep.min_depth = d;
        rep.worst_point = p;
      }
      for (int k = 1; k <= max_k_tracked && k <= d; ++k)
        ++at_least[static_cast<std::size_t>(k) - 1];
    }
  }
  if (rep.samples == 0) {
    rep.min_depth = 0;
    return rep;
  }
  rep.mean_depth = depth_sum / static_cast<double>(rep.samples);
  for (int k = 0; k < max_k_tracked; ++k)
    rep.covered_fraction[static_cast<std::size_t>(k)] =
        static_cast<double>(at_least[static_cast<std::size_t>(k)]) /
        static_cast<double>(rep.samples);
  return rep;
}

}  // namespace laacad::cov
