// Grid-sampling k-coverage verification (Definition 1 of the paper):
// every point of the target area must be covered by at least k sensing
// disks. The grid checker evaluates coverage depth on a dense lattice; the
// exact critical-point checker in critical.hpp complements it.
#pragma once

#include <vector>

#include "geometry/circle.hpp"
#include "wsn/domain.hpp"
#include "wsn/network.hpp"

namespace laacad::cov {

struct GridReport {
  int min_depth = 0;             ///< lowest coverage depth over the samples
  double mean_depth = 0.0;
  geom::Vec2 worst_point;        ///< a sample achieving min_depth
  std::size_t samples = 0;       ///< in-domain samples evaluated
  /// Fraction of samples with depth >= k for k = 1..max recorded (index 0 is
  /// k = 1).
  std::vector<double> covered_fraction;

  /// Convenience: fraction of the area k-covered.
  double fraction_at_least(int k) const;
};

/// Coverage depth over a `resolution`-spaced lattice restricted to the
/// domain. `disks` are the sensing disks (u_i, r_i).
GridReport grid_coverage(const wsn::Domain& domain,
                         const std::vector<geom::Circle>& disks,
                         double resolution, int max_k_tracked = 8);

/// Sensing disks of a network's current deployment.
std::vector<geom::Circle> sensing_disks(const wsn::Network& net);

/// Coverage depth at a single point (closed disks).
int depth_at(const std::vector<geom::Circle>& disks, geom::Vec2 p);

}  // namespace laacad::cov
