#include "coverage/lifetime.hpp"

#include <algorithm>
#include <cmath>

#include "coverage/grid_checker.hpp"
#include "wsn/energy.hpp"

namespace laacad::cov {

LifetimeReport simulate_lifetime(const wsn::Network& net,
                                 const LifetimeConfig& cfg) {
  LifetimeReport rep;
  const int n = net.size();
  if (n == 0) return rep;

  // Per-epoch drain and deterministic death epoch per node.
  std::vector<int> death_epoch(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double drain =
        cfg.epoch * wsn::sensing_energy(net.node(i).sensing_range);
    death_epoch[static_cast<std::size_t>(i)] =
        drain <= 0.0 ? cfg.max_epochs
                     : static_cast<int>(std::floor(cfg.battery / drain));
  }

  // Events happen only at death epochs: walk them in order and re-check
  // coverage after each batch of deaths.
  std::vector<int> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return death_epoch[static_cast<std::size_t>(a)] <
           death_epoch[static_cast<std::size_t>(b)];
  });

  rep.epochs_until_first_death =
      std::min(death_epoch[static_cast<std::size_t>(order[0])],
               cfg.max_epochs);

  std::vector<bool> alive(static_cast<std::size_t>(n), true);
  auto covered = [&]() {
    std::vector<geom::Circle> disks;
    for (int i = 0; i < n; ++i) {
      if (alive[static_cast<std::size_t>(i)]) {
        disks.push_back({net.position(i), net.node(i).sensing_range});
      }
    }
    const auto grid =
        cov::grid_coverage(net.domain(), disks, cfg.grid_resolution);
    return grid.min_depth >= cfg.required_k;
  };

  if (!covered()) {  // deployment never satisfied the requirement
    rep.epochs_until_coverage_loss = 0;
    rep.nodes_alive_at_loss = n;
    return rep;
  }

  std::size_t next = 0;
  int epoch = 0;
  while (next < order.size()) {
    epoch = std::min(death_epoch[static_cast<std::size_t>(order[next])],
                     cfg.max_epochs);
    // Kill every node dying at this epoch.
    while (next < order.size() &&
           death_epoch[static_cast<std::size_t>(order[next])] <= epoch) {
      alive[static_cast<std::size_t>(order[next])] = false;
      ++next;
    }
    if (!covered() || epoch >= cfg.max_epochs) break;
  }
  rep.epochs_until_coverage_loss = epoch;
  int survivors = 0;
  double unused = 0.0;
  for (int i = 0; i < n; ++i) {
    if (!alive[static_cast<std::size_t>(i)]) continue;
    ++survivors;
    const double drain =
        cfg.epoch * wsn::sensing_energy(net.node(i).sensing_range);
    unused += std::max(0.0, cfg.battery - drain * epoch);
  }
  rep.nodes_alive_at_loss = survivors;
  rep.energy_unused_fraction =
      unused / (cfg.battery * static_cast<double>(n));
  return rep;
}

}  // namespace laacad::cov
