// Network-lifetime simulation — the claim that motivates LAACAD's
// objective. k-CSDP minimizes the maximum sensing range, and since
// E(r) = pi r^2 drains batteries proportionally, min-max range = balanced
// drain = maximal time until the first coverage violation.
//
// The simulator gives every node an identical battery, drains it per epoch
// proportionally to E(r_i), kills depleted nodes, and reports when coverage
// first drops below the required degree. Comparing LAACAD's deployment
// against an unbalanced one of equal total energy quantifies the lifetime
// benefit end-to-end.
#pragma once

#include <vector>

#include "wsn/domain.hpp"
#include "wsn/network.hpp"

namespace laacad::cov {

struct LifetimeConfig {
  double battery = 1.0e6;     ///< initial energy per node (J-equivalents)
  double epoch = 1.0;         ///< drain per epoch = epoch * E(r_i)
  int max_epochs = 1 << 20;   ///< safety cap
  int required_k = 1;         ///< coverage degree that must survive
  double grid_resolution = 10.0;  ///< coverage check resolution (m)
};

struct LifetimeReport {
  int epochs_until_first_death = 0;   ///< first node depleted
  int epochs_until_coverage_loss = 0; ///< area no longer required_k-covered
  int nodes_alive_at_loss = 0;
  double energy_unused_fraction = 0.0;  ///< energy stranded in survivors
};

/// Simulate battery drain on the network's current deployment (positions
/// and sensing ranges are read, not modified).
LifetimeReport simulate_lifetime(const wsn::Network& net,
                                 const LifetimeConfig& cfg = {});

}  // namespace laacad::cov
