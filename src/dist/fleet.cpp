#include "dist/fleet.hpp"

#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <stdexcept>
#include <string_view>
#include <vector>

#ifndef _WIN32
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "campaign/spec.hpp"
#include "dist/merge.hpp"
#include "dist/partition.hpp"
#include "obs/heartbeat.hpp"
#include "obs/trace.hpp"

namespace laacad::dist {

#ifndef _WIN32

namespace {

/// One supervised shard process. fd < 0 means not currently running.
struct Worker {
  ShardSpec shard;
  std::string manifest;
  pid_t pid = -1;
  int fd = -1;          ///< read end of the child's stdout+stderr pipe
  std::string buf;      ///< carry-over for partial lines
  int restarts = 0;
  bool done = false;
  /// Last campaign heartbeat consumed from this shard (all zero until the
  /// first one lands). Survives restarts: --resume re-runs only missing
  /// trials, so the next heartbeat's `done` supersedes these monotonically.
  int hb_done = 0, hb_total = 0, hb_ok = 0;
  std::chrono::steady_clock::time_point spawned;  ///< for the shard span
};

/// Fleet-level heartbeat state: folds the shards' campaign heartbeats into
/// `{"hb":"fleet"}` lines on the supervisor's stderr.
struct FleetBeat {
  obs::Heartbeat hb;
  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();

  explicit FleetBeat(std::string name) {
    hb.kind = "fleet";
    hb.name = std::move(name);
  }

  void emit(const std::vector<Worker>& workers) {
    int done = 0, total = 0, ok = 0, live = 0;
    for (const Worker& w : workers) {
      done += w.hb_done;
      total += w.hb_total;
      ok += w.hb_ok;
      if (w.fd >= 0) ++live;
    }
    hb.done = done;
    hb.total = total;
    hb.ok = ok;
    hb.live = live;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    hb.rate_per_s = elapsed > 0.0 ? done / elapsed : 0.0;
    hb.eta_s = hb.rate_per_s > 0.0 ? (total - done) / hb.rate_per_s
                                   : std::nan("");
    hb.ts_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    const std::string line = obs::format_heartbeat(hb);
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
  }
};

/// Fork/exec one shard of the campaign; the child's stdout and stderr are
/// funneled into a pipe the supervisor streams. `resume` re-runs only the
/// trials the shard's journal is missing.
void spawn(const FleetOptions& opt, Worker& w, bool resume) {
  int fds[2];
  if (pipe(fds) != 0)
    throw std::runtime_error(std::string("pipe: ") + std::strerror(errno));
  const std::string shard_arg = to_string(w.shard);
  const std::string workers_arg = std::to_string(opt.workers);
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    throw std::runtime_error(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Child: wire both streams into the pipe and become the shard runner.
    close(fds[0]);
    dup2(fds[1], STDOUT_FILENO);
    dup2(fds[1], STDERR_FILENO);
    close(fds[1]);
    std::vector<const char*> argv = {
        opt.runner.c_str(),   opt.campaign_path.c_str(),
        "--shard",            shard_arg.c_str(),
        "--workers",          workers_arg.c_str(),
        "--manifest",         w.manifest.c_str(),
    };
    if (resume) argv.push_back("--resume");
    if (opt.heartbeat) argv.push_back("--heartbeat");
    argv.push_back(nullptr);
    execv(opt.runner.c_str(), const_cast<char* const*>(argv.data()));
    // Only reached when exec failed; report through the pipe and die with
    // the infrastructure code so the supervisor aborts instead of retrying.
    std::fprintf(stderr, "exec %s: %s\n", opt.runner.c_str(),
                 std::strerror(errno));
    _exit(2);
  }
  close(fds[1]);
  w.pid = pid;
  w.fd = fds[0];
  w.buf.clear();
  w.spawned = std::chrono::steady_clock::now();
}

/// Relay one line of shard output as a single atomic write: the whole
/// timestamped, prefixed line is built in one buffer and handed to the OS
/// in one fwrite, so lines from different shards (and the supervisor's own
/// messages) can interleave only at line granularity, never mid-line.
void relay_line(const Worker& w, std::string_view line) {
  char stamp[16];
  const std::time_t t = std::time(nullptr);
  std::tm tm{};
  localtime_r(&t, &tm);
  std::strftime(stamp, sizeof(stamp), "%H:%M:%S", &tm);
  std::string out;
  out.reserve(line.size() + 32);
  out += '[';
  out += stamp;
  out += " shard ";
  out += to_string(w.shard);
  out += "] ";
  out.append(line.data(), line.size());
  out += '\n';
  std::fwrite(out.data(), 1, out.size(), stdout);
  std::fflush(stdout);
}

/// Drain complete lines from the worker's buffer: consume heartbeats into
/// the worker's progress fields, relay everything else (unless quiet).
/// Returns true when at least one heartbeat was consumed, so the caller
/// can fold an updated fleet heartbeat.
bool flush_lines(Worker& w, const FleetOptions& opt, bool final) {
  bool beat = false;
  std::size_t start = 0;
  for (std::size_t i = 0; i < w.buf.size(); ++i) {
    if (w.buf[i] != '\n') continue;
    const std::string_view line(w.buf.data() + start, i - start);
    start = i + 1;
    obs::Heartbeat hb;
    if (opt.heartbeat && obs::parse_heartbeat(line, &hb)) {
      w.hb_done = hb.done;
      w.hb_total = hb.total;
      w.hb_ok = hb.ok;
      beat = true;
      continue;  // consumed: structured progress never reaches stdout
    }
    if (!opt.quiet) relay_line(w, line);
  }
  w.buf.erase(0, start);
  if (final && !w.buf.empty()) {
    if (!opt.quiet) relay_line(w, w.buf);
    w.buf.clear();
  }
  return beat;
}

void terminate_all(std::vector<Worker>& workers) {
  for (Worker& w : workers) {
    if (w.pid > 0 && !w.done) kill(w.pid, SIGTERM);
  }
  for (Worker& w : workers) {
    if (w.pid > 0 && !w.done) {
      waitpid(w.pid, nullptr, 0);
      w.done = true;
    }
    if (w.fd >= 0) {
      close(w.fd);
      w.fd = -1;
    }
  }
}

}  // namespace

int run_fleet(const FleetOptions& opt) {
  campaign::CampaignSpec spec;
  try {
    spec = campaign::load_campaign_file(opt.campaign_path);
    if (opt.shards < 1)
      throw std::runtime_error("fleet needs --shards >= 1");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign_fleet: %s\n", e.what());
    return 2;
  }

  const std::string dir =
      opt.manifest_dir.empty() ? std::string() : opt.manifest_dir + "/";
  std::vector<Worker> workers;
  std::vector<std::string> shard_paths;
  for (int i = 0; i < opt.shards; ++i) {
    Worker w;
    w.shard = ShardSpec{i, opt.shards};
    w.manifest = dir + shard_manifest_path(spec.name, w.shard);
    shard_paths.push_back(w.manifest);
    workers.push_back(std::move(w));
  }

  if (!opt.merge_only) {
    try {
      for (Worker& w : workers) spawn(opt, w, opt.resume);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "campaign_fleet: %s\n", e.what());
      terminate_all(workers);
      return 2;
    }

    // Supervision loop: stream output, reap exits, restart crashes with
    // --resume (the journal makes restarts cheap: only unfinished trials
    // re-run). Runs until every shard has exited cleanly or crashed out.
    FleetBeat beat(spec.name);
    bool infra_failure = false;
    while (!infra_failure) {
      std::vector<pollfd> fds;
      std::vector<Worker*> live;
      for (Worker& w : workers) {
        if (w.fd < 0) continue;
        fds.push_back({w.fd, POLLIN, 0});
        live.push_back(&w);
      }
      if (fds.empty()) break;
      if (poll(fds.data(), fds.size(), -1) < 0) {
        if (errno == EINTR) continue;
        std::fprintf(stderr, "campaign_fleet: poll: %s\n",
                     std::strerror(errno));
        infra_failure = true;
        break;
      }
      for (std::size_t i = 0; i < fds.size(); ++i) {
        if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR))) continue;
        Worker& w = *live[i];
        char chunk[4096];
        const ssize_t n = read(w.fd, chunk, sizeof(chunk));
        if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
        if (n > 0) {
          w.buf.append(chunk, static_cast<std::size_t>(n));
          if (flush_lines(w, opt, false)) beat.emit(workers);
          continue;
        }
        // EOF: the child is gone (or closed its pipe); reap and decide.
        const bool had_beat = flush_lines(w, opt, true);
        close(w.fd);
        w.fd = -1;
        if (had_beat) beat.emit(workers);
        // Shard lifecycle span (spawn -> reap) on the supervisor's
        // timeline; a no-op unless the caller started a trace session.
        obs::emit_span("shard", w.spawned,
                       std::chrono::steady_clock::now(), w.shard.index);
        int status = 0;
        waitpid(w.pid, &status, 0);
        w.pid = -1;
        if (WIFEXITED(status)) {
          const int code = WEXITSTATUS(status);
          w.done = true;
          if (code == 2) {
            // Spec/usage/exec failure: deterministic, every restart and
            // every sibling would hit it too.
            std::fprintf(stderr,
                         "campaign_fleet: shard %s failed fatally "
                         "(exit 2); aborting fleet\n",
                         to_string(w.shard).c_str());
            infra_failure = true;
          } else if (!opt.quiet) {
            std::printf("[shard %s] exited with status %d\n",
                        to_string(w.shard).c_str(), code);
            std::fflush(stdout);
          }
        } else if (w.restarts < opt.max_restarts) {
          ++w.restarts;
          if (!opt.quiet) {
            std::printf("[shard %s] crashed (signal %d); restarting with "
                        "--resume (%d/%d)\n",
                        to_string(w.shard).c_str(),
                        WIFSIGNALED(status) ? WTERMSIG(status) : 0,
                        w.restarts, opt.max_restarts);
            std::fflush(stdout);
          }
          try {
            spawn(opt, w, /*resume=*/true);
          } catch (const std::exception& e) {
            std::fprintf(stderr, "campaign_fleet: %s\n", e.what());
            infra_failure = true;
          }
        } else {
          std::fprintf(stderr,
                       "campaign_fleet: shard %s crashed %d times; "
                       "giving up (its manifest resumes with "
                       "campaign_runner --shard %s --resume)\n",
                       to_string(w.shard).c_str(), w.restarts + 1,
                       to_string(w.shard).c_str());
          w.done = true;
          infra_failure = true;
        }
      }
    }
    if (infra_failure) {
      terminate_all(workers);
      return 2;
    }
  }

  // Merge: validation + unified manifest + aggregates, byte-identical to a
  // single-process run. rsync'd remote shard manifests take the same path
  // via --merge-only.
  campaign::CampaignResult result;
  const std::string base = "BENCH_campaign_" + spec.name;
  const std::string merged = opt.merged_manifest_path.empty()
                                 ? dir + base + ".manifest"
                                 : opt.merged_manifest_path;
  try {
    result = merge_manifests(spec, shard_paths, merged);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign_fleet: %s\n", e.what());
    return 2;
  }

  const std::string json_path =
      opt.json_path.empty() ? dir + base + ".json" : opt.json_path;
  const std::string csv_path =
      opt.csv_path.empty() ? dir + base + "_trials.csv" : opt.csv_path;
  {
    std::ofstream json(json_path, std::ios::trunc);
    if (!json) {
      std::fprintf(stderr, "campaign_fleet: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
    result.write_json(json);
    std::ofstream csv(csv_path, std::ios::trunc);
    if (!csv) {
      std::fprintf(stderr, "campaign_fleet: cannot write %s\n",
                   csv_path.c_str());
      return 2;
    }
    result.write_csv(csv);
  }
  if (!opt.quiet) {
    std::printf(
        "fleet '%s': %zu trials over %d shards merged, %zu grid points, "
        "%s\naggregates: %s\ntrial log: %s\nmerged manifest: %s\n",
        result.spec.name.c_str(), result.trials.size(), opt.shards,
        result.groups.size(), result.all_ok() ? "all ok" : "FAILURES",
        json_path.c_str(), csv_path.c_str(), merged.c_str());
  }
  return result.all_ok() ? 0 : 1;
}

#else  // _WIN32

int run_fleet(const FleetOptions&) {
  std::fprintf(stderr,
               "campaign_fleet: process supervision requires POSIX "
               "fork/exec; use campaign_runner --shard i/N per process "
               "and merge the manifests\n");
  return 2;
}

#endif

}  // namespace laacad::dist
