// Fleet launcher — runs one campaign as N local shard processes and merges
// their manifests into the single-process result.
//
// Each worker is a fork/exec of `campaign_runner --shard i/N`, journaling
// into its own shard manifest; the supervisor streams every worker's
// output (each relayed line is one timestamped atomic write, prefixed
// "[HH:MM:SS shard i/N]", so concurrent shards never shear each other's
// lines), restarts a *crashed* shard (killed by a signal — OOM, ^C on the
// child, machine hiccup) with `--resume` so it re-runs only the trials its
// journal is missing, and finally merges via dist::merge_manifests. A
// shard that exits cleanly with failing trials is NOT restarted: trials
// are deterministic, so a re-run would fail the same way — the failure
// belongs in the aggregates, not in a retry loop.
//
// With `heartbeat` set the shards run with --heartbeat and the supervisor
// *consumes* their `{"hb":"campaign"}` stderr lines off the relay pipe
// (structured progress, not stdout scraping), folding them into
// `{"hb":"fleet"}` lines on its own stderr that carry fleet-wide
// done/total/ok plus per-shard liveness.
//
// Host-spanning campaigns use the same machinery without the supervisor:
// run `campaign_runner --shard i/N` per host, rsync the shard manifests to
// one place, and `campaign_fleet <spec> --shards N --merge-only` there.
#pragma once

#include <string>

namespace laacad::dist {

struct FleetOptions {
  std::string campaign_path;  ///< the .cmp file every shard loads
  std::string runner;         ///< campaign_runner binary to exec
  int shards = 2;             ///< N: one process per shard
  int workers = 1;      ///< per-shard --workers (0 = hardware concurrency)
  int max_restarts = 2;  ///< crash restarts allowed per shard
  bool resume = false;   ///< first launch already passes --resume
  /// Directory for the shard manifests (default: current directory). The
  /// merged outputs land next to an unsharded run's: BENCH_campaign_<name>
  /// .json / _trials.csv / .manifest, overridable below.
  std::string manifest_dir;
  std::string json_path, csv_path, merged_manifest_path;
  bool merge_only = false;  ///< skip launching; merge existing manifests
  bool quiet = false;       ///< suppress shard output streaming
  /// Run shards with --heartbeat and emit fleet-level heartbeat lines on
  /// stderr (see the header comment). Heartbeats are consumed even under
  /// `quiet` — they are the machine channel, not chatter.
  bool heartbeat = false;
};

/// Launch, supervise, merge. Returns the process exit status: 0 when every
/// trial of the merged campaign completed with verified k-coverage, 1 when
/// the merge succeeded but some trials failed, 2 on infrastructure errors
/// (bad spec, un-execable runner, a shard crashing past its restart
/// budget, merge validation failure).
int run_fleet(const FleetOptions& opt);

}  // namespace laacad::dist
