#include "dist/merge.hpp"

#include <fstream>
#include <map>
#include <stdexcept>

#include "campaign/manifest.hpp"

namespace laacad::dist {

namespace {

using campaign::ManifestHeader;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("manifest merge: " + what);
}

struct ShardFile {
  std::string path;
  ManifestHeader header;
  std::map<int, campaign::TrialResult> rows;
};

ShardFile load_shard(const std::string& path, const ManifestHeader& expected) {
  std::ifstream in(path);
  if (!in) fail("cannot open shard manifest " + path);
  ShardFile shard;
  shard.path = path;
  std::string line;
  if (!std::getline(in, line)) fail("shard manifest " + path + " is empty");
  const auto header = campaign::parse_manifest_header(line);
  if (!header)
    fail("shard manifest " + path + " has an unrecognized header line");
  // Identity first: a fingerprint mismatch means this file journals a
  // *different experiment* (other sweep, edited scenario file, other
  // metric schema) and nothing below it can be trusted.
  if (header->fingerprint != expected.fingerprint ||
      header->trials != expected.trials ||
      header->metrics != expected.metrics)
    fail("shard manifest " + path +
         " does not belong to this campaign: expected " +
         campaign::describe_manifest_header(expected) + ", found " +
         campaign::describe_manifest_header(*header));
  shard.header = *header;
  // Truncated tails (kill mid-write) are tolerated exactly like ResultStore
  // replay: rows stop at the first malformed line, and the gap is reported
  // as missing trials below.
  shard.rows = campaign::replay_manifest_rows(in, expected.trials);
  return shard;
}

}  // namespace

campaign::CampaignResult merge_manifests(
    const campaign::CampaignSpec& spec,
    const std::vector<std::string>& shard_paths,
    const std::string& merged_path) {
  if (shard_paths.empty()) fail("no shard manifests given");
  if (merged_path.empty()) fail("merged manifest path must not be empty");

  const auto points = campaign::expand_grid(spec);
  ManifestHeader expected;
  expected.fingerprint = campaign::fingerprint(spec);
  expected.trials = static_cast<int>(points.size());
  expected.metrics = static_cast<int>(campaign::metric_names().size());

  std::vector<ShardFile> shards;
  shards.reserve(shard_paths.size());
  for (const std::string& path : shard_paths)
    shards.push_back(load_shard(path, expected));

  // One shard scheme across the fleet: every header must declare the same
  // count, and together the files must cover each index exactly once.
  const int count = shards.front().header.shard.count;
  std::vector<const ShardFile*> by_index(static_cast<std::size_t>(count),
                                         nullptr);
  for (const ShardFile& shard : shards) {
    const ShardSpec& s = shard.header.shard;
    if (s.count != count)
      fail("shard scheme mismatch: " + shards.front().path + " declares " +
           std::to_string(count) + " shards but " + shard.path +
           " declares " + std::to_string(s.count));
    const ShardFile*& slot = by_index[static_cast<std::size_t>(s.index)];
    if (slot != nullptr)
      fail("duplicate shard " + to_string(s) + ": both " + slot->path +
           " and " + shard.path + " claim it");
    slot = &shard;
  }
  for (int i = 0; i < count; ++i)
    if (by_index[static_cast<std::size_t>(i)] == nullptr)
      fail("missing shard " + to_string(ShardSpec{i, count}) + " (" +
           std::to_string(shards.size()) + " of " + std::to_string(count) +
           " shard manifests given)");

  // Row ownership: the stride partition assigns each trial to exactly one
  // shard, so a row outside its file's slice is an overlap — two shards
  // would both claim that trial — and merging it would double-count or
  // shadow the rightful row. Hard error, never a silent drop.
  std::map<int, campaign::TrialResult> merged;
  for (const ShardFile& shard : shards) {
    for (const auto& [trial, r] : shard.rows) {
      if (!owns(shard.header.shard, trial))
        fail("trial " + std::to_string(trial) + " appears in shard " +
             to_string(shard.header.shard) + " (" + shard.path +
             ") which does not own it under the stride partition — "
             "duplicate/overlapping trial rows across shards");
      // Ownership + distinct shard indices make cross-shard duplicates
      // impossible here; within one file the replay already kept the
      // first occurrence.
      merged.emplace(trial, r);
    }
  }

  if (static_cast<int>(merged.size()) != expected.trials) {
    // Name the gap precisely: which trials, and which shard to resume.
    std::string missing;
    int shown = 0, absent = 0;
    for (int t = 0; t < expected.trials; ++t) {
      if (merged.count(t)) continue;
      ++absent;
      if (shown < 5) {
        if (shown) missing += ", ";
        missing += std::to_string(t) + " (shard " +
                   to_string(ShardSpec{t % count, count}) + ")";
        ++shown;
      }
    }
    if (absent > shown) missing += ", ...";
    fail(std::to_string(absent) + " of " + std::to_string(expected.trials) +
         " trials missing: " + missing +
         " — a shard was interrupted; rerun it with --shard i/N --resume "
         "and merge again");
  }

  // The unified journal: unsharded header + rows in trial order —
  // byte-identical to the manifest of an uninterrupted serial run, and a
  // valid resume journal in its own right.
  {
    std::ofstream out(merged_path, std::ios::trunc);
    if (!out) fail("cannot write merged manifest " + merged_path);
    out << campaign::format_manifest_header(expected) << '\n';
    for (const auto& [trial, r] : merged)
      out << campaign::format_manifest_row(r) << '\n';
  }

  // Replay the merged journal through the scheduler's own resume path: it
  // re-validates the header against the spec, recovers every row, runs the
  // zero remaining trials, and aggregates — one aggregation code path for
  // sharded and unsharded runs, so the outputs cannot drift apart.
  campaign::CampaignOptions opt;
  opt.workers = 1;
  opt.resume = true;
  opt.manifest_path = merged_path;
  campaign::CampaignScheduler scheduler(spec, std::move(opt));
  return scheduler.run();
}

}  // namespace laacad::dist
