// Manifest merge — turns the per-shard journals of a distributed campaign
// back into the single result an unsharded run would have produced.
//
// Every shard journals its trials with per-trial seeds derived from trial
// identity (never from which process or worker ran them), so the merged
// trial matrix — and therefore the grouped-aggregate JSON and the trial
// CSV — is byte-identical to a single-process run for every (shard count,
// per-shard worker count) combination. The merge validates before it
// trusts: all shards must share one fingerprint and one shard scheme, and
// every trial index must appear exactly once across the fleet. Overlaps
// and gaps are hard errors, never silently patched — a gap usually means a
// shard was killed mid-run (its truncated tail is tolerated exactly like
// ResultStore replay) and the fix is to resume that one shard, which the
// error message names.
//
// Cross-host workflow: run `campaign_runner --shard i/N` on each host,
// rsync the `*.shard-*-of-N.manifest` files to one place, and merge there
// (`campaign_fleet <spec> --shards N --merge-only`). The merged manifest is
// written unsharded and row-sorted, byte-identical to the journal of an
// uninterrupted serial run.
#pragma once

#include <string>
#include <vector>

#include "campaign/scheduler.hpp"

namespace laacad::dist {

/// Merge the shard manifests at `shard_paths` (any order) into the unified
/// manifest at `merged_path`, then replay it into a full CampaignResult —
/// aggregates and all, ready for CampaignResult::write_json/write_csv.
/// Throws std::runtime_error naming the offending file and values when a
/// shard is missing or duplicated, a header's fingerprint / trial count /
/// metric schema disagrees with `spec` or the other shards, a row sits in
/// a shard that does not own it, or any trial index is absent (e.g. a
/// truncated shard that needs `--shard i/N --resume`).
campaign::CampaignResult merge_manifests(
    const campaign::CampaignSpec& spec,
    const std::vector<std::string>& shard_paths,
    const std::string& merged_path);

}  // namespace laacad::dist
