#include "dist/partition.hpp"

#include <cstdlib>
#include <stdexcept>

namespace laacad::dist {

void validate(const ShardSpec& shard) {
  if (shard.count < 1)
    throw std::runtime_error("shard count must be >= 1, got " +
                             std::to_string(shard.count));
  if (shard.index < 0 || shard.index >= shard.count)
    throw std::runtime_error("shard index " + std::to_string(shard.index) +
                             " out of range for " +
                             std::to_string(shard.count) + " shards");
}

bool owns(const ShardSpec& shard, int trial) {
  return trial % shard.count == shard.index;
}

std::vector<int> shard_trials(const ShardSpec& shard, int total_trials) {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(shard_size(shard, total_trials)));
  for (int t = shard.index; t < total_trials; t += shard.count)
    out.push_back(t);
  return out;
}

int shard_size(const ShardSpec& shard, int total_trials) {
  if (total_trials <= shard.index) return 0;
  return (total_trials - shard.index + shard.count - 1) / shard.count;
}

std::string to_string(const ShardSpec& shard) {
  return std::to_string(shard.index) + "/" + std::to_string(shard.count);
}

ShardSpec parse_shard(const std::string& text) {
  const auto slash = text.find('/');
  auto bad = [&text]() -> ShardSpec {
    throw std::runtime_error("shard must be <index>/<count> (e.g. 0/3), got '" +
                             text + "'");
  };
  if (slash == std::string::npos || slash == 0 || slash + 1 == text.size())
    return bad();
  const std::string a = text.substr(0, slash), b = text.substr(slash + 1);
  char* end = nullptr;
  const long index = std::strtol(a.c_str(), &end, 10);
  if (end != a.c_str() + a.size()) return bad();
  const long count = std::strtol(b.c_str(), &end, 10);
  if (end != b.c_str() + b.size()) return bad();
  ShardSpec shard{static_cast<int>(index), static_cast<int>(count)};
  validate(shard);
  return shard;
}

std::string shard_manifest_path(const std::string& campaign_name,
                                const ShardSpec& shard) {
  return "BENCH_campaign_" + campaign_name + ".shard-" +
         std::to_string(shard.index) + "-of-" + std::to_string(shard.count) +
         ".manifest";
}

}  // namespace laacad::dist
