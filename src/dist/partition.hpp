// Shard partition — how one campaign's trial matrix is split across
// processes (and, via rsync'd manifests, across hosts).
//
// The partition is *strided*: shard i of S owns every trial t with
// t % S == i. Chosen over contiguous blocks because the trial matrix is
// ordered point-major (all repetitions of grid point 0, then point 1, ...)
// and per-trial cost varies mostly by grid point — a contiguous split would
// hand one shard all the expensive points while another drains the cheap
// ones, whereas the stride interleaves every shard across the whole grid.
// The scheme is fixed forever for a given (i, S): it is part of the shard
// manifest's identity (the merge rejects rows a shard does not own), so it
// must never depend on runtime state.
//
// This header is dependency-free on purpose: the campaign layer (scheduler,
// manifest codec) consumes it without pulling in the rest of src/dist.
#pragma once

#include <string>
#include <vector>

namespace laacad::dist {

/// Shard coordinates: this process owns partition `index` of `count`.
/// {0, 1} is the unsharded identity (owns every trial).
struct ShardSpec {
  int index = 0;
  int count = 1;

  bool sharded() const { return count > 1; }
  bool operator==(const ShardSpec&) const = default;
};

/// Throws std::runtime_error unless 0 <= index < count.
void validate(const ShardSpec& shard);

/// Stride partition membership: trial % count == index.
bool owns(const ShardSpec& shard, int trial);

/// The trial indices this shard owns, ascending, out of `total_trials`.
std::vector<int> shard_trials(const ShardSpec& shard, int total_trials);

/// |shard_trials| without materializing it.
int shard_size(const ShardSpec& shard, int total_trials);

/// "i/N" — the CLI and header syntax.
std::string to_string(const ShardSpec& shard);

/// Parse "i/N" (e.g. "2/8"); throws std::runtime_error on malformed input
/// or out-of-range coordinates.
ShardSpec parse_shard(const std::string& text);

/// Canonical per-shard journal name:
/// BENCH_campaign_<name>.shard-<i>-of-<N>.manifest
std::string shard_manifest_path(const std::string& campaign_name,
                                const ShardSpec& shard);

}  // namespace laacad::dist
