#include "geometry/angular.hpp"

#include <algorithm>
#include <cmath>

namespace laacad::geom {

namespace {
constexpr double kTwoPi = 2.0 * M_PI;
// Angular tolerance: generous because arc endpoints come from acos of
// quantities with their own rounding.
constexpr double kAngEps = 1e-12;

double mid_angle(double a, double b) { return 0.5 * (a + b); }
}  // namespace

double normalize_angle(double a) {
  a = std::fmod(a, kTwoPi);
  if (a < 0.0) a += kTwoPi;
  return a;
}

void AngularCoverage::add(double begin, double end) {
  double len = end - begin;
  if (len <= 0.0) {
    len += kTwoPi;
    if (len <= 0.0) return;
  }
  if (len >= kTwoPi) {  // full circle
    arcs_.push_back({0.0, kTwoPi});
    return;
  }
  // Stored unsplit: begin in [0, 2*pi), end = begin + len possibly > 2*pi.
  // depth_at probes both theta and theta + 2*pi so wrap-around arcs count
  // exactly once.
  const double b = normalize_angle(begin);
  arcs_.push_back({b, b + len});
}

int AngularCoverage::depth_at(double theta) const {
  const double t = normalize_angle(theta);
  int d = 0;
  for (const Arc& a : arcs_) {
    if (t >= a.begin - kAngEps && t <= a.end + kAngEps) ++d;
    // An arc ending exactly at 2*pi also covers theta == 0 and vice versa.
    else if (t + kTwoPi >= a.begin - kAngEps && t + kTwoPi <= a.end + kAngEps)
      ++d;
  }
  return d;
}

int AngularCoverage::min_depth() const {
  if (arcs_.empty()) return 0;
  // Depth is piecewise constant with breakpoints at arc endpoints: evaluate
  // at the midpoint of every maximal breakpoint-free interval.
  std::vector<double> cuts;
  cuts.reserve(arcs_.size() * 2);
  for (const Arc& a : arcs_) {
    cuts.push_back(normalize_angle(a.begin));
    cuts.push_back(normalize_angle(a.end));
  }
  std::sort(cuts.begin(), cuts.end());
  int best = depth_at(mid_angle(cuts.back(), cuts.front() + kTwoPi));
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    best = std::min(best, depth_at(mid_angle(cuts[i], cuts[i + 1])));
    if (best == 0) return 0;
  }
  return best;
}

int AngularCoverage::min_depth_over(const std::vector<Arc>& query) const {
  if (query.empty()) return kNoConstraint;
  int best = kNoConstraint;
  for (const Arc& q : query) {
    // Normalize the query arc into non-wrapping pieces.
    double len = q.end - q.begin;
    if (len <= 0.0) len += kTwoPi;
    len = std::min(len, kTwoPi);
    const double b = normalize_angle(q.begin);
    std::vector<std::pair<double, double>> pieces;
    if (b + len <= kTwoPi) {
      pieces.emplace_back(b, b + len);
    } else {
      pieces.emplace_back(b, kTwoPi);
      pieces.emplace_back(0.0, b + len - kTwoPi);
    }
    for (auto [pb, pe] : pieces) {
      std::vector<double> cuts{pb, pe};
      for (const Arc& a : arcs_) {
        for (double c : {normalize_angle(a.begin), normalize_angle(a.end)}) {
          if (c > pb && c < pe) cuts.push_back(c);
        }
      }
      std::sort(cuts.begin(), cuts.end());
      for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
        best = std::min(best, depth_at(0.5 * (cuts[i] + cuts[i + 1])));
        if (best == 0) return 0;
      }
    }
  }
  return best;
}

ArcCoverResult arc_covered_by_disk(Vec2 center, double r, Vec2 other_center,
                                   double other_r) {
  ArcCoverResult res;
  const double d = dist(center, other_center);
  const double eps = kEps * (1.0 + r + other_r);
  if (d + r <= other_r + eps) {
    res.all = true;
    return res;
  }
  if (std::abs(d - r) > other_r + eps || r <= eps) {
    // Either the disk is too far to touch the circle, or it sits entirely
    // inside the circle without reaching it.
    res.none = true;
    return res;
  }
  // Law of cosines on the triangle (center, other_center, boundary point).
  double cosphi = (d * d + r * r - other_r * other_r) / (2.0 * d * r);
  cosphi = std::clamp(cosphi, -1.0, 1.0);
  const double phi = std::acos(cosphi);
  const double theta = (other_center - center).angle();
  res.arc = {theta - phi, theta + phi};
  return res;
}

}  // namespace laacad::geom
