// Arithmetic on angular intervals of a circle. The perimeter-based exact
// k-coverage checker reduces "is every point of this sensing circle covered
// by >= k other disks?" to interval stabbing on [0, 2*pi).
#pragma once

#include <vector>

#include "geometry/vec2.hpp"

namespace laacad::geom {

/// Half-open-ish angular interval [begin, end] on the unit circle, possibly
/// wrapping past 2*pi. Angles are radians.
struct Arc {
  double begin = 0.0;
  double end = 0.0;  ///< May exceed 2*pi to denote wrap-around.
};

/// Accumulates arcs and answers depth queries along the circle.
class AngularCoverage {
 public:
  /// Add a covered arc; wrap-around (begin > end after normalization) is
  /// handled by splitting internally.
  void add(double begin, double end);

  /// Coverage depth at angle theta.
  int depth_at(double theta) const;

  /// Minimum depth over the whole circle.
  int min_depth() const;

  /// Minimum depth over the union of query arcs (e.g. the part of a sensing
  /// circle lying inside the target area). Empty query list yields INT_MAX
  /// semantics via `min_depth_none` (= a very large value), meaning "no
  /// constraint".
  int min_depth_over(const std::vector<Arc>& query) const;

  std::size_t arc_count() const { return arcs_.size(); }

  /// Sentinel returned when the query region is empty.
  static constexpr int kNoConstraint = 1 << 20;

 private:
  // Normalized, non-wrapping arcs in [0, 2*pi]; wrap arcs stored split.
  std::vector<Arc> arcs_;
};

/// Normalize angle into [0, 2*pi).
double normalize_angle(double a);

/// The arc of circle (center, r) covered by the closed disk (other_center,
/// other_r), as zero, one full-circle, or one arc. Returns {covered_all,
/// covered_none, arc}.
struct ArcCoverResult {
  bool all = false;
  bool none = false;
  Arc arc;
};
ArcCoverResult arc_covered_by_disk(Vec2 center, double r, Vec2 other_center,
                                   double other_r);

}  // namespace laacad::geom
