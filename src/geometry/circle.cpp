#include "geometry/circle.hpp"

#include <algorithm>
#include <cmath>

namespace laacad::geom {

Circle circle_from_2(Vec2 a, Vec2 b) {
  return {midpoint(a, b), 0.5 * dist(a, b)};
}

std::optional<Circle> circle_from_3(Vec2 a, Vec2 b, Vec2 c) {
  const Vec2 ab = b - a, ac = c - a;
  const double d = 2.0 * cross(ab, ac);
  // Collinearity threshold relative to the triangle scale.
  const double scale = std::max({ab.norm(), ac.norm(), dist(b, c)});
  if (std::abs(d) < kEps * (1.0 + scale * scale)) return std::nullopt;
  const double ab2 = ab.norm2(), ac2 = ac.norm2();
  const Vec2 center =
      a + Vec2{ac.y * ab2 - ab.y * ac2, ab.x * ac2 - ac.x * ab2} / d;
  return Circle{center, dist(center, a)};
}

std::vector<Vec2> circle_circle_intersections(const Circle& a,
                                              const Circle& b) {
  const double d = dist(a.center, b.center);
  const double scale = 1.0 + a.radius + b.radius;
  if (d < kEps * scale) return {};  // concentric (or coincident)
  if (d > a.radius + b.radius + kEps * scale) return {};
  if (d < std::abs(a.radius - b.radius) - kEps * scale) return {};

  // Distance from a.center to the radical line along the center line.
  const double x = (d * d + a.radius * a.radius - b.radius * b.radius) /
                   (2.0 * d);
  double h2 = a.radius * a.radius - x * x;
  if (h2 < 0.0) h2 = 0.0;
  const double h = std::sqrt(h2);
  const Vec2 dir = (b.center - a.center) / d;
  const Vec2 base = a.center + dir * x;
  const Vec2 off = dir.perp() * h;
  if (h < kEps * scale) return {base};
  return {base + off, base - off};
}

std::vector<Vec2> circle_segment_intersections(const Circle& c, Vec2 p,
                                               Vec2 q) {
  const Vec2 d = q - p;
  const double len2 = d.norm2();
  if (len2 < kEps * kEps) return {};
  const Vec2 f = p - c.center;
  const double A = len2;
  const double B = 2.0 * dot(f, d);
  const double C = f.norm2() - c.radius * c.radius;
  double disc = B * B - 4.0 * A * C;
  if (disc < 0.0) return {};
  disc = std::sqrt(disc);
  std::vector<Vec2> out;
  const double tp = kEps / std::max(std::sqrt(len2), kEps);
  for (double t : {(-B - disc) / (2.0 * A), (-B + disc) / (2.0 * A)}) {
    if (t >= -tp && t <= 1.0 + tp) {
      const Vec2 pt = p + d * std::clamp(t, 0.0, 1.0);
      if (out.empty() || !almost_equal(out.back(), pt)) out.push_back(pt);
    }
  }
  return out;
}

}  // namespace laacad::geom
