// Circles: containment, circumcircles, and the intersection routines the
// exact coverage checker relies on.
#pragma once

#include <optional>
#include <vector>

#include "geometry/segment.hpp"
#include "geometry/vec2.hpp"

namespace laacad::geom {

struct Circle {
  Vec2 center{0, 0};
  double radius = 0.0;

  bool valid() const { return radius >= 0.0; }
  double area() const { return M_PI * radius * radius; }

  /// Closed-disk containment with tolerance scaled to the radius.
  bool contains(Vec2 p, double eps = kEps) const {
    return dist(center, p) <= radius + eps * (1.0 + radius);
  }
};

/// Circle through two points (diameter circle).
Circle circle_from_2(Vec2 a, Vec2 b);

/// Circumcircle of a triangle; nullopt for (near-)collinear input.
std::optional<Circle> circle_from_3(Vec2 a, Vec2 b, Vec2 c);

/// Intersection points of two circle *boundaries* (0, 1, or 2 points).
/// Coincident circles return no points.
std::vector<Vec2> circle_circle_intersections(const Circle& a,
                                              const Circle& b);

/// Intersection points of a circle boundary with segment [p, q].
std::vector<Vec2> circle_segment_intersections(const Circle& c, Vec2 p,
                                               Vec2 q);

}  // namespace laacad::geom
