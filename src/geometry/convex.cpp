#include "geometry/convex.hpp"

#include <algorithm>

namespace laacad::geom {

Ring convex_hull(std::vector<Vec2> points) {
  std::sort(points.begin(), points.end(), [](Vec2 a, Vec2 b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  points.erase(std::unique(points.begin(), points.end(),
                           [](Vec2 a, Vec2 b) { return almost_equal(a, b); }),
               points.end());
  const std::size_t n = points.size();
  if (n < 3) return points;

  Ring hull(2 * n);
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {  // lower chain
    while (k >= 2 &&
           cross(hull[k - 1] - hull[k - 2], points[i] - hull[k - 2]) <= kEps)
      --k;
    hull[k++] = points[i];
  }
  const std::size_t lower = k + 1;
  for (std::size_t i = n - 1; i-- > 0;) {  // upper chain
    while (k >= lower &&
           cross(hull[k - 1] - hull[k - 2], points[i] - hull[k - 2]) <= kEps)
      --k;
    hull[k++] = points[i];
  }
  hull.resize(k - 1);
  return hull;
}

bool is_convex(const Ring& ring, double eps) {
  const std::size_t n = ring.size();
  if (n < 3) return false;
  int sign = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 a = ring[i], b = ring[(i + 1) % n], c = ring[(i + 2) % n];
    const double cr = cross(b - a, c - b);
    if (std::abs(cr) <= eps) continue;
    const int s = cr > 0 ? 1 : -1;
    if (sign == 0) sign = s;
    else if (s != sign) return false;
  }
  return true;
}

Ring intersect_halfplanes(Ring convex_start,
                          const std::vector<HalfPlane>& halfplanes,
                          double eps) {
  Ring out = std::move(convex_start);
  for (const HalfPlane& hp : halfplanes) {
    if (out.empty()) break;
    out = clip_ring(out, hp, eps);
  }
  return out;
}

}  // namespace laacad::geom
