// Convex-specific helpers: hulls, convexity tests, and iterated half-plane
// intersection (the workhorse for Voronoi cell construction).
#pragma once

#include <vector>

#include "geometry/halfplane.hpp"
#include "geometry/polygon.hpp"

namespace laacad::geom {

/// Andrew's monotone-chain convex hull (CCW, no duplicate endpoint).
/// Collinear points on the hull boundary are dropped.
Ring convex_hull(std::vector<Vec2> points);

/// True when the ring is convex (either orientation) within eps.
bool is_convex(const Ring& ring, double eps = kEps);

/// Intersection of a convex start ring with a set of half-planes. Returns an
/// empty ring when the intersection is empty or degenerate.
Ring intersect_halfplanes(Ring convex_start,
                          const std::vector<HalfPlane>& halfplanes,
                          double eps = kEps);

}  // namespace laacad::geom
