#include "geometry/halfplane.hpp"

namespace laacad::geom {

HalfPlane bisector_halfplane(Vec2 keep, Vec2 other) {
  HalfPlane hp;
  hp.point = midpoint(keep, other);
  hp.normal = (other - keep).normalized();
  return hp;
}

}  // namespace laacad::geom
