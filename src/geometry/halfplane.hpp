// Half-planes and perpendicular-bisector half-planes. The order-k Voronoi
// machinery expresses every cell as an intersection of bisector half-planes,
// so this is the innermost kernel of the whole reproduction.
#pragma once

#include "geometry/vec2.hpp"

namespace laacad::geom {

/// Closed half-plane { v : dot(v - point, normal) <= 0 } with `normal` of
/// unit length, so `signed_dist` is a distance in metres (negative inside).
struct HalfPlane {
  Vec2 point;    ///< Any point on the boundary line.
  Vec2 normal;   ///< Unit outward normal.

  /// Signed distance of v from the boundary; <= 0 means inside.
  double signed_dist(Vec2 v) const { return dot(v - point, normal); }

  bool contains(Vec2 v, double eps = kEps) const {
    return signed_dist(v) <= eps;
  }

  /// Direction along the boundary line (normal rotated -90 degrees, so the
  /// inside lies to the left of the direction of travel).
  Vec2 tangent() const { return {normal.y, -normal.x}; }
};

/// Half-plane of points at least as close to `keep` as to `other`
/// (the perpendicular bisector, keeping keep's side). Requires
/// keep != other; nearly coincident inputs are handled by the caller
/// (see voronoi::SiteSet degeneracy handling).
HalfPlane bisector_halfplane(Vec2 keep, Vec2 other);

}  // namespace laacad::geom
