#include "geometry/polygon.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/perf_counters.hpp"

namespace laacad::geom {

double signed_area(const Ring& ring) {
  const std::size_t n = ring.size();
  if (n < 3) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 a = ring[i], b = ring[(i + 1) % n];
    s += cross(a, b);
  }
  return 0.5 * s;
}

double area(const Ring& ring) { return std::abs(signed_area(ring)); }

double perimeter(const Ring& ring) {
  const std::size_t n = ring.size();
  if (n < 2) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += dist(ring[i], ring[(i + 1) % n]);
  return s;
}

Vec2 centroid(const Ring& ring) {
  const std::size_t n = ring.size();
  if (n == 0) return {0, 0};
  const double a = signed_area(ring);
  if (std::abs(a) < kEps * kEps) {
    Vec2 m{0, 0};
    for (Vec2 v : ring) m += v;
    return m / static_cast<double>(n);
  }
  Vec2 c{0, 0};
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 p = ring[i], q = ring[(i + 1) % n];
    const double w = cross(p, q);
    c += (p + q) * w;
  }
  return c / (6.0 * a);
}

void make_ccw(Ring& ring) {
  if (signed_area(ring) < 0.0) std::reverse(ring.begin(), ring.end());
}

BBox bounding_box(const Ring& ring) {
  BBox b;
  if (ring.empty()) return b;
  b.lo = b.hi = ring.front();
  for (Vec2 v : ring) {
    b.lo.x = std::min(b.lo.x, v.x);
    b.lo.y = std::min(b.lo.y, v.y);
    b.hi.x = std::max(b.hi.x, v.x);
    b.hi.y = std::max(b.hi.y, v.y);
  }
  return b;
}

bool contains_point(const Ring& ring, Vec2 p, double eps) {
  const std::size_t n = ring.size();
  if (n < 3) return false;
  // Boundary proximity counts as inside.
  for (std::size_t i = 0; i < n; ++i) {
    if (dist_point_segment(p, ring[i], ring[(i + 1) % n]) <= eps) return true;
  }
  bool inside = false;
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const Vec2 a = ring[i], b = ring[j];
    if ((a.y > p.y) != (b.y > p.y)) {
      const double t = (p.y - a.y) / (b.y - a.y);
      const double xint = a.x + t * (b.x - a.x);
      if (p.x < xint) inside = !inside;
    }
  }
  return inside;
}

double dist_to_boundary(const Ring& ring, Vec2 p) {
  const std::size_t n = ring.size();
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    best = std::min(best, dist_point_segment(p, ring[i], ring[(i + 1) % n]));
  }
  return best;
}

Vec2 project_to_boundary(const Ring& ring, Vec2 p) {
  const std::size_t n = ring.size();
  double best = std::numeric_limits<double>::infinity();
  Vec2 result = p;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 c = closest_point_on_segment(p, ring[i], ring[(i + 1) % n]);
    const double d = dist(p, c);
    if (d < best) {
      best = d;
      result = c;
    }
  }
  return result;
}

std::optional<std::pair<std::size_t, double>> farthest_vertex(const Ring& ring,
                                                              Vec2 p) {
  if (ring.empty()) return std::nullopt;
  std::size_t arg = 0;
  double best = -1.0;
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const double d = dist(p, ring[i]);
    if (d > best) {
      best = d;
      arg = i;
    }
  }
  return std::make_pair(arg, best);
}

void clip_ring_into(const Ring& ring, const HalfPlane& hp, Ring& out,
                    double eps) {
  out.clear();
  const std::size_t n = ring.size();
  if (n == 0) return;
  auto& pc = perf::counters();
  ++pc.clip_calls;
  const std::size_t cap0 = out.capacity();
  // Push with the dedupe_ring consecutive-duplicate check inlined, so the
  // arena variant needs no second pass (and no second ring) to normalize.
  auto push = [&](Vec2 v) {
    if (out.empty() || !almost_equal(out.back(), v, eps)) out.push_back(v);
  };
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 a = ring[i], b = ring[(i + 1) % n];
    const double da = hp.signed_dist(a);
    const double db = hp.signed_dist(b);
    const bool ina = da <= eps, inb = db <= eps;
    if (ina) push(a);
    if (ina != inb) {
      // Edge crosses the boundary; da != db here because the signs differ
      // beyond +-eps on at least one side.
      const double t = da / (da - db);
      push(lerp(a, b, std::clamp(t, 0.0, 1.0)));
    }
  }
  while (out.size() >= 2 && almost_equal(out.front(), out.back(), eps))
    out.pop_back();
  if (out.size() < 3) out.clear();
  if (out.capacity() != cap0) ++pc.ring_allocs;
}

Ring clip_ring(const Ring& ring, const HalfPlane& hp, double eps) {
  Ring out;
  out.reserve(ring.size() + 2);
  if (!ring.empty()) ++perf::counters().ring_allocs;
  clip_ring_into(ring, hp, out, eps);
  return out;
}

Ring sutherland_hodgman(const Ring& subject, const Ring& convex_window,
                        double eps) {
  if (convex_window.size() < 3) return {};
  Ring window = convex_window;
  make_ccw(window);
  Ring out = subject;
  const std::size_t m = window.size();
  for (std::size_t i = 0; i < m && !out.empty(); ++i) {
    const Vec2 a = window[i], b = window[(i + 1) % m];
    HalfPlane hp;
    hp.point = a;
    // Window is CCW, so the inside lies to the left of a->b; the outward
    // normal is the right-hand perpendicular.
    hp.normal = Vec2{(b - a).y, -(b - a).x}.normalized();
    out = clip_ring(out, hp, eps);
  }
  return out;
}

Ring dedupe_ring(const Ring& ring, double eps) {
  Ring out;
  out.reserve(ring.size());
  for (Vec2 v : ring) {
    if (out.empty() || !almost_equal(out.back(), v, eps)) out.push_back(v);
  }
  while (out.size() >= 2 && almost_equal(out.front(), out.back(), eps))
    out.pop_back();
  if (out.size() < 3) return {};
  return out;
}

Ring circumscribed_ngon(Vec2 center, double radius, int n) {
  Ring out;
  out.reserve(static_cast<std::size_t>(n));
  const double apothem_scale = 1.0 / std::cos(M_PI / n);
  for (int i = 0; i < n; ++i) {
    const double a = 2.0 * M_PI * (i + 0.5) / n;
    out.push_back(center +
                  Vec2{std::cos(a), std::sin(a)} * (radius * apothem_scale));
  }
  return out;
}

Ring inscribed_ngon(Vec2 center, double radius, int n) {
  Ring out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double a = 2.0 * M_PI * i / n;
    out.push_back(center + Vec2{std::cos(a), std::sin(a)} * radius);
  }
  return out;
}

Ring box_ring(const BBox& box) {
  return {box.lo, {box.hi.x, box.lo.y}, box.hi, {box.lo.x, box.hi.y}};
}

}  // namespace laacad::geom
