// Simple polygons (vertex rings) and Sutherland–Hodgman clipping.
//
// A `Ring` is an ordered vertex list; most routines work for both convex and
// non-convex simple rings. Convention: counter-clockwise orientation encloses
// positive area.
#pragma once

#include <optional>
#include <vector>

#include "geometry/halfplane.hpp"
#include "geometry/segment.hpp"
#include "geometry/vec2.hpp"

namespace laacad::geom {

using Ring = std::vector<Vec2>;

/// Axis-aligned bounding box.
struct BBox {
  Vec2 lo{0, 0};
  Vec2 hi{0, 0};

  double width() const { return hi.x - lo.x; }
  double height() const { return hi.y - lo.y; }
  Vec2 center() const { return midpoint(lo, hi); }
  bool contains(Vec2 p, double eps = kEps) const {
    return p.x >= lo.x - eps && p.x <= hi.x + eps && p.y >= lo.y - eps &&
           p.y <= hi.y + eps;
  }
  /// Grow equally on all sides.
  BBox inflated(double margin) const {
    return {{lo.x - margin, lo.y - margin}, {hi.x + margin, hi.y + margin}};
  }
};

/// Signed area (positive for counter-clockwise rings).
double signed_area(const Ring& ring);

/// |signed_area|.
double area(const Ring& ring);

double perimeter(const Ring& ring);

/// Area centroid. Falls back to the vertex mean for (near-)degenerate rings.
Vec2 centroid(const Ring& ring);

/// Reverses orientation in place if the ring is clockwise.
void make_ccw(Ring& ring);

BBox bounding_box(const Ring& ring);

/// Even–odd (crossing number) point-in-polygon test. Points within eps of the
/// boundary count as inside.
bool contains_point(const Ring& ring, Vec2 p, double eps = kEps);

/// Distance from p to the ring's boundary (0 if p lies on it).
double dist_to_boundary(const Ring& ring, Vec2 p);

/// Nearest point on the ring's boundary to p.
Vec2 project_to_boundary(const Ring& ring, Vec2 p);

/// Index of the vertex farthest from p, with its distance. Empty ring yields
/// nullopt.
std::optional<std::pair<std::size_t, double>> farthest_vertex(const Ring& ring,
                                                              Vec2 p);

/// One Sutherland–Hodgman clipping step: the part of `ring` inside `hp`.
/// Exact for a convex subject; for a non-convex subject the result is the
/// standard SH output (correct boundary vertices, possibly with degenerate
/// bridging edges), which is sufficient for the area / extreme-point /
/// enclosing-circle uses in this project.
Ring clip_ring(const Ring& ring, const HalfPlane& hp, double eps = kEps);

/// Allocation-free variant of clip_ring for hot loops: writes the clipped,
/// deduped result into `out` (cleared first; capacity is reused, so a caller
/// ping-ponging two scratch rings performs no heap traffic once warm).
/// `out` must not alias `ring`. Result is element-identical to clip_ring().
void clip_ring_into(const Ring& ring, const HalfPlane& hp, Ring& out,
                    double eps = kEps);

/// Clip an arbitrary subject ring against a convex window ring (CCW):
/// successive `clip_ring` against each window edge.
Ring sutherland_hodgman(const Ring& subject, const Ring& convex_window,
                        double eps = kEps);

/// Remove consecutive duplicate vertices (within eps); drops the ring to
/// empty if fewer than 3 distinct vertices remain.
Ring dedupe_ring(const Ring& ring, double eps = kEps);

/// Regular n-gon circumscribed about the circle (center, radius) — i.e. the
/// polygon CONTAINS the disk — used to approximate disks as convex clip
/// windows without undercutting them.
Ring circumscribed_ngon(Vec2 center, double radius, int n);

/// Regular n-gon inscribed in the circle (vertices on the circle).
Ring inscribed_ngon(Vec2 center, double radius, int n);

/// Axis-aligned rectangle ring (CCW).
Ring box_ring(const BBox& box);

}  // namespace laacad::geom
