#include "geometry/segment.hpp"

#include <algorithm>

namespace laacad::geom {

Vec2 closest_point_on_segment(Vec2 p, Vec2 a, Vec2 b) {
  const Vec2 ab = b - a;
  const double len2 = ab.norm2();
  if (len2 < kEps * kEps) return a;
  double t = dot(p - a, ab) / len2;
  t = std::clamp(t, 0.0, 1.0);
  return a + ab * t;
}

double dist_point_segment(Vec2 p, Vec2 a, Vec2 b) {
  return dist(p, closest_point_on_segment(p, a, b));
}

std::optional<Vec2> line_intersection(Vec2 p, Vec2 pd, Vec2 q, Vec2 qd,
                                      double eps) {
  const double denom = cross(pd, qd);
  if (std::abs(denom) < eps) return std::nullopt;
  const double t = cross(q - p, qd) / denom;
  return p + pd * t;
}

std::optional<Vec2> segment_intersection(Vec2 p1, Vec2 p2, Vec2 q1, Vec2 q2,
                                         double eps) {
  const Vec2 r = p2 - p1, s = q2 - q1;
  const double denom = cross(r, s);
  const Vec2 qp = q1 - p1;
  if (std::abs(denom) < eps) {
    // Parallel. Overlapping-collinear: report an endpoint that lies on the
    // other segment, if any.
    if (std::abs(cross(qp, r)) > eps) return std::nullopt;
    for (Vec2 cand : {q1, q2}) {
      if (dist_point_segment(cand, p1, p2) <= eps) return cand;
    }
    for (Vec2 cand : {p1, p2}) {
      if (dist_point_segment(cand, q1, q2) <= eps) return cand;
    }
    return std::nullopt;
  }
  const double t = cross(qp, s) / denom;
  const double u = cross(qp, r) / denom;
  // Tolerance relative to each segment's own parameterization.
  const double tp = eps / std::max(r.norm(), kEps);
  const double up = eps / std::max(s.norm(), kEps);
  if (t < -tp || t > 1.0 + tp || u < -up || u > 1.0 + up) return std::nullopt;
  return p1 + r * t;
}

}  // namespace laacad::geom
