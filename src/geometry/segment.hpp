// Segment utilities: distances, projections, and intersection tests.
#pragma once

#include <optional>

#include "geometry/vec2.hpp"

namespace laacad::geom {

struct Segment {
  Vec2 a;
  Vec2 b;

  double length() const { return dist(a, b); }
  Vec2 midpoint() const { return geom::midpoint(a, b); }
  Vec2 direction() const { return (b - a).normalized(); }
};

/// Closest point on segment [a,b] to p.
Vec2 closest_point_on_segment(Vec2 p, Vec2 a, Vec2 b);

/// Euclidean distance from p to segment [a,b].
double dist_point_segment(Vec2 p, Vec2 a, Vec2 b);

/// Intersection point of segments [p1,p2] and [q1,q2], if any (touching at an
/// endpoint counts). Collinear-overlap cases return one representative point.
std::optional<Vec2> segment_intersection(Vec2 p1, Vec2 p2, Vec2 q1, Vec2 q2,
                                         double eps = kEps);

/// Intersection of the infinite lines through (p, p+pd) and (q, q+qd);
/// nullopt when parallel within eps.
std::optional<Vec2> line_intersection(Vec2 p, Vec2 pd, Vec2 q, Vec2 qd,
                                      double eps = kEps);

}  // namespace laacad::geom
