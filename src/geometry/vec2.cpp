#include "geometry/vec2.hpp"

#include <ostream>

namespace laacad::geom {

Vec2 Vec2::normalized() const {
  const double n = norm();
  if (n < kEps) return {0.0, 0.0};
  return {x / n, y / n};
}

Vec2 Vec2::rotated(double angle) const {
  const double c = std::cos(angle), s = std::sin(angle);
  return {x * c - y * s, x * s + y * c};
}

int orientation(Vec2 a, Vec2 b, Vec2 c, double eps) {
  const double v = cross(b - a, c - a);
  if (v > eps) return 1;
  if (v < -eps) return -1;
  return 0;
}

bool almost_equal(Vec2 a, Vec2 b, double eps) {
  return std::abs(a.x - b.x) <= eps && std::abs(a.y - b.y) <= eps;
}

std::ostream& operator<<(std::ostream& os, Vec2 v) {
  return os << '(' << v.x << ", " << v.y << ')';
}

}  // namespace laacad::geom
