// 2-D vector type and the basic predicates the rest of the geometry stack
// builds on. Coordinates are metres throughout the project.
#pragma once

#include <cmath>
#include <iosfwd>

namespace laacad::geom {

/// Absolute tolerance (in metres) used by geometric predicates. Domains in
/// this project are at most a few kilometres across, so 1e-9 m leaves ~7
/// decimal digits of headroom above double precision.
inline constexpr double kEps = 1e-9;

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }
  Vec2& operator+=(Vec2 o) { x += o.x; y += o.y; return *this; }
  Vec2& operator-=(Vec2 o) { x -= o.x; y -= o.y; return *this; }
  Vec2& operator*=(double s) { x *= s; y *= s; return *this; }

  constexpr bool operator==(const Vec2&) const = default;

  double norm() const { return std::hypot(x, y); }
  constexpr double norm2() const { return x * x + y * y; }

  /// Unit vector in the same direction; returns (0,0) for the zero vector.
  Vec2 normalized() const;

  /// Counter-clockwise perpendicular (rotate by +90 degrees).
  constexpr Vec2 perp() const { return {-y, x}; }

  /// Rotate by `angle` radians counter-clockwise.
  Vec2 rotated(double angle) const;

  /// Angle of this vector in (-pi, pi], as given by atan2.
  double angle() const { return std::atan2(y, x); }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

constexpr double dot(Vec2 a, Vec2 b) { return a.x * b.x + a.y * b.y; }

/// z-component of the 3-D cross product; positive when b lies counter-
/// clockwise of a.
constexpr double cross(Vec2 a, Vec2 b) { return a.x * b.y - a.y * b.x; }

inline double dist(Vec2 a, Vec2 b) { return (a - b).norm(); }
constexpr double dist2(Vec2 a, Vec2 b) { return (a - b).norm2(); }

/// Linear interpolation a + t (b - a).
constexpr Vec2 lerp(Vec2 a, Vec2 b, double t) { return a + (b - a) * t; }

/// Midpoint of a and b.
constexpr Vec2 midpoint(Vec2 a, Vec2 b) { return (a + b) * 0.5; }

/// Orientation of the ordered triple (a, b, c): +1 for a counter-clockwise
/// turn, -1 for clockwise, 0 for (numerically) collinear.
int orientation(Vec2 a, Vec2 b, Vec2 c, double eps = kEps);

/// True when a and b coincide within `eps`.
bool almost_equal(Vec2 a, Vec2 b, double eps = kEps);

std::ostream& operator<<(std::ostream& os, Vec2 v);

}  // namespace laacad::geom
