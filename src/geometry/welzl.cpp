#include "geometry/welzl.hpp"

#include <algorithm>
#include <random>

namespace laacad::geom {

namespace {

// Containment tolerance for the incremental construction: proportional to
// the circle size so kilometre-scale regions behave like unit-scale ones.
bool inside(const Circle& c, Vec2 p) {
  if (!c.valid()) return false;
  return dist(c.center, p) <= c.radius + 1e-7 * (1.0 + c.radius);
}

Circle from_3_or_best_pair(Vec2 a, Vec2 b, Vec2 c) {
  if (auto circ = circle_from_3(a, b, c)) return *circ;
  // Near-collinear: the MEC of three collinear points is the diameter circle
  // of the farthest pair.
  Circle best = circle_from_2(a, b);
  for (const Circle cand : {circle_from_2(a, c), circle_from_2(b, c)}) {
    if (cand.radius > best.radius) best = cand;
  }
  return best;
}

}  // namespace

Circle min_enclosing_circle(std::vector<Vec2> points) {
  if (points.empty()) return Circle{{0, 0}, -1.0};
  if (points.size() == 1) return Circle{points[0], 0.0};

  // Fixed seed keeps runs reproducible while preserving the expected-linear
  // behaviour of the move-to-front construction.
  std::mt19937_64 gen(0x5eed5eedULL ^ points.size());
  std::shuffle(points.begin(), points.end(), gen);

  Circle c{points[0], 0.0};
  const std::size_t n = points.size();
  for (std::size_t i = 1; i < n; ++i) {
    if (inside(c, points[i])) continue;
    c = Circle{points[i], 0.0};
    for (std::size_t j = 0; j < i; ++j) {
      if (inside(c, points[j])) continue;
      c = circle_from_2(points[i], points[j]);
      for (std::size_t l = 0; l < j; ++l) {
        if (inside(c, points[l])) continue;
        c = from_3_or_best_pair(points[i], points[j], points[l]);
      }
    }
  }
  return c;
}

}  // namespace laacad::geom
