// Welzl's minimum enclosing circle [26 in the paper].
//
// LAACAD's motion target is the Chebyshev center of a node's dominating
// region; the paper computes it as the center of the minimum enclosing circle
// of the region's vertices ("we apply Welzl's algorithm ... by taking the
// vertices of the region as the input"). `min_enclosing_circle` is that
// primitive; `chebyshev_center` is the paper-facing alias.
#pragma once

#include <vector>

#include "geometry/circle.hpp"
#include "geometry/vec2.hpp"

namespace laacad::geom {

/// Minimum enclosing circle of a point set (expected O(n), deterministic:
/// the internal shuffle uses a fixed seed). Empty input yields an invalid
/// circle (radius < 0).
Circle min_enclosing_circle(std::vector<Vec2> points);

/// Chebyshev center of the convex hull of `points` (= MEC center), paired
/// with the covering radius. See Definition 2 in the paper.
inline Circle chebyshev_center(std::vector<Vec2> points) {
  return min_enclosing_circle(std::move(points));
}

}  // namespace laacad::geom
