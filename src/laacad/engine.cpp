#include "laacad/engine.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "obs/trace.hpp"

namespace laacad::core {

using geom::Vec2;

void RoundSeries::add(const RoundMetrics& m) {
  ++rounds;
  travel += m.max_move;
  max_circumradius.add(m.max_circumradius);
  max_move.add(m.max_move);
  moved.add(static_cast<double>(m.moved));
  comm.merge(m.comm);
  last = m;
}

Engine::Engine(wsn::Network& net, LaacadConfig cfg)
    : net_(&net), cfg_(std::move(cfg)) {
  // Validate the whole config up front with messages naming the field and
  // its constraint — a bad epsilon or max_rounds silently produced a
  // zero-round "run" before, which looked like instant convergence.
  if (cfg_.k <= 0)
    throw std::invalid_argument("LaacadConfig: k must be >= 1, got " +
                                std::to_string(cfg_.k));
  if (net.size() < cfg_.k)
    throw std::invalid_argument(
        "LaacadConfig: need at least k nodes for k-coverage (k=" +
        std::to_string(cfg_.k) + ", nodes=" + std::to_string(net.size()) +
        ")");
  if (cfg_.alpha <= 0.0 || cfg_.alpha > 1.0)
    throw std::invalid_argument("LaacadConfig: alpha must be in (0, 1], got " +
                                std::to_string(cfg_.alpha));
  if (cfg_.epsilon <= 0.0)
    throw std::invalid_argument("LaacadConfig: epsilon must be > 0, got " +
                                std::to_string(cfg_.epsilon));
  if (cfg_.max_rounds <= 0)
    throw std::invalid_argument("LaacadConfig: max_rounds must be >= 1, got " +
                                std::to_string(cfg_.max_rounds));
  if (cfg_.num_threads < 0)
    throw std::invalid_argument(
        "LaacadConfig: num_threads must be >= 0 (0 = hardware), got " +
        std::to_string(cfg_.num_threads));
  if (cfg_.provider_auto_threshold < 1)
    throw std::invalid_argument(
        "LaacadConfig: provider_auto_threshold must be >= 1, got " +
        std::to_string(cfg_.provider_auto_threshold));
  if (cfg_.provider) {
    provider_ = cfg_.provider;
  } else if (net.size() > cfg_.provider_auto_threshold) {
    // Past the threshold the exact global snapshot is the wrong tool (and
    // GlobalRegionProvider refuses outright at kMaxSites): default to the
    // localized Algorithm 2, whose per-round cost is O(n · neighborhood).
    provider_ = make_localized_provider(cfg_.localized, cfg_.seed);
  } else {
    provider_ = make_global_provider(cfg_.adaptive);
  }
  if (cfg_.num_threads != 1)
    pool_ = std::make_unique<common::ThreadPool>(cfg_.num_threads);
}

void Engine::begin_phase() {
  if (net_->size() < cfg_.k)
    throw std::invalid_argument(
        "Engine::begin_phase: network dropped below k nodes (k=" +
        std::to_string(cfg_.k) + ", nodes=" + std::to_string(net_->size()) +
        ")");
  round_ = 0;  // epoch_ deliberately keeps counting across phases
}

void Engine::snapshot_round() {
  provider_->begin_round(*net_, cfg_.k, epoch_++, pool_.get());
}

namespace {

/// What a round keeps of one node's dominating region: a few doubles, not
/// the polygon soup. Computed on the worker that built the region so the
/// cells can be freed immediately — this is what keeps a round's footprint
/// O(n) instead of O(n · region complexity).
struct NodeRound {
  Vec2 target{};
  double cheb_radius = 0.0;
  double hat_radius = 0.0;
  bool has_target = false;
};

}  // namespace

RoundMetrics Engine::step() {
  RoundMetrics m;
  m.round = ++round_;
  obs::ScopedSpan round_span("round", m.round);

  // Serial snapshot phase, then the embarrassingly parallel per-node phase.
  // Each slot of `rounds`/`stats` is written by exactly one index, so the
  // contents are independent of the chunk schedule; the reductions below
  // walk them in node order, making metrics bit-identical for every thread
  // count. Providers that query the network's spatial index warm it during
  // begin_round (and Network::grid() is safe under concurrent readers
  // regardless). The "grid_rebuild" span inside the providers covers the
  // index rebuild; this one covers the full snapshot.
  snapshot_round();
  const int n = net_->size();
  std::vector<NodeRound> rounds(static_cast<std::size_t>(n));
  std::vector<wsn::CommStats> stats(static_cast<std::size_t>(n));
  {
    obs::ScopedSpan s("region_fanout");
    common::parallel_for(pool_.get(), n, [&](int i) {
      RegionOutput out = provider_->compute(i);
      stats[static_cast<std::size_t>(i)] = out.comm;
      const DominatingRegion region(out.cells, net_->domain());
      NodeRound& r = rounds[static_cast<std::size_t>(i)];
      if (region.empty()) return;  // no feasible region: hold position
      const geom::Circle cheb = region.chebyshev();
      if (!cheb.valid()) return;
      r.target = cheb.center;
      r.cheb_radius = cheb.radius;
      r.hat_radius = region.max_dist_from(net_->position(i));
      r.has_target = true;
    });
  }

  {
    obs::ScopedSpan s("comm_gather");
    for (int i = 0; i < n; ++i)
      m.comm.merge(stats[static_cast<std::size_t>(i)]);
  }

  {
    obs::ScopedSpan s("targets");
    m.min_circumradius = std::numeric_limits<double>::infinity();
    for (int i = 0; i < n; ++i) {
      const NodeRound& r = rounds[static_cast<std::size_t>(i)];
      if (!r.has_target) continue;
      m.max_circumradius = std::max(m.max_circumradius, r.cheb_radius);
      m.min_circumradius = std::min(m.min_circumradius, r.cheb_radius);
      m.max_hat_radius = std::max(m.max_hat_radius, r.hat_radius);
    }
    if (m.min_circumradius == std::numeric_limits<double>::infinity())
      m.min_circumradius = 0.0;
  }

  // Synchronized position update (Algorithm 1 lines 4-6).
  obs::ScopedSpan move_span("movement");
  for (int i = 0; i < n; ++i) {
    const NodeRound& r = rounds[static_cast<std::size_t>(i)];
    if (!r.has_target) continue;
    const Vec2 ui = net_->position(i);
    const Vec2 ci = r.target;
    const double d = geom::dist(ui, ci);
    if (d <= cfg_.epsilon) continue;
    net_->set_position(i, ui + (ci - ui) * cfg_.alpha);
    // Convergence counts *actual* displacement: a node whose target sits
    // inside an obstacle is projected back and may be pinned in place —
    // that is a fixed point, not ongoing motion.
    const double actual = geom::dist(ui, net_->position(i));
    m.max_move = std::max(m.max_move, actual);
    if (actual > std::max(1e-6, 0.05 * cfg_.epsilon)) ++m.moved;
  }
  return m;
}

RunResult Engine::run() {
  RunResult result;
  while (round_ < cfg_.max_rounds) {
    RoundMetrics m = step();
    const bool done = (m.moved == 0);
    result.series.add(m);
    if (cfg_.on_round) cfg_.on_round(m);
    if (cfg_.retain_history) result.history.push_back(std::move(m));
    if (done) {
      result.converged = true;
      break;
    }
  }
  result.rounds = round_;
  finalize();

  double rmax = 0.0, rmin = std::numeric_limits<double>::infinity();
  for (const double r : net_->sensing_ranges()) {
    rmax = std::max(rmax, r);
    rmin = std::min(rmin, r);
  }
  result.final_max_range = rmax;
  result.final_min_range =
      rmin == std::numeric_limits<double>::infinity() ? 0.0 : rmin;
  result.load = wsn::load_report(*net_);
  return result;
}

void Engine::finalize() {
  snapshot_round();
  const int n = net_->size();
  // Same reduce-on-the-worker shape as step(): regions are distilled to one
  // double each and discarded; the serial pass only writes the ranges back.
  std::vector<double> ranges(static_cast<std::size_t>(n), 0.0);
  common::parallel_for(pool_.get(), n, [&](int i) {
    RegionOutput out = provider_->compute(i);
    const DominatingRegion region(out.cells, net_->domain());
    if (!region.empty())
      ranges[static_cast<std::size_t>(i)] =
          region.max_dist_from(net_->position(i));
  });
  for (int i = 0; i < n; ++i)
    net_->set_sensing_range(i, ranges[static_cast<std::size_t>(i)]);
}

DominatingRegion Engine::region_of(wsn::NodeId i) {
  // One snapshot, one node — not the full-network pass this used to be.
  snapshot_round();
  RegionOutput out = provider_->compute(i);
  return DominatingRegion(out.cells, net_->domain());
}

}  // namespace laacad::core
