#include "laacad/engine.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace laacad::core {

using geom::Vec2;

Engine::Engine(wsn::Network& net, LaacadConfig cfg)
    : net_(&net), cfg_(std::move(cfg)) {
  // Validate the whole config up front with messages naming the field and
  // its constraint — a bad epsilon or max_rounds silently produced a
  // zero-round "run" before, which looked like instant convergence.
  if (cfg_.k <= 0)
    throw std::invalid_argument("LaacadConfig: k must be >= 1, got " +
                                std::to_string(cfg_.k));
  if (net.size() < cfg_.k)
    throw std::invalid_argument(
        "LaacadConfig: need at least k nodes for k-coverage (k=" +
        std::to_string(cfg_.k) + ", nodes=" + std::to_string(net.size()) +
        ")");
  if (cfg_.alpha <= 0.0 || cfg_.alpha > 1.0)
    throw std::invalid_argument("LaacadConfig: alpha must be in (0, 1], got " +
                                std::to_string(cfg_.alpha));
  if (cfg_.epsilon <= 0.0)
    throw std::invalid_argument("LaacadConfig: epsilon must be > 0, got " +
                                std::to_string(cfg_.epsilon));
  if (cfg_.max_rounds <= 0)
    throw std::invalid_argument("LaacadConfig: max_rounds must be >= 1, got " +
                                std::to_string(cfg_.max_rounds));
  if (cfg_.num_threads < 0)
    throw std::invalid_argument(
        "LaacadConfig: num_threads must be >= 0 (0 = hardware), got " +
        std::to_string(cfg_.num_threads));
  provider_ = cfg_.provider ? cfg_.provider
                            : make_global_provider(cfg_.adaptive);
  if (cfg_.num_threads != 1)
    pool_ = std::make_unique<common::ThreadPool>(cfg_.num_threads);
}

void Engine::begin_phase() {
  if (net_->size() < cfg_.k)
    throw std::invalid_argument(
        "Engine::begin_phase: network dropped below k nodes (k=" +
        std::to_string(cfg_.k) + ", nodes=" + std::to_string(net_->size()) +
        ")");
  round_ = 0;  // epoch_ deliberately keeps counting across phases
}

std::vector<DominatingRegion> Engine::compute_all_regions(
    RoundMetrics* metrics) {
  const int n = net_->size();

  // Serial snapshot phase, then the embarrassingly parallel per-node phase.
  // Each slot of `regions`/`stats` is written by exactly one index, so the
  // contents are independent of the chunk schedule; the metric reduction
  // below walks them in node order. Providers that query the network's
  // spatial index warm it during begin_round (and Network::grid() is safe
  // under concurrent readers regardless).
  provider_->begin_round(*net_, cfg_.k, epoch_++);

  std::vector<DominatingRegion> regions(static_cast<std::size_t>(n));
  std::vector<wsn::CommStats> stats(static_cast<std::size_t>(n));
  common::parallel_for(pool_.get(), n, [&](int i) {
    RegionOutput out = provider_->compute(i);
    regions[static_cast<std::size_t>(i)] =
        DominatingRegion(out.cells, net_->domain());
    stats[static_cast<std::size_t>(i)] = out.comm;
  });

  if (metrics) {
    for (int i = 0; i < n; ++i)
      metrics->comm.merge(stats[static_cast<std::size_t>(i)]);
  }
  return regions;
}

RoundMetrics Engine::step() {
  RoundMetrics m;
  m.round = ++round_;

  const auto regions = compute_all_regions(&m);
  const int n = net_->size();

  m.min_circumradius = std::numeric_limits<double>::infinity();
  std::vector<Vec2> targets(static_cast<std::size_t>(n));
  std::vector<bool> has_target(static_cast<std::size_t>(n), false);
  for (int i = 0; i < n; ++i) {
    const DominatingRegion& region = regions[static_cast<std::size_t>(i)];
    if (region.empty()) continue;  // no feasible region: hold position
    const geom::Circle cheb = region.chebyshev();
    if (!cheb.valid()) continue;
    targets[static_cast<std::size_t>(i)] = cheb.center;
    has_target[static_cast<std::size_t>(i)] = true;
    m.max_circumradius = std::max(m.max_circumradius, cheb.radius);
    m.min_circumradius = std::min(m.min_circumradius, cheb.radius);
    m.max_hat_radius =
        std::max(m.max_hat_radius, region.max_dist_from(net_->position(i)));
  }
  if (m.min_circumradius == std::numeric_limits<double>::infinity())
    m.min_circumradius = 0.0;

  // Synchronized position update (Algorithm 1 lines 4-6).
  for (int i = 0; i < n; ++i) {
    if (!has_target[static_cast<std::size_t>(i)]) continue;
    const Vec2 ui = net_->position(i);
    const Vec2 ci = targets[static_cast<std::size_t>(i)];
    const double d = geom::dist(ui, ci);
    if (d <= cfg_.epsilon) continue;
    net_->set_position(i, ui + (ci - ui) * cfg_.alpha);
    // Convergence counts *actual* displacement: a node whose target sits
    // inside an obstacle is projected back and may be pinned in place —
    // that is a fixed point, not ongoing motion.
    const double actual = geom::dist(ui, net_->position(i));
    m.max_move = std::max(m.max_move, actual);
    if (actual > std::max(1e-6, 0.05 * cfg_.epsilon)) ++m.moved;
  }
  return m;
}

RunResult Engine::run() {
  RunResult result;
  while (round_ < cfg_.max_rounds) {
    RoundMetrics m = step();
    const bool done = (m.moved == 0);
    result.history.push_back(std::move(m));
    if (done) {
      result.converged = true;
      break;
    }
  }
  result.rounds = round_;
  finalize();

  double rmax = 0.0, rmin = std::numeric_limits<double>::infinity();
  for (const wsn::Node& node : net_->nodes()) {
    rmax = std::max(rmax, node.sensing_range);
    rmin = std::min(rmin, node.sensing_range);
  }
  result.final_max_range = rmax;
  result.final_min_range =
      rmin == std::numeric_limits<double>::infinity() ? 0.0 : rmin;
  result.load = wsn::load_report(*net_);
  return result;
}

void Engine::finalize() {
  const auto regions = compute_all_regions(nullptr);
  for (int i = 0; i < net_->size(); ++i) {
    const DominatingRegion& region = regions[static_cast<std::size_t>(i)];
    const double r =
        region.empty() ? 0.0 : region.max_dist_from(net_->position(i));
    net_->set_sensing_range(i, r);
  }
}

DominatingRegion Engine::region_of(wsn::NodeId i) {
  auto regions = compute_all_regions(nullptr);
  return regions[static_cast<std::size_t>(i)];
}

}  // namespace laacad::core
