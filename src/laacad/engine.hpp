// LAACAD — Algorithm 1 of the paper.
//
// Every round, synchronously for all nodes: compute the dominating region
// V^k_{n_i} (through a RegionProvider — exact adaptive Lemma-1 solver or the
// hop-faithful localized Algorithm 2), find its Chebyshev center c_i, and
// move u_i <- u_i + alpha (c_i - u_i) unless already within the stopping
// tolerance epsilon. On termination each node tunes its sensing range to the
// circumradius of its dominating region about its final position, which
// guarantees k-coverage of the whole target area (every point lies in the
// dominating region of each of its k nearest nodes, Proposition 1).
//
// The per-node region computations are independent (the paper's nodes run
// them literally in parallel), so the engine fans them across a
// common::ThreadPool and reduces the results in fixed node order. Round
// metrics and trajectories are bit-identical for every num_threads value.
//
// Memory is O(n), independent of round count and of region complexity: each
// per-node region is reduced to a few doubles (target, radii) on the worker
// that computed it and the polygon soup discarded, and per-round metrics
// stream into constant-size accumulators (RunResult::series). The full
// RoundMetrics history is opt-in via LaacadConfig::retain_history.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "laacad/localized.hpp"
#include "laacad/region.hpp"
#include "laacad/region_provider.hpp"
#include "voronoi/adaptive.hpp"
#include "wsn/energy.hpp"
#include "wsn/network.hpp"

namespace laacad::core {

struct RoundMetrics;

struct LaacadConfig {
  int k = 1;               ///< coverage degree
  double alpha = 1.0;      ///< motion step size, (0, 1]
  double epsilon = 0.5;    ///< stopping tolerance (metres)
  int max_rounds = 400;
  double tau_ms = 100.0;   ///< nominal round period (reporting only)
  /// Threads for the per-round region fan-out: 1 = serial (default),
  /// 0 = hardware concurrency, N = exactly N. Results are identical for
  /// every value.
  int num_threads = 1;
  /// Region backend. Null selects by network size: the exact global solver
  /// up to provider_auto_threshold nodes, the localized Algorithm 2 above it
  /// (the global snapshot path is the wrong tool at that scale — see
  /// GlobalRegionProvider::kMaxSites). To force a backend set
  ///   cfg.provider = make_global_provider(cfg.adaptive);       // or
  ///   cfg.provider = make_localized_provider(cfg.localized, cfg.seed);
  std::shared_ptr<RegionProvider> provider;
  /// Network size above which a null `provider` selects the localized
  /// backend instead of the global one.
  int provider_auto_threshold = 20000;
  /// Keep the full per-round RoundMetrics history in RunResult::history.
  /// Off by default: long runs at large n made the engine's memory
  /// O(n + rounds) for data most callers never read — the streaming
  /// RunResult::series carries the per-round aggregates either way.
  bool retain_history = false;
  vor::AdaptiveConfig adaptive;   ///< global-provider tuning
  LocalizedConfig localized;      ///< localized-provider tuning
  std::uint64_t seed = 1;         ///< feeds localization noise simulation
  /// Observability hook: invoked by run() after every round with that
  /// round's metrics (heartbeat emitters, progress bars). Must not mutate
  /// the network; never affects results or serialized output.
  std::function<void(const RoundMetrics&)> on_round;
};

/// Per-round aggregates; mirrors the series plotted in Fig. 6.
struct RoundMetrics {
  int round = 0;
  double max_circumradius = 0.0;  ///< max_i of the Chebyshev radius of V^k_i
  double min_circumradius = 0.0;
  double max_hat_radius = 0.0;    ///< max_i max_{v in V^k_i} |v - u_i| (R̂^l)
  double max_move = 0.0;          ///< largest node displacement this round
  int moved = 0;                  ///< nodes that moved more than epsilon
  wsn::CommStats comm;            ///< localized provider message accounting
};

/// Constant-memory digest of the whole round sequence: every field is a
/// running accumulator updated once per round, so a million-round run costs
/// the same memory as a ten-round one. `last` is the final round's full
/// RoundMetrics — the convergence tail most consumers actually inspect.
struct RoundSeries {
  int rounds = 0;
  double travel = 0.0;       ///< sum over rounds of max_move (Fig. 6 travel)
  Summary max_circumradius;  ///< per-round max circumradius series
  Summary max_move;          ///< per-round max displacement series
  Summary moved;             ///< per-round moved-node counts
  RoundMetrics last;         ///< metrics of the most recent round
  wsn::CommStats comm;       ///< message totals across all rounds

  void add(const RoundMetrics& m);
};

struct RunResult {
  /// Full per-round record; filled only when LaacadConfig::retain_history
  /// is set (empty otherwise — use `series` for aggregates).
  std::vector<RoundMetrics> history;
  RoundSeries series;  ///< always populated, O(1) memory
  int rounds = 0;
  bool converged = false;
  double final_max_range = 0.0;  ///< R* = max_i r*_i
  double final_min_range = 0.0;
  wsn::LoadReport load;          ///< energy loads at termination
};

class Engine {
 public:
  /// The engine mutates `net` (positions and, at termination, sensing
  /// ranges). The network must have at least cfg.k nodes.
  Engine(wsn::Network& net, LaacadConfig cfg);

  /// Execute one synchronized round; returns its metrics. Does not assign
  /// sensing ranges (call finalize(), or use run()).
  RoundMetrics step();

  /// Rounds until no node moves more than epsilon, or max_rounds. Assigns
  /// final sensing ranges and returns the full record.
  RunResult run();

  /// Re-arm the convergence loop after an external network change (node
  /// failures/arrivals, a domain swap): resets the round counter so run()
  /// gets a fresh max_rounds allowance and re-checks that the mutated
  /// network still has at least k nodes. Providers re-snapshot every round
  /// and the epoch counter keeps increasing monotonically, so randomized
  /// providers never replay a phase's noise streams. Used by the scenario
  /// engine to drive redeployment phases between disruptions.
  void begin_phase();

  /// Recompute regions at the current positions and set each node's sensing
  /// range to its region circumradius about its position.
  void finalize();

  /// Dominating region of node i at the current positions (for inspection,
  /// visualization, and tests). Computes node i's region only — not a
  /// full-network pass.
  DominatingRegion region_of(wsn::NodeId i);

  const LaacadConfig& config() const { return cfg_; }
  const RegionProvider& provider() const { return *provider_; }
  /// Rounds executed in the current phase (since construction or the last
  /// begin_phase()).
  int rounds_executed() const { return round_; }

 private:
  /// Serial snapshot phase: hand the network (and the round pool) to the
  /// provider and advance the epoch.
  void snapshot_round();

  wsn::Network* net_;
  LaacadConfig cfg_;
  std::shared_ptr<RegionProvider> provider_;
  std::unique_ptr<common::ThreadPool> pool_;  ///< null when serial
  std::uint64_t epoch_ = 0;  ///< counts provider snapshots, not rounds
  int round_ = 0;
};

}  // namespace laacad::core
