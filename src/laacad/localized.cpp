#include "laacad/localized.hpp"

#include <algorithm>
#include <cmath>

#include "geometry/convex.hpp"
#include "voronoi/sites.hpp"

namespace laacad::core {

using geom::Ring;
using geom::Vec2;

namespace {

Ring ring_window(Vec2 center, double radius, const geom::BBox& bbox,
                 int sides) {
  Ring win = geom::circumscribed_ngon(center, radius, sides);
  std::vector<geom::HalfPlane> walls = {
      {{bbox.hi.x, 0}, {1, 0}},
      {{bbox.lo.x, 0}, {-1, 0}},
      {{0, bbox.hi.y}, {0, 1}},
      {{0, bbox.lo.y}, {0, -1}},
  };
  return geom::intersect_halfplanes(std::move(win), walls);
}

}  // namespace

LocalizedRegion localized_region(const wsn::CommModel& comm, wsn::NodeId i,
                                 int k, const wsn::BoundaryInfo& boundary,
                                 const LocalizedConfig& cfg,
                                 wsn::CommStats* stats, Rng& rng) {
  LocalizedRegion out;
  const wsn::Network& net = comm.network();
  const wsn::Domain& domain = net.domain();
  const Vec2 ui = net.position(i);
  const double gamma = net.gamma();
  const double reach = cfg.network_reach_factor * gamma;

  // Compute the region from the currently gathered set, clipped to the
  // searching ring and the area bounding box.
  const geom::BBox bbox = domain.bbox().inflated(1.0);
  std::vector<int> gathered;
  auto compute_cells = [&](double rho) {
    const auto rel = wsn::local_frame(net, i, gathered, cfg.frame, rng);
    std::vector<Vec2> sites;
    sites.reserve(gathered.size() + 1);
    sites.push_back(ui);
    for (Vec2 r : rel) sites.push_back(ui + r);
    sites = vor::separate_sites(std::move(sites));
    // Fewer than k sites in reach: every reachable point is dominated, so
    // the region is the whole window (|S| <= k-1 trivially).
    const int k_eff = std::min<int>(k, static_cast<int>(sites.size()));
    const Ring window =
        ring_window(ui, rho / 2.0, bbox, cfg.disk_ngon_sides);
    return vor::dominating_region_cells(sites, 0, k_eff, window);
  };

  double rho = 0.0;
  int hops = 0;
  std::vector<vor::OrderKCell> cells;
  while (true) {
    rho += gamma;
    ++hops;
    if (hops > cfg.max_hops) {
      // Searching capped: the ring itself becomes part of the region
      // boundary (Fig. 3) — typical for boundary nodes of a deployment
      // that has not yet expanded over the whole area.
      rho -= gamma;
      --hops;
      out.capped = true;
      if (rho > 0.0) cells = compute_cells(rho);
      break;
    }
    gathered = comm.gather(
        i, rho, cfg.ideal_gather ? -1 : hops + cfg.hop_slack, stats);

    // Line 5-8 of Algorithm 2: is any point of the rho/2-circle still
    // dominated by n_i?
    bool enclosed = true;
    for (int s = 0; s < cfg.arc_samples; ++s) {
      const double ang = 2.0 * M_PI * s / cfg.arc_samples;
      const Vec2 v = ui + Vec2{std::cos(ang), std::sin(ang)} * (rho / 2.0);
      if (!domain.contains(v)) continue;  // A's boundary: natural boundary
      if (boundary.network_boundary) {
        // Restrict to the arc inside the region the network occupies.
        bool inside_net = geom::dist(v, ui) <= reach;
        for (int j : gathered) {
          if (inside_net) break;
          inside_net = geom::dist(v, net.position(j)) <= reach;
        }
        if (!inside_net) continue;
      }
      int closer = 0;
      const double di = geom::dist(ui, v);
      for (int j : gathered) {
        if (geom::dist(net.position(j), v) < di) ++closer;
      }
      if (closer < k) {  // v still dominated by n_i: expand further
        enclosed = false;
        break;
      }
    }
    if (!enclosed) continue;

    // The sampled certificate can miss a sliver of the region slipping
    // through an arc gap (e.g. near a domain corner), so verify it
    // geometrically: if the computed region touches the rho/2 ring, the
    // ring is still too tight — expand once more (same Lemma-1 touch test
    // as the global adaptive solver).
    cells = compute_cells(rho);
    double maxd = 0.0;
    for (const auto& c : cells)
      for (Vec2 v : c.poly) maxd = std::max(maxd, geom::dist(ui, v));
    if (maxd < 0.5 * rho * (1.0 - 1e-9)) break;
  }
  out.rho = rho;
  out.hops = hops;

  for (vor::OrderKCell& c : cells) {
    for (int& g : c.gens)
      g = (g == 0) ? static_cast<int>(i)
                   : gathered[static_cast<std::size_t>(g) - 1];
    std::sort(c.gens.begin(), c.gens.end());
  }
  out.cells = std::move(cells);
  return out;
}

}  // namespace laacad::core
