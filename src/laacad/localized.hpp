// Algorithm 2: localized dominating-region computation by expanding rings.
//
// Each ring step widens the gather radius rho by one transmission range
// gamma (one extra hop of flooding) and re-checks whether the circle of
// radius rho/2 around the node is still partly dominated by it: sampled
// circle points v where fewer than k gathered nodes are closer than the node
// itself (|Ŝ^k_{n_i}(v)| < k, line 7 of the paper's pseudo-code) force
// another expansion. Boundary nodes — flagged by the boundary-detection
// service — restrict the check to the arc inside the target area and inside
// the region currently occupied by the network, and use the searching ring
// itself as part of their region boundary (Fig. 3), which is what pushes an
// initially clustered deployment outward.
#pragma once

#include "common/rng.hpp"
#include "voronoi/orderk.hpp"
#include "wsn/boundary.hpp"
#include "wsn/comm.hpp"
#include "wsn/localization.hpp"

namespace laacad::core {

struct LocalizedConfig {
  int max_hops = 10;       ///< hard cap on ring expansion (hops)
  int arc_samples = 72;    ///< sample density of the rho/2-circle check
  int disk_ngon_sides = 48;
  /// Algorithm 2 assumes every node within Euclidean distance rho is in
  /// N(n_i, rho). With ideal_gather (default, the paper's semantics) the
  /// flooding TTL is unbounded, so Euclidean-close nodes are found even
  /// when the radio path detours. Disable to study hop-realistic flooding
  /// with ceil(rho/gamma) + hop_slack TTL.
  bool ideal_gather = true;
  int hop_slack = 2;
  /// A circle sample counts as "inside the network" when within this many
  /// transmission ranges of a gathered node (coverage proxy for the
  /// boundary-node arc restriction).
  double network_reach_factor = 1.25;
  wsn::BoundaryConfig boundary;
  wsn::LocalFrameConfig frame;  ///< localization noise knobs
};

struct LocalizedRegion {
  std::vector<vor::OrderKCell> cells;  ///< generator ids are global node ids
  double rho = 0.0;                    ///< final ring radius
  int hops = 0;                        ///< hops the ring required
  bool capped = false;                 ///< stopped by max_hops
};

/// Compute node i's dominating region using only multi-hop-gatherable
/// information. `boundary` is the service verdict for node i this round.
/// Message costs are accumulated into `stats` (may be null). `rng` feeds the
/// simulated localization noise.
LocalizedRegion localized_region(const wsn::CommModel& comm, wsn::NodeId i,
                                 int k, const wsn::BoundaryInfo& boundary,
                                 const LocalizedConfig& cfg,
                                 wsn::CommStats* stats, Rng& rng);

}  // namespace laacad::core
