#include "laacad/min_node.hpp"

#include <algorithm>
#include <cmath>

#include "wsn/deployment.hpp"

namespace laacad::core {

using geom::Vec2;

namespace {

// One full LAACAD optimization from the given positions; returns the
// converged network state.
struct InnerRun {
  double max_range = 0.0;
  std::vector<Vec2> positions;
  std::vector<double> ranges;
};

InnerRun run_laacad(const wsn::Domain& domain, std::vector<Vec2> positions,
                    const LaacadConfig& cfg) {
  // gamma is irrelevant for the global backend; any positive value works.
  wsn::Network net(&domain, std::move(positions), 50.0);
  Engine engine(net, cfg);
  const RunResult res = engine.run();
  InnerRun out;
  out.max_range = res.final_max_range;
  out.positions = net.positions();
  out.ranges.reserve(static_cast<std::size_t>(net.size()));
  for (const wsn::Node& n : net.nodes()) out.ranges.push_back(n.sensing_range);
  return out;
}

// Index of the node with the largest / smallest sensing range.
std::size_t argmax(const std::vector<double>& xs) {
  return static_cast<std::size_t>(
      std::max_element(xs.begin(), xs.end()) - xs.begin());
}
std::size_t argmin(const std::vector<double>& xs) {
  return static_cast<std::size_t>(
      std::min_element(xs.begin(), xs.end()) - xs.begin());
}

}  // namespace

MinNodeResult plan_min_nodes(const wsn::Domain& domain, int k, double r_s,
                             int initial_n, Rng& rng,
                             const MinNodeConfig& cfg) {
  MinNodeResult result;
  LaacadConfig lcfg = cfg.laacad;
  lcfg.k = k;

  int n = initial_n;
  if (n <= 0) {
    // Load-balance estimate: each node carries ~ k|A|/N = pi r_s^2.
    n = static_cast<int>(
        std::ceil(1.15 * k * domain.area() / (M_PI * r_s * r_s)));
  }
  n = std::max(n, k);

  std::vector<Vec2> positions = wsn::deploy_uniform(domain, n, rng);
  InnerRun run = run_laacad(domain, positions, lcfg);
  ++result.laacad_runs;

  for (int iter = 0; iter < cfg.max_outer_iters; ++iter) {
    if (run.max_range > r_s) {
      if (result.feasible) break;  // shrunk one node too far: done
      // Infeasible: reinforce the most loaded spot (co-locating near the
      // max-range node splits its dominating region most effectively).
      const int add = std::max(
          1, static_cast<int>(std::lround(cfg.add_fraction *
                                          static_cast<double>(
                                              run.positions.size()))));
      const Vec2 hot = run.positions[argmax(run.ranges)];
      for (int a = 0; a < add; ++a) {
        run.positions.push_back(domain.project_inside(
            hot + Vec2{rng.uniform(-r_s, r_s), rng.uniform(-r_s, r_s)} * 0.5));
      }
    } else {
      // Feasible: record, then try one node fewer (drop the least loaded).
      result.feasible = true;
      result.nodes = static_cast<int>(run.positions.size());
      result.achieved_range = run.max_range;
      result.positions = run.positions;
      if (run.positions.size() <= static_cast<std::size_t>(k)) break;
      run.positions.erase(run.positions.begin() +
                          static_cast<std::ptrdiff_t>(argmin(run.ranges)));
    }
    run = run_laacad(domain, run.positions, lcfg);
    ++result.laacad_runs;
  }
  if (!result.feasible) {
    result.nodes = static_cast<int>(run.positions.size());
    result.achieved_range = run.max_range;
    result.positions = run.positions;
  }
  return result;
}

}  // namespace laacad::core
