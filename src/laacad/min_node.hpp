// Min-node k-coverage adaptation (Sec. IV-C of the paper).
//
// The min-node problem fixes a common sensing range r_s and asks for the
// fewest nodes achieving k-coverage. The paper's reduction: run LAACAD, then
// add nodes while R* > r_s and remove nodes while R* < r_s, stopping at the
// smallest node count with R* <= r_s. Node positions warm-start between
// runs, so each adjustment converges in a few rounds.
#pragma once

#include "common/rng.hpp"
#include "laacad/engine.hpp"

namespace laacad::core {

struct MinNodeConfig {
  /// Maximum add/remove adjustments before giving up.
  int max_outer_iters = 60;
  /// Fraction of the current population added per infeasible step (at least
  /// one node).
  double add_fraction = 0.05;
  /// LAACAD settings used for every inner run.
  LaacadConfig laacad;
};

struct MinNodeResult {
  int nodes = 0;                 ///< smallest feasible node count found
  double achieved_range = 0.0;   ///< R* of the accepted deployment
  bool feasible = false;         ///< a deployment with R* <= r_s was found
  int laacad_runs = 0;           ///< inner optimizations performed
  std::vector<geom::Vec2> positions;  ///< accepted deployment
};

/// Smallest node count (and deployment) achieving k-coverage of `domain`
/// with common sensing range `r_s`. `initial_n` <= 0 derives a starting
/// population from the load-balance estimate N ~ k|A| / (pi r_s^2).
MinNodeResult plan_min_nodes(const wsn::Domain& domain, int k, double r_s,
                             int initial_n, Rng& rng,
                             const MinNodeConfig& cfg = {});

}  // namespace laacad::core
