#include "laacad/region.hpp"

#include <algorithm>

namespace laacad::core {

using geom::Ring;
using geom::Vec2;

DominatingRegion::DominatingRegion(const std::vector<vor::OrderKCell>& cells,
                                   const wsn::Domain& domain) {
  pieces_.reserve(cells.size());
  for (const vor::OrderKCell& cell : cells) {
    wsn::ClippedRegion clipped = domain.clip_cell(cell.poly);
    if (clipped.empty()) continue;
    area_ += clipped.coverage_area();
    for (Vec2 v : clipped.outer) vertices_.push_back(v);
    pieces_.push_back(std::move(clipped.outer));
  }
}

double DominatingRegion::max_dist_from(Vec2 u) const {
  double m = 0.0;
  for (Vec2 v : vertices_) m = std::max(m, geom::dist(u, v));
  return m;
}

geom::Circle DominatingRegion::chebyshev() const {
  return geom::min_enclosing_circle(vertices_);
}

geom::Vec2 DominatingRegion::centroid() const {
  double total = 0.0;
  Vec2 acc{0, 0};
  for (const Ring& piece : pieces_) {
    const double a = geom::area(piece);
    acc += geom::centroid(piece) * a;
    total += a;
  }
  if (total <= 0.0) return acc;
  return acc / total;
}

bool DominatingRegion::contains(Vec2 v, double eps) const {
  for (const Ring& piece : pieces_) {
    if (geom::contains_point(piece, v, eps)) return true;
  }
  return false;
}

}  // namespace laacad::core
