// Dominating region of a node, clipped to the target area: the object each
// LAACAD round computes per node. Wraps the convex Voronoi pieces with the
// geometric queries Algorithm 1 needs — Chebyshev center (Welzl over the
// region's vertices, exactly as the paper prescribes), circumradius about
// the node's current position, and area accounting with obstacle holes
// subtracted.
#pragma once

#include <vector>

#include "geometry/welzl.hpp"
#include "voronoi/orderk.hpp"
#include "wsn/domain.hpp"

namespace laacad::core {

class DominatingRegion {
 public:
  DominatingRegion() = default;

  /// Clip each convex cell to the domain and aggregate. Cells wholly outside
  /// the domain are dropped. Note on holes: region vertices are taken from
  /// the outer-ring clip only; a hole overlapping the region reduces its
  /// `area()` but not its extreme points, so the sensing range derived from
  /// the region can only over-cover (a safe approximation, see DESIGN.md).
  DominatingRegion(const std::vector<vor::OrderKCell>& cells,
                   const wsn::Domain& domain);

  bool empty() const { return pieces_.empty(); }
  const std::vector<geom::Ring>& pieces() const { return pieces_; }
  const std::vector<geom::Vec2>& vertices() const { return vertices_; }

  /// Area requiring coverage (holes subtracted).
  double area() const { return area_; }

  /// Farthest distance from `u` to any point of the region — the sensing
  /// range node at `u` needs to cover it (paper's r_i, and the
  /// \hat{R}^l_i of the convergence proof).
  double max_dist_from(geom::Vec2 u) const;

  /// Chebyshev center and circumradius of the region (Definition 2,
  /// computed per Welzl over the vertices). Invalid circle when empty.
  geom::Circle chebyshev() const;

  /// Area-weighted centroid of the region pieces (holes ignored). Used by
  /// the Lloyd/centroid target-rule ablation; LAACAD itself moves to the
  /// Chebyshev center.
  geom::Vec2 centroid() const;

  /// Point-in-region test (any piece).
  bool contains(geom::Vec2 v, double eps = geom::kEps) const;

 private:
  std::vector<geom::Ring> pieces_;
  std::vector<geom::Vec2> vertices_;
  double area_ = 0.0;
};

}  // namespace laacad::core
