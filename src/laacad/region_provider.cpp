#include "laacad/region_provider.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/trace.hpp"
#include "voronoi/sites.hpp"

namespace laacad::core {

namespace {

// splitmix64-style mix of (seed, epoch, node) into one decorrelated stream
// id. Pure function of its inputs: the noise a node draws in a round does
// not depend on which thread computes it or what other nodes drew.
std::uint64_t node_stream(std::uint64_t seed, std::uint64_t epoch,
                          std::uint64_t node) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (epoch + 1) +
                    0xbf58476d1ce4e5b9ULL * (node + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

// ------------------------------------------------------------------ global

GlobalRegionProvider::GlobalRegionProvider(vor::AdaptiveConfig cfg)
    : cfg_(cfg) {}

void GlobalRegionProvider::begin_round(wsn::Network& net, int k,
                                       std::uint64_t /*epoch*/,
                                       common::ThreadPool* pool) {
  if (net.size() > kMaxSites) {
    throw std::invalid_argument(
        "GlobalRegionProvider: network size " + std::to_string(net.size()) +
        " exceeds the global snapshot cap of " + std::to_string(kMaxSites) +
        " nodes; use make_localized_provider() (backend \"localized\", or "
        "\"auto\" above LaacadConfig::provider_auto_threshold) at this scale");
  }
  k_ = k;
  sites_ = vor::separate_sites(net.positions());
  {
    obs::ScopedSpan span("grid_rebuild", net.size());
    grid_.rebuild(sites_, std::max(net.gamma(), 1.0), pool);
  }
  bbox_ = net.domain().bbox();
}

RegionOutput GlobalRegionProvider::compute(wsn::NodeId i) const {
  RegionOutput out;
  auto res =
      vor::compute_dominating_region(sites_, grid_, i, k_, bbox_, cfg_);
  out.cells = std::move(res.cells);
  return out;
}

// --------------------------------------------------------------- localized

LocalizedRegionProvider::LocalizedRegionProvider(LocalizedConfig cfg,
                                                 std::uint64_t seed)
    : cfg_(cfg), seed_(seed) {}

void LocalizedRegionProvider::begin_round(wsn::Network& net, int k,
                                          std::uint64_t epoch,
                                          common::ThreadPool* pool) {
  k_ = k;
  epoch_ = epoch;
  // Warm the spatial index with the lent pool (bit-identical re-bin for any
  // thread count), then boundary verdicts (they query that index), then the
  // connectivity snapshot the gathers run over.
  {
    obs::ScopedSpan span("grid_rebuild", net.size());
    net.warm_grid(pool);
  }
  boundaries_ = wsn::detect_all_boundaries(net, cfg_.boundary);
  comm_.emplace(net);
}

RegionOutput LocalizedRegionProvider::compute(wsn::NodeId i) const {
  RegionOutput out;
  Rng rng(node_stream(seed_, epoch_, static_cast<std::uint64_t>(i)));
  auto res = localized_region(*comm_, i, k_,
                              boundaries_[static_cast<std::size_t>(i)], cfg_,
                              &out.comm, rng);
  out.cells = std::move(res.cells);
  return out;
}

// ---------------------------------------------------------------- factories

std::shared_ptr<RegionProvider> make_global_provider(vor::AdaptiveConfig cfg) {
  return std::make_shared<GlobalRegionProvider>(cfg);
}

std::shared_ptr<RegionProvider> make_localized_provider(LocalizedConfig cfg,
                                                        std::uint64_t seed) {
  return std::make_shared<LocalizedRegionProvider>(cfg, seed);
}

}  // namespace laacad::core
