// RegionProvider — the seam between Algorithm 1's round loop and the two
// ways a node can learn its dominating region V^k_{n_i}.
//
// A provider runs in two phases per round, mirroring the communication
// structure of the paper: begin_round() is the serial "broadcast" phase
// (snapshot positions, rebuild the connectivity model, refresh boundary
// verdicts), compute(i) is the per-node phase — a pure function of the
// snapshot, safe to call concurrently from any number of threads, which is
// what lets the engine fan the N independent region computations across a
// thread pool with bit-identical results for every thread count.
//
// Implementations:
//   GlobalRegionProvider    — the adaptive exact Lemma-1 solver over a
//                             provider-owned spatial grid (re-binned, not
//                             reallocated, between rounds). The grid is
//                             built once per begin_round() and shared by
//                             every compute(i): it bounds the Lemma-1
//                             gathers, and the order-k kernel underneath
//                             pulls its per-cell candidate lists and probe
//                             queries from a spatial index as well (a
//                             thread-local scratch grid over the gathered
//                             subset), so no per-node computation ever
//                             re-sorts the whole network.
//   LocalizedRegionProvider — Algorithm 2 hop-rings over the multi-hop
//                             communication model, with localization noise
//                             drawn from a per-(epoch, node) stream so the
//                             draw sequence is independent of scheduling.
//                             Each node's sites live in its own noisy local
//                             frame, so a shared per-round kernel grid is
//                             impossible by construction; the kernel's
//                             per-thread scratch index (storage reused
//                             across nodes on a worker) covers it instead.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "laacad/localized.hpp"
#include "voronoi/adaptive.hpp"
#include "wsn/boundary.hpp"
#include "wsn/comm.hpp"
#include "wsn/network.hpp"

namespace laacad::core {

/// What one per-node computation yields: the convex pieces of V^k_{n_i}
/// (generator ids are global node ids) plus the messages it cost.
struct RegionOutput {
  std::vector<vor::OrderKCell> cells;
  wsn::CommStats comm;  ///< zeros for providers that do not message
};

class RegionProvider {
 public:
  virtual ~RegionProvider() = default;

  /// Serial per-round snapshot phase. May mutate the network's per-node
  /// annotations (boundary flags) but not positions. `epoch` is a strictly
  /// increasing call counter supplied by the engine; providers that consume
  /// randomness must derive it from (seed, epoch, node) only, never from a
  /// stream shared across nodes, or parallel rounds lose determinism.
  /// `pool` (possibly null) is the engine's round pool, lent for data-
  /// parallel snapshot work — anything run on it must stay bit-identical
  /// for every thread count (e.g. SpatialGrid::rebuild); it must not leak
  /// past the call.
  virtual void begin_round(wsn::Network& net, int k, std::uint64_t epoch,
                           common::ThreadPool* pool = nullptr) = 0;

  /// Dominating region of node i against the begin_round() snapshot. Must be
  /// a pure function of (snapshot, i): implementations may not touch shared
  /// mutable state, so calls are safe from concurrent threads.
  virtual RegionOutput compute(wsn::NodeId i) const = 0;

  virtual std::string_view name() const = 0;
};

/// Adaptive exact solver (Lemma 1, geometric ring growth).
class GlobalRegionProvider final : public RegionProvider {
 public:
  /// Largest network the global snapshot path accepts. Past this size the
  /// per-round full-network separate-and-re-bin (plus the Lemma-1 gathers'
  /// appetite for dense candidate lists) stops being the right tool;
  /// begin_round() refuses with a named error directing callers to the
  /// localized provider rather than degrading into a multi-hour round.
  static constexpr int kMaxSites = 200000;

  explicit GlobalRegionProvider(vor::AdaptiveConfig cfg = {});

  void begin_round(wsn::Network& net, int k, std::uint64_t epoch,
                   common::ThreadPool* pool = nullptr) override;
  RegionOutput compute(wsn::NodeId i) const override;
  std::string_view name() const override { return "global"; }

 private:
  vor::AdaptiveConfig cfg_;
  int k_ = 1;
  std::vector<geom::Vec2> sites_;  ///< degeneracy-separated snapshot
  wsn::SpatialGrid grid_;          ///< provider-owned, re-binned per round
  geom::BBox bbox_;
};

/// Algorithm 2: hop-granular expanding rings + boundary service.
class LocalizedRegionProvider final : public RegionProvider {
 public:
  explicit LocalizedRegionProvider(LocalizedConfig cfg = {},
                                   std::uint64_t seed = 1);

  void begin_round(wsn::Network& net, int k, std::uint64_t epoch,
                   common::ThreadPool* pool = nullptr) override;
  RegionOutput compute(wsn::NodeId i) const override;
  std::string_view name() const override { return "localized"; }

 private:
  LocalizedConfig cfg_;
  std::uint64_t seed_;
  int k_ = 1;
  std::uint64_t epoch_ = 0;
  std::optional<wsn::CommModel> comm_;  ///< rebuilt each begin_round
  std::vector<wsn::BoundaryInfo> boundaries_;
};

/// Factory helpers — the usual way call sites select a backend:
///   cfg.provider = make_localized_provider(cfg.localized, cfg.seed);
/// A null LaacadConfig::provider means make_global_provider(cfg.adaptive).
/// A provider instance carries per-round state; share one across engines
/// only if the engines never run concurrently.
std::shared_ptr<RegionProvider> make_global_provider(
    vor::AdaptiveConfig cfg = {});
std::shared_ptr<RegionProvider> make_localized_provider(
    LocalizedConfig cfg = {}, std::uint64_t seed = 1);

}  // namespace laacad::core
