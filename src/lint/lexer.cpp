#include "lint/lexer.hpp"

#include <cctype>

namespace laacad::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Cursor over the source with line tracking and backslash-newline
/// splicing (a continuation never terminates a directive or // comment).
class Cursor {
 public:
  explicit Cursor(const std::string& s) : s_(s) {}

  bool done() const { return i_ >= s_.size(); }
  char peek(std::size_t ahead = 0) const {
    return i_ + ahead < s_.size() ? s_[i_ + ahead] : '\0';
  }
  int line() const { return line_; }

  char take() {
    const char c = s_[i_++];
    if (c == '\n') ++line_;
    return c;
  }

  /// True (and consumed) when the cursor sits on a line continuation.
  bool take_continuation() {
    if (peek() != '\\') return false;
    std::size_t j = i_ + 1;
    while (j < s_.size() && (s_[j] == ' ' || s_[j] == '\t' || s_[j] == '\r'))
      ++j;
    if (j >= s_.size() || s_[j] != '\n') return false;
    i_ = j;
    take();  // the newline, counted
    return true;
  }

 private:
  const std::string& s_;
  std::size_t i_ = 0;
  int line_ = 1;
};

}  // namespace

std::vector<Token> lex(const std::string& source) {
  std::vector<Token> out;
  Cursor c(source);
  bool at_line_start = true;  // only whitespace seen since the last newline

  while (!c.done()) {
    const char ch = c.peek();
    const int line = c.line();

    // Whitespace.
    if (ch == ' ' || ch == '\t' || ch == '\r' || ch == '\n') {
      if (ch == '\n') at_line_start = true;
      c.take();
      continue;
    }

    // Comments.
    if (ch == '/' && c.peek(1) == '/') {
      c.take();
      c.take();
      std::string text;
      while (!c.done()) {
        if (c.take_continuation()) continue;
        if (c.peek() == '\n') break;
        text += c.take();
      }
      out.push_back({TokKind::kComment, text, line});
      continue;
    }
    if (ch == '/' && c.peek(1) == '*') {
      c.take();
      c.take();
      std::string text;
      while (!c.done() && !(c.peek() == '*' && c.peek(1) == '/')) text += c.take();
      if (!c.done()) {
        c.take();
        c.take();
      }
      out.push_back({TokKind::kComment, text, line});
      at_line_start = false;
      continue;
    }

    // Preprocessor directive: '#' first on the line, up to an unescaped
    // newline. Comments on the line are left inside the directive text —
    // no pragma escapes live on directive lines.
    if (ch == '#' && at_line_start) {
      c.take();
      std::string text;
      while (!c.done()) {
        if (c.take_continuation()) {
          text += ' ';
          continue;
        }
        if (c.peek() == '\n') break;
        text += c.take();
      }
      out.push_back({TokKind::kDirective, text, line});
      continue;
    }
    at_line_start = false;

    // Identifiers — with raw-string detection on R"/u8R"/LR"/uR"/UR".
    if (ident_start(ch)) {
      std::string text;
      while (!c.done() && ident_char(c.peek())) text += c.take();
      const bool raw_prefix = (text == "R" || text == "u8R" || text == "LR" ||
                               text == "uR" || text == "UR");
      if (raw_prefix && c.peek() == '"') {
        c.take();  // opening quote
        std::string delim;
        while (!c.done() && c.peek() != '(') delim += c.take();
        if (!c.done()) c.take();  // '('
        const std::string close = ")" + delim + "\"";
        std::string body;
        while (!c.done()) {
          if (c.peek() == ')') {
            bool match = true;
            for (std::size_t k = 0; k < close.size(); ++k)
              if (c.peek(k) != close[k]) {
                match = false;
                break;
              }
            if (match) {
              for (std::size_t k = 0; k < close.size(); ++k) c.take();
              break;
            }
          }
          body += c.take();
        }
        out.push_back({TokKind::kString, body, line});
        continue;
      }
      out.push_back({TokKind::kIdent, text, line});
      continue;
    }

    // Numbers (pp-number: digits, letters, quotes-as-separators, dots,
    // exponent signs). Leading '.' followed by a digit is a number too.
    if (std::isdigit(static_cast<unsigned char>(ch)) ||
        (ch == '.' && std::isdigit(static_cast<unsigned char>(c.peek(1))))) {
      std::string text;
      text += c.take();
      while (!c.done()) {
        const char n = c.peek();
        if (ident_char(n) || n == '.' || n == '\'') {
          text += c.take();
          continue;
        }
        if ((n == '+' || n == '-') && !text.empty()) {
          const char prev = text.back();
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            text += c.take();
            continue;
          }
        }
        break;
      }
      out.push_back({TokKind::kNumber, text, line});
      continue;
    }

    // String and character literals (escape-aware).
    if (ch == '"' || ch == '\'') {
      const char quote = c.take();
      std::string text;
      while (!c.done() && c.peek() != quote) {
        if (c.peek() == '\\') {
          text += c.take();
          if (!c.done()) text += c.take();
          continue;
        }
        if (c.peek() == '\n') break;  // unterminated: stop at the newline
        text += c.take();
      }
      if (!c.done() && c.peek() == quote) c.take();
      out.push_back(
          {quote == '"' ? TokKind::kString : TokKind::kChar, text, line});
      continue;
    }

    // Everything else: single-character punctuation.
    out.push_back({TokKind::kPunct, std::string(1, c.take()), line});
  }
  return out;
}

}  // namespace laacad::lint
