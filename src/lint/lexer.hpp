// Comment/string-aware C++ tokenizer for laacad_lint. This is not a
// compiler front end: it produces a flat token stream (identifiers,
// pp-numbers, string/char literals, punctuation, comments, preprocessor
// directives) with line numbers, which is exactly enough for the lexical
// determinism rules in rules.hpp. Comments are *kept* as tokens so the
// pragma scanner can find `// lint:allow(...)` escapes; raw strings,
// line continuations, and multi-line block comments are handled so a
// banned identifier inside a literal can never produce a finding.
#pragma once

#include <string>
#include <vector>

namespace laacad::lint {

enum class TokKind {
  kIdent,      ///< identifier or keyword
  kNumber,     ///< pp-number (covers all numeric literal forms)
  kString,     ///< "..." or R"delim(...)delim", text excludes quotes
  kChar,       ///< '...'
  kPunct,      ///< single punctuation character
  kComment,    ///< // or /* */, text excludes the comment markers
  kDirective,  ///< whole preprocessor line, text excludes the leading '#'
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  ///< 1-based line of the token's first character
};

/// Lex `source` best-effort: malformed input (unterminated literal or
/// comment) never throws — the remainder is swallowed into the open token
/// so rules still see everything before the defect.
std::vector<Token> lex(const std::string& source);

}  // namespace laacad::lint
