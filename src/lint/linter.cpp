#include "lint/linter.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace laacad::lint {

namespace fs = std::filesystem;

namespace {

const std::vector<std::string>& taint_targets() {
  static const std::vector<std::string> kTargets = {
      "common/json_writer.hpp",
      "campaign/manifest.hpp",
  };
  return kTargets;
}

std::string dir_of(const std::string& rel_path) {
  const auto slash = rel_path.rfind('/');
  return slash == std::string::npos ? "" : rel_path.substr(0, slash + 1);
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

Linter::Linter(Policy policy) : policy_(std::move(policy)) {}

void Linter::add_file(const std::string& rel_path, const std::string& source) {
  files_[rel_path] = lex(source);
}

void Linter::add_directory(const std::string& root_dir) {
  const fs::path root(root_dir);
  if (!fs::is_directory(root))
    throw std::runtime_error("lint root '" + root_dir +
                             "' is not a directory");
  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension().string();
    if (ext != ".hpp" && ext != ".cpp") continue;
    paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& p : paths) {
    std::ifstream in(p, std::ios::binary);
    if (!in)
      throw std::runtime_error("cannot read '" + p.string() + "'");
    std::ostringstream body;
    body << in.rdbuf();
    add_file(fs::relative(p, root).generic_string(), body.str());
  }
}

LintResult Linter::run() const {
  // Resolve each file's quoted includes against the scanned set: the repo
  // roots quoted includes at src/, with same-directory paths as the
  // fallback spelling.
  std::map<std::string, std::vector<std::string>> deps;
  for (const auto& [rel, tokens] : files_) {
    auto& out = deps[rel];
    for (const auto& inc : quoted_includes(tokens)) {
      if (files_.count(inc)) {
        out.push_back(inc);
      } else {
        const std::string sibling = dir_of(rel) + inc;
        if (files_.count(sibling)) out.push_back(sibling);
      }
    }
  }

  // Transitive include closure per file (iterative DFS; cycles fine).
  std::map<std::string, std::set<std::string>> closure;
  for (const auto& [rel, tokens] : files_) {
    auto& seen = closure[rel];
    std::vector<std::string> stack = {rel};
    while (!stack.empty()) {
      const std::string cur = stack.back();
      stack.pop_back();
      if (!seen.insert(cur).second) continue;
      const auto it = deps.find(cur);
      if (it == deps.end()) continue;
      for (const auto& next : it->second) stack.push_back(next);
    }
  }

  // Taint: first a file's own closure, then propagation from every
  // tainted translation unit to everything it compiles in.
  std::map<std::string, std::string> taint;  // file -> attribution
  for (const auto& [rel, seen] : closure)
    for (const auto& target : taint_targets())
      if (seen.count(target)) {
        taint.emplace(rel, target);
        break;
      }
  for (const auto& [rel, seen] : closure) {
    if (!ends_with(rel, ".cpp")) continue;
    const auto t = taint.find(rel);
    if (t == taint.end()) continue;
    for (const auto& member : seen)
      taint.emplace(member, t->second + " (via " + rel + ")");
  }

  LintResult result;
  result.files_scanned = static_cast<int>(files_.size());
  for (const auto& [rel, tokens] : files_) {
    FileCheckInput in;
    in.rel_path = rel;
    in.tokens = &tokens;
    in.rules = policy_.rules_for(rel);
    const auto t = taint.find(rel);
    if (t != taint.end()) {
      in.tainted_tu = true;
      in.taint_source = t->second;
    }
    auto file_result = check_file(in);
    for (auto& f : file_result.findings)
      result.findings.push_back(std::move(f));
    for (auto& s : file_result.suppressions)
      result.suppressions.push_back(std::move(s));
  }
  // files_ is an ordered map, so findings are already file-sorted and
  // check_file() sorts within a file: the report is deterministic.
  return result;
}

void write_report(std::ostream& out, const LintResult& result) {
  for (const auto& f : result.findings)
    out << f.file << ":" << f.line << " " << f.rule << " " << f.message
        << "\n";
  out << "laacad_lint: " << result.files_scanned << " files, "
      << result.findings.size() << " finding"
      << (result.findings.size() == 1 ? "" : "s") << ", "
      << result.suppressions.size() << " suppression"
      << (result.suppressions.size() == 1 ? "" : "s") << "\n";
  for (const auto& s : result.suppressions)
    out << "  allowed " << s.file << ":" << s.line << " " << s.rule << " — "
        << s.reason << "\n";
}

}  // namespace laacad::lint
