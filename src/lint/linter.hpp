// Orchestration for laacad_lint: file loading, the project include graph
// (which decides where unordered-iter applies), per-file policy
// resolution, and the report. Files can come from disk
// (`add_directory`) or from memory (`add_file`) — the tests feed fixture
// sources straight in, the CLI walks src/.
//
// The include graph only follows `#include "..."` between scanned files
// (the repo convention: quoted includes are project files rooted at
// src/). A translation unit is "tainted" when its transitive closure
// reaches common/json_writer.hpp or campaign/manifest.hpp — the two
// byte-stable artifact writers — and every file compiled into a tainted
// TU gets the unordered-iter rule, attributed to the include path that
// caused it.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "lint/lexer.hpp"
#include "lint/policy.hpp"
#include "lint/rules.hpp"

namespace laacad::lint {

struct LintResult {
  std::vector<Finding> findings;          ///< sorted by (file, line, rule)
  std::vector<Suppression> suppressions;  ///< every pragma that fired
  int files_scanned = 0;

  bool clean() const { return findings.empty(); }
};

class Linter {
 public:
  explicit Linter(Policy policy);

  /// Register an in-memory source file under a root-relative path.
  void add_file(const std::string& rel_path, const std::string& source);

  /// Recursively load every .hpp/.cpp under `root_dir` (sorted walk, so
  /// reports are stable). Throws std::runtime_error on unreadable files.
  void add_directory(const std::string& root_dir);

  /// Lint everything registered so far.
  LintResult run() const;

 private:
  Policy policy_;
  std::map<std::string, std::vector<Token>> files_;  // rel path -> tokens
};

/// Print findings as `file:line rule message` lines, then a one-line
/// summary and (when present) the suppression table.
void write_report(std::ostream& out, const LintResult& result);

}  // namespace laacad::lint
