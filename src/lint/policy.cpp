#include "lint/policy.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/specparse.hpp"

namespace laacad::lint {

const std::vector<std::string>& known_rules() {
  static const std::vector<std::string> kRules = {
      "wall-clock",     "ambient-rng", "ambient-env",
      "unordered-iter", "float-arith", "pragma-once",
  };
  return kRules;
}

bool is_known_rule(const std::string& rule) {
  const auto& all = known_rules();
  return std::find(all.begin(), all.end(), rule) != all.end();
}

namespace {

const std::vector<std::string>& default_base() {
  static const std::vector<std::string> kBase = {
      "wall-clock", "ambient-rng", "ambient-env", "unordered-iter",
      "pragma-once",
  };
  return kBase;
}

std::vector<std::string> check_rules(const std::vector<std::string>& toks,
                                     std::size_t first, int line) {
  if (first >= toks.size())
    specparse::fail(line, "'" + toks[0] + "' needs at least one rule name");
  std::vector<std::string> rules;
  for (std::size_t i = first; i < toks.size(); ++i) {
    if (!is_known_rule(toks[i]))
      specparse::fail(line, "unknown rule '" + toks[i] + "'");
    rules.push_back(toks[i]);
  }
  return rules;
}

}  // namespace

Policy::Policy() : base_(default_base()) {}

Policy Policy::parse(std::istream& in) {
  Policy p;
  std::string raw;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    const auto toks = specparse::tokenize(raw);
    if (toks.empty()) continue;
    if (toks[0] == "base") {
      p.base_ = check_rules(toks, 1, line);
    } else if (toks[0] == "extra" || toks[0] == "allow") {
      if (toks.size() < 2 || toks[1].empty())
        specparse::fail(line, "'" + toks[0] + "' needs a path prefix");
      Entry e;
      e.prefix = toks[1];
      e.rules = check_rules(toks, 2, line);
      e.allow = (toks[0] == "allow");
      p.entries_.push_back(std::move(e));
    } else {
      specparse::fail(line, "unknown policy directive '" + toks[0] +
                                "' (want base/extra/allow)");
    }
  }
  return p;
}

Policy Policy::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open policy file '" + path + "'");
  try {
    return parse(in);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

std::vector<std::string> Policy::rules_for(const std::string& rel_path) const {
  std::vector<std::string> rules = base_;
  for (const auto& e : entries_) {
    if (rel_path.rfind(e.prefix, 0) != 0) continue;
    for (const auto& r : e.rules) {
      const auto it = std::find(rules.begin(), rules.end(), r);
      if (e.allow) {
        if (it != rules.end()) rules.erase(it);
      } else if (it == rules.end()) {
        rules.push_back(r);
      }
    }
  }
  return rules;
}

}  // namespace laacad::lint
