// Per-directory rule policy for laacad_lint. The policy is a line-oriented
// spec (same '#'-comment/whitespace grammar as scenarios/campaigns, via
// common/specparse) that maps path prefixes — relative to the lint root —
// onto rule adjustments:
//
//   base  <rule> [<rule>...]     # replace the default base rule set
//   extra <prefix> <rule>...     # additionally enforce rules under prefix
//   allow <prefix> <rule>...     # stop enforcing rules under prefix
//
// Base rules (enforced everywhere unless allowed away):
//   wall-clock ambient-rng ambient-env unordered-iter pragma-once
// `extra` is how geometry/ and voronoi/ opt into float-arith; `allow` is
// how obs/ and the serving/fleet timing sinks opt out of wall-clock. An
// `allow` prefix names its justification in a trailing '#' comment — the
// policy file is the written record of every directory-level exemption,
// while `// lint:allow(rule): reason` pragmas (see rules.hpp) record the
// line-level ones.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace laacad::lint {

/// Every rule name the policy (and the pragma parser) accepts.
const std::vector<std::string>& known_rules();

/// True iff `rule` is in known_rules().
bool is_known_rule(const std::string& rule);

class Policy {
 public:
  /// The built-in policy: base rules only, no prefix entries.
  Policy();

  /// Parse a policy spec; throws std::runtime_error("line N: ...") on
  /// unknown rules, bad directives, or empty prefixes.
  static Policy parse(std::istream& in);
  static Policy load(const std::string& path);

  /// Rules enforced for `rel_path` (root-relative, '/'-separated):
  /// base + every matching `extra`, minus every matching `allow`.
  /// A prefix matches when rel_path starts with it.
  std::vector<std::string> rules_for(const std::string& rel_path) const;

 private:
  struct Entry {
    std::string prefix;
    std::vector<std::string> rules;
    bool allow = false;  // false: extra
  };

  std::vector<std::string> base_;
  std::vector<Entry> entries_;
};

}  // namespace laacad::lint
