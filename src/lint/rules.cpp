#include "lint/rules.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <set>
#include <sstream>
#include <tuple>

#include "lint/policy.hpp"

namespace laacad::lint {

namespace {

bool contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

bool is_unordered_container(const std::string& ident) {
  return ident == "unordered_map" || ident == "unordered_set" ||
         ident == "unordered_multimap" || ident == "unordered_multiset";
}

/// View over the code tokens only (no comments, no directives), keeping
/// the adjacency queries the rules need.
class CodeView {
 public:
  explicit CodeView(const std::vector<Token>& toks) {
    for (const auto& t : toks)
      if (t.kind != TokKind::kComment && t.kind != TokKind::kDirective)
        toks_.push_back(&t);
  }

  std::size_t size() const { return toks_.size(); }
  const Token& at(std::size_t i) const { return *toks_[i]; }

  bool is_punct(std::size_t i, char c) const {
    return i < size() && at(i).kind == TokKind::kPunct && at(i).text[0] == c;
  }
  bool is_ident(std::size_t i, const char* s) const {
    return i < size() && at(i).kind == TokKind::kIdent && at(i).text == s;
  }

  /// Index just past the balanced <...> opened at `open` (which must be
  /// '<'), or `open + 1` when the run never closes (treated as a
  /// comparison, not a template argument list).
  std::size_t skip_angles(std::size_t open) const {
    int depth = 0;
    for (std::size_t i = open; i < size(); ++i) {
      if (at(i).kind != TokKind::kPunct) continue;
      const char c = at(i).text[0];
      if (c == '<') ++depth;
      if (c == '>' && --depth == 0) return i + 1;
      if (c == ';' || c == '{') break;  // statement ended: not a template
    }
    return open + 1;
  }

 private:
  std::vector<const Token*> toks_;
};

/// f-suffixed decimal (or hex-exponent) literal => single precision.
bool is_float_literal(const std::string& num) {
  if (num.empty()) return false;
  const char last = num.back();
  if (last != 'f' && last != 'F') return false;
  const bool hex = num.size() > 1 && num[0] == '0' &&
                   (num[1] == 'x' || num[1] == 'X');
  if (hex) return num.find_first_of("pP") != std::string::npos;
  return num.find_first_of(".eE") != std::string::npos;
}

// ----------------------------------------------------------- pragmas --

struct Pragma {
  int comment_line = 0;
  int target_line = 0;
  std::string rule;
  std::string reason;
  bool used = false;
};

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Parse every `lint:allow(<rule>): <reason>` escape; malformed escapes
/// become findings right here (they can never be suppressed).
std::vector<Pragma> collect_pragmas(const FileCheckInput& in,
                                    std::vector<Finding>* findings) {
  std::vector<Pragma> pragmas;
  const auto& toks = *in.tokens;
  for (std::size_t ti = 0; ti < toks.size(); ++ti) {
    const Token& t = toks[ti];
    if (t.kind != TokKind::kComment) continue;
    // The escape must *start* the comment — prose that merely mentions
    // `lint:allow(...)` (like this sentence) is not an escape.
    const std::string trimmed = trim(t.text);
    if (trimmed.rfind("lint:allow", 0) != 0) continue;
    const auto pos = t.text.find("lint:allow");

    auto bad = [&](const std::string& why) {
      findings->push_back({in.rel_path, t.line, "lint-pragma", why});
    };
    std::size_t i = pos + std::string("lint:allow").size();
    if (i >= t.text.size() || t.text[i] != '(') {
      bad("malformed escape: want lint:allow(<rule>): <reason>");
      continue;
    }
    const auto close = t.text.find(')', ++i);
    if (close == std::string::npos) {
      bad("malformed escape: unterminated '(' in lint:allow");
      continue;
    }
    Pragma p;
    p.rule = trim(t.text.substr(i, close - i));
    if (!is_known_rule(p.rule)) {
      bad("lint:allow names unknown rule '" + p.rule + "'");
      continue;
    }
    std::size_t after = close + 1;
    while (after < t.text.size() &&
           std::isspace(static_cast<unsigned char>(t.text[after])))
      ++after;
    if (after >= t.text.size() || t.text[after] != ':') {
      bad("lint:allow(" + p.rule + ") requires ': <reason>'");
      continue;
    }
    p.reason = trim(t.text.substr(after + 1));
    if (p.reason.empty()) {
      bad("lint:allow(" + p.rule + ") requires a non-empty justification");
      continue;
    }

    // Trailing comment guards its own line; a standalone comment guards
    // the next code-bearing line (blank lines in between are fine).
    p.comment_line = t.line;
    bool trailing = false;
    for (const auto& other : toks)
      if (&other != &t && other.kind != TokKind::kComment &&
          other.line == t.line) {
        trailing = true;
        break;
      }
    if (trailing) {
      p.target_line = t.line;
    } else {
      int next = 0;
      for (const auto& other : toks)
        if (other.kind != TokKind::kComment && other.line > t.line &&
            (next == 0 || other.line < next))
          next = other.line;
      p.target_line = next;  // 0: nothing follows — stays unused
    }
    pragmas.push_back(std::move(p));
  }
  return pragmas;
}

// ------------------------------------------------------------- rules --

void check_banned_idents(const FileCheckInput& in, const CodeView& code,
                         std::vector<Finding>* out) {
  struct Ban {
    const char* rule;
    const char* ident;
    bool call_only;  // only when the next token is '('
    const char* why;
  };
  static constexpr std::array<Ban, 14> kBans = {{
      {"wall-clock", "system_clock", false,
       "results must not depend on real time"},
      {"wall-clock", "steady_clock", false,
       "results must not depend on real time"},
      {"wall-clock", "high_resolution_clock", false,
       "results must not depend on real time"},
      {"wall-clock", "time", true, "results must not depend on real time"},
      {"wall-clock", "clock", true, "results must not depend on real time"},
      {"wall-clock", "gettimeofday", false,
       "results must not depend on real time"},
      {"ambient-rng", "rand", true, "use seeded common::Rng streams"},
      {"ambient-rng", "srand", false, "use seeded common::Rng streams"},
      {"ambient-rng", "rand_r", false, "use seeded common::Rng streams"},
      {"ambient-rng", "drand48", false, "use seeded common::Rng streams"},
      {"ambient-rng", "random_device", false,
       "use seeded common::Rng streams"},
      {"ambient-rng", "random_shuffle", false,
       "use seeded common::Rng streams"},
      {"ambient-env", "getenv", false,
       "config enters through specs and flags, not the environment"},
      {"ambient-env", "secure_getenv", false,
       "config enters through specs and flags, not the environment"},
  }};
  static constexpr std::array<const char*, 3> kEnvWriters = {
      "setenv", "putenv", "unsetenv"};

  const bool wall = contains(in.rules, "wall-clock");
  const bool rng = contains(in.rules, "ambient-rng");
  const bool env = contains(in.rules, "ambient-env");
  if (!wall && !rng && !env) return;

  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& t = code.at(i);
    if (t.kind != TokKind::kIdent) continue;
    for (const auto& ban : kBans) {
      if (t.text != ban.ident) continue;
      if (ban.call_only && !code.is_punct(i + 1, '(')) continue;
      const std::string rule = ban.rule;
      if ((rule == "wall-clock" && !wall) || (rule == "ambient-rng" && !rng) ||
          (rule == "ambient-env" && !env))
        continue;
      out->push_back({in.rel_path, t.line, rule,
                      "'" + t.text + "' in a deterministic layer (" +
                          ban.why + ")"});
    }
    if (env)
      for (const char* w : kEnvWriters)
        if (t.text == w)
          out->push_back({in.rel_path, t.line, "ambient-env",
                          "'" + t.text +
                              "' mutates the process environment in a "
                              "deterministic layer"});
  }
}

void check_float_arith(const FileCheckInput& in, const CodeView& code,
                       std::vector<Finding>* out) {
  if (!contains(in.rules, "float-arith")) return;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& t = code.at(i);
    if (t.kind == TokKind::kIdent && t.text == "float")
      out->push_back({in.rel_path, t.line, "float-arith",
                      "'float' in a double-precision layer (the kernel's "
                      "tie-breaks and clipping bounds assume double)"});
    else if (t.kind == TokKind::kNumber && is_float_literal(t.text))
      out->push_back({in.rel_path, t.line, "float-arith",
                      "single-precision literal '" + t.text +
                          "' in a double-precision layer"});
  }
}

void check_pragma_once(const FileCheckInput& in,
                       std::vector<Finding>* out) {
  if (!contains(in.rules, "pragma-once")) return;
  const auto n = in.rel_path.size();
  if (n < 4 || in.rel_path.compare(n - 4, 4, ".hpp") != 0) return;
  if (!has_pragma_once(*in.tokens))
    out->push_back({in.rel_path, 1, "pragma-once",
                    "header is missing '#pragma once'"});
}

void check_unordered_iter(const FileCheckInput& in, const CodeView& code,
                          std::vector<Finding>* out) {
  if (!contains(in.rules, "unordered-iter") || !in.tainted_tu) return;

  // Pass 1: names declared with an unordered container type in this file.
  std::set<std::string> names;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& t = code.at(i);
    if (t.kind != TokKind::kIdent || !is_unordered_container(t.text)) continue;
    std::size_t j = i + 1;
    if (code.is_punct(j, '<')) j = code.skip_angles(j);
    // Skip ref/pointer/cv decoration between the type and the name.
    while (j < code.size() &&
           (code.is_punct(j, '&') || code.is_punct(j, '*') ||
            code.is_ident(j, "const")))
      ++j;
    if (j < code.size() && code.at(j).kind == TokKind::kIdent &&
        !code.is_punct(j + 1, ':'))  // skip unordered_map<...>::iterator
      names.insert(code.at(j).text);
  }

  const std::string because =
      " in a translation unit that reaches " + in.taint_source +
      " (unordered iteration order must never feed a byte-stable "
      "artifact; sort first or use an ordered container)";

  // Pass 2a: range-for whose range expression names an unordered
  // container (a declared name or a direct unordered_* temporary).
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (!code.is_ident(i, "for") || !code.is_punct(i + 1, '(')) continue;
    int depth = 0;
    std::size_t colon = 0, close = 0;
    for (std::size_t j = i + 1; j < code.size(); ++j) {
      if (code.is_punct(j, '(')) ++depth;
      if (code.is_punct(j, ')') && --depth == 0) {
        close = j;
        break;
      }
      // A single ':' at paren depth 1 is the range-for separator;
      // '::' shows up as two adjacent ':' tokens — skip both sides.
      if (depth == 1 && code.is_punct(j, ':') && !code.is_punct(j + 1, ':') &&
          !code.is_punct(j - 1, ':') && colon == 0)
        colon = j;
    }
    if (colon == 0 || close == 0) continue;
    for (std::size_t j = colon + 1; j < close; ++j) {
      const Token& t = code.at(j);
      if (t.kind != TokKind::kIdent) continue;
      if (names.count(t.text) || is_unordered_container(t.text)) {
        out->push_back({in.rel_path, code.at(i).line, "unordered-iter",
                        "range-for over unordered container '" + t.text +
                            "'" + because});
        break;
      }
    }
  }

  // Pass 2b: explicit iterator walks: name.begin() and friends.
  static constexpr std::array<const char*, 6> kIterFns = {
      "begin", "end", "cbegin", "cend", "rbegin", "rend"};
  for (std::size_t i = 0; i + 3 < code.size(); ++i) {
    const Token& t = code.at(i);
    if (t.kind != TokKind::kIdent || !names.count(t.text)) continue;
    if (!code.is_punct(i + 1, '.')) continue;
    const Token& fn = code.at(i + 2);
    if (fn.kind != TokKind::kIdent || !code.is_punct(i + 3, '(')) continue;
    // `it == m.end()` / `it != m.end()` is the find-lookup sentinel, not
    // iteration — the preceding '=' (second half of ==/!=) marks it.
    if ((fn.text == "end" || fn.text == "cend") && i > 0 &&
        code.is_punct(i - 1, '='))
      continue;
    for (const char* f : kIterFns)
      if (fn.text == f) {
        out->push_back({in.rel_path, t.line, "unordered-iter",
                        "'" + t.text + "." + fn.text +
                            "()' iterates an unordered container" + because});
        break;
      }
  }
}

}  // namespace

FileCheckResult check_file(const FileCheckInput& in) {
  FileCheckResult res;
  const CodeView code(*in.tokens);

  std::vector<Finding> raw;
  check_banned_idents(in, code, &raw);
  check_float_arith(in, code, &raw);
  check_pragma_once(in, &raw);
  check_unordered_iter(in, code, &raw);

  auto pragmas = collect_pragmas(in, &res.findings);

  for (auto& f : raw) {
    bool suppressed = false;
    for (auto& p : pragmas)
      if (p.target_line == f.line && p.rule == f.rule) {
        p.used = true;
        suppressed = true;
        res.suppressions.push_back({in.rel_path, f.line, p.rule, p.reason});
        break;
      }
    if (!suppressed) res.findings.push_back(std::move(f));
  }

  // A pragma that suppressed nothing is stale — that is a defect too.
  for (const auto& p : pragmas)
    if (!p.used)
      res.findings.push_back(
          {in.rel_path, p.comment_line, "lint-pragma",
           "unused lint:allow(" + p.rule + ") — no '" + p.rule +
               "' finding on the guarded line"});

  std::sort(res.findings.begin(), res.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.line, a.rule, a.message) <
                     std::tie(b.line, b.rule, b.message);
            });
  return res;
}

std::vector<std::string> quoted_includes(const std::vector<Token>& tokens) {
  std::vector<std::string> out;
  for (const auto& t : tokens) {
    if (t.kind != TokKind::kDirective) continue;
    std::istringstream iss(t.text);
    std::string kw;
    iss >> kw;
    if (kw != "include") continue;
    std::string rest;
    std::getline(iss, rest);
    const auto open = rest.find('"');
    if (open == std::string::npos) continue;
    const auto close = rest.find('"', open + 1);
    if (close == std::string::npos) continue;
    out.push_back(rest.substr(open + 1, close - open - 1));
  }
  return out;
}

bool has_pragma_once(const std::vector<Token>& tokens) {
  for (const auto& t : tokens) {
    if (t.kind != TokKind::kDirective) continue;
    std::istringstream iss(t.text);
    std::string kw, arg;
    iss >> kw >> arg;
    if (kw == "pragma" && arg == "once") return true;
  }
  return false;
}

}  // namespace laacad::lint
