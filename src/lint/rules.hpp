// The determinism rules laacad_lint enforces, over lexer.hpp token
// streams. Each rule is lexical by design — no type information — so the
// bans are phrased as "this token pattern can only mean trouble in a
// deterministic layer":
//
//   wall-clock      system_clock / steady_clock / high_resolution_clock,
//                   and time( / clock( calls. Results must be a function
//                   of (spec, seed, thread count), never of real time.
//   ambient-rng     rand / srand / rand_r / drand48 / random_device /
//                   random_shuffle. All randomness flows through seeded
//                   laacad::common::Rng streams.
//   ambient-env     getenv / secure_getenv / setenv / putenv / unsetenv.
//                   Config enters through specs and flags, not the
//                   environment (examples may gate *extra checks* on env
//                   vars, but src/ results never depend on them).
//   unordered-iter  iteration (range-for, .begin()/.end() family) over
//                   std::unordered_{map,set,multimap,multiset} in any
//                   translation unit that reaches common/json_writer.hpp
//                   or campaign/manifest.hpp — unordered iteration order
//                   feeding a byte-stable artifact is the classic silent
//                   determinism break. Lookup (find/at/count/emplace) is
//                   fine and unflagged.
//   float-arith     the `float` keyword and f-suffixed literals, opted
//                   into by geometry/ and voronoi/ — the kernel's
//                   tie-break and clipping proofs assume double.
//   pragma-once     every .hpp must contain `#pragma once`.
//
// Escape hatch: `// lint:allow(<rule>): <reason>` suppresses that rule on
// its own line (trailing comment) or on the next code-bearing line
// (standalone comment). The reason is mandatory, the pragma must actually
// suppress something (stale pragmas are findings themselves), and every
// suppression is reported in the run summary so exemptions stay visible.
#pragma once

#include <string>
#include <vector>

#include "lint/lexer.hpp"

namespace laacad::lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// A used `lint:allow` pragma, for the run summary.
struct Suppression {
  std::string file;
  int line = 0;  ///< line of the suppressed finding
  std::string rule;
  std::string reason;
};

struct FileCheckInput {
  std::string rel_path;                   ///< root-relative, '/'-separated
  const std::vector<Token>* tokens = nullptr;
  std::vector<std::string> rules;         ///< active rules (policy resolved)
  bool tainted_tu = false;                ///< TU reaches json_writer/manifest
  std::string taint_source;               ///< e.g. "common/json_writer.hpp"
};

struct FileCheckResult {
  std::vector<Finding> findings;          ///< unsuppressed + pragma defects
  std::vector<Suppression> suppressions;  ///< pragmas that fired
};

/// Run every active rule plus the (unconditional) pragma checks.
FileCheckResult check_file(const FileCheckInput& in);

/// Project-relative paths from `#include "..."` directives, in order.
/// Angle-bracket includes are system headers and are not returned.
std::vector<std::string> quoted_includes(const std::vector<Token>& tokens);

/// True when the token stream contains a `#pragma once` directive.
bool has_pragma_once(const std::vector<Token>& tokens);

}  // namespace laacad::lint
