#include "obs/heartbeat.hpp"

#include <cmath>
#include <sstream>

#include "common/flatjson.hpp"
#include "common/json_writer.hpp"

namespace laacad::obs {

namespace {

constexpr std::string_view kPrefix = "{\"hb\":";

// Field access goes through the shared flat-JSON scanner: the only string
// values we emit are kind / name / shard, and name is JSON-escaped, so the
// scanner's escaped-quote handling keeps key matches out of string bodies.
using flatjson::get_number;
using flatjson::get_string;

}  // namespace

std::string format_heartbeat(const Heartbeat& hb) {
  std::ostringstream out;
  JsonWriter w(out, /*indent=*/0);
  w.begin_object();
  w.kv("hb", hb.kind);
  w.kv("name", hb.name);
  if (!hb.shard.empty()) w.kv("shard", hb.shard);
  w.kv("done", hb.done);
  w.kv("total", hb.total);
  w.kv("ok", hb.ok);
  if (hb.live >= 0) w.kv("live", hb.live);
  if (hb.round >= 0) w.kv("round", hb.round);
  if (hb.epoch >= 0) w.kv("epoch", hb.epoch);
  if (hb.queue >= 0) w.kv("queue", hb.queue);
  w.kv("rate_per_s", hb.rate_per_s);  // NaN -> null by JsonWriter
  w.kv("eta_s", hb.eta_s);
  w.kv("ts_ms", hb.ts_ms);
  w.end_object();
  std::string s = out.str();
  s += '\n';
  return s;
}

bool is_heartbeat_line(std::string_view line) {
  return line.compare(0, kPrefix.size(), kPrefix) == 0;
}

bool parse_heartbeat(std::string_view line, Heartbeat* out) {
  if (!is_heartbeat_line(line)) return false;
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
    line.remove_suffix(1);
  Heartbeat hb;
  if (!get_string(line, "hb", &hb.kind) || hb.kind.empty()) return false;
  get_string(line, "name", &hb.name);
  get_string(line, "shard", &hb.shard);
  double v = 0.0;
  if (get_number(line, "done", &v)) hb.done = static_cast<int>(v);
  if (get_number(line, "total", &v)) hb.total = static_cast<int>(v);
  if (get_number(line, "ok", &v)) hb.ok = static_cast<int>(v);
  if (get_number(line, "live", &v)) hb.live = static_cast<int>(v);
  if (get_number(line, "round", &v)) hb.round = static_cast<int>(v);
  if (get_number(line, "epoch", &v)) hb.epoch = static_cast<std::int64_t>(v);
  if (get_number(line, "queue", &v)) hb.queue = static_cast<int>(v);
  if (get_number(line, "rate_per_s", &v)) hb.rate_per_s = v;
  if (get_number(line, "eta_s", &v)) hb.eta_s = v;
  if (get_number(line, "ts_ms", &v)) hb.ts_ms = static_cast<std::uint64_t>(v);
  *out = std::move(hb);
  return true;
}

HeartbeatEmitter::HeartbeatEmitter(std::FILE* sink, std::string kind,
                                   std::string name, std::string shard,
                                   int total)
    : sink_(sink), start_(std::chrono::steady_clock::now()) {
  hb_.kind = std::move(kind);
  hb_.name = std::move(name);
  hb_.shard = std::move(shard);
  hb_.total = total;
}

void HeartbeatEmitter::tick(int done, int ok) {
  hb_.done = done;
  hb_.ok = ok;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  hb_.rate_per_s = elapsed > 0.0 ? done / elapsed : 0.0;
  hb_.eta_s = hb_.rate_per_s > 0.0 ? (hb_.total - done) / hb_.rate_per_s
                                   : std::nan("");
  hb_.ts_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  const std::string line = format_heartbeat(hb_);
  // One write per line: heartbeats from concurrent processes interleave at
  // line granularity, never mid-line.
  std::fwrite(line.data(), 1, line.size(), sink_);
  std::fflush(sink_);
}

}  // namespace laacad::obs
