#include "obs/heartbeat.hpp"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/json_writer.hpp"

namespace laacad::obs {

namespace {

constexpr std::string_view kPrefix = "{\"hb\":";

/// Locate `"key":` at top level of our fixed-format line and return the
/// offset of its value, or npos. The only string values we emit are kind /
/// name / shard; name is JSON-escaped, so a quote inside it is always
/// preceded by a backslash — the scanner below skips escaped quotes, which
/// keeps key matches out of string bodies.
std::size_t value_offset(std::string_view line, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  bool in_string = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') {
      if (line.compare(i, needle.size(), needle) == 0)
        return i + needle.size();
      in_string = true;
    }
  }
  return std::string_view::npos;
}

bool parse_string(std::string_view line, std::string_view key,
                  std::string* out) {
  const std::size_t at = value_offset(line, key);
  if (at == std::string_view::npos || at >= line.size() || line[at] != '"')
    return false;
  std::string s;
  for (std::size_t i = at + 1; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '"') {
      *out = std::move(s);
      return true;
    }
    if (c == '\\' && i + 1 < line.size()) {
      const char e = line[++i];
      switch (e) {
        case 'n': s += '\n'; break;
        case 't': s += '\t'; break;
        case 'r': s += '\r'; break;
        default: s += e; break;  // \" \\ \/ and anything exotic: literal
      }
    } else {
      s += c;
    }
  }
  return false;  // unterminated string
}

bool parse_number(std::string_view line, std::string_view key, double* out) {
  const std::size_t at = value_offset(line, key);
  if (at == std::string_view::npos || at >= line.size()) return false;
  if (line.compare(at, 4, "null") == 0) {
    *out = std::nan("");
    return true;
  }
  // strtod needs a terminated buffer; numbers are short.
  char buf[64];
  std::size_t n = 0;
  for (std::size_t i = at; i < line.size() && n + 1 < sizeof(buf); ++i) {
    const char c = line[i];
    if ((c < '0' || c > '9') && c != '-' && c != '+' && c != '.' &&
        c != 'e' && c != 'E')
      break;
    buf[n++] = c;
  }
  if (n == 0) return false;
  buf[n] = '\0';
  char* end = nullptr;
  *out = std::strtod(buf, &end);
  return end == buf + n;
}

}  // namespace

std::string format_heartbeat(const Heartbeat& hb) {
  std::ostringstream out;
  JsonWriter w(out, /*indent=*/0);
  w.begin_object();
  w.kv("hb", hb.kind);
  w.kv("name", hb.name);
  if (!hb.shard.empty()) w.kv("shard", hb.shard);
  w.kv("done", hb.done);
  w.kv("total", hb.total);
  w.kv("ok", hb.ok);
  if (hb.live >= 0) w.kv("live", hb.live);
  w.kv("rate_per_s", hb.rate_per_s);  // NaN -> null by JsonWriter
  w.kv("eta_s", hb.eta_s);
  w.kv("ts_ms", hb.ts_ms);
  w.end_object();
  std::string s = out.str();
  s += '\n';
  return s;
}

bool is_heartbeat_line(std::string_view line) {
  return line.compare(0, kPrefix.size(), kPrefix) == 0;
}

bool parse_heartbeat(std::string_view line, Heartbeat* out) {
  if (!is_heartbeat_line(line)) return false;
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
    line.remove_suffix(1);
  Heartbeat hb;
  if (!parse_string(line, "hb", &hb.kind) || hb.kind.empty()) return false;
  parse_string(line, "name", &hb.name);
  parse_string(line, "shard", &hb.shard);
  double v = 0.0;
  if (parse_number(line, "done", &v)) hb.done = static_cast<int>(v);
  if (parse_number(line, "total", &v)) hb.total = static_cast<int>(v);
  if (parse_number(line, "ok", &v)) hb.ok = static_cast<int>(v);
  if (parse_number(line, "live", &v)) hb.live = static_cast<int>(v);
  if (parse_number(line, "rate_per_s", &v)) hb.rate_per_s = v;
  if (parse_number(line, "eta_s", &v)) hb.eta_s = v;
  if (parse_number(line, "ts_ms", &v)) hb.ts_ms = static_cast<std::uint64_t>(v);
  *out = std::move(hb);
  return true;
}

HeartbeatEmitter::HeartbeatEmitter(std::FILE* sink, std::string kind,
                                   std::string name, std::string shard,
                                   int total)
    : sink_(sink), start_(std::chrono::steady_clock::now()) {
  hb_.kind = std::move(kind);
  hb_.name = std::move(name);
  hb_.shard = std::move(shard);
  hb_.total = total;
}

void HeartbeatEmitter::tick(int done, int ok) {
  hb_.done = done;
  hb_.ok = ok;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  hb_.rate_per_s = elapsed > 0.0 ? done / elapsed : 0.0;
  hb_.eta_s = hb_.rate_per_s > 0.0 ? (hb_.total - done) / hb_.rate_per_s
                                   : std::nan("");
  hb_.ts_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  const std::string line = format_heartbeat(hb_);
  // One write per line: heartbeats from concurrent processes interleave at
  // line granularity, never mid-line.
  std::fwrite(line.data(), 1, line.size(), sink_);
  std::fflush(sink_);
}

}  // namespace laacad::obs
