// Structured progress heartbeats — machine-readable JSON lines on stderr.
//
// A heartbeat is one line, one JSON object, first key `"hb"`, so a consumer
// can classify a stream line with a prefix check and never has to scrape
// human stdout. campaign_runner emits `"hb":"campaign"` lines as trials
// land; campaign_fleet parses its children's heartbeats off the relay pipe
// (instead of scraping their stdout tables) and emits `"hb":"fleet"` lines
// carrying per-shard liveness.
//
// Heartbeats are observability output: they go to stderr (or whatever FILE*
// the emitter was given), carry wall-clock fields (rate, ETA, epoch
// timestamps), and must never be written into byte-identical BENCH_*
// artifacts. Each line is formatted into one buffer and handed to the OS in
// a single write, so concurrent emitters cannot shear a line.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace laacad::obs {

/// Parsed (or to-be-formatted) heartbeat. Numeric fields use -1 for
/// "absent" on the parse side; NaN rate/eta serialize as null.
struct Heartbeat {
  std::string kind;   ///< "campaign" | "fleet" (extensible)
  std::string name;   ///< campaign name
  std::string shard;  ///< "i/N", or "" when unsharded
  int done = 0;       ///< trials completed
  int total = 0;      ///< trials this process owns
  int ok = 0;         ///< completed trials that verified
  int live = -1;      ///< fleet only: shards currently running
  int round = -1;     ///< serve only: global rounds executed
  std::int64_t epoch = -1;  ///< serve only: published snapshot epoch
  int queue = -1;     ///< serve only: event-queue depth
  double rate_per_s = 0.0;  ///< completion rate (wall-clock)
  double eta_s = 0.0;       ///< projected seconds to completion (wall-clock)
  std::uint64_t ts_ms = 0;  ///< unix epoch milliseconds at emission
};

/// One-line JSON serialization, `\n`-terminated. Key order is fixed and
/// `hb` always leads, which is what makes the consumer's prefix check
/// (`is_heartbeat_line`) sufficient.
std::string format_heartbeat(const Heartbeat& hb);

/// Cheap classifier: does this relay line claim to be a heartbeat?
bool is_heartbeat_line(std::string_view line);

/// Parse a heartbeat line (as produced by format_heartbeat). Returns false
/// for anything else — including lines that pass is_heartbeat_line but are
/// malformed, so a consumer can fall back to relaying them verbatim.
bool parse_heartbeat(std::string_view line, Heartbeat* out);

/// Stateful emitter: tracks elapsed wall-clock to derive rate and ETA, and
/// writes each line atomically to `sink` (typically stderr). Not
/// thread-safe; call from one thread (campaign progress callbacks already
/// run under the scheduler lock).
class HeartbeatEmitter {
 public:
  HeartbeatEmitter(std::FILE* sink, std::string kind, std::string name,
                   std::string shard, int total);

  /// Emit one heartbeat for `done` completed / `ok` verified trials.
  void tick(int done, int ok);

 private:
  std::FILE* sink_;
  Heartbeat hb_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace laacad::obs
