#include "obs/histogram.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/flatjson.hpp"
#include "common/json_writer.hpp"

namespace laacad::obs {

namespace {
constexpr int kTotalSlots = HistogramBuckets::kNumBuckets + 1;  // + overflow
}  // namespace

Histogram::Histogram(const Histogram& other)
    : buckets_(other.buckets_
                   ? std::make_unique<std::vector<std::uint64_t>>(
                         *other.buckets_)
                   : nullptr),
      count_(other.count_),
      sum_(other.sum_),
      min_(other.min_),
      max_(other.max_) {}

Histogram& Histogram::operator=(const Histogram& other) {
  if (this == &other) return *this;
  buckets_ = other.buckets_ ? std::make_unique<std::vector<std::uint64_t>>(
                                  *other.buckets_)
                            : nullptr;
  count_ = other.count_;
  sum_ = other.sum_;
  min_ = other.min_;
  max_ = other.max_;
  return *this;
}

void Histogram::ensure_buckets() {
  if (!buckets_)
    buckets_ = std::make_unique<std::vector<std::uint64_t>>(kTotalSlots, 0);
}

void Histogram::record(std::uint64_t ns) {
  ensure_buckets();
  ++(*buckets_)[static_cast<std::size_t>(Buckets::index_of(ns))];
  ++count_;
  sum_ += ns;
  min_ = std::min(min_, ns);
  max_ = std::max(max_, ns);
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  ensure_buckets();
  if (other.buckets_)
    for (int i = 0; i < kTotalSlots; ++i)
      (*buckets_)[i] += (*other.buckets_)[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::uint64_t Histogram::overflow() const {
  return buckets_ ? (*buckets_)[Buckets::kNumBuckets] : 0;
}

std::uint64_t Histogram::value_at(double q) const {
  if (count_ == 0) return 0;
  double target = std::ceil(q * static_cast<double>(count_));
  if (!(target >= 1.0)) target = 1.0;  // q <= 0 (and NaN) clamp to rank 1
  const std::uint64_t rank =
      std::min(count_, static_cast<std::uint64_t>(target));
  std::uint64_t cum = 0;
  for (int i = 0; i < kTotalSlots; ++i) {
    cum += (*buckets_)[i];
    if (cum >= rank) {
      // In the last nonempty bucket the exact max is a tighter (and still
      // same-bucket) answer; it also covers the overflow bucket, whose
      // edge is meaningless.
      if (cum == count_) return max_;
      return Buckets::upper_edge(i);
    }
  }
  return max_;  // unreachable: rank <= count
}

double Histogram::mean_ns() const {
  if (count_ == 0) return std::nan("");
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

void Histogram::write_json(JsonWriter& w) const {
  w.begin_object();
  w.kv("count", count_);
  w.kv("min_ns", min());
  w.kv("max_ns", max_);
  w.kv("sum_ns", sum_);
  w.key("buckets").begin_array();
  if (buckets_)
    for (int i = 0; i < kTotalSlots; ++i) {
      if ((*buckets_)[i] == 0) continue;
      w.begin_array();
      w.value(i);
      w.value((*buckets_)[i]);
      w.end_array();
    }
  w.end_array();
  w.end_object();
}

void Histogram::write_percentiles_json(JsonWriter& w) const {
  const auto us = [](std::uint64_t ns) {
    return static_cast<double>(ns) / 1000.0;
  };
  w.begin_object();
  w.kv("count", count_);
  w.kv("p50_us", count_ ? us(value_at(0.50)) : std::nan(""));
  w.kv("p90_us", count_ ? us(value_at(0.90)) : std::nan(""));
  w.kv("p99_us", count_ ? us(value_at(0.99)) : std::nan(""));
  w.kv("p999_us", count_ ? us(value_at(0.999)) : std::nan(""));
  w.kv("max_us", count_ ? us(max_) : std::nan(""));
  w.kv("mean_us", mean_ns() / 1000.0);  // NaN -> null when empty
  w.end_object();
}

bool Histogram::from_json(const std::string& raw, Histogram* out) {
  double count = 0.0, min_ns = 0.0, max_ns = 0.0, sum_ns = 0.0;
  if (!flatjson::get_number(raw, "count", &count) ||
      !flatjson::get_number(raw, "min_ns", &min_ns) ||
      !flatjson::get_number(raw, "max_ns", &max_ns) ||
      !flatjson::get_number(raw, "sum_ns", &sum_ns))
    return false;
  std::string buckets;
  if (!flatjson::get_raw(raw, "buckets", &buckets)) return false;

  Histogram h;
  h.count_ = static_cast<std::uint64_t>(count);
  h.sum_ = static_cast<std::uint64_t>(sum_ns);
  h.min_ = h.count_ ? static_cast<std::uint64_t>(min_ns) : ~0ull;
  h.max_ = static_cast<std::uint64_t>(max_ns);
  h.ensure_buckets();
  // Scan "[[i,c],[i,c],...]": pairs of unsigned integers.
  std::uint64_t recounted = 0;
  std::size_t pos = 0;
  const auto next_uint = [&](std::uint64_t* v) {
    while (pos < buckets.size() &&
           !std::isdigit(static_cast<unsigned char>(buckets[pos])))
      ++pos;
    if (pos >= buckets.size()) return false;
    *v = 0;
    while (pos < buckets.size() &&
           std::isdigit(static_cast<unsigned char>(buckets[pos])))
      *v = *v * 10 + static_cast<std::uint64_t>(buckets[pos++] - '0');
    return true;
  };
  std::uint64_t index = 0, c = 0;
  while (next_uint(&index)) {
    if (!next_uint(&c) || index >= static_cast<std::uint64_t>(kTotalSlots))
      return false;
    (*h.buckets_)[static_cast<std::size_t>(index)] += c;
    recounted += c;
  }
  if (recounted != h.count_) return false;
  *out = std::move(h);
  return true;
}

AtomicHistogram::AtomicHistogram()
    : buckets_(new std::atomic<std::uint64_t>[kTotalSlots]) {
  for (int i = 0; i < kTotalSlots; ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
}

void AtomicHistogram::record(std::uint64_t ns) {
  buckets_[static_cast<std::size_t>(Buckets::index_of(ns))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(ns, std::memory_order_relaxed);
  // CAS loops for min/max: contended only while the extremum is moving.
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (ns < seen &&
         !min_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (ns > seen &&
         !max_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
}

Histogram AtomicHistogram::snapshot() const {
  Histogram h;
  h.ensure_buckets();
  std::uint64_t total = 0, sum = 0;
  for (int i = 0; i < kTotalSlots; ++i) {
    const std::uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    (*h.buckets_)[static_cast<std::size_t>(i)] = c;
    total += c;
  }
  sum = sum_.load(std::memory_order_relaxed);
  h.count_ = total;
  h.sum_ = sum;
  h.min_ = min_.load(std::memory_order_relaxed);
  h.max_ = max_.load(std::memory_order_relaxed);
  return h;
}

void AtomicHistogram::reset() {
  for (int i = 0; i < kTotalSlots; ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ull, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

}  // namespace laacad::obs
