// Mergeable log-bucketed latency histograms — the distribution side of the
// observability layer (obs/trace.hpp keeps totals; this keeps shapes).
//
// Bucketing is HDR-style log-linear with fixed, deterministic boundaries:
// values below kSubBuckets (64) get one bucket each (exact); above that,
// each power-of-two range is split into kSubBuckets equal-width buckets,
// so every bucket's relative width is at most 1/64 (~1.6%). The bucket a
// value lands in is a pure function of the value — independent of insert
// order, thread count, or platform — which is what makes histograms
//
//   * mergeable: merge() adds per-bucket counts, and any merge order (or
//     any sharding of the samples across recorders) produces bit-identical
//     state;
//   * comparable: a percentile query answers with the bucket's inclusive
//     upper edge, so the reported value is >= the exact sample percentile
//     and at most one bucket width above it (the oracle property the tests
//     pin down).
//
// Values are nanoseconds in [0, kMaxTrackable]; larger samples land in a
// single overflow bucket and saturate percentile queries at max() (which is
// tracked exactly alongside the buckets, as is min()).
//
// Two flavors share the bucket map:
//
//   * Histogram — plain counts, single writer, merge/percentile/JSON. This
//     is what reports hold and what crosses thread boundaries by value.
//   * AtomicHistogram — the same buckets as relaxed atomics for lock-free
//     concurrent recording on serving hot paths; snapshot() freezes it into
//     a Histogram. Counts commute, so a snapshot after N recorded samples
//     equals the single-threaded histogram of those samples.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace laacad {
class JsonWriter;
}

namespace laacad::obs {

/// Shared bucket geometry. 64 linear buckets, then 64 sub-buckets per
/// power of two up to 2^37 ns (~137 s) — 2048 buckets total, one uint64
/// each. Everything is constexpr so both flavors and the tests agree on
/// one map.
struct HistogramBuckets {
  static constexpr int kSubBucketBits = 6;
  static constexpr std::uint64_t kSubBuckets = 1ull << kSubBucketBits;  // 64
  /// Exponent count: values in [2^6, 2^37) bucket logarithmically.
  static constexpr int kExponents = 31;
  static constexpr int kNumBuckets =
      static_cast<int>(kSubBuckets) * (kExponents + 1);  // 2048
  /// Largest value with a regular bucket; beyond lies the overflow bucket.
  static constexpr std::uint64_t kMaxTrackable =
      (kSubBuckets << kExponents) - 1;  // 2^37 - 1 ns (~137 s)

  /// Bucket index of a value (kNumBuckets for overflow). Pure function.
  static constexpr int index_of(std::uint64_t v) {
    if (v < kSubBuckets) return static_cast<int>(v);
    if (v > kMaxTrackable) return kNumBuckets;
    // v in [2^(6+e), 2^(7+e)) for e >= 0: keep the top 7 bits.
    int e = 0;
    for (std::uint64_t top = v >> (kSubBucketBits + 1); top != 0; top >>= 1)
      ++e;
    const std::uint64_t mantissa = v >> e;  // in [kSubBuckets, 2*kSubBuckets)
    return static_cast<int>(kSubBuckets * static_cast<std::uint64_t>(e) +
                            mantissa);
  }

  /// Inclusive upper edge of bucket i — the value percentile queries
  /// report. For the overflow bucket this is kMaxTrackable (callers
  /// saturate at the exact tracked max instead).
  static constexpr std::uint64_t upper_edge(int i) {
    if (i < static_cast<int>(kSubBuckets)) return static_cast<std::uint64_t>(i);
    if (i >= kNumBuckets) return kMaxTrackable;
    const int e = i / static_cast<int>(kSubBuckets) - 1;
    const std::uint64_t mantissa =
        kSubBuckets + static_cast<std::uint64_t>(i) % kSubBuckets;
    return ((mantissa + 1) << e) - 1;
  }
};

/// Plain mergeable histogram. Buckets allocate lazily on the first record
/// or merge, so an empty histogram is a few pointers.
class Histogram {
 public:
  using Buckets = HistogramBuckets;

  Histogram() = default;
  Histogram(const Histogram& other);  ///< deep copy (reports copy stages)
  Histogram& operator=(const Histogram& other);
  Histogram(Histogram&&) = default;
  Histogram& operator=(Histogram&&) = default;

  void record(std::uint64_t ns);

  /// Add another histogram's counts. Commutative and associative: any
  /// merge tree over the same multiset of samples yields identical state.
  void merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  std::uint64_t min() const { return count_ ? min_ : 0; }  ///< exact
  std::uint64_t max() const { return max_; }               ///< exact
  std::uint64_t overflow() const;  ///< samples beyond kMaxTrackable

  /// Value at quantile q in [0, 1]: the inclusive upper edge of the bucket
  /// holding the ceil(q * count)-th smallest sample (>= the exact sample
  /// percentile, within one bucket width). q >= 1, overflow hits, and the
  /// top bucket all saturate at the exact max(). Returns 0 when empty.
  std::uint64_t value_at(double q) const;

  double mean_ns() const;  ///< from the exact running sum, not the buckets

  /// Compact JSON: {"count":N,"min_ns":..,"max_ns":..,"sum_ns":..,
  /// "buckets":[[index,count],...]} with buckets ascending by index and
  /// the overflow bucket (if any) last under index kNumBuckets. Two
  /// histograms with equal state serialize byte-identically.
  void write_json(JsonWriter& w) const;

  /// Convenience: the standard percentile block this PR reports
  /// everywhere: {"count":..,"p50_us":..,"p90_us":..,"p99_us":..,
  /// "p999_us":..,"max_us":..,"mean_us":..}. Microseconds as doubles.
  void write_percentiles_json(JsonWriter& w) const;

  /// Parse the write_json encoding back (for tools reading BENCH output).
  /// Returns false on malformed input.
  static bool from_json(const std::string& raw, Histogram* out);

 private:
  friend class AtomicHistogram;  // snapshot() fills a Histogram directly

  void ensure_buckets();

  std::unique_ptr<std::vector<std::uint64_t>> buckets_;  // size kNumBuckets+1
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
};

/// Lock-free concurrent recorder: fixed atomic buckets, relaxed increments.
/// Built for serving hot paths where many connection threads record into
/// one per-verb histogram. snapshot() is not atomic with respect to
/// concurrent record() calls (a racing sample may or may not be included),
/// but every sample recorded before the snapshot call began is.
class AtomicHistogram {
 public:
  using Buckets = HistogramBuckets;

  AtomicHistogram();

  void record(std::uint64_t ns);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  Histogram snapshot() const;

  /// Zero every bucket (tests; not linearizable vs concurrent record()).
  void reset();

 private:
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace laacad::obs
