#include "obs/metrics.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <mutex>

namespace laacad::obs {

struct Registry::Impl {
  mutable std::mutex mu;
  std::map<std::string, double> gauges;
};

Registry& Registry::instance() {
  static Registry r;
  return r;
}

Registry::Impl& Registry::impl() const {
  static Impl impl;
  return impl;
}

void Registry::set_gauge(const std::string& name, double value) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lk(i.mu);
  i.gauges[name] = value;
}

double Registry::gauge(const std::string& name) const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lk(i.mu);
  const auto it = i.gauges.find(name);
  return it == i.gauges.end() ? std::numeric_limits<double>::quiet_NaN()
                              : it->second;
}

std::vector<std::pair<std::string, double>> Registry::gauges() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lk(i.mu);
  return {i.gauges.begin(), i.gauges.end()};
}

void Registry::clear() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lk(i.mu);
  i.gauges.clear();
}

}  // namespace laacad::obs
