// Unified metrics registry — the read side of the observability layer.
//
// Layering: `common/perf_counters.hpp` stays the lock-free thread-local
// substrate the kernels increment (one add per event batch, Release-cheap).
// What this registry adds on top:
//
//  * Exact pool-wide counter totals. common::ThreadPool::run() captures
//    each worker chunk's counter delta and folds it into the calling
//    thread's block after the join (uint64 addition commutes, so the total
//    is deterministic for any chunk schedule). CounterScope reads that
//    calling-thread block as before/after snapshots, so dist²/clip/grid
//    totals are exact for *any* num_threads — the "only trustworthy when
//    serial" caveat is gone.
//  * Named gauges (peak RSS, queue depth): last-write-wins doubles behind a
//    mutex, for heartbeats and stdout summaries. Gauges are wall-clock/
//    machine facts and must never enter byte-identical BENCH artifacts.
//
// Stage timers live with the tracer (obs/trace.hpp): a stage total is just
// the per-name aggregation of its spans, returned by stop_trace().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/perf_counters.hpp"

namespace laacad::obs {

/// Snapshot-delta reader for the calling thread's kernel counters. With the
/// pool aggregation in common::ThreadPool, the delta over a region of code
/// equals the *global* event total of every parallel_for issued from this
/// thread in that region, plus its own serial work — exact for any thread
/// count, bit-equal to a serial run.
class CounterScope {
 public:
  CounterScope() : start_(perf::counters()) {}

  /// Events since construction (or the last reset()).
  perf::KernelCounters delta() const {
    return perf::counters().diff(start_);
  }

  void reset() { start_ = perf::counters(); }

 private:
  perf::KernelCounters start_;
};

/// Process-wide named gauges. Small, mutex-guarded, meant for a handful of
/// slowly changing values (queue depth, live shards) read by heartbeat
/// emitters — not for per-event hot paths (that is what the counters are
/// for).
class Registry {
 public:
  static Registry& instance();

  /// Set (or create) a gauge. Thread-safe, last write wins.
  void set_gauge(const std::string& name, double value);

  /// Current value, or NaN when the gauge was never set.
  double gauge(const std::string& name) const;

  /// All gauges, sorted by name (deterministic listing order).
  std::vector<std::pair<std::string, double>> gauges() const;

  /// Drop all gauges (tests; scale_ladder between rungs).
  void clear();

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace laacad::obs
