#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "common/json_writer.hpp"

namespace laacad::obs {

namespace detail {
std::atomic<unsigned> g_state{0};
}  // namespace detail

namespace {

constexpr unsigned kTraceFile = 1u;
constexpr unsigned kTimers = 2u;

struct SpanEvent {
  const char* name;     ///< string literal owned by the caller
  std::uint64_t ts_ns;  ///< relative to session start (wall-clock field)
  std::uint64_t dur_ns; ///< wall-clock field
  std::int64_t arg;     ///< deterministic label (round, trial, shard, chunk)
  int depth;            ///< deterministic nesting depth on this thread
  bool has_arg;
};

/// One thread's share of the session. The owner thread is the only writer;
/// the mutex is taken per append so the stop_trace() flush — which may run
/// on a different thread — reads a consistent buffer without assuming every
/// emitter has provably joined. Uncontended lock/unlock is tens of
/// nanoseconds, paid only while tracing is on.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<SpanEvent> events;
  /// Stage totals, keyed by name pointer. A session uses a handful of
  /// distinct literals, so the linear scan beats any hash map.
  std::vector<std::pair<const char*, StageTotal>> stages;
  int tid = 0;    ///< registration order within the session
  int depth = 0;  ///< owner-thread span nesting (no lock needed)
};

struct Session {
  std::mutex mu;
  bool active = false;
  bool file_sink = false;
  std::string path;
  std::uint64_t generation = 0;
  std::chrono::steady_clock::time_point t0;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

Session& session() {
  static Session s;
  return s;
}

/// Published copy of Session::generation so the per-thread fast path can
/// detect a new session without taking the session mutex.
std::atomic<std::uint64_t> g_generation{0};

/// The calling thread's buffer for the *current* session, registering on
/// first use. Returns nullptr when no session is active (collection raced
/// with stop_trace — the span is dropped, which is fine: stop_trace is
/// documented to run after instrumented work joins).
ThreadBuffer* my_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf;
  thread_local std::uint64_t gen = 0;
  if (!buf || gen != g_generation.load(std::memory_order_acquire)) {
    Session& s = session();
    std::lock_guard<std::mutex> lk(s.mu);
    if (!s.active) return nullptr;
    buf = std::make_shared<ThreadBuffer>();
    buf->tid = static_cast<int>(s.buffers.size());
    s.buffers.push_back(buf);
    gen = s.generation;
  }
  return buf.get();
}

void accumulate_stage(ThreadBuffer& b, const char* name, std::uint64_t dur) {
  for (auto& [n, total] : b.stages) {
    if (n == name) {
      ++total.count;
      total.total_ns += dur;
      total.hist.record(dur);
      return;
    }
  }
  b.stages.emplace_back(name, StageTotal{});
  StageTotal& total = b.stages.back().second;
  total.count = 1;
  total.total_ns = dur;
  total.hist.record(dur);
}

void write_trace_json(const std::string& path,
                      const std::vector<std::shared_ptr<ThreadBuffer>>& bufs) {
  std::ofstream out(path, std::ios::trunc);
  if (!out)
    throw std::runtime_error("obs: cannot write trace file: " + path);
#ifndef _WIN32
  const std::int64_t pid = static_cast<std::int64_t>(getpid());
#else
  const std::int64_t pid = 0;
#endif
  // Compact output: a million-span trace at indent 2 would spend most of
  // its bytes on whitespace Perfetto ignores.
  JsonWriter w(out, /*indent=*/0);
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("otherData").begin_object();
  w.kv("tool", "laacad");
  w.kv("format", "chrome-trace-events");
  w.end_object();
  w.key("traceEvents").begin_array();
  w.begin_object();
  w.kv("name", "process_name");
  w.kv("ph", "M");
  w.kv("pid", pid);
  w.key("args").begin_object();
  w.kv("name", "laacad");
  w.end_object();
  w.end_object();
  for (const auto& buf : bufs) {
    for (const SpanEvent& e : buf->events) {
      w.begin_object();
      w.kv("name", e.name);
      w.kv("cat", "laacad");
      w.kv("ph", "X");
      w.kv("pid", pid);
      w.kv("tid", buf->tid);
      // Microseconds, the trace-event convention; sub-microsecond spans
      // keep their nanosecond digits as a fraction.
      w.kv("ts", static_cast<double>(e.ts_ns) / 1000.0);
      w.kv("dur", static_cast<double>(e.dur_ns) / 1000.0);
      w.key("args").begin_object();
      w.kv("depth", e.depth);
      if (e.has_arg) w.kv("n", e.arg);
      w.end_object();
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
  out << '\n';
  if (!out)
    throw std::runtime_error("obs: short write on trace file: " + path);
}

void start_session(const std::string& path, bool file_sink) {
  Session& s = session();
  std::lock_guard<std::mutex> lk(s.mu);
  if (s.active)
    throw std::runtime_error(
        "obs: a trace/timer session is already active; stop it first");
  s.active = true;
  s.file_sink = file_sink;
  s.path = path;
  s.buffers.clear();
  ++s.generation;
  s.t0 = std::chrono::steady_clock::now();
  g_generation.store(s.generation, std::memory_order_release);
  detail::g_state.store(file_sink ? (kTraceFile | kTimers) : kTimers,
                        std::memory_order_release);
}

}  // namespace

namespace detail {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - session().t0)
          .count());
}

void open_span(const char* /*name*/) {
  ThreadBuffer* b = my_buffer();
  if (b) ++b->depth;
}

void close_span(const char* name, std::uint64_t t0_ns, std::int64_t arg,
                bool has_arg) {
  ThreadBuffer* b = my_buffer();
  if (!b) return;
  const std::uint64_t t1 = now_ns();
  const std::uint64_t dur = t1 > t0_ns ? t1 - t0_ns : 0;
  // The matching open_span incremented depth, so the span itself sits at
  // depth - 1; decrement before recording.
  --b->depth;
  std::lock_guard<std::mutex> lk(b->mu);
  accumulate_stage(*b, name, dur);
  if (g_state.load(std::memory_order_relaxed) & kTraceFile)
    b->events.push_back(
        SpanEvent{name, t0_ns, dur, arg, b->depth, has_arg});
}

}  // namespace detail

void emit_span(const char* name, std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1, std::int64_t arg) {
  if (!enabled()) return;
  ThreadBuffer* b = my_buffer();
  if (!b) return;
  const Session& s = session();
  auto rel = [&](std::chrono::steady_clock::time_point t) -> std::uint64_t {
    const auto d =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t - s.t0).count();
    return d > 0 ? static_cast<std::uint64_t>(d) : 0;
  };
  const std::uint64_t ts = rel(t0);
  const std::uint64_t dur = rel(t1) > ts ? rel(t1) - ts : 0;
  std::lock_guard<std::mutex> lk(b->mu);
  accumulate_stage(*b, name, dur);
  if (detail::g_state.load(std::memory_order_relaxed) & kTraceFile)
    b->events.push_back(SpanEvent{name, ts, dur, arg, b->depth, true});
}

void start_trace(const std::string& path) { start_session(path, true); }

void start_timers() { start_session(std::string(), false); }

bool active() {
  Session& s = session();
  std::lock_guard<std::mutex> lk(s.mu);
  return s.active;
}

TraceReport stop_trace() {
  TraceReport report;
  Session& s = session();
  std::vector<std::shared_ptr<ThreadBuffer>> bufs;
  std::string path;
  bool file_sink = false;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    if (!s.active) return report;
    // Disable collection before flushing: span sites go back to the
    // load+branch no-op, and any site that already fetched its buffer
    // finishes its append under that buffer's mutex before we read it.
    detail::g_state.store(0, std::memory_order_release);
    s.active = false;
    bufs = std::move(s.buffers);
    s.buffers.clear();
    path = std::move(s.path);
    file_sink = s.file_sink;
  }

  std::vector<std::pair<std::string, StageTotal>> stages;
  for (const auto& buf : bufs) {
    std::lock_guard<std::mutex> lk(buf->mu);
    report.spans += buf->events.size();
    if (!buf->events.empty() || !buf->stages.empty()) ++report.threads;
    for (const auto& [name, total] : buf->stages) {
      auto it = std::find_if(stages.begin(), stages.end(),
                             [&](const auto& p) { return p.first == name; });
      if (it == stages.end()) {
        stages.emplace_back(name, total);
      } else {
        it->second.count += total.count;
        it->second.total_ns += total.total_ns;
        it->second.hist.merge(total.hist);
      }
    }
  }
  std::sort(stages.begin(), stages.end(), [](const auto& a, const auto& b) {
    return a.second.total_ns != b.second.total_ns
               ? a.second.total_ns > b.second.total_ns
               : a.first < b.first;
  });
  report.stages = std::move(stages);

  if (file_sink) write_trace_json(path, bufs);
  return report;
}

}  // namespace laacad::obs
