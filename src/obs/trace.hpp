// Span tracer — Chrome trace-event / Perfetto-compatible timelines for the
// whole stack: engine round stages, scenario phases, campaign trials, fleet
// shard lifecycles.
//
// Design constraints (the observability contract):
//
//  * Disabled mode is the default and costs one relaxed atomic load and a
//    branch per span site — no allocation, no lock, no clock read. Every
//    instrumented hot path stays shippable in Release builds.
//  * Enabled mode appends to per-thread span buffers: a thread only ever
//    touches its own buffer, so span emission never serializes across pool
//    workers. Each buffer carries a mutex, but it is uncontended in steady
//    state (the owner is the only writer); it exists so the end-of-session
//    flush is provably race-free under ThreadSanitizer even if a stray
//    thread is still winding down.
//  * Deterministic fields are kept apart from wall-clock fields. A span's
//    *structure* — name (a string literal), nesting depth, optional integer
//    argument, per-thread emission order — is a pure function of the
//    computation and is what tests assert. Its timestamps (ts/dur,
//    microseconds since session start) are wall-clock and appear only in
//    the emitted JSON for humans and Perfetto.
//  * The tracer writes only to its own sink (the TRACE_*.json path given to
//    start_trace) — never into BENCH_* artifacts, whose byte-identity
//    across thread/worker/shard counts is the repo's core contract.
//
// Span names must be string literals (or otherwise outlive the session):
// the buffer stores the pointer, not a copy — that is what keeps the
// enabled fast path allocation-free until a buffer vector grows.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/histogram.hpp"

namespace laacad::obs {

namespace detail {
/// Bit 0: a trace session with a JSON sink is active. Bit 1: stage-timer
/// accumulation is active (scale_ladder's per-rung breakdown runs timers
/// without a trace file). Zero = fully disabled, the default.
extern std::atomic<unsigned> g_state;
void open_span(const char* name);
void close_span(const char* name, std::uint64_t t0_ns, std::int64_t arg,
                bool has_arg);
std::uint64_t now_ns();
}  // namespace detail

/// True when any sink (trace file or stage timers) is collecting.
inline bool enabled() {
  return detail::g_state.load(std::memory_order_relaxed) != 0;
}

/// RAII span: records [construction, destruction) as one complete event on
/// the calling thread. The optional integer argument is a deterministic
/// label (round number, trial id, shard index) and lands in the event's
/// args alongside the nesting depth. When the tracer is disabled both
/// constructor and destructor reduce to a load+branch.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : ScopedSpan(name, 0, false) {}
  ScopedSpan(const char* name, std::int64_t arg) : ScopedSpan(name, arg, true) {}
  ~ScopedSpan() {
    if (open_) detail::close_span(name_, t0_, arg_, has_arg_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  ScopedSpan(const char* name, std::int64_t arg, bool has_arg) {
    if (!enabled()) return;
    name_ = name;
    arg_ = arg;
    has_arg_ = has_arg;
    open_ = true;
    detail::open_span(name);
    t0_ = detail::now_ns();
  }

  const char* name_ = nullptr;
  std::uint64_t t0_ = 0;
  std::int64_t arg_ = 0;
  bool has_arg_ = false;
  bool open_ = false;
};

/// Record a complete span from explicit steady-clock endpoints, for
/// lifecycles that do not fit a C++ scope (a fleet shard's spawn-to-reap
/// interval). Lands on the calling thread's buffer at its current depth.
/// No-op when disabled.
void emit_span(const char* name, std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1, std::int64_t arg);

/// One stage's accumulated wall-clock across a session: totals plus the
/// full duration distribution, so a report answers "p99 of the publish
/// stage" and not just "time spent publishing". The histogram accumulates
/// per thread (owner-thread writes only) and merges at stop_trace() —
/// merge order cannot change its state (see obs/histogram.hpp).
struct StageTotal {
  std::uint64_t count = 0;   ///< spans closed under this name
  std::uint64_t total_ns = 0;
  Histogram hist;            ///< distribution of span durations (ns)
};

/// What stop_trace() hands back: deterministic span structure plus the
/// wall-clock stage totals (for stdout breakdowns — never for BENCH files).
struct TraceReport {
  std::size_t spans = 0;    ///< events flushed (all threads)
  std::size_t threads = 0;  ///< thread buffers that emitted at least once
  /// Per-name totals, sorted by descending total_ns (ties by name).
  std::vector<std::pair<std::string, StageTotal>> stages;
};

/// Start collecting spans into a JSON trace written to `path` at
/// stop_trace(). Stage timers ride along. Throws std::runtime_error if a
/// session is already active (sessions never nest — one sink per process).
void start_trace(const std::string& path);

/// Start stage-timer accumulation only: spans are timed and totalled per
/// name but no per-event buffer grows and no file is written. Same
/// exclusivity rule as start_trace.
void start_timers();

/// True between start_trace()/start_timers() and stop_trace().
bool active();

/// Stop the session: disable collection, flush every thread buffer, write
/// the trace JSON (when the session had a path), and return the report.
/// Call after all instrumented parallel work has joined. Throws
/// std::runtime_error when the trace file cannot be written; returns an
/// empty report when no session is active.
TraceReport stop_trace();

}  // namespace laacad::obs
