#include "scenario/apply.hpp"

#include <algorithm>
#include <functional>
#include <numeric>
#include <stdexcept>

#include "common/json_writer.hpp"
#include "obs/trace.hpp"
#include "wsn/deployment.hpp"
#include "wsn/energy.hpp"

namespace laacad::scenario {

namespace {

double auto_gamma(const ScenarioSpec& spec, const wsn::Domain& domain) {
  if (spec.gamma > 0.0) return spec.gamma;
  return wsn::auto_comm_range(domain, spec.nodes, spec.side);
}

geom::Vec2 bbox_point(const wsn::Domain& domain, geom::Vec2 fraction) {
  const geom::BBox bb = domain.bbox();
  return {bb.lo.x + fraction.x * bb.width(),
          bb.lo.y + fraction.y * bb.height()};
}

/// Decompose the *new* blocked area of an axis-aligned rectangle —
/// rect ∩ outer ring, minus every existing hole — into disjoint
/// axis-aligned cells. This is what lets obstacles and jams overlap freely:
/// instead of unioning hole polygons (a general boolean op), only the area
/// not already blocked becomes new holes, so the hole list stays pairwise
/// disjoint (the Domain invariant that keeps area bookkeeping and cell
/// clipping exact) while the *blocked region* is the union.
///
/// The grid is cut at every outer/hole vertex coordinate inside the rect.
/// Every domain the scenario format can build is axis-aligned rectilinear
/// (square/lshape/cross outlines, rectangular obstacles and jams, uniform
/// resize scaling), so each cell lies entirely inside or outside each ring
/// and the midpoint test classifies it exactly.
std::vector<geom::Ring> new_blocked_cells(const wsn::Domain& domain,
                                          geom::Vec2 lo, geom::Vec2 hi) {
  std::vector<double> xs = {lo.x, hi.x}, ys = {lo.y, hi.y};
  auto collect = [&](const geom::Ring& ring) {
    for (const geom::Vec2& v : ring) {
      if (v.x > lo.x && v.x < hi.x) xs.push_back(v.x);
      if (v.y > lo.y && v.y < hi.y) ys.push_back(v.y);
    }
  };
  collect(domain.outer());
  for (const geom::Ring& h : domain.holes()) collect(h);
  auto dedupe = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    // Merge near-identical cuts: a sliver thinner than 1e-9 m carries no
    // area and would only produce degenerate cells.
    v.erase(std::unique(v.begin(), v.end(),
                        [](double a, double b) { return b - a < 1e-9; }),
            v.end());
  };
  dedupe(xs);
  dedupe(ys);

  std::vector<geom::Ring> cells;
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
    // Cells in one x-strip merge vertically when contiguous, so a jam over
    // clear ground stays one rectangle per strip instead of a grid.
    std::size_t open = cells.size();  // first cell index of this strip
    for (std::size_t j = 0; j + 1 < ys.size(); ++j) {
      const geom::Vec2 c{(xs[i] + xs[i + 1]) / 2, (ys[j] + ys[j + 1]) / 2};
      bool blocked = !geom::contains_point(domain.outer(), c, 0.0);
      for (const geom::Ring& h : domain.holes()) {
        if (blocked) break;
        blocked = geom::contains_point(h, c, 0.0);
      }
      if (blocked) {
        open = cells.size() + 1;  // break vertical contiguity
        continue;
      }
      if (open < cells.size()) {
        cells.back()[2].y = ys[j + 1];  // extend the open cell upward
        cells.back()[3].y = ys[j + 1];
      } else {
        cells.push_back(geom::box_ring(
            {{xs[i], ys[j]}, {xs[i + 1], ys[j + 1]}}));
        open = cells.size() - 1;
      }
    }
  }
  return cells;
}

/// Apply `cells` as new holes; nullptr when nothing remains to cover.
std::unique_ptr<wsn::Domain> with_blocked_cells(
    const wsn::Domain& domain, const std::vector<geom::Ring>& cells) {
  std::vector<geom::Ring> holes = domain.holes();
  holes.insert(holes.end(), cells.begin(), cells.end());
  auto out = std::make_unique<wsn::Domain>(domain.outer(), std::move(holes));
  if (out->area() <= 1e-6) return nullptr;
  return out;
}

/// True when the rect touches the domain's outer ring at all (used to
/// distinguish "outside the domain" from "already fully blocked").
bool rect_touches_domain(const wsn::Domain& domain, geom::Vec2 lo,
                         geom::Vec2 hi) {
  const geom::Ring clipped = geom::dedupe_ring(
      geom::sutherland_hodgman(domain.outer(), geom::box_ring({lo, hi})));
  return geom::area(clipped) > 1e-6;
}

void remove_nodes_desc(World& w, std::vector<int> ids) {
  std::sort(ids.begin(), ids.end(), std::greater<int>());
  for (int id : ids) {
    w.net->remove_node(id);
    w.battery.erase(w.battery.begin() + id);
  }
}

}  // namespace

World build_world(ScenarioSpec spec) {
  World w;
  w.spec = std::move(spec);
  w.rng = Rng(w.spec.seed);
  validate(w.spec);
  wsn::Domain base =
      wsn::make_named_domain(w.spec.domain, w.spec.side, w.spec.hole);
  // Declared obstacles are punched up front, with the same union-by-
  // decomposition the jam_region event uses, so they may overlap each
  // other (or the canned `hole`) freely.
  for (const ObstacleRect& rect : w.spec.obstacles) {
    const geom::Vec2 lo = bbox_point(base, rect.lo);
    const geom::Vec2 hi = bbox_point(base, rect.hi);
    if (!rect_touches_domain(base, lo, hi))
      throw std::runtime_error(
          "obstacle (spec line " + std::to_string(rect.line) +
          "): rectangle lies outside the domain");
    const auto cells = new_blocked_cells(base, lo, hi);
    if (cells.empty()) continue;  // fully inside earlier obstacles
    auto blocked = with_blocked_cells(base, cells);
    if (!blocked)
      throw std::runtime_error(
          "obstacle (spec line " + std::to_string(rect.line) +
          "): no coverage area remains");
    base = std::move(*blocked);
  }
  w.domains.push_back(std::make_unique<wsn::Domain>(std::move(base)));
  const wsn::Domain& domain = *w.domains.back();

  std::vector<geom::Vec2> initial;
  if (w.spec.deploy == "stacked") {
    // Groups of k co-located nodes on uniform anchors — the paper's "even
    // clustering" equilibrium as a start. Count rounds down to a multiple
    // of k, matching the Fig. 5 construction; validate() guarantees
    // nodes >= k, so there is always at least one group.
    const int groups = w.spec.nodes / w.spec.k;
    const auto anchors = wsn::deploy_uniform(domain, groups, w.rng);
    initial = wsn::stacked(anchors, w.spec.k, w.rng, 1e-3);
  } else {
    initial = wsn::deploy_named(domain, w.spec.deploy, w.spec.nodes,
                                w.spec.side, w.rng);
  }
  w.initial_positions = initial;
  w.net = std::make_unique<wsn::Network>(&domain, std::move(initial),
                                         auto_gamma(w.spec, domain));
  w.battery.assign(static_cast<std::size_t>(w.net->size()), w.spec.battery);

  core::LaacadConfig cfg;
  cfg.k = w.spec.k;
  cfg.alpha = w.spec.alpha;
  cfg.epsilon = w.spec.epsilon;
  cfg.max_rounds = w.spec.max_rounds;
  cfg.seed = w.spec.seed;
  cfg.num_threads = w.spec.num_threads;
  cfg.localized.max_hops = w.spec.max_hops;
  cfg.localized.frame.range_noise = w.spec.noise;
  cfg.localized.ideal_gather = (w.spec.flooding == "ideal");
  if (w.spec.backend == "localized")
    cfg.provider = core::make_localized_provider(cfg.localized, cfg.seed);
  else if (w.spec.backend == "global")
    cfg.provider = core::make_global_provider(cfg.adaptive);
  // backend "auto": provider stays null and the engine selects by network
  // size (global below provider_auto_threshold, localized above).
  w.engine = std::make_unique<core::Engine>(*w.net, cfg);
  return w;
}

EventRecord apply_event(World& w, const Event& ev, int index,
                        int global_round) {
  obs::ScopedSpan event_span("event", index);
  EventRecord rec;
  rec.index = index;
  rec.type = to_string(ev.type);
  rec.global_round = global_round;
  rec.nodes_before = w.net->size();
  const int n = w.net->size();

  switch (ev.type) {
    case EventType::kFailNodes: {
      std::vector<int> doomed;
      if (ev.pick == "region") {
        const geom::Vec2 lo = bbox_point(w.domain(), ev.lo);
        const geom::Vec2 hi = bbox_point(w.domain(), ev.hi);
        for (int i = 0; i < n; ++i) {
          const geom::Vec2 p = w.net->position(i);
          if (p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y)
            doomed.push_back(i);
        }
        if (ev.count > 0 && static_cast<int>(doomed.size()) > ev.count)
          doomed.resize(static_cast<std::size_t>(ev.count));
      } else if (ev.pick == "max_range") {
        std::vector<int> ids(static_cast<std::size_t>(n));
        std::iota(ids.begin(), ids.end(), 0);
        std::sort(ids.begin(), ids.end(), [&](int a, int b) {
          const double ra = w.net->node(a).sensing_range;
          const double rb = w.net->node(b).sensing_range;
          return ra != rb ? ra > rb : a < b;
        });
        ids.resize(static_cast<std::size_t>(std::min(ev.count, n)));
        doomed = std::move(ids);
      } else {  // random: Fisher–Yates prefix over node ids
        std::vector<int> ids(static_cast<std::size_t>(n));
        std::iota(ids.begin(), ids.end(), 0);
        const int want = std::min(ev.count, n);
        for (int i = 0; i < want; ++i) {
          const int j = w.rng.uniform_int(i, n - 1);
          std::swap(ids[static_cast<std::size_t>(i)],
                    ids[static_cast<std::size_t>(j)]);
        }
        ids.resize(static_cast<std::size_t>(want));
        doomed = std::move(ids);
      }
      const int killed = static_cast<int>(doomed.size());
      remove_nodes_desc(w, std::move(doomed));
      rec.detail = "removed " + std::to_string(killed) + " nodes (" +
                   ev.pick + ")";
      break;
    }
    case EventType::kDrainBattery: {
      std::vector<int> depleted;
      for (int i = 0; i < n; ++i) {
        const double drain =
            ev.epochs * wsn::sensing_energy(w.net->node(i).sensing_range) +
            ev.fraction * w.spec.battery;
        w.battery[static_cast<std::size_t>(i)] -= drain;
        if (w.battery[static_cast<std::size_t>(i)] <= 0.0)
          depleted.push_back(i);
      }
      const int killed = static_cast<int>(depleted.size());
      remove_nodes_desc(w, std::move(depleted));
      rec.detail = "drained batteries; " + std::to_string(killed) +
                   " nodes depleted";
      break;
    }
    case EventType::kAddNodes: {
      std::vector<geom::Vec2> fresh;
      if (ev.deploy == "uniform")
        fresh = wsn::deploy_uniform(w.domain(), ev.count, w.rng);
      else if (ev.deploy == "corner")
        fresh = wsn::deploy_corner(w.domain(), ev.count, w.rng);
      else
        fresh = wsn::deploy_gaussian(
            w.domain(), ev.count, bbox_point(w.domain(), ev.at),
            ev.sigma * w.domain().bbox().width(), w.rng);
      for (const geom::Vec2& p : fresh) {
        w.net->add_node(p);
        w.battery.push_back(w.spec.battery);
      }
      rec.detail = "added " + std::to_string(ev.count) + " nodes (" +
                   ev.deploy + ")";
      break;
    }
    case EventType::kResizeBoundary: {
      const geom::Vec2 anchor = w.domain().bbox().lo;
      geom::Ring outer = w.domain().outer();
      for (geom::Vec2& v : outer) v = anchor + (v - anchor) * ev.scale;
      std::vector<geom::Ring> holes = w.domain().holes();
      for (geom::Ring& hole : holes)
        for (geom::Vec2& v : hole) v = anchor + (v - anchor) * ev.scale;
      w.domains.push_back(
          std::make_unique<wsn::Domain>(std::move(outer), std::move(holes)));
      w.net->rebind_domain(w.domains.back().get());
      rec.detail = "boundary scaled by " +
                   JsonWriter::number_to_string(ev.scale);
      break;
    }
    case EventType::kJamRegion: {
      const geom::Vec2 lo = bbox_point(w.domain(), ev.lo);
      const geom::Vec2 hi = bbox_point(w.domain(), ev.hi);
      // The spec rect is in bbox fractions, so on a non-rectangular domain
      // it can spill outside the outer ring, and jams may overlap earlier
      // jams or declared obstacles: the blocked region becomes the *union*.
      // Only the newly blocked area (decomposed into disjoint cells) is
      // added as holes, which keeps Domain's pairwise-disjointness invariant
      // and exact area bookkeeping. A jam entirely outside the domain is
      // still a scenario-author error — reject it loudly.
      if (!rect_touches_domain(w.domain(), lo, hi))
        throw std::runtime_error(
            "jam_region (spec line " + std::to_string(ev.line) +
            "): rectangle lies outside the domain");
      const auto cells = new_blocked_cells(w.domain(), lo, hi);
      if (cells.empty()) {
        // Union semantics: re-jamming blocked ground changes nothing.
        rec.detail = "rectangle already jammed; no new area";
        break;
      }
      auto jammed = with_blocked_cells(w.domain(), cells);
      // Something must remain to cover: a jam swallowing (essentially) the
      // whole domain would leave every node infeasible.
      if (!jammed)
        throw std::runtime_error(
            "jam_region (spec line " + std::to_string(ev.line) +
            "): no coverage area remains after the jam");
      w.domains.push_back(std::move(jammed));
      w.net->rebind_domain(w.domains.back().get());
      rec.detail = "jammed rectangle (" + JsonWriter::number_to_string(lo.x) +
                   ", " + JsonWriter::number_to_string(lo.y) + ")-(" +
                   JsonWriter::number_to_string(hi.x) + ", " +
                   JsonWriter::number_to_string(hi.y) + ")";
      break;
    }
  }

  rec.nodes_after = w.net->size();
  return rec;
}

}  // namespace laacad::scenario
