// Shared world state + event application for the batch runner and the
// serving daemon.
//
// `World` is everything a ScenarioSpec instantiates: the domain stack, the
// live network, the engine, per-node batteries, and the one seeded Rng that
// deployment and events consume in order. `build_world` is the setup path
// (validation, obstacle punching, deployment, engine construction) and
// `apply_event` mutates the world exactly the way the batch ScenarioRunner
// always has — both the runner and serve::CoverageService go through these
// two entry points, so served state and replayed state cannot drift.
//
// Determinism contract: build_world consumes RNG for the deployment only;
// apply_event consumes RNG only for events it actually applies (a rejected
// event throws before any mutation or RNG draw). Replaying the same spec +
// event sequence therefore reproduces the same world bit-for-bit.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "laacad/engine.hpp"
#include "scenario/spec.hpp"
#include "wsn/network.hpp"

namespace laacad::scenario {

/// One applied disruption.
struct EventRecord {
  int index = 0;         ///< position in the spec timeline
  std::string type;
  int global_round = 0;  ///< when it fired
  int idle_rounds = 0;   ///< converged rounds skipped waiting for round=N
  int nodes_before = 0;
  int nodes_after = 0;
  std::string detail;    ///< human-readable summary ("removed 6 nodes", ...)
};

/// Live state instantiated from a ScenarioSpec. Movable (the engine and
/// network hold pointers to heap objects whose addresses survive the move),
/// not copyable.
struct World {
  ScenarioSpec spec;
  /// Domains are appended by resize/jam events; earlier entries stay alive
  /// because positions were projected under them mid-run. Back is current.
  std::vector<std::unique_ptr<wsn::Domain>> domains;
  std::unique_ptr<wsn::Network> net;
  std::unique_ptr<core::Engine> engine;
  std::vector<double> battery;  ///< parallel to net->nodes()
  std::vector<geom::Vec2> initial_positions;
  Rng rng{1};  ///< deployment + event randomness, in order

  const wsn::Domain& domain() const { return *domains.back(); }
};

/// Validate the spec and build the initial world: named domain, punched
/// obstacles, deployment (including `stacked`), gamma resolution, batteries,
/// engine with the spec's backend. Throws std::runtime_error on a bad spec.
World build_world(ScenarioSpec spec);

/// Apply one disruption to the world. `index` is the event's position in
/// the timeline (traced as the "event" span id); `global_round` stamps the
/// record. Throws std::runtime_error — *before* touching the world or its
/// RNG — when the event is invalid against the current domain (e.g. a
/// jam_region outside it).
EventRecord apply_event(World& w, const Event& ev, int index,
                        int global_round);

}  // namespace laacad::scenario
