#include "scenario/runner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <ostream>

#include "common/json_writer.hpp"
#include "coverage/grid_checker.hpp"
#include "obs/trace.hpp"
#include "wsn/connectivity.hpp"

namespace laacad::scenario {

ScenarioRunner::ScenarioRunner(ScenarioSpec spec)
    : world_(build_world(std::move(spec))) {}

ScenarioRunner::~ScenarioRunner() = default;

PhaseRecord ScenarioRunner::run_phase(int phase_idx, const std::string& cause,
                                      int next_event) {
  obs::ScopedSpan phase_span("phase", phase_idx);
  const ScenarioSpec& spec = world_.spec;
  PhaseRecord rec;
  rec.phase = phase_idx;
  rec.cause = cause;
  rec.start_round = global_round_;

  const Event* pending =
      next_event < static_cast<int>(spec.events.size())
          ? &spec.events[static_cast<std::size_t>(next_event)]
          : nullptr;
  while (world_.engine->rounds_executed() < spec.max_rounds) {
    // A round-scheduled disruption interrupts the phase, converged or not.
    if (pending && pending->trigger == Trigger::kAtRound &&
        global_round_ >= pending->round)
      break;
    core::RoundMetrics m = world_.engine->step();
    ++global_round_;
    const bool done = (m.moved == 0);
    rec.series.add(m);
    if (spec.history) rec.history.push_back(std::move(m));
    if (done) {
      rec.converged = true;
      break;
    }
  }
  rec.rounds = rec.series.rounds;

  // Tune sensing ranges for the current positions, then verify what this
  // phase actually delivers: k-coverage, load balance, connectivity.
  world_.engine->finalize();
  rec.nodes = world_.net->size();
  double rmax = 0.0, rmin = std::numeric_limits<double>::infinity();
  for (const double r : world_.net->sensing_ranges()) {
    rmax = std::max(rmax, r);
    rmin = std::min(rmin, r);
  }
  rec.final_max_range = rmax;
  rec.final_min_range = std::isfinite(rmin) ? rmin : 0.0;
  rec.load = wsn::load_report(*world_.net);

  const auto coverage = cov::grid_coverage(
      domain(), cov::sensing_disks(*world_.net), spec.grid_resolution,
      std::max(8, spec.k));
  rec.coverage_min_depth = coverage.min_depth;
  rec.coverage_mean_depth = coverage.mean_depth;
  rec.covered_fraction_k = coverage.fraction_at_least(spec.k);

  rec.components =
      rmax > 0.0 ? wsn::analyze_connectivity(*world_.net, 1.25 * rmax).components
                 : world_.net->size();

  if (!world_.battery.empty()) {
    rec.battery_min =
        *std::min_element(world_.battery.begin(), world_.battery.end());
    rec.battery_mean =
        std::accumulate(world_.battery.begin(), world_.battery.end(), 0.0) /
        static_cast<double>(world_.battery.size());
  }
  return rec;
}

ScenarioResult ScenarioRunner::run() {
  const ScenarioSpec& spec = world_.spec;
  ScenarioResult result;
  result.spec = spec;
  result.resolved_gamma = world_.net->gamma();
  result.initial_positions = world_.initial_positions;

  int next_event = 0;
  std::string cause = "initial";
  for (int phase_idx = 0;; ++phase_idx) {
    result.phases.push_back(run_phase(phase_idx, cause, next_event));

    if (next_event >= static_cast<int>(spec.events.size())) break;
    const Event& ev = spec.events[static_cast<std::size_t>(next_event)];

    // A converged network idles (no movement, no round cost) until a
    // round-scheduled disruption arrives: fast-forward the clock.
    int idle = 0;
    if (ev.trigger == Trigger::kAtRound && global_round_ < ev.round) {
      idle = ev.round - global_round_;
      global_round_ = ev.round;
    }
    // apply_event stamps global_round after the fast-forward above.
    EventRecord erec = apply_event(world_, ev, next_event, global_round_);
    erec.idle_rounds = idle;
    result.events.push_back(std::move(erec));
    ++next_event;

    if (world_.net->size() < spec.k) {
      result.aborted = true;
      result.abort_reason =
          "network dropped below k nodes (k=" + std::to_string(spec.k) +
          ", nodes=" + std::to_string(world_.net->size()) + ")";
      break;
    }
    world_.engine->begin_phase();
    cause = to_string(ev.type);
  }

  result.total_rounds = global_round_;
  result.all_converged =
      std::all_of(result.phases.begin(), result.phases.end(),
                  [](const PhaseRecord& p) { return p.converged; });
  result.final_coverage_ok =
      !result.aborted &&
      result.phases.back().coverage_min_depth >= spec.k;
  return result;
}

void ScenarioResult::write_json(std::ostream& out) const {
  JsonWriter w(out);
  w.begin_object();
  w.kv("schema", "laacad.scenario.v1");
  w.kv("scenario", spec.name);

  w.key("config").begin_object();
  w.kv("domain", spec.domain);
  w.kv("side", spec.side);
  w.kv("hole", spec.hole);
  if (!spec.obstacles.empty()) {
    w.key("obstacles").begin_array();
    for (const ObstacleRect& rect : spec.obstacles) {
      w.begin_array();
      w.value(rect.lo.x);
      w.value(rect.lo.y);
      w.value(rect.hi.x);
      w.value(rect.hi.y);
      w.end_array();
    }
    w.end_array();
  }
  w.kv("deploy", spec.deploy);
  w.kv("nodes", spec.nodes);
  w.kv("k", spec.k);
  w.kv("alpha", spec.alpha);
  w.kv("epsilon", spec.epsilon);
  w.kv("max_rounds", spec.max_rounds);
  w.kv("gamma", spec.gamma);  // 0 = auto; see gamma_used for the real value
  w.kv("gamma_used", resolved_gamma);
  w.kv("backend", spec.backend);
  if (spec.backend == "localized") {
    w.kv("max_hops", spec.max_hops);
    w.kv("noise", spec.noise);
    w.kv("flooding", spec.flooding);
  }
  w.kv("seed", spec.seed);
  w.kv("battery", spec.battery);
  w.kv("grid_resolution", spec.grid_resolution);
  w.end_object();

  w.key("phases").begin_array();
  for (const PhaseRecord& p : phases) {
    w.begin_object();
    w.kv("phase", p.phase);
    w.kv("cause", p.cause);
    w.kv("start_round", p.start_round);
    w.kv("rounds", p.rounds);
    w.kv("converged", p.converged);
    w.kv("nodes", p.nodes);
    w.kv("final_max_range", p.final_max_range);
    w.kv("final_min_range", p.final_min_range);
    w.key("load").begin_object();
    w.kv("max", p.load.max_load);
    w.kv("min", p.load.min_load);
    w.kv("total", p.load.total_load);
    w.kv("fairness", p.load.fairness);
    w.end_object();
    w.key("coverage").begin_object();
    w.kv("min_depth", p.coverage_min_depth);
    w.kv("mean_depth", p.coverage_mean_depth);
    w.kv("fraction_at_k", p.covered_fraction_k);
    w.end_object();
    w.kv("components", p.components);
    w.key("battery").begin_object();
    w.kv("min", p.battery_min);
    w.kv("mean", p.battery_mean);
    w.end_object();
    // Streaming aggregates are always present; the full per-round history
    // only when the spec opted in (`history true`) — its absence is the
    // constant-memory contract, not a truncation.
    w.key("series").begin_object();
    w.kv("travel", p.series.travel);
    w.kv("mean_max_circumradius", p.series.max_circumradius.mean());
    w.kv("mean_max_move", p.series.max_move.mean());
    w.kv("mean_moved", p.series.moved.mean());
    w.end_object();
    if (spec.history) {
      w.key("history").begin_array();
      for (const core::RoundMetrics& m : p.history) {
        w.begin_object();
        w.kv("round", m.round);
        w.kv("max_circumradius", m.max_circumradius);
        w.kv("min_circumradius", m.min_circumradius);
        w.kv("max_hat_radius", m.max_hat_radius);
        w.kv("max_move", m.max_move);
        w.kv("moved", m.moved);
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();

  w.key("events").begin_array();
  for (const EventRecord& e : events) {
    w.begin_object();
    w.kv("index", e.index);
    w.kv("type", e.type);
    w.kv("global_round", e.global_round);
    w.kv("idle_rounds", e.idle_rounds);
    w.kv("nodes_before", e.nodes_before);
    w.kv("nodes_after", e.nodes_after);
    w.kv("detail", e.detail);
    w.end_object();
  }
  w.end_array();

  w.key("summary").begin_object();
  w.kv("phases", static_cast<std::int64_t>(phases.size()));
  w.kv("events_fired", static_cast<std::int64_t>(events.size()));
  w.kv("total_rounds", total_rounds);
  w.kv("final_nodes", phases.empty() ? 0 : phases.back().nodes);
  w.kv("all_converged", all_converged);
  w.kv("final_coverage_ok", final_coverage_ok);
  w.kv("aborted", aborted);
  if (aborted) w.kv("abort_reason", abort_reason);
  w.end_object();

  w.end_object();
  out << '\n';
}

}  // namespace laacad::scenario
