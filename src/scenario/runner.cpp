#include "scenario/runner.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>
#include <ostream>
#include <stdexcept>

#include "common/json_writer.hpp"
#include "coverage/grid_checker.hpp"
#include "obs/trace.hpp"
#include "wsn/connectivity.hpp"
#include "wsn/deployment.hpp"
#include "wsn/energy.hpp"

namespace laacad::scenario {

namespace {

double auto_gamma(const ScenarioSpec& spec, const wsn::Domain& domain) {
  if (spec.gamma > 0.0) return spec.gamma;
  return wsn::auto_comm_range(domain, spec.nodes, spec.side);
}

geom::Vec2 bbox_point(const wsn::Domain& domain, geom::Vec2 fraction) {
  const geom::BBox bb = domain.bbox();
  return {bb.lo.x + fraction.x * bb.width(),
          bb.lo.y + fraction.y * bb.height()};
}

/// Decompose the *new* blocked area of an axis-aligned rectangle —
/// rect ∩ outer ring, minus every existing hole — into disjoint
/// axis-aligned cells. This is what lets obstacles and jams overlap freely:
/// instead of unioning hole polygons (a general boolean op), only the area
/// not already blocked becomes new holes, so the hole list stays pairwise
/// disjoint (the Domain invariant that keeps area bookkeeping and cell
/// clipping exact) while the *blocked region* is the union.
///
/// The grid is cut at every outer/hole vertex coordinate inside the rect.
/// Every domain the scenario format can build is axis-aligned rectilinear
/// (square/lshape/cross outlines, rectangular obstacles and jams, uniform
/// resize scaling), so each cell lies entirely inside or outside each ring
/// and the midpoint test classifies it exactly.
std::vector<geom::Ring> new_blocked_cells(const wsn::Domain& domain,
                                          geom::Vec2 lo, geom::Vec2 hi) {
  std::vector<double> xs = {lo.x, hi.x}, ys = {lo.y, hi.y};
  auto collect = [&](const geom::Ring& ring) {
    for (const geom::Vec2& v : ring) {
      if (v.x > lo.x && v.x < hi.x) xs.push_back(v.x);
      if (v.y > lo.y && v.y < hi.y) ys.push_back(v.y);
    }
  };
  collect(domain.outer());
  for (const geom::Ring& h : domain.holes()) collect(h);
  auto dedupe = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    // Merge near-identical cuts: a sliver thinner than 1e-9 m carries no
    // area and would only produce degenerate cells.
    v.erase(std::unique(v.begin(), v.end(),
                        [](double a, double b) { return b - a < 1e-9; }),
            v.end());
  };
  dedupe(xs);
  dedupe(ys);

  std::vector<geom::Ring> cells;
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
    // Cells in one x-strip merge vertically when contiguous, so a jam over
    // clear ground stays one rectangle per strip instead of a grid.
    std::size_t open = cells.size();  // first cell index of this strip
    for (std::size_t j = 0; j + 1 < ys.size(); ++j) {
      const geom::Vec2 c{(xs[i] + xs[i + 1]) / 2, (ys[j] + ys[j + 1]) / 2};
      bool blocked = !geom::contains_point(domain.outer(), c, 0.0);
      for (const geom::Ring& h : domain.holes()) {
        if (blocked) break;
        blocked = geom::contains_point(h, c, 0.0);
      }
      if (blocked) {
        open = cells.size() + 1;  // break vertical contiguity
        continue;
      }
      if (open < cells.size()) {
        cells.back()[2].y = ys[j + 1];  // extend the open cell upward
        cells.back()[3].y = ys[j + 1];
      } else {
        cells.push_back(geom::box_ring(
            {{xs[i], ys[j]}, {xs[i + 1], ys[j + 1]}}));
        open = cells.size() - 1;
      }
    }
  }
  return cells;
}

/// Apply `cells` as new holes; nullptr when nothing remains to cover.
std::unique_ptr<wsn::Domain> with_blocked_cells(
    const wsn::Domain& domain, const std::vector<geom::Ring>& cells) {
  std::vector<geom::Ring> holes = domain.holes();
  holes.insert(holes.end(), cells.begin(), cells.end());
  auto out = std::make_unique<wsn::Domain>(domain.outer(), std::move(holes));
  if (out->area() <= 1e-6) return nullptr;
  return out;
}

/// True when the rect touches the domain's outer ring at all (used to
/// distinguish "outside the domain" from "already fully blocked").
bool rect_touches_domain(const wsn::Domain& domain, geom::Vec2 lo,
                         geom::Vec2 hi) {
  const geom::Ring clipped = geom::dedupe_ring(
      geom::sutherland_hodgman(domain.outer(), geom::box_ring({lo, hi})));
  return geom::area(clipped) > 1e-6;
}

}  // namespace

ScenarioRunner::ScenarioRunner(ScenarioSpec spec)
    : spec_(std::move(spec)), rng_(spec_.seed) {
  validate(spec_);
  wsn::Domain base =
      wsn::make_named_domain(spec_.domain, spec_.side, spec_.hole);
  // Declared obstacles are punched up front, with the same union-by-
  // decomposition the jam_region event uses, so they may overlap each
  // other (or the canned `hole`) freely.
  for (const ObstacleRect& rect : spec_.obstacles) {
    const geom::Vec2 lo = bbox_point(base, rect.lo);
    const geom::Vec2 hi = bbox_point(base, rect.hi);
    if (!rect_touches_domain(base, lo, hi))
      throw std::runtime_error(
          "obstacle (spec line " + std::to_string(rect.line) +
          "): rectangle lies outside the domain");
    const auto cells = new_blocked_cells(base, lo, hi);
    if (cells.empty()) continue;  // fully inside earlier obstacles
    auto blocked = with_blocked_cells(base, cells);
    if (!blocked)
      throw std::runtime_error(
          "obstacle (spec line " + std::to_string(rect.line) +
          "): no coverage area remains");
    base = std::move(*blocked);
  }
  domains_.push_back(std::make_unique<wsn::Domain>(std::move(base)));
  const wsn::Domain& domain = *domains_.back();

  std::vector<geom::Vec2> initial;
  if (spec_.deploy == "stacked") {
    // Groups of k co-located nodes on uniform anchors — the paper's "even
    // clustering" equilibrium as a start. Count rounds down to a multiple
    // of k, matching the Fig. 5 construction; validate() guarantees
    // nodes >= k, so there is always at least one group.
    const int groups = spec_.nodes / spec_.k;
    const auto anchors = wsn::deploy_uniform(domain, groups, rng_);
    initial = wsn::stacked(anchors, spec_.k, rng_, 1e-3);
  } else {
    initial =
        wsn::deploy_named(domain, spec_.deploy, spec_.nodes, spec_.side, rng_);
  }
  initial_positions_ = initial;
  net_ = std::make_unique<wsn::Network>(&domain, std::move(initial),
                                        auto_gamma(spec_, domain));
  battery_.assign(static_cast<std::size_t>(net_->size()), spec_.battery);

  core::LaacadConfig cfg;
  cfg.k = spec_.k;
  cfg.alpha = spec_.alpha;
  cfg.epsilon = spec_.epsilon;
  cfg.max_rounds = spec_.max_rounds;
  cfg.seed = spec_.seed;
  cfg.num_threads = spec_.num_threads;
  cfg.localized.max_hops = spec_.max_hops;
  cfg.localized.frame.range_noise = spec_.noise;
  if (spec_.backend == "localized")
    cfg.provider = core::make_localized_provider(cfg.localized, cfg.seed);
  else if (spec_.backend == "global")
    cfg.provider = core::make_global_provider(cfg.adaptive);
  // backend "auto": provider stays null and the engine selects by network
  // size (global below provider_auto_threshold, localized above).
  engine_ = std::make_unique<core::Engine>(*net_, cfg);
}

ScenarioRunner::~ScenarioRunner() = default;

PhaseRecord ScenarioRunner::run_phase(int phase_idx, const std::string& cause,
                                      int next_event) {
  obs::ScopedSpan phase_span("phase", phase_idx);
  PhaseRecord rec;
  rec.phase = phase_idx;
  rec.cause = cause;
  rec.start_round = global_round_;

  const Event* pending =
      next_event < static_cast<int>(spec_.events.size())
          ? &spec_.events[static_cast<std::size_t>(next_event)]
          : nullptr;
  while (engine_->rounds_executed() < spec_.max_rounds) {
    // A round-scheduled disruption interrupts the phase, converged or not.
    if (pending && pending->trigger == Trigger::kAtRound &&
        global_round_ >= pending->round)
      break;
    core::RoundMetrics m = engine_->step();
    ++global_round_;
    const bool done = (m.moved == 0);
    rec.series.add(m);
    if (spec_.history) rec.history.push_back(std::move(m));
    if (done) {
      rec.converged = true;
      break;
    }
  }
  rec.rounds = rec.series.rounds;

  // Tune sensing ranges for the current positions, then verify what this
  // phase actually delivers: k-coverage, load balance, connectivity.
  engine_->finalize();
  rec.nodes = net_->size();
  double rmax = 0.0, rmin = std::numeric_limits<double>::infinity();
  for (const double r : net_->sensing_ranges()) {
    rmax = std::max(rmax, r);
    rmin = std::min(rmin, r);
  }
  rec.final_max_range = rmax;
  rec.final_min_range = std::isfinite(rmin) ? rmin : 0.0;
  rec.load = wsn::load_report(*net_);

  const auto coverage = cov::grid_coverage(
      domain(), cov::sensing_disks(*net_), spec_.grid_resolution,
      std::max(8, spec_.k));
  rec.coverage_min_depth = coverage.min_depth;
  rec.coverage_mean_depth = coverage.mean_depth;
  rec.covered_fraction_k = coverage.fraction_at_least(spec_.k);

  rec.components =
      rmax > 0.0 ? wsn::analyze_connectivity(*net_, 1.25 * rmax).components
                 : net_->size();

  if (!battery_.empty()) {
    rec.battery_min = *std::min_element(battery_.begin(), battery_.end());
    rec.battery_mean =
        std::accumulate(battery_.begin(), battery_.end(), 0.0) /
        static_cast<double>(battery_.size());
  }
  return rec;
}

void ScenarioRunner::remove_nodes_desc(std::vector<int> ids) {
  std::sort(ids.begin(), ids.end(), std::greater<int>());
  for (int id : ids) {
    net_->remove_node(id);
    battery_.erase(battery_.begin() + id);
  }
}

EventRecord ScenarioRunner::apply_event(const Event& ev, int index) {
  obs::ScopedSpan event_span("event", index);
  EventRecord rec;
  rec.index = index;
  rec.type = to_string(ev.type);
  rec.global_round = global_round_;
  rec.nodes_before = net_->size();
  const int n = net_->size();

  switch (ev.type) {
    case EventType::kFailNodes: {
      std::vector<int> doomed;
      if (ev.pick == "region") {
        const geom::Vec2 lo = bbox_point(domain(), ev.lo);
        const geom::Vec2 hi = bbox_point(domain(), ev.hi);
        for (int i = 0; i < n; ++i) {
          const geom::Vec2 p = net_->position(i);
          if (p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y)
            doomed.push_back(i);
        }
        if (ev.count > 0 && static_cast<int>(doomed.size()) > ev.count)
          doomed.resize(static_cast<std::size_t>(ev.count));
      } else if (ev.pick == "max_range") {
        std::vector<int> ids(static_cast<std::size_t>(n));
        std::iota(ids.begin(), ids.end(), 0);
        std::sort(ids.begin(), ids.end(), [&](int a, int b) {
          const double ra = net_->node(a).sensing_range;
          const double rb = net_->node(b).sensing_range;
          return ra != rb ? ra > rb : a < b;
        });
        ids.resize(static_cast<std::size_t>(std::min(ev.count, n)));
        doomed = std::move(ids);
      } else {  // random: Fisher–Yates prefix over node ids
        std::vector<int> ids(static_cast<std::size_t>(n));
        std::iota(ids.begin(), ids.end(), 0);
        const int want = std::min(ev.count, n);
        for (int i = 0; i < want; ++i) {
          const int j = rng_.uniform_int(i, n - 1);
          std::swap(ids[static_cast<std::size_t>(i)],
                    ids[static_cast<std::size_t>(j)]);
        }
        ids.resize(static_cast<std::size_t>(want));
        doomed = std::move(ids);
      }
      const int killed = static_cast<int>(doomed.size());
      remove_nodes_desc(std::move(doomed));
      rec.detail = "removed " + std::to_string(killed) + " nodes (" +
                   ev.pick + ")";
      break;
    }
    case EventType::kDrainBattery: {
      std::vector<int> depleted;
      for (int i = 0; i < n; ++i) {
        const double drain =
            ev.epochs * wsn::sensing_energy(net_->node(i).sensing_range) +
            ev.fraction * spec_.battery;
        battery_[static_cast<std::size_t>(i)] -= drain;
        if (battery_[static_cast<std::size_t>(i)] <= 0.0)
          depleted.push_back(i);
      }
      const int killed = static_cast<int>(depleted.size());
      remove_nodes_desc(std::move(depleted));
      rec.detail = "drained batteries; " + std::to_string(killed) +
                   " nodes depleted";
      break;
    }
    case EventType::kAddNodes: {
      std::vector<geom::Vec2> fresh;
      if (ev.deploy == "uniform")
        fresh = wsn::deploy_uniform(domain(), ev.count, rng_);
      else if (ev.deploy == "corner")
        fresh = wsn::deploy_corner(domain(), ev.count, rng_);
      else
        fresh = wsn::deploy_gaussian(domain(), ev.count,
                                     bbox_point(domain(), ev.at),
                                     ev.sigma * domain().bbox().width(), rng_);
      for (const geom::Vec2& p : fresh) {
        net_->add_node(p);
        battery_.push_back(spec_.battery);
      }
      rec.detail = "added " + std::to_string(ev.count) + " nodes (" +
                   ev.deploy + ")";
      break;
    }
    case EventType::kResizeBoundary: {
      const geom::Vec2 anchor = domain().bbox().lo;
      geom::Ring outer = domain().outer();
      for (geom::Vec2& v : outer) v = anchor + (v - anchor) * ev.scale;
      std::vector<geom::Ring> holes = domain().holes();
      for (geom::Ring& hole : holes)
        for (geom::Vec2& v : hole) v = anchor + (v - anchor) * ev.scale;
      domains_.push_back(
          std::make_unique<wsn::Domain>(std::move(outer), std::move(holes)));
      net_->rebind_domain(domains_.back().get());
      rec.detail = "boundary scaled by " +
                   JsonWriter::number_to_string(ev.scale);
      break;
    }
    case EventType::kJamRegion: {
      const geom::Vec2 lo = bbox_point(domain(), ev.lo);
      const geom::Vec2 hi = bbox_point(domain(), ev.hi);
      // The spec rect is in bbox fractions, so on a non-rectangular domain
      // it can spill outside the outer ring, and jams may overlap earlier
      // jams or declared obstacles: the blocked region becomes the *union*.
      // Only the newly blocked area (decomposed into disjoint cells) is
      // added as holes, which keeps Domain's pairwise-disjointness invariant
      // and exact area bookkeeping. A jam entirely outside the domain is
      // still a scenario-author error — reject it loudly.
      if (!rect_touches_domain(domain(), lo, hi))
        throw std::runtime_error(
            "jam_region (spec line " + std::to_string(ev.line) +
            "): rectangle lies outside the domain");
      const auto cells = new_blocked_cells(domain(), lo, hi);
      if (cells.empty()) {
        // Union semantics: re-jamming blocked ground changes nothing.
        rec.detail = "rectangle already jammed; no new area";
        break;
      }
      auto jammed = with_blocked_cells(domain(), cells);
      // Something must remain to cover: a jam swallowing (essentially) the
      // whole domain would leave every node infeasible.
      if (!jammed)
        throw std::runtime_error(
            "jam_region (spec line " + std::to_string(ev.line) +
            "): no coverage area remains after the jam");
      domains_.push_back(std::move(jammed));
      net_->rebind_domain(domains_.back().get());
      rec.detail = "jammed rectangle (" + JsonWriter::number_to_string(lo.x) +
                   ", " + JsonWriter::number_to_string(lo.y) + ")-(" +
                   JsonWriter::number_to_string(hi.x) + ", " +
                   JsonWriter::number_to_string(hi.y) + ")";
      break;
    }
  }

  rec.nodes_after = net_->size();
  return rec;
}

ScenarioResult ScenarioRunner::run() {
  ScenarioResult result;
  result.spec = spec_;
  result.resolved_gamma = net_->gamma();
  result.initial_positions = initial_positions_;

  int next_event = 0;
  std::string cause = "initial";
  for (int phase_idx = 0;; ++phase_idx) {
    result.phases.push_back(run_phase(phase_idx, cause, next_event));

    if (next_event >= static_cast<int>(spec_.events.size())) break;
    const Event& ev = spec_.events[static_cast<std::size_t>(next_event)];

    // A converged network idles (no movement, no round cost) until a
    // round-scheduled disruption arrives: fast-forward the clock.
    int idle = 0;
    if (ev.trigger == Trigger::kAtRound && global_round_ < ev.round) {
      idle = ev.round - global_round_;
      global_round_ = ev.round;
    }
    // apply_event stamps global_round after the fast-forward above.
    EventRecord erec = apply_event(ev, next_event);
    erec.idle_rounds = idle;
    result.events.push_back(std::move(erec));
    ++next_event;

    if (net_->size() < spec_.k) {
      result.aborted = true;
      result.abort_reason =
          "network dropped below k nodes (k=" + std::to_string(spec_.k) +
          ", nodes=" + std::to_string(net_->size()) + ")";
      break;
    }
    engine_->begin_phase();
    cause = to_string(ev.type);
  }

  result.total_rounds = global_round_;
  result.all_converged =
      std::all_of(result.phases.begin(), result.phases.end(),
                  [](const PhaseRecord& p) { return p.converged; });
  result.final_coverage_ok =
      !result.aborted &&
      result.phases.back().coverage_min_depth >= spec_.k;
  return result;
}

void ScenarioResult::write_json(std::ostream& out) const {
  JsonWriter w(out);
  w.begin_object();
  w.kv("schema", "laacad.scenario.v1");
  w.kv("scenario", spec.name);

  w.key("config").begin_object();
  w.kv("domain", spec.domain);
  w.kv("side", spec.side);
  w.kv("hole", spec.hole);
  if (!spec.obstacles.empty()) {
    w.key("obstacles").begin_array();
    for (const ObstacleRect& rect : spec.obstacles) {
      w.begin_array();
      w.value(rect.lo.x);
      w.value(rect.lo.y);
      w.value(rect.hi.x);
      w.value(rect.hi.y);
      w.end_array();
    }
    w.end_array();
  }
  w.kv("deploy", spec.deploy);
  w.kv("nodes", spec.nodes);
  w.kv("k", spec.k);
  w.kv("alpha", spec.alpha);
  w.kv("epsilon", spec.epsilon);
  w.kv("max_rounds", spec.max_rounds);
  w.kv("gamma", spec.gamma);  // 0 = auto; see gamma_used for the real value
  w.kv("gamma_used", resolved_gamma);
  w.kv("backend", spec.backend);
  if (spec.backend == "localized") {
    w.kv("max_hops", spec.max_hops);
    w.kv("noise", spec.noise);
  }
  w.kv("seed", spec.seed);
  w.kv("battery", spec.battery);
  w.kv("grid_resolution", spec.grid_resolution);
  w.end_object();

  w.key("phases").begin_array();
  for (const PhaseRecord& p : phases) {
    w.begin_object();
    w.kv("phase", p.phase);
    w.kv("cause", p.cause);
    w.kv("start_round", p.start_round);
    w.kv("rounds", p.rounds);
    w.kv("converged", p.converged);
    w.kv("nodes", p.nodes);
    w.kv("final_max_range", p.final_max_range);
    w.kv("final_min_range", p.final_min_range);
    w.key("load").begin_object();
    w.kv("max", p.load.max_load);
    w.kv("min", p.load.min_load);
    w.kv("total", p.load.total_load);
    w.kv("fairness", p.load.fairness);
    w.end_object();
    w.key("coverage").begin_object();
    w.kv("min_depth", p.coverage_min_depth);
    w.kv("mean_depth", p.coverage_mean_depth);
    w.kv("fraction_at_k", p.covered_fraction_k);
    w.end_object();
    w.kv("components", p.components);
    w.key("battery").begin_object();
    w.kv("min", p.battery_min);
    w.kv("mean", p.battery_mean);
    w.end_object();
    // Streaming aggregates are always present; the full per-round history
    // only when the spec opted in (`history true`) — its absence is the
    // constant-memory contract, not a truncation.
    w.key("series").begin_object();
    w.kv("travel", p.series.travel);
    w.kv("mean_max_circumradius", p.series.max_circumradius.mean());
    w.kv("mean_max_move", p.series.max_move.mean());
    w.kv("mean_moved", p.series.moved.mean());
    w.end_object();
    if (spec.history) {
      w.key("history").begin_array();
      for (const core::RoundMetrics& m : p.history) {
        w.begin_object();
        w.kv("round", m.round);
        w.kv("max_circumradius", m.max_circumradius);
        w.kv("min_circumradius", m.min_circumradius);
        w.kv("max_hat_radius", m.max_hat_radius);
        w.kv("max_move", m.max_move);
        w.kv("moved", m.moved);
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();

  w.key("events").begin_array();
  for (const EventRecord& e : events) {
    w.begin_object();
    w.kv("index", e.index);
    w.kv("type", e.type);
    w.kv("global_round", e.global_round);
    w.kv("idle_rounds", e.idle_rounds);
    w.kv("nodes_before", e.nodes_before);
    w.kv("nodes_after", e.nodes_after);
    w.kv("detail", e.detail);
    w.end_object();
  }
  w.end_array();

  w.key("summary").begin_object();
  w.kv("phases", static_cast<std::int64_t>(phases.size()));
  w.kv("events_fired", static_cast<std::int64_t>(events.size()));
  w.kv("total_rounds", total_rounds);
  w.kv("final_nodes", phases.empty() ? 0 : phases.back().nodes);
  w.kv("all_converged", all_converged);
  w.kv("final_coverage_ok", final_coverage_ok);
  w.kv("aborted", aborted);
  if (aborted) w.kv("abort_reason", abort_reason);
  w.end_object();

  w.end_object();
  out << '\n';
}

}  // namespace laacad::scenario
