// ScenarioRunner — executes a ScenarioSpec as a sequence of *redeployment
// phases* separated by disruption events.
//
// Phase 0 runs LAACAD from the initial deployment. Each event then mutates
// the live network (failures, drain, arrivals, a new domain) and the engine
// is re-armed (Engine::begin_phase) so the survivors autonomously
// re-balance k-coverage — the dynamic behaviour the paper claims but a
// single static run cannot exhibit. After every phase the runner verifies
// coverage with cov::grid_coverage, records load balance and connectivity,
// and the whole record serializes to a BENCH_*.json metrics file through
// common/json_writer.
//
// Determinism: event randomness comes from one seeded Rng consumed in spec
// order, the engine is bit-identical for every num_threads, and JSON
// numbers print exactly — so the emitted metrics are byte-identical across
// thread counts (num_threads is never serialized).
#pragma once

#include <string>
#include <vector>

#include "laacad/engine.hpp"
#include "scenario/apply.hpp"
#include "scenario/spec.hpp"
#include "wsn/network.hpp"

namespace laacad::scenario {

/// One redeployment phase: LAACAD rounds between two disruptions (or from
/// the initial deployment / to scenario end).
struct PhaseRecord {
  int phase = 0;
  std::string cause;    ///< "initial" or the event type that started it
  int start_round = 0;  ///< global round count when the phase began
  int rounds = 0;       ///< rounds executed in this phase
  bool converged = false;
  int nodes = 0;        ///< network size at phase end
  double final_max_range = 0.0;
  double final_min_range = 0.0;
  wsn::LoadReport load;
  int coverage_min_depth = 0;
  double coverage_mean_depth = 0.0;
  double covered_fraction_k = 0.0;  ///< area fraction with depth >= k
  int components = 0;               ///< radio graph at 1.25 R*
  double battery_min = 0.0;
  double battery_mean = 0.0;
  /// Streaming per-round aggregates (constant memory, always populated).
  core::RoundSeries series;
  /// Full per-round record; only filled when ScenarioSpec::history is set.
  std::vector<core::RoundMetrics> history;
};

struct ScenarioResult {
  ScenarioSpec spec;
  double resolved_gamma = 0.0;  ///< comm range actually used (auto or spec)
  /// The deployment the timeline started from — for renderers and probes
  /// (figure benches) that want before/after pictures. In-memory only;
  /// never serialized into the JSON.
  std::vector<geom::Vec2> initial_positions;
  std::vector<PhaseRecord> phases;
  std::vector<EventRecord> events;
  int total_rounds = 0;
  bool all_converged = false;  ///< every phase converged within max_rounds
  bool final_coverage_ok = false;  ///< last phase min depth >= k
  bool aborted = false;            ///< timeline cut short (e.g. nodes < k)
  std::string abort_reason;

  /// Serialize the full record (config echo, per-phase metrics with round
  /// history, event log, summary) as a JSON document. Excludes execution
  /// details (thread count), so output is byte-identical across threads.
  void write_json(std::ostream& out) const;
};

class ScenarioRunner {
 public:
  /// Validates the spec (scenario::validate) and builds the initial
  /// deployment; throws std::runtime_error on a bad spec.
  explicit ScenarioRunner(ScenarioSpec spec);
  ~ScenarioRunner();

  /// Execute the full timeline. Call once.
  ScenarioResult run();

  /// Deployment state after (or during) run — for tests and visualization.
  const wsn::Network& network() const { return *world_.net; }
  const wsn::Domain& domain() const { return world_.domain(); }

 private:
  PhaseRecord run_phase(int phase_idx, const std::string& cause,
                        int next_event);

  /// All scenario state lives in the shared World; the runner is the batch
  /// driver over scenario::build_world / scenario::apply_event — the same
  /// entry points the serving daemon uses, so replayed and served state
  /// share one code path.
  World world_;
  int global_round_ = 0;
};

}  // namespace laacad::scenario
