#include "scenario/spec.hpp"

#include <fstream>
#include <istream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "common/json_writer.hpp"
#include "common/specparse.hpp"

namespace laacad::scenario {

namespace {

using specparse::fail;
using specparse::parse_bool;
using specparse::parse_double;
using specparse::parse_int;
using specparse::parse_uint64;
using specparse::tokenize;

/// `name=value` pairs trailing an event line.
std::unordered_map<std::string, std::string> parse_args(
    const std::vector<std::string>& toks, std::size_t first, int line) {
  std::unordered_map<std::string, std::string> out;
  for (std::size_t i = first; i < toks.size(); ++i) {
    const auto eq = toks[i].find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == toks[i].size())
      fail(line, "event argument '" + toks[i] + "' is not name=value");
    if (!out.emplace(toks[i].substr(0, eq), toks[i].substr(eq + 1)).second)
      fail(line, "duplicate event argument '" + toks[i].substr(0, eq) + "'");
  }
  return out;
}

Event parse_event(const std::vector<std::string>& toks, int line) {
  if (toks.size() < 3)
    fail(line, "event needs a trigger and a type: event <converged|round=N> "
               "<type> [name=value ...]");
  Event ev;
  ev.line = line;

  const std::string& trig = toks[1];
  if (trig == "converged") {
    ev.trigger = Trigger::kOnConvergence;
  } else if (trig.rfind("round=", 0) == 0) {
    ev.trigger = Trigger::kAtRound;
    ev.round = parse_int(trig.substr(6), line, "round");
    // round=0 fires before the first engine step — a daemon event accepted
    // before any redeployment round replays with that stamp.
    if (ev.round < 0) fail(line, "event round must be >= 0");
  } else {
    fail(line, "unknown trigger '" + trig + "' (converged or round=N)");
  }

  auto args = parse_args(toks, 3, line);
  auto take = [&](const char* name) {
    auto it = args.find(name);
    if (it == args.end()) return std::string();
    std::string v = it->second;
    args.erase(it);
    return v;
  };
  auto take_double = [&](const char* name, double def) {
    const std::string v = take(name);
    return v.empty() ? def : parse_double(v, line, name);
  };
  auto take_int = [&](const char* name, int def) {
    const std::string v = take(name);
    return v.empty() ? def : parse_int(v, line, name);
  };

  const std::string& type = toks[2];
  if (type == "fail_nodes") {
    ev.type = EventType::kFailNodes;
    ev.count = take_int("count", 1);
    if (const std::string p = take("pick"); !p.empty()) ev.pick = p;
    if (ev.pick != "random" && ev.pick != "region" && ev.pick != "max_range")
      fail(line, "fail_nodes pick must be random, region, or max_range");
    // Rect arguments apply only to pick=region; in other modes they fall
    // through to the leftover-argument check below, so a forgotten
    // pick=region is a parse error, not a silently different experiment.
    if (ev.pick == "region") {
      ev.lo = {take_double("x0", 0.0), take_double("y0", 0.0)};
      ev.hi = {take_double("x1", 1.0), take_double("y1", 1.0)};
      if (!(ev.lo.x < ev.hi.x) || !(ev.lo.y < ev.hi.y))
        fail(line,
             "fail_nodes region rectangle is empty (need x0 < x1, y0 < y1)");
      if (ev.lo.x < 0.0 || ev.lo.y < 0.0 || ev.hi.x > 1.0 || ev.hi.y > 1.0)
        fail(line, "fail_nodes region coordinates are bbox fractions in [0,1]");
    }
    if (ev.count < 0) fail(line, "fail_nodes count must be >= 0");
    if (ev.count == 0 && ev.pick != "region")
      fail(line, "fail_nodes count=0 (meaning 'all') requires pick=region");
  } else if (type == "drain_battery") {
    ev.type = EventType::kDrainBattery;
    ev.epochs = take_double("epochs", 0.0);
    ev.fraction = take_double("fraction", 0.0);
    if (ev.epochs < 0.0 || ev.fraction < 0.0 || ev.fraction > 1.0)
      fail(line, "drain_battery needs epochs >= 0 and fraction in [0,1]");
    if (ev.epochs == 0.0 && ev.fraction == 0.0)
      fail(line, "drain_battery drains nothing: set epochs= or fraction=");
  } else if (type == "add_nodes") {
    ev.type = EventType::kAddNodes;
    ev.count = take_int("count", 1);
    if (ev.count <= 0) fail(line, "add_nodes count must be >= 1");
    if (const std::string d = take("deploy"); !d.empty()) ev.deploy = d;
    if (ev.deploy != "uniform" && ev.deploy != "corner" &&
        ev.deploy != "gaussian")
      fail(line, "add_nodes deploy must be uniform, corner, or gaussian");
    // Placement arguments apply only to deploy=gaussian; elsewhere they fall
    // through to the leftover-argument check and error out.
    if (ev.deploy == "gaussian") {
      ev.at = {take_double("x", 0.5), take_double("y", 0.5)};
      ev.sigma = take_double("sigma", 0.1);
      if (ev.sigma <= 0.0) fail(line, "add_nodes sigma must be > 0");
      if (ev.at.x < 0.0 || ev.at.y < 0.0 || ev.at.x > 1.0 || ev.at.y > 1.0)
        fail(line, "add_nodes x/y are bbox fractions in [0,1]");
    }
  } else if (type == "resize_boundary") {
    ev.type = EventType::kResizeBoundary;
    ev.scale = take_double("scale", 1.0);
    if (ev.scale <= 0.0) fail(line, "resize_boundary scale must be > 0");
  } else if (type == "jam_region") {
    ev.type = EventType::kJamRegion;
    ev.lo = {take_double("x0", 0.4), take_double("y0", 0.4)};
    ev.hi = {take_double("x1", 0.6), take_double("y1", 0.6)};
    if (!(ev.lo.x < ev.hi.x) || !(ev.lo.y < ev.hi.y))
      fail(line, "jam_region rectangle is empty (need x0 < x1 and y0 < y1)");
    if (ev.lo.x < 0.0 || ev.lo.y < 0.0 || ev.hi.x > 1.0 || ev.hi.y > 1.0)
      fail(line, "jam_region coordinates are bbox fractions in [0,1]");
  } else {
    fail(line, "unknown event type '" + type + "'");
  }

  if (!args.empty())
    fail(line, "event argument '" + args.begin()->first +
                   "' does not apply to " + type);
  return ev;
}

}  // namespace

const char* to_string(EventType t) {
  switch (t) {
    case EventType::kFailNodes: return "fail_nodes";
    case EventType::kDrainBattery: return "drain_battery";
    case EventType::kAddNodes: return "add_nodes";
    case EventType::kResizeBoundary: return "resize_boundary";
    case EventType::kJamRegion: return "jam_region";
  }
  return "?";
}

bool set_key(ScenarioSpec& spec, const std::string& key,
             const std::string& val, int line) {
  if (key == "domain") spec.domain = val;
  else if (key == "side") spec.side = parse_double(val, line, key);
  else if (key == "hole") spec.hole = parse_bool(val, line, key);
  else if (key == "deploy") spec.deploy = val;
  else if (key == "nodes") spec.nodes = parse_int(val, line, key);
  else if (key == "k") spec.k = parse_int(val, line, key);
  else if (key == "alpha") spec.alpha = parse_double(val, line, key);
  else if (key == "epsilon") spec.epsilon = parse_double(val, line, key);
  else if (key == "max_rounds") spec.max_rounds = parse_int(val, line, key);
  else if (key == "gamma") spec.gamma = parse_double(val, line, key);
  else if (key == "backend") spec.backend = val;
  else if (key == "max_hops") spec.max_hops = parse_int(val, line, key);
  else if (key == "noise") spec.noise = parse_double(val, line, key);
  else if (key == "flooding") spec.flooding = val;
  else if (key == "battery") spec.battery = parse_double(val, line, key);
  else if (key == "grid_resolution")
    spec.grid_resolution = parse_double(val, line, key);
  else return false;
  return true;
}

ScenarioSpec parse_scenario(std::istream& in) {
  ScenarioSpec spec;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto toks = tokenize(line);
    if (toks.empty()) continue;
    const std::string& key = toks[0];
    if (key == "event") {
      spec.events.push_back(parse_event(toks, lineno));
      continue;
    }
    if (key == "obstacle") {
      if (toks.size() != 5)
        fail(lineno, "obstacle needs four bbox fractions: "
                     "obstacle <x0> <y0> <x1> <y1>");
      ObstacleRect rect;
      rect.lo = {parse_double(toks[1], lineno, "x0"),
                 parse_double(toks[2], lineno, "y0")};
      rect.hi = {parse_double(toks[3], lineno, "x1"),
                 parse_double(toks[4], lineno, "y1")};
      rect.line = lineno;
      if (!(rect.lo.x < rect.hi.x) || !(rect.lo.y < rect.hi.y))
        fail(lineno, "obstacle rectangle is empty (need x0 < x1 and y0 < y1)");
      if (rect.lo.x < 0.0 || rect.lo.y < 0.0 || rect.hi.x > 1.0 ||
          rect.hi.y > 1.0)
        fail(lineno, "obstacle coordinates are bbox fractions in [0,1]");
      spec.obstacles.push_back(rect);
      continue;
    }
    if (toks.size() != 2)
      fail(lineno, "expected 'key value', got " +
                       std::to_string(toks.size()) + " tokens");
    const std::string& val = toks[1];
    if (key == "name") spec.name = val;
    else if (key == "seed") spec.seed = parse_uint64(val, lineno, key);
    else if (key == "threads") spec.num_threads = parse_int(val, lineno, key);
    else if (key == "history") spec.history = parse_bool(val, lineno, key);
    else if (!set_key(spec, key, val, lineno))
      fail(lineno, "unknown key '" + key + "'");
  }

  // at-round events must be non-decreasing in file order, or the "fire in
  // file order" contract would deadlock on an unreachable round.
  int last_round = 0;
  for (const Event& ev : spec.events) {
    if (ev.trigger != Trigger::kAtRound) continue;
    if (ev.round < last_round)
      fail(ev.line, "round-triggered events must be in non-decreasing order");
    last_round = ev.round;
  }

  validate(spec);
  return spec;
}

ScenarioSpec parse_scenario_string(const std::string& text) {
  std::istringstream ss(text);
  return parse_scenario(ss);
}

ScenarioSpec load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open scenario file: " + path);
  ScenarioSpec spec = parse_scenario(in);
  if (spec.name == "unnamed") {
    auto slash = path.find_last_of("/\\");
    std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    if (auto dot = base.find_last_of('.'); dot != std::string::npos)
      base.resize(dot);
    if (!base.empty()) spec.name = base;
  }
  return spec;
}

std::string format_event(const Event& ev) {
  std::ostringstream out;
  const auto num = [](double v) { return JsonWriter::number_to_string(v); };
  out << "event ";
  if (ev.trigger == Trigger::kOnConvergence)
    out << "converged";
  else
    out << "round=" << ev.round;
  out << ' ' << to_string(ev.type);
  switch (ev.type) {
    case EventType::kFailNodes:
      out << " count=" << ev.count << " pick=" << ev.pick;
      if (ev.pick == "region")
        out << " x0=" << num(ev.lo.x) << " y0=" << num(ev.lo.y)
            << " x1=" << num(ev.hi.x) << " y1=" << num(ev.hi.y);
      break;
    case EventType::kDrainBattery:
      out << " epochs=" << num(ev.epochs) << " fraction=" << num(ev.fraction);
      break;
    case EventType::kAddNodes:
      out << " count=" << ev.count << " deploy=" << ev.deploy;
      if (ev.deploy == "gaussian")
        out << " x=" << num(ev.at.x) << " y=" << num(ev.at.y)
            << " sigma=" << num(ev.sigma);
      break;
    case EventType::kResizeBoundary:
      out << " scale=" << num(ev.scale);
      break;
    case EventType::kJamRegion:
      out << " x0=" << num(ev.lo.x) << " y0=" << num(ev.lo.y)
          << " x1=" << num(ev.hi.x) << " y1=" << num(ev.hi.y);
      break;
  }
  return out.str();
}

std::string format_spec_header(const ScenarioSpec& spec) {
  if (spec.name.find_first_of(" \t") != std::string::npos ||
      spec.name.empty() || spec.name[0] == '#')
    throw std::runtime_error("scenario name '" + spec.name +
                             "' cannot round-trip through the spec format");
  std::ostringstream out;
  const auto num = [](double v) { return JsonWriter::number_to_string(v); };
  out << "name " << spec.name << '\n';
  out << "domain " << spec.domain << '\n';
  out << "side " << num(spec.side) << '\n';
  out << "hole " << (spec.hole ? "true" : "false") << '\n';
  for (const ObstacleRect& rect : spec.obstacles)
    out << "obstacle " << num(rect.lo.x) << ' ' << num(rect.lo.y) << ' '
        << num(rect.hi.x) << ' ' << num(rect.hi.y) << '\n';
  out << "deploy " << spec.deploy << '\n';
  out << "nodes " << spec.nodes << '\n';
  out << "k " << spec.k << '\n';
  out << "alpha " << num(spec.alpha) << '\n';
  out << "epsilon " << num(spec.epsilon) << '\n';
  out << "max_rounds " << spec.max_rounds << '\n';
  out << "gamma " << num(spec.gamma) << '\n';
  out << "backend " << spec.backend << '\n';
  out << "max_hops " << spec.max_hops << '\n';
  out << "noise " << num(spec.noise) << '\n';
  out << "flooding " << spec.flooding << '\n';
  out << "seed " << spec.seed << '\n';
  out << "battery " << num(spec.battery) << '\n';
  out << "grid_resolution " << num(spec.grid_resolution) << '\n';
  return out.str();
}

Event parse_event_body(const std::string& text) {
  std::vector<std::string> toks = {"event", "converged"};
  const auto body = tokenize(text);
  toks.insert(toks.end(), body.begin(), body.end());
  if (toks.size() < 3)
    specparse::fail(0, "event body needs a type: <type> [name=value ...]");
  return parse_event(toks, 0);
}

void validate(const ScenarioSpec& spec) {
  auto bad = [](const std::string& what) {
    throw std::runtime_error("scenario spec: " + what);
  };
  if (spec.side <= 0.0) bad("side must be > 0");
  if (spec.k < 1) bad("k must be >= 1");
  if (spec.nodes < spec.k) bad("nodes must be >= k");
  if (spec.alpha <= 0.0 || spec.alpha > 1.0) bad("alpha must be in (0, 1]");
  if (spec.epsilon <= 0.0) bad("epsilon must be > 0");
  if (spec.max_rounds < 1) bad("max_rounds must be >= 1");
  if (spec.gamma < 0.0) bad("gamma must be >= 0 (0 = auto)");
  if (spec.num_threads < 0) bad("threads must be >= 0 (0 = hardware)");
  if (spec.battery <= 0.0) bad("battery must be > 0");
  if (spec.grid_resolution <= 0.0) bad("grid_resolution must be > 0");
  if (spec.max_hops < 1) bad("max_hops must be >= 1");
  if (spec.noise < 0.0) bad("noise must be >= 0");
  if (spec.domain != "square" && spec.domain != "lshape" &&
      spec.domain != "cross")
    bad("unknown domain '" + spec.domain + "'");
  if (spec.deploy != "uniform" && spec.deploy != "corner" &&
      spec.deploy != "gaussian" && spec.deploy != "stacked")
    bad("unknown deploy '" + spec.deploy + "'");
  if (spec.backend != "global" && spec.backend != "localized" &&
      spec.backend != "auto")
    bad("unknown backend '" + spec.backend + "'");
  if (spec.flooding != "ideal" && spec.flooding != "ttl")
    bad("unknown flooding '" + spec.flooding + "' (ideal or ttl)");
  for (const ObstacleRect& rect : spec.obstacles) {
    if (!(rect.lo.x < rect.hi.x) || !(rect.lo.y < rect.hi.y))
      bad("obstacle rectangle is empty (need x0 < x1 and y0 < y1)");
    if (rect.lo.x < 0.0 || rect.lo.y < 0.0 || rect.hi.x > 1.0 ||
        rect.hi.y > 1.0)
      bad("obstacle coordinates are bbox fractions in [0,1]");
  }
}

}  // namespace laacad::scenario
