// Declarative scenario specs for dynamic-network experiments.
//
// A scenario describes everything LAACAD's "autonomous deployment" pitch is
// about but a single static run cannot show: the domain, the initial
// deployment, the algorithm configuration, and a *timeline of disruptions*
// (node failures, battery drain, staged arrivals, boundary changes, jammed
// regions) after each of which the surviving network must redeploy and
// re-establish k-coverage.
//
// The on-disk format is deliberately tiny — line-oriented `key value` pairs
// plus `event` lines, no external parser dependency:
//
//   # cascading failures over a 300 m square
//   name     cascade
//   domain   square
//   side     300
//   nodes    40
//   k        2
//   seed     7
//   event converged fail_nodes count=6 pick=random
//   event round=40 drain_battery epochs=3
//   event converged add_nodes count=8 deploy=corner
//
// `event <trigger> <type> [k=v ...]` fires `type` when `trigger` is met:
// `converged` fires at the end of the current redeployment phase,
// `round=N` fires once the *global* round counter (summed over phases)
// reaches N, interrupting an unconverged phase if necessary. Events fire
// strictly in file order — each one ends the current phase and starts a new
// redeployment phase.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "geometry/vec2.hpp"

namespace laacad::scenario {

enum class EventType {
  kFailNodes,       ///< remove nodes (random / inside a rect / largest range)
  kDrainBattery,    ///< subtract energy per the E(r) model; depleted nodes die
  kAddNodes,        ///< deploy fresh nodes (uniform / corner / gaussian)
  kResizeBoundary,  ///< scale the domain outline about its bbox origin
  kJamRegion,       ///< punch a rectangular hole (obstacle) into the domain
};

enum class Trigger {
  kOnConvergence,  ///< fires when the current phase converges (or hits cap)
  kAtRound,        ///< fires when the global round counter reaches `round`
};

const char* to_string(EventType t);

/// One timeline entry. Field meaning depends on `type`; the parser fills
/// defaults and rejects arguments that do not apply. Rectangles (`lo`/`hi`)
/// and gaussian centers are fractions of the current domain bbox, so events
/// stay meaningful after resize_boundary.
struct Event {
  Trigger trigger = Trigger::kOnConvergence;
  int round = 0;  ///< global-round threshold for kAtRound
  EventType type = EventType::kFailNodes;

  int count = 0;                  ///< fail_nodes (0 = all in region) / add_nodes
  std::string pick = "random";    ///< fail_nodes: random | region | max_range
  std::string deploy = "uniform"; ///< add_nodes: uniform | corner | gaussian
  double epochs = 0.0;            ///< drain_battery: energy-model epochs
  double fraction = 0.0;          ///< drain_battery: fraction of full battery
  double scale = 1.0;             ///< resize_boundary factor, > 0
  geom::Vec2 lo{0.0, 0.0};        ///< rect for pick=region / jam_region
  geom::Vec2 hi{1.0, 1.0};
  geom::Vec2 at{0.5, 0.5};        ///< gaussian center (bbox fractions)
  double sigma = 0.1;             ///< gaussian spread (fraction of bbox width)
  int line = 0;                   ///< source line, for error messages
};

/// One pre-punched rectangular obstacle, in bbox fractions like event
/// rectangles: `obstacle x0 y0 x1 y1` in the spec file. This is what lets
/// a scenario describe the paper's Fig. 8 domains (irregular outlines with
/// specific obstacles) declaratively, rather than only the one canned
/// `hole` rectangle.
struct ObstacleRect {
  geom::Vec2 lo{0.0, 0.0};
  geom::Vec2 hi{1.0, 1.0};
  int line = 0;  ///< source line, for error messages
};

/// Full experiment description. Defaults reproduce a modest 2-coverage run
/// on the unit square scaled to 300 m.
struct ScenarioSpec {
  std::string name = "unnamed";
  std::string domain = "square";  ///< square | lshape | cross
  double side = 300.0;
  bool hole = false;              ///< pre-punch the laacad_sim obstacle
  /// Extra obstacles punched at setup, after `hole`, in file order.
  std::vector<ObstacleRect> obstacles;
  /// uniform | corner | gaussian | stacked (stacked: floor(nodes/k)
  /// uniformly placed anchors with k co-located nodes each — the paper's
  /// "even clustering" equilibrium as a *starting* configuration; the
  /// deployed count rounds down to a multiple of k).
  std::string deploy = "uniform";
  int nodes = 40;
  int k = 2;
  double alpha = 1.0;
  double epsilon = 0.5;
  int max_rounds = 300;  ///< per redeployment phase
  double gamma = 0.0;    ///< transmission range; 0 = density-aware auto
  /// global | localized | auto (auto: engine picks global below its
  /// provider_auto_threshold node count, localized above it).
  std::string backend = "global";
  int max_hops = 10;
  double noise = 0.0;
  /// ideal | ttl — gather semantics of the localized backend
  /// (LocalizedConfig::ideal_gather): `ideal` is the paper's Algorithm 2
  /// assumption (every Euclidean-close node is found regardless of radio
  /// path), `ttl` caps the flood at ceil(rho/gamma) + slack hops.
  std::string flooding = "ideal";
  std::uint64_t seed = 1;
  int num_threads = 1;  ///< execution detail; never serialized into metrics
  /// Retain (and serialize) the full per-round history of every phase. Off
  /// by default: per-phase aggregates and the streaming series cover the
  /// usual consumers, and O(rounds) records per phase is exactly the memory
  /// shape the million-node runs cannot afford. Output detail like
  /// `threads`, not a physical key — the campaign engine cannot sweep it.
  bool history = false;
  double battery = 1.0e6;
  double grid_resolution = 5.0;  ///< coverage-check lattice spacing (m)
  std::vector<Event> events;
};

/// Set one *physical* config key (domain, side, hole, deploy, nodes, k,
/// alpha, epsilon, max_rounds, gamma, backend, max_hops, noise, flooding,
/// battery, grid_resolution) from its textual value, parsed exactly as the file
/// format parses it. Returns false for keys outside this set (name, seed,
/// threads, event — those stay with their owning parser: the campaign
/// engine sweeps physical keys through this call but must never sweep
/// identity or execution keys). Throws std::runtime_error ("line N: ...")
/// on a malformed value.
bool set_key(ScenarioSpec& spec, const std::string& key,
             const std::string& value, int line);

/// Parse a scenario from a stream. Throws std::runtime_error with a
/// "line N: ..." message on malformed input; unknown keys are errors (a
/// typo silently ignored would corrupt an experiment).
ScenarioSpec parse_scenario(std::istream& in);

/// Parse from an in-memory string (tests, embedded benches).
ScenarioSpec parse_scenario_string(const std::string& text);

/// Load and parse a scenario file; the file name (sans directory and
/// extension) overrides `name` when the spec does not set one.
ScenarioSpec load_scenario_file(const std::string& path);

/// Serialize one event as a spec-format line ("event round=N type k=v ...",
/// no trailing newline) that round-trips exactly through parse_scenario.
/// The serving daemon's event log is the spec header plus these lines.
std::string format_event(const Event& ev);

/// Serialize the physical + identity configuration of `spec` (every key the
/// file format knows except events, `threads`, and `history` — execution and
/// output details are not part of the experiment) as spec lines. Parsing the
/// result reproduces the spec field-for-field; appending format_event lines
/// reproduces the timeline. Names containing whitespace cannot round-trip
/// through the token-based format and are rejected.
std::string format_spec_header(const ScenarioSpec& spec);

/// Parse an event *body* — "<type> [name=value ...]", with no `event`
/// keyword and no trigger — the vocabulary a daemon client submits; the
/// service stamps the trigger round itself. Returns an event with the
/// default kOnConvergence trigger. Throws std::runtime_error on malformed
/// input, with the same messages as the file parser.
Event parse_event_body(const std::string& text);

/// Spec-level sanity checks shared by parser and runner: positive side,
/// nodes >= k >= 1, alpha in (0,1], epsilon > 0, max_rounds > 0, known
/// domain/deploy/backend strings, event arguments in range. Throws
/// std::runtime_error naming the offending field.
void validate(const ScenarioSpec& spec);

}  // namespace laacad::scenario
