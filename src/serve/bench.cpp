#include "serve/bench.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <deque>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/flatjson.hpp"
#include "common/json_writer.hpp"

namespace laacad::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ns_between(Clock::time_point a, Clock::time_point b) {
  const auto d =
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count();
  return d > 0 ? static_cast<std::uint64_t>(d) : 0;
}

int op_index(const std::string& op) {
  for (std::size_t i = 0; i < kBenchOps.size(); ++i)
    if (op == kBenchOps[i]) return static_cast<int>(i);
  return -1;
}

int connect_to(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("bench: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("bench: bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    throw std::runtime_error("bench: cannot connect to " + host + ":" +
                             std::to_string(port));
  }
  // Same reasoning as the server side: request/response turnarounds must
  // not wait out Nagle + delayed ACK.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool read_line(int fd, std::string* buffer, std::string* line) {
  for (;;) {
    const auto nl = buffer->find('\n');
    if (nl != std::string::npos) {
      *line = buffer->substr(0, nl);
      buffer->erase(0, nl + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    buffer->append(chunk, static_cast<std::size_t>(n));
  }
}

/// A response is a protocol success if it says so — except `health`, whose
/// response *is* a heartbeat line (`{"hb":...}`) rather than an ok object.
bool response_ok(int op_idx, const std::string& response) {
  if (op_idx >= 0 && kBenchOps[static_cast<std::size_t>(op_idx)] ==
                         std::string_view("health"))
    return response.rfind("{\"hb\"", 0) == 0;
  bool ok = false;
  return flatjson::get_bool(response, "ok", &ok) && ok;
}

/// One in-flight request, pushed by the sender before the bytes leave and
/// popped by the receiver in response order (the protocol answers in order
/// per connection).
struct Pending {
  Clock::time_point sched;
  Clock::time_point sent;
  int op_idx;
};

/// Per-connection accumulator; merged into BenchResult after join. Kept
/// connection-local so the hot paths never share a cache line.
struct ConnStats {
  std::array<obs::Histogram, kBenchOps.size()> latency;
  std::array<obs::Histogram, kBenchOps.size()> service;
  std::array<std::uint64_t, kBenchOps.size()> ok{};
  std::array<std::uint64_t, kBenchOps.size()> errors{};
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t transport_errors = 0;
  Clock::time_point first_send;  ///< scheduled time of the first request
  Clock::time_point last_recv;
};

/// Open-loop worker pair for one connection: the sender honors the global
/// schedule no matter how the server behaves; the receiver matches
/// responses FIFO and charges each from its *scheduled* time.
void run_open_loop(int fd, const std::vector<const ScheduledRequest*>& reqs,
                   const std::vector<Clock::time_point>& times,
                   ConnStats* stats) {
  std::mutex mu;
  std::deque<Pending> inflight;

  std::thread receiver([&] {
    std::string buffer, line;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (!read_line(fd, &buffer, &line)) {
        stats->transport_errors += reqs.size() - i;
        return;
      }
      const Clock::time_point now = Clock::now();
      Pending p;
      {
        std::lock_guard<std::mutex> lk(mu);
        p = inflight.front();
        inflight.pop_front();
      }
      ++stats->received;
      stats->last_recv = now;
      const auto op = static_cast<std::size_t>(p.op_idx);
      if (response_ok(p.op_idx, line)) ++stats->ok[op];
      else ++stats->errors[op];
      stats->latency[op].record(ns_between(p.sched, now));
      stats->service[op].record(ns_between(p.sent, now));
    }
  });

  if (!times.empty()) stats->first_send = times[0];
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    std::this_thread::sleep_until(times[i]);
    Pending p;
    p.sched = times[i];
    p.sent = Clock::now();
    p.op_idx = op_index(reqs[i]->op);
    {
      std::lock_guard<std::mutex> lk(mu);
      inflight.push_back(p);
    }
    if (!write_all(fd, reqs[i]->line + "\n")) {
      ++stats->transport_errors;
      {
        std::lock_guard<std::mutex> lk(mu);
        inflight.pop_back();
      }
      break;
    }
    ++stats->sent;
  }
  ::shutdown(fd, SHUT_WR);  // receiver unblocks once responses run out
  receiver.join();
}

/// Closed-loop worker: each request departs when the previous response is
/// in, so scheduled == actual and latency == service time by construction.
void run_closed_loop(int fd, const std::vector<const ScheduledRequest*>& reqs,
                     ConnStats* stats) {
  std::string buffer, line;
  bool first = true;
  for (const ScheduledRequest* req : reqs) {
    const Clock::time_point sent = Clock::now();
    if (first) {
      stats->first_send = sent;
      first = false;
    }
    if (!write_all(fd, req->line + "\n") || !read_line(fd, &buffer, &line)) {
      ++stats->transport_errors;
      return;
    }
    ++stats->sent;
    const Clock::time_point now = Clock::now();
    const int op_idx = op_index(req->op);
    const auto op = static_cast<std::size_t>(op_idx);
    ++stats->received;
    stats->last_recv = now;
    if (response_ok(op_idx, line)) ++stats->ok[op];
    else ++stats->errors[op];
    const std::uint64_t ns = ns_between(sent, now);
    stats->latency[op].record(ns);
    stats->service[op].record(ns);
  }
}

void write_percentile_pair(JsonWriter& w, const BenchVerbStats& v) {
  w.begin_object();
  w.key("latency");
  v.latency.write_percentiles_json(w);
  w.key("service");
  v.service.write_percentiles_json(w);
  // The full encoding stays on one line — sparse bucket pairs exploded
  // across the indented document would bury the readable part.
  std::ostringstream hist;
  JsonWriter hw(hist, /*indent=*/0);
  v.latency.write_json(hw);
  w.key("latency_hist").raw_value(hist.str());
  w.end_object();
}

}  // namespace

BenchResult run_bench(const WorkloadSpec& spec, double side,
                      const std::string& host, int port, bool shutdown_after) {
  BenchResult r;
  r.spec = spec;
  r.side = side;

  const std::vector<ScheduledRequest> schedule = expand_schedule(spec, side);
  for (const ScheduledRequest& req : schedule) {
    const int idx = op_index(req.op);
    if (idx >= 0) ++r.per_op[static_cast<std::size_t>(idx)].scheduled;
  }

  // Round-robin the schedule across connections, preserving global order
  // within each connection.
  const auto conns = static_cast<std::size_t>(spec.connections);
  std::vector<std::vector<const ScheduledRequest*>> assigned(conns);
  std::vector<std::vector<Clock::time_point>> times(conns);
  std::vector<int> fds(conns, -1);
  for (std::size_t c = 0; c < conns; ++c) fds[c] = connect_to(host, port);

  // Schedule origin slightly in the future so every sender thread is
  // already parked in sleep_until when request 0 comes due.
  const Clock::time_point start =
      Clock::now() + std::chrono::milliseconds(50);
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const std::size_t c = i % conns;
    assigned[c].push_back(&schedule[i]);
    if (spec.rate > 0.0)
      times[c].push_back(start + std::chrono::nanoseconds(static_cast<
                             std::int64_t>(1e9 * static_cast<double>(i) /
                                           spec.rate)));
  }

  std::vector<ConnStats> stats(conns);
  std::vector<std::thread> workers;
  workers.reserve(conns);
  for (std::size_t c = 0; c < conns; ++c) {
    workers.emplace_back([&, c] {
      if (spec.rate > 0.0)
        run_open_loop(fds[c], assigned[c], times[c], &stats[c]);
      else
        run_closed_loop(fds[c], assigned[c], &stats[c]);
    });
  }
  for (std::thread& t : workers) t.join();

  // Wall clock spans the first (scheduled) send to the last receive.
  Clock::time_point first_send = Clock::time_point::max();
  Clock::time_point last_recv = Clock::time_point::min();
  for (std::size_t c = 0; c < conns; ++c) {
    const ConnStats& s = stats[c];
    r.sent += s.sent;
    r.received += s.received;
    r.transport_errors += s.transport_errors;
    if (s.sent > 0 && s.first_send < first_send) first_send = s.first_send;
    if (s.received > 0 && s.last_recv > last_recv) last_recv = s.last_recv;
    for (std::size_t op = 0; op < kBenchOps.size(); ++op) {
      r.per_op[op].ok += s.ok[op];
      r.per_op[op].errors += s.errors[op];
      r.per_op[op].latency.merge(s.latency[op]);
      r.per_op[op].service.merge(s.service[op]);
    }
    ::close(fds[c]);
  }
  r.wall_s = last_recv > first_send
                 ? static_cast<double>(ns_between(first_send, last_recv)) / 1e9
                 : 0.0;
  r.achieved_rate_per_s =
      r.wall_s > 0.0 ? static_cast<double>(r.received) / r.wall_s : 0.0;

  // Control epilogue on a fresh connection: make sure every churn event is
  // applied, then capture the server-side breakdown.
  const int ctl = connect_to(host, port);
  std::string buffer, line;
  if (write_all(ctl, "{\"op\":\"drain\"}\n") &&
      read_line(ctl, &buffer, &line) &&
      write_all(ctl, "{\"op\":\"stats\"}\n") &&
      read_line(ctl, &buffer, &line)) {
    r.final_stats = line;
  } else {
    ++r.transport_errors;
  }
  if (shutdown_after) {
    if (write_all(ctl, "{\"op\":\"shutdown\"}\n"))
      read_line(ctl, &buffer, &line);
  }
  ::close(ctl);
  return r;
}

void write_bench_report(const BenchResult& r, std::ostream& out) {
  JsonWriter w(out, /*indent=*/2);
  w.begin_object();
  w.kv("name", r.spec.name);

  // Everything under "deterministic" is a pure function of the workload
  // spec on a healthy run: tests diff this subtree byte-for-byte across
  // runs and thread counts.
  w.key("deterministic").begin_object();
  w.key("workload").begin_object();
  w.kv("requests", r.spec.requests);
  w.kv("rate", r.spec.rate);
  w.kv("connections", r.spec.connections);
  w.kv("seed", static_cast<std::uint64_t>(r.spec.seed));
  w.kv("knn_k", r.spec.knn_k);
  w.key("mix").begin_object();
  w.kv("knn", r.spec.mix_knn);
  w.kv("coverage", r.spec.mix_coverage);
  w.kv("load", r.spec.mix_load);
  w.kv("stats", r.spec.mix_stats);
  w.kv("health", r.spec.mix_health);
  w.end_object();
  w.key("churn").begin_array();
  for (const ChurnSpec& c : r.spec.churn) {
    w.begin_object();
    w.kv("every", c.every);
    w.kv("body", c.body);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.kv("side", r.side);
  w.key("scheduled_per_op").begin_object();
  for (std::size_t op = 0; op < kBenchOps.size(); ++op)
    w.kv(kBenchOps[op], r.per_op[op].scheduled);
  w.end_object();
  std::uint64_t total_ok = 0, total_errors = 0;
  for (const BenchVerbStats& v : r.per_op) {
    total_ok += v.ok;
    total_errors += v.errors;
  }
  w.kv("responses_ok", total_ok);
  w.kv("protocol_errors", total_errors);
  w.kv("transport_errors", r.transport_errors);
  w.end_object();

  // Timing: wall-clock-derived, varies run to run by design.
  w.key("timing").begin_object();
  w.kv("wall_s", r.wall_s);
  w.kv("achieved_rate_per_s", r.achieved_rate_per_s);
  w.kv("offered_rate_per_s", r.spec.rate);
  w.key("per_op").begin_object();
  for (std::size_t op = 0; op < kBenchOps.size(); ++op) {
    if (r.per_op[op].scheduled == 0) continue;
    w.key(kBenchOps[op]);
    write_percentile_pair(w, r.per_op[op]);
  }
  w.end_object();
  // Server-side breakdown, spliced verbatim from the captured stats
  // response: "serve" (snapshot freshness + publish cost) and "latency"
  // (per-verb queue/query/serialize percentiles).
  std::string raw;
  w.key("server").begin_object();
  if (flatjson::get_raw(r.final_stats, "serve", &raw))
    w.key("serve").raw_value(raw);
  if (flatjson::get_raw(r.final_stats, "latency", &raw))
    w.key("latency").raw_value(raw);
  w.end_object();  // server
  w.end_object();  // timing
  w.end_object();
  out << '\n';
}

}  // namespace laacad::serve
