// Open-loop load driver for the serving daemon — the engine behind
// examples/serve_bench.cpp and tests/test_serve_bench.cpp.
//
// Coordinated-omission safety: with a nonzero workload rate the driver
// sends on a fixed schedule (request i departs at start + i/rate,
// regardless of whether earlier responses have come back), and client
// latency is measured from the *scheduled* send time, not the actual
// one. A server that stalls for 100 ms therefore charges that stall to
// every request scheduled during it — the closed-loop bench mistake of
// politely waiting out the stall (and then reporting it as one slow
// request) cannot happen. rate = 0 falls back to an explicit closed
// loop (send, wait, send) where scheduled == actual by construction.
//
// The report separates a deterministic section (config echo, scheduled
// per-op counts, response/error tallies — byte-identical across runs of
// the same workload) from a timing section (wall clock, percentiles,
// histograms, server-side breakdown); see write_bench_report.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "obs/histogram.hpp"
#include "serve/workload.hpp"

namespace laacad::serve {

/// Ops a workload can schedule, in report order.
inline constexpr std::array<const char*, 6> kBenchOps = {
    "knn", "coverage", "load", "stats", "health", "event"};

struct BenchVerbStats {
  std::uint64_t scheduled = 0;  ///< deterministic: from the expanded schedule
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;  ///< protocol errors: ok:false or malformed line
  obs::Histogram latency;    ///< recv - scheduled send (CO-safe client view)
  obs::Histogram service;    ///< recv - actual send (network + server only)
};

struct BenchResult {
  WorkloadSpec spec;
  double side = 0.0;
  std::array<BenchVerbStats, kBenchOps.size()> per_op;
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t transport_errors = 0;  ///< connect/read/write failures
  double wall_s = 0.0;
  double achieved_rate_per_s = 0.0;
  /// The server's full `stats` response captured after the run drained —
  /// source of the server-side queue/query/serialize breakdown.
  std::string final_stats;
};

/// Replay `spec` against a daemon listening on host:port over real TCP.
/// After the workload completes the driver drains the event queue and
/// captures a final `stats` response; with `shutdown_after` it then sends
/// `shutdown` (use when this process owns the server and its serve() loop
/// must unblock). Throws on connect failure; transport errors mid-run are
/// tallied, not thrown.
BenchResult run_bench(const WorkloadSpec& spec, double side,
                      const std::string& host, int port, bool shutdown_after);

/// Write the BENCH_serve_latency.json document for `r` (indent 2).
void write_bench_report(const BenchResult& r, std::ostream& out);

}  // namespace laacad::serve
