#include "serve/event_log.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "common/json_writer.hpp"
#include "coverage/grid_checker.hpp"
#include "scenario/runner.hpp"
#include "wsn/energy.hpp"

namespace laacad::serve {

EventLog::EventLog(const std::string& path,
                   const scenario::ScenarioSpec& spec)
    : path_(path) {
  if (path_.empty()) return;
  out_.open(path_, std::ios::trunc);
  if (!out_)
    throw std::runtime_error("cannot open event log for writing: " + path_);
  out_ << "# LAACAD serve event log: a replayable scenario spec.\n"
       << "# Events are appended as the daemon accepts them, stamped with\n"
       << "# the global round they were applied at.\n"
       << scenario::format_spec_header(spec);
  out_.flush();
  if (!out_) throw std::runtime_error("cannot write event log: " + path_);
}

void EventLog::append(const scenario::Event& ev) {
  if (!out_.is_open()) return;
  out_ << scenario::format_event(ev) << '\n';
  out_.flush();
  if (!out_) throw std::runtime_error("cannot append to event log: " + path_);
  ++events_;
}

void write_network_state(std::ostream& out, const wsn::Network& net,
                         const StateInfo& info) {
  JsonWriter w(out);
  w.begin_object();
  w.kv("schema", "laacad.serve.state.v1");
  w.kv("name", info.name);
  w.kv("total_rounds", info.total_rounds);
  w.kv("phases", info.phases);
  w.kv("events_applied", info.events_applied);
  w.kv("aborted", info.aborted);
  w.kv("nodes", net.size());
  w.kv("gamma", net.gamma());

  double rmax = 0.0, rmin = std::numeric_limits<double>::infinity();
  for (const double r : net.sensing_ranges()) {
    rmax = std::max(rmax, r);
    rmin = std::min(rmin, r);
  }
  w.kv("max_range", rmax);
  w.kv("min_range", std::isfinite(rmin) ? rmin : 0.0);

  const wsn::LoadReport load = wsn::load_report(net);
  w.key("load").begin_object();
  w.kv("max", load.max_load);
  w.kv("min", load.min_load);
  w.kv("total", load.total_load);
  w.kv("fairness", load.fairness);
  w.end_object();

  const auto coverage =
      cov::grid_coverage(net.domain(), cov::sensing_disks(net),
                         info.grid_resolution, std::max(8, info.k));
  w.key("coverage").begin_object();
  w.kv("min_depth", coverage.min_depth);
  w.kv("mean_depth", coverage.mean_depth);
  w.kv("fraction_at_k", coverage.fraction_at_least(info.k));
  w.end_object();

  w.key("positions").begin_array();
  for (const geom::Vec2 p : net.positions()) {
    w.begin_array();
    w.value(p.x);
    w.value(p.y);
    w.end_array();
  }
  w.end_array();

  w.key("sensing_ranges").begin_array();
  for (const double r : net.sensing_ranges()) w.value(r);
  w.end_array();

  w.end_object();
  out << '\n';
}

void replay_log_state(const std::string& log_path, std::ostream& out,
                      int num_threads) {
  scenario::ScenarioSpec spec = scenario::load_scenario_file(log_path);
  if (num_threads >= 0) spec.num_threads = num_threads;
  scenario::ScenarioRunner runner(std::move(spec));
  const scenario::ScenarioResult result = runner.run();

  StateInfo info;
  info.name = result.spec.name;
  info.total_rounds = result.total_rounds;
  info.phases = static_cast<int>(result.phases.size());
  info.events_applied = static_cast<int>(result.events.size());
  info.aborted = result.aborted;
  info.grid_resolution = result.spec.grid_resolution;
  info.k = result.spec.k;
  write_network_state(out, runner.network(), info);
}

}  // namespace laacad::serve
