// Durable, replayable event log for the serving daemon — and the replay
// tooling that closes the loop.
//
// The log *is* a scenario file: its header is format_spec_header(spec) (the
// daemon's base configuration) and every accepted event is appended as a
// `format_event` line stamped `round=N` with the global round at which the
// round loop applied it. Feeding the log back through load_scenario_file +
// ScenarioRunner therefore replays the exact phase structure the daemon
// executed — one finalize per phase, one event per phase boundary, RNG
// consumed in acceptance order — and reproduces the served network state
// bit-for-bit. `write_network_state` is the canonical serialization both
// sides dump so the guarantee is checkable with `cmp`.
#pragma once

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <string>

#include "scenario/spec.hpp"
#include "wsn/network.hpp"

namespace laacad::serve {

/// Append-only writer. Construction writes the spec header and flushes;
/// append() writes one event line and flushes — a crash loses at most the
/// event being written, never a previously accepted one.
class EventLog {
 public:
  /// Opens (truncates) `path` and writes the header. Throws
  /// std::runtime_error when the file cannot be opened. An empty path
  /// disables logging (the daemon still serves, replay is unavailable).
  EventLog(const std::string& path, const scenario::ScenarioSpec& spec);

  bool enabled() const { return out_.is_open(); }
  const std::string& path() const { return path_; }
  std::uint64_t events_written() const { return events_; }

  /// Append one accepted event. `ev.trigger`/`ev.round` must already carry
  /// the round stamp the service applied it at.
  void append(const scenario::Event& ev);

 private:
  std::string path_;
  std::ofstream out_;
  std::uint64_t events_ = 0;
};

/// Everything the canonical state dump records besides the network itself.
struct StateInfo {
  std::string name;
  int total_rounds = 0;
  int phases = 0;
  int events_applied = 0;
  bool aborted = false;
  double grid_resolution = 5.0;  ///< coverage-check lattice spacing
  int k = 1;
};

/// Serialize the final network state (positions, tuned sensing ranges, load
/// report, grid-coverage report) plus `info` as a JSON document with
/// shortest-round-trip numbers. Byte-identical for bit-identical states —
/// the comparison format of the replay guarantee.
void write_network_state(std::ostream& out, const wsn::Network& net,
                         const StateInfo& info);

/// Replay an event log (or any scenario file) through the batch
/// ScenarioRunner and dump the resulting state with write_network_state.
/// `num_threads` >= 0 overrides the spec's thread count (0 = hardware) —
/// results are identical for every value, which the replay tests exploit.
void replay_log_state(const std::string& log_path, std::ostream& out,
                      int num_threads = -1);

}  // namespace laacad::serve
