#include "serve/latency.hpp"

#include "common/json_writer.hpp"

namespace laacad::serve {

namespace {
constexpr const char* kVerbNames[kNumVerbs] = {
    "knn", "coverage", "load", "stats", "health", "event", "drain", "other"};
}  // namespace

const char* verb_name(Verb v) { return kVerbNames[static_cast<int>(v)]; }

Verb verb_from_op(std::string_view op) {
  for (int i = 0; i < kNumVerbs - 1; ++i)
    if (op == kVerbNames[i]) return static_cast<Verb>(i);
  return Verb::kOther;
}

void RequestLatency::record(Verb v, const PhaseDurations& d) {
  PerVerb& pv = verbs_[static_cast<int>(v)];
  pv.total.record(d.total_ns);
  pv.queue.record(d.queue_ns);
  pv.query.record(d.query_ns);
  pv.serialize.record(d.serialize_ns);
}

std::uint64_t RequestLatency::count(Verb v) const {
  return verbs_[static_cast<int>(v)].total.count();
}

RequestLatency::VerbSnapshot RequestLatency::snapshot(Verb v) const {
  const PerVerb& pv = verbs_[static_cast<int>(v)];
  return VerbSnapshot{pv.total.snapshot(), pv.queue.snapshot(),
                      pv.query.snapshot(), pv.serialize.snapshot()};
}

void RequestLatency::write_stats_json(JsonWriter& w) const {
  w.begin_object();
  for (int i = 0; i < kNumVerbs; ++i) {
    const Verb v = static_cast<Verb>(i);
    if (count(v) == 0) continue;
    const VerbSnapshot snap = snapshot(v);
    w.key(kVerbNames[i]).begin_object();
    w.key("total");
    snap.total.write_percentiles_json(w);
    w.key("queue");
    snap.queue.write_percentiles_json(w);
    w.key("query");
    snap.query.write_percentiles_json(w);
    w.key("serialize");
    snap.serialize.write_percentiles_json(w);
    w.end_object();
  }
  w.end_object();
}

}  // namespace laacad::serve
