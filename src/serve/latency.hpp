// Per-request-type latency accounting for the serving path.
//
// Every protocol request is attributed to a verb and split into three
// phases:
//
//   queue      — from the transport finishing the line read to the
//                dispatcher picking it up (head-of-line wait behind the
//                previous request on the same connection);
//   query      — parameter parsing plus the snapshot/service work that
//                computes the answer;
//   serialize  — rendering the response line.
//
// Recording goes into lock-free obs::AtomicHistogram buckets (relaxed
// increments — connection threads never serialize on each other here), and
// the `stats` protocol verb snapshots them into the per-verb percentile
// breakdown a load generator reads back. All values are wall-clock and
// must never enter byte-identical BENCH_* artifacts; serve_bench keeps
// them strictly inside its "timing" subtree.
#pragma once

#include <cstdint>
#include <string_view>

#include "obs/histogram.hpp"

namespace laacad {
class JsonWriter;
}

namespace laacad::serve {

enum class Verb {
  kKnn = 0,
  kCoverage,
  kLoad,
  kStats,
  kHealth,
  kEvent,
  kDrain,
  kOther,  ///< malformed / unknown ops (still timed: errors have latency)
};
inline constexpr int kNumVerbs = 8;

/// Stable lowercase name ("knn", ..., "other"); array-indexable literal.
const char* verb_name(Verb v);

/// Map a request's "op" value to its verb (unknown -> kOther).
Verb verb_from_op(std::string_view op);

/// One request's phase durations, nanoseconds.
struct PhaseDurations {
  std::uint64_t queue_ns = 0;
  std::uint64_t query_ns = 0;
  std::uint64_t serialize_ns = 0;
  std::uint64_t total_ns = 0;  ///< queue + dispatch; >= sum of the phases
};

/// The daemon's per-verb histogram set. One instance per CoverageService;
/// record() is safe from any number of transport threads concurrently.
class RequestLatency {
 public:
  void record(Verb v, const PhaseDurations& d);

  /// Requests recorded under `v` so far.
  std::uint64_t count(Verb v) const;

  /// Frozen copies for one verb (total + the three phases).
  struct VerbSnapshot {
    obs::Histogram total, queue, query, serialize;
  };
  VerbSnapshot snapshot(Verb v) const;

  /// The `stats` verb's "latency" object: verbs with at least one request,
  /// in enum order, each as {"total":{percentiles},"queue":{...},
  /// "query":{...},"serialize":{...}} (see
  /// obs::Histogram::write_percentiles_json for the block schema).
  void write_stats_json(JsonWriter& w) const;

 private:
  struct PerVerb {
    obs::AtomicHistogram total, queue, query, serialize;
  };
  PerVerb verbs_[kNumVerbs];
};

}  // namespace laacad::serve
