#include "serve/protocol.hpp"

#include <chrono>
#include <cmath>
#include <sstream>

#include "common/flatjson.hpp"
#include "common/json_writer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace laacad::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ns_between(Clock::time_point a, Clock::time_point b) {
  const auto d =
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count();
  return d > 0 ? static_cast<std::uint64_t>(d) : 0;
}

std::string error_response(const std::string& what) {
  std::ostringstream out;
  JsonWriter w(out, /*indent=*/0);
  w.begin_object();
  w.kv("ok", false);
  w.kv("error", what);
  w.end_object();
  return out.str();
}

/// Common prologue of snapshot-backed responses.
void snapshot_header(JsonWriter& w, const Snapshot& snap) {
  w.kv("ok", true);
  w.kv("epoch", static_cast<std::int64_t>(snap.meta().epoch));
  w.kv("round", snap.meta().global_round);
}

/// Marks the query -> serialize phase boundary inside a handler. The
/// constructor starts the query phase; serialize() flips; the destructor
/// closes whichever phase is open into `d`. Handlers that error out mid-
/// parse simply never flip — the whole cost lands in the query phase.
/// Each phase is also emitted as a span ("req_query"/"req_serialize"), so
/// a traced daemon's TraceReport carries the same breakdown as histograms.
class PhaseClock {
 public:
  explicit PhaseClock(PhaseDurations* d) : d_(d), mark_(Clock::now()) {}
  void serialize() {
    const Clock::time_point now = Clock::now();
    d_->query_ns += ns_between(mark_, now);
    obs::emit_span("req_query", mark_, now, 0);
    mark_ = now;
    in_query_ = false;
  }
  ~PhaseClock() {
    const Clock::time_point now = Clock::now();
    const std::uint64_t ns = ns_between(mark_, now);
    if (in_query_) {
      d_->query_ns += ns;
      obs::emit_span("req_query", mark_, now, 0);
    } else {
      d_->serialize_ns += ns;
      obs::emit_span("req_serialize", mark_, now, 0);
    }
  }

 private:
  PhaseDurations* d_;
  Clock::time_point mark_;
  bool in_query_ = true;
};

std::string handle_knn(CoverageService& svc, const std::string& line,
                       PhaseDurations* d) {
  PhaseClock phase(d);
  double x = 0.0, y = 0.0, kd = 0.0;
  if (!flatjson::get_number(line, "x", &x) ||
      !flatjson::get_number(line, "y", &y) || !std::isfinite(x) ||
      !std::isfinite(y))
    return error_response("knn needs finite numbers x and y");
  int k = 1;
  if (flatjson::get_number(line, "k", &kd)) k = static_cast<int>(kd);
  if (k < 1) return error_response("knn needs k >= 1");

  const auto snap = svc.snapshot();
  const auto nodes = snap->closest_nodes({x, y}, k);

  phase.serialize();
  std::ostringstream out;
  JsonWriter w(out, /*indent=*/0);
  w.begin_object();
  snapshot_header(w, *snap);
  w.kv("k", k);
  w.key("nodes").begin_array();
  for (const NeighborInfo& info : nodes) {
    w.begin_object();
    w.kv("id", info.id);
    w.kv("x", info.pos.x);
    w.kv("y", info.pos.y);
    w.kv("range", info.sensing_range);
    w.kv("dist", info.dist);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return out.str();
}

std::string handle_coverage(CoverageService& svc, const std::string& line,
                            PhaseDurations* d) {
  PhaseClock phase(d);
  double x = 0.0, y = 0.0;
  if (!flatjson::get_number(line, "x", &x) ||
      !flatjson::get_number(line, "y", &y) || !std::isfinite(x) ||
      !std::isfinite(y))
    return error_response("coverage needs finite numbers x and y");

  const auto snap = svc.snapshot();
  const int depth = snap->coverage_depth({x, y});
  const bool covered = depth >= svc.spec().k;
  const bool in_domain = snap->domain().contains({x, y});

  phase.serialize();
  std::ostringstream out;
  JsonWriter w(out, /*indent=*/0);
  w.begin_object();
  snapshot_header(w, *snap);
  w.kv("depth", depth);
  w.kv("covered_k", covered);
  w.kv("in_domain", in_domain);
  w.end_object();
  return out.str();
}

std::string handle_load(CoverageService& svc, PhaseDurations* d) {
  PhaseClock phase(d);
  const auto snap = svc.snapshot();

  phase.serialize();
  std::ostringstream out;
  JsonWriter w(out, /*indent=*/0);
  w.begin_object();
  snapshot_header(w, *snap);
  w.kv("nodes", snap->size());
  w.kv("max_range", snap->max_range());
  w.kv("min_range", snap->min_range());
  w.key("load").begin_object();
  w.kv("max", snap->load().max_load);
  w.kv("min", snap->load().min_load);
  w.kv("total", snap->load().total_load);
  w.kv("fairness", snap->load().fairness);
  w.end_object();
  w.end_object();
  return out.str();
}

std::string handle_stats(CoverageService& svc, PhaseDurations* d) {
  PhaseClock phase(d);
  const CoverageService::Stats s = svc.stats();
  const double snapshot_age_s = svc.snapshot_age_s();
  const int staleness = svc.snapshot_staleness_rounds();
  const obs::Histogram publish = svc.publish_histogram();

  phase.serialize();
  std::ostringstream out;
  JsonWriter w(out, /*indent=*/0);
  w.begin_object();
  w.kv("ok", true);
  w.kv("epoch", static_cast<std::int64_t>(s.epoch));
  w.kv("round", s.global_round);
  w.kv("phases", s.phases);
  w.kv("nodes", s.nodes);
  w.kv("converged", s.converged);
  w.kv("aborted", s.aborted);
  w.kv("idle", s.idle);
  w.kv("events_accepted", static_cast<std::int64_t>(s.events_accepted));
  w.kv("events_applied", static_cast<std::int64_t>(s.events_applied));
  w.kv("events_rejected", static_cast<std::int64_t>(s.events_rejected));
  w.kv("queue_depth", static_cast<std::int64_t>(s.queue_depth));
  w.kv("queries", static_cast<std::int64_t>(s.queries));
  // Serving-health block: snapshot freshness plus the publish-cost
  // distribution. Wall-clock values — reading them here is fine, copying
  // them into a deterministic artifact is not.
  w.key("serve").begin_object();
  w.kv("snapshot_age_s", snapshot_age_s);
  w.kv("snapshot_staleness_rounds", staleness);
  w.key("publish");
  publish.write_percentiles_json(w);
  w.end_object();
  // Per-verb request latency, split queue/query/serialize.
  w.key("latency");
  svc.request_latency().write_stats_json(w);
  // The gauge registry is the /stats extension point: anything the process
  // publishes (peak RSS, ...) rides along, in deterministic name order.
  const auto gauges = obs::Registry::instance().gauges();
  if (!gauges.empty()) {
    w.key("gauges").begin_object();
    for (const auto& [name, value] : gauges) w.kv(name, value);
    w.end_object();
  }
  w.end_object();
  return out.str();
}

std::string handle_health(CoverageService& svc, PhaseDurations* d) {
  PhaseClock phase(d);
  // The health endpoint *is* the heartbeat schema — one line, `{"hb":...`,
  // parseable by obs::parse_heartbeat like any fleet heartbeat stream.
  const obs::Heartbeat hb = svc.health();
  phase.serialize();
  std::string line = obs::format_heartbeat(hb);
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
    line.pop_back();
  return line;
}

std::string handle_event(CoverageService& svc, const std::string& line,
                         PhaseDurations* d) {
  PhaseClock phase(d);
  std::string body;
  if (!flatjson::get_string(line, "spec", &body) || body.empty())
    return error_response(
        "event needs spec: the event body, e.g. "
        "{\"op\":\"event\",\"spec\":\"add_nodes count=5\"}");
  std::uint64_t id = 0;
  try {
    id = svc.submit_event_line(body);
  } catch (const std::exception& e) {
    return error_response(e.what());
  }
  phase.serialize();
  std::ostringstream out;
  JsonWriter w(out, /*indent=*/0);
  w.begin_object();
  w.kv("ok", true);
  w.kv("id", static_cast<std::int64_t>(id));
  w.end_object();
  return out.str();
}

std::string handle_drain(CoverageService& svc, PhaseDurations* d) {
  PhaseClock phase(d);
  svc.drain();
  const auto snap = svc.snapshot();
  phase.serialize();
  std::ostringstream out;
  JsonWriter w(out, /*indent=*/0);
  w.begin_object();
  snapshot_header(w, *snap);
  w.kv("converged", snap->meta().converged);
  w.kv("aborted", snap->meta().aborted);
  w.end_object();
  return out.str();
}

}  // namespace

HandleResult handle_line(CoverageService& svc, const std::string& line) {
  return handle_line(svc, line, Clock::now());
}

HandleResult handle_line(CoverageService& svc, const std::string& line,
                         std::chrono::steady_clock::time_point received_at) {
  obs::ScopedSpan request_span("request");
  const Clock::time_point dispatched = Clock::now();
  svc.count_query();

  PhaseDurations d;
  d.queue_ns = ns_between(received_at, dispatched);

  std::string op;
  HandleResult result;
  if (!flatjson::get_string(line, "op", &op) || op.empty()) {
    result = {error_response("request needs op: knn, coverage, load, stats, "
                             "health, event, drain, or shutdown"),
              HandleAction::kRespond};
    d.total_ns = d.queue_ns + ns_between(dispatched, Clock::now());
    svc.request_latency().record(Verb::kOther, d);
    return result;
  }

  const Verb verb = verb_from_op(op);
  {
    obs::ScopedSpan dispatch_span("req_dispatch",
                                  static_cast<std::int64_t>(verb));
    if (op == "knn") result.response = handle_knn(svc, line, &d);
    else if (op == "coverage") result.response = handle_coverage(svc, line, &d);
    else if (op == "load") result.response = handle_load(svc, &d);
    else if (op == "stats") result.response = handle_stats(svc, &d);
    else if (op == "health") result.response = handle_health(svc, &d);
    else if (op == "event") result.response = handle_event(svc, line, &d);
    else if (op == "drain") result.response = handle_drain(svc, &d);
    else if (op == "shutdown") {
      std::ostringstream out;
      JsonWriter w(out, /*indent=*/0);
      w.begin_object();
      w.kv("ok", true);
      w.kv("stopping", true);
      w.end_object();
      result = {out.str(), HandleAction::kShutdown};
    } else {
      result.response = error_response("unknown op '" + op + "'");
    }
  }

  d.total_ns = d.queue_ns + ns_between(dispatched, Clock::now());
  svc.request_latency().record(verb, d);
  return result;
}

}  // namespace laacad::serve
