#include "serve/protocol.hpp"

#include <cmath>
#include <sstream>

#include "common/flatjson.hpp"
#include "common/json_writer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace laacad::serve {

namespace {

std::string error_response(const std::string& what) {
  std::ostringstream out;
  JsonWriter w(out, /*indent=*/0);
  w.begin_object();
  w.kv("ok", false);
  w.kv("error", what);
  w.end_object();
  return out.str();
}

/// Common prologue of snapshot-backed responses.
void snapshot_header(JsonWriter& w, const Snapshot& snap) {
  w.kv("ok", true);
  w.kv("epoch", static_cast<std::int64_t>(snap.meta().epoch));
  w.kv("round", snap.meta().global_round);
}

std::string handle_knn(CoverageService& svc, const std::string& line) {
  double x = 0.0, y = 0.0, kd = 0.0;
  if (!flatjson::get_number(line, "x", &x) ||
      !flatjson::get_number(line, "y", &y) || !std::isfinite(x) ||
      !std::isfinite(y))
    return error_response("knn needs finite numbers x and y");
  int k = 1;
  if (flatjson::get_number(line, "k", &kd)) k = static_cast<int>(kd);
  if (k < 1) return error_response("knn needs k >= 1");

  const auto snap = svc.snapshot();
  const auto nodes = snap->closest_nodes({x, y}, k);
  std::ostringstream out;
  JsonWriter w(out, /*indent=*/0);
  w.begin_object();
  snapshot_header(w, *snap);
  w.kv("k", k);
  w.key("nodes").begin_array();
  for (const NeighborInfo& info : nodes) {
    w.begin_object();
    w.kv("id", info.id);
    w.kv("x", info.pos.x);
    w.kv("y", info.pos.y);
    w.kv("range", info.sensing_range);
    w.kv("dist", info.dist);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return out.str();
}

std::string handle_coverage(CoverageService& svc, const std::string& line) {
  double x = 0.0, y = 0.0;
  if (!flatjson::get_number(line, "x", &x) ||
      !flatjson::get_number(line, "y", &y) || !std::isfinite(x) ||
      !std::isfinite(y))
    return error_response("coverage needs finite numbers x and y");

  const auto snap = svc.snapshot();
  const int depth = snap->coverage_depth({x, y});
  std::ostringstream out;
  JsonWriter w(out, /*indent=*/0);
  w.begin_object();
  snapshot_header(w, *snap);
  w.kv("depth", depth);
  w.kv("covered_k", depth >= svc.spec().k);
  w.kv("in_domain", snap->domain().contains({x, y}));
  w.end_object();
  return out.str();
}

std::string handle_load(CoverageService& svc) {
  const auto snap = svc.snapshot();
  std::ostringstream out;
  JsonWriter w(out, /*indent=*/0);
  w.begin_object();
  snapshot_header(w, *snap);
  w.kv("nodes", snap->size());
  w.kv("max_range", snap->max_range());
  w.kv("min_range", snap->min_range());
  w.key("load").begin_object();
  w.kv("max", snap->load().max_load);
  w.kv("min", snap->load().min_load);
  w.kv("total", snap->load().total_load);
  w.kv("fairness", snap->load().fairness);
  w.end_object();
  w.end_object();
  return out.str();
}

std::string handle_stats(CoverageService& svc) {
  const CoverageService::Stats s = svc.stats();
  std::ostringstream out;
  JsonWriter w(out, /*indent=*/0);
  w.begin_object();
  w.kv("ok", true);
  w.kv("epoch", static_cast<std::int64_t>(s.epoch));
  w.kv("round", s.global_round);
  w.kv("phases", s.phases);
  w.kv("nodes", s.nodes);
  w.kv("converged", s.converged);
  w.kv("aborted", s.aborted);
  w.kv("idle", s.idle);
  w.kv("events_accepted", static_cast<std::int64_t>(s.events_accepted));
  w.kv("events_applied", static_cast<std::int64_t>(s.events_applied));
  w.kv("events_rejected", static_cast<std::int64_t>(s.events_rejected));
  w.kv("queue_depth", static_cast<std::int64_t>(s.queue_depth));
  w.kv("queries", static_cast<std::int64_t>(s.queries));
  // The gauge registry is the /stats extension point: anything the process
  // publishes (peak RSS, ...) rides along, in deterministic name order.
  const auto gauges = obs::Registry::instance().gauges();
  if (!gauges.empty()) {
    w.key("gauges").begin_object();
    for (const auto& [name, value] : gauges) w.kv(name, value);
    w.end_object();
  }
  w.end_object();
  return out.str();
}

std::string handle_health(CoverageService& svc) {
  // The health endpoint *is* the heartbeat schema — one line, `{"hb":...`,
  // parseable by obs::parse_heartbeat like any fleet heartbeat stream.
  std::string line = obs::format_heartbeat(svc.health());
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
    line.pop_back();
  return line;
}

std::string handle_event(CoverageService& svc, const std::string& line) {
  std::string body;
  if (!flatjson::get_string(line, "spec", &body) || body.empty())
    return error_response(
        "event needs spec: the event body, e.g. "
        "{\"op\":\"event\",\"spec\":\"add_nodes count=5\"}");
  std::uint64_t id = 0;
  try {
    id = svc.submit_event_line(body);
  } catch (const std::exception& e) {
    return error_response(e.what());
  }
  std::ostringstream out;
  JsonWriter w(out, /*indent=*/0);
  w.begin_object();
  w.kv("ok", true);
  w.kv("id", static_cast<std::int64_t>(id));
  w.end_object();
  return out.str();
}

std::string handle_drain(CoverageService& svc) {
  svc.drain();
  const auto snap = svc.snapshot();
  std::ostringstream out;
  JsonWriter w(out, /*indent=*/0);
  w.begin_object();
  snapshot_header(w, *snap);
  w.kv("converged", snap->meta().converged);
  w.kv("aborted", snap->meta().aborted);
  w.end_object();
  return out.str();
}

}  // namespace

HandleResult handle_line(CoverageService& svc, const std::string& line) {
  obs::ScopedSpan request_span("request");
  svc.count_query();

  std::string op;
  if (!flatjson::get_string(line, "op", &op) || op.empty())
    return {error_response("request needs op: knn, coverage, load, stats, "
                           "health, event, drain, or shutdown"),
            HandleAction::kRespond};

  if (op == "knn") return {handle_knn(svc, line), HandleAction::kRespond};
  if (op == "coverage")
    return {handle_coverage(svc, line), HandleAction::kRespond};
  if (op == "load") return {handle_load(svc), HandleAction::kRespond};
  if (op == "stats") return {handle_stats(svc), HandleAction::kRespond};
  if (op == "health") return {handle_health(svc), HandleAction::kRespond};
  if (op == "event") return {handle_event(svc, line), HandleAction::kRespond};
  if (op == "drain") return {handle_drain(svc), HandleAction::kRespond};
  if (op == "shutdown") {
    std::ostringstream out;
    JsonWriter w(out, /*indent=*/0);
    w.begin_object();
    w.kv("ok", true);
    w.kv("stopping", true);
    w.end_object();
    return {out.str(), HandleAction::kShutdown};
  }
  return {error_response("unknown op '" + op + "'"), HandleAction::kRespond};
}

}  // namespace laacad::serve
