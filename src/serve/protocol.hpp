// Newline-delimited JSON request protocol of the serving daemon.
//
// One request per line, one flat JSON object, dispatched on "op":
//
//   {"op":"knn","x":150,"y":150,"k":3}     k nearest nodes to (x, y)
//   {"op":"coverage","x":150,"y":150}      sensing-coverage depth at (x, y)
//   {"op":"load"}                          load report of the snapshot
//   {"op":"stats"}                         service counters + obs gauges
//   {"op":"health"}                        heartbeat-schema health object
//   {"op":"event","spec":"fail_nodes count=3 pick=random"}
//                                          submit a churn event (the spec
//                                          event vocabulary, no trigger —
//                                          the daemon stamps the round)
//   {"op":"drain"}                         block until all events applied
//   {"op":"shutdown"}                      graceful stop
//
// Every response is one line. Errors: {"ok":false,"error":"..."}. Query
// responses carry the snapshot epoch and round they answered from, so a
// client can correlate answers with published state.
#pragma once

#include <chrono>
#include <string>

#include "serve/service.hpp"

namespace laacad::serve {

/// What the transport should do after sending the response.
enum class HandleAction {
  kRespond,   ///< send the response, keep the connection open
  kShutdown,  ///< send the response, then stop the service and transports
};

struct HandleResult {
  std::string response;  ///< one line, no trailing newline
  HandleAction action = HandleAction::kRespond;
};

/// Parse and execute one request line. Never throws: malformed input and
/// rejected events become {"ok":false,...} responses. `shutdown` returns
/// kShutdown with the response; the transport owns calling
/// CoverageService::stop() (so it can stop accepting first).
///
/// Every request is recorded into the service's RequestLatency, attributed
/// to its verb and split into queue (received_at -> dispatch), query, and
/// serialize phases. The first overload stamps received_at = now (zero
/// queue wait); transports that know when the line finished arriving pass
/// it explicitly so head-of-line blocking on a connection is measured.
HandleResult handle_line(CoverageService& svc, const std::string& line);
HandleResult handle_line(CoverageService& svc, const std::string& line,
                         std::chrono::steady_clock::time_point received_at);

}  // namespace laacad::serve
