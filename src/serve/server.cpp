#include "serve/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <istream>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace laacad::serve {

int serve_stdio(CoverageService& svc, std::istream& in, std::ostream& out) {
  int handled = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const HandleResult result =
        handle_line(svc, line, std::chrono::steady_clock::now());
    ++handled;
    out << result.response << '\n';
    out.flush();
    if (result.action == HandleAction::kShutdown) break;
  }
  // EOF without a shutdown op gets the same graceful treatment: drain the
  // queue, finish the final phase, leave state replayable.
  svc.stop();
  return handled;
}

TcpServer::TcpServer(CoverageService& svc, int port, int backlog)
    : svc_(svc) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("serve: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: cannot bind port " +
                             std::to_string(port));
  }
  if (::listen(listen_fd_, backlog) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
}

TcpServer::~TcpServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

namespace {

/// Connection-scoped line reader over a raw fd. `arrival` is stamped after
/// every successful read(), so when a pipelined client leaves several
/// requests in one TCP segment, each extracted line keeps the timestamp of
/// the read that delivered its bytes — that is what makes the protocol
/// layer's queue-wait phase measure real head-of-line blocking instead of
/// always reading zero. Interrupted reads (EINTR) are retried.
bool read_line(int fd, std::string* buffer, std::string* line,
               std::chrono::steady_clock::time_point* arrival) {
  for (;;) {
    const auto nl = buffer->find('\n');
    if (nl != std::string::npos) {
      *line = buffer->substr(0, nl);
      buffer->erase(0, nl + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    buffer->append(chunk, static_cast<std::size_t>(n));
    *arrival = std::chrono::steady_clock::now();
  }
}

/// Loop until every byte is written: short writes (large stats/coverage
/// responses against a small socket buffer) and EINTR are both resumed.
bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

int TcpServer::serve() {
  std::atomic<int> handled{0};
  std::atomic<bool> shutting_down{false};
  std::mutex conn_mu;             // guards open_fds + workers
  std::vector<int> open_fds;      // -1 once a worker closed its slot
  std::vector<std::thread> workers;

  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (shutting_down.load() || errno != EINTR) break;
      continue;
    }
    std::lock_guard<std::mutex> lk(conn_mu);
    if (shutting_down.load()) {
      ::close(fd);
      break;
    }
    const std::size_t slot = open_fds.size();
    open_fds.push_back(fd);
    workers.emplace_back([this, fd, slot, &handled, &shutting_down, &conn_mu,
                          &open_fds] {
      // Request/response turnarounds are latency-bound, not throughput-
      // bound: disable Nagle so a response is not parked waiting for an
      // ACK (40 ms delayed-ACK stalls would dominate every percentile a
      // load generator measures).
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      std::string buffer, line;
      auto arrival = std::chrono::steady_clock::now();
      while (read_line(fd, &buffer, &line, &arrival)) {
        if (line.empty()) continue;
        const HandleResult result = handle_line(svc_, line, arrival);
        handled.fetch_add(1);
        if (!write_all(fd, result.response + "\n")) break;
        if (result.action == HandleAction::kShutdown) {
          shutting_down.store(true);
          std::lock_guard<std::mutex> conn_lk(conn_mu);
          // Unblock the accept loop and every idle connection so serve()
          // can join all workers: half-close the sockets, do not close the
          // fds (each worker closes its own slot, exactly once).
          ::shutdown(listen_fd_, SHUT_RDWR);
          for (const int other : open_fds)
            if (other >= 0 && other != fd) ::shutdown(other, SHUT_RDWR);
          break;
        }
      }
      std::lock_guard<std::mutex> conn_lk(conn_mu);
      ::close(fd);
      open_fds[slot] = -1;
    });
  }

  for (;;) {
    std::thread t;
    {
      std::lock_guard<std::mutex> lk(conn_mu);
      if (workers.empty()) break;
      t = std::move(workers.back());
      workers.pop_back();
    }
    if (t.joinable()) t.join();
  }
  svc_.stop();
  return handled.load();
}

}  // namespace laacad::serve
