// Line-oriented transports for the serving daemon: stdio (tests, scripted
// CI sessions, piping) and a minimal TCP listener (one thread per
// connection, newline-delimited requests). Both feed serve::handle_line;
// the shutdown op (or EOF on stdio) stops the service gracefully.
#pragma once

#include <iosfwd>

#include "serve/protocol.hpp"
#include "serve/service.hpp"

namespace laacad::serve {

/// Serve requests from `in` to `out` until EOF or a shutdown op, then stop
/// the service (drain + final phase). Returns the number of requests
/// handled.
int serve_stdio(CoverageService& svc, std::istream& in, std::ostream& out);

class TcpServer {
 public:
  /// Bind + listen on `port` (0 = ephemeral; see port() for the result).
  /// Throws std::runtime_error on socket errors.
  TcpServer(CoverageService& svc, int port, int backlog = 16);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// The bound port (useful after binding port 0).
  int port() const { return port_; }

  /// Accept-and-serve until a client sends shutdown. Each connection gets
  /// a thread; requests within a connection are handled in order. Blocks;
  /// returns the total number of requests handled.
  int serve();

 private:
  void handle_connection(int fd);

  CoverageService& svc_;
  int listen_fd_ = -1;
  int port_ = 0;
};

}  // namespace laacad::serve
