#include "serve/service.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace laacad::serve {

CoverageService::CoverageService(ServeConfig cfg)
    : world_(scenario::build_world(std::move(cfg.spec))),
      log_(cfg.log_path, world_.spec),
      publish_every_(cfg.publish_every),
      heartbeat_(cfg.heartbeat),
      start_time_(std::chrono::steady_clock::now()) {
  if (!world_.spec.events.empty())
    throw std::runtime_error(
        "serve: the base spec must have an empty timeline — events arrive "
        "live and are logged as the daemon's own timeline");
  if (publish_every_ < 0)
    throw std::runtime_error("serve: publish_every must be >= 0");
  // Epoch 1: the initial deployment, sensing ranges not yet tuned.
  publish(/*finalized=*/false, /*converged=*/false);
}

CoverageService::~CoverageService() { stop(); }

void CoverageService::start() {
  std::lock_guard<std::mutex> lk(mu_);
  if (started_) throw std::runtime_error("serve: start() called twice");
  started_ = true;
  thread_ = std::thread([this] { run_loop(); });
}

void CoverageService::stop() {
  std::lock_guard<std::mutex> stop_lk(stop_mu_);
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
    if (!started_) finished_ = true;
  }
  cv_events_.notify_all();
  cv_idle_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool CoverageService::running() const {
  std::lock_guard<std::mutex> lk(mu_);
  return started_ && !finished_;
}

std::uint64_t CoverageService::submit_event(scenario::Event ev) {
  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_)
      throw std::runtime_error("service is stopping; event rejected");
    if (aborted_)
      throw std::runtime_error("service aborted (" + abort_reason_ +
                               "); event rejected");
    queue_.push_back(std::move(ev));
    id = ++events_accepted_;
  }
  cv_events_.notify_one();
  return id;
}

std::uint64_t CoverageService::submit_event_line(const std::string& body) {
  return submit_event(scenario::parse_event_body(body));
}

void CoverageService::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_idle_.wait(lk, [&] {
    return finished_ || !started_ || (idle_ && queue_.empty());
  });
}

std::shared_ptr<const Snapshot> CoverageService::snapshot() const {
  std::lock_guard<std::mutex> lk(snap_mu_);
  return snap_;
}

CoverageService::Stats CoverageService::stats() const {
  Stats s;
  const auto snap = snapshot();
  s.epoch = snap->meta().epoch;
  s.nodes = snap->size();
  s.queries = queries_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(mu_);
  s.global_round = global_round_;
  s.phases = phases_;
  s.converged = last_phase_converged_;
  s.aborted = aborted_;
  s.idle = idle_ && queue_.empty();
  s.events_accepted = events_accepted_;
  s.events_applied = events_applied_;
  s.events_rejected = events_rejected_;
  s.queue_depth = queue_.size();
  return s;
}

obs::Heartbeat CoverageService::health() const {
  const Stats s = stats();
  obs::Heartbeat hb;
  hb.kind = "serve";
  hb.name = world_.spec.name;
  hb.done = static_cast<int>(s.events_applied);
  hb.total = static_cast<int>(s.events_accepted);
  hb.ok = (s.converged && !s.aborted) ? 1 : 0;
  hb.live = s.nodes;
  hb.round = s.global_round;
  hb.epoch = static_cast<std::int64_t>(s.epoch);
  hb.queue = static_cast<int>(s.queue_depth);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time_)
          .count();
  hb.rate_per_s = elapsed > 0.0 ? s.global_round / elapsed : 0.0;
  hb.eta_s = std::nan("");  // a daemon has no finish line
  hb.ts_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  return hb;
}

void CoverageService::count_query() {
  queries_.fetch_add(1, std::memory_order_relaxed);
}

void CoverageService::write_state(std::ostream& out) const {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (started_ && !finished_)
      throw std::runtime_error(
          "write_state requires a stopped service (state must be final)");
  }
  StateInfo info;
  info.name = world_.spec.name;
  info.total_rounds = global_round_;
  info.phases = phases_;
  info.events_applied = static_cast<int>(events_applied_);
  info.aborted = aborted_;
  info.grid_resolution = world_.spec.grid_resolution;
  info.k = world_.spec.k;
  write_network_state(out, *world_.net, info);
}

bool CoverageService::queue_nonempty() const {
  std::lock_guard<std::mutex> lk(mu_);
  return !queue_.empty();
}

void CoverageService::publish(bool finalized, bool converged) {
  Snapshot::Meta meta;
  std::size_t queue_depth = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    meta.epoch = ++epoch_;
    meta.global_round = global_round_;
    meta.phase = phases_;
    meta.events_applied = static_cast<int>(events_applied_);
    meta.converged = converged;
    meta.aborted = aborted_;
    meta.finalized = finalized;
    queue_depth = queue_.size();
  }
  obs::ScopedSpan publish_span("publish",
                               static_cast<std::int64_t>(meta.epoch));
  const auto t0 = std::chrono::steady_clock::now();
  auto sp =
      std::make_shared<const Snapshot>(world_.domain(), *world_.net, meta);
  {
    std::lock_guard<std::mutex> lk(snap_mu_);
    snap_ = std::move(sp);
    last_publish_ = std::chrono::steady_clock::now();
  }
  const auto publish_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  publish_hist_.record(publish_ns);
  // Wall-clock/machine gauges ride the registry into the `stats` verb and
  // heartbeats — never into BENCH artifacts or the replayable state.
  auto& reg = obs::Registry::instance();
  reg.set_gauge("serve.publish_last_us",
                static_cast<double>(publish_ns) / 1000.0);
  reg.set_gauge("serve.queue_depth", static_cast<double>(queue_depth));
}

double CoverageService::snapshot_age_s() const {
  std::lock_guard<std::mutex> lk(snap_mu_);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       last_publish_)
      .count();
}

int CoverageService::snapshot_staleness_rounds() const {
  const auto snap = snapshot();
  std::lock_guard<std::mutex> lk(mu_);
  return global_round_ - snap->meta().global_round;
}

void CoverageService::emit_heartbeat() {
  const std::string line = obs::format_heartbeat(health());
  // One write per line, matching every other heartbeat source: concurrent
  // emitters interleave at line granularity, never mid-line.
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

void CoverageService::run_one_phase() {
  obs::ScopedSpan phase_span("phase", phases_);
  bool converged = false;
  int rounds_in_phase = 0;
  while (world_.engine->rounds_executed() < world_.spec.max_rounds) {
    // A queued event interrupts the phase exactly where the batch runner's
    // round=N trigger would — the stamp below makes replay take the same
    // branch.
    if (queue_nonempty()) break;
    const core::RoundMetrics m = world_.engine->step();
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++global_round_;
    }
    ++rounds_in_phase;
    converged = (m.moved == 0);
    if (converged) break;
    if (publish_every_ > 0 && rounds_in_phase % publish_every_ == 0)
      publish(/*finalized=*/false, /*converged=*/false);
    // Per-round beat: a supervisor watches a daemon the way it watches
    // campaign shards — rounds done, events applied, epoch, queue depth.
    if (heartbeat_) emit_heartbeat();
  }
  // One finalize per phase, always — finalize advances the provider epoch,
  // so replay must hit the same finalize points to stay bit-identical.
  world_.engine->finalize();
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++phases_;
    last_phase_converged_ = converged;
  }
  publish(/*finalized=*/true, converged);
  if (heartbeat_) emit_heartbeat();
}

void CoverageService::run_loop() {
  run_one_phase();
  for (;;) {
    scenario::Event ev;
    {
      std::unique_lock<std::mutex> lk(mu_);
      idle_ = true;
      cv_idle_.notify_all();
      cv_events_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {  // stopping with nothing left to drain
        finished_ = true;
        cv_idle_.notify_all();
        return;
      }
      ev = std::move(queue_.front());
      queue_.pop_front();
      idle_ = false;
    }

    // Stamp with the round the world is actually at; the loop thread is the
    // only writer of global_round_.
    ev.trigger = scenario::Trigger::kAtRound;
    ev.round = global_round_;
    try {
      (void)scenario::apply_event(world_, ev,
                                  static_cast<int>(events_applied_),
                                  global_round_);
    } catch (const std::exception&) {
      // apply_event throws before touching the world or its RNG, so a
      // rejected event leaves replay untouched: not logged, not applied,
      // the loop stays parked at the same phase boundary (re-entering the
      // phase would add a spurious finalize that replay would not have).
      std::lock_guard<std::mutex> lk(mu_);
      ++events_rejected_;
      continue;
    }
    try {
      log_.append(ev);
    } catch (const std::exception&) {
      // The world changed but the log cannot record it: the replay
      // guarantee is broken, so stop serving loudly rather than drift.
      std::lock_guard<std::mutex> lk(mu_);
      aborted_ = true;
      abort_reason_ = "event log write failed";
      events_rejected_ += queue_.size();
      queue_.clear();
      finished_ = true;
      idle_ = true;
      cv_idle_.notify_all();
      return;
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++events_applied_;
    }

    if (world_.net->size() < world_.spec.k) {
      // Mirror the batch runner's abort: no further phase, no finalize.
      {
        std::lock_guard<std::mutex> lk(mu_);
        aborted_ = true;
        abort_reason_ =
            "network dropped below k nodes (k=" +
            std::to_string(world_.spec.k) +
            ", nodes=" + std::to_string(world_.net->size()) + ")";
        events_rejected_ += queue_.size();
        queue_.clear();
      }
      publish(/*finalized=*/true, last_phase_converged_);
      if (heartbeat_) emit_heartbeat();
      std::lock_guard<std::mutex> lk(mu_);
      finished_ = true;
      idle_ = true;
      cv_idle_.notify_all();
      return;
    }

    world_.engine->begin_phase();
    run_one_phase();
  }
}

}  // namespace laacad::serve
