// CoverageService — the long-running heart of the serving daemon.
//
// Owns a scenario::World (network + engine + batteries + RNG) and runs the
// batch runner's phase structure on a background thread, driven by an
// asynchronous event queue instead of a spec timeline:
//
//   run phase (rounds until converged / cap / event queued)
//   finalize → publish snapshot → wait for event
//   stamp event with the current global round → append to event log →
//   scenario::apply_event → begin_phase → next phase
//
// Because phases break for queued events exactly where the batch runner
// breaks for `round=N` triggers, stamping each accepted event with the
// global round at acceptance makes the event log a faithful `.scn`
// timeline: replaying it through ScenarioRunner re-executes the same
// rounds, the same finalize points (each finalize advances the provider
// epoch, so this matters), and the same RNG draws — reproducing served
// state bit-for-bit. Rejected events (invalid against the current domain,
// or arriving after stop/abort) consume no RNG and are never logged.
//
// Reads are wait-free with respect to the round loop: they run against the
// immutable epoch-swapped serve::Snapshot (see snapshot.hpp).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/heartbeat.hpp"
#include "obs/histogram.hpp"
#include "scenario/apply.hpp"
#include "serve/event_log.hpp"
#include "serve/latency.hpp"
#include "serve/snapshot.hpp"

namespace laacad::serve {

struct ServeConfig {
  /// Base configuration; its timeline must be empty (events arrive live).
  scenario::ScenarioSpec spec;
  /// Event-log path; empty disables logging (and the replay guarantee).
  std::string log_path;
  /// Mid-phase snapshot cadence: publish every N rounds while a phase is
  /// running (0 = publish only at phase ends). Mid-phase snapshots carry
  /// the previous finalize's sensing ranges.
  int publish_every = 1;
  /// Emit `{"hb":"serve",...}` heartbeat lines to stderr at every phase
  /// end (the /health schema, streamed).
  bool heartbeat = false;
};

class CoverageService {
 public:
  /// Builds the world (throws on a bad spec or an unwritable log path) and
  /// publishes epoch 1: the initial deployment, ranges untuned.
  explicit CoverageService(ServeConfig cfg);
  ~CoverageService();  ///< implies stop()

  CoverageService(const CoverageService&) = delete;
  CoverageService& operator=(const CoverageService&) = delete;

  /// Launch the background round loop. Call once.
  void start();

  /// Graceful shutdown: reject new events, drain the queue (each queued
  /// event still gets its full redeployment phase), finish the final phase
  /// to convergence or cap, and join. Idempotent. After stop() the final
  /// state is exactly what replaying the event log produces.
  void stop();

  bool running() const;

  /// Enqueue one churn event. Returns the acceptance id (1-based count).
  /// Throws std::runtime_error when the service is stopping/aborted; a
  /// rejected event consumes no randomness and is never logged.
  std::uint64_t submit_event(scenario::Event ev);

  /// Parse an event body ("fail_nodes count=3 pick=random") and enqueue it.
  std::uint64_t submit_event_line(const std::string& body);

  /// Block until every accepted event has been applied and the round loop
  /// is idle at a phase boundary (or the service aborted/stopped). After
  /// drain() the published snapshot reflects all prior submissions —
  /// queries become deterministic, which tests and scripted sessions use.
  void drain();

  /// Current published snapshot; never null. Hold the shared_ptr as long
  /// as consistent multi-query reads are needed.
  std::shared_ptr<const Snapshot> snapshot() const;

  struct Stats {
    std::uint64_t epoch = 0;
    int global_round = 0;
    int phases = 0;
    int nodes = 0;
    bool converged = false;   ///< last completed phase converged
    bool aborted = false;
    bool idle = false;        ///< loop parked at a phase boundary
    std::uint64_t events_accepted = 0;
    std::uint64_t events_applied = 0;
    std::uint64_t events_rejected = 0;
    std::size_t queue_depth = 0;
    std::uint64_t queries = 0;
  };
  Stats stats() const;

  /// Health in the obs heartbeat schema (`hb` kind "serve"): done = events
  /// applied, total = events accepted, ok = 1 when the last phase
  /// converged and the service is not aborted, live = node count.
  obs::Heartbeat health() const;

  /// Count one read query (protocol layer calls this per request).
  void count_query();

  /// Per-verb request-latency histograms (protocol layer records; the
  /// `stats` verb reads). Lock-free on the record side.
  RequestLatency& request_latency() { return req_latency_; }
  const RequestLatency& request_latency() const { return req_latency_; }

  /// Distribution of publish() wall-clock (snapshot deep copy + swap).
  obs::Histogram publish_histogram() const { return publish_hist_.snapshot(); }

  /// Seconds since the current snapshot was published (wall-clock).
  double snapshot_age_s() const;

  /// Rounds the live world has advanced past the published snapshot — the
  /// deterministic staleness measure (0 right after a phase-end publish).
  int snapshot_staleness_rounds() const;

  const scenario::ScenarioSpec& spec() const { return world_.spec; }
  const EventLog& log() const { return log_; }

  /// Dump the canonical state document (event_log.hpp's
  /// write_network_state) for replay comparison. Only valid once stopped.
  void write_state(std::ostream& out) const;

 private:
  void run_loop();
  void run_one_phase();
  bool queue_nonempty() const;
  /// Build + swap a snapshot from the live world (round-loop thread only).
  void publish(bool finalized, bool converged);
  void emit_heartbeat();

  scenario::World world_;
  EventLog log_;
  int publish_every_ = 1;
  bool heartbeat_ = false;

  std::thread thread_;
  std::mutex stop_mu_;  ///< serializes stop() callers around the join
  mutable std::mutex mu_;
  std::condition_variable cv_events_;  ///< wakes the loop: submit/stop
  std::condition_variable cv_idle_;    ///< wakes drain()/stop() waiters
  std::deque<scenario::Event> queue_;
  bool started_ = false;
  bool stop_ = false;
  bool idle_ = false;      ///< loop parked at a phase boundary
  bool finished_ = false;  ///< loop exited
  bool aborted_ = false;
  std::string abort_reason_;
  bool last_phase_converged_ = false;
  int global_round_ = 0;
  int phases_ = 0;
  std::uint64_t events_accepted_ = 0;
  std::uint64_t events_applied_ = 0;
  std::uint64_t events_rejected_ = 0;
  std::atomic<std::uint64_t> queries_{0};

  mutable std::mutex snap_mu_;
  std::shared_ptr<const Snapshot> snap_;
  std::uint64_t epoch_ = 0;
  std::chrono::steady_clock::time_point last_publish_;  ///< under snap_mu_

  RequestLatency req_latency_;
  obs::AtomicHistogram publish_hist_;

  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace laacad::serve
