#include "serve/snapshot.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace laacad::serve {

Snapshot::Snapshot(const wsn::Domain& domain, const wsn::Network& live,
                   Meta meta)
    : meta_(meta), domain_(std::make_unique<wsn::Domain>(domain)) {
  net_ = std::make_unique<wsn::Network>(domain_.get(), live.positions(),
                                        live.gamma());
  const auto& ranges = live.sensing_ranges();
  double rmax = 0.0, rmin = std::numeric_limits<double>::infinity();
  for (int i = 0; i < net_->size(); ++i) {
    net_->set_sensing_range(i, ranges[static_cast<std::size_t>(i)]);
    rmax = std::max(rmax, ranges[static_cast<std::size_t>(i)]);
    rmin = std::min(rmin, ranges[static_cast<std::size_t>(i)]);
  }
  max_range_ = rmax;
  min_range_ = std::isfinite(rmin) ? rmin : 0.0;
  load_ = wsn::load_report(*net_);
  // Build the grid now, on the publisher's thread: snapshot queries are
  // const and lock-free afterwards.
  net_->warm_grid();
}

std::vector<NeighborInfo> Snapshot::closest_nodes(geom::Vec2 q, int k) const {
  std::vector<NeighborInfo> out;
  if (k <= 0) return out;
  const auto ids = net_->k_nearest(q, std::min(k, net_->size()));
  out.reserve(ids.size());
  for (const int id : ids) {
    NeighborInfo info;
    info.id = id;
    info.pos = net_->position(id);
    info.sensing_range = net_->node(id).sensing_range;
    info.dist = (info.pos - q).norm();
    out.push_back(info);
  }
  return out;
}

int Snapshot::coverage_depth(geom::Vec2 q) const {
  if (max_range_ <= 0.0) return 0;
  int depth = 0;
  for (const int id : net_->nodes_within(q, max_range_)) {
    const double r = net_->node(id).sensing_range;
    if ((net_->position(id) - q).norm() <= r) ++depth;
  }
  return depth;
}

}  // namespace laacad::serve
