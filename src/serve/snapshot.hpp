// Immutable published state of the serving daemon.
//
// The round loop mutates the live wsn::Network continuously; read queries
// must never block it (or each other). The classic epoch-swap solves both:
// after each publish point the service builds a `Snapshot` — an owned copy
// of the domain and network with the spatial grid pre-warmed — and swaps it
// into a shared_ptr. Readers grab the pointer (one mutex-protected copy),
// then query the frozen state lock-free for as long as they like; the old
// epoch dies when its last reader drops it.
//
// Every answer a snapshot gives is internally consistent with exactly one
// publish point — the "consistent with some published epoch" guarantee the
// concurrency stress test asserts.
#pragma once

#include <memory>
#include <vector>

#include "wsn/energy.hpp"
#include "wsn/network.hpp"

namespace laacad::serve {

/// One k-NN answer entry.
struct NeighborInfo {
  int id = -1;
  geom::Vec2 pos{0.0, 0.0};
  double sensing_range = 0.0;
  double dist = 0.0;  ///< to the query point
};

class Snapshot {
 public:
  /// Metadata stamped at the publish point.
  struct Meta {
    std::uint64_t epoch = 0;  ///< publish sequence number, monotonic
    int global_round = 0;
    int phase = 0;
    int events_applied = 0;
    bool converged = false;
    bool aborted = false;
    /// True when sensing ranges are tuned for the current positions (the
    /// publish followed Engine::finalize); mid-phase publishes carry the
    /// previous phase's ranges.
    bool finalized = false;
  };

  /// Deep-copies domain + positions + sensing ranges from the live network
  /// and warms the spatial grid, so readers never pay (or race on) the lazy
  /// grid build.
  Snapshot(const wsn::Domain& domain, const wsn::Network& live, Meta meta);

  const Meta& meta() const { return meta_; }
  int size() const { return net_->size(); }
  double gamma() const { return net_->gamma(); }
  double max_range() const { return max_range_; }
  double min_range() const { return min_range_; }
  const wsn::LoadReport& load() const { return load_; }
  const wsn::Network& network() const { return *net_; }
  const wsn::Domain& domain() const { return *domain_; }

  /// The k nodes nearest to q (fewer when the network is smaller), sorted
  /// by distance — the GetClosestNodes serving interface.
  std::vector<NeighborInfo> closest_nodes(geom::Vec2 q, int k) const;

  /// Sensing-coverage depth at q: how many nodes' sensing disks contain it.
  int coverage_depth(geom::Vec2 q) const;

 private:
  Meta meta_;
  std::unique_ptr<wsn::Domain> domain_;
  std::unique_ptr<wsn::Network> net_;
  double max_range_ = 0.0;
  double min_range_ = 0.0;
  wsn::LoadReport load_;
};

}  // namespace laacad::serve
