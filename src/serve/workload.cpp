#include "serve/workload.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/json_writer.hpp"
#include "common/rng.hpp"
#include "common/specparse.hpp"
#include "scenario/spec.hpp"

namespace laacad::serve {

namespace {

using specparse::fail;
using specparse::parse_double;
using specparse::parse_int;
using specparse::parse_uint64;
using specparse::tokenize;

/// Split "key=value", failing with the line number when malformed.
std::pair<std::string, std::string> split_kv(const std::string& token,
                                             int line) {
  const auto eq = token.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size())
    fail(line, "expected key=value, got '" + token + "'");
  return {token.substr(0, eq), token.substr(eq + 1)};
}

void parse_mix(WorkloadSpec* spec, const std::vector<std::string>& tokens,
               int line) {
  spec->mix_knn = spec->mix_coverage = spec->mix_load = spec->mix_stats =
      spec->mix_health = 0;
  for (std::size_t t = 1; t < tokens.size(); ++t) {
    const auto [verb, weight_str] = split_kv(tokens[t], line);
    const int weight = parse_int(weight_str, line, "mix " + verb);
    if (weight < 0) fail(line, "mix weight must be >= 0: " + tokens[t]);
    if (verb == "knn") spec->mix_knn = weight;
    else if (verb == "coverage") spec->mix_coverage = weight;
    else if (verb == "load") spec->mix_load = weight;
    else if (verb == "stats") spec->mix_stats = weight;
    else if (verb == "health") spec->mix_health = weight;
    else fail(line, "unknown mix verb '" + verb + "'");
  }
}

void parse_churn(WorkloadSpec* spec, const std::vector<std::string>& tokens,
                 int line) {
  if (tokens.size() < 3)
    fail(line, "churn needs: churn every=N <event body>");
  const auto [key, value] = split_kv(tokens[1], line);
  if (key != "every") fail(line, "churn needs every=N first, got " + key);
  ChurnSpec c;
  c.every = parse_int(value, line, "churn every");
  if (c.every < 1) fail(line, "churn every must be >= 1");
  std::string body;
  for (std::size_t t = 2; t < tokens.size(); ++t) {
    if (t > 2) body += ' ';
    body += tokens[t];
  }
  // Validate the event vocabulary now — a bench should fail at parse time,
  // not after the daemon rejects request #250.
  try {
    (void)scenario::parse_event_body(body);
  } catch (const std::exception& e) {
    fail(line, std::string("churn body: ") + e.what());
  }
  c.body = std::move(body);
  spec->churn.push_back(std::move(c));
}

}  // namespace

WorkloadSpec parse_workload_string(const std::string& text) {
  WorkloadSpec spec;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::vector<std::string> tokens = tokenize(raw);
    if (tokens.empty()) continue;
    const std::string& key = tokens[0];
    if (key == "mix") {
      parse_mix(&spec, tokens, line_no);
      continue;
    }
    if (key == "churn") {
      parse_churn(&spec, tokens, line_no);
      continue;
    }
    if (tokens.size() != 2)
      fail(line_no, "expected '" + key + " <value>'");
    const std::string& value = tokens[1];
    if (key == "name") spec.name = value;
    else if (key == "requests") spec.requests = parse_int(value, line_no, key);
    else if (key == "rate") spec.rate = parse_double(value, line_no, key);
    else if (key == "connections")
      spec.connections = parse_int(value, line_no, key);
    else if (key == "seed") spec.seed = parse_uint64(value, line_no, key);
    else if (key == "knn_k") spec.knn_k = parse_int(value, line_no, key);
    else fail(line_no, "unknown workload key '" + key + "'");
  }
  if (spec.requests < 1)
    throw std::runtime_error("workload: requests must be >= 1");
  if (spec.rate < 0.0)
    throw std::runtime_error("workload: rate must be >= 0");
  if (spec.connections < 1)
    throw std::runtime_error("workload: connections must be >= 1");
  if (spec.knn_k < 1) throw std::runtime_error("workload: knn_k must be >= 1");
  if (spec.mix_knn + spec.mix_coverage + spec.mix_load + spec.mix_stats +
          spec.mix_health <=
      0)
    throw std::runtime_error("workload: mix weights sum to zero");
  return spec;
}

WorkloadSpec load_workload_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open workload file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return parse_workload_string(buf.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

std::string format_workload(const WorkloadSpec& spec) {
  std::ostringstream out;
  out << "name        " << spec.name << '\n';
  out << "requests    " << spec.requests << '\n';
  out << "rate        " << JsonWriter::number_to_string(spec.rate) << '\n';
  out << "connections " << spec.connections << '\n';
  out << "seed        " << spec.seed << '\n';
  out << "knn_k       " << spec.knn_k << '\n';
  out << "mix         knn=" << spec.mix_knn
      << " coverage=" << spec.mix_coverage << " load=" << spec.mix_load
      << " stats=" << spec.mix_stats << " health=" << spec.mix_health << '\n';
  for (const ChurnSpec& c : spec.churn)
    out << "churn       every=" << c.every << ' ' << c.body << '\n';
  return out.str();
}

std::vector<ScheduledRequest> expand_schedule(const WorkloadSpec& spec,
                                              double side) {
  std::vector<ScheduledRequest> schedule;
  schedule.reserve(static_cast<std::size_t>(spec.requests));
  // Independent derived streams: adding a churn line or changing the mix
  // does not reshuffle coordinates, and vice versa.
  Rng verb_rng(Rng::derive(spec.seed, 1));
  Rng coord_rng(Rng::derive(spec.seed, 2));
  const int total_weight = spec.mix_knn + spec.mix_coverage + spec.mix_load +
                           spec.mix_stats + spec.mix_health;

  const auto point_request = [&](const char* op, bool with_k) {
    const double x = coord_rng.uniform(0.0, side);
    const double y = coord_rng.uniform(0.0, side);
    std::ostringstream out;
    JsonWriter w(out, /*indent=*/0);
    w.begin_object();
    w.kv("op", op);
    w.kv("x", x);
    w.kv("y", y);
    if (with_k) w.kv("k", spec.knn_k);
    w.end_object();
    return out.str();
  };

  for (int i = 0; i < spec.requests; ++i) {
    ScheduledRequest req;
    const int draw = verb_rng.uniform_int(1, total_weight);
    if (draw <= spec.mix_knn) {
      req.op = "knn";
      req.line = point_request("knn", /*with_k=*/true);
    } else if (draw <= spec.mix_knn + spec.mix_coverage) {
      req.op = "coverage";
      req.line = point_request("coverage", /*with_k=*/false);
    } else if (draw <= spec.mix_knn + spec.mix_coverage + spec.mix_load) {
      req.op = "load";
      req.line = "{\"op\":\"load\"}";
    } else if (draw <=
               spec.mix_knn + spec.mix_coverage + spec.mix_load +
                   spec.mix_stats) {
      req.op = "stats";
      req.line = "{\"op\":\"stats\"}";
    } else {
      req.op = "health";
      req.line = "{\"op\":\"health\"}";
    }
    schedule.push_back(std::move(req));

    for (const ChurnSpec& c : spec.churn) {
      if ((i + 1) % c.every != 0) continue;
      ScheduledRequest ev;
      ev.op = "event";
      std::ostringstream out;
      JsonWriter w(out, /*indent=*/0);
      w.begin_object();
      w.kv("op", "event");
      w.kv("spec", c.body);
      w.end_object();
      ev.line = out.str();
      schedule.push_back(std::move(ev));
    }
  }
  return schedule;
}

}  // namespace laacad::serve
