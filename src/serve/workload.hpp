// Declarative query+churn workloads for the serving daemon — the `.wl`
// format replayed by serve_bench (bench/workloads/*.wl).
//
// Line-oriented like the scenario/campaign specs (same tokenizer, same
// "line N:" errors):
//
//   name        serve_mix          # workload name (artifact naming)
//   requests    2000               # scheduled query requests (fixed count)
//   rate        500                # offered rate, req/s; 0 = closed loop
//   connections 2                  # TCP connections, schedule round-robin
//   seed        7                  # derives every random draw below
//   knn_k       3                  # k passed on knn requests
//   mix         knn=6 coverage=2 load=1 stats=1   # verb weights
//   churn       every=250 fail_nodes count=2 pick=random
//   churn       every=600 add_nodes count=3 deploy=uniform
//
// `mix` weights pick each request's verb; query coordinates draw uniformly
// over the served domain's bounding box. Each `churn` line injects one
// event request after every `every`-th scheduled query (deterministic
// positions; the body is the scenario event vocabulary, validated at parse
// time via scenario::parse_event_body).
//
// The expanded schedule — verb per index, coordinates, churn injection
// points — is a pure function of the spec, so two runs of the same
// workload issue byte-identical request streams; only their timings
// differ. That is what lets serve_bench split its report into a
// deterministic section (counts, mix, config echo; byte-identical across
// runs and thread counts) and a timing section.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace laacad::serve {

/// One churn cadence: inject `body` after every `every` scheduled queries.
struct ChurnSpec {
  int every = 0;
  std::string body;  ///< trigger-less event body ("fail_nodes count=2 ...")
};

struct WorkloadSpec {
  std::string name = "unnamed";
  int requests = 1000;
  double rate = 0.0;  ///< offered req/s; 0 = closed loop (back-to-back)
  int connections = 1;
  std::uint64_t seed = 1;
  int knn_k = 3;
  /// Verb weights, parallel to serve::Verb order for the query verbs
  /// (knn, coverage, load, stats, health). Default: knn-heavy.
  int mix_knn = 6, mix_coverage = 2, mix_load = 1, mix_stats = 1,
      mix_health = 0;
  std::vector<ChurnSpec> churn;
};

/// One scheduled request, fully determined by (spec, index).
struct ScheduledRequest {
  std::string op;    ///< "knn" | "coverage" | "load" | "stats" | "health"
                     ///< | "event"
  std::string line;  ///< the JSON request line to send (no newline)
};

WorkloadSpec parse_workload_string(const std::string& text);
WorkloadSpec load_workload_file(const std::string& path);

/// Echo the spec back in canonical `.wl` form (config-echo for reports;
/// parse(format(spec)) == spec field-for-field).
std::string format_workload(const WorkloadSpec& spec);

/// Expand the full deterministic request schedule: `spec.requests` queries
/// with verbs drawn from the mix and coordinates drawn over [0, side]²,
/// churn events interleaved at their cadences. The result depends only on
/// (spec, side).
std::vector<ScheduledRequest> expand_schedule(const WorkloadSpec& spec,
                                              double side);

}  // namespace laacad::serve
