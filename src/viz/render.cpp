#include "viz/render.hpp"

#include "voronoi/sites.hpp"
#include "viz/svg.hpp"

namespace laacad::viz {

using geom::Ring;
using geom::Vec2;

namespace {

const char* kPalette[] = {"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728",
                          "#9467bd", "#8c564b", "#e377c2", "#7f7f7f",
                          "#bcbd22", "#17becf"};

void draw_domain(SvgCanvas& canvas, const wsn::Domain& domain) {
  Style outline;
  outline.stroke = "#000000";
  outline.stroke_width = 1.5;
  canvas.polygon(domain.outer(), outline);
  Style hole;
  hole.fill = "#dddddd";
  hole.stroke = "#888888";
  for (const Ring& h : domain.holes()) canvas.polygon(h, hole);
}

}  // namespace

bool render_deployment(const std::string& path, const wsn::Network& net,
                       const RenderOptions& opts) {
  SvgCanvas canvas(net.domain().bbox().inflated(10.0), opts.canvas_pixels);
  draw_domain(canvas, net.domain());
  if (opts.sensing_disks) {
    Style disk;
    disk.fill = "#9ecae1";
    disk.stroke = "#6baed6";
    disk.stroke_width = 0.5;
    disk.opacity = 0.3;
    for (const wsn::Node& n : net.nodes()) {
      if (n.sensing_range > 0.0) canvas.circle(n.pos, n.sensing_range, disk);
    }
  }
  for (const wsn::Node& n : net.nodes()) {
    canvas.dot(n.pos, 2.5, "#d62728");
    if (opts.node_ids) {
      canvas.text(n.pos + Vec2{1.0, 1.0}, std::to_string(n.id), 9.0);
    }
  }
  return canvas.save(path);
}

bool render_order_k_partition(const std::string& path,
                              const wsn::Network& net, int k,
                              const RenderOptions& opts) {
  SvgCanvas canvas(net.domain().bbox().inflated(10.0), opts.canvas_pixels);
  const auto sites = vor::separate_sites(net.positions());
  const auto cells = vor::enumerate_order_k_cells(
      sites, k, geom::box_ring(net.domain().bbox()));
  std::size_t idx = 0;
  for (const vor::OrderKCell& cell : cells) {
    Style cs;
    cs.fill = kPalette[idx++ % 10];
    cs.opacity = 0.25;
    cs.stroke = "#444444";
    cs.stroke_width = 0.8;
    canvas.polygon(cell.poly, cs);
  }
  draw_domain(canvas, net.domain());
  for (const wsn::Node& n : net.nodes()) canvas.dot(n.pos, 2.5, "#000000");
  return canvas.save(path);
}

bool render_dominating_region(const std::string& path,
                              const wsn::Network& net, wsn::NodeId i, int k,
                              const RenderOptions& opts) {
  SvgCanvas canvas(net.domain().bbox().inflated(10.0), opts.canvas_pixels);
  draw_domain(canvas, net.domain());
  const auto sites = vor::separate_sites(net.positions());
  const auto cells = vor::dominating_region_cells(
      sites, i, k, geom::box_ring(net.domain().bbox()));
  Style region;
  region.fill = "#2ca02c";
  region.opacity = 0.35;
  region.stroke = "#2ca02c";
  for (const vor::OrderKCell& cell : cells) canvas.polygon(cell.poly, region);
  for (const wsn::Node& n : net.nodes()) {
    canvas.dot(n.pos, 2.0, n.id == i ? "#d62728" : "#555555");
  }
  return canvas.save(path);
}

}  // namespace laacad::viz
