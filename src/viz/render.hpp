// Scene renderers reproducing the paper's pictures: deployments with
// sensing disks (Figs. 5 and 8) and k-order Voronoi partitions (Fig. 1).
#pragma once

#include <string>

#include "laacad/engine.hpp"
#include "voronoi/orderk.hpp"
#include "wsn/network.hpp"

namespace laacad::viz {

struct RenderOptions {
  bool sensing_disks = true;   ///< translucent sensing disks at the backdrop
  bool node_ids = false;
  double canvas_pixels = 800.0;
};

/// Domain outline + holes + nodes (+ sensing disks).
bool render_deployment(const std::string& path, const wsn::Network& net,
                       const RenderOptions& opts = {});

/// Order-k Voronoi partition of the current node positions (Fig. 1 style).
bool render_order_k_partition(const std::string& path,
                              const wsn::Network& net, int k,
                              const RenderOptions& opts = {});

/// One node's dominating region (Fig. 2 style): region pieces highlighted,
/// other nodes dimmed.
bool render_dominating_region(const std::string& path,
                              const wsn::Network& net, wsn::NodeId i, int k,
                              const RenderOptions& opts = {});

}  // namespace laacad::viz
