#include "viz/svg.hpp"

#include <fstream>
#include <iomanip>

namespace laacad::viz {

using geom::Vec2;

SvgCanvas::SvgCanvas(geom::BBox world, double pixels) : world_(world) {
  const double w = std::max(world.width(), 1e-9);
  scale_ = pixels / w;
  width_ = pixels;
  height_ = std::max(world.height(), 1e-9) * scale_;
  body_ << std::fixed << std::setprecision(2);
}

Vec2 SvgCanvas::map(Vec2 w) const {
  return {(w.x - world_.lo.x) * scale_, height_ - (w.y - world_.lo.y) * scale_};
}

std::string SvgCanvas::style_attrs(const Style& s) {
  std::ostringstream os;
  os << "fill=\"" << s.fill << "\" stroke=\"" << s.stroke
     << "\" stroke-width=\"" << s.stroke_width << "\"";
  if (s.opacity < 1.0) os << " opacity=\"" << s.opacity << "\"";
  return os.str();
}

void SvgCanvas::circle(Vec2 center, double radius, const Style& style) {
  const Vec2 c = map(center);
  body_ << "<circle cx=\"" << c.x << "\" cy=\"" << c.y << "\" r=\""
        << scale(radius) << "\" " << style_attrs(style) << "/>\n";
}

void SvgCanvas::polygon(const geom::Ring& ring, const Style& style) {
  if (ring.size() < 2) return;
  body_ << "<polygon points=\"";
  for (Vec2 v : ring) {
    const Vec2 p = map(v);
    body_ << p.x << ',' << p.y << ' ';
  }
  body_ << "\" " << style_attrs(style) << "/>\n";
}

void SvgCanvas::polyline(const std::vector<Vec2>& pts, const Style& style) {
  if (pts.size() < 2) return;
  body_ << "<polyline points=\"";
  for (Vec2 v : pts) {
    const Vec2 p = map(v);
    body_ << p.x << ',' << p.y << ' ';
  }
  body_ << "\" " << style_attrs(style) << "/>\n";
}

void SvgCanvas::line(Vec2 a, Vec2 b, const Style& style) {
  const Vec2 p = map(a), q = map(b);
  body_ << "<line x1=\"" << p.x << "\" y1=\"" << p.y << "\" x2=\"" << q.x
        << "\" y2=\"" << q.y << "\" " << style_attrs(style) << "/>\n";
}

void SvgCanvas::dot(Vec2 p, double pixel_radius, const std::string& color) {
  const Vec2 c = map(p);
  body_ << "<circle cx=\"" << c.x << "\" cy=\"" << c.y << "\" r=\""
        << pixel_radius << "\" fill=\"" << color << "\" stroke=\"none\"/>\n";
}

void SvgCanvas::text(Vec2 p, const std::string& s, double pixel_size,
                     const std::string& color) {
  const Vec2 c = map(p);
  body_ << "<text x=\"" << c.x << "\" y=\"" << c.y << "\" font-size=\""
        << pixel_size << "\" fill=\"" << color
        << "\" font-family=\"sans-serif\">" << s << "</text>\n";
}

std::string SvgCanvas::to_string() const {
  std::ostringstream os;
  os << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
     << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_
     << "\" height=\"" << height_ << "\" viewBox=\"0 0 " << width_ << ' '
     << height_ << "\">\n"
     << "<rect width=\"100%\" height=\"100%\" fill=\"#ffffff\"/>\n"
     << body_.str() << "</svg>\n";
  return os.str();
}

bool SvgCanvas::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_string();
  return static_cast<bool>(out);
}

}  // namespace laacad::viz
