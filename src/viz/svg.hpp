// Minimal dependency-free SVG canvas. World coordinates are metres with a
// y-up convention; the canvas flips to SVG's y-down pixel space.
#pragma once

#include <sstream>
#include <string>

#include "geometry/polygon.hpp"

namespace laacad::viz {

/// Stroke/fill styling for primitives; values are raw SVG attribute
/// strings ("none", "#1f77b4", "rgba(...)", etc.).
struct Style {
  std::string fill = "none";
  std::string stroke = "#333333";
  double stroke_width = 1.0;
  double opacity = 1.0;
};

class SvgCanvas {
 public:
  /// World window mapped to a canvas `pixels` wide (height keeps aspect).
  SvgCanvas(geom::BBox world, double pixels = 800.0);

  void circle(geom::Vec2 center, double radius, const Style& style);
  void polygon(const geom::Ring& ring, const Style& style);
  void line(geom::Vec2 a, geom::Vec2 b, const Style& style);
  void dot(geom::Vec2 p, double pixel_radius, const std::string& color);
  void text(geom::Vec2 p, const std::string& s, double pixel_size = 12.0,
            const std::string& color = "#000000");
  void polyline(const std::vector<geom::Vec2>& pts, const Style& style);

  /// Serialize the full document.
  std::string to_string() const;

  /// Write to a file; returns false on I/O failure.
  bool save(const std::string& path) const;

 private:
  geom::Vec2 map(geom::Vec2 w) const;
  double scale(double world_len) const { return world_len * scale_; }
  static std::string style_attrs(const Style& s);

  geom::BBox world_;
  double scale_;
  double width_, height_;
  std::ostringstream body_;
};

}  // namespace laacad::viz
