#include "voronoi/adaptive.hpp"

#include <algorithm>

#include "geometry/convex.hpp"
#include "voronoi/sites.hpp"

namespace laacad::vor {

using geom::Ring;
using geom::Vec2;

namespace {

// Window = circumscribed n-gon of disk(center, radius) ∩ bbox. The n-gon is
// circumscribed so its apothem equals `radius`: any window-clipped vertex is
// at distance >= radius, which is exactly the expansion trigger.
Ring disk_bbox_window(Vec2 center, double radius, const geom::BBox& bbox,
                      int sides) {
  Ring win = geom::circumscribed_ngon(center, radius, sides);
  std::vector<geom::HalfPlane> walls = {
      {{bbox.hi.x, 0}, {1, 0}},   // x <= hi.x
      {{bbox.lo.x, 0}, {-1, 0}},  // x >= lo.x
      {{0, bbox.hi.y}, {0, 1}},   // y <= hi.y
      {{0, bbox.lo.y}, {0, -1}},  // y >= lo.y
  };
  return geom::intersect_halfplanes(std::move(win), walls);
}

double max_region_vertex_dist(const std::vector<OrderKCell>& cells, Vec2 ref) {
  double m = 0.0;
  for (const OrderKCell& c : cells)
    for (Vec2 v : c.poly) m = std::max(m, geom::dist(ref, v));
  return m;
}

}  // namespace

RegionResult compute_dominating_region(const std::vector<Vec2>& sites,
                                       const wsn::SpatialGrid& grid, int i,
                                       int k, const geom::BBox& area_bbox,
                                       const AdaptiveConfig& cfg) {
  RegionResult result;
  const int n = static_cast<int>(sites.size());
  if (i < 0 || i >= n || k <= 0 || k > n) return result;
  const Vec2 ui = sites[static_cast<size_t>(i)];
  const geom::BBox bbox = area_bbox.inflated(cfg.bbox_margin);

  // Initial gather radius: reach comfortably past the k nearest sites.
  double rho = 1.0;
  {
    auto kn = grid.k_nearest(ui, k, /*exclude=*/i);
    if (!kn.empty()) {
      const double dk = geom::dist(sites[static_cast<size_t>(kn.back())], ui);
      rho = std::max(4.0 * dk, 1e-3);
    }
  }

  while (true) {
    std::vector<int> local = grid.within(ui, rho);
    const bool all_sites = static_cast<int>(local.size()) >= n;

    // Build the local site list; remember the mapping back to global ids.
    std::vector<Vec2> lpos;
    lpos.reserve(local.size());
    int li = -1;
    for (std::size_t a = 0; a < local.size(); ++a) {
      if (local[a] == i) li = static_cast<int>(a);
      lpos.push_back(sites[static_cast<size_t>(local[a])]);
    }
    if (li < 0) {  // grid numerics; force self-inclusion
      li = static_cast<int>(lpos.size());
      lpos.push_back(ui);
      local.push_back(i);
    }
    lpos = separate_sites(std::move(lpos));

    const Ring window =
        all_sites ? geom::box_ring(bbox)
                  : disk_bbox_window(ui, rho / 2.0, bbox,
                                     cfg.disk_ngon_sides);
    // The kernel re-indexes the gathered subset internally (thread-local
    // scratch grid above a small site count) — `grid` bounds the gather, the
    // kernel bounds the per-cell candidate lists. Results are bit-identical
    // to the exhaustive kernel either way.
    auto cells = dominating_region_cells(lpos, li, k, window);

    const bool fits =
        all_sites ||
        max_region_vertex_dist(cells, ui) < 0.5 * rho * (1.0 - 1e-9);
    if (fits && (!cells.empty() || all_sites)) {
      // Remap generator ids to global indices.
      for (OrderKCell& c : cells) {
        for (int& g : c.gens) g = local[static_cast<size_t>(g)];
        std::sort(c.gens.begin(), c.gens.end());
      }
      result.cells = std::move(cells);
      result.rho = rho;
      result.used_all_sites = all_sites;
      return result;
    }
    rho *= cfg.growth;
    ++result.expansions;
  }
}

}  // namespace laacad::vor
