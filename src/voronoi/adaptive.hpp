// Adaptive exact dominating-region solver built on Lemma 1.
//
// Lemma 1 (paper): if the dominating region of n_i is enclosed by the circle
// (u_i, rho/2), it is fully determined by the sites within (u_i, rho).
// Pointwise form used here: for any v with |v - u_i| <= rho/2, a site
// farther than rho from u_i is at distance >= rho/2 >= |v - u_i| from v, so
// it can never beat i at v — membership inside the rho/2 disk is exact with
// the local site set.
//
// The solver therefore gathers sites within rho, computes the region clipped
// to (disk(u_i, rho/2) ∩ area bbox), and doubles rho while any region vertex
// reaches the rho/2 boundary. The area-bbox clip bounds regions of nodes
// near the boundary of A, whose raw dominating regions extend to infinity.
// Once every site is gathered the region is exact in the whole bbox and the
// disk window is dropped.
//
// This mirrors Algorithm 2's expanding ring with the hop granularity
// replaced by geometric doubling; the hop-faithful variant lives in
// laacad/localized.*.
#pragma once

#include "geometry/polygon.hpp"
#include "voronoi/orderk.hpp"
#include "wsn/spatial_grid.hpp"

namespace laacad::vor {

struct RegionResult {
  std::vector<OrderKCell> cells;  ///< convex pieces of V^k_i ∩ area bbox
  double rho = 0.0;               ///< gather radius that certified the result
  int expansions = 0;             ///< number of radius doublings
  bool used_all_sites = false;    ///< fell back to the global site set

  bool empty() const { return cells.empty(); }
};

struct AdaptiveConfig {
  double growth = 1.8;       ///< rho multiplier per expansion
  int disk_ngon_sides = 48;  ///< window approximation of the rho/2 disk
  double bbox_margin = 1.0;  ///< metres of slack around the area bbox
};

/// Exact V^k_i ∩ bbox(A) for site i. `sites` are global positions (already
/// degeneracy-separated); `grid` indexes the same positions. Generator ids
/// in the result refer to indices in `sites`.
RegionResult compute_dominating_region(const std::vector<geom::Vec2>& sites,
                                       const wsn::SpatialGrid& grid, int i,
                                       int k, const geom::BBox& area_bbox,
                                       const AdaptiveConfig& cfg = {});

}  // namespace laacad::vor
