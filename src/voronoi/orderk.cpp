#include "voronoi/orderk.hpp"

#include <algorithm>
#include <queue>
#include <set>

#include "geometry/halfplane.hpp"
#include "voronoi/sites.hpp"

namespace laacad::vor {

using geom::HalfPlane;
using geom::Ring;
using geom::Vec2;

namespace {

// Max distance from `ref` to any vertex of the ring.
double max_vertex_dist(const Ring& ring, Vec2 ref) {
  double m = 0.0;
  for (Vec2 v : ring) m = std::max(m, geom::dist(ref, v));
  return m;
}

// Sorted indices of all sites except those in `gens`, by ascending distance
// from ref.
std::vector<int> sorted_out_sites(const std::vector<Vec2>& sites,
                                  const std::vector<int>& gens, Vec2 ref) {
  std::vector<int> out;
  out.reserve(sites.size());
  for (std::size_t j = 0; j < sites.size(); ++j) {
    if (!std::binary_search(gens.begin(), gens.end(), static_cast<int>(j)))
      out.push_back(static_cast<int>(j));
  }
  std::sort(out.begin(), out.end(), [&](int a, int b) {
    return geom::dist2(sites[static_cast<size_t>(a)], ref) <
           geom::dist2(sites[static_cast<size_t>(b)], ref);
  });
  return out;
}

// Probe offset used to identify the generator set across a cell edge:
// relative to the local geometry scale.
double probe_delta(const Ring& cell) {
  const geom::BBox bb = geom::bounding_box(cell);
  return 1e-6 * (1.0 + std::max(bb.width(), bb.height()));
}

}  // namespace

Ring order_k_cell(const std::vector<Vec2>& sites,
                  const std::vector<int>& gens,
                  const std::vector<int>& others_sorted, const Ring& window) {
  Ring cell = window;
  if (cell.size() < 3 || gens.empty()) return {};

  // Reference for the pruning bound: the generator farthest from which the
  // out-site distances were sorted is approximated by the first generator.
  const Vec2 ref = sites[static_cast<size_t>(gens.front())];
  double dmax_h = 0.0;
  for (int h : gens)
    dmax_h = std::max(dmax_h, geom::dist(sites[static_cast<size_t>(h)], ref));

  double rv = max_vertex_dist(cell, ref);
  for (int j : others_sorted) {
    if (cell.empty()) break;
    const Vec2 uj = sites[static_cast<size_t>(j)];
    // Pruning: for any v in the cell, dist(v, u_j) >= |u_j - ref| - rv and
    // dist(v, u_h) <= rv + dmax_h. If the former exceeds the latter for the
    // nearest remaining out-site, no later out-site can cut either.
    if (geom::dist(uj, ref) - rv > rv + dmax_h) break;
    bool cut = false;
    for (int h : gens) {
      const HalfPlane hp =
          geom::bisector_halfplane(sites[static_cast<size_t>(h)], uj);
      // Quick reject: does the bisector actually cut the current cell?
      bool all_inside = true;
      for (Vec2 v : cell) {
        if (hp.signed_dist(v) > geom::kEps) {
          all_inside = false;
          break;
        }
      }
      if (all_inside) continue;
      cell = geom::clip_ring(cell, hp);
      cut = true;
      if (cell.empty()) break;
    }
    if (cut) rv = max_vertex_dist(cell, ref);
  }
  return cell;
}

namespace {

// Shared BFS engine. When `restrict_to` >= 0, only cells whose generator
// set contains that site are expanded and reported (dominating-region
// traversal); otherwise all cells are reported (full enumeration).
std::vector<OrderKCell> bfs_cells(const std::vector<Vec2>& sites, int k,
                                  const Ring& window, int restrict_to,
                                  const std::vector<std::vector<int>>& seeds) {
  std::vector<OrderKCell> out;
  if (sites.empty() || k <= 0 || k > static_cast<int>(sites.size()) ||
      window.size() < 3)
    return out;

  std::set<std::vector<int>> visited;
  std::queue<std::vector<int>> queue;
  auto push = [&](std::vector<int> gens) {
    std::sort(gens.begin(), gens.end());
    gens.erase(std::unique(gens.begin(), gens.end()), gens.end());
    if (static_cast<int>(gens.size()) != k) return;
    if (restrict_to >= 0 &&
        !std::binary_search(gens.begin(), gens.end(), restrict_to))
      return;
    if (visited.insert(gens).second) queue.push(std::move(gens));
  };
  for (const auto& s : seeds) push(s);

  while (!queue.empty()) {
    std::vector<int> gens = std::move(queue.front());
    queue.pop();

    const Vec2 ref = sites[static_cast<size_t>(gens.front())];
    const auto others = sorted_out_sites(sites, gens, ref);
    Ring cell = order_k_cell(sites, gens, others, window);
    if (cell.empty() || geom::area(cell) < 1e-18) continue;

    // Cross every edge with a probe just outside the cell; the k nearest
    // sites there form the neighbouring cell's generator set.
    const double delta = probe_delta(cell);
    const std::size_t m = cell.size();
    for (std::size_t e = 0; e < m; ++e) {
      const Vec2 a = cell[e], b = cell[(e + 1) % m];
      const Vec2 edge = b - a;
      if (edge.norm() < 10.0 * delta) continue;  // skip slivers
      const Vec2 outward = Vec2{edge.y, -edge.x}.normalized();
      const Vec2 probe = geom::midpoint(a, b) + outward * delta;
      if (!geom::contains_point(window, probe, 0.0)) continue;  // window edge
      push(k_nearest_brute(sites, probe, k));
    }

    out.push_back(OrderKCell{std::move(gens), std::move(cell)});
  }
  return out;
}

}  // namespace

std::vector<OrderKCell> dominating_region_cells(const std::vector<Vec2>& sites,
                                                int i, int k,
                                                const Ring& window) {
  if (i < 0 || i >= static_cast<int>(sites.size())) return {};
  const Vec2 ui = sites[static_cast<size_t>(i)];
  std::vector<std::vector<int>> seeds;
  seeds.push_back(k_nearest_brute(sites, ui, k));
  // Extra probe seeds around u_i guard against degenerate ties at u_i
  // itself (e.g. when the k-nearest set at u_i has an empty cell).
  for (int dir = 0; dir < 8; ++dir) {
    const double ang = dir * M_PI / 4.0;
    const Vec2 p = ui + Vec2{std::cos(ang), std::sin(ang)} * 1e-5;
    auto h = k_nearest_brute(sites, p, k);
    // Force i into the seed if the probe slipped outside its region.
    if (!std::count(h.begin(), h.end(), i) && !h.empty()) h.back() = i;
    seeds.push_back(std::move(h));
  }
  return bfs_cells(sites, k, window, i, seeds);
}

std::vector<OrderKCell> enumerate_order_k_cells(const std::vector<Vec2>& sites,
                                                int k, const Ring& window) {
  std::vector<std::vector<int>> seeds;
  // Seeding from every site's own location reaches every connected
  // component of the diagram restricted to the window.
  for (std::size_t i = 0; i < sites.size(); ++i)
    seeds.push_back(k_nearest_brute(sites, sites[i], k));
  seeds.push_back(k_nearest_brute(sites, geom::centroid(window), k));
  return bfs_cells(sites, k, window, /*restrict_to=*/-1, seeds);
}

Ring order_1_cell(const std::vector<Vec2>& sites, int i, const Ring& window) {
  auto cells = dominating_region_cells(sites, i, 1, window);
  if (cells.empty()) return {};
  return cells.front().poly;
}

}  // namespace laacad::vor
