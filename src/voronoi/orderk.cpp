#include "voronoi/orderk.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>
#include <utility>

#include "common/perf_counters.hpp"
#include "geometry/halfplane.hpp"
#include "voronoi/sites.hpp"

namespace laacad::vor {

using geom::HalfPlane;
using geom::Ring;
using geom::Vec2;

namespace {

// Max distance from `ref` to any vertex of the ring.
double max_vertex_dist(const Ring& ring, Vec2 ref) {
  double m = 0.0;
  for (Vec2 v : ring) m = std::max(m, geom::dist(ref, v));
  return m;
}

// Probe offset used to identify the generator set across a cell edge:
// relative to the local geometry scale.
double probe_delta(const Ring& cell) {
  const geom::BBox bb = geom::bounding_box(cell);
  return 1e-6 * (1.0 + std::max(bb.width(), bb.height()));
}

// ---------------------------------------------------------- cell engine ----
//
// One order-k cell is the window clipped against bisectors with out-sites
// taken in ascending distance from the reference generator, with the Lemma
// pruning bound ending the scan early. The brute and grid paths share this
// machinery; they differ only in how the candidate list is produced.

// Reusable per-BFS scratch: ping-pong clip rings plus the candidate buffer.
// Eliminates the ring allocation per half-plane clip (and the candidate
// vector per cell) the old kernel paid.
struct CellScratch {
  Ring cur, next;
  std::vector<std::pair<double, int>> cand;  // (dist2 to ref, site index)
};

struct CellState {
  Vec2 ref;          // first generator: reference for ordering and pruning
  double dmax_h = 0; // max distance from ref to any generator
  double rv = 0;     // max distance from ref to any current cell vertex
};

// Load the window into scratch.cur and derive the pruning state. Returns
// false when the cell is trivially empty.
bool init_cell(const std::vector<Vec2>& sites, const std::vector<int>& gens,
               const Ring& window, CellScratch& s, CellState& st) {
  s.cur.assign(window.begin(), window.end());
  if (s.cur.size() < 3 || gens.empty()) {
    s.cur.clear();
    return false;
  }
  st.ref = sites[static_cast<std::size_t>(gens.front())];
  st.dmax_h = 0.0;
  for (int h : gens)
    st.dmax_h =
        std::max(st.dmax_h, geom::dist(sites[static_cast<std::size_t>(h)], st.ref));
  st.rv = max_vertex_dist(s.cur, st.ref);
  perf::counters().dist2_evals += gens.size() + s.cur.size();
  return true;
}

// Clip scratch.cur against the out-sites cand[from..to) (in the order
// given; both paths supply ascending (dist2, index)). Returns true when the
// scan stopped early — the pruning bound fired or the cell emptied — which
// proves no out-site later in the canonical order can cut the cell.
bool clip_against(const std::vector<Vec2>& sites, const std::vector<int>& gens,
                  const std::vector<std::pair<double, int>>& cand,
                  std::size_t from, std::size_t to, CellScratch& s,
                  CellState& st) {
  auto& pc = perf::counters();
  for (std::size_t a = from; a < to; ++a) {
    if (s.cur.empty()) return true;
    const Vec2 uj = sites[static_cast<std::size_t>(cand[a].second)];
    // Pruning: for any v in the cell, dist(v, u_j) >= |u_j - ref| - rv and
    // dist(v, u_h) <= rv + dmax_h. If the former exceeds the latter for the
    // nearest remaining out-site, no later out-site can cut either.
    ++pc.dist2_evals;
    if (geom::dist(uj, st.ref) - st.rv > st.rv + st.dmax_h) return true;
    bool cut = false;
    for (int h : gens) {
      const HalfPlane hp =
          geom::bisector_halfplane(sites[static_cast<std::size_t>(h)], uj);
      // Quick reject: does the bisector actually cut the current cell?
      bool all_inside = true;
      for (Vec2 v : s.cur) {
        if (hp.signed_dist(v) > geom::kEps) {
          all_inside = false;
          break;
        }
      }
      if (all_inside) continue;
      geom::clip_ring_into(s.cur, hp, s.next, geom::kEps);
      std::swap(s.cur, s.next);
      cut = true;
      if (s.cur.empty()) break;
    }
    if (cut) {
      st.rv = max_vertex_dist(s.cur, st.ref);
      pc.dist2_evals += s.cur.size();
    }
  }
  return false;
}

// Exhaustive path: every out-site, sorted once by (dist2 to ref, index).
void cell_brute(const std::vector<Vec2>& sites, const std::vector<int>& gens,
                CellScratch& s, CellState& st) {
  s.cand.clear();
  for (std::size_t j = 0; j < sites.size(); ++j) {
    if (std::binary_search(gens.begin(), gens.end(), static_cast<int>(j)))
      continue;
    s.cand.emplace_back(geom::dist2(sites[j], st.ref), static_cast<int>(j));
  }
  perf::counters().dist2_evals += s.cand.size();
  std::sort(s.cand.begin(), s.cand.end());
  clip_against(sites, gens, s.cand, 0, s.cand.size(), s, st);
}

// Grid path: gather candidates in expanding rings around the reference
// generator. Once the gather radius R satisfies R >= 2 rv + dmax_h, any
// site beyond R fails the clip_against pruning bound outright (its distance
// exceeds R >= 2 rv + dmax_h), so the brute scan would have stopped at it —
// the bounded candidate list yields the bit-identical cell. If every site
// is gathered before the bound closes, the list has degenerated to the
// exhaustive one (counted as a kernel fallback) and equality is trivial.
// Each expansion re-gathers and re-sorts the full disk rather than merging
// in the new annulus: the bit-identity argument leans on the processed
// prefix being a stable prefix of one sorted list, which a full re-gather
// gives for free, and expansions are rare (the radius doubles from a
// generator-spread initial guess). The redundant evaluations count against
// the grid path in the dist2 counters, i.e. the reported reduction is
// conservative.
void cell_grid(const std::vector<Vec2>& sites, const wsn::SpatialGrid& grid,
               const std::vector<int>& gens, CellScratch& s, CellState& st) {
  const std::size_t n_out = sites.size() - gens.size();
  double bound = 2.0 * st.rv + st.dmax_h;
  double radius = std::min(bound, st.dmax_h + grid.cell_size());
  std::size_t processed = 0;
  while (true) {
    grid.collect_within(st.ref, radius, s.cand);
    // Drop the generators; the (dist2, index) order is preserved, and the
    // first `processed` entries match the previous, smaller gather exactly.
    std::erase_if(s.cand, [&](const std::pair<double, int>& c) {
      return std::binary_search(gens.begin(), gens.end(), c.second);
    });
    if (clip_against(sites, gens, s.cand, processed, s.cand.size(), s, st))
      return;
    processed = s.cand.size();
    if (processed >= n_out) {
      // Bound never closed before the gather covered every out-site: the
      // provable fallback to the exhaustive list.
      ++perf::counters().kernel_fallbacks;
      return;
    }
    bound = 2.0 * st.rv + st.dmax_h;
    if (radius >= bound) return;  // no ungathered site can pass the bound
    radius = std::min(radius * 2.0, bound);
  }
}

// The one probe primitive of the BFS and its seeders: k nearest sites to a
// point, through the grid when one is available. Grid and brute answers are
// exactly equal (shared canonical (dist2, index) order; property-tested).
std::vector<int> nearest_gens(const std::vector<Vec2>& sites,
                              const wsn::SpatialGrid* grid, Vec2 p, int k) {
  return grid ? grid->k_nearest(p, k) : k_nearest_brute(sites, p, k);
}

// -------------------------------------------------------- visited cells ----

// Flat open-addressing hash set over canonical (sorted, size-k) generator
// sets. Replaces the std::set<std::vector<int>> the BFS used to pay a
// red-black-tree node plus a heap-allocated key vector per visited cell:
// keys live concatenated in one arena, the table is a power-of-two slot
// array with linear probing, and a membership test costs one hash plus a
// short scan.
class GenSetSeen {
 public:
  explicit GenSetSeen(int k) : k_(static_cast<std::size_t>(k)) {
    table_.assign(64, kEmpty);
  }

  /// True when `gens` (sorted, |gens| == k) was not seen before.
  bool insert(const std::vector<int>& gens) {
    if ((static_cast<std::size_t>(size_) + 1) * 10 >= table_.size() * 7)
      grow();
    const std::size_t mask = table_.size() - 1;
    std::size_t slot = hash(gens.data()) & mask;
    while (table_[slot] != kEmpty) {
      if (equals(table_[slot], gens.data())) return false;
      slot = (slot + 1) & mask;
    }
    table_[slot] = size_;
    keys_.insert(keys_.end(), gens.begin(), gens.end());
    ++size_;
    return true;
  }

 private:
  static constexpr std::uint32_t kEmpty = 0xffffffffu;

  std::uint64_t hash(const int* key) const {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (std::size_t a = 0; a < k_; ++a) {  // splitmix64 over the elements
      std::uint64_t z =
          h + static_cast<std::uint64_t>(static_cast<std::uint32_t>(key[a])) +
          0x9e3779b97f4a7c15ULL;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      h = z ^ (z >> 31);
    }
    return h;
  }

  bool equals(std::uint32_t id, const int* key) const {
    const int* stored = keys_.data() + static_cast<std::size_t>(id) * k_;
    return std::equal(stored, stored + k_, key);
  }

  void grow() {
    std::vector<std::uint32_t> bigger(table_.size() * 2, kEmpty);
    const std::size_t mask = bigger.size() - 1;
    for (std::uint32_t id = 0; id < size_; ++id) {
      std::size_t slot =
          hash(keys_.data() + static_cast<std::size_t>(id) * k_) & mask;
      while (bigger[slot] != kEmpty) slot = (slot + 1) & mask;
      bigger[slot] = id;
    }
    table_.swap(bigger);
  }

  std::size_t k_;
  std::uint32_t size_ = 0;
  std::vector<int> keys_;             // concatenated size-k keys, insert order
  std::vector<std::uint32_t> table_;  // slot -> key id, kEmpty when free
};

// ------------------------------------------------------------------ BFS ----

// Shared BFS engine. When `restrict_to` >= 0, only cells whose generator
// set contains that site are expanded and reported (dominating-region
// traversal); otherwise all cells are reported (full enumeration). When
// `grid` is non-null it must index exactly `sites`; all probe queries and
// candidate gathers then route through it.
std::vector<OrderKCell> bfs_cells(const std::vector<Vec2>& sites, int k,
                                  const Ring& window, int restrict_to,
                                  const std::vector<std::vector<int>>& seeds,
                                  const wsn::SpatialGrid* grid) {
  std::vector<OrderKCell> out;
  if (sites.empty() || k <= 0 || k > static_cast<int>(sites.size()) ||
      window.size() < 3)
    return out;

  GenSetSeen visited(k);
  std::queue<std::vector<int>> queue;
  auto push = [&](std::vector<int> gens) {
    std::sort(gens.begin(), gens.end());
    gens.erase(std::unique(gens.begin(), gens.end()), gens.end());
    if (static_cast<int>(gens.size()) != k) return;
    if (restrict_to >= 0 &&
        !std::binary_search(gens.begin(), gens.end(), restrict_to))
      return;
    if (visited.insert(gens)) queue.push(std::move(gens));
  };
  auto probe_gens = [&](Vec2 p) { return nearest_gens(sites, grid, p, k); };
  for (const auto& s : seeds) push(s);

  CellScratch scratch;
  CellState st;
  auto& pc = perf::counters();
  while (!queue.empty()) {
    std::vector<int> gens = std::move(queue.front());
    queue.pop();

    if (!init_cell(sites, gens, window, scratch, st)) continue;
    if (grid) {
      cell_grid(sites, *grid, gens, scratch, st);
#ifndef NDEBUG
      {
        // Debug cross-check: the bounded gather must reproduce the
        // exhaustive kernel bit for bit.
        CellScratch ref_s;
        CellState ref_st;
        init_cell(sites, gens, window, ref_s, ref_st);
        cell_brute(sites, gens, ref_s, ref_st);
        assert(scratch.cur == ref_s.cur &&
               "grid-backed order-k cell diverged from the brute kernel");
      }
#endif
    } else {
      cell_brute(sites, gens, scratch, st);
    }
    const Ring& cell = scratch.cur;
    if (cell.empty() || geom::area(cell) < 1e-18) continue;

    // Cross every edge with a probe just outside the cell; the k nearest
    // sites there form the neighbouring cell's generator set.
    const double delta = probe_delta(cell);
    const std::size_t m = cell.size();
    for (std::size_t e = 0; e < m; ++e) {
      const Vec2 a = cell[e], b = cell[(e + 1) % m];
      const Vec2 edge = b - a;
      const double len = edge.norm();
      if (len <= 0.0) continue;
      const Vec2 outward = Vec2{edge.y, -edge.x}.normalized();
      if (len >= 10.0 * delta) {
        const Vec2 probe = geom::midpoint(a, b) + outward * delta;
        if (!geom::contains_point(window, probe, 0.0)) continue;  // window edge
        push(probe_gens(probe));
      } else {
        // Sliver edge. The old kernel skipped these outright, which can
        // drop a neighbouring cell reachable only through the short edge; a
        // single midpoint probe offset by the full delta is no better, as
        // it can overshoot a thin neighbour entirely. Probe from the
        // midpoints of both half-edges with an offset scaled to the edge
        // length so the probes stay adjacent to it; wrong or duplicate hits
        // are harmless (empty cells or visited sets).
        const double off = 0.25 * len;
        for (const double t : {0.25, 0.75}) {
          const Vec2 probe = a + edge * t + outward * off;
          if (!geom::contains_point(window, probe, 0.0)) continue;
          push(probe_gens(probe));
        }
      }
    }

    ++pc.cells_built;
    out.push_back(OrderKCell{std::move(gens), cell});
  }
  return out;
}

// Seed sets for a dominating-region traversal around u_i.
std::vector<std::vector<int>> region_seeds(const std::vector<Vec2>& sites,
                                           int i, int k,
                                           const wsn::SpatialGrid* grid) {
  const Vec2 ui = sites[static_cast<std::size_t>(i)];
  auto nearest = [&](Vec2 p) { return nearest_gens(sites, grid, p, k); };
  std::vector<std::vector<int>> seeds;
  seeds.push_back(nearest(ui));
  // Extra probe seeds around u_i guard against degenerate ties at u_i
  // itself (e.g. when the k-nearest set at u_i has an empty cell).
  for (int dir = 0; dir < 8; ++dir) {
    const double ang = dir * M_PI / 4.0;
    const Vec2 p = ui + Vec2{std::cos(ang), std::sin(ang)} * 1e-5;
    auto h = nearest(p);
    // Force i into the seed if the probe slipped outside its region.
    if (!std::count(h.begin(), h.end(), i) && !h.empty()) h.back() = i;
    seeds.push_back(std::move(h));
  }
  return seeds;
}

// Seed sets reaching every connected component of the full diagram.
std::vector<std::vector<int>> enumeration_seeds(const std::vector<Vec2>& sites,
                                                int k, const Ring& window,
                                                const wsn::SpatialGrid* grid) {
  auto nearest = [&](Vec2 p) { return nearest_gens(sites, grid, p, k); };
  std::vector<std::vector<int>> seeds;
  // Seeding from every site's own location reaches every connected
  // component of the diagram restricted to the window.
  for (std::size_t i = 0; i < sites.size(); ++i) seeds.push_back(nearest(sites[i]));
  seeds.push_back(nearest(geom::centroid(window)));
  return seeds;
}

// Below this site count the grid build outweighs the candidate savings; the
// exhaustive sort over a handful of sites is already cache-resident.
constexpr std::size_t kAutoGridThreshold = 32;

// Thread-local scratch index for the auto-accelerated entry points: rebuilt
// per call (O(n)), bucket storage reused across calls on the same thread.
// Per-round owners that issue many queries against one snapshot (the region
// providers) should prefer the explicit-grid overloads.
const wsn::SpatialGrid& scratch_grid(const std::vector<Vec2>& sites) {
  thread_local wsn::SpatialGrid grid;
  const geom::BBox bb = geom::bounding_box(sites);
  const double span = std::max(bb.width(), bb.height());
  const double cell = std::max(
      span / std::ceil(std::sqrt(static_cast<double>(sites.size()))), 1e-6);
  grid.rebuild(sites, cell);
  return grid;
}

}  // namespace

Ring order_k_cell(const std::vector<Vec2>& sites,
                  const std::vector<int>& gens,
                  const std::vector<int>& others_sorted, const Ring& window) {
  CellScratch s;
  CellState st;
  if (!init_cell(sites, gens, window, s, st)) return {};
  // Honour the caller-provided order exactly; the keys are unused.
  s.cand.clear();
  s.cand.reserve(others_sorted.size());
  for (int j : others_sorted) s.cand.emplace_back(0.0, j);
  clip_against(sites, gens, s.cand, 0, s.cand.size(), s, st);
  return std::move(s.cur);
}

std::vector<OrderKCell> dominating_region_cells(const std::vector<Vec2>& sites,
                                                int i, int k,
                                                const Ring& window) {
  if (i < 0 || i >= static_cast<int>(sites.size())) return {};
  if (sites.size() >= kAutoGridThreshold)
    return dominating_region_cells(sites, scratch_grid(sites), i, k, window);
  return dominating_region_cells_brute(sites, i, k, window);
}

std::vector<OrderKCell> dominating_region_cells(const std::vector<Vec2>& sites,
                                                const wsn::SpatialGrid& grid,
                                                int i, int k,
                                                const Ring& window) {
  if (i < 0 || i >= static_cast<int>(sites.size())) return {};
  return bfs_cells(sites, k, window, i, region_seeds(sites, i, k, &grid),
                   &grid);
}

std::vector<OrderKCell> dominating_region_cells_brute(
    const std::vector<Vec2>& sites, int i, int k, const Ring& window) {
  if (i < 0 || i >= static_cast<int>(sites.size())) return {};
  return bfs_cells(sites, k, window, i, region_seeds(sites, i, k, nullptr),
                   nullptr);
}

std::vector<OrderKCell> enumerate_order_k_cells(const std::vector<Vec2>& sites,
                                                int k, const Ring& window) {
  if (sites.size() >= kAutoGridThreshold)
    return enumerate_order_k_cells(sites, scratch_grid(sites), k, window);
  return enumerate_order_k_cells_brute(sites, k, window);
}

std::vector<OrderKCell> enumerate_order_k_cells(const std::vector<Vec2>& sites,
                                                const wsn::SpatialGrid& grid,
                                                int k, const Ring& window) {
  return bfs_cells(sites, k, window, /*restrict_to=*/-1,
                   enumeration_seeds(sites, k, window, &grid), &grid);
}

std::vector<OrderKCell> enumerate_order_k_cells_brute(
    const std::vector<Vec2>& sites, int k, const Ring& window) {
  return bfs_cells(sites, k, window, /*restrict_to=*/-1,
                   enumeration_seeds(sites, k, window, nullptr), nullptr);
}

Ring order_1_cell(const std::vector<Vec2>& sites, int i, const Ring& window) {
  auto cells = dominating_region_cells(sites, i, 1, window);
  if (cells.empty()) return {};
  return cells.front().poly;
}

}  // namespace laacad::vor
