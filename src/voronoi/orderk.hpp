// Order-k Voronoi cells and dominating regions (Sec. III-C of the paper).
//
// Representation: the order-k Voronoi cell of a k-subset H of sites is
//
//   V_H = { v : max_{h in H} |v - u_h|  <=  min_{j not in H} |v - u_j| }
//       = intersection over (h in H, j not in H) of the bisector half-plane
//         keeping h's side,
//
// a convex polygon. The *dominating region* of site i (paper notation
// V^k_{n_i}) is the union of all nonempty V_H with i in H, equivalently
// { v : at most k-1 other sites are strictly closer to v than i }
// (Proposition 1). We enumerate the union by breadth-first search over the
// cell adjacency graph: two cells sharing an edge differ by swapping one
// generator, and the generator set of the neighbouring cell is recovered by
// probing the k nearest sites just across the shared edge.
//
// Validity of the restricted BFS rests on the dominating region being
// star-shaped with respect to u_i: any site that beats i at a point w on
// the segment [u_i, v] also beats i at v (a half-plane that contains w but
// not u_i must contain the whole ray beyond w), so the count of closer
// sites is monotone along rays from u_i. This is property-tested in
// tests/test_orderk.cpp.
// Kernel acceleration (this file's second half): every entry point exists in
// two equivalent implementations. The *brute* path sorts all n out-sites per
// BFS cell and probes edges with k_nearest_brute — the straightforward
// transcription of the construction above, kept as the reference. The *grid*
// path routes every point-location and probe query through a
// wsn::SpatialGrid and clips each cell against a distance-bounded candidate
// list gathered from the grid in expanding rings: once the gather radius R
// satisfies R >= 2 rv + dmax (rv = current max vertex distance of the cell
// from the reference generator, dmax = generator spread), any site beyond R
// fails the same pruning bound the brute loop breaks on, so the two paths
// clip the same sites in the same order and produce bit-identical cells
// (asserted against each other in Debug builds; if every site is gathered
// before the bound closes, the gather has degenerated to the exhaustive
// list, counted as a kernel_fallback). The default entry points pick the
// grid path automatically above a small site count, reusing a thread-local
// scratch grid, so all callers — the adaptive Lemma-1 solver, the localized
// Algorithm-2 solver, tests, benches — share one accelerated kernel.
#pragma once

#include <vector>

#include "geometry/polygon.hpp"
#include "wsn/spatial_grid.hpp"

namespace laacad::vor {

/// One convex piece of an order-k Voronoi diagram.
struct OrderKCell {
  std::vector<int> gens;  ///< Sorted generator indices (|gens| = k).
  geom::Ring poly;        ///< Convex polygon (CCW), clipped to the window.

  double area() const { return geom::area(poly); }
};

/// Cell of an explicit generator set, clipped to the convex `window`.
/// `others` lists candidate out-sites sorted by ascending distance from a
/// reference point (pass all non-H sites; pruning is internal). Returns an
/// empty ring when the cell is empty within the window.
geom::Ring order_k_cell(const std::vector<geom::Vec2>& sites,
                        const std::vector<int>& gens,
                        const std::vector<int>& others_sorted,
                        const geom::Ring& window);

/// All cells forming the dominating region of site i at order k, clipped to
/// `window`. `sites` must be degeneracy-free (see separate_sites). The
/// window must be convex and should contain u_i. Uses the grid-accelerated
/// kernel (over a thread-local scratch grid) when the site count warrants
/// it; output is bit-identical to dominating_region_cells_brute either way.
std::vector<OrderKCell> dominating_region_cells(
    const std::vector<geom::Vec2>& sites, int i, int k,
    const geom::Ring& window);

/// Same, against a caller-owned spatial index over exactly `sites` (same
/// order): lets per-round owners (RegionProvider backends, benches) amortize
/// the grid build across many queries.
std::vector<OrderKCell> dominating_region_cells(
    const std::vector<geom::Vec2>& sites, const wsn::SpatialGrid& grid, int i,
    int k, const geom::Ring& window);

/// Exhaustive reference kernel (full per-cell candidate sort, brute-force
/// probes). Kept for cross-validation in tests and as the micro-bench
/// baseline the grid kernel's dist2-eval reduction is measured against.
std::vector<OrderKCell> dominating_region_cells_brute(
    const std::vector<geom::Vec2>& sites, int i, int k,
    const geom::Ring& window);

/// Every nonempty order-k cell within the window (full-diagram enumeration;
/// used for diagram statistics, Fig. 1, and cross-validation in tests).
/// Same auto grid acceleration as dominating_region_cells.
std::vector<OrderKCell> enumerate_order_k_cells(
    const std::vector<geom::Vec2>& sites, int k, const geom::Ring& window);

/// Enumeration against a caller-owned index over `sites`.
std::vector<OrderKCell> enumerate_order_k_cells(
    const std::vector<geom::Vec2>& sites, const wsn::SpatialGrid& grid, int k,
    const geom::Ring& window);

/// Exhaustive reference enumeration.
std::vector<OrderKCell> enumerate_order_k_cells_brute(
    const std::vector<geom::Vec2>& sites, int k, const geom::Ring& window);

/// Classic order-1 Voronoi cell of site i (dominating region at k = 1 is a
/// single convex cell).
geom::Ring order_1_cell(const std::vector<geom::Vec2>& sites, int i,
                        const geom::Ring& window);

}  // namespace laacad::vor
