#include "voronoi/sites.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/perf_counters.hpp"

namespace laacad::vor {

using geom::Vec2;

std::vector<Vec2> separate_sites(std::vector<Vec2> positions, double min_sep) {
  const std::size_t n = positions.size();
  // O(n^2) in the worst case but the inner work only triggers for
  // near-coincident pairs; region computations call this on small local
  // lists, and full-network calls are once per round.
  for (std::size_t pass = 0; pass < 4; ++pass) {
    bool moved = false;
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        if (geom::dist2(positions[a], positions[b]) >= min_sep * min_sep)
          continue;
        // Deterministic separation direction derived from the indices.
        const double ang =
            2.39996322972865332 * static_cast<double>(a * 31 + b * 7 + pass);
        const Vec2 dir{std::cos(ang), std::sin(ang)};
        positions[a] -= dir * (0.6 * min_sep);
        positions[b] += dir * (0.6 * min_sep);
        moved = true;
      }
    }
    if (!moved) break;
  }
  return positions;
}

std::vector<int> k_nearest_brute(const std::vector<Vec2>& sites, Vec2 q,
                                 int k) {
  // (dist2, index) keys: dist2 computed once per site instead of once per
  // sort comparison, and ties resolve by ascending index — the same
  // canonical order wsn::SpatialGrid::k_nearest produces, so grid and brute
  // answers agree exactly (property-tested in tests/test_wsn.cpp).
  std::vector<std::pair<double, int>> keyed;
  keyed.reserve(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i)
    keyed.emplace_back(geom::dist2(sites[i], q), static_cast<int>(i));
  perf::counters().dist2_evals += keyed.size();
  const int kk = std::min<int>(k, static_cast<int>(sites.size()));
  std::partial_sort(keyed.begin(), keyed.begin() + kk, keyed.end());
  std::vector<int> idx;
  idx.reserve(static_cast<std::size_t>(kk));
  for (int i = 0; i < kk; ++i) idx.push_back(keyed[static_cast<std::size_t>(i)].second);
  return idx;
}

int closer_count(const std::vector<Vec2>& sites, int i, Vec2 v) {
  const double di = geom::dist2(sites[static_cast<size_t>(i)], v);
  int count = 0;
  for (std::size_t j = 0; j < sites.size(); ++j) {
    if (static_cast<int>(j) == i) continue;
    if (geom::dist2(sites[j], v) < di) ++count;
  }
  return count;
}

}  // namespace laacad::vor
