#include "voronoi/sites.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <utility>

#include "common/perf_counters.hpp"

namespace laacad::vor {

using geom::Vec2;

namespace {

/// True iff some pair of points lies strictly closer than min_sep. Hash-grid
/// sweep with cell == min_sep: any violating pair shares a cell or sits in
/// adjacent cells, so each point checks at most its 3x3 neighbourhood —
/// O(n) expected, versus the O(n^2) scan it prescreens. Only a boolean
/// leaves this function, so it cannot perturb the (order-sensitive,
/// bit-pinned) separation loop below.
bool has_close_pair(const std::vector<Vec2>& positions, double min_sep) {
  const double inv = 1.0 / min_sep;
  const double sep2 = min_sep * min_sep;
  // Key packs the two 64-bit cell coordinates (coordinates over metres-scale
  // domains divided by a 1e-7 cell overflow int32) into one hashable word.
  const auto key_of = [&](Vec2 p) {
    const auto cx = static_cast<std::int64_t>(std::floor(p.x * inv));
    const auto cy = static_cast<std::int64_t>(std::floor(p.y * inv));
    return static_cast<std::uint64_t>(cx) * 0x9e3779b97f4a7c15ULL +
           static_cast<std::uint64_t>(cy);
  };
  // Chained buckets: head[cell key] -> most recent point, next[] threads the
  // rest. One pass inserts and probes the 3x3 neighbourhood around each
  // point against previously inserted ones, so every pair is checked once.
  std::unordered_map<std::uint64_t, int> head;
  head.reserve(positions.size() * 2);
  std::vector<int> next(positions.size(), -1);
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const Vec2 p = positions[i];
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const Vec2 probe{p.x + dx * min_sep, p.y + dy * min_sep};
        const auto it = head.find(key_of(probe));
        if (it == head.end()) continue;
        for (int j = it->second; j >= 0; j = next[static_cast<std::size_t>(j)])
          if (geom::dist2(p, positions[static_cast<std::size_t>(j)]) < sep2)
            return true;
      }
    }
    auto [it, fresh] = head.try_emplace(key_of(p), static_cast<int>(i));
    if (!fresh) {
      next[i] = it->second;
      it->second = static_cast<int>(i);
    }
  }
  return false;
}

}  // namespace

std::vector<Vec2> separate_sites(std::vector<Vec2> positions, double min_sep) {
  const std::size_t n = positions.size();
  // Fast path for large site sets: a linear-time prescreen proves the
  // quadratic separation loop would find nothing to do (by far the common
  // case — live networks only produce sub-min_sep pairs near the k >= 2
  // co-location equilibrium). Returning the input unchanged is exactly what
  // the loop below would do, so the fast path is bit-identical by
  // construction. When a violating pair does exist we fall back to the
  // original pairwise loop: its in-place, index-ordered mutations are part
  // of the pinned deterministic contract and cannot be reordered.
  if (n > 256 && !has_close_pair(positions, min_sep)) return positions;
  // O(n^2) in the worst case but the inner work only triggers for
  // near-coincident pairs; region computations call this on small local
  // lists, and full-network calls are once per round.
  for (std::size_t pass = 0; pass < 4; ++pass) {
    bool moved = false;
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        if (geom::dist2(positions[a], positions[b]) >= min_sep * min_sep)
          continue;
        // Deterministic separation direction derived from the indices.
        const double ang =
            2.39996322972865332 * static_cast<double>(a * 31 + b * 7 + pass);
        const Vec2 dir{std::cos(ang), std::sin(ang)};
        positions[a] -= dir * (0.6 * min_sep);
        positions[b] += dir * (0.6 * min_sep);
        moved = true;
      }
    }
    if (!moved) break;
  }
  return positions;
}

std::vector<int> k_nearest_brute(const std::vector<Vec2>& sites, Vec2 q,
                                 int k) {
  // (dist2, index) keys: dist2 computed once per site instead of once per
  // sort comparison, and ties resolve by ascending index — the same
  // canonical order wsn::SpatialGrid::k_nearest produces, so grid and brute
  // answers agree exactly (property-tested in tests/test_wsn.cpp).
  std::vector<std::pair<double, int>> keyed;
  keyed.reserve(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i)
    keyed.emplace_back(geom::dist2(sites[i], q), static_cast<int>(i));
  perf::counters().dist2_evals += keyed.size();
  const int kk = std::min<int>(k, static_cast<int>(sites.size()));
  std::partial_sort(keyed.begin(), keyed.begin() + kk, keyed.end());
  std::vector<int> idx;
  idx.reserve(static_cast<std::size_t>(kk));
  for (int i = 0; i < kk; ++i) idx.push_back(keyed[static_cast<std::size_t>(i)].second);
  return idx;
}

int closer_count(const std::vector<Vec2>& sites, int i, Vec2 v) {
  const double di = geom::dist2(sites[static_cast<size_t>(i)], v);
  int count = 0;
  for (std::size_t j = 0; j < sites.size(); ++j) {
    if (static_cast<int>(j) == i) continue;
    if (geom::dist2(sites[j], v) < di) ++count;
  }
  return count;
}

}  // namespace laacad::vor
