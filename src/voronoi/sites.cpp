#include "voronoi/sites.hpp"

#include <algorithm>
#include <cmath>

namespace laacad::vor {

using geom::Vec2;

std::vector<Vec2> separate_sites(std::vector<Vec2> positions, double min_sep) {
  const std::size_t n = positions.size();
  // O(n^2) in the worst case but the inner work only triggers for
  // near-coincident pairs; region computations call this on small local
  // lists, and full-network calls are once per round.
  for (std::size_t pass = 0; pass < 4; ++pass) {
    bool moved = false;
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        if (geom::dist2(positions[a], positions[b]) >= min_sep * min_sep)
          continue;
        // Deterministic separation direction derived from the indices.
        const double ang =
            2.39996322972865332 * static_cast<double>(a * 31 + b * 7 + pass);
        const Vec2 dir{std::cos(ang), std::sin(ang)};
        positions[a] -= dir * (0.6 * min_sep);
        positions[b] += dir * (0.6 * min_sep);
        moved = true;
      }
    }
    if (!moved) break;
  }
  return positions;
}

std::vector<int> k_nearest_brute(const std::vector<Vec2>& sites, Vec2 q,
                                 int k) {
  std::vector<int> idx(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i) idx[i] = static_cast<int>(i);
  const int kk = std::min<int>(k, static_cast<int>(sites.size()));
  std::partial_sort(idx.begin(), idx.begin() + kk, idx.end(),
                    [&](int a, int b) {
                      return geom::dist2(sites[static_cast<size_t>(a)], q) <
                             geom::dist2(sites[static_cast<size_t>(b)], q);
                    });
  idx.resize(static_cast<std::size_t>(kk));
  return idx;
}

int closer_count(const std::vector<Vec2>& sites, int i, Vec2 v) {
  const double di = geom::dist2(sites[static_cast<size_t>(i)], v);
  int count = 0;
  for (std::size_t j = 0; j < sites.size(); ++j) {
    if (static_cast<int>(j) == i) continue;
    if (geom::dist2(sites[j], v) < di) ++count;
  }
  return count;
}

}  // namespace laacad::vor
