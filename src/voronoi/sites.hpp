// Voronoi generator sites with degeneracy handling.
//
// LAACAD's equilibrium for k >= 2 drives groups of k nodes toward
// co-location (Fig. 5), which makes perpendicular bisectors between group
// members numerically ill-conditioned. SiteSet deterministically separates
// sites closer than a tiny threshold before any bisector is formed, so the
// Voronoi machinery never sees coincident generators. The perturbation
// (<= 1e-7 m at km scale) is far below every quantity the experiments
// report.
#pragma once

#include <vector>

#include "geometry/vec2.hpp"

namespace laacad::vor {

/// Minimum separation enforced between any two sites handed to the cell
/// construction.
inline constexpr double kMinSiteSeparation = 1e-7;

/// Returns a copy of `positions` where near-coincident points have been
/// pushed apart deterministically (by index-dependent directions), leaving
/// all other points untouched.
std::vector<geom::Vec2> separate_sites(std::vector<geom::Vec2> positions,
                                       double min_sep = kMinSiteSeparation);

/// Indices of the k nearest sites to q among `sites` (brute force; intended
/// for the small local site lists inside region computations). Includes a
/// site at distance 0 if present.
std::vector<int> k_nearest_brute(const std::vector<geom::Vec2>& sites,
                                 geom::Vec2 q, int k);

/// Number of sites strictly closer to v than sites[i] — the |S_i(v)| of
/// Proposition 1. Membership test: v is in the dominating region of i iff
/// this is <= k-1.
int closer_count(const std::vector<geom::Vec2>& sites, int i, geom::Vec2 v);

}  // namespace laacad::vor
