#include "wsn/boundary.hpp"

#include <algorithm>
#include <cmath>

namespace laacad::wsn {

BoundaryInfo detect_boundary(const Network& net, NodeId i,
                             const BoundaryConfig& cfg) {
  BoundaryInfo info;
  const double radius = cfg.radius > 0.0 ? cfg.radius : net.gamma();
  const double margin = cfg.area_margin > 0.0 ? cfg.area_margin : net.gamma();

  const geom::Vec2 ui = net.position(i);
  if (net.domain().dist_to_boundary(ui) <= margin) info.area_boundary = true;

  auto ids = net.nodes_within(ui, radius);
  std::erase(ids, static_cast<int>(i));
  if (ids.empty()) {
    info.network_boundary = true;
    return info;
  }
  std::vector<double> angles;
  angles.reserve(ids.size());
  for (int j : ids) angles.push_back((net.position(j) - ui).angle());
  std::sort(angles.begin(), angles.end());
  double max_gap = 2.0 * M_PI - (angles.back() - angles.front());
  double gap_mid = angles.back() + 0.5 * max_gap;  // wrap-around gap
  for (std::size_t a = 0; a + 1 < angles.size(); ++a) {
    const double gap = angles[a + 1] - angles[a];
    if (gap > max_gap) {
      max_gap = gap;
      gap_mid = angles[a] + 0.5 * gap;
    }
  }
  // A wide gap marks a *network* boundary only when the uncovered direction
  // points into the target area; a gap facing A's exterior is handled by
  // the natural-boundary rule (the arc check skips out-of-area samples), so
  // flagging it would wrongly suppress in-area checks at equilibrium.
  const geom::Vec2 probe =
      ui + geom::Vec2{std::cos(gap_mid), std::sin(gap_mid)} * radius;
  info.network_boundary =
      max_gap > cfg.gap_threshold && net.domain().contains(probe);
  return info;
}

std::vector<BoundaryInfo> detect_all_boundaries(Network& net,
                                                const BoundaryConfig& cfg) {
  std::vector<BoundaryInfo> out;
  out.reserve(static_cast<std::size_t>(net.size()));
  for (NodeId i = 0; i < net.size(); ++i) {
    out.push_back(detect_boundary(net, i, cfg));
    net.set_boundary(i, out.back().any());
  }
  return out;
}

}  // namespace laacad::wsn
