// Localized boundary-detection service.
//
// The paper delegates network-boundary detection to UNFOLD [29]; we
// substitute a classic angular-gap heuristic with the same contract: using
// only 1-hop information, decide whether a node sits on the boundary of the
// region currently occupied by the network. A node also counts as a boundary
// node when it is close to the boundary of the target area A itself
// (Sec. IV-B1: "A's boundary serves as a natural boundary").
#pragma once

#include <vector>

#include "wsn/network.hpp"

namespace laacad::wsn {

struct BoundaryConfig {
  /// Neighbour radius for the angular scan (defaults to the transmission
  /// range when <= 0).
  double radius = -1.0;
  /// A node is a network-boundary node when the largest angular gap between
  /// directions to its neighbours exceeds this (radians).
  double gap_threshold = M_PI / 2.0;
  /// Distance to the area boundary below which a node counts as an
  /// area-boundary node (defaults to gamma when <= 0).
  double area_margin = -1.0;
};

struct BoundaryInfo {
  bool network_boundary = false;
  bool area_boundary = false;
  bool any() const { return network_boundary || area_boundary; }
};

/// Classify one node.
BoundaryInfo detect_boundary(const Network& net, NodeId i,
                             const BoundaryConfig& cfg = {});

/// Classify all nodes and stamp Node::boundary.
std::vector<BoundaryInfo> detect_all_boundaries(Network& net,
                                                const BoundaryConfig& cfg = {});

}  // namespace laacad::wsn
