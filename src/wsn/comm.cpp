#include "wsn/comm.hpp"

#include <algorithm>
#include <queue>

namespace laacad::wsn {

void CommStats::merge(const CommStats& o) {
  gather_requests += o.gather_requests;
  node_reports += o.node_reports;
  max_hops_used = std::max(max_hops_used, o.max_hops_used);
}

CommModel::CommModel(const Network& net) : net_(&net) {
  const int n = net.size();
  adjacency_.resize(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) {
    adjacency_[static_cast<std::size_t>(i)] = net.one_hop_neighbors(i);
  }
}

std::vector<int> CommModel::hop_distances(NodeId i, int max_hops) const {
  const int n = net_->size();
  std::vector<int> d(static_cast<std::size_t>(n), -1);
  std::queue<int> q;
  d[static_cast<std::size_t>(i)] = 0;
  q.push(i);
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    const int du = d[static_cast<std::size_t>(u)];
    if (max_hops >= 0 && du >= max_hops) continue;
    for (int v : adjacency_[static_cast<std::size_t>(u)]) {
      if (d[static_cast<std::size_t>(v)] < 0) {
        d[static_cast<std::size_t>(v)] = du + 1;
        q.push(v);
      }
    }
  }
  return d;
}

std::vector<int> CommModel::gather(NodeId i, double rho, int ttl,
                                   CommStats* stats) const {
  const std::vector<int> d = hop_distances(i, ttl);
  const geom::Vec2 ui = net_->position(i);
  std::vector<int> out;
  int deepest = 0;
  for (int j = 0; j < net_->size(); ++j) {
    if (j == i) continue;
    if (d[static_cast<std::size_t>(j)] < 0) continue;
    if (geom::dist(net_->position(j), ui) < rho) {
      out.push_back(j);
      deepest = std::max(deepest, d[static_cast<std::size_t>(j)]);
    }
  }
  if (stats) {
    ++stats->gather_requests;
    stats->node_reports += out.size();
    stats->max_hops_used = std::max<std::uint64_t>(
        stats->max_hops_used, static_cast<std::uint64_t>(deepest));
  }
  return out;
}

bool CommModel::connected() const {
  if (net_->size() == 0) return true;
  const std::vector<int> d = hop_distances(0);
  return std::none_of(d.begin(), d.end(), [](int x) { return x < 0; });
}

}  // namespace laacad::wsn
