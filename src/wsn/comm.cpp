#include "wsn/comm.hpp"

#include <algorithm>
#include <queue>

namespace laacad::wsn {

namespace {

// Per-thread BFS scratch reused across gather calls; epoch stamps make the
// per-call clear O(1) instead of O(n). Thread-local because the engine
// issues gathers from its worker pool.
struct GatherScratch {
  std::vector<std::uint32_t> stamp;   // BFS-visited, valid when == epoch
  std::vector<std::uint32_t> member;  // Euclidean target set, == epoch
  std::vector<int> depth;             // BFS depth, valid when stamp == epoch
  std::vector<int> queue;
  std::uint32_t epoch = 0;
};

GatherScratch& gather_scratch() {
  static thread_local GatherScratch s;
  return s;
}

}  // namespace

void CommStats::merge(const CommStats& o) {
  gather_requests += o.gather_requests;
  node_reports += o.node_reports;
  max_hops_used = std::max(max_hops_used, o.max_hops_used);
}

CommModel::CommModel(const Network& net) : net_(&net) {
  const int n = net.size();
  adjacency_.resize(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) {
    adjacency_[static_cast<std::size_t>(i)] = net.one_hop_neighbors(i);
  }
}

std::vector<int> CommModel::hop_distances(NodeId i, int max_hops) const {
  const int n = net_->size();
  std::vector<int> d(static_cast<std::size_t>(n), -1);
  std::queue<int> q;
  d[static_cast<std::size_t>(i)] = 0;
  q.push(i);
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    const int du = d[static_cast<std::size_t>(u)];
    if (max_hops >= 0 && du >= max_hops) continue;
    for (int v : adjacency_[static_cast<std::size_t>(u)]) {
      if (d[static_cast<std::size_t>(v)] < 0) {
        d[static_cast<std::size_t>(v)] = du + 1;
        q.push(v);
      }
    }
  }
  return d;
}

std::vector<int> CommModel::gather(NodeId i, double rho, int ttl,
                                   CommStats* stats) const {
  const geom::Vec2 ui = net_->position(i);
  std::vector<int> out;
  int deepest = 0;
  if (ttl < 0) {
    // Idealized gather: membership is purely Euclidean (< rho) plus
    // reachability from i. Resolve membership with a grid query instead of
    // an O(n) scan, then BFS outward from i with early exit once every
    // member has been labeled. BFS still assigns true shortest-hop depths,
    // so max_hops_used is unchanged, and an unreachable member simply
    // drains i's component — exactly what the unbounded BFS always did.
    std::vector<int> targets = net_->nodes_within(ui, rho);
    std::sort(targets.begin(), targets.end());
    GatherScratch& s = gather_scratch();
    const std::size_t n = static_cast<std::size_t>(net_->size());
    if (s.stamp.size() < n) {
      s.stamp.assign(n, 0);
      s.member.assign(n, 0);
      s.depth.resize(n);
      s.epoch = 0;
    }
    if (++s.epoch == 0) {  // stamp wrap: hard-reset once every 2^32 calls
      std::fill(s.stamp.begin(), s.stamp.end(), 0u);
      std::fill(s.member.begin(), s.member.end(), 0u);
      s.epoch = 1;
    }
    const std::uint32_t epoch = s.epoch;
    int wanted = 0;
    for (int j : targets) {
      if (j == i) continue;
      // Same strict test the full-scan path applied, so the gathered set is
      // bit-identical (the grid query over-approximates with <=).
      if (geom::dist(net_->position(j), ui) < rho) {
        s.member[static_cast<std::size_t>(j)] = epoch;
        ++wanted;
      }
    }
    s.queue.clear();
    s.queue.push_back(i);
    s.stamp[static_cast<std::size_t>(i)] = epoch;
    s.depth[static_cast<std::size_t>(i)] = 0;
    int found = 0;
    for (std::size_t head = 0; head < s.queue.size() && found < wanted;
         ++head) {
      const int u = s.queue[head];
      const int du = s.depth[static_cast<std::size_t>(u)];
      for (int v : adjacency_[static_cast<std::size_t>(u)]) {
        const std::size_t vz = static_cast<std::size_t>(v);
        if (s.stamp[vz] == epoch) continue;
        s.stamp[vz] = epoch;
        s.depth[vz] = du + 1;
        if (s.member[vz] == epoch) ++found;
        s.queue.push_back(v);
      }
    }
    out.reserve(static_cast<std::size_t>(found));
    for (int j : targets) {
      const std::size_t jz = static_cast<std::size_t>(j);
      if (s.member[jz] == epoch && s.stamp[jz] == epoch) {
        out.push_back(j);
        deepest = std::max(deepest, s.depth[jz]);
      }
    }
  } else {
    const std::vector<int> d = hop_distances(i, ttl);
    for (int j = 0; j < net_->size(); ++j) {
      if (j == i) continue;
      if (d[static_cast<std::size_t>(j)] < 0) continue;
      if (geom::dist(net_->position(j), ui) < rho) {
        out.push_back(j);
        deepest = std::max(deepest, d[static_cast<std::size_t>(j)]);
      }
    }
  }
  if (stats) {
    ++stats->gather_requests;
    stats->node_reports += out.size();
    stats->max_hops_used = std::max<std::uint64_t>(
        stats->max_hops_used, static_cast<std::uint64_t>(deepest));
  }
  return out;
}

bool CommModel::connected() const {
  if (net_->size() == 0) return true;
  const std::vector<int> d = hop_distances(0);
  return std::none_of(d.begin(), d.end(), [](int x) { return x < 0; });
}

}  // namespace laacad::wsn
