// Multi-hop communication model over the unit-disk graph (edge iff distance
// <= gamma). Algorithm 2 gathers nodes "within rho" by expanding one hop per
// ring step; this model answers those reachability queries and accounts for
// the messages such gathering would cost in a real WSN.
#pragma once

#include <cstdint>
#include <vector>

#include "wsn/network.hpp"

namespace laacad::wsn {

/// Message accounting for the localized algorithm; aggregated per run so the
/// locality claim (Fig. 2) can be quantified, not just illustrated.
struct CommStats {
  std::uint64_t gather_requests = 0;  ///< ring expansions issued
  std::uint64_t node_reports = 0;     ///< node positions shipped back
  std::uint64_t max_hops_used = 0;    ///< deepest ring over all queries

  void merge(const CommStats& o);
};

class CommModel {
 public:
  /// Snapshot of the network's connectivity at construction time. Rebuild
  /// per round (positions move between rounds).
  explicit CommModel(const Network& net);

  /// Hop distance from i to every node (-1 when unreachable), BFS over the
  /// disk graph, truncated at max_hops (<0 means unbounded).
  std::vector<int> hop_distances(NodeId i, int max_hops = -1) const;

  /// The N(n_i, rho) of Algorithm 2: nodes whose Euclidean distance to i is
  /// < rho, restricted to `ttl` hops of flooding (ttl < 0 = unbounded, i.e.
  /// the paper's idealized gather over the connected component — on a
  /// unit-disk graph a Euclidean-close node can be many hops away).
  /// Logs gather cost into `stats`, including the deepest hop actually
  /// needed to reach a gathered node. The unbounded case resolves
  /// membership via the spatial grid and early-exits the BFS, so its cost
  /// is O(neighborhood), not O(network); the gathered set is identical.
  std::vector<int> gather(NodeId i, double rho, int ttl,
                          CommStats* stats) const;

  /// True when the whole network is one connected component.
  bool connected() const;

  const Network& network() const { return *net_; }

 private:
  const Network* net_;
  std::vector<std::vector<int>> adjacency_;
};

}  // namespace laacad::wsn
