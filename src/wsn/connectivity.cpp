#include "wsn/connectivity.hpp"

#include <algorithm>
#include <queue>

namespace laacad::wsn {

ConnectivityReport analyze_connectivity(const Network& net,
                                        double radio_range) {
  ConnectivityReport rep;
  const int n = net.size();
  if (n == 0) return rep;

  std::vector<int> comp(static_cast<std::size_t>(n), -1);
  Summary degrees;
  rep.min_degree = n;
  for (int i = 0; i < n; ++i) {
    auto nb = net.nodes_within(net.position(i), radio_range);
    std::erase(nb, i);
    const int deg = static_cast<int>(nb.size());
    degrees.add(deg);
    rep.min_degree = std::min(rep.min_degree, deg);
  }
  rep.mean_degree = degrees.mean();

  for (int s = 0; s < n; ++s) {
    if (comp[static_cast<std::size_t>(s)] >= 0) continue;
    const int id = rep.components++;
    int size = 0;
    std::queue<int> q;
    comp[static_cast<std::size_t>(s)] = id;
    q.push(s);
    while (!q.empty()) {
      const int u = q.front();
      q.pop();
      ++size;
      auto nb = net.nodes_within(net.position(u), radio_range);
      for (int v : nb) {
        if (comp[static_cast<std::size_t>(v)] < 0) {
          comp[static_cast<std::size_t>(v)] = id;
          q.push(v);
        }
      }
    }
    rep.largest_component = std::max(rep.largest_component, size);
  }
  return rep;
}

std::vector<int> nodes_within_sensing_range(const Network& net) {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(net.size()));
  for (const Node& node : net.nodes()) {
    out.push_back(static_cast<int>(
        net.nodes_within(node.pos, node.sensing_range).size()));
  }
  return out;
}

}  // namespace laacad::wsn
