// Connectivity analysis of a deployment (Sec. IV-C "Connectivity").
//
// The paper argues that a k-covered WSN (k >= 2) is connected as a natural
// by-product: under k-coverage at least k nodes lie within any node's
// sensing range, in practice at least 7 (Fig. 2), so with the common
// assumption gamma >= r_i every node has degree >= 6. This module measures
// the claim: connected components and degree statistics of the
// communication graph, under either the transmission range gamma or any
// hypothetical radio range.
#pragma once

#include <vector>

#include "common/stats.hpp"
#include "wsn/network.hpp"

namespace laacad::wsn {

struct ConnectivityReport {
  int components = 0;       ///< connected components of the radio graph
  int largest_component = 0;
  int min_degree = 0;
  double mean_degree = 0.0;
  bool connected() const { return components <= 1; }
};

/// Analyze the communication graph with edges iff distance <= radio_range
/// (pass net.gamma() for the actual radio, or e.g. the max sensing range to
/// test the paper's gamma >= r_i argument).
ConnectivityReport analyze_connectivity(const Network& net,
                                        double radio_range);

/// Number of nodes within each node's *sensing* range (including itself):
/// under k-coverage this is >= k for every node (the node's own position
/// must be k-covered). Returns the per-node counts.
std::vector<int> nodes_within_sensing_range(const Network& net);

}  // namespace laacad::wsn
