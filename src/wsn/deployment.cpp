#include "wsn/deployment.hpp"

#include <cmath>
#include <stdexcept>

namespace laacad::wsn {

using geom::Vec2;

double auto_comm_range(const Domain& domain, int nodes, double side) {
  const double per_node = domain.area() / std::max(nodes, 1);
  const double range = std::max(side / 6.0, 1.7 * std::sqrt(per_node));
  // Density ceiling: ~40 expected nodes per gamma-disk. Without it the
  // side/6 floor makes gamma O(side) regardless of population, and at
  // 10^5+ nodes every localized gather ring holds thousands of nodes —
  // the O(n * ring_population) wall the scale ladder exists to catch. For
  // a square the ceiling only binds above ~460 nodes, so every sparse
  // config keeps the exact historical value.
  return std::min(range, std::sqrt(40.0 * per_node / M_PI));
}

Domain make_named_domain(const std::string& name, double side,
                         bool with_hole) {
  Domain d;
  if (name == "square") d = Domain::rectangle(side, side);
  else if (name == "lshape") d = Domain::lshape(side, side);
  else if (name == "cross") d = Domain::cross(side, side, 0.4);
  else throw std::invalid_argument("unknown domain shape '" + name + "'");
  if (with_hole) {
    d = d.with_rect_hole({side * 0.30, side * 0.30},
                         {side * 0.45, side * 0.45});
  }
  return d;
}

std::vector<Vec2> deploy_named(const Domain& domain, const std::string& name,
                               int n, double side, Rng& rng) {
  if (name == "uniform") return deploy_uniform(domain, n, rng);
  if (name == "corner") return deploy_corner(domain, n, rng);
  if (name == "gaussian") {
    return deploy_gaussian(domain, n, domain.bbox().center(), side / 6.0,
                           rng);
  }
  throw std::invalid_argument("unknown deployment '" + name + "'");
}

std::vector<Vec2> deploy_uniform(const Domain& domain, int n, Rng& rng) {
  std::vector<Vec2> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(domain.sample_uniform(rng));
  return out;
}

std::vector<Vec2> deploy_corner(const Domain& domain, int n, Rng& rng,
                                double fraction) {
  const geom::BBox bb = domain.bbox();
  std::vector<Vec2> out;
  out.reserve(static_cast<std::size_t>(n));
  int guard = 0;
  while (static_cast<int>(out.size()) < n && guard < 1000000) {
    ++guard;
    Vec2 p{rng.uniform(bb.lo.x, bb.lo.x + bb.width() * fraction),
           rng.uniform(bb.lo.y, bb.lo.y + bb.height() * fraction)};
    if (domain.contains(p)) out.push_back(p);
  }
  // Degenerate domains whose corner window misses the region entirely:
  // fall back to uniform sampling for the remainder.
  while (static_cast<int>(out.size()) < n)
    out.push_back(domain.sample_uniform(rng));
  return out;
}

std::vector<Vec2> deploy_gaussian(const Domain& domain, int n, Vec2 center,
                                  double sigma, Rng& rng) {
  std::vector<Vec2> out;
  out.reserve(static_cast<std::size_t>(n));
  int guard = 0;
  while (static_cast<int>(out.size()) < n && guard < 1000000) {
    ++guard;
    Vec2 p{rng.gaussian(center.x, sigma), rng.gaussian(center.y, sigma)};
    if (domain.contains(p)) out.push_back(p);
  }
  while (static_cast<int>(out.size()) < n)
    out.push_back(domain.sample_uniform(rng));
  return out;
}

std::vector<Vec2> triangular_lattice(const Domain& domain, double spacing) {
  std::vector<Vec2> out;
  const geom::BBox bb = domain.bbox().inflated(spacing);
  const double row_h = spacing * std::sqrt(3.0) / 2.0;
  int row = 0;
  for (double y = bb.lo.y; y <= bb.hi.y; y += row_h, ++row) {
    const double x0 = bb.lo.x + (row % 2 ? spacing / 2.0 : 0.0);
    for (double x = x0; x <= bb.hi.x; x += spacing) {
      const Vec2 p{x, y};
      if (domain.contains(p)) out.push_back(p);
    }
  }
  return out;
}

std::vector<Vec2> square_lattice(const Domain& domain, double spacing) {
  std::vector<Vec2> out;
  const geom::BBox bb = domain.bbox().inflated(spacing);
  for (double y = bb.lo.y; y <= bb.hi.y; y += spacing) {
    for (double x = bb.lo.x; x <= bb.hi.x; x += spacing) {
      const Vec2 p{x, y};
      if (domain.contains(p)) out.push_back(p);
    }
  }
  return out;
}

std::vector<Vec2> stacked(const std::vector<Vec2>& anchors, int k, Rng& rng,
                          double jitter) {
  std::vector<Vec2> out;
  out.reserve(anchors.size() * static_cast<std::size_t>(k));
  for (Vec2 a : anchors) {
    for (int i = 0; i < k; ++i) {
      out.push_back(
          a + Vec2{rng.uniform(-jitter, jitter), rng.uniform(-jitter, jitter)});
    }
  }
  return out;
}

}  // namespace laacad::wsn
