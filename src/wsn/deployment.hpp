// Initial-deployment generators for the scenarios in the paper's evaluation:
// uniform random (Fig. 7, Tables I/II), corner cluster (Figs. 5/6), and the
// regular lattices used by the baselines.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "wsn/domain.hpp"

namespace laacad::wsn {

/// Density-aware auto transmission range: large enough that the disk graph
/// stays well connected (~9 expected one-hop neighbours) even for sparse
/// populations, floored at side/6 — but ceilinged so a gamma-disk holds
/// ~40 expected nodes, which keeps localized gather rings O(1)-sized in
/// the dense (10^5+) regime. Shared by laacad_sim and the scenario engine
/// so their runs are cross-comparable.
double auto_comm_range(const Domain& domain, int nodes, double side);

/// The named evaluation domains ("square" | "lshape" | "cross"), optionally
/// with the standard obstacle rectangle — one definition shared by
/// laacad_sim and the scenario engine so identical parameters mean
/// identical experiments. Throws std::invalid_argument for unknown names.
Domain make_named_domain(const std::string& name, double side,
                         bool with_hole = false);

/// Named initial deployment ("uniform" | "corner" | "gaussian"; gaussian is
/// centred with sigma = side/6). Throws std::invalid_argument for unknown
/// names.
std::vector<geom::Vec2> deploy_named(const Domain& domain,
                                     const std::string& name, int n,
                                     double side, Rng& rng);

/// n positions sampled uniformly over the domain's coverage area.
std::vector<geom::Vec2> deploy_uniform(const Domain& domain, int n, Rng& rng);

/// n positions clustered in the bottom-left corner of the domain bbox
/// (within `fraction` of its width/height), as in Fig. 5(a).
std::vector<geom::Vec2> deploy_corner(const Domain& domain, int n, Rng& rng,
                                      double fraction = 0.12);

/// n positions from an isotropic Gaussian centred at `center` (clipped to
/// the domain by resampling).
std::vector<geom::Vec2> deploy_gaussian(const Domain& domain, int n,
                                        geom::Vec2 center, double sigma,
                                        Rng& rng);

/// Triangular (hexagonal-packing) lattice with edge `spacing` covering the
/// domain; only in-domain points are returned.
std::vector<geom::Vec2> triangular_lattice(const Domain& domain,
                                           double spacing);

/// Square lattice with the given spacing.
std::vector<geom::Vec2> square_lattice(const Domain& domain, double spacing);

/// k nodes per anchor point, jittered by `jitter` so co-located generators
/// remain numerically distinct.
std::vector<geom::Vec2> stacked(const std::vector<geom::Vec2>& anchors, int k,
                                Rng& rng, double jitter = 1e-3);

}  // namespace laacad::wsn
