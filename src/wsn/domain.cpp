#include "wsn/domain.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace laacad::wsn {

using geom::BBox;
using geom::Ring;
using geom::Vec2;

double ClippedRegion::coverage_area() const {
  double a = geom::area(outer);
  for (const Ring& h : hole_parts) a -= geom::area(h);
  return std::max(a, 0.0);
}

Domain::Domain(Ring outer, std::vector<Ring> holes)
    : outer_(std::move(outer)), holes_(std::move(holes)) {
  geom::make_ccw(outer_);
  for (Ring& h : holes_) geom::make_ccw(h);
  bbox_ = geom::bounding_box(outer_);
  area_ = geom::area(outer_);
  for (const Ring& h : holes_) area_ -= geom::area(h);
}

Domain Domain::rectangle(double w, double h) {
  return Domain(Ring{{0, 0}, {w, 0}, {w, h}, {0, h}});
}

Domain Domain::square_km() { return rectangle(1000.0, 1000.0); }

Domain Domain::lshape(double w, double h) {
  return Domain(
      Ring{{0, 0}, {w, 0}, {w, h / 2}, {w / 2, h / 2}, {w / 2, h}, {0, h}});
}

Domain Domain::cross(double w, double h, double arm_fraction) {
  const double ax = w * arm_fraction, ay = h * arm_fraction;
  const double x0 = (w - ax) / 2, x1 = (w + ax) / 2;
  const double y0 = (h - ay) / 2, y1 = (h + ay) / 2;
  return Domain(Ring{{x0, 0},  {x1, 0},  {x1, y0}, {w, y0}, {w, y1}, {x1, y1},
                     {x1, h},  {x0, h},  {x0, y1}, {0, y1}, {0, y0}, {x0, y0}});
}

Domain Domain::with_rect_hole(Vec2 lo, Vec2 hi) const {
  return with_hole(Ring{lo, {hi.x, lo.y}, hi, {lo.x, hi.y}});
}

Domain Domain::with_hole(Ring hole) const {
  auto holes = holes_;
  holes.push_back(std::move(hole));
  return Domain(outer_, std::move(holes));
}

bool Domain::contains(Vec2 p, double eps) const {
  if (!geom::contains_point(outer_, p, eps)) return false;
  for (const Ring& h : holes_) {
    // Interior of a hole is blocked; allow points on / just outside its
    // boundary by shrinking the test with -eps semantics: a point within eps
    // of the hole boundary is treated as feasible.
    if (geom::contains_point(h, p, 0.0) &&
        geom::dist_to_boundary(h, p) > eps) {
      return false;
    }
  }
  return true;
}

double Domain::dist_to_boundary(Vec2 p) const {
  double d = geom::dist_to_boundary(outer_, p);
  for (const Ring& h : holes_) d = std::min(d, geom::dist_to_boundary(h, p));
  return d;
}

Vec2 Domain::project_inside(Vec2 p, double margin) const {
  if (contains(p) ) {
    // Feasible already, but make sure it is not *inside* a hole-boundary
    // epsilon band headed nowhere; contains() guarantees enough.
    return p;
  }
  Vec2 q = p;
  if (!geom::contains_point(outer_, q, 0.0)) {
    const Vec2 b = geom::project_to_boundary(outer_, q);
    // Pull inside the outer ring along the inward direction.
    const Vec2 inward = (geom::centroid(outer_) - b).normalized();
    q = b + inward * margin;
    if (!geom::contains_point(outer_, q, 0.0)) q = b;  // concave fallback
  }
  for (const Ring& h : holes_) {
    if (geom::contains_point(h, q, 0.0) &&
        geom::dist_to_boundary(h, q) > geom::kEps) {
      const Vec2 b = geom::project_to_boundary(h, q);
      const Vec2 outward = (b - geom::centroid(h)).normalized();
      Vec2 cand = b + outward * margin;
      if (!contains(cand)) {
        // Hole flush against the outer boundary (e.g. a jammed rectangle
        // meeting an L-shape notch): the centroid-outward nudge can exit
        // the domain. Fall back to the nearest feasible point among nudged
        // samples of the hole boundary.
        double best = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < h.size(); ++i) {
          const Vec2 a = h[i];
          const Vec2 c = h[(i + 1) % h.size()];
          const Vec2 n = (c - a).normalized().perp();
          for (const double t : {0.0, 0.25, 0.5, 0.75}) {
            const Vec2 s = a + (c - a) * t;
            for (const Vec2& dir : {n, n * -1.0}) {
              const Vec2 trial = s + dir * margin;
              if (!contains(trial)) continue;
              const double d2 = geom::dist(q, trial);
              if (d2 < best) {
                best = d2;
                cand = trial;
              }
            }
          }
        }
      }
      q = cand;
    }
  }
  return q;
}

ClippedRegion Domain::clip_cell(const Ring& convex_cell) const {
  ClippedRegion out;
  if (convex_cell.size() < 3) return out;
  out.outer = geom::sutherland_hodgman(outer_, convex_cell);
  if (out.outer.empty()) return out;
  for (const Ring& h : holes_) {
    Ring part = geom::sutherland_hodgman(h, convex_cell);
    if (!part.empty()) out.hole_parts.push_back(std::move(part));
  }
  return out;
}

Vec2 Domain::sample_uniform(Rng& rng) const {
  if (outer_.empty()) throw std::runtime_error("sampling an empty domain");
  for (int attempt = 0; attempt < 100000; ++attempt) {
    Vec2 p{rng.uniform(bbox_.lo.x, bbox_.hi.x),
           rng.uniform(bbox_.lo.y, bbox_.hi.y)};
    if (contains(p)) return p;
  }
  throw std::runtime_error("rejection sampling failed; degenerate domain?");
}

}  // namespace laacad::wsn
