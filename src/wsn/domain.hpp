// The monitored area `A`: a simple polygon with optional polygonal holes
// (obstacles mobile nodes cannot move onto and that need no coverage).
// Reproduces the targeted-area model of Sec. III and the irregular regions
// of Fig. 8.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "geometry/polygon.hpp"

namespace laacad::wsn {

/// A convex cell clipped against the domain: the piece of the cell inside
/// the outer ring, plus the pieces of holes that overlap it (so callers can
/// subtract obstacle area).
struct ClippedRegion {
  geom::Ring outer;                    ///< cell ∩ outer ring (SH output)
  std::vector<geom::Ring> hole_parts;  ///< cell ∩ each hole

  bool empty() const { return outer.empty(); }
  /// Area of the region actually requiring coverage.
  double coverage_area() const;
};

class Domain {
 public:
  Domain() = default;
  /// `outer` is any simple ring (made CCW internally); holes must lie inside
  /// the outer ring and be pairwise disjoint.
  explicit Domain(geom::Ring outer, std::vector<geom::Ring> holes = {});

  // -- Factories for the shapes used across the evaluation --------------

  /// Axis-aligned rectangle [0,w] x [0,h].
  static Domain rectangle(double w, double h);
  /// Unit-km square used throughout the paper's evaluation.
  static Domain square_km();
  /// L-shaped region: w x h with the top-right quadrant removed.
  static Domain lshape(double w, double h);
  /// Plus/cross-shaped region inscribed in w x h.
  static Domain cross(double w, double h, double arm_fraction = 1.0 / 3.0);
  /// Copy of this domain with extra rectangular holes (obstacles).
  Domain with_rect_hole(geom::Vec2 lo, geom::Vec2 hi) const;
  Domain with_hole(geom::Ring hole) const;

  // -- Queries -----------------------------------------------------------

  const geom::Ring& outer() const { return outer_; }
  const std::vector<geom::Ring>& holes() const { return holes_; }
  geom::BBox bbox() const { return bbox_; }
  /// Area of outer ring minus holes.
  double area() const { return area_; }

  /// Inside the outer ring and outside every hole (boundary counts inside
  /// the outer ring; hole boundary counts as blocked).
  bool contains(geom::Vec2 p, double eps = geom::kEps) const;

  /// Distance from p to the nearest piece of domain boundary (outer ring or
  /// any hole ring).
  double dist_to_boundary(geom::Vec2 p) const;

  /// Nearest feasible point for a mobile node: points outside the outer ring
  /// are pulled in, points inside a hole are pushed out, both with a small
  /// safety margin. Feasible inputs are returned unchanged.
  geom::Vec2 project_inside(geom::Vec2 p, double margin = 1e-6) const;

  /// Clip a convex cell against the domain.
  ClippedRegion clip_cell(const geom::Ring& convex_cell) const;

  /// Uniform sample over the coverage area (rejection in the bbox).
  geom::Vec2 sample_uniform(Rng& rng) const;

 private:
  geom::Ring outer_;
  std::vector<geom::Ring> holes_;
  geom::BBox bbox_;
  double area_ = 0.0;
};

}  // namespace laacad::wsn
