#include "wsn/energy.hpp"

#include <algorithm>
#include <cmath>

#include "common/stats.hpp"

namespace laacad::wsn {

double sensing_energy(double range) { return M_PI * range * range; }

std::vector<double> sensing_loads(const Network& net) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(net.size()));
  for (const Node& n : net.nodes()) out.push_back(sensing_energy(n.sensing_range));
  return out;
}

LoadReport load_report(const Network& net) {
  LoadReport rep;
  const auto loads = sensing_loads(net);
  if (loads.empty()) return rep;
  const Summary s = summarize(loads);
  rep.max_load = s.max();
  rep.min_load = s.min();
  rep.total_load = s.sum();
  rep.fairness = jain_fairness(loads);
  return rep;
}

}  // namespace laacad::wsn
