// Sensing-energy model of Sec. V-B: E(r) = pi * r^2, an increasing function
// of the sensing range, identical across nodes. Load metrics quantify the
// "load balancing" in LAACAD's name.
#pragma once

#include <limits>
#include <vector>

#include "wsn/network.hpp"

namespace laacad::wsn {

/// E(r) = pi r^2.
double sensing_energy(double range);

/// Per-node loads E(r_i) for the current sensing ranges.
std::vector<double> sensing_loads(const Network& net);

struct LoadReport {
  double max_load = 0.0;
  double min_load = 0.0;
  double total_load = 0.0;
  /// Jain's index over loads. NaN (JSON null) for a network with no nodes,
  /// matching jain_fairness's empty-input convention — never a fabricated
  /// "perfectly fair" 1.0 for a report over nothing.
  double fairness = std::numeric_limits<double>::quiet_NaN();
};

LoadReport load_report(const Network& net);

}  // namespace laacad::wsn
