#include "wsn/localization.hpp"

#include <cmath>

namespace laacad::wsn {

std::vector<geom::Vec2> local_frame(const Network& net, NodeId i,
                                    const std::vector<int>& ids,
                                    const LocalFrameConfig& cfg, Rng& rng) {
  const geom::Vec2 ui = net.position(i);
  std::vector<geom::Vec2> out;
  out.reserve(ids.size());
  for (int j : ids) {
    const geom::Vec2 rel = net.position(j) - ui;
    double r = rel.norm();
    double theta = rel.angle();
    if (cfg.range_noise > 0.0) r *= 1.0 + rng.gaussian(0.0, cfg.range_noise);
    if (cfg.bearing_noise > 0.0) theta += rng.gaussian(0.0, cfg.bearing_noise);
    out.push_back({r * std::cos(theta), r * std::sin(theta)});
  }
  return out;
}

}  // namespace laacad::wsn
