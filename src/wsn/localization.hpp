// Local coordinate system simulation.
//
// LAACAD does not need global positions: each node builds a local frame from
// ranging to its neighbours (the paper cites the MDS embedding of Shang &
// Ruml [28]). We model the *product* of that service — neighbour positions
// expressed in the node's own frame — with an optional multiplicative
// ranging-noise knob, so tests can quantify LAACAD's robustness to imperfect
// localization without re-implementing MDS itself (documented substitution,
// see DESIGN.md).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "wsn/network.hpp"

namespace laacad::wsn {

struct LocalFrameConfig {
  /// Std-dev of multiplicative range error (0 = perfect ranging).
  double range_noise = 0.0;
  /// Std-dev of bearing error in radians (0 = perfect bearings).
  double bearing_noise = 0.0;
};

/// Positions of `ids` relative to node i's own location (node i maps to the
/// origin of its local frame), with simulated ranging/bearing noise.
std::vector<geom::Vec2> local_frame(const Network& net, NodeId i,
                                    const std::vector<int>& ids,
                                    const LocalFrameConfig& cfg, Rng& rng);

}  // namespace laacad::wsn
