#include "wsn/network.hpp"

#include <algorithm>

namespace laacad::wsn {

using geom::Vec2;

Network::Network(const Domain* domain, std::vector<Vec2> positions,
                 double gamma)
    : domain_(domain), gamma_(gamma) {
  nodes_.reserve(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    Node n;
    n.id = static_cast<NodeId>(i);
    n.pos = domain_->project_inside(positions[i]);
    nodes_.push_back(n);
  }
}

std::vector<Vec2> Network::positions() const {
  std::vector<Vec2> out;
  out.reserve(nodes_.size());
  for (const Node& n : nodes_) out.push_back(n.pos);
  return out;
}

void Network::set_position(NodeId i, Vec2 p) {
  nodes_[static_cast<size_t>(i)].pos = domain_->project_inside(p);
  grid_dirty_.store(true, std::memory_order_release);
}

void Network::set_sensing_range(NodeId i, double r) {
  nodes_[static_cast<size_t>(i)].sensing_range = r;
}

void Network::set_boundary(NodeId i, bool boundary) {
  nodes_[static_cast<size_t>(i)].boundary = boundary;
}

NodeId Network::add_node(Vec2 p) {
  Node n;
  n.id = static_cast<NodeId>(nodes_.size());
  n.pos = domain_->project_inside(p);
  nodes_.push_back(n);
  grid_dirty_.store(true, std::memory_order_release);
  return n.id;
}

void Network::rebind_domain(const Domain* domain) {
  domain_ = domain;
  for (Node& n : nodes_) n.pos = domain_->project_inside(n.pos);
  grid_dirty_.store(true, std::memory_order_release);
}

void Network::remove_node(NodeId i) {
  nodes_.erase(nodes_.begin() + i);
  for (std::size_t j = 0; j < nodes_.size(); ++j)
    nodes_[j].id = static_cast<NodeId>(j);
  grid_dirty_.store(true, std::memory_order_release);
}

const SpatialGrid& Network::grid() const {
  // Double-checked rebuild: concurrent readers race only on the atomic flag;
  // the first one in re-bins in place (buckets reused round over round) and
  // publishes with a release store the others acquire.
  if (grid_dirty_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lk(grid_mutex_);
    if (grid_dirty_.load(std::memory_order_relaxed)) {
      // Cell size ~ gamma works for both comm queries and k-nearest.
      grid_.rebuild(positions(), std::max(gamma_, 1.0));
      grid_dirty_.store(false, std::memory_order_release);
    }
  }
  return grid_;
}

void Network::warm_grid() const { (void)grid(); }

std::vector<int> Network::nodes_within(Vec2 q, double radius) const {
  return grid().within(q, radius);
}

std::vector<int> Network::k_nearest(Vec2 q, int k, int exclude) const {
  return grid().k_nearest(q, k, exclude);
}

std::vector<int> Network::one_hop_neighbors(NodeId i) const {
  auto ids = grid().within(position(i), gamma_);
  std::erase(ids, static_cast<int>(i));
  return ids;
}

}  // namespace laacad::wsn
