#include "wsn/network.hpp"

#include <algorithm>

namespace laacad::wsn {

using geom::Vec2;

Network::Network(const Domain* domain, std::vector<Vec2> positions,
                 double gamma)
    : domain_(domain), gamma_(gamma) {
  const std::size_t n = positions.size();
  nodes_.reserve(n);
  xs_.reserve(n);
  ys_.reserve(n);
  sense_.reserve(n);
  boundary_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Node nd;
    nd.id = static_cast<NodeId>(i);
    nd.pos = domain_->project_inside(positions[i]);
    nodes_.push_back(nd);
    xs_.push_back(nd.pos.x);
    ys_.push_back(nd.pos.y);
    sense_.push_back(nd.sensing_range);
    boundary_.push_back(0);
  }
}

std::vector<Vec2> Network::positions() const {
  std::vector<Vec2> out;
  out.reserve(nodes_.size());
  for (std::size_t i = 0; i < xs_.size(); ++i)
    out.push_back(Vec2{xs_[i], ys_[i]});
  return out;
}

void Network::set_position(NodeId i, Vec2 p) {
  const Vec2 q = domain_->project_inside(p);
  nodes_[static_cast<size_t>(i)].pos = q;
  xs_[static_cast<size_t>(i)] = q.x;
  ys_[static_cast<size_t>(i)] = q.y;
  grid_dirty_.store(true, std::memory_order_release);
}

void Network::set_sensing_range(NodeId i, double r) {
  nodes_[static_cast<size_t>(i)].sensing_range = r;
  sense_[static_cast<size_t>(i)] = r;
}

void Network::set_boundary(NodeId i, bool boundary) {
  nodes_[static_cast<size_t>(i)].boundary = boundary;
  boundary_[static_cast<size_t>(i)] = boundary ? 1 : 0;
}

NodeId Network::add_node(Vec2 p) {
  Node n;
  n.id = static_cast<NodeId>(nodes_.size());
  n.pos = domain_->project_inside(p);
  nodes_.push_back(n);
  xs_.push_back(n.pos.x);
  ys_.push_back(n.pos.y);
  sense_.push_back(n.sensing_range);
  boundary_.push_back(0);
  grid_dirty_.store(true, std::memory_order_release);
  return n.id;
}

void Network::rebind_domain(const Domain* domain) {
  domain_ = domain;
  for (std::size_t j = 0; j < nodes_.size(); ++j) {
    Node& n = nodes_[j];
    n.pos = domain_->project_inside(n.pos);
    xs_[j] = n.pos.x;
    ys_[j] = n.pos.y;
  }
  grid_dirty_.store(true, std::memory_order_release);
}

void Network::remove_node(NodeId i) {
  nodes_.erase(nodes_.begin() + i);
  xs_.erase(xs_.begin() + i);
  ys_.erase(ys_.begin() + i);
  sense_.erase(sense_.begin() + i);
  boundary_.erase(boundary_.begin() + i);
  for (std::size_t j = 0; j < nodes_.size(); ++j)
    nodes_[j].id = static_cast<NodeId>(j);
  grid_dirty_.store(true, std::memory_order_release);
}

const SpatialGrid& Network::grid(common::ThreadPool* pool) const {
  // Double-checked rebuild: concurrent readers race only on the atomic flag;
  // the first one in re-bins in place (slot arrays reused round over round)
  // and publishes with a release store the others acquire.
  if (grid_dirty_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lk(grid_mutex_);
    if (grid_dirty_.load(std::memory_order_relaxed)) {
      // Cell size ~ gamma works for both comm queries and k-nearest. The
      // rebuild reads the SoA arrays directly — no positions() staging copy.
      grid_.rebuild(xs_.data(), ys_.data(), xs_.size(), std::max(gamma_, 1.0),
                    pool);
      grid_dirty_.store(false, std::memory_order_release);
    }
  }
  return grid_;
}

void Network::warm_grid(common::ThreadPool* pool) const { (void)grid(pool); }

std::vector<int> Network::nodes_within(Vec2 q, double radius) const {
  return grid().within(q, radius);
}

std::vector<int> Network::k_nearest(Vec2 q, int k, int exclude) const {
  return grid().k_nearest(q, k, exclude);
}

std::vector<int> Network::one_hop_neighbors(NodeId i) const {
  auto ids = grid().within(position(i), gamma_);
  std::erase(ids, static_cast<int>(i));
  return ids;
}

}  // namespace laacad::wsn
