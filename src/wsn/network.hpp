// The WSN itself: a set of mobile sensor nodes in a domain with a common
// transmission range gamma (Sec. III-A).
#pragma once

#include <memory>
#include <vector>

#include "wsn/domain.hpp"
#include "wsn/node.hpp"
#include "wsn/spatial_grid.hpp"

namespace laacad::wsn {

class Network {
 public:
  /// Nodes are placed at `positions`; gamma is the (identical) transmission
  /// range. The domain is shared, not owned.
  Network(const Domain* domain, std::vector<geom::Vec2> positions,
          double gamma);

  int size() const { return static_cast<int>(nodes_.size()); }
  const Domain& domain() const { return *domain_; }
  double gamma() const { return gamma_; }

  const Node& node(NodeId i) const { return nodes_[static_cast<size_t>(i)]; }
  Node& node(NodeId i) { return nodes_[static_cast<size_t>(i)]; }
  const std::vector<Node>& nodes() const { return nodes_; }

  geom::Vec2 position(NodeId i) const {
    return nodes_[static_cast<size_t>(i)].pos;
  }
  std::vector<geom::Vec2> positions() const;

  /// Move node i (projected into the feasible domain); invalidates the grid.
  void set_position(NodeId i, geom::Vec2 p);
  void set_sensing_range(NodeId i, double r);

  /// Add a node at p; returns its id. Remove drops the highest-index swap —
  /// removal invalidates ids, so callers (the min-node planner) use it only
  /// between full algorithm runs.
  NodeId add_node(geom::Vec2 p);
  void remove_node(NodeId i);

  /// Spatial queries over *current* positions (grid rebuilt lazily after
  /// moves).
  std::vector<int> nodes_within(geom::Vec2 q, double radius) const;
  std::vector<int> k_nearest(geom::Vec2 q, int k, int exclude = -1) const;
  /// One-hop neighbours N(n_i): nodes within gamma, excluding i itself.
  std::vector<int> one_hop_neighbors(NodeId i) const;

 private:
  const SpatialGrid& grid() const;

  const Domain* domain_;
  double gamma_;
  std::vector<Node> nodes_;
  mutable std::unique_ptr<SpatialGrid> grid_;
  mutable bool grid_dirty_ = true;
};

}  // namespace laacad::wsn
