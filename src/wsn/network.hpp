// The WSN itself: a set of mobile sensor nodes in a domain with a common
// transmission range gamma (Sec. III-A).
//
// Storage is dual AoS/SoA: the `Node` records (id, pos, sensing range,
// boundary flag) stay the inspection-friendly API, while the hot per-round
// loops — grid rebuilds, candidate dist² scans, range reductions — read the
// parallel SoA arrays xs()/ys()/sensing_ranges()/boundary_mask(), which are
// contiguous and vectorize. Every mutation goes through the setters below,
// which write both representations, so the two can never diverge (the
// coherence is property-tested; there is deliberately no mutable node
// accessor).
//
// Threading contract: the spatial index behind the const query methods
// (nodes_within / k_nearest / one_hop_neighbors) is built lazily after
// moves, guarded by a mutex with an atomic dirty flag, so any number of
// threads may issue const queries concurrently. Mutations (set_position,
// add_node, remove_node) must not overlap queries — the LAACAD round
// structure guarantees this (providers snapshot during the serial
// begin_round, the engine moves nodes in the serial reduction).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "wsn/domain.hpp"
#include "wsn/node.hpp"
#include "wsn/spatial_grid.hpp"

namespace laacad::wsn {

class Network {
 public:
  /// Nodes are placed at `positions`; gamma is the (identical) transmission
  /// range. The domain is shared, not owned.
  Network(const Domain* domain, std::vector<geom::Vec2> positions,
          double gamma);

  int size() const { return static_cast<int>(nodes_.size()); }
  const Domain& domain() const { return *domain_; }
  double gamma() const { return gamma_; }

  const Node& node(NodeId i) const { return nodes_[static_cast<size_t>(i)]; }
  const std::vector<Node>& nodes() const { return nodes_; }

  geom::Vec2 position(NodeId i) const {
    return nodes_[static_cast<size_t>(i)].pos;
  }
  std::vector<geom::Vec2> positions() const;

  /// SoA hot state, parallel to nodes(): coordinate, sensing-range, and
  /// boundary-flag arrays kept bitwise in sync with the Node records by the
  /// setters. These are what the per-round hot loops scan — contiguous
  /// doubles the compiler vectorizes, where iterating Node records cannot.
  const std::vector<double>& xs() const { return xs_; }
  const std::vector<double>& ys() const { return ys_; }
  const std::vector<double>& sensing_ranges() const { return sense_; }
  const std::vector<std::uint8_t>& boundary_mask() const { return boundary_; }

  /// Move node i (projected into the feasible domain); invalidates the grid.
  /// All mutation goes through these setters — there is deliberately no
  /// mutable node accessor, so a position can never change behind the
  /// spatial index's (or the SoA mirror's) back.
  void set_position(NodeId i, geom::Vec2 p);
  void set_sensing_range(NodeId i, double r);
  void set_boundary(NodeId i, bool boundary);

  /// Add a node at p; returns its id. Remove erases in place and shifts
  /// every higher id down by one (ids stay dense 0..n-1) — removal
  /// invalidates ids, so callers (the min-node planner, the scenario
  /// engine) use it only between full algorithm runs / redeployment phases.
  NodeId add_node(geom::Vec2 p);
  void remove_node(NodeId i);

  /// Swap the domain (boundary resize, new obstacle) and reproject every
  /// node into it. The new domain is shared, not owned — the caller keeps it
  /// alive for the network's lifetime. Invalidates the grid.
  void rebind_domain(const Domain* domain);

  /// Spatial queries over *current* positions (grid re-binned lazily after
  /// moves). Safe to call from multiple threads concurrently; see the
  /// threading contract above.
  std::vector<int> nodes_within(geom::Vec2 q, double radius) const;
  std::vector<int> k_nearest(geom::Vec2 q, int k, int exclude = -1) const;
  /// One-hop neighbours N(n_i): nodes within gamma, excluding i itself.
  std::vector<int> one_hop_neighbors(NodeId i) const;

  /// Force the lazy grid up to date now (e.g. before handing the network to
  /// concurrent readers, to keep the first query from paying the rebuild).
  /// A non-null `pool` fans the re-bin across its threads (bit-identical
  /// result; see SpatialGrid::rebuild) — the engine passes its round pool so
  /// index maintenance is not a serial O(n) wall at scale. The pool is used
  /// only for this call, never retained.
  void warm_grid(common::ThreadPool* pool = nullptr) const;

 private:
  const SpatialGrid& grid(common::ThreadPool* pool = nullptr) const;

  const Domain* domain_;
  double gamma_;
  std::vector<Node> nodes_;
  // SoA mirrors of the hot Node fields, maintained by every mutator.
  std::vector<double> xs_, ys_, sense_;
  std::vector<std::uint8_t> boundary_;
  mutable SpatialGrid grid_;
  mutable std::atomic<bool> grid_dirty_{true};
  mutable std::mutex grid_mutex_;
};

}  // namespace laacad::wsn
