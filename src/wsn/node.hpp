// Sensor node model (Sec. III-A of the paper): omnidirectional disk sensing
// with a tunable range, a common transmission range, and motion capability.
#pragma once

#include <cstdint>

#include "geometry/vec2.hpp"

namespace laacad::wsn {

using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

struct Node {
  NodeId id = kInvalidNode;
  geom::Vec2 pos;          ///< Current location u_i (metres).
  double sensing_range = 0.0;  ///< r_i, tuned at algorithm termination.
  bool boundary = false;   ///< Flag set by the boundary-detection service.
};

}  // namespace laacad::wsn
