#include "wsn/spatial_grid.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace laacad::wsn {

using geom::Vec2;

SpatialGrid::SpatialGrid(const std::vector<Vec2>& points, double cell_size) {
  rebuild(points, cell_size);
}

void SpatialGrid::rebuild(const std::vector<Vec2>& points, double cell_size) {
  points_.assign(points.begin(), points.end());
  cell_ = std::max(cell_size, 1e-6);
  geom::BBox bb = geom::bounding_box(points_);
  origin_ = bb.lo;
  const int nx =
      std::max(1, static_cast<int>(std::ceil((bb.width() + 1e-9) / cell_)));
  const int ny =
      std::max(1, static_cast<int>(std::ceil((bb.height() + 1e-9) / cell_)));
  if (nx == nx_ && ny == ny_ && !buckets_.empty()) {
    for (auto& bucket : buckets_) bucket.clear();  // keep capacity
  } else {
    nx_ = nx;
    ny_ = ny;
    buckets_.assign(static_cast<std::size_t>(nx_) * ny_, {});
  }
  for (int i = 0; i < static_cast<int>(points_.size()); ++i) {
    auto [cx, cy] = cell_of(points_[i]);
    buckets_[cell_index(cx, cy)].push_back(i);
  }
}

std::pair<int, int> SpatialGrid::cell_of(Vec2 p) const {
  int cx = static_cast<int>(std::floor((p.x - origin_.x) / cell_));
  int cy = static_cast<int>(std::floor((p.y - origin_.y) / cell_));
  cx = std::clamp(cx, 0, nx_ - 1);
  cy = std::clamp(cy, 0, ny_ - 1);
  return {cx, cy};
}

int SpatialGrid::cell_index(int cx, int cy) const { return cy * nx_ + cx; }

std::vector<int> SpatialGrid::within(Vec2 q, double radius) const {
  std::vector<int> out;
  if (points_.empty() || radius < 0.0) return out;
  const int r_cells = static_cast<int>(std::ceil(radius / cell_)) + 1;
  auto [cx, cy] = cell_of(q);
  const double r2 = radius * radius;
  for (int dy = -r_cells; dy <= r_cells; ++dy) {
    const int y = cy + dy;
    if (y < 0 || y >= ny_) continue;
    for (int dx = -r_cells; dx <= r_cells; ++dx) {
      const int x = cx + dx;
      if (x < 0 || x >= nx_) continue;
      for (int idx : buckets_[cell_index(x, y)]) {
        if (geom::dist2(points_[idx], q) <= r2) out.push_back(idx);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int> SpatialGrid::k_nearest(Vec2 q, int k, int exclude) const {
  std::vector<int> out;
  if (points_.empty() || k <= 0) return out;
  // Expanding-radius search; falls back to all points when the grid is
  // sparse. Simple and adequate for simulation sizes (N <= a few thousand).
  double radius = cell_;
  const double max_radius =
      std::hypot(static_cast<double>(nx_), static_cast<double>(ny_)) * cell_ +
      cell_;
  std::vector<int> cand;
  while (true) {
    cand = within(q, radius);
    if (exclude >= 0)
      std::erase(cand, exclude);
    if (static_cast<int>(cand.size()) >= k || radius > max_radius) break;
    radius *= 2.0;
  }
  std::sort(cand.begin(), cand.end(), [&](int a, int b) {
    return geom::dist2(points_[a], q) < geom::dist2(points_[b], q);
  });
  // The radius-limited candidate set is correct only up to `radius`; the
  // k-th candidate must lie strictly inside, otherwise expand once more.
  while (static_cast<int>(cand.size()) >= k &&
         geom::dist(points_[cand[static_cast<std::size_t>(k) - 1]], q) >
             radius &&
         radius <= max_radius) {
    radius *= 2.0;
    cand = within(q, radius);
    if (exclude >= 0) std::erase(cand, exclude);
    std::sort(cand.begin(), cand.end(), [&](int a, int b) {
      return geom::dist2(points_[a], q) < geom::dist2(points_[b], q);
    });
  }
  if (static_cast<int>(cand.size()) > k) cand.resize(static_cast<std::size_t>(k));
  return cand;
}

}  // namespace laacad::wsn
