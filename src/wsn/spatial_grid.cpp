#include "wsn/spatial_grid.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/perf_counters.hpp"
#include "common/thread_pool.hpp"

namespace laacad::wsn {

using geom::Vec2;

SpatialGrid::SpatialGrid(const std::vector<Vec2>& points, double cell_size) {
  rebuild(points, cell_size);
}

void SpatialGrid::rebuild(const std::vector<Vec2>& points, double cell_size,
                          common::ThreadPool* pool) {
  // Stage the AoS snapshot into the slot arrays unsorted, then re-bin over
  // them in place. px_/py_ double as the staging buffer: the cell-id pass
  // below reads coordinates by point index before any slot is written.
  const std::size_t n = points.size();
  std::vector<double> xs(n), ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = points[i].x;
    ys[i] = points[i].y;
  }
  rebuild(xs.data(), ys.data(), n, cell_size, pool);
}

void SpatialGrid::rebuild(const double* xs, const double* ys, std::size_t n,
                          double cell_size, common::ThreadPool* pool) {
  n_ = n;
  cell_ = std::max(cell_size, 1e-6);
  if (n == 0) {
    origin_ = Vec2{0.0, 0.0};
    nx_ = ny_ = 1;
    px_.clear();
    py_.clear();
    order_.clear();
    cell_start_.assign(2, 0);
    return;
  }

  // Bounding box: min/max are order-independent, so the chunked reduction
  // below matches the serial scan bit-for-bit regardless of thread count.
  const int nn = static_cast<int>(n);
  double lo_x = xs[0], lo_y = ys[0], hi_x = xs[0], hi_y = ys[0];
  for (int i = 1; i < nn; ++i) {
    lo_x = std::min(lo_x, xs[i]);
    lo_y = std::min(lo_y, ys[i]);
    hi_x = std::max(hi_x, xs[i]);
    hi_y = std::max(hi_y, ys[i]);
  }
  origin_ = Vec2{lo_x, lo_y};
  nx_ = std::max(1, static_cast<int>(std::ceil((hi_x - lo_x + 1e-9) / cell_)));
  ny_ = std::max(1, static_cast<int>(std::ceil((hi_y - lo_y + 1e-9) / cell_)));
  const std::size_t cells = static_cast<std::size_t>(nx_) * ny_;

  px_.resize(n);
  py_.resize(n);
  order_.resize(n);
  cell_id_.resize(n);
  cell_start_.assign(cells + 1, 0);

  const int threads =
      pool != nullptr && nn >= 4096 ? std::min(pool->size(), nn) : 1;
  if (threads <= 1) {
    // Serial count-then-scatter: cell histogram, exclusive scan, then one
    // ascending-index pass that drops every point into its cell's next free
    // slot — cell-major order, ascending index within a cell.
    for (int i = 0; i < nn; ++i) {
      const auto [cx, cy] = cell_of(xs[i], ys[i]);
      const int c = cell_index(cx, cy);
      cell_id_[static_cast<std::size_t>(i)] = c;
      ++cell_start_[static_cast<std::size_t>(c) + 1];
    }
    for (std::size_t c = 0; c < cells; ++c)
      cell_start_[c + 1] += cell_start_[c];
    std::vector<int> cursor(cell_start_.begin(), cell_start_.end() - 1);
    for (int i = 0; i < nn; ++i) {
      const int c = cell_id_[static_cast<std::size_t>(i)];
      const int slot = cursor[static_cast<std::size_t>(c)]++;
      order_[static_cast<std::size_t>(slot)] = i;
      px_[static_cast<std::size_t>(slot)] = xs[i];
      py_[static_cast<std::size_t>(slot)] = ys[i];
    }
    return;
  }

  // Parallel count-then-scatter. Chunk t covers the same contiguous index
  // range ThreadPool::run assigns chunk t, so per-chunk histograms line up
  // with the scatter pass. Final slot order: cells ascending, and within a
  // cell chunks ascending then indices ascending — i.e. ascending point
  // index, identical to the serial pass for every thread count.
  const auto chunk_bounds = [&](int t) {
    const long long b = static_cast<long long>(t) * nn / threads;
    const long long e = static_cast<long long>(t + 1) * nn / threads;
    return std::pair<int, int>{static_cast<int>(b), static_cast<int>(e)};
  };
  std::vector<std::vector<int>> counts(
      static_cast<std::size_t>(threads));
  pool->run(threads, [&](int t) {
    auto& mine = counts[static_cast<std::size_t>(t)];
    mine.assign(cells, 0);
    const auto [begin, end] = chunk_bounds(t);
    for (int i = begin; i < end; ++i) {
      const auto [cx, cy] = cell_of(xs[i], ys[i]);
      const int c = cell_index(cx, cy);
      cell_id_[static_cast<std::size_t>(i)] = c;
      ++mine[static_cast<std::size_t>(c)];
    }
  });
  // Exclusive scan over (cell, chunk): counts[t][c] becomes chunk t's first
  // slot in cell c, and cell_start_ the per-cell offsets.
  int running = 0;
  for (std::size_t c = 0; c < cells; ++c) {
    cell_start_[c] = running;
    for (int t = 0; t < threads; ++t) {
      const int k = counts[static_cast<std::size_t>(t)][c];
      counts[static_cast<std::size_t>(t)][c] = running;
      running += k;
    }
  }
  cell_start_[cells] = running;
  pool->run(threads, [&](int t) {
    auto& cursor = counts[static_cast<std::size_t>(t)];
    const auto [begin, end] = chunk_bounds(t);
    for (int i = begin; i < end; ++i) {
      const int c = cell_id_[static_cast<std::size_t>(i)];
      const int slot = cursor[static_cast<std::size_t>(c)]++;
      order_[static_cast<std::size_t>(slot)] = i;
      px_[static_cast<std::size_t>(slot)] = xs[i];
      py_[static_cast<std::size_t>(slot)] = ys[i];
    }
  });
}

std::pair<int, int> SpatialGrid::cell_of(double x, double y) const {
  int cx = static_cast<int>(std::floor((x - origin_.x) / cell_));
  int cy = static_cast<int>(std::floor((y - origin_.y) / cell_));
  cx = std::clamp(cx, 0, nx_ - 1);
  cy = std::clamp(cy, 0, ny_ - 1);
  return {cx, cy};
}

int SpatialGrid::cell_index(int cx, int cy) const { return cy * nx_ + cx; }

void SpatialGrid::gather(Vec2 q, double radius, int exclude,
                         std::vector<std::pair<double, int>>& out) const {
  out.clear();
  if (n_ == 0 || radius < 0.0) return;
  const int r_cells = static_cast<int>(std::ceil(radius / cell_)) + 1;
  auto [cx, cy] = cell_of(q.x, q.y);
  const double r2 = radius * radius;
  std::uint64_t checked = 0;
  // Clamp the scan window up front: for far-outside queries r_cells can be
  // orders of magnitude larger than the grid itself.
  const int y_lo = std::max(0, cy - r_cells), y_hi = std::min(ny_ - 1, cy + r_cells);
  const int x_lo = std::max(0, cx - r_cells), x_hi = std::min(nx_ - 1, cx + r_cells);
  for (int y = y_lo; y <= y_hi; ++y) {
    // One cell row is a contiguous slot range: batch the dist² evaluations
    // over the SoA coordinate slices instead of visiting cell by cell.
    const int row = y * nx_;
    const int begin = cell_start_[static_cast<std::size_t>(row + x_lo)];
    const int end = cell_start_[static_cast<std::size_t>(row + x_hi) + 1];
    checked += static_cast<std::uint64_t>(end - begin);
    for (int j = begin; j < end; ++j) {
      const int idx = order_[static_cast<std::size_t>(j)];
      if (idx == exclude) {
        --checked;  // counter means "candidates distance-checked"
        continue;
      }
      const double d2 = geom::dist2(
          Vec2{px_[static_cast<std::size_t>(j)],
               py_[static_cast<std::size_t>(j)]},
          q);
      if (d2 <= r2) out.emplace_back(d2, idx);
    }
  }
  perf::counters().dist2_evals += checked;
}

std::vector<int> SpatialGrid::within(Vec2 q, double radius) const {
  // Index-only twin of gather(): the coverage checker and comm model call
  // this per sample point / per node and never use the distances, so don't
  // stage (dist2, index) pairs they would immediately discard.
  std::vector<int> out;
  if (n_ == 0 || radius < 0.0) return out;
  auto& pc = perf::counters();
  ++pc.grid_queries;
  const int r_cells = static_cast<int>(std::ceil(radius / cell_)) + 1;
  auto [cx, cy] = cell_of(q.x, q.y);
  const double r2 = radius * radius;
  const int y_lo = std::max(0, cy - r_cells), y_hi = std::min(ny_ - 1, cy + r_cells);
  const int x_lo = std::max(0, cx - r_cells), x_hi = std::min(nx_ - 1, cx + r_cells);
  std::uint64_t checked = 0;
  for (int y = y_lo; y <= y_hi; ++y) {
    const int row = y * nx_;
    const int begin = cell_start_[static_cast<std::size_t>(row + x_lo)];
    const int end = cell_start_[static_cast<std::size_t>(row + x_hi) + 1];
    checked += static_cast<std::uint64_t>(end - begin);
    for (int j = begin; j < end; ++j) {
      const double d2 = geom::dist2(
          Vec2{px_[static_cast<std::size_t>(j)],
               py_[static_cast<std::size_t>(j)]},
          q);
      if (d2 <= r2) out.push_back(order_[static_cast<std::size_t>(j)]);
    }
  }
  pc.dist2_evals += checked;
  std::sort(out.begin(), out.end());
  return out;
}

void SpatialGrid::collect_within(Vec2 q, double radius,
                                 std::vector<std::pair<double, int>>& out) const {
  ++perf::counters().grid_queries;
  gather(q, radius, /*exclude=*/-1, out);
  // Pairs sort lexicographically: ascending dist2, ties by ascending index.
  std::sort(out.begin(), out.end());
}

std::vector<int> SpatialGrid::k_nearest(Vec2 q, int k, int exclude) const {
  std::vector<int> out;
  if (n_ == 0 || k <= 0) return out;
  ++perf::counters().grid_queries;
  // Expanding-radius search. `cover` provably reaches every point from q
  // wherever q lies — also outside the points' bounding box, where the old
  // grid-diagonal cap could stop the expansion while points were still
  // beyond the last gathered radius.
  const Vec2 hi{origin_.x + nx_ * cell_, origin_.y + ny_ * cell_};
  const double span_x = std::max(std::abs(q.x - origin_.x), std::abs(hi.x - q.x));
  const double span_y = std::max(std::abs(q.y - origin_.y), std::abs(hi.y - q.y));
  const double cover = std::hypot(span_x, span_y) + cell_;
  double radius = cell_;
  std::vector<std::pair<double, int>> cand;
  while (true) {
    gather(q, radius, exclude, cand);
    if (static_cast<int>(cand.size()) >= k || radius >= cover) break;
    radius = std::min(radius * 2.0, cover);
  }
  // Every gathered candidate lies within `radius` and every missing point
  // lies beyond it, so once k candidates exist the k nearest are among
  // them — no re-verification pass. One sort per query, by (dist2, index):
  // the same canonical order (and tie-break) as vor::k_nearest_brute.
  std::sort(cand.begin(), cand.end());
  if (static_cast<int>(cand.size()) > k) cand.resize(static_cast<std::size_t>(k));
  out.reserve(cand.size());
  for (const auto& [d2, idx] : cand) out.push_back(idx);
  return out;
}

}  // namespace laacad::wsn
