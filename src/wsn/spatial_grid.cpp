#include "wsn/spatial_grid.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/perf_counters.hpp"

namespace laacad::wsn {

using geom::Vec2;

SpatialGrid::SpatialGrid(const std::vector<Vec2>& points, double cell_size) {
  rebuild(points, cell_size);
}

void SpatialGrid::rebuild(const std::vector<Vec2>& points, double cell_size) {
  points_.assign(points.begin(), points.end());
  cell_ = std::max(cell_size, 1e-6);
  geom::BBox bb = geom::bounding_box(points_);
  origin_ = bb.lo;
  const int nx =
      std::max(1, static_cast<int>(std::ceil((bb.width() + 1e-9) / cell_)));
  const int ny =
      std::max(1, static_cast<int>(std::ceil((bb.height() + 1e-9) / cell_)));
  if (nx == nx_ && ny == ny_ && !buckets_.empty()) {
    for (auto& bucket : buckets_) bucket.clear();  // keep capacity
  } else {
    nx_ = nx;
    ny_ = ny;
    buckets_.assign(static_cast<std::size_t>(nx_) * ny_, {});
  }
  for (int i = 0; i < static_cast<int>(points_.size()); ++i) {
    auto [cx, cy] = cell_of(points_[i]);
    buckets_[cell_index(cx, cy)].push_back(i);
  }
}

std::pair<int, int> SpatialGrid::cell_of(Vec2 p) const {
  int cx = static_cast<int>(std::floor((p.x - origin_.x) / cell_));
  int cy = static_cast<int>(std::floor((p.y - origin_.y) / cell_));
  cx = std::clamp(cx, 0, nx_ - 1);
  cy = std::clamp(cy, 0, ny_ - 1);
  return {cx, cy};
}

int SpatialGrid::cell_index(int cx, int cy) const { return cy * nx_ + cx; }

void SpatialGrid::gather(Vec2 q, double radius, int exclude,
                         std::vector<std::pair<double, int>>& out) const {
  out.clear();
  if (points_.empty() || radius < 0.0) return;
  const int r_cells = static_cast<int>(std::ceil(radius / cell_)) + 1;
  auto [cx, cy] = cell_of(q);
  const double r2 = radius * radius;
  std::uint64_t checked = 0;
  // Clamp the scan window up front: for far-outside queries r_cells can be
  // orders of magnitude larger than the grid itself.
  const int y_lo = std::max(0, cy - r_cells), y_hi = std::min(ny_ - 1, cy + r_cells);
  const int x_lo = std::max(0, cx - r_cells), x_hi = std::min(nx_ - 1, cx + r_cells);
  for (int y = y_lo; y <= y_hi; ++y) {
    for (int x = x_lo; x <= x_hi; ++x) {
      for (int idx : buckets_[cell_index(x, y)]) {
        if (idx == exclude) continue;
        ++checked;
        const double d2 = geom::dist2(points_[idx], q);
        if (d2 <= r2) out.emplace_back(d2, idx);
      }
    }
  }
  perf::counters().dist2_evals += checked;
}

std::vector<int> SpatialGrid::within(Vec2 q, double radius) const {
  // Index-only twin of gather(): the coverage checker and comm model call
  // this per sample point / per node and never use the distances, so don't
  // stage (dist2, index) pairs they would immediately discard.
  std::vector<int> out;
  if (points_.empty() || radius < 0.0) return out;
  auto& pc = perf::counters();
  ++pc.grid_queries;
  const int r_cells = static_cast<int>(std::ceil(radius / cell_)) + 1;
  auto [cx, cy] = cell_of(q);
  const double r2 = radius * radius;
  const int y_lo = std::max(0, cy - r_cells), y_hi = std::min(ny_ - 1, cy + r_cells);
  const int x_lo = std::max(0, cx - r_cells), x_hi = std::min(nx_ - 1, cx + r_cells);
  std::uint64_t checked = 0;
  for (int y = y_lo; y <= y_hi; ++y) {
    for (int x = x_lo; x <= x_hi; ++x) {
      for (int idx : buckets_[cell_index(x, y)]) {
        ++checked;
        if (geom::dist2(points_[idx], q) <= r2) out.push_back(idx);
      }
    }
  }
  pc.dist2_evals += checked;
  std::sort(out.begin(), out.end());
  return out;
}

void SpatialGrid::collect_within(Vec2 q, double radius,
                                 std::vector<std::pair<double, int>>& out) const {
  ++perf::counters().grid_queries;
  gather(q, radius, /*exclude=*/-1, out);
  // Pairs sort lexicographically: ascending dist2, ties by ascending index.
  std::sort(out.begin(), out.end());
}

std::vector<int> SpatialGrid::k_nearest(Vec2 q, int k, int exclude) const {
  std::vector<int> out;
  if (points_.empty() || k <= 0) return out;
  ++perf::counters().grid_queries;
  // Expanding-radius search. `cover` provably reaches every point from q
  // wherever q lies — also outside the points' bounding box, where the old
  // grid-diagonal cap could stop the expansion while points were still
  // beyond the last gathered radius.
  const Vec2 hi{origin_.x + nx_ * cell_, origin_.y + ny_ * cell_};
  const double span_x = std::max(std::abs(q.x - origin_.x), std::abs(hi.x - q.x));
  const double span_y = std::max(std::abs(q.y - origin_.y), std::abs(hi.y - q.y));
  const double cover = std::hypot(span_x, span_y) + cell_;
  double radius = cell_;
  std::vector<std::pair<double, int>> cand;
  while (true) {
    gather(q, radius, exclude, cand);
    if (static_cast<int>(cand.size()) >= k || radius >= cover) break;
    radius = std::min(radius * 2.0, cover);
  }
  // Every gathered candidate lies within `radius` and every missing point
  // lies beyond it, so once k candidates exist the k nearest are among
  // them — no re-verification pass. One sort per query, by (dist2, index):
  // the same canonical order (and tie-break) as vor::k_nearest_brute.
  std::sort(cand.begin(), cand.end());
  if (static_cast<int>(cand.size()) > k) cand.resize(static_cast<std::size_t>(k));
  out.reserve(cand.size());
  for (const auto& [d2, idx] : cand) out.push_back(idx);
  return out;
}

}  // namespace laacad::wsn
