// Uniform hash grid over node positions: radius queries and k-nearest
// queries in (near) constant time per result for the densities this project
// simulates. Used by the Voronoi solvers and the communication model.
//
// Storage is CSR ("structure of arrays"): point indices are sorted into
// cell-major slot order once per rebuild, and the slot-ordered coordinate
// arrays px_/py_ are what the query loops scan — every candidate distance
// evaluation reads two contiguous doubles instead of chasing a
// vector<vector<int>> bucket, so the dist² inner loops vectorize and a
// rebuild is two counting passes instead of n push_backs. rebuild() can
// fan those passes across a common::ThreadPool; the count-then-scatter
// scheme reserves each thread's slot range up front, so the final slot
// order (cell-major, ascending point index within a cell) is a pure
// function of the input for every thread count, serial included.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "geometry/polygon.hpp"
#include "geometry/vec2.hpp"

namespace laacad::common {
class ThreadPool;
}

namespace laacad::wsn {

class SpatialGrid {
 public:
  /// Empty grid; every query returns nothing until rebuild() is called.
  SpatialGrid() = default;

  /// Build over a fixed snapshot of positions. `cell_size` should be on the
  /// order of the typical query radius; callers re-bin per round (positions
  /// move every round anyway).
  SpatialGrid(const std::vector<geom::Vec2>& points, double cell_size);

  /// Re-bin over a new snapshot without reallocating (slot arrays are
  /// resized in place, the common case between consecutive rounds being a
  /// no-op). A non-null `pool` fans the cell-id and scatter passes across
  /// its threads; the resulting arrays are bit-identical for every thread
  /// count. Queries issued concurrently with rebuild() are undefined —
  /// callers synchronize (see Network::grid()).
  void rebuild(const std::vector<geom::Vec2>& points, double cell_size,
               common::ThreadPool* pool = nullptr);

  /// Same, over SoA coordinate arrays (the wsn::Network hot state) — skips
  /// staging a vector<Vec2> copy of a million-point snapshot.
  void rebuild(const double* xs, const double* ys, std::size_t n,
               double cell_size, common::ThreadPool* pool = nullptr);

  /// Indices of points with dist(p, q) <= radius (including any point equal
  /// to q itself), sorted ascending by index.
  std::vector<int> within(geom::Vec2 q, double radius) const;

  /// Appends (dist2(p, q), index) for every point within `radius` of q into
  /// `out` (cleared first), sorted by (dist2, index) — the canonical
  /// nearest-first order shared with k_nearest(). Lets callers that need a
  /// distance-ordered candidate list (the order-k Voronoi kernel) reuse one
  /// scratch buffer and one sort instead of re-deriving distances.
  void collect_within(geom::Vec2 q, double radius,
                      std::vector<std::pair<double, int>>& out) const;

  /// Indices of the k nearest points to q, sorted by distance ascending
  /// (ties broken by ascending index, matching vor::k_nearest_brute exactly).
  /// `exclude` (if >= 0) is skipped — used for "k nearest other nodes".
  /// Correct for any q, including query points outside the points' bounding
  /// box (the Voronoi kernel probes just outside cell edges).
  std::vector<int> k_nearest(geom::Vec2 q, int k, int exclude = -1) const;

  std::size_t size() const { return n_; }
  double cell_size() const { return cell_; }

  /// CSR internals, exposed for the rebuild-determinism tests: slot j holds
  /// point order()[j] at (slot_x()[j], slot_y()[j]); cell c owns slots
  /// [cell_start()[c], cell_start()[c+1]).
  const std::vector<int>& order() const { return order_; }
  const std::vector<int>& cell_start() const { return cell_start_; }
  const std::vector<double>& slot_x() const { return px_; }
  const std::vector<double>& slot_y() const { return py_; }

 private:
  std::pair<int, int> cell_of(double x, double y) const;
  int cell_index(int cx, int cy) const;
  void gather(geom::Vec2 q, double radius, int exclude,
              std::vector<std::pair<double, int>>& out) const;

  std::size_t n_ = 0;
  double cell_ = 1.0;
  geom::Vec2 origin_;
  int nx_ = 1, ny_ = 1;
  std::vector<double> px_, py_;    ///< coordinates in slot order
  std::vector<int> order_;         ///< slot -> original point index
  std::vector<int> cell_start_;    ///< nx_*ny_ + 1 slot offsets
  std::vector<int> cell_id_;       ///< rebuild scratch: point -> cell
};

}  // namespace laacad::wsn
