// Uniform hash grid over node positions: radius queries and k-nearest
// queries in (near) constant time per result for the densities this project
// simulates. Used by the Voronoi solvers and the communication model.
#pragma once

#include <utility>
#include <vector>

#include "geometry/polygon.hpp"
#include "geometry/vec2.hpp"

namespace laacad::wsn {

class SpatialGrid {
 public:
  /// Empty grid; every query returns nothing until rebuild() is called.
  SpatialGrid() = default;

  /// Build over a fixed snapshot of positions. `cell_size` should be on the
  /// order of the typical query radius; callers re-bin per round (positions
  /// move every round anyway).
  SpatialGrid(const std::vector<geom::Vec2>& points, double cell_size);

  /// Re-bin over a new snapshot without reallocating: bucket storage is
  /// reused whenever the grid dimensions are unchanged (the common case
  /// between consecutive rounds, where nodes move a fraction of a cell).
  /// Queries issued concurrently with rebuild() are undefined — callers
  /// synchronize (see Network::grid()).
  void rebuild(const std::vector<geom::Vec2>& points, double cell_size);

  /// Indices of points with dist(p, q) <= radius (including any point equal
  /// to q itself), sorted ascending by index.
  std::vector<int> within(geom::Vec2 q, double radius) const;

  /// Appends (dist2(p, q), index) for every point within `radius` of q into
  /// `out` (cleared first), sorted by (dist2, index) — the canonical
  /// nearest-first order shared with k_nearest(). Lets callers that need a
  /// distance-ordered candidate list (the order-k Voronoi kernel) reuse one
  /// scratch buffer and one sort instead of re-deriving distances.
  void collect_within(geom::Vec2 q, double radius,
                      std::vector<std::pair<double, int>>& out) const;

  /// Indices of the k nearest points to q, sorted by distance ascending
  /// (ties broken by ascending index, matching vor::k_nearest_brute exactly).
  /// `exclude` (if >= 0) is skipped — used for "k nearest other nodes".
  /// Correct for any q, including query points outside the points' bounding
  /// box (the Voronoi kernel probes just outside cell edges).
  std::vector<int> k_nearest(geom::Vec2 q, int k, int exclude = -1) const;

  std::size_t size() const { return points_.size(); }
  double cell_size() const { return cell_; }

 private:
  std::pair<int, int> cell_of(geom::Vec2 p) const;
  int cell_index(int cx, int cy) const;
  void gather(geom::Vec2 q, double radius, int exclude,
              std::vector<std::pair<double, int>>& out) const;

  std::vector<geom::Vec2> points_;
  double cell_ = 1.0;
  geom::Vec2 origin_;
  int nx_ = 1, ny_ = 1;
  std::vector<std::vector<int>> buckets_;
};

}  // namespace laacad::wsn
