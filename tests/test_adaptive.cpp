#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "voronoi/adaptive.hpp"
#include "voronoi/sites.hpp"

namespace laacad::vor {
namespace {

using geom::Ring;
using geom::Vec2;

bool in_cells(const std::vector<OrderKCell>& cells, Vec2 v, double eps) {
  for (const auto& c : cells)
    if (geom::contains_point(c.poly, v, eps)) return true;
  return false;
}

TEST(Adaptive, InteriorNodeStaysLocal) {
  // Dense uniform field: an interior node must certify with a gather radius
  // far below the field diameter.
  laacad::Rng rng(51);
  std::vector<Vec2> sites;
  for (int i = 0; i < 400; ++i)
    sites.push_back({rng.uniform(0, 1000), rng.uniform(0, 1000)});
  sites = separate_sites(sites);
  // Pick the node nearest the center.
  int center = k_nearest_brute(sites, {500, 500}, 1)[0];
  wsn::SpatialGrid grid(sites, 50.0);
  geom::BBox bbox{{0, 0}, {1000, 1000}};
  auto res = compute_dominating_region(sites, grid, center, 2, bbox);
  ASSERT_FALSE(res.empty());
  EXPECT_FALSE(res.used_all_sites);
  EXPECT_LT(res.rho, 500.0);
}

TEST(Adaptive, MatchesGlobalBruteForceMembership) {
  laacad::Rng rng(52);
  std::vector<Vec2> sites;
  for (int i = 0; i < 60; ++i)
    sites.push_back({rng.uniform(0, 200), rng.uniform(0, 200)});
  sites = separate_sites(sites);
  wsn::SpatialGrid grid(sites, 20.0);
  geom::BBox bbox{{0, 0}, {200, 200}};
  for (int k : {1, 2, 3, 4}) {
    for (int i : {0, 10, 30, 59}) {
      auto res = compute_dominating_region(sites, grid, i, k, bbox);
      ASSERT_FALSE(res.cells.empty()) << "i=" << i << " k=" << k;
      for (int t = 0; t < 300; ++t) {
        const Vec2 v{rng.uniform(0, 200), rng.uniform(0, 200)};
        const double di = geom::dist(sites[static_cast<size_t>(i)], v);
        bool near_tie = false;
        for (std::size_t j = 0; j < sites.size(); ++j) {
          if (static_cast<int>(j) == i) continue;
          if (std::abs(geom::dist(sites[j], v) - di) < 1e-4) near_tie = true;
        }
        if (near_tie) continue;
        const bool brute = closer_count(sites, i, v) <= k - 1;
        EXPECT_EQ(brute, in_cells(res.cells, v, 1e-6))
            << "i=" << i << " k=" << k << " v=(" << v.x << "," << v.y << ")";
      }
    }
  }
}

TEST(Adaptive, GeneratorIdsAreGlobal) {
  std::vector<Vec2> sites = {{10, 10}, {20, 10}, {30, 10}, {190, 190}};
  wsn::SpatialGrid grid(sites, 20.0);
  geom::BBox bbox{{0, 0}, {200, 200}};
  auto res = compute_dominating_region(sites, grid, 3, 1, bbox);
  ASSERT_FALSE(res.cells.empty());
  for (const auto& c : res.cells) {
    ASSERT_EQ(c.gens.size(), 1u);
    EXPECT_EQ(c.gens[0], 3);
  }
}

TEST(Adaptive, BoundaryNodeRegionBoundedByBBox) {
  // Corner node: its raw dominating region extends outward unboundedly; the
  // result must be clipped to (a hair beyond) the bbox.
  laacad::Rng rng(53);
  std::vector<Vec2> sites;
  for (int i = 0; i < 50; ++i)
    sites.push_back({rng.uniform(0, 100), rng.uniform(0, 100)});
  sites[0] = {1, 1};
  sites = separate_sites(sites);
  wsn::SpatialGrid grid(sites, 20.0);
  geom::BBox bbox{{0, 0}, {100, 100}};
  auto res = compute_dominating_region(sites, grid, 0, 2, bbox);
  ASSERT_FALSE(res.cells.empty());
  for (const auto& c : res.cells)
    for (Vec2 v : c.poly) {
      EXPECT_GE(v.x, -2.0);
      EXPECT_LE(v.x, 102.0);
      EXPECT_GE(v.y, -2.0);
      EXPECT_LE(v.y, 102.0);
    }
}

TEST(Adaptive, KEqualsNOwnsWholeBox) {
  std::vector<Vec2> sites = {{40, 40}, {60, 60}, {50, 40}};
  sites = separate_sites(sites);
  wsn::SpatialGrid grid(sites, 20.0);
  geom::BBox bbox{{0, 0}, {100, 100}};
  auto res = compute_dominating_region(sites, grid, 0, 3, bbox);
  double total = 0.0;
  for (const auto& c : res.cells) total += c.area();
  // With k = N every point is dominated by every site: area = bbox area
  // (with the solver's 1 m margin).
  EXPECT_GT(total, 100.0 * 100.0);
}

TEST(Adaptive, ExpansionCountReportedAndDeterministic) {
  laacad::Rng rng(54);
  std::vector<Vec2> sites;
  for (int i = 0; i < 100; ++i)
    sites.push_back({rng.uniform(0, 500), rng.uniform(0, 500)});
  sites = separate_sites(sites);
  wsn::SpatialGrid grid(sites, 30.0);
  geom::BBox bbox{{0, 0}, {500, 500}};
  auto a = compute_dominating_region(sites, grid, 42, 3, bbox);
  auto b = compute_dominating_region(sites, grid, 42, 3, bbox);
  EXPECT_EQ(a.rho, b.rho);
  EXPECT_EQ(a.expansions, b.expansions);
  ASSERT_EQ(a.cells.size(), b.cells.size());
}

}  // namespace
}  // namespace laacad::vor
