#include <gtest/gtest.h>

#include "geometry/angular.hpp"

namespace laacad::geom {
namespace {

TEST(NormalizeAngle, Wraps) {
  EXPECT_NEAR(normalize_angle(0.0), 0.0, 1e-15);
  EXPECT_NEAR(normalize_angle(2.5 * M_PI), 0.5 * M_PI, 1e-12);
  EXPECT_NEAR(normalize_angle(-0.5 * M_PI), 1.5 * M_PI, 1e-12);
}

TEST(AngularCoverage, EmptyHasZeroDepth) {
  AngularCoverage cov;
  EXPECT_EQ(cov.min_depth(), 0);
  EXPECT_EQ(cov.depth_at(1.0), 0);
}

TEST(AngularCoverage, SingleArcDepth) {
  AngularCoverage cov;
  cov.add(0.0, M_PI);
  EXPECT_EQ(cov.depth_at(0.5), 1);
  EXPECT_EQ(cov.depth_at(4.0), 0);
  EXPECT_EQ(cov.min_depth(), 0);
}

TEST(AngularCoverage, FullCircleFromTwoHalves) {
  AngularCoverage cov;
  cov.add(0.0, M_PI);
  cov.add(M_PI, 2.0 * M_PI);
  EXPECT_EQ(cov.min_depth(), 1);
}

TEST(AngularCoverage, WrappingArc) {
  AngularCoverage cov;
  cov.add(1.5 * M_PI, 2.5 * M_PI);  // wraps through 0
  EXPECT_EQ(cov.depth_at(0.0), 1);
  EXPECT_EQ(cov.depth_at(0.4 * M_PI), 1);
  EXPECT_EQ(cov.depth_at(M_PI), 0);
}

TEST(AngularCoverage, OverlapDepthCounts) {
  AngularCoverage cov;
  cov.add(0.0, M_PI);
  cov.add(0.5 * M_PI, 1.5 * M_PI);
  cov.add(0.6 * M_PI, 0.9 * M_PI);
  EXPECT_EQ(cov.depth_at(0.7 * M_PI), 3);
  EXPECT_EQ(cov.depth_at(0.2 * M_PI), 1);
  EXPECT_EQ(cov.min_depth(), 0);
}

TEST(AngularCoverage, FullCircleAdd) {
  AngularCoverage cov;
  cov.add(0.3, 0.3 + 2.0 * M_PI);
  EXPECT_EQ(cov.min_depth(), 1);
}

TEST(AngularCoverage, MinDepthOverRestrictedArc) {
  AngularCoverage cov;
  cov.add(0.0, M_PI);  // only upper half covered
  // Query restricted to the covered part: depth 1.
  EXPECT_EQ(cov.min_depth_over({{0.2, 0.8}}), 1);
  // Query spanning uncovered part: depth 0.
  EXPECT_EQ(cov.min_depth_over({{0.2, 4.0}}), 0);
  // Empty query: no constraint.
  EXPECT_EQ(cov.min_depth_over({}), AngularCoverage::kNoConstraint);
}

TEST(AngularCoverage, MinDepthOverWrappingQuery) {
  AngularCoverage cov;
  cov.add(1.5 * M_PI, 2.5 * M_PI);
  // Query is the same wrapped arc: fully covered once.
  EXPECT_EQ(cov.min_depth_over({{1.6 * M_PI, 2.4 * M_PI}}), 1);
}

TEST(ArcCoveredByDisk, FullContainment) {
  auto r = arc_covered_by_disk({0, 0}, 1.0, {0, 0}, 3.0);
  EXPECT_TRUE(r.all);
}

TEST(ArcCoveredByDisk, NoReach) {
  auto r = arc_covered_by_disk({0, 0}, 1.0, {10, 0}, 2.0);
  EXPECT_TRUE(r.none);
  // Small disk strictly inside the circle never reaches its boundary.
  auto r2 = arc_covered_by_disk({0, 0}, 5.0, {0, 0}, 1.0);
  EXPECT_TRUE(r2.none);
}

TEST(ArcCoveredByDisk, HalfCoverageGeometry) {
  // Disk centered on the circle boundary with equal radius covers the arc
  // of +-60 degrees around the contact direction... actually +-pi/3? For
  // d = r = R: cos(phi) = (d^2 + r^2 - R^2)/(2dr) = 1/2 -> phi = pi/3.
  auto res = arc_covered_by_disk({0, 0}, 2.0, {2, 0}, 2.0);
  ASSERT_FALSE(res.all);
  ASSERT_FALSE(res.none);
  EXPECT_NEAR(res.arc.begin, -M_PI / 3.0, 1e-9);
  EXPECT_NEAR(res.arc.end, M_PI / 3.0, 1e-9);
}

TEST(ArcCoveredByDisk, ConsistencyWithPointTest) {
  // Property: sampled points on the circle agree with the arc verdict.
  const Vec2 c{1, 2};
  const double r = 3.0;
  const Vec2 o{3, 3};
  const double R = 2.5;
  auto res = arc_covered_by_disk(c, r, o, R);
  AngularCoverage cov;
  if (res.all) cov.add(0, 2 * M_PI);
  else if (!res.none) cov.add(res.arc.begin, res.arc.end);
  for (int i = 0; i < 720; ++i) {
    const double th = i * M_PI / 360.0;
    const Vec2 p = c + Vec2{std::cos(th), std::sin(th)} * r;
    const bool in_disk = dist(p, o) <= R + 1e-9;
    const bool in_arc = cov.depth_at(th) > 0;
    // Allow disagreement only within a hair of the arc endpoints.
    const double margin = 1e-6;
    if (std::abs(dist(p, o) - R) > margin) {
      EXPECT_EQ(in_disk, in_arc);
    }
  }
}

}  // namespace
}  // namespace laacad::geom
