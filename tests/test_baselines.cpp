#include <gtest/gtest.h>

#include "baselines/ammari.hpp"
#include "baselines/movement.hpp"
#include "baselines/regular.hpp"
#include "coverage/critical.hpp"
#include "wsn/deployment.hpp"

namespace laacad::base {
namespace {

TEST(Formulas, KershnerAndBaiDensities) {
  // Bai's optimal 2-coverage count is exactly twice Kershner's 1-coverage.
  const double area = 1e6, r = 30.0;
  EXPECT_NEAR(bai_min_nodes_2cov(area, r), 2.0 * kershner_min_nodes(area, r),
              1e-9);
  // Sanity: Table-I shape — N* = 4 |A| / (3 sqrt(3) R^2).
  EXPECT_NEAR(bai_min_nodes_2cov(1e6, 30.35), 845.0, 10.0);
  EXPECT_NEAR(stacked_min_nodes(area, r, 3),
              3.0 * kershner_min_nodes(area, r), 1e-9);
}

TEST(Formulas, AmmariCount) {
  // 6 k |A| / ((4 pi - 3 sqrt 3) r^2); check against a hand-computed value.
  const double expect = 6.0 * 3.0 * 1e4 /
                        ((4.0 * M_PI - 3.0 * std::sqrt(3.0)) * 25.0);
  EXPECT_NEAR(ammari_min_nodes(1e4, 5.0, 3), expect, 1e-9);
  // Linear in k.
  EXPECT_NEAR(ammari_min_nodes(1e4, 5.0, 6), 2.0 * ammari_min_nodes(1e4, 5.0, 3),
              1e-9);
}

TEST(StackedTriangular, AchievesKCoverage) {
  wsn::Domain d = wsn::Domain::rectangle(100, 100);
  Rng rng(91);
  const double r = 20.0;
  for (int k : {1, 2, 3}) {
    auto pts = stacked_triangular_deployment(d, r, k, rng);
    std::vector<geom::Circle> disks;
    for (geom::Vec2 p : pts) disks.push_back({p, r});
    EXPECT_TRUE(cov::is_k_covered(d, disks, k)) << "k=" << k;
    // Node count within ~2.2x of the boundary-free optimum (boundary
    // effects on a small domain are significant).
    EXPECT_LE(pts.size(), 2.2 * stacked_min_nodes(d.area(), r, k) + 4 * k)
        << "k=" << k;
  }
}

TEST(AmmariLens, AchievesKCoverage) {
  wsn::Domain d = wsn::Domain::rectangle(100, 100);
  Rng rng(92);
  const double r = 20.0;
  for (int k : {3, 4, 6}) {
    auto pts = ammari_lens_deployment(d, r, k, rng);
    std::vector<geom::Circle> disks;
    for (geom::Vec2 p : pts) disks.push_back({p, r});
    EXPECT_TRUE(cov::is_k_covered(d, disks, k)) << "k=" << k;
  }
}

TEST(Movement, ChebyshevBeatsVorOnMinMaxObjective) {
  // Same initial deployment, same rounds; LAACAD's Chebyshev rule should
  // achieve a max range no worse than the VOR heuristic (which optimizes
  // coverage at a fixed range, not min-max).
  wsn::Domain d = wsn::Domain::rectangle(200, 200);
  Rng rng(93);
  const auto init = wsn::deploy_uniform(d, 20, rng);
  MovementConfig cfg;
  cfg.k = 1;
  cfg.epsilon = 0.5;
  cfg.max_rounds = 200;
  cfg.vor_range = 35.0;

  wsn::Network a(&d, init, 60.0);
  MovementResult cheb = run_target_rule(a, TargetRule::kChebyshev, cfg);
  wsn::Network b(&d, init, 60.0);
  MovementResult vor = run_target_rule(b, TargetRule::kVor, cfg);

  EXPECT_TRUE(cheb.converged);
  EXPECT_LE(cheb.final_max_range, vor.final_max_range * 1.05);
}

TEST(Movement, CentroidRuleConvergesButNotBetterThanChebyshev) {
  wsn::Domain d = wsn::Domain::rectangle(200, 200);
  Rng rng(94);
  const auto init = wsn::deploy_uniform(d, 24, rng);
  MovementConfig cfg;
  cfg.k = 2;
  cfg.epsilon = 0.5;
  cfg.max_rounds = 250;

  wsn::Network a(&d, init, 60.0);
  MovementResult cheb = run_target_rule(a, TargetRule::kChebyshev, cfg);
  wsn::Network b(&d, init, 60.0);
  MovementResult cent = run_target_rule(b, TargetRule::kCentroid, cfg);

  EXPECT_TRUE(cheb.converged);
  // Lloyd optimizes mean-square distance; the min-max objective favors the
  // Chebyshev rule (small tolerance for lucky seeds).
  EXPECT_LE(cheb.final_max_range, cent.final_max_range * 1.10);
}

TEST(Movement, VorStopsOnceRangeSatisfied) {
  // A single node with a generous fixed range should not move at all under
  // VOR once every cell vertex is within range.
  wsn::Domain d = wsn::Domain::rectangle(50, 50);
  wsn::Network net(&d, {{25, 25}}, 30.0);
  MovementConfig cfg;
  cfg.vor_range = 100.0;  // covers the whole domain from anywhere
  cfg.max_rounds = 10;
  MovementResult res = run_target_rule(net, TargetRule::kVor, cfg);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(net.position(0), geom::Vec2(25, 25));
}

}  // namespace
}  // namespace laacad::base
