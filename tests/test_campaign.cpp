#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/scheduler.hpp"
#include "campaign/spec.hpp"
#include "campaign/store.hpp"
#include "campaign/trial.hpp"
#include "common/rng.hpp"

namespace laacad::campaign {
namespace {

// ------------------------------------------------------------- parsing ----

TEST(CampaignSpec, ParsesKeysOverridesAndSweeps) {
  const CampaignSpec spec = parse_campaign_string(R"(
# comment
name     demo
trials   3
seed     99
domain   lshape     # trailing comment
side     240
nodes    30
k        2
epsilon  0.25

sweep alpha 0.5 1.0
sweep nodes 20 30 40
)");
  EXPECT_EQ(spec.name, "demo");
  EXPECT_EQ(spec.trials, 3);
  EXPECT_EQ(spec.seed, 99u);
  EXPECT_EQ(spec.base.domain, "lshape");
  EXPECT_DOUBLE_EQ(spec.base.side, 240.0);
  EXPECT_EQ(spec.base.nodes, 30);
  EXPECT_EQ(spec.base.k, 2);
  // Explicit physical keys are recorded for scenario-file overriding too.
  ASSERT_EQ(spec.base_overrides.size(), 5u);  // domain side nodes k epsilon
  EXPECT_EQ(spec.base_overrides[0],
            (std::pair<std::string, std::string>{"domain", "lshape"}));
  ASSERT_EQ(spec.axes.size(), 2u);
  EXPECT_EQ(spec.axes[0].key, "alpha");
  EXPECT_EQ(spec.axes[0].values, (std::vector<std::string>{"0.5", "1.0"}));
  EXPECT_EQ(spec.axes[1].key, "nodes");
}

TEST(CampaignSpec, RejectsMalformedInput) {
  auto expect_error = [](const std::string& text, const std::string& needle) {
    try {
      parse_campaign_string(text);
      FAIL() << "expected parse error containing '" << needle << "'";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "actual message: " << e.what();
    }
  };
  expect_error("bogus_key 1\n", "unknown campaign key");
  // Execution shape is the scheduler's (--workers), never the spec's.
  expect_error("threads 4\n", "unknown campaign key");
  expect_error("trials 0\n", "trials must be >= 1");
  expect_error("trials x\n", "expects an integer");
  expect_error("sweep k\n", "at least one value");
  expect_error("sweep k 1 2\nsweep k 3\n", "swept twice");
  expect_error("sweep alpha 0.5 big\n", "expects a number");
  // Identity keys are not sweepable: seeds derive from trial identity.
  expect_error("sweep seed 1 2\n", "not a sweepable scenario key");
  expect_error("sweep threads 1 2\n", "not a sweepable scenario key");
  expect_error("scenario a.scn\nsweep scenario b.scn c.scn\n",
               "both fixed and swept");
  // A static campaign's base config must be coherent up front.
  expect_error("nodes 2\nk 5\n", "base config invalid");
  expect_error("name x\n\nsweep k\n", "line 3");
}

// ----------------------------------------------------------- expansion ----

TEST(CampaignGrid, RowMajorExpansionWithDerivedSeeds) {
  const CampaignSpec spec = parse_campaign_string(R"(
trials 2
seed   7
sweep k 1 2
sweep alpha 0.5 0.8 1.0
)");
  const auto points = expand_grid(spec);
  ASSERT_EQ(points.size(), 12u);  // 2 * 3 grid points, 2 reps each

  // Axis 0 (k) outermost, rep innermost; trial/point/rep indices consistent.
  for (std::size_t i = 0; i < points.size(); ++i) {
    const TrialPoint& pt = points[i];
    EXPECT_EQ(pt.trial, static_cast<int>(i));
    EXPECT_EQ(pt.point, static_cast<int>(i) / 2);
    EXPECT_EQ(pt.rep, static_cast<int>(i) % 2);
    ASSERT_EQ(pt.values.size(), 2u);
    EXPECT_EQ(pt.values[0].first, "k");
    EXPECT_EQ(pt.values[1].first, "alpha");
    // Seeds are a pure function of identity, not of enumeration order.
    EXPECT_EQ(pt.seed, Rng::derive(7, static_cast<std::uint64_t>(pt.point),
                                   static_cast<std::uint64_t>(pt.rep)));
  }
  EXPECT_EQ(points[0].values[0].second, "1");
  EXPECT_EQ(points[0].values[1].second, "0.5");
  EXPECT_EQ(points[2].values[1].second, "0.8");   // alpha varies first
  EXPECT_EQ(points[6].values[0].second, "2");     // k flips after 3 alphas

  // All 12 derived seeds are distinct.
  std::vector<std::uint64_t> seeds;
  for (const auto& pt : points) seeds.push_back(pt.seed);
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::unique(seeds.begin(), seeds.end()), seeds.end());
}

TEST(CampaignGrid, NoAxesYieldsPureRepetition) {
  const CampaignSpec spec = parse_campaign_string("trials 4\n");
  const auto points = expand_grid(spec);
  ASSERT_EQ(points.size(), 4u);
  for (const auto& pt : points) {
    EXPECT_EQ(pt.point, 0);
    EXPECT_TRUE(pt.values.empty());
  }
}

TEST(CampaignMetrics, IndexRoundTripsAndRejectsTypos) {
  for (const std::string& name : metric_names())
    EXPECT_EQ(metric_names()[metric_index(name)], name);
  EXPECT_THROW(metric_index("total_runds"), std::out_of_range);
}

// ----------------------------------------------- scheduler determinism ----

/// Small but real campaign: 2 grid points x 2 seeds of a 12-node run.
constexpr const char* kSmallCampaign = R"(
name    small
trials  2
seed    11
domain  square
side    150
deploy  uniform
nodes   12
k       1
epsilon 0.5
max_rounds 150
grid_resolution 8
sweep alpha 0.6 1.0
)";

CampaignResult run_campaign(const std::string& text, int workers,
                            const std::string& manifest = "",
                            bool resume = false) {
  CampaignOptions opt;
  opt.workers = workers;
  opt.manifest_path = manifest;
  opt.resume = resume;
  CampaignScheduler scheduler(parse_campaign_string(text), std::move(opt));
  return scheduler.run();
}

std::string to_json(const CampaignResult& result) {
  std::ostringstream out;
  result.write_json(out);
  return out.str();
}

std::string to_csv(const CampaignResult& result) {
  std::ostringstream out;
  result.write_csv(out);
  return out.str();
}

TEST(CampaignScheduler, ByteIdenticalAcrossWorkerCounts) {
  const CampaignResult serial = run_campaign(kSmallCampaign, 1);
  const CampaignResult two = run_campaign(kSmallCampaign, 2);
  const CampaignResult eight = run_campaign(kSmallCampaign, 8);
  EXPECT_EQ(to_json(serial), to_json(two));
  EXPECT_EQ(to_json(serial), to_json(eight));
  EXPECT_EQ(to_csv(serial), to_csv(two));
  EXPECT_EQ(to_csv(serial), to_csv(eight));
}

TEST(CampaignScheduler, AggregatesGroupBySweptAxes) {
  const CampaignResult result = run_campaign(kSmallCampaign, 2);
  ASSERT_EQ(result.trials.size(), 4u);
  ASSERT_EQ(result.groups.size(), 2u);
  EXPECT_TRUE(result.all_ok());
  for (const GroupAggregate& g : result.groups) {
    EXPECT_EQ(g.trials, 2);
    EXPECT_EQ(g.ok, 2);
    const MetricAggregate& rounds = g.metrics[metric_index("total_rounds")];
    EXPECT_EQ(rounds.n, 2);
    EXPECT_TRUE(std::isfinite(rounds.mean));
    EXPECT_GT(rounds.mean, 0.0);
    EXPECT_GE(rounds.max, rounds.p50);
    EXPECT_GE(rounds.p50, rounds.min);
    // Every trial of this tiny run converges with verified 1-coverage.
    EXPECT_DOUBLE_EQ(g.metrics[metric_index("converged")].mean, 1.0);
    EXPECT_DOUBLE_EQ(g.metrics[metric_index("coverage_ok")].mean, 1.0);
  }
  // The swept axis is echoed per group, in axis order.
  EXPECT_EQ(result.groups[0].values[0],
            (std::pair<std::string, std::string>{"alpha", "0.6"}));
  EXPECT_EQ(result.groups[1].values[0],
            (std::pair<std::string, std::string>{"alpha", "1.0"}));
}

TEST(CampaignScheduler, FailingTrialDegradesToNullNotZero) {
  // nodes=1 with k=2 fails scenario validation inside the trial; the row
  // must record the error with NaN metrics (JSON null), not fake zeros,
  // and the campaign must still complete and aggregate the healthy point.
  const char* text = R"(
name    degrade
trials  1
seed    5
side    150
nodes   12
k       2
epsilon 0.5
max_rounds 150
grid_resolution 8
sweep nodes 1 12
)";
  const CampaignResult result = run_campaign(text, 2);
  ASSERT_EQ(result.trials.size(), 2u);
  EXPECT_FALSE(result.all_ok());

  const TrialResult& bad = result.trials[0];
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("nodes"), std::string::npos);
  EXPECT_TRUE(std::isnan(bad.metrics[metric_index("total_rounds")]));
  EXPECT_DOUBLE_EQ(bad.metrics[metric_index("aborted")], 1.0);
  EXPECT_TRUE(result.trials[1].ok);

  // Aggregates over the failed group are empty -> NaN -> JSON null.
  EXPECT_EQ(result.groups[0].metrics[metric_index("total_rounds")].n, 0);
  EXPECT_TRUE(
      std::isnan(result.groups[0].metrics[metric_index("total_rounds")].mean));
  const std::string json = to_json(result);
  EXPECT_NE(json.find("\"mean\": null"), std::string::npos);
  EXPECT_NE(json.find("\"error\""), std::string::npos);
}

TEST(CampaignScheduler, JsonExcludesExecutionDetails) {
  const std::string json = to_json(run_campaign(kSmallCampaign, 3));
  EXPECT_NE(json.find("\"schema\": \"laacad.campaign.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"campaign\": \"small\""), std::string::npos);
  EXPECT_NE(json.find("\"groups\""), std::string::npos);
  EXPECT_EQ(json.find("workers"), std::string::npos);
  EXPECT_EQ(json.find("threads"), std::string::npos);
  EXPECT_EQ(json.find("manifest"), std::string::npos);
  EXPECT_EQ(json.find("resume"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// --------------------------------------------------------------- resume ----

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

void write_lines(const std::string& path,
                 const std::vector<std::string>& lines, bool final_newline) {
  std::ofstream out(path, std::ios::trunc);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    out << lines[i];
    if (i + 1 < lines.size() || final_newline) out << '\n';
  }
}

TEST(CampaignResume, PartialManifestYieldsIdenticalOutput) {
  const std::string full = testing::TempDir() + "campaign_full.manifest";
  const std::string partial =
      testing::TempDir() + "campaign_partial.manifest";

  const CampaignResult reference = run_campaign(kSmallCampaign, 2, full);
  EXPECT_EQ(reference.executed, 4);
  EXPECT_EQ(reference.recovered, 0);

  // Simulate a kill after two journaled trials: header + first two rows.
  const auto lines = read_lines(full);
  ASSERT_EQ(lines.size(), 5u);  // header + 4 trials
  write_lines(partial, {lines[0], lines[1], lines[2]}, true);

  const CampaignResult resumed =
      run_campaign(kSmallCampaign, 3, partial, /*resume=*/true);
  EXPECT_EQ(resumed.recovered, 2);
  EXPECT_EQ(resumed.executed, 2);
  EXPECT_EQ(to_json(reference), to_json(resumed));
  EXPECT_EQ(to_csv(reference), to_csv(resumed));

  // After the resumed run the manifest is complete: resuming again runs 0
  // trials and still reproduces the same bytes.
  const CampaignResult again =
      run_campaign(kSmallCampaign, 1, partial, /*resume=*/true);
  EXPECT_EQ(again.recovered, 4);
  EXPECT_EQ(again.executed, 0);
  EXPECT_EQ(to_json(reference), to_json(again));
}

TEST(CampaignResume, TruncatedTailIsIgnored) {
  const std::string full = testing::TempDir() + "campaign_tail.manifest";
  const std::string cut = testing::TempDir() + "campaign_cut.manifest";
  run_campaign(kSmallCampaign, 1, full);
  auto lines = read_lines(full);
  ASSERT_EQ(lines.size(), 5u);
  // A kill mid-write leaves a half row: keep one good row, then garbage.
  const std::string half = lines[2].substr(0, lines[2].size() / 2);
  write_lines(cut, {lines[0], lines[1], half}, false);

  const CampaignResult resumed =
      run_campaign(kSmallCampaign, 2, cut, /*resume=*/true);
  EXPECT_EQ(resumed.recovered, 1);
  EXPECT_EQ(resumed.executed, 3);
  const CampaignResult reference = run_campaign(kSmallCampaign, 1);
  EXPECT_EQ(to_json(reference), to_json(resumed));

  // The insidious case: a cut inside the *last metric* still parses as a
  // plausible double ("83.43827" from "83.438274..."), so only the missing
  // row terminator exposes it. The row must be dropped, never recovered
  // with a silently corrupted value.
  write_lines(cut, {lines[0], lines[1].substr(0, lines[1].size() - 2)},
              false);
  const CampaignResult cut_metric =
      run_campaign(kSmallCampaign, 1, cut, /*resume=*/true);
  EXPECT_EQ(cut_metric.recovered, 0);
  EXPECT_EQ(to_json(reference), to_json(cut_metric));
}

TEST(CampaignResume, FailingTrialsRoundTripThroughTheManifest) {
  // The journal must carry the error text too: the aggregate JSON emits
  // it, so a resumed run of a *failing* campaign has to reproduce the
  // same bytes as an uninterrupted one.
  const char* text = R"(
name    degrade_resume
trials  1
seed    5
side    150
nodes   12
k       2
epsilon 0.5
max_rounds 150
grid_resolution 8
sweep nodes 1 12
)";
  const std::string full = testing::TempDir() + "campaign_err.manifest";
  const std::string partial =
      testing::TempDir() + "campaign_err_cut.manifest";
  const CampaignResult reference = run_campaign(text, 1, full);
  EXPECT_FALSE(reference.all_ok());

  // Keep only the failed trial's row (workers=1 journals in trial order).
  const auto lines = read_lines(full);
  ASSERT_EQ(lines.size(), 3u);
  write_lines(partial, {lines[0], lines[1]}, true);
  const CampaignResult resumed = run_campaign(text, 1, partial, true);
  EXPECT_EQ(resumed.recovered, 1);
  EXPECT_FALSE(resumed.trials[0].error.empty());
  EXPECT_EQ(to_json(reference), to_json(resumed));

  // A row whose error text was cut by a kill mid-write is dropped, not
  // half-recovered (the length prefix catches it).
  write_lines(partial, {lines[0], lines[1].substr(0, lines[1].size() - 4)},
              false);
  const CampaignResult redone = run_campaign(text, 1, partial, true);
  EXPECT_EQ(redone.recovered, 0);
  EXPECT_EQ(to_json(reference), to_json(redone));
}

TEST(CampaignResume, EditedScenarioFileInvalidatesManifest) {
  // The fingerprint hashes referenced .scn *contents*: resuming after the
  // scenario changed would silently mix two experiments.
  const std::string dir = testing::TempDir();
  const std::string scn = dir + "camp_fp.scn";
  auto write_scn = [&](int nodes) {
    std::ofstream out(scn, std::ios::trunc);
    out << "side 120\nnodes " << nodes
        << "\nk 1\nseed 5\nmax_rounds 150\ngrid_resolution 8\n"
           "event converged fail_nodes count=1 pick=random\n";
  };
  write_scn(8);
  const std::string campaign_path = dir + "camp_fp.cmp";
  {
    std::ofstream c(campaign_path);
    c << "name fp\ntrials 1\nseed 3\nscenario camp_fp.scn\n";
  }
  const std::string manifest = dir + "camp_fp.manifest";
  auto run = [&](bool resume) {
    CampaignOptions opt;
    opt.workers = 1;
    opt.manifest_path = manifest;
    opt.resume = resume;
    CampaignScheduler scheduler(load_campaign_file(campaign_path),
                                std::move(opt));
    return scheduler.run();
  };
  run(false);
  EXPECT_EQ(run(true).recovered, 1);  // untouched file: manifest accepted
  write_scn(9);
  EXPECT_THROW(run(true), std::runtime_error);
}

TEST(CampaignResume, MismatchedManifestIsRejected) {
  const std::string path = testing::TempDir() + "campaign_mismatch.manifest";
  run_campaign(kSmallCampaign, 1, path);
  // Same campaign but a different sweep: the fingerprint must not match.
  std::string other = kSmallCampaign;
  other += "sweep k 1 2\n";
  EXPECT_THROW(run_campaign(other, 1, path, /*resume=*/true),
               std::runtime_error);
}

TEST(CampaignResume, FreshRunTruncatesStaleManifest) {
  const std::string path = testing::TempDir() + "campaign_stale.manifest";
  run_campaign(kSmallCampaign, 1, path);
  const CampaignResult fresh = run_campaign(kSmallCampaign, 1, path);
  EXPECT_EQ(fresh.recovered, 0);
  EXPECT_EQ(fresh.executed, 4);
}

// ------------------------------------------------------- scenario axis ----

TEST(CampaignScenarioAxis, SweepsScenarioFilesDeterministically) {
  // Two tiny scenario timelines; the campaign reruns each under derived
  // seeds, so this exercises path resolution, per-file reload, and the
  // scenario/campaign composition end to end.
  const std::string dir = testing::TempDir();
  {
    std::ofstream a(dir + "camp_axis_a.scn");
    a << "side 120\nnodes 8\nk 1\nseed 5\nmax_rounds 150\n"
         "grid_resolution 8\n"
         "event converged fail_nodes count=1 pick=random\n";
    std::ofstream b(dir + "camp_axis_b.scn");
    b << "side 120\nnodes 8\nk 1\nseed 5\nmax_rounds 150\n"
         "grid_resolution 8\n"
         "event converged add_nodes count=2 deploy=uniform\n";
  }
  const std::string campaign_path = dir + "camp_axis.cmp";
  {
    std::ofstream c(campaign_path);
    c << "name axis\ntrials 2\nseed 3\n"
         "sweep scenario camp_axis_a.scn camp_axis_b.scn\n";
  }
  CampaignOptions opt;
  opt.workers = 2;
  CampaignScheduler scheduler(load_campaign_file(campaign_path),
                              std::move(opt));
  const CampaignResult result = scheduler.run();
  ASSERT_EQ(result.trials.size(), 4u);
  ASSERT_EQ(result.groups.size(), 2u);
  EXPECT_TRUE(result.all_ok());
  // Scenario trials fire their events: one phase per event plus the start.
  for (const GroupAggregate& g : result.groups) {
    EXPECT_DOUBLE_EQ(g.metrics[metric_index("phases")].mean, 2.0);
    EXPECT_DOUBLE_EQ(g.metrics[metric_index("events_fired")].mean, 1.0);
  }
  // add_nodes grows the survivors' count: 8 + 2 = 10 vs 8 - 1 = 7.
  EXPECT_DOUBLE_EQ(
      result.groups[0].metrics[metric_index("final_nodes")].mean, 7.0);
  EXPECT_DOUBLE_EQ(
      result.groups[1].metrics[metric_index("final_nodes")].mean, 10.0);

  // Same campaign, serial: byte-identical.
  CampaignOptions serial_opt;
  serial_opt.workers = 1;
  CampaignScheduler serial(load_campaign_file(campaign_path),
                           std::move(serial_opt));
  EXPECT_EQ(to_json(result), to_json(serial.run()));
}

// ------------------------------------------------------- trial resolve ----

TEST(TrialResolve, AppliesOverridesSweptValuesAndDerivedSeed) {
  const CampaignSpec spec = parse_campaign_string(R"(
trials 1
seed   17
nodes  20
k      2
sweep alpha 0.5 1.0
)");
  const auto points = expand_grid(spec);
  const scenario::ScenarioSpec resolved = resolve_trial_spec(spec, points[1]);
  EXPECT_EQ(resolved.nodes, 20);
  EXPECT_EQ(resolved.k, 2);
  EXPECT_DOUBLE_EQ(resolved.alpha, 1.0);
  EXPECT_EQ(resolved.seed, points[1].seed);
  // Trials are always serial; parallelism lives at the trial level.
  EXPECT_EQ(resolved.num_threads, 1);
}

}  // namespace
}  // namespace laacad::campaign
