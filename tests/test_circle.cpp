#include <gtest/gtest.h>

#include "geometry/circle.hpp"

namespace laacad::geom {
namespace {

TEST(Circle, ContainsClosedDisk) {
  Circle c{{0, 0}, 2.0};
  EXPECT_TRUE(c.contains({1, 1}));
  EXPECT_TRUE(c.contains({2, 0}));  // boundary
  EXPECT_FALSE(c.contains({2.1, 0}));
  EXPECT_NEAR(c.area(), 4.0 * M_PI, 1e-12);
}

TEST(CircleFrom2, DiameterCircle) {
  Circle c = circle_from_2({0, 0}, {4, 0});
  EXPECT_EQ(c.center, Vec2(2, 0));
  EXPECT_DOUBLE_EQ(c.radius, 2.0);
}

TEST(CircleFrom3, RightTriangle) {
  auto c = circle_from_3({0, 0}, {4, 0}, {0, 3});
  ASSERT_TRUE(c.has_value());
  // Circumcenter of a right triangle is the hypotenuse midpoint.
  EXPECT_NEAR(c->center.x, 2.0, 1e-12);
  EXPECT_NEAR(c->center.y, 1.5, 1e-12);
  EXPECT_NEAR(c->radius, 2.5, 1e-12);
}

TEST(CircleFrom3, EquidistantFromAllThree) {
  auto c = circle_from_3({1, 2}, {5, -1}, {-2, 4});
  ASSERT_TRUE(c.has_value());
  for (Vec2 p : {Vec2{1, 2}, Vec2{5, -1}, Vec2{-2, 4}})
    EXPECT_NEAR(dist(c->center, p), c->radius, 1e-9);
}

TEST(CircleFrom3, CollinearReturnsNullopt) {
  EXPECT_FALSE(circle_from_3({0, 0}, {1, 1}, {2, 2}).has_value());
}

TEST(CircleCircle, TwoIntersections) {
  Circle a{{0, 0}, 2.0}, b{{2, 0}, 2.0};
  auto pts = circle_circle_intersections(a, b);
  ASSERT_EQ(pts.size(), 2u);
  for (Vec2 p : pts) {
    EXPECT_NEAR(dist(p, a.center), a.radius, 1e-9);
    EXPECT_NEAR(dist(p, b.center), b.radius, 1e-9);
  }
}

TEST(CircleCircle, TangentExternally) {
  Circle a{{0, 0}, 1.0}, b{{2, 0}, 1.0};
  auto pts = circle_circle_intersections(a, b);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_NEAR(pts[0].x, 1.0, 1e-9);
  EXPECT_NEAR(pts[0].y, 0.0, 1e-9);
}

TEST(CircleCircle, DisjointAndContained) {
  EXPECT_TRUE(
      circle_circle_intersections({{0, 0}, 1.0}, {{5, 0}, 1.0}).empty());
  EXPECT_TRUE(
      circle_circle_intersections({{0, 0}, 5.0}, {{1, 0}, 1.0}).empty());
  EXPECT_TRUE(
      circle_circle_intersections({{0, 0}, 1.0}, {{0, 0}, 1.0}).empty());
}

TEST(CircleSegment, ChordCrossing) {
  Circle c{{0, 0}, 1.0};
  auto pts = circle_segment_intersections(c, {-2, 0}, {2, 0});
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_NEAR(pts[0].x, -1.0, 1e-9);
  EXPECT_NEAR(pts[1].x, 1.0, 1e-9);
}

TEST(CircleSegment, SegmentEndsInsideGivesOnePoint) {
  Circle c{{0, 0}, 1.0};
  auto pts = circle_segment_intersections(c, {0, 0}, {3, 0});
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_NEAR(pts[0].x, 1.0, 1e-9);
}

TEST(CircleSegment, MissesCircle) {
  Circle c{{0, 0}, 1.0};
  EXPECT_TRUE(circle_segment_intersections(c, {-2, 2}, {2, 2}).empty());
  // Line would cross but the segment stops short.
  EXPECT_TRUE(circle_segment_intersections(c, {2, 0}, {5, 0}).size() <= 1u);
}

TEST(CircleSegment, TangentLine) {
  Circle c{{0, 0}, 1.0};
  auto pts = circle_segment_intersections(c, {-2, 1}, {2, 1});
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_NEAR(pts[0].x, 0.0, 1e-6);
  EXPECT_NEAR(pts[0].y, 1.0, 1e-9);
}

}  // namespace
}  // namespace laacad::geom
