#include <gtest/gtest.h>

#include "coverage/lifetime.hpp"
#include "laacad/engine.hpp"
#include "wsn/connectivity.hpp"
#include "wsn/deployment.hpp"

namespace laacad {
namespace {

using geom::Vec2;

// ---------------------------------------------------------- connectivity --

TEST(Connectivity, LinearChainComponents) {
  wsn::Domain d = wsn::Domain::rectangle(100, 10);
  wsn::Network net(&d, {{0, 5}, {10, 5}, {20, 5}, {60, 5}, {70, 5}}, 1.0);
  auto rep = wsn::analyze_connectivity(net, 11.0);
  EXPECT_EQ(rep.components, 2);
  EXPECT_EQ(rep.largest_component, 3);
  EXPECT_FALSE(rep.connected());
  EXPECT_EQ(rep.min_degree, 1);
}

TEST(Connectivity, FullyConnectedClique) {
  wsn::Domain d = wsn::Domain::rectangle(20, 20);
  wsn::Network net(&d, {{5, 5}, {6, 5}, {5, 6}, {6, 6}}, 1.0);
  auto rep = wsn::analyze_connectivity(net, 5.0);
  EXPECT_TRUE(rep.connected());
  EXPECT_EQ(rep.min_degree, 3);
  EXPECT_DOUBLE_EQ(rep.mean_degree, 3.0);
}

TEST(Connectivity, KCoverageImpliesConnectivityClaim) {
  // Sec. IV-C: after LAACAD converges for k >= 2, the radio graph at
  // gamma = max r_i is connected and min degree is large.
  wsn::Domain d = wsn::Domain::rectangle(300, 300);
  Rng rng(21);
  wsn::Network net(&d, wsn::deploy_uniform(d, 30, rng), 80.0);
  core::LaacadConfig cfg;
  cfg.k = 2;
  cfg.epsilon = 0.5;
  cfg.max_rounds = 250;
  core::Engine engine(net, cfg);
  auto res = engine.run();
  ASSERT_TRUE(res.converged);
  // At gamma exactly R* connectivity is marginal (nearest-neighbour spacing
  // ~ R* in the staggered equilibrium); the paper's "realistic assumption
  // gamma >= r_i" with modest slack yields a well-connected graph.
  auto rep = wsn::analyze_connectivity(net, 1.25 * res.final_max_range);
  EXPECT_TRUE(rep.connected());
  EXPECT_GE(rep.min_degree, 2);

  // Every node's own position is k-covered, so at least k nodes (itself
  // included) sit within its sensing range.
  for (int c : wsn::nodes_within_sensing_range(net)) EXPECT_GE(c, 2);
}

// -------------------------------------------------------------- lifetime --

TEST(Lifetime, UniformDrainDiesTogether) {
  wsn::Domain d = wsn::Domain::rectangle(20, 20);
  wsn::Network net(&d, {{10, 10}, {10.5, 10}}, 10.0);
  net.set_sensing_range(0, 15.0);
  net.set_sensing_range(1, 15.0);
  cov::LifetimeConfig cfg;
  cfg.battery = 1000.0 * M_PI * 225.0;  // exactly 1000 epochs at r = 15
  cfg.required_k = 1;
  cfg.grid_resolution = 1.0;
  auto rep = cov::simulate_lifetime(net, cfg);
  EXPECT_EQ(rep.epochs_until_first_death, 1000);
  EXPECT_EQ(rep.epochs_until_coverage_loss, 1000);
  EXPECT_NEAR(rep.energy_unused_fraction, 0.0, 1e-9);
}

TEST(Lifetime, UnbalancedDeploymentLosesCoverageAtFirstDeath) {
  // One big-range node carries the left half: it dies first and coverage
  // collapses while the other node strands most of its battery.
  wsn::Domain d = wsn::Domain::rectangle(40, 10);
  wsn::Network net(&d, {{10, 5}, {30, 5}}, 10.0);
  net.set_sensing_range(0, 12.0);  // covers left half + margin
  net.set_sensing_range(1, 12.0);
  wsn::Network unbalanced(&d, {{5, 5}, {25, 5}}, 10.0);
  unbalanced.set_sensing_range(0, 7.1);   // small corner node
  unbalanced.set_sensing_range(1, 16.0);  // giant node carries the rest

  cov::LifetimeConfig cfg;
  cfg.battery = 1e6;
  cfg.required_k = 1;
  cfg.grid_resolution = 0.5;
  auto balanced = cov::simulate_lifetime(net, cfg);
  auto skewed = cov::simulate_lifetime(unbalanced, cfg);
  EXPECT_GT(balanced.epochs_until_coverage_loss,
            skewed.epochs_until_coverage_loss);
  EXPECT_GT(skewed.energy_unused_fraction, 0.1);
}

TEST(Lifetime, InfeasibleDeploymentReportsZero) {
  wsn::Domain d = wsn::Domain::rectangle(100, 100);
  wsn::Network net(&d, {{10, 10}}, 10.0);
  net.set_sensing_range(0, 5.0);  // nowhere near covering the area
  auto rep = cov::simulate_lifetime(net, {});
  EXPECT_EQ(rep.epochs_until_coverage_loss, 0);
}

TEST(Lifetime, LaacadOutlivesRandomStaticDeployment) {
  // End-to-end motivation check: starting from the same node budget, the
  // LAACAD deployment (balanced ranges) sustains 1-coverage longer than a
  // static random deployment whose ranges are set per-node to the minimum
  // covering its order-1 Voronoi cell.
  wsn::Domain d = wsn::Domain::rectangle(200, 200);
  Rng rng(31);
  const auto init = wsn::deploy_uniform(d, 20, rng);

  // Static: keep random positions, assign each node the range needed for
  // its Voronoi cell (LAACAD's partition step without the motion step).
  wsn::Network rand_net(&d, init, 60.0);
  {
    core::LaacadConfig cfg;
    cfg.k = 1;
    // No run(): finalize() alone assigns cell circumradii without motion.
    core::Engine engine(rand_net, cfg);
    engine.finalize();
  }
  wsn::Network laacad_net(&d, init, 60.0);
  {
    core::LaacadConfig cfg;
    cfg.k = 1;
    cfg.epsilon = 0.5;
    cfg.max_rounds = 250;
    core::Engine engine(laacad_net, cfg);
    engine.run();
  }
  cov::LifetimeConfig cfg;
  cfg.battery = 1e7;
  cfg.required_k = 1;
  cfg.grid_resolution = 2.0;
  auto moved = cov::simulate_lifetime(laacad_net, cfg);
  auto fixed = cov::simulate_lifetime(rand_net, cfg);
  EXPECT_GT(moved.epochs_until_coverage_loss,
            fixed.epochs_until_coverage_loss);
}

}  // namespace
}  // namespace laacad
