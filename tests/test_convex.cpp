#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "geometry/convex.hpp"

namespace laacad::geom {
namespace {

TEST(ConvexHull, SquareWithInteriorPoints) {
  std::vector<Vec2> pts = {{0, 0}, {1, 0}, {1, 1},   {0, 1},
                           {0.5, 0.5}, {0.2, 0.7}, {0.9, 0.1}};
  Ring hull = convex_hull(pts);
  EXPECT_EQ(hull.size(), 4u);
  EXPECT_NEAR(area(hull), 1.0, 1e-12);
  EXPECT_TRUE(is_convex(hull));
}

TEST(ConvexHull, CollinearInputCollapses) {
  Ring hull = convex_hull({{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  EXPECT_LT(hull.size(), 3u);
}

TEST(ConvexHull, AllHullPointsPresent) {
  laacad::Rng rng(7);
  std::vector<Vec2> pts;
  for (int i = 0; i < 200; ++i)
    pts.push_back({rng.uniform(-5, 5), rng.uniform(-5, 5)});
  Ring hull = convex_hull(pts);
  EXPECT_TRUE(is_convex(hull));
  // Every input point must be inside the hull.
  for (Vec2 p : pts) EXPECT_TRUE(contains_point(hull, p, 1e-7));
}

TEST(IsConvex, DetectsConcavity) {
  Ring l = {{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}};
  EXPECT_FALSE(is_convex(l));
  Ring tri = {{0, 0}, {2, 0}, {1, 2}};
  EXPECT_TRUE(is_convex(tri));
}

TEST(IsConvex, ToleratesCollinearVertices) {
  Ring sq = {{0, 0}, {0.5, 0}, {1, 0}, {1, 1}, {0, 1}};
  EXPECT_TRUE(is_convex(sq));
}

TEST(IntersectHalfplanes, CornerOfSquare) {
  Ring start = {{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  std::vector<HalfPlane> hps = {
      {{2, 0}, {1, 0}},  // x <= 2
      {{0, 2}, {0, 1}},  // y <= 2
  };
  Ring cell = intersect_halfplanes(start, hps);
  EXPECT_NEAR(area(cell), 4.0, 1e-12);
  EXPECT_TRUE(is_convex(cell));
}

TEST(IntersectHalfplanes, EmptyIntersection) {
  Ring start = {{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  std::vector<HalfPlane> hps = {
      {{1, 0}, {1, 0}},    // x <= 1
      {{3, 0}, {-1, 0}},   // x >= 3
  };
  EXPECT_TRUE(intersect_halfplanes(start, hps).empty());
}

TEST(Bisector, KeepsCloserSide) {
  HalfPlane hp = bisector_halfplane({0, 0}, {2, 0});
  EXPECT_TRUE(hp.contains({0.5, 3.0}));
  EXPECT_FALSE(hp.contains({1.5, -4.0}));
  // Midpoint is on the boundary.
  EXPECT_NEAR(hp.signed_dist({1.0, 7.0}), 0.0, 1e-12);
}

TEST(Bisector, SignedDistIsMetric) {
  HalfPlane hp = bisector_halfplane({0, 0}, {2, 0});
  EXPECT_NEAR(hp.signed_dist({3.0, 0.0}), 2.0, 1e-12);
  EXPECT_NEAR(hp.signed_dist({-1.0, 0.0}), -2.0, 1e-12);
}

TEST(HalfPlane, TangentPerpendicularToNormal) {
  HalfPlane hp{{0, 0}, Vec2{1, 2}.normalized()};
  EXPECT_NEAR(dot(hp.normal, hp.tangent()), 0.0, 1e-15);
}

// Property sweep: intersect-halfplanes output is always convex and contained
// in every generating half-plane.
class HalfplaneProperty : public ::testing::TestWithParam<int> {};

TEST_P(HalfplaneProperty, OutputConvexAndContained) {
  laacad::Rng rng(GetParam());
  Ring start = {{-10, -10}, {10, -10}, {10, 10}, {-10, 10}};
  std::vector<HalfPlane> hps;
  for (int i = 0; i < 12; ++i) {
    Vec2 a{rng.uniform(-5, 5), rng.uniform(-5, 5)};
    Vec2 b{rng.uniform(-5, 5), rng.uniform(-5, 5)};
    if (almost_equal(a, b)) continue;
    hps.push_back(bisector_halfplane(a, b));
  }
  Ring cell = intersect_halfplanes(start, hps);
  if (cell.empty()) return;
  EXPECT_TRUE(is_convex(cell));
  for (const HalfPlane& hp : hps)
    for (Vec2 v : cell) EXPECT_LE(hp.signed_dist(v), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HalfplaneProperty,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace laacad::geom
