#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "coverage/critical.hpp"
#include "coverage/grid_checker.hpp"
#include "wsn/deployment.hpp"

namespace laacad::cov {
namespace {

using geom::Circle;
using geom::Vec2;

TEST(GridCoverage, SingleDiskCoversSmallDomain) {
  wsn::Domain d = wsn::Domain::rectangle(10, 10);
  std::vector<Circle> disks = {{{5, 5}, 8.0}};
  GridReport rep = grid_coverage(d, disks, 0.5);
  EXPECT_EQ(rep.min_depth, 1);
  EXPECT_NEAR(rep.fraction_at_least(1), 1.0, 1e-12);
  EXPECT_NEAR(rep.fraction_at_least(2), 0.0, 1e-12);
}

TEST(GridCoverage, UncoveredCornerDetected) {
  wsn::Domain d = wsn::Domain::rectangle(10, 10);
  std::vector<Circle> disks = {{{0, 0}, 6.0}};
  GridReport rep = grid_coverage(d, disks, 0.25);
  EXPECT_EQ(rep.min_depth, 0);
  // The reported worst point is genuinely uncovered.
  EXPECT_GT(geom::dist(rep.worst_point, {0, 0}), 6.0);
  // Quarter disk of radius 6 covers pi*36/4 ~ 28.3% of the 10x10 square.
  EXPECT_NEAR(rep.fraction_at_least(1), M_PI * 36.0 / 4.0 / 100.0, 0.02);
}

TEST(GridCoverage, DepthCountsOverlaps) {
  wsn::Domain d = wsn::Domain::rectangle(4, 4);
  std::vector<Circle> disks = {{{2, 2}, 5.0}, {{2, 2}, 5.0}, {{2, 2}, 5.0}};
  GridReport rep = grid_coverage(d, disks, 0.5);
  EXPECT_EQ(rep.min_depth, 3);
  EXPECT_NEAR(rep.mean_depth, 3.0, 1e-12);
}

TEST(GridCoverage, HolesAreExcluded) {
  wsn::Domain d =
      wsn::Domain::rectangle(10, 10).with_rect_hole({4, 4}, {6, 6});
  // Disk covering everything except the hole area is still "full" coverage.
  std::vector<Circle> disks = {{{5, 5}, 9.0}};
  GridReport rep = grid_coverage(d, disks, 0.2);
  EXPECT_EQ(rep.min_depth, 1);
}

TEST(GridCoverage, EmptyDisks) {
  wsn::Domain d = wsn::Domain::rectangle(10, 10);
  GridReport rep = grid_coverage(d, {}, 1.0);
  EXPECT_EQ(rep.min_depth, 0);
  EXPECT_GT(rep.samples, 0u);
}

TEST(DepthAt, ClosedDiskSemantics) {
  std::vector<Circle> disks = {{{0, 0}, 1.0}, {{2, 0}, 1.0}};
  EXPECT_EQ(depth_at(disks, {1, 0}), 2);  // touching point counts for both
  EXPECT_EQ(depth_at(disks, {0, 0}), 1);
  EXPECT_EQ(depth_at(disks, {5, 5}), 0);
}

TEST(Critical, FullyCoveredDomain) {
  wsn::Domain d = wsn::Domain::rectangle(10, 10);
  std::vector<Circle> disks = {{{5, 5}, 8.0}};
  ExactReport rep = critical_point_coverage(d, disks);
  EXPECT_EQ(rep.min_depth, 1);
  EXPECT_TRUE(is_k_covered(d, disks, 1));
  EXPECT_FALSE(is_k_covered(d, disks, 2));
}

TEST(Critical, DetectsPinholeGapBetweenDisks) {
  // Three disks whose centers sit at distance 3 from the domain center with
  // radius 2.95 cover the whole 3x3 square except a ~0.1 m curvilinear gap
  // at the center — far below the 0.4 m grid resolution. The critical-point
  // checker must still find depth 0 there.
  wsn::Domain d = wsn::Domain::rectangle(3, 3);
  const Vec2 c{1.5, 1.5};
  const double dist_out = 3.0, r = 2.95;
  std::vector<Circle> disks;
  for (double ang : {M_PI / 2, M_PI * 7 / 6, M_PI * 11 / 6}) {
    disks.push_back({c + Vec2{std::cos(ang), std::sin(ang)} * dist_out, r});
  }
  ASSERT_EQ(depth_at(disks, c), 0);  // pinhole exists
  const GridReport grid = grid_coverage(d, disks, 0.4);
  EXPECT_GE(grid.min_depth, 1) << "gap should be sub-resolution";
  ExactReport rep = critical_point_coverage(d, disks);
  EXPECT_EQ(rep.min_depth, 0);
  EXPECT_NEAR(rep.witness.x, c.x, 0.3);
  EXPECT_NEAR(rep.witness.y, c.y, 0.3);
}

TEST(Critical, AgreesWithGridOnRandomConfigs) {
  laacad::Rng rng(71);
  for (int trial = 0; trial < 10; ++trial) {
    wsn::Domain d = wsn::Domain::rectangle(50, 50);
    std::vector<Circle> disks;
    const int n = 8 + rng.uniform_int(0, 15);
    for (int i = 0; i < n; ++i) {
      disks.push_back({{rng.uniform(0, 50), rng.uniform(0, 50)},
                       rng.uniform(6, 16)});
    }
    const ExactReport exact = critical_point_coverage(d, disks);
    const GridReport grid = grid_coverage(d, disks, 0.4);
    // The exact minimum is never above the sampled minimum, and the two
    // agree unless a sub-resolution face hides from the grid.
    EXPECT_LE(exact.min_depth, grid.min_depth);
    EXPECT_GE(exact.min_depth, grid.min_depth - 1);
  }
}

TEST(Critical, DomainWithHoleStillVerifies) {
  wsn::Domain d =
      wsn::Domain::rectangle(20, 20).with_rect_hole({8, 8}, {12, 12});
  std::vector<Circle> disks = {
      {{5, 5}, 9.0}, {{15, 5}, 9.0}, {{5, 15}, 9.0}, {{15, 15}, 9.0}};
  ExactReport rep = critical_point_coverage(d, disks);
  EXPECT_GE(rep.min_depth, 1);
}

TEST(Critical, KCoverageOfStackedDisks) {
  wsn::Domain d = wsn::Domain::rectangle(6, 6);
  std::vector<Circle> disks;
  for (int i = 0; i < 4; ++i) disks.push_back({{3, 3}, 6.0});
  EXPECT_TRUE(is_k_covered(d, disks, 4));
  EXPECT_FALSE(is_k_covered(d, disks, 5));
}

TEST(Critical, NetworkHelperExtractsDisks) {
  wsn::Domain d = wsn::Domain::rectangle(10, 10);
  wsn::Network net(&d, {{2, 2}, {8, 8}}, 5.0);
  net.set_sensing_range(0, 1.0);
  net.set_sensing_range(1, 2.0);
  auto disks = sensing_disks(net);
  ASSERT_EQ(disks.size(), 2u);
  EXPECT_DOUBLE_EQ(disks[0].radius, 1.0);
  EXPECT_DOUBLE_EQ(disks[1].radius, 2.0);
}

}  // namespace
}  // namespace laacad::cov
