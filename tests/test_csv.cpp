#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.hpp"

namespace laacad {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CsvFile : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "csv_writer_test.csv";
};

TEST_F(CsvFile, PlainFieldsPassThrough) {
  {
    CsvWriter csv(path_, {"a", "b"});
    ASSERT_TRUE(csv.ok());
    csv.add_row({"1", "2.5"});
  }
  EXPECT_EQ(slurp(path_), "a,b\n1,2.5\n");
}

TEST_F(CsvFile, FieldsWithCommasQuotesNewlinesAreQuoted) {
  {
    CsvWriter csv(path_, {"metric", "value"});
    csv.add_row({"load, max", "12"});
    csv.add_row({"say \"hi\"", "multi\nline"});
  }
  EXPECT_EQ(slurp(path_),
            "metric,value\n"
            "\"load, max\",12\n"
            "\"say \"\"hi\"\"\",\"multi\nline\"\n");
}

TEST_F(CsvFile, ShortRowsArePaddedToHeaderWidth) {
  {
    CsvWriter csv(path_, {"a", "b", "c"});
    csv.add_row({"1"});
  }
  EXPECT_EQ(slurp(path_), "a,b,c\n1,,\n");
}

TEST(CsvEscape, Rules) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape(""), "");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("a\"b"), "\"a\"\"b\"");
  EXPECT_EQ(CsvWriter::escape("a\nb"), "\"a\nb\"");
  EXPECT_EQ(CsvWriter::escape("a\rb"), "\"a\rb\"");
  EXPECT_EQ(CsvWriter::escape("\""), "\"\"\"\"");
}

}  // namespace
}  // namespace laacad
