#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/manifest.hpp"
#include "campaign/scheduler.hpp"
#include "campaign/store.hpp"
#include "dist/merge.hpp"
#include "dist/partition.hpp"

namespace laacad::dist {
namespace {

// ----------------------------------------------------------- partition ----

TEST(ShardPartition, StrideOwnershipCoversExactlyOnce) {
  const int total = 17;
  for (int count = 1; count <= 5; ++count) {
    std::vector<int> owners(total, 0);
    for (int i = 0; i < count; ++i) {
      const ShardSpec shard{i, count};
      int seen = 0;
      for (const int t : shard_trials(shard, total)) {
        EXPECT_TRUE(owns(shard, t));
        ++owners[static_cast<std::size_t>(t)];
        ++seen;
      }
      EXPECT_EQ(seen, shard_size(shard, total));
    }
    for (const int n : owners) EXPECT_EQ(n, 1);  // a partition, exactly
  }
}

TEST(ShardPartition, ParseRoundTripsAndRejectsGarbage) {
  const ShardSpec shard = parse_shard("2/8");
  EXPECT_EQ(shard.index, 2);
  EXPECT_EQ(shard.count, 8);
  EXPECT_EQ(to_string(shard), "2/8");
  EXPECT_TRUE(shard.sharded());
  EXPECT_FALSE(ShardSpec{}.sharded());
  EXPECT_THROW(parse_shard("3"), std::runtime_error);
  EXPECT_THROW(parse_shard("3/"), std::runtime_error);
  EXPECT_THROW(parse_shard("/3"), std::runtime_error);
  EXPECT_THROW(parse_shard("x/3"), std::runtime_error);
  EXPECT_THROW(parse_shard("3/3"), std::runtime_error);   // index == count
  EXPECT_THROW(parse_shard("-1/3"), std::runtime_error);
  EXPECT_THROW(parse_shard("0/0"), std::runtime_error);
}

TEST(ShardPartition, ManifestPathEncodesCoordinates) {
  EXPECT_EQ(shard_manifest_path("smoke", ShardSpec{1, 3}),
            "BENCH_campaign_smoke.shard-1-of-3.manifest");
}

// ------------------------------------------------------ manifest codec ----

TEST(ManifestCodec, HeaderRoundTripsWithAndWithoutShard) {
  campaign::ManifestHeader header;
  header.fingerprint = 0xdeadbeef12345678ULL;
  header.trials = 12;
  header.metrics = 19;
  EXPECT_EQ(campaign::parse_manifest_header(
                campaign::format_manifest_header(header)),
            header);
  header.shard = ShardSpec{2, 5};
  const std::string line = campaign::format_manifest_header(header);
  EXPECT_NE(line.find("shard=2/5"), std::string::npos);
  EXPECT_EQ(campaign::parse_manifest_header(line), header);
  EXPECT_FALSE(campaign::parse_manifest_header("not a header"));
  EXPECT_FALSE(campaign::parse_manifest_header(
      "laacad.campaign.manifest.v1 fp=zz trials=1 metrics=1"));
  EXPECT_FALSE(campaign::parse_manifest_header(
      "laacad.campaign.manifest.v1 fp=1 trials=1 metrics=1 shard=9/3"));
}

// ------------------------------------------------- shard + merge pipeline --

/// Small but real campaign: 2 grid points x 2 seeds of a 12-node run
/// (mirrors test_campaign's kSmallCampaign but under a distinct name so
/// manifests never collide).
constexpr const char* kDistCampaign = R"(
name    dist_small
trials  2
seed    11
domain  square
side    150
deploy  uniform
nodes   12
k       1
epsilon 0.5
max_rounds 150
grid_resolution 8
sweep alpha 0.6 1.0
)";

std::string tmp_path(const std::string& name) {
  return testing::TempDir() + name;
}

campaign::CampaignResult run_shard(const campaign::CampaignSpec& spec,
                                   const ShardSpec& shard,
                                   const std::string& manifest, int workers,
                                   bool resume = false) {
  campaign::CampaignOptions opt;
  opt.workers = workers;
  opt.shard = shard;
  opt.manifest_path = manifest;
  opt.resume = resume;
  campaign::CampaignScheduler scheduler(spec, std::move(opt));
  return scheduler.run();
}

std::string to_json(const campaign::CampaignResult& result) {
  std::ostringstream out;
  result.write_json(out);
  return out.str();
}

std::string to_csv(const campaign::CampaignResult& result) {
  std::ostringstream out;
  result.write_csv(out);
  return out.str();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Run `spec` as `count` shards with varying worker counts, returning the
/// shard manifest paths.
std::vector<std::string> run_fleet_in_process(
    const campaign::CampaignSpec& spec, int count, const std::string& tag) {
  std::vector<std::string> paths;
  for (int i = 0; i < count; ++i) {
    const ShardSpec shard{i, count};
    const std::string path = tmp_path(tag + shard_manifest_path(spec.name,
                                                                shard));
    run_shard(spec, shard, path, /*workers=*/1 + i);  // any worker count
    paths.push_back(path);
  }
  return paths;
}

TEST(ManifestMerge, ThreeShardsReproduceSingleProcessBytes) {
  const auto spec = campaign::parse_campaign_string(kDistCampaign);

  const std::string ref_manifest = tmp_path("dist_ref.manifest");
  campaign::CampaignOptions ref_opt;
  ref_opt.workers = 1;  // serial journals in trial order, like the merge
  ref_opt.manifest_path = ref_manifest;
  campaign::CampaignScheduler ref(spec, std::move(ref_opt));
  const campaign::CampaignResult reference = ref.run();

  const auto paths = run_fleet_in_process(spec, 3, "m3_");
  const std::string merged_path = tmp_path("dist_merged.manifest");
  const campaign::CampaignResult merged =
      merge_manifests(spec, paths, merged_path);

  EXPECT_EQ(to_json(reference), to_json(merged));
  EXPECT_EQ(to_csv(reference), to_csv(merged));
  // The unified journal is byte-identical to the serial run's journal.
  EXPECT_EQ(read_file(ref_manifest), read_file(merged_path));
  EXPECT_EQ(merged.recovered, 4);
  EXPECT_EQ(merged.executed, 0);
}

TEST(ManifestMerge, ShardOrderAndCountDoNotMatter) {
  const auto spec = campaign::parse_campaign_string(kDistCampaign);
  const auto ref = merge_manifests(
      spec, run_fleet_in_process(spec, 1, "m1_"), tmp_path("m1.manifest"));
  auto paths4 = run_fleet_in_process(spec, 4, "m4_");
  std::swap(paths4[0], paths4[3]);  // merge input order is irrelevant
  const auto merged4 =
      merge_manifests(spec, paths4, tmp_path("m4.manifest"));
  EXPECT_EQ(to_json(ref), to_json(merged4));
  EXPECT_EQ(to_csv(ref), to_csv(merged4));
}

TEST(ManifestMerge, KilledAndResumedShardReproducesBytes) {
  const auto spec = campaign::parse_campaign_string(kDistCampaign);
  const auto paths = run_fleet_in_process(spec, 3, "kill_");
  const std::string reference =
      to_json(merge_manifests(spec, paths, tmp_path("kill_ref.manifest")));

  // Kill shard 0 (it owns trials 0 and 3) mid-write: keep the header and
  // its first row, then a torn half-row. Resume re-runs only the lost
  // trial.
  std::ifstream in(paths[0]);
  std::string header, row1;
  std::getline(in, header);
  std::getline(in, row1);
  in.close();
  {
    std::ofstream out(paths[0], std::ios::trunc);
    out << header << '\n' << row1 << '\n'
        << row1.substr(0, row1.size() / 2);  // torn tail, no terminator
  }
  const campaign::CampaignResult resumed = run_shard(
      spec, ShardSpec{0, 3}, paths[0], /*workers=*/2, /*resume=*/true);
  EXPECT_EQ(resumed.recovered, 1);
  EXPECT_EQ(resumed.executed, 1);

  const auto merged =
      merge_manifests(spec, paths, tmp_path("kill_merged.manifest"));
  EXPECT_EQ(reference, to_json(merged));
}

TEST(ManifestMerge, TruncatedShardTailIsMissingTrialsError) {
  const auto spec = campaign::parse_campaign_string(kDistCampaign);
  const auto paths = run_fleet_in_process(spec, 3, "trunc_");
  // Cut shard 0 to header only: its trials are simply absent, which must
  // be a hard error naming the shard to resume — never a silent gap.
  std::ifstream in(paths[0]);
  std::string header;
  std::getline(in, header);
  in.close();
  {
    std::ofstream out(paths[0], std::ios::trunc);
    out << header << '\n';
  }
  try {
    merge_manifests(spec, paths, tmp_path("trunc_merged.manifest"));
    FAIL() << "expected missing-trials error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("missing"), std::string::npos) << what;
    EXPECT_NE(what.find("0/3"), std::string::npos) << what;
    EXPECT_NE(what.find("--resume"), std::string::npos) << what;
  }
}

TEST(ManifestMerge, DuplicateTrialAcrossShardsIsRejected) {
  const auto spec = campaign::parse_campaign_string(kDistCampaign);
  const auto paths = run_fleet_in_process(spec, 3, "dup_");
  // Graft shard 0's first row (trial 0) onto shard 1's manifest: a row in
  // a shard that does not own it is exactly what "two shards both ran
  // trial 0" looks like after a merge of mislabeled files.
  std::ifstream in0(paths[0]);
  std::string header0, row0;
  std::getline(in0, header0);
  std::getline(in0, row0);
  in0.close();
  std::ofstream(paths[1], std::ios::app) << row0 << '\n';
  try {
    merge_manifests(spec, paths, tmp_path("dup_merged.manifest"));
    FAIL() << "expected overlap error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("does not own"), std::string::npos) << what;
    EXPECT_NE(what.find("trial 0"), std::string::npos) << what;
  }
}

TEST(ManifestMerge, DuplicateShardIndexIsRejected) {
  const auto spec = campaign::parse_campaign_string(kDistCampaign);
  auto paths = run_fleet_in_process(spec, 3, "dupidx_");
  paths[2] = paths[0];  // same shard file listed twice
  EXPECT_THROW(
      merge_manifests(spec, paths, tmp_path("dupidx_merged.manifest")),
      std::runtime_error);
}

TEST(ManifestMerge, MissingShardIsRejected) {
  const auto spec = campaign::parse_campaign_string(kDistCampaign);
  auto paths = run_fleet_in_process(spec, 3, "miss_");
  // (a) file simply absent
  auto two = paths;
  two.pop_back();
  try {
    merge_manifests(spec, two, tmp_path("miss_merged.manifest"));
    FAIL() << "expected missing-shard error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("missing shard 2/3"),
              std::string::npos)
        << e.what();
  }
  // (b) path to a file that does not exist
  auto gone = paths;
  gone[1] = tmp_path("does_not_exist.manifest");
  EXPECT_THROW(merge_manifests(spec, gone, tmp_path("m.manifest")),
               std::runtime_error);
}

TEST(ManifestMerge, MixedFingerprintShardsAreRejected) {
  const auto spec = campaign::parse_campaign_string(kDistCampaign);
  auto paths = run_fleet_in_process(spec, 3, "fp_");
  // Shard 1 re-run under a *different* campaign (extra sweep value):
  // its fingerprint cannot match and the merge must say so, naming both.
  std::string other_text = kDistCampaign;
  other_text += "sweep k 1 2\n";
  const auto other = campaign::parse_campaign_string(other_text);
  run_shard(other, ShardSpec{1, 3}, paths[1], 1);
  try {
    merge_manifests(spec, paths, tmp_path("fp_merged.manifest"));
    FAIL() << "expected fingerprint error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("expected fp="), std::string::npos) << what;
    EXPECT_NE(what.find("found fp="), std::string::npos) << what;
  }
}

TEST(ManifestMerge, InconsistentShardSchemeIsRejected) {
  const auto spec = campaign::parse_campaign_string(kDistCampaign);
  auto paths3 = run_fleet_in_process(spec, 3, "scheme_");
  const auto paths2 = run_fleet_in_process(spec, 2, "scheme_");
  paths3[1] = paths2[1];  // a 1/2 shard in a 3-shard fleet
  try {
    merge_manifests(spec, {paths3[0], paths3[1]},
                    tmp_path("scheme_merged.manifest"));
    FAIL() << "expected scheme error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("shard scheme mismatch"),
              std::string::npos)
        << e.what();
  }
}

// -------------------------------------------------- store shard header ----

TEST(ShardedStore, ResumeRejectsWrongShardWithBothHeaders) {
  const auto spec = campaign::parse_campaign_string(kDistCampaign);
  const std::string path = tmp_path("wrong_shard.manifest");
  run_shard(spec, ShardSpec{0, 3}, path, 1);
  // Resuming the same journal as a different shard must fail and the
  // message must report both sides (the satellite contract: expected and
  // found values, not just "mismatch").
  try {
    run_shard(spec, ShardSpec{1, 3}, path, 1, /*resume=*/true);
    FAIL() << "expected shard mismatch error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("expected"), std::string::npos) << what;
    EXPECT_NE(what.find("found"), std::string::npos) << what;
    EXPECT_NE(what.find("shard=1/3"), std::string::npos) << what;
    EXPECT_NE(what.find("shard=0/3"), std::string::npos) << what;
  }
}

TEST(ShardedStore, ResumeReportsExpectedAndFoundValues) {
  // Unsharded flavor of the same satellite: trial-count and fingerprint
  // values of *both* manifests appear in the message.
  const auto spec = campaign::parse_campaign_string(kDistCampaign);
  const std::string path = tmp_path("mismatch_values.manifest");
  {
    campaign::CampaignOptions opt;
    opt.manifest_path = path;
    campaign::CampaignScheduler scheduler(spec, std::move(opt));
    scheduler.run();
  }
  std::string other_text = kDistCampaign;
  other_text += "sweep k 1 2\n";  // 8 trials instead of 4, new fingerprint
  const auto other = campaign::parse_campaign_string(other_text);
  try {
    campaign::CampaignOptions opt;
    opt.manifest_path = path;
    opt.resume = true;
    campaign::CampaignScheduler scheduler(other, std::move(opt));
    scheduler.run();
    FAIL() << "expected mismatch error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    std::ostringstream expected_fp, found_fp;
    expected_fp << std::hex << campaign::fingerprint(other);
    found_fp << std::hex << campaign::fingerprint(spec);
    EXPECT_NE(what.find("expected fp=" + expected_fp.str()),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("found fp=" + found_fp.str()), std::string::npos)
        << what;
    EXPECT_NE(what.find("trials=8"), std::string::npos) << what;
    EXPECT_NE(what.find("trials=4"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(ShardedStore, TornHeaderResumesFreshInsteadOfAborting) {
  // A kill inside the open-truncate-write window leaves an empty file or a
  // half-written header. campaign_fleet restarts crashed shards with
  // --resume unconditionally, so that state must behave like a truncated
  // tail (recover nothing, rerun the shard), never like a fingerprint
  // mismatch that aborts the fleet.
  const auto spec = campaign::parse_campaign_string(kDistCampaign);
  const std::string path = tmp_path("torn_header.manifest");
  std::ofstream(path, std::ios::trunc) << "";  // empty journal
  auto result = run_shard(spec, ShardSpec{0, 3}, path, 1, /*resume=*/true);
  EXPECT_EQ(result.recovered, 0);
  EXPECT_EQ(result.executed, 2);

  std::ofstream(path, std::ios::trunc)
      << "laacad.campaign.mani";  // torn mid-header, no newline
  result = run_shard(spec, ShardSpec{0, 3}, path, 1, /*resume=*/true);
  EXPECT_EQ(result.recovered, 0);
  EXPECT_EQ(result.executed, 2);
  EXPECT_TRUE(result.all_ok());

  // The insidious cut: a prefix that still *parses* as a valid header —
  // the shard token torn clean off leaves 4 well-formed tokens with an
  // unsharded default. It must be recognized as torn, never rejected as
  // a different campaign (which would abort a fleet's crash-restart).
  campaign::ManifestHeader header;
  header.fingerprint = campaign::fingerprint(spec);
  header.trials = 4;
  header.metrics = static_cast<int>(campaign::metric_names().size());
  header.shard = ShardSpec{0, 3};
  const std::string full = campaign::format_manifest_header(header);
  const auto shard_tok = full.find(" shard=");
  ASSERT_NE(shard_tok, std::string::npos);
  ASSERT_TRUE(campaign::parse_manifest_header(full.substr(0, shard_tok)));
  std::ofstream(path, std::ios::trunc) << full.substr(0, shard_tok);
  result = run_shard(spec, ShardSpec{0, 3}, path, 1, /*resume=*/true);
  EXPECT_EQ(result.recovered, 0);
  EXPECT_EQ(result.executed, 2);
  EXPECT_TRUE(result.all_ok());
}

TEST(ShardedStore, ShardResumeRefusesCompleteUnshardedManifest) {
  // The unsharded header is a strict prefix of every sharded one (the
  // shard token appends), so a complete full-campaign journal could
  // masquerade as a torn header. The rows after it are the tell: content
  // following a prefix line means a foreign journal — refuse and leave
  // the file untouched, never silently destroy its rows.
  const auto spec = campaign::parse_campaign_string(kDistCampaign);
  const std::string path = tmp_path("full_unsharded.manifest");
  {
    campaign::CampaignOptions opt;
    opt.manifest_path = path;
    campaign::CampaignScheduler scheduler(spec, std::move(opt));
    scheduler.run();
  }
  const std::string before = read_file(path);
  try {
    run_shard(spec, ShardSpec{0, 3}, path, 1, /*resume=*/true);
    FAIL() << "expected shard mismatch error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("expected"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(read_file(path), before);  // untouched
  std::remove(path.c_str());
}

TEST(ShardedStore, ResumeRefusesToOverwriteNonManifestFiles) {
  // A mistyped --manifest path must never destroy data: only an empty
  // file or a torn prefix of this campaign's own header (the crash
  // window) is recoverable; arbitrary content is refused *before* the
  // truncating reopen.
  const auto spec = campaign::parse_campaign_string(kDistCampaign);
  const std::string path = tmp_path("precious.txt");
  const std::string content = "alpha,rounds\n0.6,42\n";
  std::ofstream(path, std::ios::trunc) << content;
  EXPECT_THROW(run_shard(spec, ShardSpec{}, path, 1, /*resume=*/true),
               std::runtime_error);
  EXPECT_EQ(read_file(path), content);  // untouched
  std::remove(path.c_str());
}

TEST(ShardedStore, ShardedResultRefusesToSerialize) {
  const auto spec = campaign::parse_campaign_string(kDistCampaign);
  const auto result =
      run_shard(spec, ShardSpec{0, 2}, tmp_path("noser.manifest"), 1);
  std::ostringstream out;
  EXPECT_THROW(result.write_json(out), std::logic_error);
  EXPECT_THROW(result.write_csv(out), std::logic_error);
  // But its own slice is judged: all owned trials ran ok.
  EXPECT_TRUE(result.all_ok());
  EXPECT_EQ(result.executed, 2);
}

// ------------------------------------- shipped campaigns, end to end ----

/// The acceptance contract: for a shipped campaign, a 3-shard fleet with
/// differing per-shard worker counts — one shard killed and resumed —
/// merges to byte-identical aggregates and trial CSV.
void check_shipped_campaign(const std::string& file, bool kill_one_shard) {
  const auto spec = campaign::load_campaign_file(
      std::string(LAACAD_SOURCE_DIR) + "/campaigns/" + file);
  const std::string tag = spec.name + "_e2e_";

  campaign::CampaignOptions ref_opt;
  ref_opt.workers = 0;  // hardware concurrency; outputs are invariant
  campaign::CampaignScheduler ref(spec, std::move(ref_opt));
  const campaign::CampaignResult reference = ref.run();

  std::vector<std::string> paths;
  for (int i = 0; i < 3; ++i) {
    const ShardSpec shard{i, 3};
    const std::string path =
        tmp_path(tag + shard_manifest_path(spec.name, shard));
    run_shard(spec, shard, path, /*workers=*/i == 0 ? 0 : i);
    paths.push_back(path);
  }

  if (kill_one_shard) {
    // Tear shard 2's journal mid-row and resume it.
    std::ifstream in(paths[2]);
    std::string header, row1;
    std::getline(in, header);
    std::getline(in, row1);
    in.close();
    {
      std::ofstream out(paths[2], std::ios::trunc);
      out << header << '\n' << row1.substr(0, row1.size() - 3);
    }
    const auto resumed = run_shard(spec, ShardSpec{2, 3}, paths[2],
                                   /*workers=*/0, /*resume=*/true);
    EXPECT_EQ(resumed.recovered, 0);  // the torn row was dropped
  }

  const auto merged =
      merge_manifests(spec, paths, tmp_path(tag + "merged.manifest"));
  EXPECT_EQ(to_json(reference), to_json(merged));
  EXPECT_EQ(to_csv(reference), to_csv(merged));
}

TEST(DistShippedCampaigns, SmokeThreeShardFleetByteIdentical) {
  check_shipped_campaign("smoke.cmp", /*kill_one_shard=*/true);
}

TEST(DistShippedCampaigns, Fig6ConvergenceThreeShardFleetByteIdentical) {
  check_shipped_campaign("fig6_convergence.cmp", /*kill_one_shard=*/true);
}

}  // namespace
}  // namespace laacad::dist
