#include <gtest/gtest.h>

#include "wsn/domain.hpp"

namespace laacad::wsn {
namespace {

using geom::Ring;
using geom::Vec2;

TEST(Domain, RectangleBasics) {
  Domain d = Domain::rectangle(100, 50);
  EXPECT_NEAR(d.area(), 5000.0, 1e-9);
  EXPECT_TRUE(d.contains({50, 25}));
  EXPECT_FALSE(d.contains({101, 25}));
  EXPECT_TRUE(d.contains({0, 0}));  // boundary is inside
  EXPECT_NEAR(d.dist_to_boundary({50, 25}), 25.0, 1e-9);
}

TEST(Domain, SquareKm) {
  Domain d = Domain::square_km();
  EXPECT_NEAR(d.area(), 1e6, 1e-3);
}

TEST(Domain, LShapeContainment) {
  Domain d = Domain::lshape(100, 100);
  EXPECT_NEAR(d.area(), 7500.0, 1e-9);
  EXPECT_TRUE(d.contains({25, 75}));   // upper-left arm
  EXPECT_TRUE(d.contains({75, 25}));   // lower-right arm
  EXPECT_FALSE(d.contains({75, 75}));  // removed quadrant
}

TEST(Domain, CrossShape) {
  Domain d = Domain::cross(90, 90);
  EXPECT_TRUE(d.contains({45, 45}));  // center
  EXPECT_TRUE(d.contains({45, 5}));   // vertical arm
  EXPECT_TRUE(d.contains({5, 45}));   // horizontal arm
  EXPECT_FALSE(d.contains({5, 5}));   // corner cut away
  // Area: cross = 2 arms - center overlap = 2*(30*90) - 30*30.
  EXPECT_NEAR(d.area(), 2 * 30 * 90 - 30 * 30, 1e-6);
}

TEST(Domain, HoleBlocksContainment) {
  Domain d = Domain::rectangle(100, 100).with_rect_hole({40, 40}, {60, 60});
  EXPECT_NEAR(d.area(), 10000.0 - 400.0, 1e-9);
  EXPECT_FALSE(d.contains({50, 50}));
  EXPECT_TRUE(d.contains({10, 10}));
  // Just outside the hole is fine.
  EXPECT_TRUE(d.contains({39.9, 50}));
}

TEST(Domain, ProjectInsideFromOutside) {
  Domain d = Domain::rectangle(100, 100);
  Vec2 p = d.project_inside({150, 50});
  EXPECT_TRUE(d.contains(p));
  EXPECT_NEAR(p.x, 100.0, 1e-3);
  EXPECT_NEAR(p.y, 50.0, 1e-6);
}

TEST(Domain, ProjectInsideFromHole) {
  Domain d = Domain::rectangle(100, 100).with_rect_hole({40, 40}, {60, 60});
  Vec2 p = d.project_inside({50, 41});
  EXPECT_TRUE(d.contains(p));
  // Should exit through the nearest hole wall (y = 40).
  EXPECT_LT(p.y, 40.01);
}

TEST(Domain, ProjectInsideIdempotentForFeasible) {
  Domain d = Domain::rectangle(100, 100);
  const Vec2 p{12.5, 34.0};
  EXPECT_EQ(d.project_inside(p), p);
}

TEST(Domain, ClipCellInside) {
  Domain d = Domain::rectangle(100, 100);
  Ring cell = {{10, 10}, {30, 10}, {30, 30}, {10, 30}};
  ClippedRegion r = d.clip_cell(cell);
  ASSERT_FALSE(r.empty());
  EXPECT_NEAR(r.coverage_area(), 400.0, 1e-9);
}

TEST(Domain, ClipCellStraddlingBoundary) {
  Domain d = Domain::rectangle(100, 100);
  Ring cell = {{-10, -10}, {30, -10}, {30, 30}, {-10, 30}};
  ClippedRegion r = d.clip_cell(cell);
  ASSERT_FALSE(r.empty());
  EXPECT_NEAR(r.coverage_area(), 900.0, 1e-9);
}

TEST(Domain, ClipCellWithHoleOverlap) {
  Domain d = Domain::rectangle(100, 100).with_rect_hole({40, 40}, {60, 60});
  Ring cell = {{35, 35}, {65, 35}, {65, 65}, {35, 65}};
  ClippedRegion r = d.clip_cell(cell);
  ASSERT_FALSE(r.empty());
  // 30x30 cell minus the 20x20 hole.
  EXPECT_NEAR(r.coverage_area(), 900.0 - 400.0, 1e-9);
  EXPECT_EQ(r.hole_parts.size(), 1u);
}

TEST(Domain, ClipCellDisjoint) {
  Domain d = Domain::rectangle(100, 100);
  Ring cell = {{200, 200}, {210, 200}, {210, 210}, {200, 210}};
  EXPECT_TRUE(d.clip_cell(cell).empty());
}

TEST(Domain, SampleUniformStaysInside) {
  Domain d = Domain::lshape(100, 100).with_rect_hole({10, 10}, {20, 20});
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(d.contains(d.sample_uniform(rng)));
  }
}

}  // namespace
}  // namespace laacad::wsn
