#include <gtest/gtest.h>

#include "coverage/critical.hpp"
#include "coverage/grid_checker.hpp"
#include "laacad/engine.hpp"
#include "wsn/deployment.hpp"

namespace laacad::core {
namespace {

using geom::Vec2;

LaacadConfig quick_config(int k, double alpha = 1.0) {
  LaacadConfig cfg;
  cfg.k = k;
  cfg.alpha = alpha;
  cfg.epsilon = 0.5;
  cfg.max_rounds = 250;
  cfg.retain_history = true;  // several tests assert on the round record
  return cfg;
}

TEST(Engine, RejectsBadArguments) {
  wsn::Domain d = wsn::Domain::rectangle(100, 100);
  wsn::Network net(&d, {{10, 10}, {20, 20}}, 20.0);
  LaacadConfig cfg;
  cfg.k = 0;
  EXPECT_THROW(Engine(net, cfg), std::invalid_argument);
  cfg.k = 5;  // more than nodes
  EXPECT_THROW(Engine(net, cfg), std::invalid_argument);
  cfg.k = 1;
  cfg.alpha = 0.0;
  EXPECT_THROW(Engine(net, cfg), std::invalid_argument);
  cfg.alpha = 1.5;
  EXPECT_THROW(Engine(net, cfg), std::invalid_argument);
  cfg.alpha = 1.0;
  cfg.epsilon = 0.0;
  EXPECT_THROW(Engine(net, cfg), std::invalid_argument);
  cfg.epsilon = -1.0;
  EXPECT_THROW(Engine(net, cfg), std::invalid_argument);
  cfg.epsilon = 0.5;
  cfg.max_rounds = 0;
  EXPECT_THROW(Engine(net, cfg), std::invalid_argument);
  cfg.max_rounds = 400;
  cfg.num_threads = -2;
  EXPECT_THROW(Engine(net, cfg), std::invalid_argument);
  cfg.num_threads = 1;
  EXPECT_NO_THROW(Engine(net, cfg));
}

TEST(Engine, ValidationMessagesNameTheField) {
  wsn::Domain d = wsn::Domain::rectangle(100, 100);
  wsn::Network net(&d, {{10, 10}, {20, 20}}, 20.0);
  LaacadConfig cfg;
  cfg.epsilon = -0.5;
  try {
    Engine engine(net, cfg);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("epsilon"), std::string::npos)
        << e.what();
  }
}

TEST(Engine, BeginPhaseResumesAfterNetworkMutation) {
  // The scenario engine's contract: converge, mutate the network, re-arm,
  // and the engine redeploys the survivors with a fresh rounds allowance.
  wsn::Domain d = wsn::Domain::rectangle(200, 200);
  Rng rng(21);
  wsn::Network net(&d, wsn::deploy_uniform(d, 16, rng), 60.0);
  Engine engine(net, quick_config(2));
  RunResult first = engine.run();
  ASSERT_TRUE(first.converged);

  net.remove_node(3);
  net.remove_node(7);
  net.add_node({5.0, 5.0});
  engine.begin_phase();
  EXPECT_EQ(engine.rounds_executed(), 0);
  RunResult second = engine.run();
  EXPECT_TRUE(second.converged);
  EXPECT_GE(second.rounds, 1);  // the disruption forced actual redeployment

  const auto exact = cov::critical_point_coverage(d, cov::sensing_disks(net));
  EXPECT_GE(exact.min_depth, 2);
}

TEST(Engine, BeginPhaseRejectsNetworkBelowK) {
  wsn::Domain d = wsn::Domain::rectangle(100, 100);
  wsn::Network net(&d, {{10, 10}, {20, 20}, {30, 30}}, 20.0);
  Engine engine(net, quick_config(3));
  engine.run();
  net.remove_node(0);
  EXPECT_THROW(engine.begin_phase(), std::invalid_argument);
}

TEST(Engine, SingleNodeK1MovesToDomainChebyshevCenter) {
  wsn::Domain d = wsn::Domain::rectangle(100, 60);
  wsn::Network net(&d, {{5, 5}}, 20.0);
  Engine engine(net, quick_config(1));
  RunResult res = engine.run();
  EXPECT_TRUE(res.converged);
  // Chebyshev center of a rectangle is its center; circumradius is the
  // half-diagonal.
  EXPECT_NEAR(net.position(0).x, 50.0, 1.0);
  EXPECT_NEAR(net.position(0).y, 30.0, 1.0);
  EXPECT_NEAR(res.final_max_range, std::hypot(50.0, 30.0), 1.0);
}

TEST(Engine, ThreeNodesK3CoLocateAtCenter) {
  // The paper's motivating example: 3 nodes 3-covering an area co-locate.
  wsn::Domain d = wsn::Domain::rectangle(100, 100);
  wsn::Network net(&d, {{10, 10}, {90, 20}, {40, 80}}, 30.0);
  Engine engine(net, quick_config(3));
  RunResult res = engine.run();
  EXPECT_TRUE(res.converged);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(net.position(i).x, 50.0, 2.0);
    EXPECT_NEAR(net.position(i).y, 50.0, 2.0);
  }
  EXPECT_NEAR(res.final_max_range, std::hypot(50.0, 50.0), 2.0);
}

struct EngineCase {
  int k;
  int n;
  int seed;
};

class EngineConvergence : public ::testing::TestWithParam<EngineCase> {};

TEST_P(EngineConvergence, ConvergesAndKCovers) {
  const auto param = GetParam();
  wsn::Domain d = wsn::Domain::rectangle(300, 300);
  Rng rng(static_cast<std::uint64_t>(param.seed));
  wsn::Network net(&d, wsn::deploy_uniform(d, param.n, rng), 60.0);
  Engine engine(net, quick_config(param.k));
  RunResult res = engine.run();
  EXPECT_TRUE(res.converged) << "did not converge in 250 rounds";

  // Exact k-coverage of the whole domain at the assigned ranges.
  const auto exact =
      cov::critical_point_coverage(d, cov::sensing_disks(net));
  EXPECT_GE(exact.min_depth, param.k)
      << "witness at (" << exact.witness.x << ", " << exact.witness.y << ")";

  // Ranges are meaningful: max >= min > 0.
  EXPECT_GT(res.final_min_range, 0.0);
  EXPECT_GE(res.final_max_range, res.final_min_range);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineConvergence,
    ::testing::Values(EngineCase{1, 25, 1}, EngineCase{2, 30, 2},
                      EngineCase{3, 30, 3}, EngineCase{4, 36, 4},
                      EngineCase{2, 50, 5}, EngineCase{1, 40, 6}),
    [](const ::testing::TestParamInfo<EngineCase>& tpi) {
      return "k" + std::to_string(tpi.param.k) + "_n" +
             std::to_string(tpi.param.n) + "_s" +
             std::to_string(tpi.param.seed);
    });

TEST(Engine, MaxHatRadiusNonIncreasingForAlphaOne) {
  // Corollary of Proposition 4: R̂ is non-increasing along the iteration.
  wsn::Domain d = wsn::Domain::rectangle(300, 300);
  Rng rng(7);
  wsn::Network net(&d, wsn::deploy_uniform(d, 35, rng), 60.0);
  Engine engine(net, quick_config(2, 1.0));
  RunResult res = engine.run();
  ASSERT_GE(res.history.size(), 2u);
  for (std::size_t i = 1; i < res.history.size(); ++i) {
    EXPECT_LE(res.history[i].max_hat_radius,
              res.history[i - 1].max_hat_radius + 1e-6)
        << "round " << i;
  }
}

TEST(Engine, SmallAlphaConvergesSlowerButConverges) {
  wsn::Domain d = wsn::Domain::rectangle(200, 200);
  Rng rng(8);
  const auto init = wsn::deploy_uniform(d, 20, rng);

  wsn::Network fast(&d, init, 60.0);
  RunResult res_fast = Engine(fast, quick_config(2, 1.0)).run();

  wsn::Network slow(&d, init, 60.0);
  RunResult res_slow = Engine(slow, quick_config(2, 0.3)).run();

  EXPECT_TRUE(res_fast.converged);
  EXPECT_TRUE(res_slow.converged);
  EXPECT_GE(res_slow.rounds, res_fast.rounds);
  // Both land on deployments of comparable quality.
  EXPECT_NEAR(res_slow.final_max_range, res_fast.final_max_range,
              0.35 * res_fast.final_max_range);
}

TEST(Engine, CornerDeploymentExpandsOverArea) {
  wsn::Domain d = wsn::Domain::rectangle(400, 400);
  Rng rng(9);
  wsn::Network net(&d, wsn::deploy_corner(d, 30, rng), 80.0);
  // All nodes start in the corner 48x48 box.
  for (const auto& n : net.nodes()) {
    EXPECT_LE(n.pos.x, 48.1);
    EXPECT_LE(n.pos.y, 48.1);
  }
  Engine engine(net, quick_config(1));
  RunResult res = engine.run();
  EXPECT_TRUE(res.converged);
  // Spread: some node should end far from the corner.
  double max_reach = 0.0;
  for (const auto& n : net.nodes())
    max_reach = std::max(max_reach, n.pos.norm());
  EXPECT_GT(max_reach, 300.0);
  const auto exact = cov::critical_point_coverage(d, cov::sensing_disks(net));
  EXPECT_GE(exact.min_depth, 1);
}

TEST(Engine, LoadBalancedForK3) {
  // Sec. V-A: "the maximum and minimum sensing ranges are almost the same
  // for k > 2". Assert a loose version: min/max >= 0.5.
  wsn::Domain d = wsn::Domain::rectangle(300, 300);
  Rng rng(10);
  wsn::Network net(&d, wsn::deploy_uniform(d, 33, rng), 60.0);
  RunResult res = Engine(net, quick_config(3)).run();
  ASSERT_TRUE(res.converged);
  EXPECT_GT(res.final_min_range / res.final_max_range, 0.5);
  EXPECT_GT(res.load.fairness, 0.8);
}

TEST(Engine, ObstacleDomainConvergesAndCovers) {
  wsn::Domain d =
      wsn::Domain::rectangle(300, 300).with_rect_hole({120, 120}, {180, 180});
  Rng rng(11);
  wsn::Network net(&d, wsn::deploy_uniform(d, 30, rng), 60.0);
  RunResult res = Engine(net, quick_config(2)).run();
  EXPECT_TRUE(res.converged);
  // No node ended up inside the obstacle.
  for (const auto& n : net.nodes()) EXPECT_TRUE(d.contains(n.pos));
  const auto exact = cov::critical_point_coverage(d, cov::sensing_disks(net));
  EXPECT_GE(exact.min_depth, 2);
}

TEST(Engine, RegionOfContainsOwnNode) {
  wsn::Domain d = wsn::Domain::rectangle(200, 200);
  Rng rng(12);
  wsn::Network net(&d, wsn::deploy_uniform(d, 15, rng), 60.0);
  Engine engine(net, quick_config(2));
  engine.step();
  for (int i = 0; i < net.size(); ++i) {
    DominatingRegion region = engine.region_of(i);
    ASSERT_FALSE(region.empty());
    EXPECT_TRUE(region.contains(net.position(i), 1e-6)) << "node " << i;
  }
}

TEST(Engine, RegionAreasSumToKTimesDomain) {
  // Every point of A lies in exactly k dominating regions (its k nearest
  // nodes), so the areas sum to k |A|.
  wsn::Domain d = wsn::Domain::rectangle(200, 200);
  Rng rng(13);
  wsn::Network net(&d, wsn::deploy_uniform(d, 20, rng), 60.0);
  for (int k : {1, 2, 3}) {
    Engine engine(net, quick_config(k));
    double total = 0.0;
    for (int i = 0; i < net.size(); ++i) total += engine.region_of(i).area();
    EXPECT_NEAR(total, k * d.area(), 0.01 * d.area()) << "k=" << k;
  }
}

TEST(Engine, HistoryRecordsRounds) {
  wsn::Domain d = wsn::Domain::rectangle(200, 200);
  Rng rng(14);
  wsn::Network net(&d, wsn::deploy_uniform(d, 12, rng), 60.0);
  Engine engine(net, quick_config(1));
  RunResult res = engine.run();
  ASSERT_FALSE(res.history.empty());
  EXPECT_EQ(res.history.front().round, 1);
  EXPECT_EQ(res.history.back().round, res.rounds);
  // Last round has no movement (that is the convergence signal).
  EXPECT_EQ(res.history.back().moved, 0);
}

// ---------------------------------------------------------- providers ----

TEST(Engine, ExplicitGlobalProviderMatchesDefault) {
  wsn::Domain d = wsn::Domain::rectangle(200, 200);
  Rng rng(15);
  const auto initial = wsn::deploy_uniform(d, 15, rng);

  wsn::Network a(&d, initial, 60.0);
  RunResult ra = Engine(a, quick_config(2)).run();

  wsn::Network b(&d, initial, 60.0);
  LaacadConfig cfg = quick_config(2);
  cfg.provider = make_global_provider(cfg.adaptive);
  RunResult rb = Engine(b, cfg).run();

  ASSERT_EQ(ra.history.size(), rb.history.size());
  EXPECT_EQ(ra.final_max_range, rb.final_max_range);
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.position(i).x, b.position(i).x) << "node " << i;
    EXPECT_EQ(a.position(i).y, b.position(i).y) << "node " << i;
  }
}

// A stub provider — the interface is the test seam: hand every node the
// same fixed square, and Algorithm 1 must march all nodes toward that
// square's Chebyshev center regardless of any Voronoi machinery.
class StubSquareProvider final : public RegionProvider {
 public:
  explicit StubSquareProvider(geom::BBox box) : box_(box) {}

  void begin_round(wsn::Network&, int, std::uint64_t,
                   common::ThreadPool*) override {}

  RegionOutput compute(wsn::NodeId) const override {
    RegionOutput out;
    vor::OrderKCell cell;
    cell.gens = {0};
    cell.poly = geom::box_ring(box_);
    out.cells.push_back(std::move(cell));
    return out;
  }

  std::string_view name() const override { return "stub-square"; }

 private:
  geom::BBox box_;
};

TEST(Engine, StubProviderDrivesNodesToItsChebyshevCenter) {
  wsn::Domain d = wsn::Domain::rectangle(200, 200);
  wsn::Network net(&d, {{10, 10}, {190, 10}, {100, 190}}, 60.0);

  LaacadConfig cfg = quick_config(1);
  cfg.provider = std::make_shared<StubSquareProvider>(
      geom::BBox{{40, 40}, {80, 80}});
  Engine engine(net, cfg);
  RunResult res = engine.run();
  EXPECT_TRUE(res.converged);
  for (int i = 0; i < net.size(); ++i) {
    EXPECT_NEAR(net.position(i).x, 60.0, cfg.epsilon + 1e-9) << "node " << i;
    EXPECT_NEAR(net.position(i).y, 60.0, cfg.epsilon + 1e-9) << "node " << i;
  }
}

}  // namespace
}  // namespace laacad::core
