// Deeper end-to-end properties of the LAACAD engine: determinism, the
// clustered equilibrium of Fig. 5, localized/global agreement after full
// runs, and coverage under stress shapes.
#include <gtest/gtest.h>

#include <functional>
#include <numeric>

#include "coverage/critical.hpp"
#include "coverage/grid_checker.hpp"
#include "laacad/engine.hpp"
#include "wsn/deployment.hpp"

namespace laacad::core {
namespace {

using geom::Vec2;

std::size_t cluster_count(const std::vector<Vec2>& pts, double radius) {
  const int n = static_cast<int>(pts.size());
  std::vector<int> parent(static_cast<std::size_t>(n));
  std::iota(parent.begin(), parent.end(), 0);
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x)
      x = parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
    return x;
  };
  for (int a = 0; a < n; ++a)
    for (int b = a + 1; b < n; ++b)
      if (geom::dist(pts[static_cast<std::size_t>(a)],
                     pts[static_cast<std::size_t>(b)]) <= radius)
        parent[static_cast<std::size_t>(find(a))] = find(b);
  std::size_t count = 0;
  for (int a = 0; a < n; ++a)
    if (find(a) == a) ++count;
  return count;
}

LaacadConfig cfg_quick(int k) {
  LaacadConfig cfg;
  cfg.k = k;
  cfg.epsilon = 0.5;
  cfg.max_rounds = 250;
  return cfg;
}

TEST(EngineProperty, DeterministicGivenSeedAndStart) {
  wsn::Domain d = wsn::Domain::rectangle(300, 300);
  Rng rng(77);
  const auto init = wsn::deploy_uniform(d, 25, rng);

  wsn::Network a(&d, init, 60.0);
  RunResult ra = Engine(a, cfg_quick(2)).run();
  wsn::Network b(&d, init, 60.0);
  RunResult rb = Engine(b, cfg_quick(2)).run();

  EXPECT_EQ(ra.rounds, rb.rounds);
  EXPECT_DOUBLE_EQ(ra.final_max_range, rb.final_max_range);
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.position(i), b.position(i)) << "node " << i;
  }
}

TEST(EngineProperty, StackedStartStaysClusteredForK2) {
  // The paper's Fig.-5 "even clustering" equilibrium: start co-located in
  // pairs, and LAACAD keeps the pairs while balancing loads.
  wsn::Domain d = wsn::Domain::rectangle(400, 400);
  Rng rng(78);
  auto anchors = wsn::deploy_uniform(d, 16, rng);
  auto init = wsn::stacked(anchors, 2, rng, 1e-3);
  wsn::Network net(&d, init, 100.0);
  RunResult res = Engine(net, cfg_quick(2)).run();
  ASSERT_TRUE(res.converged);
  const auto clusters =
      cluster_count(net.positions(), 0.1 * res.final_max_range);
  EXPECT_NEAR(static_cast<double>(clusters), 16.0, 2.0);
  const auto exact = cov::critical_point_coverage(d, cov::sensing_disks(net));
  EXPECT_GE(exact.min_depth, 2);
}

TEST(EngineProperty, GlobalAndLocalizedAgreeOnFinalQuality) {
  wsn::Domain d = wsn::Domain::rectangle(300, 300);
  Rng rng(79);
  const auto init = wsn::deploy_uniform(d, 30, rng);

  wsn::Network g(&d, init, 90.0);
  RunResult rg = Engine(g, cfg_quick(2)).run();

  wsn::Network l(&d, init, 90.0);
  LaacadConfig lc = cfg_quick(2);
  lc.localized.max_hops = 8;
  lc.provider = make_localized_provider(lc.localized, lc.seed);
  RunResult rl = Engine(l, lc).run();

  EXPECT_TRUE(rg.converged);
  EXPECT_TRUE(rl.converged);
  // Same quality regime (both are local optima; allow modest slack).
  EXPECT_NEAR(rl.final_max_range, rg.final_max_range,
              0.2 * rg.final_max_range);
}

TEST(EngineProperty, LShapeDomainKCovers) {
  wsn::Domain d = wsn::Domain::lshape(300, 300);
  Rng rng(80);
  wsn::Network net(&d, wsn::deploy_uniform(d, 28, rng), 80.0);
  RunResult res = Engine(net, cfg_quick(2)).run();
  EXPECT_TRUE(res.converged);
  const auto exact = cov::critical_point_coverage(d, cov::sensing_disks(net));
  EXPECT_GE(exact.min_depth, 2)
      << "witness (" << exact.witness.x << "," << exact.witness.y << ")";
}

TEST(EngineProperty, CrossDomainWithHolesKCovers) {
  wsn::Domain d = wsn::Domain::cross(300, 300, 0.4)
                      .with_rect_hole({135, 40}, {165, 70});
  Rng rng(81);
  wsn::Network net(&d, wsn::deploy_uniform(d, 26, rng), 80.0);
  RunResult res = Engine(net, cfg_quick(1)).run();
  EXPECT_TRUE(res.converged);
  for (const auto& node : net.nodes()) EXPECT_TRUE(d.contains(node.pos));
  const auto exact = cov::critical_point_coverage(d, cov::sensing_disks(net));
  EXPECT_GE(exact.min_depth, 1);
}

TEST(EngineProperty, KEqualsNodeCountCoLocatesAtDomainChebyshev) {
  // k = N: every node must cover the whole area, so all nodes head to the
  // domain's Chebyshev center with circumradius = covering radius of A.
  wsn::Domain d = wsn::Domain::rectangle(120, 80);
  Rng rng(82);
  wsn::Network net(&d, wsn::deploy_uniform(d, 4, rng), 60.0);
  RunResult res = Engine(net, cfg_quick(4)).run();
  EXPECT_TRUE(res.converged);
  for (const auto& node : net.nodes()) {
    EXPECT_NEAR(node.pos.x, 60.0, 1.5);
    EXPECT_NEAR(node.pos.y, 40.0, 1.5);
  }
  EXPECT_NEAR(res.final_max_range, std::hypot(60.0, 40.0), 1.5);
}

TEST(EngineProperty, MeanDepthApproxKTimesDiskShare) {
  // Post-convergence sanity: mean coverage depth over the area is
  // Sum(pi r_i^2)/|A| >= k; with balanced loads it concentrates near the
  // total-load ratio.
  wsn::Domain d = wsn::Domain::rectangle(300, 300);
  Rng rng(83);
  wsn::Network net(&d, wsn::deploy_uniform(d, 30, rng), 80.0);
  Engine(net, cfg_quick(2)).run();
  const auto grid = cov::grid_coverage(d, cov::sensing_disks(net), 3.0);
  double disk_area = 0.0;
  for (const auto& node : net.nodes())
    disk_area += M_PI * node.sensing_range * node.sensing_range;
  EXPECT_GE(grid.mean_depth, 2.0);
  // Disk area over |A| bounds the mean depth from above (disks of boundary
  // nodes spill outside the domain) and should not exceed it wildly.
  EXPECT_LE(grid.mean_depth, disk_area / d.area() + 1e-9);
  EXPECT_GE(grid.mean_depth, 0.7 * disk_area / d.area());
}

TEST(EngineProperty, StepIsIdempotentAtFixedPoint) {
  // After convergence, one more step moves nobody.
  wsn::Domain d = wsn::Domain::rectangle(200, 200);
  Rng rng(84);
  wsn::Network net(&d, wsn::deploy_uniform(d, 15, rng), 70.0);
  Engine engine(net, cfg_quick(1));
  RunResult res = engine.run();
  ASSERT_TRUE(res.converged);
  const auto before = net.positions();
  RoundMetrics m = engine.step();
  EXPECT_EQ(m.moved, 0);
  for (int i = 0; i < net.size(); ++i)
    EXPECT_LT(geom::dist(before[static_cast<std::size_t>(i)],
                         net.position(i)),
              1.0);
}

}  // namespace
}  // namespace laacad::core
