// flatjson regression tests — the scanner both ends of every line format
// (heartbeats, serve protocol, bench reports) rely on. The cases that have
// bitten or nearly bitten:
//
//  * escaped quotes inside string values must not derail key location or
//    string extraction (an event spec like "pick=\"random\"" is a value,
//    not a key boundary);
//  * get_raw must slice nested objects/arrays by balanced braces while
//    suspending the count inside string bodies — braces and brackets in
//    strings are data.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/flatjson.hpp"

namespace laacad::flatjson {
namespace {

TEST(FlatJsonTest, EscapedQuotesInsideStringValues) {
  const std::string line =
      R"({"a":"say \"hi\"","b":"tab\there","after":7,"c":"back\\slash"})";
  std::string s;
  ASSERT_TRUE(get_string(line, "a", &s));
  EXPECT_EQ(s, "say \"hi\"");
  ASSERT_TRUE(get_string(line, "b", &s));
  EXPECT_EQ(s, "tab\there");
  ASSERT_TRUE(get_string(line, "c", &s));
  EXPECT_EQ(s, "back\\slash");
  // Keys after an escaped-quote value still resolve at top level.
  double n = 0.0;
  ASSERT_TRUE(get_number(line, "after", &n));
  EXPECT_EQ(n, 7.0);
}

TEST(FlatJsonTest, KeyTextInsideValueIsNotAKey) {
  // "x" appears inside two string values; only the real top-level key with
  // a following colon may match.
  const std::string line = R"({"msg":"\"x\": 1 is not a key","x":42})";
  double n = 0.0;
  ASSERT_TRUE(get_number(line, "x", &n));
  EXPECT_EQ(n, 42.0);
}

TEST(FlatJsonTest, NumberBoolAndNull) {
  const std::string line = R"({"f":-1.5e3,"t":true,"g":false,"v":null})";
  double n = 0.0;
  ASSERT_TRUE(get_number(line, "f", &n));
  EXPECT_EQ(n, -1500.0);
  ASSERT_TRUE(get_number(line, "v", &n));
  EXPECT_TRUE(std::isnan(n));
  bool b = false;
  ASSERT_TRUE(get_bool(line, "t", &b));
  EXPECT_TRUE(b);
  ASSERT_TRUE(get_bool(line, "g", &b));
  EXPECT_FALSE(b);
  EXPECT_FALSE(get_bool(line, "f", &b));
  EXPECT_FALSE(get_number(line, "missing", &n));
}

TEST(FlatJsonTest, GetRawScalars) {
  const std::string line = R"({"n":12.5,"s":"a \"b\" c","t":true,"z":null})";
  std::string raw;
  ASSERT_TRUE(get_raw(line, "n", &raw));
  EXPECT_EQ(raw, "12.5");
  ASSERT_TRUE(get_raw(line, "s", &raw));
  EXPECT_EQ(raw, R"("a \"b\" c")");  // quotes and escapes preserved
  ASSERT_TRUE(get_raw(line, "t", &raw));
  EXPECT_EQ(raw, "true");
  ASSERT_TRUE(get_raw(line, "z", &raw));
  EXPECT_EQ(raw, "null");
}

TEST(FlatJsonTest, GetRawNestedStructures) {
  const std::string line =
      R"({"serve":{"age":0.5,"pub":{"p50":1,"tags":["a","b"]}},)"
      R"("tricky":{"s":"brace } in \"string\"","arr":[1,{"x":2}]},"tail":3})";
  std::string raw;
  ASSERT_TRUE(get_raw(line, "serve", &raw));
  EXPECT_EQ(raw, R"({"age":0.5,"pub":{"p50":1,"tags":["a","b"]}})");
  // Braces inside string bodies must not close the slice early.
  ASSERT_TRUE(get_raw(line, "tricky", &raw));
  EXPECT_EQ(raw, R"({"s":"brace } in \"string\"","arr":[1,{"x":2}]})");
  // Scanner contract, not parser contract: the first "key": occurrence
  // outside any string wins, nested or not — callers pick keys that are
  // unique at top level (as the serve stats / bench report formats do).
  ASSERT_TRUE(get_raw(line, "arr", &raw));
  EXPECT_EQ(raw, R"([1,{"x":2}])");
  ASSERT_TRUE(get_raw(line, "tail", &raw));
  EXPECT_EQ(raw, "3");

  // Arrays slice the same way.
  const std::string arr_line = R"({"h":[[0,1],[700,3]],"k":9})";
  ASSERT_TRUE(get_raw(arr_line, "h", &raw));
  EXPECT_EQ(raw, "[[0,1],[700,3]]");

  // Unterminated value: refused, not sliced to end-of-line.
  EXPECT_FALSE(get_raw(R"({"open":{"a":1)", "open", &raw));
}

}  // namespace
}  // namespace laacad::flatjson
