// Cross-cutting randomized property sweeps over the geometry substrate —
// the invariants every higher layer silently relies on.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "geometry/circle.hpp"
#include "geometry/convex.hpp"
#include "geometry/polygon.hpp"
#include "geometry/welzl.hpp"

namespace laacad::geom {
namespace {

Ring random_convex(laacad::Rng& rng, int n, double scale) {
  std::vector<Vec2> pts;
  for (int i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0, scale), rng.uniform(0, scale)});
  return convex_hull(pts);
}

class GeomSweep : public ::testing::TestWithParam<int> {
 protected:
  laacad::Rng rng_{static_cast<std::uint64_t>(2000 + GetParam())};
};

TEST_P(GeomSweep, ClipNeverGrowsAreaAndStaysInside) {
  Ring poly = random_convex(rng_, 12, 100.0);
  if (poly.size() < 3) GTEST_SKIP();
  const double a0 = area(poly);
  for (int t = 0; t < 10; ++t) {
    Vec2 p{rng_.uniform(0, 100), rng_.uniform(0, 100)};
    Vec2 q{rng_.uniform(0, 100), rng_.uniform(0, 100)};
    if (almost_equal(p, q)) continue;
    const HalfPlane hp = bisector_halfplane(p, q);
    Ring clipped = clip_ring(poly, hp);
    EXPECT_LE(area(clipped), a0 + 1e-9);
    for (Vec2 v : clipped) EXPECT_LE(hp.signed_dist(v), 1e-6);
  }
}

TEST_P(GeomSweep, ClipAreasPartitionExactly) {
  // Clipping by hp and by its complement splits the area exactly.
  Ring poly = random_convex(rng_, 10, 50.0);
  if (poly.size() < 3) GTEST_SKIP();
  Vec2 p{rng_.uniform(0, 50), rng_.uniform(0, 50)};
  Vec2 q{rng_.uniform(0, 50), rng_.uniform(0, 50)};
  if (almost_equal(p, q)) GTEST_SKIP();
  const HalfPlane hp = bisector_halfplane(p, q);
  const HalfPlane opposite = bisector_halfplane(q, p);
  const double a = area(clip_ring(poly, hp));
  const double b = area(clip_ring(poly, opposite));
  EXPECT_NEAR(a + b, area(poly), 1e-6);
}

TEST_P(GeomSweep, SutherlandHodgmanCommutesOnConvex) {
  Ring a = random_convex(rng_, 8, 80.0);
  Ring b = random_convex(rng_, 8, 80.0);
  if (a.size() < 3 || b.size() < 3) GTEST_SKIP();
  const double ab = area(sutherland_hodgman(a, b));
  const double ba = area(sutherland_hodgman(b, a));
  EXPECT_NEAR(ab, ba, 1e-6 * (1.0 + ab));
  EXPECT_LE(ab, std::min(area(a), area(b)) + 1e-6);
}

TEST_P(GeomSweep, WelzlRadiusNeverBelowPairwiseHalfDistance) {
  std::vector<Vec2> pts;
  const int n = 4 + rng_.uniform_int(0, 30);
  for (int i = 0; i < n; ++i)
    pts.push_back({rng_.uniform(-50, 50), rng_.uniform(-50, 50)});
  const Circle mec = min_enclosing_circle(pts);
  double maxpair = 0.0;
  for (std::size_t i = 0; i < pts.size(); ++i)
    for (std::size_t j = i + 1; j < pts.size(); ++j)
      maxpair = std::max(maxpair, dist(pts[i], pts[j]));
  EXPECT_GE(mec.radius, maxpair / 2.0 - 1e-6);
  EXPECT_LE(mec.radius, maxpair + 1e-6);  // crude upper bound
}

TEST_P(GeomSweep, CentroidInsideConvexPolygon) {
  Ring poly = random_convex(rng_, 9, 60.0);
  if (poly.size() < 3) GTEST_SKIP();
  EXPECT_TRUE(contains_point(poly, centroid(poly), 1e-6));
}

TEST_P(GeomSweep, ProjectToBoundaryIsOnBoundary) {
  Ring poly = random_convex(rng_, 7, 60.0);
  if (poly.size() < 3) GTEST_SKIP();
  for (int t = 0; t < 10; ++t) {
    Vec2 p{rng_.uniform(-30, 90), rng_.uniform(-30, 90)};
    const Vec2 proj = project_to_boundary(poly, p);
    EXPECT_NEAR(dist_to_boundary(poly, proj), 0.0, 1e-9);
    // Projection is the nearest boundary point.
    EXPECT_NEAR(dist(p, proj), dist_to_boundary(poly, p), 1e-9);
  }
}

TEST_P(GeomSweep, CircleCircleIntersectionsOnBothCircles) {
  for (int t = 0; t < 10; ++t) {
    Circle a{{rng_.uniform(0, 20), rng_.uniform(0, 20)},
             rng_.uniform(1, 10)};
    Circle b{{rng_.uniform(0, 20), rng_.uniform(0, 20)},
             rng_.uniform(1, 10)};
    for (Vec2 p : circle_circle_intersections(a, b)) {
      EXPECT_NEAR(dist(p, a.center), a.radius, 1e-6);
      EXPECT_NEAR(dist(p, b.center), b.radius, 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeomSweep, ::testing::Range(0, 12));

}  // namespace
}  // namespace laacad::geom
