#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <sstream>

#include "common/json_writer.hpp"

namespace laacad {
namespace {

std::string compact(const std::function<void(JsonWriter&)>& build) {
  std::ostringstream out;
  JsonWriter w(out, 0);
  build(w);
  return out.str();
}

TEST(JsonWriter, EmptyObjectAndArray) {
  EXPECT_EQ(compact([](JsonWriter& w) { w.begin_object().end_object(); }),
            "{}");
  EXPECT_EQ(compact([](JsonWriter& w) { w.begin_array().end_array(); }), "[]");
}

TEST(JsonWriter, ObjectWithScalars) {
  const std::string json = compact([](JsonWriter& w) {
    w.begin_object();
    w.kv("s", "hi");
    w.kv("i", 42);
    w.kv("d", 1.5);
    w.kv("b", true);
    w.key("n").null();
    w.end_object();
  });
  EXPECT_EQ(json, R"({"s":"hi","i":42,"d":1.5,"b":true,"n":null})");
}

TEST(JsonWriter, NestedStructures) {
  const std::string json = compact([](JsonWriter& w) {
    w.begin_object();
    w.key("rows").begin_array();
    w.begin_object().kv("x", 1).end_object();
    w.begin_object().kv("x", 2).end_object();
    w.end_array();
    w.end_object();
  });
  EXPECT_EQ(json, R"({"rows":[{"x":1},{"x":2}]})");
}

TEST(JsonWriter, EscapesStrings) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  // Escaping applies to keys and values alike.
  const std::string json = compact([](JsonWriter& w) {
    w.begin_object().kv("a,b\"c", "x\ny").end_object();
  });
  EXPECT_EQ(json, "{\"a,b\\\"c\":\"x\\ny\"}");
}

TEST(JsonWriter, NumbersRoundTripShortest) {
  EXPECT_EQ(JsonWriter::number_to_string(0.0), "0");
  EXPECT_EQ(JsonWriter::number_to_string(300.0), "300");
  EXPECT_EQ(JsonWriter::number_to_string(2.0e6), "2000000");
  EXPECT_EQ(JsonWriter::number_to_string(1.5), "1.5");
  EXPECT_EQ(JsonWriter::number_to_string(-0.25), "-0.25");
  // Shortest representation that parses back to the exact double.
  const double v = 0.1 + 0.2;
  EXPECT_EQ(std::stod(JsonWriter::number_to_string(v)), v);
  const double tiny = 1.2345678901234567e-12;
  EXPECT_EQ(std::stod(JsonWriter::number_to_string(tiny)), tiny);
}

TEST(JsonWriter, NonFiniteSerializesAsNull) {
  EXPECT_EQ(JsonWriter::number_to_string(
                std::numeric_limits<double>::quiet_NaN()),
            "null");
  EXPECT_EQ(JsonWriter::number_to_string(
                std::numeric_limits<double>::infinity()),
            "null");
  const std::string json = compact([](JsonWriter& w) {
    w.begin_object().kv("bad", std::nan("")).end_object();
  });
  EXPECT_EQ(json, R"({"bad":null})");
}

TEST(JsonWriter, IndentedOutputIsStable) {
  std::ostringstream out;
  JsonWriter w(out, 2);
  w.begin_object();
  w.kv("a", 1);
  w.key("b").begin_array().value(2).value(3).end_array();
  w.end_object();
  EXPECT_EQ(out.str(),
            "{\n  \"a\": 1,\n  \"b\": [\n    2,\n    3\n  ]\n}");
}

TEST(JsonWriter, MisuseThrows) {
  std::ostringstream out;
  {
    JsonWriter w(out, 0);
    w.begin_object();
    EXPECT_THROW(w.value(1), std::logic_error);  // value without key
  }
  {
    JsonWriter w(out, 0);
    w.begin_array();
    EXPECT_THROW(w.key("k"), std::logic_error);  // key inside array
    EXPECT_THROW(w.end_object(), std::logic_error);
  }
  {
    JsonWriter w(out, 0);
    w.value(1);  // complete scalar document
    EXPECT_THROW(w.value(2), std::logic_error);
  }
}

}  // namespace
}  // namespace laacad
