// laacad_lint: every rule gets a must-flag and a must-pass fixture, the
// pragma grammar round-trips (justified escape suppresses exactly one
// finding; missing reason / unknown rule / stale pragma are findings
// themselves), the policy resolves prefixes the documented way, and the
// include graph decides where unordered-iter applies. Fixtures are
// in-memory sources fed through Linter::add_file — the same code path
// the CLI uses after loading from disk.
#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "lint/lexer.hpp"
#include "lint/linter.hpp"
#include "lint/policy.hpp"
#include "lint/rules.hpp"

namespace lint = laacad::lint;

namespace {

/// Lint one fixture under the default policy.
lint::LintResult lint_source(const std::string& rel_path,
                             const std::string& source) {
  lint::Linter linter{lint::Policy{}};
  linter.add_file(rel_path, source);
  return linter.run();
}

lint::Policy parse_policy(const std::string& text) {
  std::istringstream in(text);
  return lint::Policy::parse(in);
}

bool has_finding(const lint::LintResult& r, const std::string& rule,
                 int line) {
  return std::any_of(r.findings.begin(), r.findings.end(),
                     [&](const lint::Finding& f) {
                       return f.rule == rule && f.line == line;
                     });
}

int count_rule(const lint::LintResult& r, const std::string& rule) {
  return static_cast<int>(
      std::count_if(r.findings.begin(), r.findings.end(),
                    [&](const lint::Finding& f) { return f.rule == rule; }));
}

}  // namespace

// ----------------------------------------------------------------- lexer --

TEST(LintLexer, BannedNamesInCommentsAndStringsAreNotIdentifiers) {
  const auto r = lint_source("a.cpp",
                             "// system_clock in a comment\n"
                             "/* steady_clock\n   rand() */\n"
                             "const char* s = \"random_device\";\n"
                             "const char* r = R\"(getenv(\"HOME\"))\";\n");
  EXPECT_TRUE(r.clean()) << r.findings.size();
}

TEST(LintLexer, TracksLinesAcrossMultilineConstructs) {
  const auto r = lint_source("a.cpp",
                             "/* line 1\n line 2\n line 3 */\n"
                             "auto x = std::chrono::system_clock::now();\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].line, 4);
  EXPECT_EQ(r.findings[0].rule, "wall-clock");
}

// ----------------------------------------------------------------- rules --

TEST(LintRules, WallClockFlagsClockTypesAndTimeCalls) {
  const auto r = lint_source("a.cpp",
                             "auto a = std::chrono::steady_clock::now();\n"
                             "auto b = std::chrono::system_clock::now();\n"
                             "std::time_t t = std::time(nullptr);\n");
  EXPECT_TRUE(has_finding(r, "wall-clock", 1));
  EXPECT_TRUE(has_finding(r, "wall-clock", 2));
  EXPECT_TRUE(has_finding(r, "wall-clock", 3));
}

TEST(LintRules, WallClockPassesTimeAsPlainIdentifier) {
  // `time` only counts followed by '(' — members and variables named
  // time, and time_since_epoch(), are fine.
  const auto r = lint_source("a.cpp",
                             "double time = 0.0;\n"
                             "double t = dur.time_since_epoch().count();\n"
                             "row.time = time + 1;\n");
  EXPECT_TRUE(r.clean());
}

TEST(LintRules, AmbientRngFlagsRandFamily) {
  const auto r = lint_source("a.cpp",
                             "int a = rand();\n"
                             "std::random_device rd;\n"
                             "srand(42);\n");
  EXPECT_EQ(count_rule(r, "ambient-rng"), 3);
}

TEST(LintRules, AmbientRngPassesSeededRngAndRandomHeaderNames) {
  const auto r = lint_source("a.cpp",
                             "common::Rng rng(seed);\n"
                             "std::mt19937_64 gen(seed);\n"
                             "int randomized = rng.next_int(4);\n");
  EXPECT_TRUE(r.clean());
}

TEST(LintRules, AmbientEnvFlagsGetenvAndEnvWriters) {
  const auto r = lint_source("a.cpp",
                             "const char* v = std::getenv(\"X\");\n"
                             "setenv(\"X\", \"1\", 1);\n");
  EXPECT_EQ(count_rule(r, "ambient-env"), 2);
}

TEST(LintRules, FloatArithIsPolicyOptIn) {
  const std::string source = "float f = 1.5f;\ndouble d = 1.5;\n";
  // Default policy: float-arith not active anywhere.
  EXPECT_TRUE(lint_source("a.cpp", source).clean());

  lint::Linter linter{parse_policy("extra geometry/ float-arith\n")};
  linter.add_file("geometry/a.cpp", source);
  const auto r = linter.run();
  // Line 1 carries both the type and the literal finding; the double on
  // line 2 is untouched.
  EXPECT_EQ(count_rule(r, "float-arith"), 2);
  EXPECT_TRUE(has_finding(r, "float-arith", 1));
  EXPECT_FALSE(has_finding(r, "float-arith", 2));
}

TEST(LintRules, FloatArithIgnoresNonFloatSuffixForms) {
  lint::Linter linter{parse_policy("extra geometry/ float-arith\n")};
  linter.add_file("geometry/a.cpp",
                  "auto a = 0xfff;\n"         // hex digits ending in f
                  "auto b = 15.0;\n"          // plain double
                  "auto c = 10f;\n"           // not a float literal form
                  "auto d = buf;\n");         // identifier ending in f
  EXPECT_TRUE(linter.run().clean());
}

TEST(LintRules, PragmaOnceRequiredInHeadersOnly) {
  EXPECT_TRUE(has_finding(lint_source("a.hpp", "int x;\n"), "pragma-once", 1));
  EXPECT_TRUE(lint_source("a.cpp", "int x;\n").clean());
  EXPECT_TRUE(
      lint_source("a.hpp", "// doc\n#pragma once\nint x;\n").clean());
}

// -------------------------------------------------------- unordered-iter --

namespace {

/// A TU that reaches the JSON writer and iterates an unordered_map.
const char* kIteratingSource =
    "#include \"common/json_writer.hpp\"\n"
    "std::unordered_map<std::string, int> counts;\n"
    "void dump() {\n"
    "  for (const auto& [k, v] : counts) emit(k, v);\n"
    "  auto it = counts.begin();\n"
    "}\n";

}  // namespace

TEST(LintUnorderedIter, FlagsIterationOnlyInWriterTaintedTus) {
  // Same source, no json_writer include: lookup and iteration both pass.
  EXPECT_TRUE(
      lint_source("a.cpp",
                  "std::unordered_map<std::string, int> counts;\n"
                  "void dump() {\n"
                  "  for (const auto& [k, v] : counts) emit(k, v);\n"
                  "}\n")
          .clean());

  lint::Linter linter{lint::Policy{}};
  linter.add_file("common/json_writer.hpp", "#pragma once\nstruct W {};\n");
  linter.add_file("a.cpp", kIteratingSource);
  const auto r = linter.run();
  EXPECT_TRUE(has_finding(r, "unordered-iter", 4));  // range-for
  EXPECT_TRUE(has_finding(r, "unordered-iter", 5));  // .begin()
  EXPECT_EQ(count_rule(r, "unordered-iter"), 2);
}

TEST(LintUnorderedIter, LookupIsNotIteration) {
  lint::Linter linter{lint::Policy{}};
  linter.add_file("common/json_writer.hpp", "#pragma once\nstruct W {};\n");
  linter.add_file("a.cpp",
                  "#include \"common/json_writer.hpp\"\n"
                  "std::unordered_map<std::string, int> index;\n"
                  "int get(const std::string& k) {\n"
                  "  auto it = index.find(k);\n"
                  "  return it == index.end() ? index.at(k) : it->second;\n"
                  "}\n");
  // find/at/emplace are fine, and `it == index.end()` is the find
  // sentinel idiom, not iteration.
  EXPECT_TRUE(linter.run().clean());
}

TEST(LintUnorderedIter, TaintFlowsThroughTheIncludeGraph) {
  // helper.hpp iterates; it is clean alone but tainted once any TU
  // compiles it together with the manifest codec.
  lint::Linter clean{lint::Policy{}};
  clean.add_file("campaign/manifest.hpp", "#pragma once\nstruct M {};\n");
  clean.add_file("x/helper.hpp",
                 "#pragma once\n"
                 "std::unordered_set<int> pending;\n"
                 "inline void drain() { for (int v : pending) use(v); }\n");
  EXPECT_TRUE(clean.run().clean());

  lint::Linter tainted{lint::Policy{}};
  tainted.add_file("campaign/manifest.hpp", "#pragma once\nstruct M {};\n");
  tainted.add_file("x/helper.hpp",
                   "#pragma once\n"
                   "std::unordered_set<int> pending;\n"
                   "inline void drain() { for (int v : pending) use(v); }\n");
  tainted.add_file("x/writer.cpp",
                   "#include \"x/helper.hpp\"\n"
                   "#include \"campaign/manifest.hpp\"\n");
  const auto r = tainted.run();
  ASSERT_EQ(count_rule(r, "unordered-iter"), 1);
  EXPECT_EQ(r.findings[0].file, "x/helper.hpp");
  EXPECT_NE(r.findings[0].message.find("via x/writer.cpp"),
            std::string::npos);
}

// ---------------------------------------------------------------- pragmas --

TEST(LintPragmas, TrailingAndStandaloneEscapesSuppressAndAreReported) {
  const auto r = lint_source(
      "a.cpp",
      "auto a = std::chrono::steady_clock::now();  "
      "// lint:allow(wall-clock): local profiling sink, never serialized\n"
      "// lint:allow(ambient-rng): fixture needs a true entropy probe\n"
      "\n"
      "std::random_device rd;\n");
  EXPECT_TRUE(r.clean());
  ASSERT_EQ(r.suppressions.size(), 2u);
  EXPECT_EQ(r.suppressions[0].rule, "wall-clock");
  EXPECT_EQ(r.suppressions[0].reason,
            "local profiling sink, never serialized");
  EXPECT_EQ(r.suppressions[1].rule, "ambient-rng");
  EXPECT_EQ(r.suppressions[1].line, 4);  // skipped the blank line
}

TEST(LintPragmas, EscapeOnlyCoversItsOwnRuleAndLine) {
  const auto r = lint_source(
      "a.cpp",
      "// lint:allow(wall-clock): only the clock is sanctioned\n"
      "auto a = std::chrono::steady_clock::now(); int b = rand();\n"
      "auto c = std::chrono::steady_clock::now();\n");
  EXPECT_EQ(count_rule(r, "wall-clock"), 1);  // line 3 still flagged
  EXPECT_TRUE(has_finding(r, "wall-clock", 3));
  EXPECT_TRUE(has_finding(r, "ambient-rng", 2));  // different rule
  EXPECT_EQ(r.suppressions.size(), 1u);
}

TEST(LintPragmas, MissingReasonIsItselfAFinding) {
  const auto r = lint_source(
      "a.cpp",
      "auto a = std::chrono::steady_clock::now();  "
      "// lint:allow(wall-clock):\n");
  EXPECT_TRUE(has_finding(r, "lint-pragma", 1));
  EXPECT_TRUE(has_finding(r, "wall-clock", 1));  // not suppressed
}

TEST(LintPragmas, UnknownRuleIsItselfAFinding) {
  const auto r =
      lint_source("a.cpp", "// lint:allow(no-such-rule): because\nint x;\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "lint-pragma");
}

TEST(LintPragmas, StalePragmaIsItselfAFinding) {
  const auto r = lint_source(
      "a.cpp", "// lint:allow(wall-clock): nothing here needs it\nint x;\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "lint-pragma");
  EXPECT_NE(r.findings[0].message.find("unused"), std::string::npos);
}

TEST(LintPragmas, ProseMentioningTheGrammarIsNotAnEscape) {
  const auto r = lint_source(
      "a.cpp",
      "// Escapes are written as `lint:allow(<rule>): <reason>` — see\n"
      "// rules.hpp for the grammar.\n"
      "int x;\n");
  EXPECT_TRUE(r.clean());
}

// ----------------------------------------------------------------- policy --

TEST(LintPolicy, AllowAndExtraResolveByPrefix) {
  const auto p = parse_policy(
      "extra geometry/ float-arith\n"
      "allow obs/ wall-clock\n"
      "allow serve/latency. wall-clock\n");
  auto has = [](const std::vector<std::string>& rules, const char* r) {
    return std::find(rules.begin(), rules.end(), r) != rules.end();
  };
  EXPECT_TRUE(has(p.rules_for("geometry/vec2.cpp"), "float-arith"));
  EXPECT_FALSE(has(p.rules_for("wsn/network.cpp"), "float-arith"));
  EXPECT_FALSE(has(p.rules_for("obs/trace.cpp"), "wall-clock"));
  EXPECT_TRUE(has(p.rules_for("serve/service.cpp"), "wall-clock"));
  EXPECT_FALSE(has(p.rules_for("serve/latency.cpp"), "wall-clock"));
  EXPECT_FALSE(has(p.rules_for("serve/latency.hpp"), "wall-clock"));
}

TEST(LintPolicy, BaseDirectiveReplacesTheDefaultSet) {
  const auto p = parse_policy("base pragma-once\n");
  EXPECT_EQ(p.rules_for("any/file.cpp"),
            std::vector<std::string>{"pragma-once"});
}

TEST(LintPolicy, RejectsUnknownRulesAndDirectives) {
  EXPECT_THROW(parse_policy("extra geometry/ no-such-rule\n"),
               std::runtime_error);
  EXPECT_THROW(parse_policy("frobnicate x y\n"), std::runtime_error);
  EXPECT_THROW(parse_policy("allow geometry/\n"), std::runtime_error);
}

TEST(LintPolicy, PolicyAllowsNeedNoPragma) {
  lint::Linter linter{parse_policy("allow obs/ wall-clock\n")};
  linter.add_file("obs/timer.cpp",
                  "auto t = std::chrono::steady_clock::now();\n");
  const auto r = linter.run();
  EXPECT_TRUE(r.clean());
  EXPECT_TRUE(r.suppressions.empty());  // policy exemptions are silent
}

// ------------------------------------------------------------------ report --

TEST(LintReport, FormatsFindingsAndSummary) {
  const auto r = lint_source("a.cpp", "int x = rand();\n");
  std::ostringstream out;
  lint::write_report(out, r);
  EXPECT_NE(out.str().find("a.cpp:1 ambient-rng"), std::string::npos);
  EXPECT_NE(out.str().find("1 file"), std::string::npos);
  EXPECT_NE(out.str().find("1 finding"), std::string::npos);
}
