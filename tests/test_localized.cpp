#include <gtest/gtest.h>

#include "coverage/critical.hpp"
#include "coverage/grid_checker.hpp"
#include "laacad/engine.hpp"
#include "laacad/localized.hpp"
#include "voronoi/adaptive.hpp"
#include "voronoi/sites.hpp"
#include "wsn/deployment.hpp"

namespace laacad::core {
namespace {

using geom::Vec2;

double cells_area(const std::vector<vor::OrderKCell>& cells) {
  double a = 0.0;
  for (const auto& c : cells) a += c.area();
  return a;
}

TEST(Localized, InteriorNodeMatchesGlobalRegion) {
  // Regular-ish dense field: the localized region of an interior node must
  // equal the exact global region (Lemma 1 / Algorithm 2 equivalence).
  wsn::Domain d = wsn::Domain::rectangle(200, 200);
  Rng rng(61);
  wsn::Network net(&d, wsn::deploy_uniform(d, 120, rng), 30.0);
  const wsn::CommModel comm(net);
  ASSERT_TRUE(comm.connected());

  auto sites = vor::separate_sites(net.positions());
  const wsn::SpatialGrid grid(sites, 30.0);

  // Interior node: nearest to the center.
  const int i = grid.k_nearest({100, 100}, 1)[0];
  for (int k : {1, 2, 3}) {
    LocalizedConfig cfg;
    cfg.max_hops = 10;
    wsn::BoundaryInfo binfo;  // interior: not a boundary node
    Rng noise(1);
    auto local = localized_region(comm, i, k, binfo, cfg, nullptr, noise);
    EXPECT_FALSE(local.capped);

    auto global = vor::compute_dominating_region(sites, grid, i, k, d.bbox());
    // Compare region areas after clipping both to the domain.
    DominatingRegion lr(local.cells, d), gr(global.cells, d);
    ASSERT_FALSE(lr.empty());
    EXPECT_NEAR(lr.area(), gr.area(), 0.01 * gr.area() + 1e-6) << "k=" << k;
  }
}

TEST(Localized, HopsGrowWithK) {
  // Fig. 2's qualitative claim: higher coverage order needs a wider ring.
  wsn::Domain d = wsn::Domain::rectangle(200, 200);
  auto pts = wsn::triangular_lattice(d, 20.0);
  wsn::Network net(&d, pts, 22.0);
  const wsn::CommModel comm(net);

  // Center-most node.
  int best = 0;
  double bd = 1e18;
  for (int i = 0; i < net.size(); ++i) {
    const double dd = geom::dist(net.position(i), {100, 100});
    if (dd < bd) {
      bd = dd;
      best = i;
    }
  }
  LocalizedConfig cfg;
  cfg.max_hops = 12;
  wsn::BoundaryInfo binfo;
  Rng noise(2);
  int prev_hops = 0;
  for (int k = 1; k <= 6; ++k) {
    auto res = localized_region(comm, best, k, binfo, cfg, nullptr, noise);
    EXPECT_GE(res.hops, prev_hops) << "k=" << k;
    prev_hops = res.hops;
  }
  EXPECT_GE(prev_hops, 2);  // k=6 requires multi-hop information
}

TEST(Localized, MessageAccountingAccumulates) {
  wsn::Domain d = wsn::Domain::rectangle(100, 100);
  Rng rng(62);
  wsn::Network net(&d, wsn::deploy_uniform(d, 40, rng), 25.0);
  const wsn::CommModel comm(net);
  LocalizedConfig cfg;
  wsn::CommStats stats;
  wsn::BoundaryInfo binfo;
  Rng noise(3);
  auto res = localized_region(comm, 0, 2, binfo, cfg, &stats, noise);
  EXPECT_FALSE(res.cells.empty());
  EXPECT_GE(stats.gather_requests, 1u);
  EXPECT_GE(stats.node_reports, 1u);
}

TEST(Localized, CappedBoundaryNodeRegionBoundedByRing) {
  // A corner-clustered deployment: boundary nodes hit the hop cap and the
  // searching ring bounds their region.
  wsn::Domain d = wsn::Domain::rectangle(1000, 1000);
  Rng rng(63);
  wsn::Network net(&d, wsn::deploy_corner(d, 40, rng), 40.0);
  const wsn::CommModel comm(net);
  LocalizedConfig cfg;
  cfg.max_hops = 3;
  wsn::BoundaryInfo binfo;
  binfo.network_boundary = true;
  Rng noise(4);
  // Pick the node farthest from the origin: on the cluster edge.
  int edge = 0;
  double bd = -1.0;
  for (int i = 0; i < net.size(); ++i) {
    const double dd = net.position(i).norm();
    if (dd > bd) {
      bd = dd;
      edge = i;
    }
  }
  auto res = localized_region(comm, edge, 1, binfo, cfg, nullptr, noise);
  // The ring stops either by the hop cap or by the restricted arc check
  // (Fig. 3); both ways the searching ring bounds the region.
  EXPECT_LE(res.hops, cfg.max_hops);
  const double ring = res.rho / 2.0 + 1.0;
  for (const auto& c : res.cells)
    for (Vec2 v : c.poly)
      EXPECT_LE(geom::dist(v, net.position(edge)), ring * 1.05);
}

TEST(Localized, EngineLocalizedBackendConvergesAndCovers) {
  // Full Algorithm 1 + Algorithm 2 stack on a connected uniform network.
  wsn::Domain d = wsn::Domain::rectangle(200, 200);
  Rng rng(64);
  wsn::Network net(&d, wsn::deploy_uniform(d, 40, rng), 60.0);
  LaacadConfig cfg;
  cfg.k = 2;
  cfg.alpha = 0.8;
  cfg.epsilon = 1.0;
  cfg.max_rounds = 200;
  cfg.localized.max_hops = 8;
  cfg.retain_history = true;  // the comm assertion reads the first round
  cfg.provider = make_localized_provider(cfg.localized, cfg.seed);
  Engine engine(net, cfg);
  RunResult res = engine.run();
  EXPECT_TRUE(res.converged);
  const auto exact = cov::critical_point_coverage(d, cov::sensing_disks(net));
  EXPECT_GE(exact.min_depth, 2)
      << "witness at (" << exact.witness.x << ", " << exact.witness.y << ")";
  // Message accounting flowed into the round metrics.
  EXPECT_GT(res.history.front().comm.gather_requests, 0u);
}

TEST(Localized, RobustToMildRangingNoise) {
  wsn::Domain d = wsn::Domain::rectangle(200, 200);
  Rng rng(65);
  wsn::Network net(&d, wsn::deploy_uniform(d, 35, rng), 60.0);
  LaacadConfig cfg;
  cfg.k = 1;
  cfg.epsilon = 1.0;
  cfg.max_rounds = 200;
  cfg.localized.frame.range_noise = 0.02;  // 2% ranging error
  cfg.provider = make_localized_provider(cfg.localized, cfg.seed);
  Engine engine(net, cfg);
  RunResult res = engine.run();
  // Noisy localization distorts the computed regions, so exact coverage can
  // leak slightly at region seams; require near-complete coverage instead.
  (void)res;
  const auto grid = cov::grid_coverage(d, cov::sensing_disks(net), 1.0);
  EXPECT_GE(grid.fraction_at_least(1), 0.98);
}

TEST(Localized, FewerThanKNeighborsOwnsWholeRing) {
  // Two isolated nodes, k = 3: fewer than k sites in reach, so the region
  // defaults to the reachable window.
  wsn::Domain d = wsn::Domain::rectangle(100, 100);
  wsn::Network net(&d, {{50, 50}, {52, 50}}, 10.0);
  const wsn::CommModel comm(net);
  LocalizedConfig cfg;
  cfg.max_hops = 2;
  wsn::BoundaryInfo binfo;
  binfo.network_boundary = true;
  Rng noise(5);
  auto res = localized_region(comm, 0, 3, binfo, cfg, nullptr, noise);
  EXPECT_TRUE(res.capped);
  EXPECT_FALSE(res.cells.empty());
  EXPECT_GT(cells_area(res.cells), 1.0);
}

}  // namespace
}  // namespace laacad::core
