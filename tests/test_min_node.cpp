#include <gtest/gtest.h>

#include "coverage/critical.hpp"
#include "laacad/min_node.hpp"
#include "wsn/deployment.hpp"

namespace laacad::core {
namespace {

MinNodeConfig quick_planner() {
  MinNodeConfig cfg;
  cfg.max_outer_iters = 25;
  cfg.laacad.alpha = 1.0;
  cfg.laacad.epsilon = 1.0;
  cfg.laacad.max_rounds = 120;
  return cfg;
}

TEST(MinNode, FindsFeasibleDeploymentK1) {
  wsn::Domain d = wsn::Domain::rectangle(100, 100);
  Rng rng(81);
  const double rs = 25.0;
  MinNodeResult res = plan_min_nodes(d, 1, rs, /*initial_n=*/-1, rng,
                                     quick_planner());
  ASSERT_TRUE(res.feasible);
  EXPECT_LE(res.achieved_range, rs + 1e-9);
  EXPECT_GE(res.nodes, 4);   // crude lower bound: |A|/(pi rs^2) ~ 5.1
  EXPECT_LE(res.nodes, 14);  // should not be wildly above optimal

  // Verify the accepted deployment really 1-covers at range rs.
  std::vector<geom::Circle> disks;
  for (geom::Vec2 p : res.positions) disks.push_back({p, rs});
  EXPECT_TRUE(cov::is_k_covered(d, disks, 1));
}

TEST(MinNode, FindsFeasibleDeploymentK2) {
  wsn::Domain d = wsn::Domain::rectangle(100, 100);
  Rng rng(82);
  const double rs = 30.0;
  MinNodeResult res = plan_min_nodes(d, 2, rs, -1, rng, quick_planner());
  ASSERT_TRUE(res.feasible);
  EXPECT_LE(res.achieved_range, rs + 1e-9);
  std::vector<geom::Circle> disks;
  for (geom::Vec2 p : res.positions) disks.push_back({p, rs});
  EXPECT_TRUE(cov::is_k_covered(d, disks, 2));
  // k-coverage with k=2 needs at least ~2x the 1-coverage population.
  EXPECT_GE(res.nodes, 7);
}

TEST(MinNode, InfeasibleStartGrowsPopulation) {
  wsn::Domain d = wsn::Domain::rectangle(100, 100);
  Rng rng(83);
  // Start with far too few nodes; the planner must add until feasible.
  MinNodeResult res =
      plan_min_nodes(d, 1, 30.0, /*initial_n=*/2, rng, quick_planner());
  ASSERT_TRUE(res.feasible);
  EXPECT_GT(res.nodes, 2);
  EXPECT_GE(res.laacad_runs, 2);
}

TEST(MinNode, RespectsMinimumOfKNodes) {
  wsn::Domain d = wsn::Domain::rectangle(20, 20);
  Rng rng(84);
  // Huge sensing range: k nodes co-located at the center suffice.
  MinNodeResult res = plan_min_nodes(d, 3, 50.0, -1, rng, quick_planner());
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.nodes, 3);
}

}  // namespace
}  // namespace laacad::core
