// SoA/AoS coherence and parallel grid-rebuild determinism.
//
// wsn::Network stores node state twice: the inspection-friendly Node
// records (AoS) and the hot-loop arrays xs()/ys()/sensing_ranges()/
// boundary_mask() (SoA). The contract is that every mutation path leaves
// the two representations bitwise identical — these tests drive each
// mutator (construction, set_position, set_sensing_range, set_boundary,
// add_node, remove_node, rebind_domain) through randomized sequences and
// check the invariant after every step.
//
// The second half pins SpatialGrid's count-then-scatter parallel rebuild:
// the CSR arrays (order, cell_start, slot coordinates) must be bitwise
// identical for 1, 2, and 8 threads — including after add/remove churn —
// because everything downstream (candidate orders, k_nearest ties) reads
// slot order.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "wsn/deployment.hpp"
#include "wsn/network.hpp"
#include "wsn/spatial_grid.hpp"

namespace {

using namespace laacad;
using geom::Vec2;

// Bitwise equality: the SoA arrays are written from the same stores as the
// Node fields, so even -0.0 vs 0.0 or NaN payload differences would be a
// coherence bug.
void expect_coherent(const wsn::Network& net, const char* where) {
  const auto& nodes = net.nodes();
  ASSERT_EQ(nodes.size(), net.xs().size()) << where;
  ASSERT_EQ(nodes.size(), net.ys().size()) << where;
  ASSERT_EQ(nodes.size(), net.sensing_ranges().size()) << where;
  ASSERT_EQ(nodes.size(), net.boundary_mask().size()) << where;
  const auto pos = net.positions();
  ASSERT_EQ(nodes.size(), pos.size()) << where;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(nodes[i].id, static_cast<wsn::NodeId>(i)) << where << " i=" << i;
    EXPECT_EQ(std::memcmp(&nodes[i].pos.x, &net.xs()[i], sizeof(double)), 0)
        << where << " x i=" << i;
    EXPECT_EQ(std::memcmp(&nodes[i].pos.y, &net.ys()[i], sizeof(double)), 0)
        << where << " y i=" << i;
    EXPECT_EQ(std::memcmp(&nodes[i].sensing_range, &net.sensing_ranges()[i],
                          sizeof(double)),
              0)
        << where << " range i=" << i;
    EXPECT_EQ(nodes[i].boundary, net.boundary_mask()[i] != 0)
        << where << " boundary i=" << i;
    EXPECT_EQ(std::memcmp(&pos[i].x, &net.xs()[i], sizeof(double)), 0)
        << where << " positions() x i=" << i;
    EXPECT_EQ(std::memcmp(&pos[i].y, &net.ys()[i], sizeof(double)), 0)
        << where << " positions() y i=" << i;
  }
}

TEST(NetworkSoA, ConstructionMirrorsPositions) {
  wsn::Domain domain = wsn::Domain::rectangle(500, 400);
  Rng rng(11);
  wsn::Network net(&domain, wsn::deploy_uniform(domain, 60, rng), 80.0);
  expect_coherent(net, "after construction");
}

TEST(NetworkSoA, EveryMutationPathStaysCoherent) {
  wsn::Domain domain = wsn::Domain::rectangle(300, 300);
  Rng rng(29);
  wsn::Network net(&domain, wsn::deploy_uniform(domain, 40, rng), 60.0);

  // Randomized mutation fuzz: pick a mutator, apply it, re-check the full
  // invariant. Covers interleavings (e.g. remove after set_position) that
  // single-mutator tests miss.
  for (int step = 0; step < 400; ++step) {
    const int n = net.size();
    ASSERT_GT(n, 0);
    const auto i =
        static_cast<wsn::NodeId>(rng.uniform_int(0, n - 1));
    switch (rng.uniform_int(0, 5)) {
      case 0:
        net.set_position(i, {rng.uniform(-50.0, 350.0),
                             rng.uniform(-50.0, 350.0)});
        break;
      case 1:
        net.set_sensing_range(i, rng.uniform(0.0, 120.0));
        break;
      case 2:
        net.set_boundary(i, rng.uniform_int(0, 1) == 1);
        break;
      case 3:
        net.add_node({rng.uniform(0.0, 300.0), rng.uniform(0.0, 300.0)});
        break;
      case 4:
        if (n > 8) net.remove_node(i);
        break;
      case 5: {
        // Queries between mutations force lazy grid rebuilds mid-sequence.
        const auto near = net.k_nearest(net.position(i), 3, i);
        EXPECT_LE(near.size(), 3u);
        break;
      }
    }
    expect_coherent(net, "after mutation step");
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(NetworkSoA, RebindDomainReprojectsBothRepresentations) {
  wsn::Domain big = wsn::Domain::rectangle(1000, 1000);
  wsn::Domain small = wsn::Domain::rectangle(200, 200);
  Rng rng(7);
  wsn::Network net(&big, wsn::deploy_uniform(big, 50, rng), 100.0);
  net.rebind_domain(&small);
  expect_coherent(net, "after rebind_domain");
  for (const wsn::Node& nd : net.nodes())
    EXPECT_TRUE(small.contains(nd.pos)) << "node " << nd.id;
}

// --------------------------------------------------------------------------
// Parallel rebuild determinism.

std::vector<Vec2> random_points(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0.0, 900.0), rng.uniform(0.0, 900.0)});
  return pts;
}

void expect_grids_identical(const wsn::SpatialGrid& a,
                            const wsn::SpatialGrid& b, const char* what) {
  ASSERT_EQ(a.order(), b.order()) << what;
  ASSERT_EQ(a.cell_start(), b.cell_start()) << what;
  ASSERT_EQ(a.slot_x().size(), b.slot_x().size()) << what;
  for (std::size_t i = 0; i < a.slot_x().size(); ++i) {
    EXPECT_EQ(std::memcmp(&a.slot_x()[i], &b.slot_x()[i], sizeof(double)), 0)
        << what << " slot_x " << i;
    EXPECT_EQ(std::memcmp(&a.slot_y()[i], &b.slot_y()[i], sizeof(double)), 0)
        << what << " slot_y " << i;
  }
}

TEST(SpatialGridParallel, RebuildBitIdenticalAcrossThreadCounts) {
  // 6000 points exceeds the parallel-path threshold, so pooled rebuilds
  // really exercise count-then-scatter rather than falling back to serial.
  const auto pts = random_points(6000, 77);
  wsn::SpatialGrid serial(pts, 30.0);
  for (int threads : {1, 2, 8}) {
    common::ThreadPool pool(threads);
    wsn::SpatialGrid parallel;
    parallel.rebuild(pts, 30.0, &pool);
    expect_grids_identical(serial, parallel,
                           ("threads=" + std::to_string(threads)).c_str());
  }
}

TEST(SpatialGridParallel, RebuildBitIdenticalUnderChurn) {
  // Simulate the engine's real pattern: the same grid object re-binned
  // round after round while the point set mutates (moves, adds, removes).
  auto pts = random_points(5000, 123);
  Rng rng(5);
  common::ThreadPool pool2(2);
  common::ThreadPool pool8(8);
  wsn::SpatialGrid g_serial, g_two, g_eight;
  for (int round = 0; round < 5; ++round) {
    for (int m = 0; m < 200; ++m) {
      const auto idx =
          static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<int>(pts.size()) - 1));
      switch (rng.uniform_int(0, 2)) {
        case 0:
          pts[idx] = {rng.uniform(0.0, 900.0), rng.uniform(0.0, 900.0)};
          break;
        case 1:
          pts.push_back({rng.uniform(0.0, 900.0), rng.uniform(0.0, 900.0)});
          break;
        case 2:
          if (pts.size() > 4200) pts.erase(pts.begin() + static_cast<long>(idx));
          break;
      }
    }
    g_serial.rebuild(pts, 25.0);
    g_two.rebuild(pts, 25.0, &pool2);
    g_eight.rebuild(pts, 25.0, &pool8);
    expect_grids_identical(g_serial, g_two, "churn threads=2");
    expect_grids_identical(g_serial, g_eight, "churn threads=8");
  }
}

TEST(SpatialGridParallel, NetworkWarmGridMatchesQueries) {
  // warm_grid with a pool must produce the same query answers as the lazy
  // serial rebuild (slot order feeds k_nearest tie-breaks).
  wsn::Domain domain = wsn::Domain::rectangle(800, 800);
  Rng rng(41);
  const auto initial = wsn::deploy_uniform(domain, 5000, rng);
  wsn::Network lazy(&domain, initial, 40.0);
  wsn::Network warmed(&domain, initial, 40.0);
  common::ThreadPool pool(4);
  warmed.warm_grid(&pool);
  for (int probe = 0; probe < 50; ++probe) {
    const Vec2 q{rng.uniform(0.0, 800.0), rng.uniform(0.0, 800.0)};
    EXPECT_EQ(lazy.k_nearest(q, 5), warmed.k_nearest(q, 5)) << probe;
    EXPECT_EQ(lazy.nodes_within(q, 60.0), warmed.nodes_within(q, 60.0))
        << probe;
  }
}

}  // namespace
