// Observability layer tests — the three contracts the obs layer makes:
//
//  1. Trace structure is deterministic: the TRACE json is valid JSON (parsed
//     here with a minimal in-test parser, no dependencies), every engine
//     round stage appears as a span, and span nesting (the deterministic
//     `depth` arg) matches the round hierarchy for every thread count.
//  2. Kernel counter totals read through obs::CounterScope are exact and
//     bit-equal across num_threads in {1, 2, 8} — the pool folds worker
//     deltas back into the measuring thread.
//  3. Tracing never leaks into deterministic artifacts: a traced campaign's
//     write_json output is byte-identical to an untraced run's.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/scheduler.hpp"
#include "campaign/spec.hpp"
#include "common/rng.hpp"
#include "laacad/engine.hpp"
#include "obs/heartbeat.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "wsn/deployment.hpp"

namespace laacad::obs {
namespace {

// ------------------------------------------------- minimal JSON parser ----
// Just enough JSON to validate a trace file in-test: objects, arrays,
// strings, numbers, true/false/null. Throws on any malformed input, which
// is exactly the "trace file is valid JSON" assertion.

struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  const Json& at(const std::string& key) const {
    const auto it = object.find(key);
    if (it == object.end())
      throw std::runtime_error("json: missing key " + key);
    return it->second;
  }
  bool has(const std::string& key) const { return object.count(key) != 0; }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos_));
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }
  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(const char* word) {
    const std::size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            pos_ += 4;       // validated length only; tests compare
            out += '?';      // structure, not unicode content
            break;
          }
          default: out += e; break;
        }
      } else {
        out += c;
      }
    }
  }

  Json value() {
    skip_ws();
    Json v;
    const char c = peek();
    if (c == '{') {
      ++pos_;
      v.kind = Json::Kind::kObject;
      skip_ws();
      if (!consume('}')) {
        do {
          skip_ws();
          std::string key = parse_string();
          skip_ws();
          expect(':');
          v.object.emplace(std::move(key), value());
          skip_ws();
        } while (consume(','));
        expect('}');
      }
    } else if (c == '[') {
      ++pos_;
      v.kind = Json::Kind::kArray;
      skip_ws();
      if (!consume(']')) {
        do {
          v.array.push_back(value());
          skip_ws();
        } while (consume(','));
        expect(']');
      }
    } else if (c == '"') {
      v.kind = Json::Kind::kString;
      v.string = parse_string();
    } else if (literal("true")) {
      v.kind = Json::Kind::kBool;
      v.boolean = true;
    } else if (literal("false")) {
      v.kind = Json::Kind::kBool;
    } else if (literal("null")) {
      v.kind = Json::Kind::kNull;
    } else {
      v.kind = Json::Kind::kNumber;
      const std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '-' || text_[pos_] == '+' ||
              text_[pos_] == '.' || text_[pos_] == 'e' ||
              text_[pos_] == 'E'))
        ++pos_;
      if (pos_ == start) fail("unexpected character");
      v.number = std::stod(text_.substr(start, pos_ - start));
    }
    return v;
  }

  std::string text_;
  std::size_t pos_ = 0;
};

Json parse_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return JsonParser(buf.str()).parse();
}

std::string temp_path(const std::string& stem) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "obs_" + info->test_suite_name() + "_" +
         info->name() + "_" + stem;
}

// --------------------------------------------------- trace file shape ----

/// One parsed ph:"X" event, reduced to its deterministic fields.
struct Span {
  std::string name;
  int tid = 0;
  int depth = 0;
  bool has_n = false;
  double n = 0.0;
};

std::vector<Span> complete_events(const Json& trace) {
  std::vector<Span> out;
  for (const Json& ev : trace.at("traceEvents").array) {
    if (ev.at("ph").string != "X") continue;
    Span s;
    s.name = ev.at("name").string;
    s.tid = static_cast<int>(ev.at("tid").number);
    s.depth = static_cast<int>(ev.at("args").at("depth").number);
    if (ev.at("args").has("n")) {
      s.has_n = true;
      s.n = ev.at("args").at("n").number;
    }
    out.push_back(std::move(s));
  }
  return out;
}

void run_small_engine(int threads, const std::vector<geom::Vec2>& initial,
                      const wsn::Domain& domain) {
  core::LaacadConfig cfg;
  cfg.k = 2;
  cfg.epsilon = 1.0;
  cfg.max_rounds = 8;
  cfg.num_threads = threads;
  wsn::Network net(&domain, initial, 90.0);
  core::Engine engine(net, cfg);
  engine.run();
}

TEST(Trace, EmitsValidJsonWithAllRoundStages) {
  const std::string path = temp_path("stages.json");
  wsn::Domain d = wsn::Domain::rectangle(300, 300);
  Rng rng(7);
  const auto initial = wsn::deploy_uniform(d, 30, rng);

  start_trace(path);
  run_small_engine(2, initial, d);
  const TraceReport report = stop_trace();
  EXPECT_GT(report.spans, 0u);
  EXPECT_GE(report.threads, 1u);

  const Json trace = parse_file(path);  // throws -> test failure if invalid
  EXPECT_EQ(trace.at("displayTimeUnit").string, "ms");
  const auto spans = complete_events(trace);
  std::set<std::string> names;
  for (const Span& s : spans) names.insert(s.name);
  // The five engine round stages of the acceptance contract, plus the
  // per-round container.
  for (const char* stage : {"round", "grid_rebuild", "region_fanout",
                            "comm_gather", "targets", "movement"})
    EXPECT_TRUE(names.count(stage)) << "missing stage span: " << stage;
  // Parallel fan-out ran on a pool, so chunk spans must exist too.
  EXPECT_TRUE(names.count("pool_chunk"));
  std::remove(path.c_str());
}

TEST(Trace, SpanNestingMatchesRoundHierarchy) {
  const std::string path = temp_path("nesting.json");
  wsn::Domain d = wsn::Domain::rectangle(250, 250);
  Rng rng(11);
  const auto initial = wsn::deploy_uniform(d, 24, rng);

  start_trace(path);
  run_small_engine(1, initial, d);  // serial: everything on one thread
  stop_trace();

  const auto spans = complete_events(parse_file(path));
  int rounds_seen = 0, nested_rebuilds = 0;
  for (const Span& s : spans) {
    if (s.name == "round") {
      ++rounds_seen;
      EXPECT_EQ(s.depth, 0) << "round spans are top-level in an engine run";
      EXPECT_TRUE(s.has_n);
      EXPECT_EQ(s.n, rounds_seen) << "round arg is the 1-based round number";
    } else if (s.name == "region_fanout" || s.name == "comm_gather" ||
               s.name == "targets" || s.name == "movement") {
      EXPECT_EQ(s.depth, 1) << s.name << " nests directly under round";
    } else if (s.name == "grid_rebuild") {
      // Depth 1 inside a round's snapshot; depth 0 for the snapshots the
      // engine takes outside the round loop (initial/final state).
      EXPECT_LE(s.depth, 1);
      if (s.depth == 1) ++nested_rebuilds;
    }
  }
  EXPECT_GT(rounds_seen, 0);
  EXPECT_EQ(nested_rebuilds, rounds_seen) << "one in-round rebuild per round";
  std::remove(path.c_str());
}

/// Deterministic structure fingerprint: (name, depth, arg) of every span
/// the *measuring* thread emitted, in emission order, excluding the
/// schedule-dependent pool_chunk spans.
std::vector<std::string> structure_fingerprint(const std::string& path) {
  std::vector<std::string> out;
  for (const Span& s : complete_events(parse_file(path))) {
    if (s.name == "pool_chunk") continue;
    if (s.tid != 0) continue;  // tid 0 registers first: the caller thread
    out.push_back(s.name + "/" + std::to_string(s.depth) + "/" +
                  (s.has_n ? std::to_string(s.n) : std::string("-")));
  }
  return out;
}

TEST(Trace, StructureIdenticalAcrossThreadCounts) {
  wsn::Domain d = wsn::Domain::rectangle(300, 300);
  Rng rng(13);
  const auto initial = wsn::deploy_uniform(d, 32, rng);

  std::vector<std::string> reference;
  for (const int threads : {1, 2, 8}) {
    const std::string path =
        temp_path("threads" + std::to_string(threads) + ".json");
    start_trace(path);
    run_small_engine(threads, initial, d);
    stop_trace();
    const auto fp = structure_fingerprint(path);
    EXPECT_FALSE(fp.empty());
    if (threads == 1)
      reference = fp;
    else
      EXPECT_EQ(fp, reference) << "threads=" << threads;
    std::remove(path.c_str());
  }
}

TEST(Trace, SessionsAreExclusiveAndStopIsIdempotent) {
  // No session: stop is a harmless empty report.
  const TraceReport idle = stop_trace();
  EXPECT_EQ(idle.spans, 0u);
  EXPECT_FALSE(active());

  const std::string path = temp_path("exclusive.json");
  start_trace(path);
  EXPECT_TRUE(active());
  EXPECT_THROW(start_trace(path), std::runtime_error);
  EXPECT_THROW(start_timers(), std::runtime_error);
  stop_trace();
  EXPECT_FALSE(active());
  EXPECT_FALSE(enabled());
  std::remove(path.c_str());
}

TEST(Trace, TimersOnlySessionAggregatesStagesWithoutAFile) {
  wsn::Domain d = wsn::Domain::rectangle(200, 200);
  Rng rng(17);
  const auto initial = wsn::deploy_uniform(d, 20, rng);

  start_timers();
  EXPECT_TRUE(enabled());
  run_small_engine(1, initial, d);
  const TraceReport report = stop_trace();
  EXPECT_EQ(report.spans, 0u) << "timers-only: no per-event buffer";
  std::uint64_t rounds = 0, fanouts = 0;
  for (const auto& [name, total] : report.stages) {
    if (name == "round") rounds = total.count;
    if (name == "region_fanout") fanouts = total.count;
  }
  EXPECT_GT(rounds, 0u);
  EXPECT_EQ(rounds, fanouts) << "one fan-out per round";
}

// ------------------------------------------------------ counter totals ----

perf::KernelCounters engine_counters(int threads) {
  wsn::Domain d = wsn::Domain::rectangle(300, 300);
  Rng rng(23);
  const auto initial = wsn::deploy_uniform(d, 36, rng);
  const CounterScope scope;
  run_small_engine(threads, initial, d);
  return scope.delta();
}

TEST(CounterScopeTest, TotalsExactForAnyThreadCount) {
  const perf::KernelCounters serial = engine_counters(1);
  ASSERT_GT(serial.dist2_evals, 0u);
  ASSERT_GT(serial.grid_queries, 0u);
  for (const int threads : {2, 8}) {
    const perf::KernelCounters pooled = engine_counters(threads);
    EXPECT_EQ(pooled.dist2_evals, serial.dist2_evals)
        << "threads=" << threads;
    EXPECT_EQ(pooled.clip_calls, serial.clip_calls);
    EXPECT_EQ(pooled.ring_allocs, serial.ring_allocs);
    EXPECT_EQ(pooled.grid_queries, serial.grid_queries);
    EXPECT_EQ(pooled.cells_built, serial.cells_built);
    EXPECT_EQ(pooled.kernel_fallbacks, serial.kernel_fallbacks);
  }
}

TEST(CounterScopeTest, DeltaAndResetBracketRegions) {
  CounterScope scope;
  perf::counters().dist2_evals += 5;
  perf::counters().grid_queries += 2;
  perf::KernelCounters d = scope.delta();
  EXPECT_EQ(d.dist2_evals, 5u);
  EXPECT_EQ(d.grid_queries, 2u);
  scope.reset();
  EXPECT_EQ(scope.delta().dist2_evals, 0u);
}

// --------------------------------------------------------------- gauges ----

TEST(RegistryTest, GaugesSetGetClearAndSortedListing) {
  Registry& reg = Registry::instance();
  reg.clear();
  EXPECT_TRUE(std::isnan(reg.gauge("missing")));
  reg.set_gauge("b.depth", 3.0);
  reg.set_gauge("a.rss", 12.5);
  reg.set_gauge("b.depth", 4.0);  // last write wins
  EXPECT_EQ(reg.gauge("b.depth"), 4.0);
  const auto all = reg.gauges();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].first, "a.rss");
  EXPECT_EQ(all[1].first, "b.depth");
  reg.clear();
  EXPECT_TRUE(reg.gauges().empty());
}

// ----------------------------------------------------------- heartbeats ----

TEST(HeartbeatTest, FormatParseRoundTrip) {
  Heartbeat hb;
  hb.kind = "campaign";
  hb.name = "fig6 \"quoted\"";
  hb.shard = "1/4";
  hb.done = 7;
  hb.total = 32;
  hb.ok = 6;
  hb.rate_per_s = 1.25;
  hb.eta_s = 20.0;
  hb.ts_ms = 1754600000123ull;

  const std::string line = format_heartbeat(hb);
  EXPECT_EQ(line.back(), '\n');
  EXPECT_TRUE(is_heartbeat_line(line));

  Heartbeat back;
  ASSERT_TRUE(parse_heartbeat(line, &back));
  EXPECT_EQ(back.kind, "campaign");
  EXPECT_EQ(back.name, hb.name);
  EXPECT_EQ(back.shard, "1/4");
  EXPECT_EQ(back.done, 7);
  EXPECT_EQ(back.total, 32);
  EXPECT_EQ(back.ok, 6);
  EXPECT_EQ(back.live, -1) << "absent field stays at its sentinel";
  EXPECT_DOUBLE_EQ(back.rate_per_s, 1.25);
  EXPECT_DOUBLE_EQ(back.eta_s, 20.0);
  EXPECT_EQ(back.ts_ms, hb.ts_ms);
}

TEST(HeartbeatTest, FleetFieldsAndNullEta) {
  Heartbeat hb;
  hb.kind = "fleet";
  hb.name = "ladder";
  hb.done = 0;
  hb.total = 10;
  hb.live = 4;
  hb.rate_per_s = 0.0;
  hb.eta_s = std::nan("");  // serializes as null
  const std::string line = format_heartbeat(hb);
  EXPECT_NE(line.find("\"live\":4"), std::string::npos);
  EXPECT_NE(line.find("\"eta_s\":null"), std::string::npos);
  Heartbeat back;
  ASSERT_TRUE(parse_heartbeat(line, &back));
  EXPECT_EQ(back.live, 4);
  EXPECT_TRUE(std::isnan(back.eta_s));
}

TEST(HeartbeatTest, ServeFieldsRoundTripAndStayOptional) {
  Heartbeat hb;
  hb.kind = "serve";
  hb.name = "serve_base";
  hb.done = 3;  // phases finished
  hb.live = 1;
  hb.round = 42;
  hb.epoch = 17;
  hb.queue = 2;
  const std::string line = format_heartbeat(hb);
  EXPECT_NE(line.find("\"round\":42"), std::string::npos);
  EXPECT_NE(line.find("\"epoch\":17"), std::string::npos);
  EXPECT_NE(line.find("\"queue\":2"), std::string::npos);
  Heartbeat back;
  ASSERT_TRUE(parse_heartbeat(line, &back));
  EXPECT_EQ(back.round, 42);
  EXPECT_EQ(back.epoch, 17);
  EXPECT_EQ(back.queue, 2);

  // Non-serve heartbeats never grow the fields: absent on the wire, and
  // sentinels after a parse.
  Heartbeat fleet;
  fleet.kind = "fleet";
  fleet.name = "ladder";
  const std::string fleet_line = format_heartbeat(fleet);
  EXPECT_EQ(fleet_line.find("\"round\""), std::string::npos);
  EXPECT_EQ(fleet_line.find("\"queue\""), std::string::npos);
  Heartbeat fleet_back;
  ASSERT_TRUE(parse_heartbeat(fleet_line, &fleet_back));
  EXPECT_EQ(fleet_back.round, -1);
  EXPECT_EQ(fleet_back.epoch, -1);
  EXPECT_EQ(fleet_back.queue, -1);
}

TEST(HeartbeatTest, RejectsNonHeartbeatLines) {
  EXPECT_FALSE(is_heartbeat_line("[1/4] trial 3: ok"));
  EXPECT_FALSE(is_heartbeat_line("{\"schema\":\"laacad.campaign.v1\"}"));
  Heartbeat hb;
  EXPECT_FALSE(parse_heartbeat("plain progress line", &hb));
  // Claims the prefix but carries no parsable kind: consumer falls back to
  // relaying it verbatim.
  EXPECT_FALSE(parse_heartbeat("{\"hb\":}", &hb));
}

TEST(HeartbeatTest, EmitterWritesOneLinePerTick) {
  const std::string path = temp_path("hb.txt");
  std::FILE* sink = std::fopen(path.c_str(), "w");
  ASSERT_NE(sink, nullptr);
  {
    HeartbeatEmitter emitter(sink, "campaign", "demo", "0/2", 4);
    emitter.tick(1, 1);
    emitter.tick(2, 1);
  }
  std::fclose(sink);
  std::ifstream in(path);
  std::string line;
  int lines = 0, parsed = 0;
  while (std::getline(in, line)) {
    ++lines;
    Heartbeat hb;
    if (parse_heartbeat(line + "\n", &hb)) {
      ++parsed;
      EXPECT_EQ(hb.kind, "campaign");
      EXPECT_EQ(hb.total, 4);
      EXPECT_EQ(hb.shard, "0/2");
    }
  }
  EXPECT_EQ(lines, 2);
  EXPECT_EQ(parsed, 2);
  std::remove(path.c_str());
}

// ---------------------------------------- BENCH byte-identity contract ----

constexpr const char* kObsCampaign = R"(
name    obscheck
trials  2
seed    5
domain  square
side    150
deploy  uniform
nodes   12
k       1
epsilon 0.5
max_rounds 120
grid_resolution 8
sweep alpha 0.6 1.0
)";

std::string campaign_json(bool traced, const std::string& trace_path) {
  campaign::CampaignOptions opt;
  opt.workers = 2;  // concurrent trial spans exercise per-thread buffers
  campaign::CampaignScheduler scheduler(
      campaign::parse_campaign_string(kObsCampaign), std::move(opt));
  if (traced) start_trace(trace_path);
  const campaign::CampaignResult result = scheduler.run();
  if (traced) stop_trace();
  std::ostringstream out;
  result.write_json(out);
  return out.str();
}

TEST(ObsContract, TracedCampaignBenchOutputByteIdentical) {
  const std::string trace_path = temp_path("campaign.json");
  const std::string untraced = campaign_json(false, "");
  const std::string traced = campaign_json(true, trace_path);
  EXPECT_EQ(untraced, traced)
      << "tracing must never perturb BENCH artifacts";

  // And the trace itself is a valid timeline with per-trial spans.
  const auto spans = complete_events(parse_file(trace_path));
  int trials = 0;
  std::set<double> trial_args;
  for (const Span& s : spans) {
    if (s.name != "trial") continue;
    ++trials;
    ASSERT_TRUE(s.has_n);
    trial_args.insert(s.n);
  }
  EXPECT_EQ(trials, 4) << "2 points x 2 reps";
  EXPECT_EQ(trial_args, (std::set<double>{0.0, 1.0, 2.0, 3.0}));
  std::remove(trace_path.c_str());
}

}  // namespace
}  // namespace laacad::obs
