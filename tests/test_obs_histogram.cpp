// Latency-histogram contracts — everything the serving metrics and
// serve_bench lean on:
//
//  1. The bucket map is a pure function: index_of/upper_edge are mutually
//     consistent, monotone, and every bucket's relative width is <= 1/64.
//  2. Oracle agreement: against a sorted-vector oracle over the same
//     samples, value_at(q) lands in exactly the bucket that holds the
//     rank-ceil(q*n) sample, is >= the exact percentile, and saturates to
//     the exact max at the top. Covers empty, one-sample, and overflow.
//  3. State is a function of the sample multiset alone: any merge order
//     and any sharding across recording threads (1, 2, 8 atomic writers)
//     produce byte-identical JSON.
//  4. The compact JSON encoding round-trips through from_json.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json_writer.hpp"
#include "common/rng.hpp"
#include "obs/histogram.hpp"

namespace laacad::obs {
namespace {

using Buckets = HistogramBuckets;

std::string to_json(const Histogram& h) {
  std::ostringstream out;
  JsonWriter w(out, /*indent=*/0);
  h.write_json(w);
  return out.str();
}

std::string percentiles_json(const Histogram& h) {
  std::ostringstream out;
  JsonWriter w(out, /*indent=*/0);
  h.write_percentiles_json(w);
  return out.str();
}

/// Deterministic mixed workload: a uniform body, a lognormal-ish bulk, and
/// a heavy tail — exercises linear buckets, log buckets, and wide spreads.
std::vector<std::uint64_t> sample_mix(std::uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<std::uint64_t> v;
  v.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int shape = rng.uniform_int(0, 9);
    if (shape < 2) {
      v.push_back(static_cast<std::uint64_t>(rng.uniform_int(0, 100)));
    } else if (shape < 9) {
      v.push_back(static_cast<std::uint64_t>(
          50000.0 * std::exp(rng.uniform(-1.0, 1.5))));
    } else {  // heavy tail, up to ~10 ms
      v.push_back(static_cast<std::uint64_t>(
          std::pow(10.0, rng.uniform(5.0, 7.0))));
    }
  }
  return v;
}

std::uint64_t oracle_percentile(std::vector<std::uint64_t> sorted, double q) {
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * n));
  rank = std::min(std::max<std::size_t>(rank, 1), sorted.size());
  return sorted[rank - 1];
}

TEST(HistogramBucketsTest, IndexAndEdgeAreMutuallyConsistent) {
  for (int i = 0; i < Buckets::kNumBuckets; ++i) {
    const std::uint64_t edge = Buckets::upper_edge(i);
    EXPECT_EQ(Buckets::index_of(edge), i) << "edge of bucket " << i;
    // The next value starts the next bucket.
    EXPECT_EQ(Buckets::index_of(edge + 1), i + 1);
  }
  EXPECT_EQ(Buckets::index_of(0), 0);
  EXPECT_EQ(Buckets::index_of(Buckets::kMaxTrackable), Buckets::kNumBuckets - 1);
  EXPECT_EQ(Buckets::index_of(Buckets::kMaxTrackable + 1), Buckets::kNumBuckets);
  EXPECT_EQ(Buckets::index_of(~0ull), Buckets::kNumBuckets);
}

TEST(HistogramBucketsTest, RelativeWidthBounded) {
  // Above the linear range, bucket width / lower edge <= 1/64: the bound
  // that makes "percentile = bucket upper edge" an at-most-1.6% error.
  for (int i = static_cast<int>(Buckets::kSubBuckets);
       i < Buckets::kNumBuckets; ++i) {
    const double lo = static_cast<double>(Buckets::upper_edge(i - 1)) + 1.0;
    const double hi = static_cast<double>(Buckets::upper_edge(i));
    EXPECT_LE((hi - lo + 1.0) / lo, 1.0 / 64.0 + 1e-12) << "bucket " << i;
  }
}

TEST(HistogramTest, EmptyOneSampleAndOverflowEdges) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.value_at(0.5), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  // Empty percentiles serialize as nulls, not garbage.
  EXPECT_NE(percentiles_json(h).find("\"p50_us\":null"), std::string::npos);

  h.record(1234);
  for (const double q : {0.0, 0.5, 0.99, 1.0})
    EXPECT_EQ(h.value_at(q), 1234u) << q;
  EXPECT_EQ(h.min(), 1234u);
  EXPECT_EQ(h.max(), 1234u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 1234.0);

  Histogram o;
  o.record(Buckets::kMaxTrackable + 12345);
  EXPECT_EQ(o.overflow(), 1u);
  // Overflow saturates at the exact tracked max, not the bucket edge.
  EXPECT_EQ(o.value_at(0.5), Buckets::kMaxTrackable + 12345);
  EXPECT_EQ(o.max(), Buckets::kMaxTrackable + 12345);
}

TEST(HistogramTest, OracleAgreementOnMixedSamples) {
  for (const std::uint64_t seed : {7ull, 21ull, 99ull}) {
    const std::vector<std::uint64_t> samples = sample_mix(seed, 5000);
    Histogram h;
    for (const std::uint64_t s : samples) h.record(s);
    std::vector<std::uint64_t> sorted = samples;
    std::sort(sorted.begin(), sorted.end());

    EXPECT_EQ(h.count(), sorted.size());
    EXPECT_EQ(h.min(), sorted.front());
    EXPECT_EQ(h.max(), sorted.back());
    for (const double q : {0.01, 0.25, 0.5, 0.9, 0.99, 0.999}) {
      const std::uint64_t exact = oracle_percentile(sorted, q);
      const std::uint64_t got = h.value_at(q);
      EXPECT_EQ(Buckets::index_of(got), Buckets::index_of(exact))
          << "seed " << seed << " q " << q;
      EXPECT_GE(got, exact);
    }
    EXPECT_EQ(h.value_at(1.0), sorted.back());
  }
}

TEST(HistogramTest, MergeOrderInvariance) {
  const std::vector<std::uint64_t> samples = sample_mix(3, 3000);
  // Shard into 5 chunks, merge under three different trees.
  std::vector<Histogram> chunks(5);
  for (std::size_t i = 0; i < samples.size(); ++i)
    chunks[i % chunks.size()].record(samples[i]);

  Histogram forward;
  for (const Histogram& c : chunks) forward.merge(c);

  Histogram backward;
  for (auto it = chunks.rbegin(); it != chunks.rend(); ++it)
    backward.merge(*it);

  Histogram nested;  // ((c3 + c1) + (c4 + c0)) + c2
  Histogram left = chunks[3], right = chunks[4];
  left.merge(chunks[1]);
  right.merge(chunks[0]);
  nested.merge(left);
  nested.merge(right);
  nested.merge(chunks[2]);

  Histogram reference;
  for (const std::uint64_t s : samples) reference.record(s);

  const std::string expected = to_json(reference);
  EXPECT_EQ(to_json(forward), expected);
  EXPECT_EQ(to_json(backward), expected);
  EXPECT_EQ(to_json(nested), expected);
}

TEST(HistogramTest, CopyIsDeep) {
  Histogram a;
  a.record(100);
  Histogram b = a;
  b.record(200);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(b.count(), 2u);
  a = b;
  a.record(300);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(a.count(), 3u);
}

TEST(AtomicHistogramTest, ThreadCountInvariantJson) {
  const std::vector<std::uint64_t> samples = sample_mix(11, 20000);
  std::string expected;
  for (const int threads : {1, 2, 8}) {
    AtomicHistogram atomic;
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        for (std::size_t i = static_cast<std::size_t>(t); i < samples.size();
             i += static_cast<std::size_t>(threads))
          atomic.record(samples[i]);
      });
    }
    for (std::thread& w : workers) w.join();
    const std::string got = to_json(atomic.snapshot());
    if (expected.empty()) expected = got;
    EXPECT_EQ(got, expected) << threads << " recording threads";
  }
  // And the single-threaded plain histogram agrees with all of them.
  Histogram plain;
  for (const std::uint64_t s : samples) plain.record(s);
  EXPECT_EQ(to_json(plain), expected);
}

TEST(AtomicHistogramTest, ResetClears) {
  AtomicHistogram atomic;
  atomic.record(5);
  atomic.record(500000);
  atomic.reset();
  EXPECT_EQ(atomic.count(), 0u);
  EXPECT_TRUE(atomic.snapshot().empty());
}

TEST(HistogramTest, JsonRoundTrip) {
  const std::vector<std::uint64_t> samples = sample_mix(42, 2000);
  Histogram h;
  for (const std::uint64_t s : samples) h.record(s);
  h.record(Buckets::kMaxTrackable + 7);  // include the overflow bucket

  const std::string encoded = to_json(h);
  Histogram back;
  ASSERT_TRUE(Histogram::from_json(encoded, &back)) << encoded;
  EXPECT_EQ(to_json(back), encoded);
  EXPECT_EQ(back.count(), h.count());
  EXPECT_EQ(back.value_at(0.99), h.value_at(0.99));

  Histogram junk;
  EXPECT_FALSE(Histogram::from_json("{}", &junk));
  EXPECT_FALSE(Histogram::from_json("{\"count\":3,\"buckets\":[[0,1]]}",
                                    &junk));  // count mismatch
  EXPECT_FALSE(Histogram::from_json("not json", &junk));
}

}  // namespace
}  // namespace laacad::obs
